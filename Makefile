.PHONY: all build test faults check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# just the fault-injection suite (degraded libraries, malformed designs,
# exhausted budgets, degradation-ladder acceptance)
faults:
	dune exec test/test_main.exe -- test faults

# the one target CI needs: everything builds (lib/diag and lib/check with
# warnings-as-errors, see their dune files), the full suite passes, and
# the fault suite is re-run on its own so its output is visible
check: build test faults

bench:
	dune exec bench/main.exe

clean:
	dune clean
