.PHONY: all build test faults dse check fmt ci bench bench-dse bench-netlist bench-sched bench-scale bench-nest bench-feedback bench-kernel nest-smoke scale-smoke kernel-smoke bench-smoke bench-serve serve-smoke chaos-smoke feedback-smoke exit-codes golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# just the fault-injection suite (degraded libraries, malformed designs,
# exhausted budgets, degradation-ladder acceptance)
faults:
	dune exec test/test_main.exe -- test faults

# just the design-space-exploration suite (determinism across worker
# counts, memo-cache behaviour, Pareto-front dominance property)
dse:
	dune exec test/test_main.exe -- test dse

# the one target CI needs: everything builds (lib/diag, lib/check, lib/dse
# and lib/netlist with warnings-as-errors, see their dune files), the full
# suite passes, and the fault suite is re-run on its own so its output is
# visible
check: build test faults

# reformat in place (requires ocamlformat; a no-op under the repo's
# `disable` profile until formatting is adopted file by file)
fmt:
	dune build @fmt --auto-promote

# what .github/workflows/ci.yml runs: the full check plus the format gate.
# The format gate is skipped gracefully where ocamlformat is not installed.
ci: check
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

# the DSE throughput experiment: sweeps the IDCT grid at --jobs 1 and
# --jobs 4 plus a cached re-sweep, and writes BENCH_dse.json
bench-dse:
	dune exec bench/main.exe -- dse

# the netlist engine experiment: incremental timing-query throughput and
# trial/rollback transaction throughput, written to BENCH_netlist.json
bench-netlist:
	dune exec bench/main.exe -- netlist

# the scheduler warm-start experiment: relaxation-loop wall clock with and
# without warm-start on synthetic-350 (pipelined + sequential) and idct,
# written to BENCH_sched.json
bench-sched:
	dune exec bench/main.exe -- sched

# the design-size sweep: schedules seeded synthetic designs at ~350 / 1k
# / 3k / 10k elaborated ops and writes the scaling curve (wall, queries,
# queries/s, passes, peak heap words) to BENCH_scale.json
bench-scale:
	dune exec bench/main.exe -- scale

# what CI's scale-smoke job runs: the ~350 and ~1k-op sweep points with a
# generous wall-clock guard on the 1k point (MAX_WALL_1K to override)
scale-smoke:
	./scripts/scale_smoke.sh

# the loop-nest experiment: 1-D unroll baseline vs the flattened
# multi-dimensional pipeline vs hierarchical composition on the two
# checked-in nest examples, written to BENCH_nest.json
bench-nest:
	dune exec bench/main.exe -- nest

# what CI's nest-smoke job runs: both nest examples through `hlsc flow`
# with per-dimension IIs, the unroll_overflow refusal on stencil2d, and
# the bench nest multi-D verdict
nest-smoke:
	./scripts/nest_smoke.sh

# the feedback experiment: scheduler passes and QoR with and without the
# subgraph-extraction feedback loop on the table designs + synthetic-350,
# written to BENCH_feedback.json
bench-feedback:
	dune exec bench/main.exe -- feedback

# what CI's feedback-smoke job runs: pass reduction at equal-or-better
# QoR on every bench workload, cross-point hint reuse in explore
# --feedback, and golden byte-identity with feedback off
feedback-smoke:
	./scripts/feedback_smoke.sh

# the compiled-cosim experiment: interpreted vs compiled folded-kernel
# throughput across stimulus lengths 1e2..1e6 plus a 300-case three-way
# fuzz batch, written to BENCH_kernel.json
bench-kernel:
	dune exec bench/main.exe -- kernel

# what CI's kernel-equiv job runs: the 200-case fixed-seed three-way fuzz
# gate, an interpreted-vs-compiled diff on built-ins and every .bhv
# example (both nests included), and the bench kernel path in smoke mode
kernel-smoke:
	./scripts/kernel_smoke.sh

# the compile-service experiment, two phases written to BENCH_serve.json
# as {"load":…,"chaos":…}: (1) a clean daemon driven by 8 concurrent
# clients x 4 requests (cold then warm), (2) a fault-injected daemon
# (workers killed, store entries corrupted; fixed seed) driven through
# the retrying client, recording retry rates and recovery latencies
bench-serve:
	dune build bin/hlsc.exe
	@rm -f /tmp/hlsc_bench.sock
	@rm -rf /tmp/hlsc_bench_store
	@dune exec --no-build bin/hlsc.exe -- serve --socket /tmp/hlsc_bench.sock --jobs 4 & \
	pid=$$!; \
	for i in $$(seq 50); do [ -S /tmp/hlsc_bench.sock ] && break; sleep 0.1; done; \
	dune exec --no-build bin/hlsc.exe -- bench-serve --socket /tmp/hlsc_bench.sock \
	  --clients 8 --requests 4 --design fir8 --cmd schedule --json /tmp/hlsc_bench_load.json; \
	rc=$$?; kill -TERM $$pid; wait $$pid; [ $$rc -eq 0 ] || exit $$rc
	@dune exec --no-build bin/hlsc.exe -- serve --socket /tmp/hlsc_bench.sock --jobs 4 \
	  --store-dir /tmp/hlsc_bench_store --chaos-seed 1 --chaos-kill 0.3 --chaos-corrupt 0.3 & \
	pid=$$!; \
	for i in $$(seq 50); do [ -S /tmp/hlsc_bench.sock ] && break; sleep 0.1; done; \
	dune exec --no-build bin/hlsc.exe -- bench-chaos --socket /tmp/hlsc_bench.sock \
	  --requests 24 --retries 8 --json /tmp/hlsc_bench_chaos.json; \
	rc=$$?; kill -TERM $$pid; wait $$pid; [ $$rc -eq 0 ] || exit $$rc; \
	printf '{"load":%s,"chaos":%s}\n' \
	  "$$(cat /tmp/hlsc_bench_load.json)" "$$(cat /tmp/hlsc_bench_chaos.json)" \
	  > BENCH_serve.json; \
	rm -rf /tmp/hlsc_bench_store; \
	echo "wrote BENCH_serve.json"

# daemon round trip: submit vs offline byte-identity, cache hits, SIGTERM
# drain without a leaked socket (what CI's serve-smoke job runs)
serve-smoke:
	./scripts/serve_smoke.sh

# the chaos acceptance gate: kill/stall/corrupt injection with a fixed
# seed, byte-identity through the retrying client, graceful drain, and
# quarantine-on-restart of corrupt store entries (CI's chaos-smoke job)
chaos-smoke:
	./scripts/chaos_smoke.sh

# the CLI exit-code contract: 0 ok / 1 typed diagnostic / 124 CLI misuse
exit-codes:
	./scripts/exit_codes.sh

# regenerate-and-compare gate for the committed paper artifacts
golden:
	./scripts/check_golden.sh

# what CI's bench-smoke job runs: one-rep sched + reduced-iteration
# netlist benches (so the experiment code paths stay alive) plus the
# golden byte-identity gate on Tables 1-4 / Fig 10-11
bench-smoke:
	dune exec bench/main.exe -- sched netlist --smoke
	./scripts/check_golden.sh

clean:
	dune clean
