.PHONY: all build test faults dse check bench bench-dse clean

all: build

build:
	dune build @all

test:
	dune runtest

# just the fault-injection suite (degraded libraries, malformed designs,
# exhausted budgets, degradation-ladder acceptance)
faults:
	dune exec test/test_main.exe -- test faults

# just the design-space-exploration suite (determinism across worker
# counts, memo-cache behaviour, Pareto-front dominance property)
dse:
	dune exec test/test_main.exe -- test dse

# the one target CI needs: everything builds (lib/diag, lib/check and
# lib/dse with warnings-as-errors, see their dune files), the full suite
# passes, and the fault suite is re-run on its own so its output is visible
check: build test faults

bench:
	dune exec bench/main.exe

# the DSE throughput experiment: sweeps the IDCT grid at --jobs 1 and
# --jobs 4 plus a cached re-sweep, and writes BENCH_dse.json
bench-dse:
	dune exec bench/main.exe -- dse

clean:
	dune clean
