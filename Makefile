.PHONY: all build test faults dse check fmt ci bench bench-dse bench-netlist bench-sched bench-smoke bench-serve serve-smoke exit-codes golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# just the fault-injection suite (degraded libraries, malformed designs,
# exhausted budgets, degradation-ladder acceptance)
faults:
	dune exec test/test_main.exe -- test faults

# just the design-space-exploration suite (determinism across worker
# counts, memo-cache behaviour, Pareto-front dominance property)
dse:
	dune exec test/test_main.exe -- test dse

# the one target CI needs: everything builds (lib/diag, lib/check, lib/dse
# and lib/netlist with warnings-as-errors, see their dune files), the full
# suite passes, and the fault suite is re-run on its own so its output is
# visible
check: build test faults

# reformat in place (requires ocamlformat; a no-op under the repo's
# `disable` profile until formatting is adopted file by file)
fmt:
	dune build @fmt --auto-promote

# what .github/workflows/ci.yml runs: the full check plus the format gate.
# The format gate is skipped gracefully where ocamlformat is not installed.
ci: check
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

# the DSE throughput experiment: sweeps the IDCT grid at --jobs 1 and
# --jobs 4 plus a cached re-sweep, and writes BENCH_dse.json
bench-dse:
	dune exec bench/main.exe -- dse

# the netlist engine experiment: incremental timing-query throughput and
# trial/rollback transaction throughput, written to BENCH_netlist.json
bench-netlist:
	dune exec bench/main.exe -- netlist

# the scheduler warm-start experiment: relaxation-loop wall clock with and
# without warm-start on synthetic-350 (pipelined + sequential) and idct,
# written to BENCH_sched.json
bench-sched:
	dune exec bench/main.exe -- sched

# the compile-service experiment: start a daemon, drive it with 8
# concurrent clients x 4 requests (cold then warm phase), write
# BENCH_serve.json, drain the daemon
bench-serve:
	dune build bin/hlsc.exe
	@rm -f /tmp/hlsc_bench.sock
	@dune exec --no-build bin/hlsc.exe -- serve --socket /tmp/hlsc_bench.sock --jobs 4 & \
	pid=$$!; \
	for i in $$(seq 50); do [ -S /tmp/hlsc_bench.sock ] && break; sleep 0.1; done; \
	dune exec --no-build bin/hlsc.exe -- bench-serve --socket /tmp/hlsc_bench.sock \
	  --clients 8 --requests 4 --design fir8 --cmd schedule --json BENCH_serve.json; \
	rc=$$?; kill -TERM $$pid; wait $$pid; exit $$rc

# daemon round trip: submit vs offline byte-identity, cache hits, SIGTERM
# drain without a leaked socket (what CI's serve-smoke job runs)
serve-smoke:
	./scripts/serve_smoke.sh

# the CLI exit-code contract: 0 ok / 1 typed diagnostic / 124 CLI misuse
exit-codes:
	./scripts/exit_codes.sh

# regenerate-and-compare gate for the committed paper artifacts
golden:
	./scripts/check_golden.sh

# what CI's bench-smoke job runs: one-rep sched + reduced-iteration
# netlist benches (so the experiment code paths stay alive) plus the
# golden byte-identity gate on Tables 1-4 / Fig 10-11
bench-smoke:
	dune exec bench/main.exe -- sched netlist --smoke
	./scripts/check_golden.sh

clean:
	dune clean
