(** Compile-service daemon tests: run a real [Server.t] in-process on a
    throwaway Unix socket and exercise it through [Client] plus raw
    frames — byte-identity with the offline CLI rendering, cache-hit
    determinism, cancellation, and the protocol fault matrix (malformed
    frame, oversized frame, version mismatch). *)

module Server = Hls_server.Server
module Client = Hls_server.Client
module P = Hls_server.Protocol
module Render = Hls_server.Render
module Design_db = Hls_server.Design_db
module Flow = Hls_flow.Flow

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hlsc_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?(workers = 2) ?(queue_capacity = 64) ?shed_watermark ?cache_cap f =
  (* the daemon runs in-process: a test that makes it write to a reset
     peer (e.g. slow-client eviction) must not die of SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let socket = fresh_socket () in
  let shed_watermark =
    match shed_watermark with Some w -> w | None -> Server.default_config.Server.shed_watermark
  in
  let cache_cap =
    Option.value cache_cap ~default:Server.default_config.Server.cache_cap
  in
  let cfg =
    {
      Server.default_config with
      Server.socket;
      workers;
      queue_capacity;
      shed_watermark;
      cache_cap;
    }
  in
  match Server.create cfg with
  | Error m -> Alcotest.failf "server create: %s" m
  | Ok srv ->
      let th = Thread.create Server.serve srv in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Thread.join th;
          if Sys.file_exists socket then Alcotest.fail "socket left bound after drain")
        (fun () -> f socket)

let connect socket =
  match Client.connect ~socket () with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let ok_outcome = function
  | Ok (o : P.outcome) ->
      if o.P.o_status <> P.S_ok then
        Alcotest.failf "job %d not ok: %s" o.P.o_job
          (Option.value o.P.o_diag ~default:(P.status_to_string o.P.o_status));
      o
  | Error m -> Alcotest.failf "submit: %s" m

(* the offline CLI's stdout for a spec: same options the daemon derives,
   same shared renderer — what [hlsc schedule/pipeline/flow] prints *)
let offline_output (spec : P.job_spec) =
  let design =
    match Design_db.load spec.P.js_design with
    | Ok d -> d
    | Error m -> Alcotest.failf "load: %s" m
  in
  let options =
    {
      Flow.default_options with
      Flow.ii = spec.P.js_ii;
      clock_ps = spec.P.js_clock_ps;
      min_latency = spec.P.js_min_latency;
      max_latency = spec.P.js_max_latency;
      verify = spec.P.js_verify;
    }
  in
  match Flow.run ~options design with
  | Ok r -> Render.output spec.P.js_cmd r
  | Error d -> Alcotest.failf "offline flow failed: %s" (Hls_diag.Diag.to_string d)

let test_byte_identity () =
  with_server @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  List.iter
    (fun (cmd, design, ii) ->
      let spec = P.job_spec ?ii cmd (`Builtin design) in
      let o = ok_outcome (Client.submit c spec) in
      Alcotest.(check string)
        (Printf.sprintf "%s %s" (P.cmd_to_string cmd) design)
        (offline_output spec) o.P.o_output)
    [ (P.C_schedule, "example1", Some 2); (P.C_pipeline, "fir8", Some 1); (P.C_flow, "fft", None) ]

let test_cache_hit_determinism () =
  with_server @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let spec = P.job_spec ~ii:2 P.C_schedule (`Builtin "example1") in
  let first = ok_outcome (Client.submit c spec) in
  Alcotest.(check bool) "first is a cold compile" false first.P.o_cached;
  let second = ok_outcome (Client.submit c spec) in
  Alcotest.(check bool) "second served from cache" true second.P.o_cached;
  Alcotest.(check string) "identical bytes" first.P.o_output second.P.o_output;
  (* same design, different command: flow reuses the cached schedule entry *)
  let flow_spec = P.job_spec ~ii:2 P.C_flow (`Builtin "example1") in
  let third = ok_outcome (Client.submit c flow_spec) in
  Alcotest.(check bool) "other command re-renders the cached flow" true third.P.o_cached

let test_inline_source () =
  with_server @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let src =
    "design wire_acc {\n" ^ "  in  sample : 12;\n" ^ "  out total  : 16;\n"
    ^ "  var acc    : 16;\n" ^ "  acc = 0;\n" ^ "  wait();\n"
    ^ "  do [name=main, latency=1..6, ii=2] {\n" ^ "    acc = acc + $sample;\n"
    ^ "    wait();\n" ^ "    $total = acc;\n" ^ "  } while (1);\n" ^ "}\n"
  in
  let spec = P.job_spec P.C_schedule (`Source src) in
  match Client.submit c spec with
  | Ok o ->
      Alcotest.(check bool)
        ("inline source compiles: " ^ Option.value o.P.o_diag ~default:"")
        true (o.P.o_status = P.S_ok)
  | Error m -> Alcotest.failf "inline submit: %s" m

let test_bad_design () =
  with_server @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.submit c (P.job_spec P.C_schedule (`Builtin "no_such_design")) with
  | Ok _ -> Alcotest.fail "unknown design accepted"
  | Error m ->
      Alcotest.(check bool) ("typed bad_design error: " ^ m) true
        (String.length m >= 10 && String.sub m 0 10 = "bad_design");
      (* the daemon must still be serving *)
      ignore (ok_outcome (Client.submit c (P.job_spec ~ii:2 P.C_schedule (`Builtin "example1"))))

let test_cancellation () =
  (* one worker: the first job occupies it, the second sits in the queue
     where cancellation is deterministic *)
  with_server ~workers:1 @@ fun socket ->
  let c1 = connect socket in
  let c2 = connect socket in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2)
  @@ fun () ->
  let long = P.job_spec ~verify:true P.C_flow (`Builtin "idct") in
  let quick = P.job_spec ~ii:2 P.C_schedule (`Builtin "example1") in
  let id1 =
    match Client.submit_nowait c1 long with
    | Ok id -> id
    | Error m -> Alcotest.failf "submit long: %s" m
  in
  ignore id1;
  let id2 =
    match Client.submit_nowait c1 quick with
    | Ok id -> id
    | Error m -> Alcotest.failf "submit queued: %s" m
  in
  (match Client.cancel c2 id2 with
  | Ok found -> Alcotest.(check bool) "queued job was found" true found
  | Error m -> Alcotest.failf "cancel: %s" m);
  let o1 = match Client.await c1 with Ok o -> o | Error m -> Alcotest.failf "await 1: %s" m in
  let o2 = match Client.await c1 with Ok o -> o | Error m -> Alcotest.failf "await 2: %s" m in
  (* results arrive in completion order on this connection; sort by id *)
  let long_o, quick_o = if o1.P.o_job = id2 then (o2, o1) else (o1, o2) in
  Alcotest.(check bool) "long job completed" true (long_o.P.o_status = P.S_ok);
  Alcotest.(check bool) "queued job cancelled" true (quick_o.P.o_status = P.S_cancelled);
  (* daemon keeps serving after a cancellation *)
  ignore (ok_outcome (Client.submit c2 quick))

let test_concurrent_clients () =
  with_server ~workers:2 @@ fun socket ->
  let errors = Atomic.make 0 in
  let worker i =
    match Client.connect ~socket () with
    | Error _ -> Atomic.incr errors
    | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let spec =
          P.job_spec ~ii:2 ~verify:false
            ~clock_ps:(1600.0 +. float_of_int i)
            P.C_schedule (`Builtin "example1")
        in
        (match Client.submit c spec with
        | Ok o when o.P.o_status = P.S_ok -> ()
        | _ -> Atomic.incr errors)
  in
  let threads = List.init 6 (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no client failed" 0 (Atomic.get errors)

(* ---- raw-frame fault matrix ---- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_hello fd =
  P.write_frame fd (P.request_to_json (P.Hello P.version));
  match P.read_frame fd with
  | Ok j when P.member "type" j = Some (P.String "hello") -> ()
  | _ -> Alcotest.fail "no hello answer"

let expect_error_code fd expected =
  match P.read_frame fd with
  | Ok j -> (
      match (P.member "type" j, Option.bind (P.member "code" j) P.get_string) with
      | Some (P.String "error"), Some code -> Alcotest.(check string) "error code" expected code
      | _ -> Alcotest.failf "expected %s error, got %s" expected (P.to_string j))
  | Error e -> Alcotest.failf "expected %s error, got frame error %s" expected
                 (P.frame_error_to_string e)

let write_raw_frame fd payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  ignore (Unix.write fd hdr 0 4);
  ignore (Unix.write_substring fd payload 0 n)

let test_malformed_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  raw_hello fd;
  write_raw_frame fd "{this is not json";
  expect_error_code fd "bad_json";
  (* the stream stays framed: a well-formed request still works *)
  P.write_frame fd (P.request_to_json P.Stats);
  match P.read_frame fd with
  | Ok j -> Alcotest.(check bool) "stats after bad frame" true
              (P.member "type" j = Some (P.String "stats"))
  | Error e -> Alcotest.failf "stats after bad frame: %s" (P.frame_error_to_string e)

let test_oversized_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  raw_hello fd;
  (* declare an over-limit length; ship the payload so the daemon can
     drain it and keep the connection framed *)
  let n = P.max_frame + 1 in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  ignore (Unix.write fd hdr 0 4);
  (* the daemon discards the payload as it arrives, so shipping the whole
     oversized body cannot deadlock *)
  let chunk = Bytes.make 65536 ' ' in
  let rec ship left =
    if left > 0 then begin
      let k = min left (Bytes.length chunk) in
      ignore (Unix.write fd chunk 0 k);
      ship (left - k)
    end
  in
  ship n;
  expect_error_code fd "frame_too_large";
  (* connection survives *)
  P.write_frame fd (P.request_to_json P.Stats);
  match P.read_frame fd with
  | Ok j -> Alcotest.(check bool) "stats after oversized frame" true
              (P.member "type" j = Some (P.String "stats"))
  | Error e -> Alcotest.failf "stats after oversized: %s" (P.frame_error_to_string e)

let test_proto_mismatch_and_hello_required () =
  with_server @@ fun socket ->
  (* wrong protocol version is refused and the connection closed *)
  let fd = raw_connect socket in
  P.write_frame fd (P.request_to_json (P.Hello 9999));
  expect_error_code fd "proto_mismatch";
  (match P.read_frame fd with
  | Error P.F_eof -> ()
  | Ok j -> Alcotest.failf "expected close after mismatch, got %s" (P.to_string j)
  | Error e -> Alcotest.failf "expected clean close, got %s" (P.frame_error_to_string e));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* requests before hello are refused *)
  let fd2 = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
  @@ fun () ->
  P.write_frame fd2 (P.request_to_json P.Stats);
  expect_error_code fd2 "hello_required"

let test_disconnect_mid_stream () =
  with_server ~workers:1 @@ fun socket ->
  (* submit with trace streaming, then vanish mid-job: the daemon must
     swallow the dead peer and keep serving *)
  let fd = raw_connect socket in
  raw_hello fd;
  P.write_frame fd
    (P.request_to_json (P.Submit (P.job_spec ~trace:true P.C_flow (`Builtin "idct"))));
  (match P.read_frame fd with
  | Ok j when P.member "type" j = Some (P.String "accepted") -> ()
  | _ -> Alcotest.fail "no accepted frame");
  Unix.close fd;
  (* a fresh client still gets served, after the orphaned job finishes *)
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (ok_outcome (Client.submit c (P.job_spec ~ii:2 P.C_schedule (`Builtin "example1"))))

(* ---- admission-control error paths, observed by a real client ---- *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* poll until the single worker has picked up the long job, so queue
   depth is deterministic for the admission tests *)
let wait_in_flight socket n =
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let infl =
      match Client.stats c with
      | Ok j -> Option.value (Option.bind (P.member "in_flight" j) P.get_int) ~default:0
      | Error m -> Alcotest.failf "stats: %s" m
    in
    if infl >= n then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "worker never reached %d in-flight job(s)" n
    else begin
      Thread.yield ();
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let long_spec ?(clock = 1600.0) () =
  P.job_spec ~verify:true ~clock_ps:clock P.C_flow (`Builtin "idct")

let test_queue_full () =
  with_server ~workers:1 ~queue_capacity:1 @@ fun socket ->
  let c1 = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
  (match Client.submit_nowait c1 (long_spec ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit long: %s" m);
  wait_in_flight socket 1;
  (match Client.submit_nowait c1 (long_spec ~clock:1601.0 ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit queued: %s" m);
  (* queue is now at capacity: the next submit is refused, typed *)
  let c2 = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  (match Client.submit c2 (long_spec ~clock:1602.0 ()) with
  | Ok _ -> Alcotest.fail "over-capacity submit accepted"
  | Error m -> Alcotest.(check bool) ("typed queue_full: " ^ m) true (has_prefix "queue_full" m));
  (* both admitted jobs still complete *)
  let o1 = match Client.await c1 with Ok o -> o | Error m -> Alcotest.failf "await 1: %s" m in
  let o2 = match Client.await c1 with Ok o -> o | Error m -> Alcotest.failf "await 2: %s" m in
  Alcotest.(check bool) "admitted jobs completed" true
    (o1.P.o_status = P.S_ok && o2.P.o_status = P.S_ok)

let test_overloaded_shed_but_cache_served () =
  with_server ~workers:1 ~shed_watermark:(Some 1) @@ fun socket ->
  let c1 = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
  (* warm the cache before saturating the daemon *)
  let quick = P.job_spec ~ii:2 P.C_schedule (`Builtin "example1") in
  ignore (ok_outcome (Client.submit c1 quick));
  (match Client.submit_nowait c1 (long_spec ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit long: %s" m);
  wait_in_flight socket 1;
  (match Client.submit_nowait c1 (long_spec ~clock:1601.0 ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit queued: %s" m);
  (* at the watermark: fresh work is shed with the typed reject… *)
  let c2 = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  (match Client.submit c2 (long_spec ~clock:1602.0 ()) with
  | Ok _ -> Alcotest.fail "shed-watermark submit accepted"
  | Error m -> Alcotest.(check bool) ("typed overloaded: " ^ m) true (has_prefix "overloaded" m));
  (* …but a cache hit is served even while overloaded *)
  (match Client.submit c2 quick with
  | Ok o ->
      Alcotest.(check bool) "cache hit served under shed" true
        (o.P.o_status = P.S_ok && o.P.o_cached)
  | Error m -> Alcotest.failf "cache hit shed: %s" m);
  ignore (Client.await c1);
  ignore (Client.await c1)

let test_draining_observed () =
  with_server ~workers:1 @@ fun socket ->
  let c1 = connect socket in
  let c2 = connect socket in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2)
  @@ fun () ->
  (match Client.submit_nowait c1 (long_spec ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit long: %s" m);
  wait_in_flight socket 1;
  (match Client.shutdown_server c2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shutdown verb: %s" m);
  (* the daemon is now draining: established connections get the typed
     refusal on new work… *)
  (match Client.submit c2 (P.job_spec ~ii:2 P.C_schedule (`Builtin "example1")) with
  | Ok _ -> Alcotest.fail "submit accepted while draining"
  | Error m -> Alcotest.(check bool) ("typed draining: " ^ m) true (has_prefix "draining" m));
  (* …while the in-flight job still completes *)
  match Client.await c1 with
  | Ok o -> Alcotest.(check bool) "in-flight job finished during drain" true (o.P.o_status = P.S_ok)
  | Error m -> Alcotest.failf "await during drain: %s" m

(* ---- wire-shape roundtrips for the new frames ---- *)

let test_new_frame_roundtrips () =
  (* health request *)
  (match P.request_of_json (P.request_to_json P.Health) with
  | Ok P.Health -> ()
  | Ok _ -> Alcotest.fail "health roundtrip changed the request kind"
  | Error m -> Alcotest.failf "health roundtrip: %s" m);
  (* deadline_s travels with the spec *)
  let spec = P.job_spec ~deadline_s:1.5 P.C_schedule (`Builtin "example1") in
  (match P.request_of_json (P.request_to_json (P.Submit spec)) with
  | Ok (P.Submit spec2) ->
      Alcotest.(check (option (float 1e-9))) "deadline_s preserved" (Some 1.5) spec2.P.js_deadline_s
  | Ok _ -> Alcotest.fail "roundtrip changed the request kind"
  | Error m -> Alcotest.failf "deadline roundtrip: %s" m);
  (* service-tier failures are result frames a stock client decodes *)
  List.iter
    (fun code ->
      let frame =
        P.Obj
          [
            ("type", P.String "result");
            ("job", P.Int 7);
            ("status", P.String "error");
            ("diag", P.String ("serve error [" ^ code ^ "]: lost it"));
            ("code", P.String code);
            ("cached", P.Bool false);
            ("wall_s", P.Float 0.25);
          ]
      in
      match P.outcome_of_json frame with
      | Ok o ->
          Alcotest.(check bool) (code ^ " decodes as error") true (o.P.o_status = P.S_error);
          Alcotest.(check (option string)) (code ^ " code survives") (Some code) o.P.o_code
      | Error m -> Alcotest.failf "%s outcome: %s" code m)
    [ "worker_lost"; "deadline_exceeded" ];
  (* the overloaded reject carries its retry hint *)
  let j = P.error_frame ~job:3 ~extra:[ ("retry_after_ms", P.Int 200) ] ~code:"overloaded" "shed" in
  Alcotest.(check (option int)) "retry_after_ms" (Some 200)
    (Option.bind (P.member "retry_after_ms" j) P.get_int);
  Alcotest.(check (option string)) "code" (Some "overloaded")
    (Option.bind (P.member "code" j) P.get_string)

let test_stats_shape () =
  with_server @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (ok_outcome (Client.submit c (P.job_spec ~ii:2 P.C_schedule (`Builtin "example1"))));
  let j = match Client.stats c with Ok j -> j | Error m -> Alcotest.failf "stats: %s" m in
  let geti path =
    match Option.bind (P.member path j) P.get_int with
    | Some n -> n
    | None -> Alcotest.failf "stats field %s missing" path
  in
  Alcotest.(check int) "proto" P.version (geti "proto");
  Alcotest.(check bool) "workers >= 1" true (geti "workers" >= 1);
  let jobs = Option.get (P.member "jobs" j) in
  Alcotest.(check bool) "submitted >= 1" true
    (match Option.bind (P.member "submitted" jobs) P.get_int with Some n -> n >= 1 | None -> false);
  let cache = Option.get (P.member "cache" j) in
  Alcotest.(check bool) "cache entries >= 1" true
    (match Option.bind (P.member "entries" cache) P.get_int with Some n -> n >= 1 | None -> false)

(* a client that submits requests but never reads a reply must fill its
   bounded outbox and be evicted — and the daemon must keep serving
   everyone else meanwhile (regression: result writes used to happen
   under the global mutex, so one such client wedged the whole tier) *)
let test_slow_client_evicted () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  raw_hello fd;
  (* ~4000 stats replies ≫ socket buffers + the 256-frame outbox, so the
     daemon is guaranteed to hit the overflow path; the eviction surfaces
     to us as EPIPE/ECONNRESET on a later request write *)
  let stats_req = P.to_string (P.request_to_json P.Stats) in
  let evicted = ref false in
  (try
     for _ = 1 to 4000 do
       write_raw_frame fd stats_req
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> evicted := true);
  Alcotest.(check bool) "never-reading client evicted" true !evicted;
  (* the daemon must answer a well-behaved client promptly afterwards *)
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.stats c with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "daemon wedged by a slow client: %s" m);
  ignore (ok_outcome (Client.submit c (P.job_spec ~ii:2 P.C_schedule (`Builtin "example1"))))

(* the in-memory cache is bounded: beyond [cache_cap] entries the oldest
   is evicted, and an evicted key recompiles to byte-identical output *)
let test_cache_bounded () =
  with_server ~cache_cap:2 @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let spec1 = P.job_spec ~ii:2 P.C_schedule (`Builtin "example1") in
  let first = ok_outcome (Client.submit c spec1) in
  ignore (ok_outcome (Client.submit c (P.job_spec ~ii:1 P.C_pipeline (`Builtin "fir8"))));
  ignore (ok_outcome (Client.submit c (P.job_spec P.C_flow (`Builtin "fft"))));
  let j = match Client.stats c with Ok j -> j | Error m -> Alcotest.failf "stats: %s" m in
  let entries =
    match
      Option.bind (P.member "cache" j) (fun cj -> Option.bind (P.member "entries" cj) P.get_int)
    with
    | Some n -> n
    | None -> Alcotest.fail "stats cache.entries missing"
  in
  Alcotest.(check int) "cache capped at 2 entries" 2 entries;
  (* the first key was evicted: a resubmit is a cold compile again, and
     its bytes are identical to the original answer *)
  let again = ok_outcome (Client.submit c spec1) in
  Alcotest.(check bool) "evicted key recompiles (not a cache hit)" false again.P.o_cached;
  Alcotest.(check string) "recompile is byte-identical" first.P.o_output again.P.o_output

(* two clients racing identical submits of one design fingerprint must
   trigger exactly one compile: the second rides the first's in-flight
   job and both answers are byte-identical *)
let test_coalesced_submits () =
  with_server ~workers:1 @@ fun socket ->
  let c1 = connect socket in
  let c2 = connect socket in
  let c3 = connect socket in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2;
      Client.close c3)
  @@ fun () ->
  (* occupy the only worker so the racing submits both sit in admission *)
  (match Client.submit_nowait c1 (long_spec ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit long: %s" m);
  wait_in_flight socket 1;
  let spec = P.job_spec ~verify:true P.C_flow (`Builtin "fft") in
  (match Client.submit_nowait c2 spec with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit racer 1: %s" m);
  (match Client.submit_nowait c3 spec with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit racer 2: %s" m);
  (* both admitted: the daemon must have coalesced the second before any
     of them compiles (the worker is still busy) *)
  let stats_int path =
    let c = connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    match Client.stats c with
    | Ok j ->
        Option.value
          (Option.bind (P.member "jobs" j) (fun o ->
               Option.bind (P.member path o) P.get_int))
          ~default:(-1)
    | Error m -> Alcotest.failf "stats: %s" m
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_coalesced () =
    if stats_int "coalesced" >= 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "racing submit was never coalesced"
    else begin
      Unix.sleepf 0.01;
      wait_coalesced ()
    end
  in
  wait_coalesced ();
  ignore (Client.await c1);
  let o2 = match Client.await c2 with Ok o -> o | Error m -> Alcotest.failf "await 2: %s" m in
  let o3 = match Client.await c3 with Ok o -> o | Error m -> Alcotest.failf "await 3: %s" m in
  Alcotest.(check bool) "both racers ok" true (o2.P.o_status = P.S_ok && o3.P.o_status = P.S_ok);
  Alcotest.(check string) "byte-identical answers" o2.P.o_output o3.P.o_output;
  Alcotest.(check bool) "exactly one compiled fresh, one rode it" true
    (o2.P.o_cached <> o3.P.o_cached);
  Alcotest.(check int) "one submit coalesced" 1 (stats_int "coalesced");
  Alcotest.(check string) "matches the offline CLI" (offline_output spec) o2.P.o_output

let test_json_roundtrip () =
  let samples =
    [
      {|{"a":1,"b":[true,false,null],"c":"x\"y\\z","d":-2.5,"e":{"nested":"é\n"}}|};
      {|[1,2,3]|};
      {|"just a string"|};
      {|-42|};
    ]
  in
  List.iter
    (fun s ->
      match P.of_string s with
      | Error m -> Alcotest.failf "parse %s: %s" s m
      | Ok j -> (
          match P.of_string (P.to_string j) with
          | Ok j2 -> Alcotest.(check bool) ("roundtrip " ^ s) true (j = j2)
          | Error m -> Alcotest.failf "reparse: %s" m))
    samples;
  (match P.of_string "{broken" with
  | Ok _ -> Alcotest.fail "accepted broken json"
  | Error _ -> ());
  let spec =
    P.job_spec ~ii:3 ~min_latency:4 ~max_latency:9 ~max_passes:50 ~timeout_s:1.5 ~verify:false
      ~trace:true ~clock_ps:1200.0 P.C_pipeline (`Source "design d {}")
  in
  match P.request_of_json (P.request_to_json (P.Submit spec)) with
  | Ok (P.Submit spec2) -> Alcotest.(check bool) "job_spec roundtrip" true (spec = spec2)
  | Ok _ -> Alcotest.fail "roundtrip changed the request kind"
  | Error m -> Alcotest.failf "request roundtrip: %s" m

let suite =
  [
    Alcotest.test_case "json + request roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "submit is byte-identical to offline CLI" `Quick test_byte_identity;
    Alcotest.test_case "cache hits are deterministic" `Quick test_cache_hit_determinism;
    Alcotest.test_case "inline .bhv source over the wire" `Quick test_inline_source;
    Alcotest.test_case "unknown design: typed error, daemon survives" `Quick test_bad_design;
    Alcotest.test_case "cancellation leaves the daemon serving" `Quick test_cancellation;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "malformed frame: typed error, stream survives" `Quick test_malformed_frame;
    Alcotest.test_case "oversized frame: typed error, stream survives" `Quick test_oversized_frame;
    Alcotest.test_case "version mismatch + hello-first" `Quick test_proto_mismatch_and_hello_required;
    Alcotest.test_case "disconnect mid-stream" `Quick test_disconnect_mid_stream;
    Alcotest.test_case "queue_full observed by a client" `Quick test_queue_full;
    Alcotest.test_case "overloaded shed; cache hits still served" `Quick
      test_overloaded_shed_but_cache_served;
    Alcotest.test_case "draining observed by a client" `Quick test_draining_observed;
    Alcotest.test_case "racing identical submits coalesce to one compile" `Quick
      test_coalesced_submits;
    Alcotest.test_case "new frame roundtrips" `Quick test_new_frame_roundtrips;
    Alcotest.test_case "stats shape" `Quick test_stats_shape;
    Alcotest.test_case "slow client evicted, daemon unharmed" `Quick test_slow_client_evicted;
    Alcotest.test_case "cache bounded with FIFO eviction" `Quick test_cache_bounded;
  ]
