(** Reporting utilities: tables, plots, CSV, Pareto fronts. *)

let test_table_render () =
  let s = Hls_report.Table.render ~title:"t" [ [ "a"; "b" ]; [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 't');
  (* all data rows present *)
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true contains)
    [ "333"; "22" ]

let test_table_ragged_rows () =
  (* missing cells render as blanks, not exceptions *)
  let s = Hls_report.Table.render [ [ "a"; "b"; "c" ]; [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_plot_render () =
  let s =
    Hls_report.Plot.render ~title:"p" ~x_label:"x" ~y_label:"y"
      [ Hls_report.Plot.series "s" [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] ]
  in
  Alcotest.(check bool) "has legend" true
    (let needle = "* = s" in
     let nl = String.length needle and sl = String.length s in
     let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let test_plot_empty () =
  let s = Hls_report.Plot.render ~title:"e" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data message" true (String.length s > 0)

let test_csv () =
  let s = Hls_report.Csv.render [ [ "a"; "b,c" ]; [ "d\"e"; "f" ] ] in
  Alcotest.(check string) "escaping" "a,\"b,c\"\n\"d\"\"e\",f\n" s

let test_pareto_front () =
  let open Hls_report.Pareto in
  let pts =
    [ point ~x:1.0 ~y:10.0 "a"; point ~x:2.0 ~y:5.0 "b"; point ~x:3.0 ~y:6.0 "c";
      point ~x:4.0 ~y:1.0 "d" ]
  in
  let f = front_tags pts in
  Alcotest.(check (list string)) "dominated c removed" [ "a"; "b"; "d" ] f

let prop_front_not_dominated =
  QCheck.Test.make ~name:"no front point is dominated" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun raw ->
      let pts = List.mapi (fun i (x, y) -> Hls_report.Pareto.point ~x ~y i) raw in
      let f = Hls_report.Pareto.front pts in
      List.for_all
        (fun p -> not (List.exists (fun q -> Hls_report.Pareto.dominates q p) pts))
        f)

let prop_front_covers =
  QCheck.Test.make ~name:"every point is dominated by some front point or on it" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun raw ->
      let pts = List.mapi (fun i (x, y) -> Hls_report.Pareto.point ~x ~y i) raw in
      let f = Hls_report.Pareto.front pts in
      List.for_all
        (fun p ->
          List.exists
            (fun q ->
              q.Hls_report.Pareto.p_tag = p.Hls_report.Pareto.p_tag
              || Hls_report.Pareto.dominates q p)
            f)
        pts)

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

let test_pareto_is_on_front_structural () =
  (* regression: is_on_front compared points physically, so a caller that
     rebuilt an equal point always got false *)
  let open Hls_report.Pareto in
  let pts = [ point ~x:1.0 ~y:10.0 "a"; point ~x:2.0 ~y:5.0 "b"; point ~x:3.0 ~y:6.0 "c" ] in
  Alcotest.(check bool) "rebuilt equal point is on the front" true
    (is_on_front pts (point ~x:2.0 ~y:5.0 "b"));
  Alcotest.(check bool) "dominated point is not" false (is_on_front pts (point ~x:3.0 ~y:6.0 "c"));
  Alcotest.(check bool) "absent point is not" false (is_on_front pts (point ~x:0.5 ~y:0.5 "z"))

let prop_front_invariant_dup_reorder =
  (* regression: front kept structural duplicates, so duplicating the
     input changed the output *)
  QCheck.Test.make ~name:"front invariant under duplication and reordering" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun raw ->
      let pts = List.mapi (fun i (x, y) -> Hls_report.Pareto.point ~x ~y i) raw in
      let mangled = List.rev (pts @ List.rev pts) in
      Hls_report.Pareto.front mangled = Hls_report.Pareto.front pts)

let test_plot_log_drops_nonpositive () =
  (* regression: values <= 0 on a log axis were silently collapsed onto
     the cell of 1.0 instead of being dropped with a warning *)
  let s =
    Hls_report.Plot.render ~x_scale:Hls_report.Plot.Log10 ~title:"p" ~x_label:"x" ~y_label:"y"
      [ Hls_report.Plot.series "s" [ (0.0, 1.0); (10.0, 2.0); (100.0, 3.0) ] ]
  in
  Alcotest.(check bool) "warning emitted" true (contains s "1 non-positive point(s) dropped");
  let glyphs = String.fold_left (fun n c -> if c = '*' then n + 1 else n) 0 s in
  (* two surviving grid points plus the one in the "* = s" legend *)
  Alcotest.(check int) "non-positive point not plotted" 3 glyphs;
  (* an all-dropped series still warns *)
  let e =
    Hls_report.Plot.render ~y_scale:Hls_report.Plot.Log10 ~title:"e" ~x_label:"x" ~y_label:"y"
      [ Hls_report.Plot.series "s" [ (1.0, 0.0); (2.0, -1.0) ] ]
  in
  Alcotest.(check bool) "no-data render warns too" true
    (contains e "(no data)" && contains e "2 non-positive point(s) dropped")

let test_plot_grid_rounding () =
  (* regression: grid coordinates were truncated, not rounded, biasing
     every glyph toward the origin by up to one full cell *)
  let s =
    Hls_report.Plot.render ~width:11 ~height:1 ~title:"r" ~x_label:"x" ~y_label:"y"
      [ Hls_report.Plot.series "s" [ (0.0, 0.0); (0.56, 0.0); (1.0, 0.0) ] ]
  in
  (* grid rows render as "%10s |%s|": column c sits at index 12 + c.
     0.56 over [0,1] on an 11-wide grid is cell 5.6 -> rounds to 6. *)
  let row =
    match List.filter (fun l -> contains l "|") (String.split_on_char '\n' s) with
    | r :: _ -> r
    | [] -> Alcotest.fail "no grid row"
  in
  Alcotest.(check char) "0.56 rounds to cell 6" '*' row.[12 + 6];
  Alcotest.(check char) "cell 5 stays empty" ' ' row.[12 + 5];
  Alcotest.(check char) "x=0 at cell 0" '*' row.[12 + 0];
  Alcotest.(check char) "x=1 at cell 10" '*' row.[12 + 10]

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "plot render" `Quick test_plot_render;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot log drops non-positive" `Quick test_plot_log_drops_nonpositive;
    Alcotest.test_case "plot grid rounding" `Quick test_plot_grid_rounding;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    Alcotest.test_case "pareto is_on_front structural" `Quick test_pareto_is_on_front_structural;
    QCheck_alcotest.to_alcotest prop_front_not_dominated;
    QCheck_alcotest.to_alcotest prop_front_covers;
    QCheck_alcotest.to_alcotest prop_front_invariant_dup_reorder;
  ]
