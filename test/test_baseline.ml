(** Baseline comparators: iterative modulo scheduling and schedule-then-fold
    produce valid pipelines, and their timing-naive nature shows up as
    negative slack under the accurate model. *)

open Hls_ir
open Hls_core
open Hls_frontend

let lib = Hls_techlib.Library.artisan90

let region_of ?ii design =
  let e = Elaborate.design design in
  (e, Elaborate.main_region ?ii e)

(** Structural validity shared by both baselines: MRT discipline (no two
    ops on one instance in equivalent slots) and the modulo dependency
    constraint. *)
let check_valid (region : Region.t) (binding : Binding.t) ~ii =
  let dfg = region.Region.dfg in
  let seen = Hashtbl.create 64 in
  Hls_netlist.Netlist.iter_placements binding.Binding.net (fun op pl ->
      match pl.Binding.pl_inst with
      | Some i ->
          let key = (i, pl.Binding.pl_step mod ii) in
          Alcotest.(check bool)
            (Printf.sprintf "op %d sole owner of inst %d slot" op i)
            false (Hashtbl.mem seen key);
          Hashtbl.replace seen key op
      | None -> ());
  Dfg.iter_ops dfg (fun op ->
      List.iter
        (fun e ->
          if Region.mem region e.Dfg.src && Region.mem region e.Dfg.dst then
            match (Binding.placement binding e.Dfg.src, Binding.placement binding e.Dfg.dst) with
            | Some sp, Some dp ->
                if e.Dfg.distance = 0 then
                  Alcotest.(check bool) "intra-iteration order" true
                    (dp.Binding.pl_step >= sp.Binding.pl_step)
                else
                  Alcotest.(check bool) "modulo constraint" true
                    (dp.Binding.pl_step >= sp.Binding.pl_finish - (e.Dfg.distance * ii) + 1)
            | _ -> ())
        (Dfg.in_edges dfg op.Dfg.id))

let test_modulo_example1 () =
  (* the cycle-grained baseline cannot chain the aver recurrence, so its
     RecMII on Example 1 is 4 (one cycle per resource op of the SCC) where
     the unified chaining-aware engine achieves II=2 — Section III's
     point.  Unpinned, the search lands at its own minimum. *)
  let _, region = region_of ~ii:2 (Hls_designs.Example1.design ()) in
  match Hls_baseline.Modulo.schedule ~lib ~clock_ps:1600.0 region with
  | Error e -> Alcotest.fail e.Hls_baseline.Modulo.m_message
  | Ok m ->
      Alcotest.(check int) "cycle-grained RecMII is 4" 4 m.Hls_baseline.Modulo.m_ii;
      check_valid region m.Hls_baseline.Modulo.m_binding ~ii:m.Hls_baseline.Modulo.m_ii;
      (* every member op scheduled *)
      List.iter
        (fun op ->
          Alcotest.(check bool) "placed" true
            (Binding.placement m.Hls_baseline.Modulo.m_binding op.Dfg.id <> None))
        (Region.member_ops region)

let test_modulo_pinned_ii_too_small () =
  let _, region = region_of ~ii:2 (Hls_designs.Example1.design ()) in
  match Hls_baseline.Modulo.schedule ~ii:2 ~lib ~clock_ps:1600.0 region with
  | Error _ -> () (* II below the cycle-grained RecMII must fail cleanly *)
  | Ok m ->
      Alcotest.failf "pinned II=2 should be infeasible for the cycle-grained engine, got LI=%d"
        m.Hls_baseline.Modulo.m_li

let test_modulo_mii_search () =
  let _, region = region_of ~ii:1 (Hls_designs.Example1.design ()) in
  (* without a pinned II the search starts at max(ResMII, RecMII) *)
  match Hls_baseline.Modulo.schedule ~lib ~clock_ps:1600.0 region with
  | Error e -> Alcotest.fail e.Hls_baseline.Modulo.m_message
  | Ok m -> Alcotest.(check bool) "found an II >= 1" true (m.Hls_baseline.Modulo.m_ii >= 1)

let test_modulo_naive_timing_shows () =
  (* the baseline is cycle-grained: under the accurate model some path
     typically carries less slack than our engine leaves (which is always
     >= 0) *)
  let _, region = region_of ~ii:1 (Hls_designs.Example1.design ()) in
  match Hls_baseline.Modulo.schedule ~lib ~clock_ps:1600.0 region with
  | Error e -> Alcotest.fail e.Hls_baseline.Modulo.m_message
  | Ok m ->
      let rep = Hls_netlist.Netlist.timing_report m.Hls_baseline.Modulo.m_binding.Binding.net in
      let syn = Hls_timing.Synthesize.run lib rep in
      (* just assert the report machinery runs end to end on imported
         schedules; sign of slack depends on the MRT outcome *)
      Alcotest.(check bool) "sized area positive" true (syn.Hls_timing.Synthesize.s_area > 0.0)

let test_sehwa_example1 () =
  (* schedule-then-fold on the recurrence-bearing Example 1 at II=2 keeps
     relaxing latency without ever satisfying the fold check — the
     "separation of scheduling and constraint checking" inefficiency the
     paper describes.  On a recurrence-free II it succeeds. *)
  let _, region = region_of ~ii:2 (Hls_designs.Example1.design ()) in
  (match Hls_baseline.Sehwa.schedule ~ii:2 ~lib ~clock_ps:1600.0 region with
  | Error _ -> ()
  | Ok m -> check_valid region m.Hls_baseline.Sehwa.s_binding ~ii:2);
  (* pure-ASAP placement stretches the recurrence further than modulo
     scheduling does, so an even larger II is needed before folding works *)
  let rec first_ok ii =
    if ii > 10 then Alcotest.fail "sehwa never succeeded up to II=10"
    else
      let _, region' = region_of ~ii (Hls_designs.Example1.design ()) in
      match Hls_baseline.Sehwa.schedule ~ii ~lib ~clock_ps:1600.0 region' with
      | Ok m ->
          check_valid region' m.Hls_baseline.Sehwa.s_binding ~ii;
          Alcotest.(check bool) "needed at least one attempt" true
            (m.Hls_baseline.Sehwa.s_attempts >= 1)
      | Error _ -> first_ok (ii + 1)
  in
  first_ok 4

let test_sehwa_relaxes_on_fold_conflict () =
  (* II=1 forbids any sharing: the decoupled scheduler needs several
     schedule+fold attempts (or more resources) before folding succeeds *)
  let _, region = region_of ~ii:1 (Hls_designs.Fir.design ~taps:4 ()) in
  match Hls_baseline.Sehwa.schedule ~ii:1 ~lib ~clock_ps:1600.0 region with
  | Error _ -> () (* acceptable: folding may never succeed with the fixed resource set *)
  | Ok m -> check_valid region m.Hls_baseline.Sehwa.s_binding ~ii:1

let test_res_mii () =
  Alcotest.(check int) "10 ops on 3 insts need II>=4" 4
    (Hls_baseline.Modulo.res_mii
       [ ({ Hls_techlib.Resource.rclass = Opkind.R_mul; in_widths = []; out_width = 1 }, 3, 10) ])

let test_rec_mii () =
  let _, region = region_of ~ii:1 (Hls_designs.Dotprod.design ()) in
  (* the accumulator SCC implies a recurrence bound of at least 1 *)
  Alcotest.(check bool) "rec_mii >= 1" true (Hls_baseline.Modulo.rec_mii region >= 1)

let suite =
  [
    Alcotest.test_case "modulo: example1 search" `Quick test_modulo_example1;
    Alcotest.test_case "modulo: pinned II below RecMII" `Quick test_modulo_pinned_ii_too_small;
    Alcotest.test_case "modulo: MII search" `Quick test_modulo_mii_search;
    Alcotest.test_case "modulo: naive timing analyzable" `Quick test_modulo_naive_timing_shows;
    Alcotest.test_case "sehwa: example1" `Quick test_sehwa_example1;
    Alcotest.test_case "sehwa: fold conflicts relax" `Quick test_sehwa_relaxes_on_fold_conflict;
    Alcotest.test_case "ResMII" `Quick test_res_mii;
    Alcotest.test_case "RecMII" `Quick test_rec_mii;
  ]
