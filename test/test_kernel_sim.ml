(** Cycle-stepped folded-pipeline simulator: three-way equivalence with
    the behavioural golden model and the analytic simulator, prologue
    timing, stalling and exit squash. *)

open Hls_core
open Hls_frontend

let lib = Hls_techlib.Library.artisan90

let schedule ?ii design =
  let e = Elaborate.design design in
  let region = Elaborate.main_region ?ii e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Ok s -> (e, s)
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message

let three_way name design ii n_iters seed =
  Alcotest.test_case
    (Printf.sprintf "%s%s three-way" name
       (match ii with Some i -> Printf.sprintf " II=%d" i | None -> ""))
    `Quick
    (fun () ->
      let e, s = schedule ?ii design in
      let stim = Hls_sim.Stimulus.small_random ~seed ~n_iters ~ports:design.Ast.d_ins in
      let golden = Hls_sim.Behav.run design stim in
      let analytic = Hls_sim.Schedule_sim.run e s stim in
      let stepped = Hls_sim.Kernel_sim.run e s stim in
      List.iter
        (fun (p, _) ->
          let g = Hls_sim.Behav.port_values golden p in
          Alcotest.(check (list int)) (p ^ " analytic") g (Hls_sim.Schedule_sim.port_values analytic p);
          Alcotest.(check (list int)) (p ^ " stepped") g (Hls_sim.Kernel_sim.port_values stepped p))
        design.Ast.d_outs;
      Alcotest.(check int) "same commit count" analytic.Hls_sim.Schedule_sim.r_iters
        stepped.Hls_sim.Kernel_sim.k_iters)

let test_prologue_cycles () =
  (* an II=2, 2-stage pipeline over N iterations takes about N*II + LI
     cycles including the drain *)
  let d = Hls_designs.Example1.design () in
  let e, s = schedule ~ii:2 d in
  let n = 20 in
  let stim = Hls_sim.Stimulus.small_random ~seed:3 ~n_iters:n ~ports:d.Ast.d_ins in
  let r = Hls_sim.Kernel_sim.run e s stim in
  Alcotest.(check bool) "cycle count within pipeline bounds" true
    (r.Hls_sim.Kernel_sim.k_cycles >= n * 2 && r.Hls_sim.Kernel_sim.k_cycles <= (n * 2) + (2 * s.Scheduler.s_li));
  Alcotest.(check int) "no stalls" 0 r.Hls_sim.Kernel_sim.k_stall_cycles

let test_external_stall_freezes () =
  let d = Hls_designs.Example1.design () in
  let e, s = schedule ~ii:1 d in
  let n = 10 in
  let stim = Hls_sim.Stimulus.small_random ~seed:4 ~n_iters:n ~ports:d.Ast.d_ins in
  let free = Hls_sim.Kernel_sim.run e s stim in
  (* stall every other cycle: same outputs, about twice the cycles *)
  let stalled = Hls_sim.Kernel_sim.run ~stall_pattern:(fun c -> c mod 2 = 0) e s stim in
  Alcotest.(check (list int)) "outputs unchanged"
    (Hls_sim.Kernel_sim.port_values free "pixel")
    (Hls_sim.Kernel_sim.port_values stalled "pixel");
  Alcotest.(check bool) "stall cycles counted" true
    (stalled.Hls_sim.Kernel_sim.k_stall_cycles >= free.Hls_sim.Kernel_sim.k_cycles - 2);
  Alcotest.(check bool) "total cycles grew" true
    (stalled.Hls_sim.Kernel_sim.k_cycles > free.Hls_sim.Kernel_sim.k_cycles)

let test_exit_squash () =
  (* dotprod exits when a == 0: pipelined iterations issued past the exit
     must be squashed and produce no outputs *)
  let d = Hls_designs.Dotprod.design () in
  let e, s = schedule ~ii:1 d in
  let stim =
    Hls_sim.Stimulus.create ~n_iters:8
      [ ("a_in", [| 3; 2; 0; 9; 9; 9; 9; 9 |]); ("b_in", [| 1; 1; 1; 1; 1; 1; 1; 1 |]) ]
  in
  let golden = Hls_sim.Behav.run d stim in
  let r = Hls_sim.Kernel_sim.run e s stim in
  Alcotest.(check (list int)) "outputs stop at the exit"
    (Hls_sim.Behav.port_values golden "dot")
    (Hls_sim.Kernel_sim.port_values r "dot");
  Alcotest.(check int) "three committed iterations" 3 r.Hls_sim.Kernel_sim.k_iters

let test_watchdog_raises () =
  (* a permanently stalled pipeline must raise a typed diagnostic, not
     silently return a truncated result (the old behaviour) *)
  let d = Hls_designs.Example1.design () in
  let e, s = schedule ~ii:1 d in
  let stim = Hls_sim.Stimulus.small_random ~seed:5 ~n_iters:10 ~ports:d.Ast.d_ins in
  let check_engine engine name =
    match
      Hls_sim.Kernel_sim.run ~engine ~max_cycles:50 ~stall_pattern:(fun _ -> false) e s stim
    with
    | _ -> Alcotest.failf "%s engine: watchdog did not fire" name
    | exception Hls_sim.Kernel_sim.Watchdog diag ->
        Alcotest.(check string) (name ^ " diag code") "watchdog_exceeded" diag.Hls_diag.Diag.d_code
  in
  check_engine `Interp "interpreted";
  check_engine `Compiled "compiled";
  (* a generous default cap must not fire on a normal run *)
  let r = Hls_sim.Kernel_sim.run e s stim in
  Alcotest.(check bool) "normal run completes" true (r.Hls_sim.Kernel_sim.k_iters > 0)

(* QCheck: the compiled engine is bit-identical to the interpreter on
   random designs — outputs and all four counters — including under
   external stall patterns interacting with data-dependent exits. *)
let prop_interp_eq_compiled =
  QCheck.Test.make ~name:"interpreted == compiled on random designs" ~count:60
    QCheck.(pair small_nat (int_range 0 3))
    (fun (seed, duty) ->
      let cseed = (seed * 7919) + 13 in
      let d = Hls_sim.Equiv.gen_design ~seed:cseed in
      let e = Elaborate.design d in
      let ii = match cseed mod 4 with 0 -> None | n -> Some n in
      let region = Elaborate.main_region ?ii e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail () (* infeasible micro-architecture *)
      | Ok s -> (
          let stim =
            Hls_sim.Stimulus.small_random ~seed:cseed ~n_iters:((cseed mod 30) + 5)
              ~ports:d.Ast.d_ins
          in
          let stall_pattern c =
            match duty with
            | 0 -> true
            | 1 -> c mod 2 = 0
            | 2 -> c mod 3 <> 0
            | _ -> (c * 2654435761) land 7 <> 0
          in
          match
            ( Hls_sim.Kernel_sim.run ~engine:`Interp ~stall_pattern e s stim,
              Hls_sim.Kernel_sim.run ~engine:`Compiled ~stall_pattern e s stim )
          with
          | exception exn ->
              QCheck.Test.fail_reportf "seed %d duty %d: raised %s" cseed duty
                (Printexc.to_string exn)
          | i, c ->
              if i <> c then
                QCheck.Test.fail_reportf
                  "seed %d duty %d: interp {iters=%d;cycles=%d;stalls=%d;squashed=%d} vs compiled \
                   {iters=%d;cycles=%d;stalls=%d;squashed=%d}"
                  cseed duty i.Hls_sim.Kernel_sim.k_iters i.Hls_sim.Kernel_sim.k_cycles
                  i.Hls_sim.Kernel_sim.k_stall_cycles i.Hls_sim.Kernel_sim.k_squashed
                  c.Hls_sim.Kernel_sim.k_iters c.Hls_sim.Kernel_sim.k_cycles
                  c.Hls_sim.Kernel_sim.k_stall_cycles c.Hls_sim.Kernel_sim.k_squashed
              else true))

let test_fuzz_gate () =
  let report = Hls_sim.Equiv.fuzz ~cases:200 ~seed:2026 () in
  Alcotest.(check bool)
    (Hls_sim.Equiv.fuzz_to_string report)
    true
    (Hls_sim.Equiv.fuzz_ok report)

let suite =
  [
    three_way "example1" (Hls_designs.Example1.design ()) None 40 31;
    three_way "example1" (Hls_designs.Example1.design ()) (Some 2) 40 32;
    three_way "example1" (Hls_designs.Example1.design ()) (Some 1) 40 33;
    three_way "fir8" (Hls_designs.Fir.design ()) (Some 1) 30 34;
    three_way "fft" (Hls_designs.Fft.design ()) (Some 2) 30 35;
    three_way "agc" (Hls_designs.Agc.design ()) (Some 2) 30 36;
    three_way "sobel" (Hls_designs.Conv.design ()) None 25 37;
    Alcotest.test_case "prologue/drain cycles" `Quick test_prologue_cycles;
    Alcotest.test_case "external stall freezes" `Quick test_external_stall_freezes;
    Alcotest.test_case "exit squash" `Quick test_exit_squash;
    Alcotest.test_case "watchdog raises typed diag" `Quick test_watchdog_raises;
    QCheck_alcotest.to_alcotest prop_interp_eq_compiled;
    Alcotest.test_case "randomized three-way fuzz gate" `Slow test_fuzz_gate;
  ]
