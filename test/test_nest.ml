(** Loop-nest pipelining: the frontend flattening rewrite, per-dimension
    modulo constraints, hierarchical bottom-up composition, and the
    end-to-end property that a flattened nest simulates byte-identically
    through the behavioural model, the schedule simulator and the folded
    kernel simulator. *)

open Hls_frontend
module Region = Hls_ir.Region
module Dfg = Hls_ir.Dfg
module Opkind = Hls_ir.Opkind
module Scheduler = Hls_core.Scheduler
module Pipeline = Hls_core.Pipeline
module Nest_sched = Hls_core.Nest_sched
module Flow = Hls_flow.Flow

let lib = Hls_techlib.Library.artisan90
let clock = 1600.0

(* ---- a parameterized 2-deep counted nest ---- *)

(** [mk ~ti ~tj ~perfect ~c] builds a 2-deep nest: outer trip [ti], inner
    trip [tj], multiply-accumulate of port [x] by constant [c] in the
    inner body.  When [perfect] the outer body is exactly the inner loop
    (output written per inner iteration); otherwise the accumulator is
    zeroed before and the result written after the inner loop.  All
    variables carry explicit widths, so the flattened and unrolled
    lowerings agree on every bit. *)
let mk ?(ii = 1) ~ti ~tj ~perfect ~c () =
  let attrs name ii =
    { Ast.default_attrs with Ast.l_name = name; l_ii = ii; l_min_latency = 1; l_max_latency = 8 }
  in
  let acc_update =
    Ast.Assign
      ( "acc",
        Ast.Bin
          (Opkind.Add, Ast.Var "acc", Ast.Bin (Opkind.Mul, Ast.Port "x", Ast.Int_w (c, 4))) )
  in
  let inner_body =
    if perfect then [ acc_update; Ast.Write ("y", Ast.Var "acc"); Ast.Wait ]
    else [ acc_update; Ast.Wait ]
  in
  let inner = Ast.For ("j", 0, tj, inner_body, attrs "col" (Some ii)) in
  let outer_body =
    if perfect then [ inner ]
    else [ Ast.Assign ("acc", Ast.Int_w (0, 24)); inner; Ast.Write ("y", Ast.Var "acc") ]
  in
  {
    Ast.d_name = "nest_t";
    d_ins = [ ("x", 8) ];
    d_outs = [ ("y", 24) ];
    d_vars = [ ("acc", 24); ("i", 8); ("j", 8) ];
    d_body = [ Ast.For ("i", 0, ti, outer_body, attrs "row" None) ];
  }

(* ---- a parameterized 3-deep counted nest ---- *)

(** [mk3 ~ti ~tj ~tk ~perfect ~c] builds a 3-deep nest: the GEMM shape —
    accumulator zeroed before the innermost reduction (middle prologue)
    and written after it (middle epilogue) — or, when [perfect], a bare
    triple loop whose innermost body both accumulates and writes. *)
let mk3 ?(ii = 1) ~ti ~tj ~tk ~perfect ~c () =
  let attrs name ii =
    { Ast.default_attrs with Ast.l_name = name; l_ii = ii; l_min_latency = 1; l_max_latency = 8 }
  in
  let acc_update =
    Ast.Assign
      ( "acc",
        Ast.Bin
          (Opkind.Add, Ast.Var "acc", Ast.Bin (Opkind.Mul, Ast.Port "x", Ast.Int_w (c, 4))) )
  in
  let inner_body =
    if perfect then [ acc_update; Ast.Write ("y", Ast.Var "acc"); Ast.Wait ]
    else [ acc_update; Ast.Wait ]
  in
  let inner = Ast.For ("k", 0, tk, inner_body, attrs "mac" (Some ii)) in
  let mid_body =
    if perfect then [ inner ]
    else [ Ast.Assign ("acc", Ast.Int_w (0, 24)); inner; Ast.Write ("y", Ast.Var "acc") ]
  in
  let mid = Ast.For ("j", 0, tj, mid_body, attrs "col" None) in
  {
    Ast.d_name = "nest3_t";
    d_ins = [ ("x", 8) ];
    d_outs = [ ("y", 24) ];
    d_vars = [ ("acc", 24); ("i", 8); ("j", 8); ("k", 8) ];
    d_body = [ Ast.For ("i", 0, ti, [ mid ], attrs "row" None) ];
  }

(* ---- flattening rewrite shape ---- *)

let test_flatten_shape () =
  let d = mk ~ti:8 ~tj:8 ~perfect:false ~c:3 () in
  let lowered, info = Desugar.design_ex ~nest:`Flatten d in
  let info = match info with Some i -> i | None -> Alcotest.fail "nest not recognized" in
  Alcotest.(check bool) "imperfect" false info.Nest.ni_perfect;
  Alcotest.(check (list string))
    "dimension names, outermost first" [ "row"; "col" ]
    (List.map (fun d -> d.Nest.d_name) info.Nest.ni_dims);
  Alcotest.(check (list int)) "trip counts" [ 8; 8 ]
    (List.map (fun d -> d.Nest.d_trip) info.Nest.ni_dims);
  (* the rewrite leaves exactly one loop: the combined-counter Do_while *)
  let rec loops acc = function
    | [] -> acc
    | Ast.Do_while (b, _, a) :: rest -> loops (loops (a.Ast.l_name :: acc) b) rest
    | Ast.(For (_, _, _, b, _) | While (_, b, _)) :: rest -> loops (loops ("?" :: acc) b) rest
    | Ast.If (_, t, f) :: rest -> loops (loops (loops acc t) f) rest
    | Ast.(Assign _ | Write _ | Wait | Stall_until _) :: rest -> loops acc rest
  in
  Alcotest.(check (list string)) "single combined loop named after the outer" [ "row" ]
    (loops [] lowered.Ast.d_body)

let test_perfect_nest_recognized () =
  let d = mk ~ti:4 ~tj:4 ~perfect:true ~c:1 () in
  let _, info = Desugar.design_ex ~nest:`Flatten d in
  match info with
  | Some i -> Alcotest.(check bool) "perfect" true i.Nest.ni_perfect
  | None -> Alcotest.fail "nest not recognized"

(* ---- depth-3 flattening ---- *)

let test_flatten3_shape () =
  let d = mk3 ~ti:4 ~tj:3 ~tk:5 ~perfect:false ~c:2 () in
  let lowered, info = Desugar.design_ex ~nest:`Flatten d in
  let info = match info with Some i -> i | None -> Alcotest.fail "3-nest not recognized" in
  Alcotest.(check bool) "imperfect" false info.Nest.ni_perfect;
  Alcotest.(check (list string))
    "dimension names, outermost first" [ "row"; "col"; "mac" ]
    (List.map (fun d -> d.Nest.d_name) info.Nest.ni_dims);
  Alcotest.(check (list int)) "trip counts" [ 4; 3; 5 ]
    (List.map (fun d -> d.Nest.d_trip) info.Nest.ni_dims);
  let rec loops acc = function
    | [] -> acc
    | Ast.Do_while (b, _, a) :: rest -> loops (loops (a.Ast.l_name :: acc) b) rest
    | Ast.(For (_, _, _, b, _) | While (_, b, _)) :: rest -> loops (loops ("?" :: acc) b) rest
    | Ast.If (_, t, f) :: rest -> loops (loops (loops acc t) f) rest
    | Ast.(Assign _ | Write _ | Wait | Stall_until _) :: rest -> loops acc rest
  in
  Alcotest.(check (list string)) "single combined loop named after the outer" [ "row" ]
    (loops [] lowered.Ast.d_body)

let test_perfect_nest3_recognized () =
  let d = mk3 ~ti:2 ~tj:2 ~tk:3 ~perfect:true ~c:1 () in
  let _, info = Desugar.design_ex ~nest:`Flatten d in
  match info with
  | Some i ->
      Alcotest.(check bool) "perfect" true i.Nest.ni_perfect;
      Alcotest.(check int) "three dimensions" 3 (List.length i.Nest.ni_dims)
  | None -> Alcotest.fail "3-nest not recognized"

let test_region_nest3_math () =
  let d = mk3 ~ti:4 ~tj:3 ~tk:5 ~perfect:false ~c:2 () in
  let elab = Elaborate.design ~nest:`Flatten d in
  let region = Elaborate.main_region elab in
  Alcotest.(check int) "flat iterations" 60 (Region.flat_iters region);
  Alcotest.(check (list int)) "per-dim IIs at kernel II=2" [ 30; 10; 2 ]
    (Region.per_dim_iis region ~kernel_ii:2)

(** An ineligible 3-deep nest whose middle trip overflows the unroll
    bound must raise the typed [nest_shape] fault instead of silently
    attempting a giant unroll: the prologue referencing the innermost
    counter defeats both flatten3 (counter escapes its loop) and the
    depth-2 path (nest deeper than two loops). *)
let test_nest3_shape_fault () =
  let d = mk3 ~ti:2 ~tj:5000 ~tk:2 ~perfect:false ~c:1 () in
  let poison = Ast.Assign ("acc", Ast.Var "k") in
  let d =
    match d.Ast.d_body with
    | [ Ast.For (v, lo, hi, [ mid ], a) ] ->
        { d with Ast.d_body = [ Ast.For (v, lo, hi, [ poison; mid ], a) ] }
    | _ -> Alcotest.fail "unexpected shape"
  in
  match Desugar.design_ex ~nest:`Flatten d with
  | exception Hls_frontend.Fault.Error f ->
      Alcotest.(check string) "typed code" "nest_shape" f.Hls_frontend.Fault.fe_code;
      Alcotest.(check (option string)) "anchored at the outer loop" (Some "row")
        f.Hls_frontend.Fault.fe_loop
  | _ -> Alcotest.fail "expected a nest_shape fault"

(* ---- region nest annotations and per-dimension IIs ---- *)

let test_region_nest_math () =
  let d = mk ~ti:6 ~tj:5 ~perfect:false ~c:2 () in
  let elab = Elaborate.design ~nest:`Flatten d in
  let region = Elaborate.main_region elab in
  (match Region.nest region with
  | None -> Alcotest.fail "region not nest-annotated"
  | Some n ->
      Alcotest.(check bool) "flattened" true n.Region.n_flattened;
      Alcotest.(check (list int)) "trips" [ 6; 5 ]
        (List.map (fun dim -> dim.Region.nd_trip) n.Region.n_dims));
  Alcotest.(check int) "stride 0 (innermost-carried)" 1 (Region.stride region 0);
  Alcotest.(check int) "stride 1 (outer-carried)" 5 (Region.stride region 1);
  Alcotest.(check int) "flat iterations" 30 (Region.flat_iters region);
  Alcotest.(check (list int)) "per-dim IIs at kernel II=2" [ 10; 2 ]
    (Region.per_dim_iis region ~kernel_ii:2)

(* ---- per-dimension modulo constraint (fold invariant) ---- *)

let test_eff_distance_and_slack () =
  let g = Dfg.create () in
  let a = (Dfg.add_op g (Opkind.Bin Opkind.Add) ~width:8).Dfg.id in
  let b = (Dfg.add_op g (Opkind.Bin Opkind.Add) ~width:8).Dfg.id in
  Dfg.connect g ~src:a ~dst:b ~port:0;
  Dfg.connect g ~src:b ~dst:a ~port:0 ~distance:1 ~dim:1;
  let nest =
    {
      Region.n_dims =
        [
          { Region.nd_name = "row"; nd_trip = 4; nd_ii = None };
          { Region.nd_name = "col"; nd_trip = 7; nd_ii = None };
        ];
      n_perfect = true;
      n_flattened = false;
    }
  in
  let region = Region.create ~name:"outer" ~nest g in
  let carried = List.find (fun e -> e.Dfg.distance > 0) (Dfg.in_edges g a) in
  (* dim=1 edge: effective innermost distance multiplies by the inner trip *)
  Alcotest.(check int) "effective distance" 7 (Pipeline.eff_distance region carried);
  Alcotest.(check int) "modulo slack at II=3" 21 (Pipeline.modulo_slack region ~ii:3 carried);
  (* the same edge in an unannotated region degrades to its raw distance *)
  let plain = Region.create ~name:"plain" g in
  Alcotest.(check int) "plain effective distance" 1 (Pipeline.eff_distance plain carried);
  Alcotest.(check int) "plain slack" 3 (Pipeline.modulo_slack plain ~ii:3 carried)

let test_fold_validates_nest () =
  (* a real flattened nest schedules, folds, and passes validate's
     per-dimension modulo check *)
  let d = mk ~ti:4 ~tj:4 ~perfect:false ~c:3 () in
  let elab = Elaborate.design ~nest:`Flatten d in
  let region = Elaborate.main_region elab in
  match Scheduler.schedule ~lib ~clock_ps:clock region with
  | Error e -> Alcotest.failf "schedule failed: %s" e.Scheduler.e_message
  | Ok s ->
      let fold = Pipeline.fold s in
      Alcotest.(check (list string)) "validate clean" [] (Pipeline.validate s fold)

(* ---- hierarchical bottom-up composition ---- *)

let test_nest_sched_compose () =
  let d = mk ~ti:8 ~tj:8 ~perfect:false ~c:3 () in
  match Nest_sched.compose ~lib ~clock_ps:clock d with
  | Error m -> Alcotest.failf "compose failed: %s" m
  | Ok h ->
      Alcotest.(check int) "inner II" 1 h.Nest_sched.ns_inner_ii;
      Alcotest.(check int) "span = (trip-1)*II + LI"
        (Nest_sched.span ~trip:8 ~ii:h.Nest_sched.ns_inner_ii
           ~li:h.Nest_sched.ns_inner.Scheduler.s_li)
        h.Nest_sched.ns_span;
      (match h.Nest_sched.ns_per_dim_iis with
      | [ outer; inner ] ->
          Alcotest.(check int) "per-dim inner = kernel II" h.Nest_sched.ns_inner_ii inner;
          Alcotest.(check bool) "outer II covers the inner span" true
            (outer >= h.Nest_sched.ns_span)
      | l -> Alcotest.failf "expected 2 per-dim IIs, got %d" (List.length l));
      Alcotest.(check bool) "latency positive" true (h.Nest_sched.ns_latency > 0)

let test_span_arithmetic () =
  Alcotest.(check int) "span 1 iter = LI" 5 (Nest_sched.span ~trip:1 ~ii:2 ~li:5);
  Alcotest.(check int) "span pipelined" 12 (Nest_sched.span ~trip:5 ~ii:2 ~li:4)

(* ---- end-to-end property: flattened nests simulate byte-identically ---- *)

(** Random 2-deep nests (perfect and imperfect): the full flow with
    verification on must succeed and report equivalence — for nest
    regions that verdict merges the schedule-simulator gate AND the
    folded-kernel-simulator gate against the behavioural golden model
    (see [Flow.finish] / [Equiv.check_kernel]). *)
let prop_flattened_nest_equivalent =
  QCheck.Test.make ~name:"flattened nest: behavioural == schedule sim == folded kernel sim"
    ~count:25
    QCheck.(quad (int_range 1 4) (int_range 1 5) bool (int_range 1 7))
    (fun (ti, tj, perfect, c) ->
      let d = mk ~ti ~tj ~perfect ~c () in
      let options =
        {
          Flow.default_options with
          Flow.nest_mode = `Flatten;
          verify = true;
          sim_iters = (2 * ti * tj) + 3;
          degrade = true;
        }
      in
      match Flow.run ~options d with
      | Error diag -> QCheck.Test.fail_reportf "flow failed: %s" (Hls_diag.Diag.to_string diag)
      | Ok r -> (
          match r.Flow.f_equiv with
          | Some v when v.Hls_sim.Equiv.equivalent -> true
          | Some v ->
              QCheck.Test.fail_reportf "mismatch (ti=%d tj=%d perfect=%b c=%d): %s" ti tj perfect
                c (Hls_sim.Equiv.verdict_to_string v)
          | None -> QCheck.Test.fail_reportf "no equivalence verdict"))

(** Random 3-deep nests (perfect and imperfect): the behavioural model,
    the schedule simulator and the folded kernel simulator agree on the
    flattened triple loop. *)
let prop_flattened_nest3_equivalent =
  QCheck.Test.make ~name:"flattened 3-nest: behavioural == schedule sim == folded kernel sim"
    ~count:15
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (pair (int_range 1 4) bool) (int_range 1 7))
    (fun (ti, tj, (tk, perfect), c) ->
      let d = mk3 ~ti ~tj ~tk ~perfect ~c () in
      let options =
        {
          Flow.default_options with
          Flow.nest_mode = `Flatten;
          verify = true;
          sim_iters = (2 * ti * tj * tk) + 3;
          degrade = true;
        }
      in
      match Flow.run ~options d with
      | Error diag -> QCheck.Test.fail_reportf "flow failed: %s" (Hls_diag.Diag.to_string diag)
      | Ok r -> (
          match r.Flow.f_equiv with
          | Some v when v.Hls_sim.Equiv.equivalent -> true
          | Some v ->
              QCheck.Test.fail_reportf "mismatch (ti=%d tj=%d tk=%d perfect=%b c=%d): %s" ti tj
                tk perfect c (Hls_sim.Equiv.verdict_to_string v)
          | None -> QCheck.Test.fail_reportf "no equivalence verdict"))

(** The per-dimension II surface is consistent: outermost = kernel x
    inner trip, innermost = kernel. *)
let prop_per_dim_iis_consistent =
  QCheck.Test.make ~name:"per-dimension IIs derive from the kernel II by stride" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 1 5))
    (fun (ti, tj) ->
      let d = mk ~ti ~tj ~perfect:false ~c:1 () in
      let elab = Elaborate.design ~nest:`Flatten d in
      let region = Elaborate.main_region elab in
      Region.per_dim_iis region ~kernel_ii:3 = [ 3 * tj; 3 ])

let suite =
  [
    Alcotest.test_case "flatten rewrite shape" `Quick test_flatten_shape;
    Alcotest.test_case "perfect nest recognized" `Quick test_perfect_nest_recognized;
    Alcotest.test_case "depth-3 flatten rewrite shape" `Quick test_flatten3_shape;
    Alcotest.test_case "perfect depth-3 nest recognized" `Quick test_perfect_nest3_recognized;
    Alcotest.test_case "depth-3 region nest math" `Quick test_region_nest3_math;
    Alcotest.test_case "ineligible deep nest raises nest_shape" `Quick test_nest3_shape_fault;
    Alcotest.test_case "region nest math" `Quick test_region_nest_math;
    Alcotest.test_case "effective distance and modulo slack" `Quick test_eff_distance_and_slack;
    Alcotest.test_case "fold validates a flattened nest" `Quick test_fold_validates_nest;
    Alcotest.test_case "hierarchical compose" `Quick test_nest_sched_compose;
    Alcotest.test_case "super-op span arithmetic" `Quick test_span_arithmetic;
    QCheck_alcotest.to_alcotest prop_flattened_nest_equivalent;
    QCheck_alcotest.to_alcotest prop_flattened_nest3_equivalent;
    QCheck_alcotest.to_alcotest prop_per_dim_iis_consistent;
  ]
