(** Pipeline folding: kernel structure, invariant validation, the Fig. 5
    rendering, and a property check over random pipelined designs. *)

(* Hls_ir opened via qualified paths *)
open Hls_core

let lib = Hls_techlib.Library.artisan90

let schedule ?ii design =
  let e = Hls_frontend.Elaborate.design design in
  let region = Hls_frontend.Elaborate.main_region ?ii e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Ok s -> s
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message

let test_fig5_fold () =
  (* Example 1 at II=2, LI=3: two stages, kernel of two states *)
  let s = schedule ~ii:2 (Hls_designs.Example1.design ()) in
  let f = Pipeline.fold s in
  Alcotest.(check int) "II = 2 kernel states" 2 f.Pipeline.f_ii;
  Alcotest.(check int) "two stages" 2 f.Pipeline.f_stages;
  Alcotest.(check (list string)) "fold invariants hold" [] (Pipeline.validate s f);
  (* every placed op folds to (step mod 2, step / 2) *)
  Hls_netlist.Netlist.iter_placements s.Scheduler.s_binding.Binding.net (fun op pl ->
      match Pipeline.kernel_state f op with
      | Some (st, sg) ->
          Alcotest.(check int) "kernel state" (pl.Binding.pl_step mod 2) st;
          Alcotest.(check int) "stage" (pl.Binding.pl_step / 2) sg
      | None -> Alcotest.fail "placed op missing from fold")

let test_sequential_identity_fold () =
  let s = schedule (Hls_designs.Example1.design ~max_latency:3 ()) in
  let f = Pipeline.fold s in
  Alcotest.(check int) "kernel = all states" s.Scheduler.s_li f.Pipeline.f_ii;
  Alcotest.(check int) "single stage" 1 f.Pipeline.f_stages;
  Alcotest.(check (list string)) "valid" [] (Pipeline.validate s f)

let test_fig5_table () =
  let s = schedule ~ii:2 (Hls_designs.Example1.design ()) in
  let f = Pipeline.fold s in
  let table = Pipeline.to_table s f in
  (* header + II rows *)
  Alcotest.(check int) "rows" 3 (List.length table);
  Alcotest.(check int) "columns = stages + 1" 3 (List.length (List.hd table));
  (* the mul3/pixel_write stage content appears in stage 2 *)
  let flat = String.concat "|" (List.concat (List.tl table)) in
  Alcotest.(check bool) "pixel write folded into a kernel cell" true
    (String.length flat > 0)

let test_ii1_fold () =
  let s = schedule ~ii:1 (Hls_designs.Example1.design ()) in
  let f = Pipeline.fold s in
  Alcotest.(check int) "single kernel state" 1 f.Pipeline.f_ii;
  Alcotest.(check int) "stages = LI" s.Scheduler.s_li f.Pipeline.f_stages;
  Alcotest.(check (list string)) "valid" [] (Pipeline.validate s f)

(* property: folding any scheduled pipelined synthetic design keeps the
   invariants *)
let prop_fold_valid =
  QCheck.Test.make ~name:"fold invariants on random pipelined designs" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, ii) ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 40 + (seed mod 40);
          p_seed = seed;
          p_tightness = 0.3;
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let e = Hls_frontend.Elaborate.design d in
      let region = Hls_frontend.Elaborate.main_region ~ii e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail () (* some II/design pairs are infeasible *)
      | Ok s ->
          let f = Pipeline.fold s in
          Pipeline.validate s f = [])

let suite =
  [
    Alcotest.test_case "Fig. 5 fold (II=2)" `Quick test_fig5_fold;
    Alcotest.test_case "sequential identity fold" `Quick test_sequential_identity_fold;
    Alcotest.test_case "Fig. 5 table" `Quick test_fig5_table;
    Alcotest.test_case "II=1 fold" `Quick test_ii1_fold;
    QCheck_alcotest.to_alcotest prop_fold_valid;
  ]
