(** The binder's netlist timing model: the paper's Fig. 8 arithmetic is
    reproduced op by op, and the structural comb-cycle avoidance rejects
    the Fig. 6 pattern. *)

open Hls_ir
open Hls_core
open Hls_techlib
module Netlist = Hls_netlist.Netlist

let lib = Library.artisan90
let clock = 1600.0

(* a miniature region: chrome*mask -> +aver -> >th, as in Fig. 8 *)
let fig8_region () =
  let dfg = Dfg.create () in
  let read p = (Dfg.add_op dfg (Opkind.Read p) ~width:32 ~name:(p ^ "_read")).Dfg.id in
  let chrome = read "chrome" and mask = read "mask" and aver = read "aver" and th = read "th" in
  let mul1 = (Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"mul1").Dfg.id in
  (* two more muls so the multiplier class is shared (pre-allocated muxes) *)
  let mul2 = (Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"mul2").Dfg.id in
  let mul3 = (Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"mul3").Dfg.id in
  let add = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:32 ~name:"add").Dfg.id in
  let gt = (Dfg.add_op dfg (Opkind.Bin Opkind.Gt) ~width:1 ~name:"gt").Dfg.id in
  Dfg.connect dfg ~src:chrome ~dst:mul1 ~port:0;
  Dfg.connect dfg ~src:mask ~dst:mul1 ~port:1;
  Dfg.connect dfg ~src:mul1 ~dst:add ~port:0;
  Dfg.connect dfg ~src:aver ~dst:add ~port:1;
  Dfg.connect dfg ~src:add ~dst:gt ~port:0;
  Dfg.connect dfg ~src:th ~dst:gt ~port:1;
  (* keep mul2/mul3 schedulable elsewhere *)
  Dfg.connect dfg ~src:chrome ~dst:mul2 ~port:0;
  Dfg.connect dfg ~src:mask ~dst:mul2 ~port:1;
  Dfg.connect dfg ~src:chrome ~dst:mul3 ~port:0;
  Dfg.connect dfg ~src:mask ~dst:mul3 ~port:1;
  let region = Region.create ~min_steps:3 ~max_steps:3 ~name:"fig8" dfg in
  (region, chrome, mask, mul1, add, gt)

let mk_binding region =
  let b = Binding.create ~lib ~clock_ps:clock region in
  let mul_rt = { Resource.rclass = Opkind.R_mul; in_widths = [ 32; 32 ]; out_width = 32 } in
  let add_rt = { Resource.rclass = Opkind.R_addsub; in_widths = [ 32; 32 ]; out_width = 32 } in
  let cmp_rt = { Resource.rclass = Opkind.R_cmp_rel; in_widths = [ 32; 32 ]; out_width = 1 } in
  let mi = Binding.add_inst b mul_rt in
  let ai = Binding.add_inst b add_rt in
  let ci = Binding.add_inst b cmp_rt in
  Binding.reset_pass b;
  (b, mi.Binding.inst_id, ai.Binding.inst_id, ci.Binding.inst_id)

let dfg_of region = region.Region.dfg

let bind_ok b op ~step ~inst_opt =
  match Binding.try_bind b op ~step ~inst_opt with
  | Ok () -> ()
  | Error f -> Alcotest.failf "bind failed: %s" (Restraint.fail_to_string f)

(* the above got unwieldy; a cleaner end-to-end variant *)
let test_fig8_clean () =
  let region, chrome, mask, mul1, add, gt = fig8_region () in
  let dfg = dfg_of region in
  let b, mi, ai, ci = mk_binding region in
  ignore chrome;
  ignore mask;
  (* place all reads *)
  List.iter
    (fun o ->
      match o.Dfg.kind with
      | Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None
      | _ -> ())
    (Dfg.ops dfg);
  bind_ok b (Dfg.find dfg mul1) ~step:0 ~inst_opt:(Some mi);
  Alcotest.(check (float 0.5)) "Fig 8a: mul arrival 1080" 1080.0
    (Option.get (Netlist.arrival b.Binding.net ~view:Netlist.Accurate mul1));
  bind_ok b (Dfg.find dfg add) ~step:0 ~inst_opt:(Some ai);
  (* Fig 8b: 40 + 110 + 930 + 350 = 1430; endpoint 1430+110+40 = 1580 *)
  Alcotest.(check (float 0.5)) "Fig 8b: add arrival 1430" 1430.0
    (Option.get (Netlist.arrival b.Binding.net ~view:Netlist.Accurate add));
  Alcotest.(check (float 0.5)) "Fig 8b: add slack 20" 20.0
    (Binding.endpoint_slack b ~naive:false add);
  (* Fig 8c: gt would land at 1800 -> slack -200: the binder rejects it *)
  (match Binding.try_bind b (Dfg.find dfg gt) ~step:0 ~inst_opt:(Some ci) with
  | Ok () -> Alcotest.fail "gt must not fit in state s1"
  | Error (Restraint.F_slack s) -> Alcotest.(check (float 0.5)) "slack -200" (-200.0) s
  | Error f -> Alcotest.failf "expected slack failure, got %s" (Restraint.fail_to_string f));
  (* it fits in the next state from a register *)
  bind_ok b (Dfg.find dfg gt) ~step:1 ~inst_opt:(Some ci)

let test_busy_and_equivalence () =
  let region, _, _, mul1, _, _ = fig8_region () in
  let dfg = dfg_of region in
  let b, mi, _, _ = mk_binding region in
  List.iter
    (fun o ->
      match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  bind_ok b (Dfg.find dfg mul1) ~step:0 ~inst_opt:(Some mi);
  (* another mul on the same instance in the same step must be busy *)
  let mul2 =
    List.find
      (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul && o.Dfg.id <> mul1)
      (Dfg.ops dfg)
  in
  (match Binding.try_bind b mul2 ~step:0 ~inst_opt:(Some mi) with
  | Error (Restraint.F_busy _) -> ()
  | Ok () -> Alcotest.fail "same instance, same step must be busy"
  | Error f -> Alcotest.failf "expected busy, got %s" (Restraint.fail_to_string f));
  (* a later step is fine *)
  bind_ok b mul2 ~step:1 ~inst_opt:(Some mi)

let test_pipelined_equivalence_busy () =
  (* with II=2, steps 0 and 2 are equivalent: an op in step 0 blocks the
     instance in step 2 *)
  let dfg = Dfg.create () in
  let r1 = (Dfg.add_op dfg (Opkind.Read "a") ~width:32).Dfg.id in
  let m1 = (Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"m1").Dfg.id in
  let m2 = (Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"m2").Dfg.id in
  Dfg.connect dfg ~src:r1 ~dst:m1 ~port:0;
  Dfg.connect dfg ~src:r1 ~dst:m1 ~port:1;
  Dfg.connect dfg ~src:r1 ~dst:m2 ~port:0;
  Dfg.connect dfg ~src:r1 ~dst:m2 ~port:1;
  let region = Region.create ~min_steps:3 ~max_steps:3 ~pipeline:{ Region.ii = 2 } ~name:"eq" dfg in
  let b = Binding.create ~lib ~clock_ps:clock region in
  let mi =
    Binding.add_inst b { Resource.rclass = Opkind.R_mul; in_widths = [ 32; 32 ]; out_width = 32 }
  in
  Binding.reset_pass b;
  bind_ok b (Dfg.find dfg r1) ~step:0 ~inst_opt:None;
  bind_ok b (Dfg.find dfg m1) ~step:0 ~inst_opt:(Some mi.Binding.inst_id);
  (match Binding.try_bind b (Dfg.find dfg m2) ~step:2 ~inst_opt:(Some mi.Binding.inst_id) with
  | Error (Restraint.F_busy _) -> ()
  | Ok () -> Alcotest.fail "equivalent steps must not share a resource"
  | Error f -> Alcotest.failf "expected busy, got %s" (Restraint.fail_to_string f));
  (* the odd step is a different equivalence class *)
  bind_ok b (Dfg.find dfg m2) ~step:1 ~inst_opt:(Some mi.Binding.inst_id)

let test_comb_cycle_fig6 () =
  (* Fig. 6: adder A chains into adder B in state s1, B chains into A in
     state s2 -> structural cycle through the sharing muxes, rejected *)
  let dfg = Dfg.create () in
  let read p = (Dfg.add_op dfg (Opkind.Read p) ~width:16 ~name:p).Dfg.id in
  let a = read "a" and bb = read "b" and c = read "c" and d = read "d" and p = read "p" and q = read "q" in
  let x = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"x").Dfg.id in
  let y = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"y").Dfg.id in
  let w = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"w").Dfg.id in
  let v = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"v").Dfg.id in
  (* s1: x = a + b; y = x + c  (A feeds B) *)
  Dfg.connect dfg ~src:a ~dst:x ~port:0;
  Dfg.connect dfg ~src:bb ~dst:x ~port:1;
  Dfg.connect dfg ~src:x ~dst:y ~port:0;
  Dfg.connect dfg ~src:c ~dst:y ~port:1;
  (* s2: w = d + p; v = w + q  (would put B feeding A) *)
  Dfg.connect dfg ~src:d ~dst:w ~port:0;
  Dfg.connect dfg ~src:p ~dst:w ~port:1;
  Dfg.connect dfg ~src:w ~dst:v ~port:0;
  Dfg.connect dfg ~src:q ~dst:v ~port:1;
  let region = Region.create ~min_steps:2 ~max_steps:2 ~name:"fig6" dfg in
  let b = Binding.create ~lib ~clock_ps:clock region in
  let rt = { Resource.rclass = Opkind.R_addsub; in_widths = [ 16; 16 ]; out_width = 16 } in
  let ia = Binding.add_inst b rt and ib = Binding.add_inst b rt in
  Binding.reset_pass b;
  List.iter
    (fun o -> match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  bind_ok b (Dfg.find dfg x) ~step:0 ~inst_opt:(Some ia.Binding.inst_id);
  bind_ok b (Dfg.find dfg y) ~step:0 ~inst_opt:(Some ib.Binding.inst_id);
  bind_ok b (Dfg.find dfg w) ~step:1 ~inst_opt:(Some ib.Binding.inst_id);
  (* v on instance A would close A -> B -> A *)
  (match Binding.try_bind b (Dfg.find dfg v) ~step:1 ~inst_opt:(Some ia.Binding.inst_id) with
  | Error (Restraint.F_cycle _) -> ()
  | Ok () -> Alcotest.fail "binding must be rejected: structural comb cycle"
  | Error f -> Alcotest.failf "expected cycle rejection, got %s" (Restraint.fail_to_string f))

let test_reset_pass_clears_chain () =
  (* regression: reset_pass used to empty the chain detector's adjacency
     table but leave n_edges stale, so a detector that had ever seen
     max_chain_edges edges rejected every chained binding in later passes *)
  let dfg = Dfg.create () in
  let read p = (Dfg.add_op dfg (Opkind.Read p) ~width:16 ~name:p).Dfg.id in
  let a = read "a" and bb = read "b" and c = read "c" in
  let x = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"x").Dfg.id in
  let y = (Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:16 ~name:"y").Dfg.id in
  Dfg.connect dfg ~src:a ~dst:x ~port:0;
  Dfg.connect dfg ~src:bb ~dst:x ~port:1;
  Dfg.connect dfg ~src:x ~dst:y ~port:0;
  Dfg.connect dfg ~src:c ~dst:y ~port:1;
  let region = Region.create ~min_steps:1 ~max_steps:1 ~name:"chain" dfg in
  let b = Binding.create ~lib ~clock_ps:clock region in
  let rt = { Resource.rclass = Opkind.R_addsub; in_widths = [ 16; 16 ]; out_width = 16 } in
  let ia = Binding.add_inst b rt and ib = Binding.add_inst b rt in
  Binding.reset_pass b;
  List.iter
    (fun o -> match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  bind_ok b (Dfg.find dfg x) ~step:0 ~inst_opt:(Some ia.Binding.inst_id);
  bind_ok b (Dfg.find dfg y) ~step:0 ~inst_opt:(Some ib.Binding.inst_id);
  Alcotest.(check bool) "chaining x into y recorded an instance edge" true
    (Hls_timing.Cycle_detector.n_edges (Netlist.chain b.Binding.net) > 0);
  Binding.reset_pass b;
  Alcotest.(check int) "reset_pass leaves a fresh detector: zero edges" 0
    (Hls_timing.Cycle_detector.n_edges (Netlist.chain b.Binding.net))

let test_forbidden_pair () =
  let region, _, _, mul1, _, _ = fig8_region () in
  let dfg = dfg_of region in
  let b, mi, _, _ = mk_binding region in
  Hashtbl.replace b.Binding.forbidden (mul1, mi) ();
  List.iter
    (fun o -> match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  match Binding.try_bind b (Dfg.find dfg mul1) ~step:0 ~inst_opt:(Some mi) with
  | Error Restraint.F_forbidden -> ()
  | Ok () -> Alcotest.fail "forbidden pair must be rejected"
  | Error f -> Alcotest.failf "expected forbidden, got %s" (Restraint.fail_to_string f)

let test_rollback_on_failure () =
  let region, _, _, _, add, gt = fig8_region () in
  let dfg = dfg_of region in
  let b, mi, ai, ci = mk_binding region in
  ignore ci;
  List.iter
    (fun o -> match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  let mul1 = List.find (fun o -> o.Dfg.name = "mul1") (Dfg.ops dfg) in
  bind_ok b mul1 ~step:0 ~inst_opt:(Some mi);
  bind_ok b (Dfg.find dfg add) ~step:0 ~inst_opt:(Some ai);
  let placements_before = Netlist.n_placed b.Binding.net in
  let gt_op = Dfg.find dfg gt in
  (match Binding.try_bind b gt_op ~step:0 ~inst_opt:(Some (Binding.add_inst b { Resource.rclass = Opkind.R_cmp_rel; in_widths = [ 32; 32 ]; out_width = 1 }).Binding.inst_id) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure");
  Alcotest.(check int) "placement count unchanged after rollback" placements_before
    (Netlist.n_placed b.Binding.net);
  Alcotest.(check bool) "gt not placed" true (Binding.placement b gt = None)

(* Regression for the quick_slack mux overcounting bug: the screen used to
   charge [mux_inputs + 1] per input port even when the candidate op's
   source already fed that port on the instance.  Here mul1 and mul2 read
   the same (chrome, mask) pair, so sharing the multiplier adds no mux
   input — yet the old screen sized a 3-input mux (115 ps instead of 110)
   and rejected a binding whose true endpoint path is 40 + 110 + 930 +
   110 + 40 = 1230 ps.  At a 1232 ps clock the spurious 5 ps pushed the
   estimate to -3 ps, a false F_slack. *)
let test_quick_slack_shared_source () =
  let region, _, _, mul1, _, _ = fig8_region () in
  let dfg = dfg_of region in
  let b = Binding.create ~lib ~clock_ps:1232.0 region in
  let mi =
    (Binding.add_inst b { Resource.rclass = Opkind.R_mul; in_widths = [ 32; 32 ]; out_width = 32 })
      .Binding.inst_id
  in
  Binding.reset_pass b;
  List.iter
    (fun o -> match o.Dfg.kind with Opkind.Read _ -> bind_ok b o ~step:0 ~inst_opt:None | _ -> ())
    (Dfg.ops dfg);
  bind_ok b (Dfg.find dfg mul1) ~step:0 ~inst_opt:(Some mi);
  let mul2 = List.find (fun o -> o.Dfg.name = "mul2") (Dfg.ops dfg) in
  Alcotest.(check bool)
    "screen accepts a same-source cohabitant" true
    (Binding.quick_slack b mul2 ~step:1 ~inst_id:mi >= 0.0);
  bind_ok b mul2 ~step:1 ~inst_opt:(Some mi)

let suite =
  [
    Alcotest.test_case "Fig. 8 delay arithmetic" `Quick test_fig8_clean;
    Alcotest.test_case "quick_slack counts distinct sources" `Quick test_quick_slack_shared_source;
    Alcotest.test_case "busy within a step" `Quick test_busy_and_equivalence;
    Alcotest.test_case "equivalence-class busy (II=2)" `Quick test_pipelined_equivalence_busy;
    Alcotest.test_case "Fig. 6 comb-cycle rejection" `Quick test_comb_cycle_fig6;
    Alcotest.test_case "reset_pass clears chain detector" `Quick test_reset_pass_clears_chain;
    Alcotest.test_case "forbidden pairs" `Quick test_forbidden_pair;
    Alcotest.test_case "rollback on failure" `Quick test_rollback_on_failure;
  ]
