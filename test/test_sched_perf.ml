(** Warm-start machinery: the lazy-deletion ready heap must reproduce the
    historic fold's extraction order exactly, the per-step reverse index
    must match a fold over all placements, and — the load-bearing property
    — a warm-started schedule must be indistinguishable from a cold one on
    every observable (latency, passes, placements, instance bindings). *)

open Hls_core

let lib = Hls_techlib.Library.artisan90

(* ------------------------------------------------------------------ *)
(* heap pick order                                                     *)

(** Reference extraction order of the pre-heap fold: descending score,
    ascending id on ties. *)
let fold_order entries =
  List.sort
    (fun (s, id) (s', id') -> compare (s', -id') (s, -id))
    entries

let heap_matches_fold entries =
  let h = Ready_heap.create ~capacity:4 () in
  List.iter (fun (s, id) -> Ready_heap.push h ~score:s id) entries;
  let rec drain acc =
    match Ready_heap.pop h with None -> List.rev acc | Some (s, id) -> drain ((s, id) :: acc)
  in
  drain [] = fold_order entries

let prop_heap_order =
  QCheck.Test.make ~name:"heap pops in the fold's (score desc, id asc) order" ~count:300
    (* few distinct scores force tie-breaking through the id *)
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (int_range 0 5) (int_range 0 10_000)))
    (fun raw ->
      (* unique ids; quantized scores *)
      let seen = Hashtbl.create 16 in
      let entries =
        List.filter_map
          (fun (s, id) ->
            if Hashtbl.mem seen id then None
            else begin
              Hashtbl.replace seen id ();
              Some (float_of_int s /. 2.0, id)
            end)
          raw
      in
      heap_matches_fold entries)

let test_heap_interleaved () =
  (* pushes interleaved with pops — the scheduler's actual usage: ops
     enter the ready pool as predecessors place *)
  let h = Ready_heap.create () in
  Ready_heap.push h ~score:1.0 7;
  Ready_heap.push h ~score:2.0 3;
  Alcotest.(check (option (pair (float 0.0) int))) "max first" (Some (2.0, 3)) (Ready_heap.pop h);
  Ready_heap.push h ~score:1.0 2;
  Ready_heap.push h ~score:1.0 9;
  Alcotest.(check (option (pair (float 0.0) int))) "tie: low id" (Some (1.0, 2)) (Ready_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "then 7" (Some (1.0, 7)) (Ready_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "then 9" (Some (1.0, 9)) (Ready_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "empty" None (Ready_heap.pop h);
  Alcotest.(check bool) "is_empty" true (Ready_heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* per-step reverse index                                              *)

let schedule_design ?opts ?ii d =
  let e = Hls_frontend.Elaborate.design d in
  let region = Hls_frontend.Elaborate.main_region ?ii e in
  (region, Scheduler.schedule ?opts ~lib ~clock_ps:1600.0 region)

let test_ops_on_step_contract () =
  let region, r = schedule_design (Hls_designs.Idct.design ()) in
  let s = match r with Ok s -> s | Error e -> Alcotest.failf "idct failed: %s" e.Scheduler.e_message in
  let net = s.Scheduler.s_binding.Binding.net in
  for step = 0 to s.Scheduler.s_li - 1 do
    (* reference: the historic fold over every placement *)
    let reference =
      List.sort compare
        (Hls_netlist.Netlist.fold_placements net
           (fun op (pl : Binding.placement) acc -> if pl.Binding.pl_step = step then op :: acc else acc)
           [])
    in
    let indexed = Scheduler.ops_on_step s step in
    Alcotest.(check (list int))
      (Printf.sprintf "step %d: index = fold, sorted ascending" step)
      reference indexed
  done;
  ignore region

(* ------------------------------------------------------------------ *)
(* warm == cold                                                        *)

(** Everything downstream consumes: latency, pass count, every placement
    triple, and every instance's (rtype, bound set). *)
let observables (s : Scheduler.t) =
  let b = s.Scheduler.s_binding in
  let placements =
    List.sort compare
      (Hls_netlist.Netlist.fold_placements b.Binding.net
         (fun op (pl : Binding.placement) acc ->
           (op, pl.Binding.pl_step, pl.Binding.pl_finish, pl.Binding.pl_inst) :: acc)
         [])
  in
  let insts =
    List.sort compare
      (List.map
         (fun (i : Binding.inst) ->
           (i.Binding.inst_id, Hls_techlib.Resource.to_string i.Binding.rtype,
            List.sort compare i.Binding.bound))
         (Hls_netlist.Netlist.insts b.Binding.net))
  in
  (s.Scheduler.s_li, s.Scheduler.s_passes, s.Scheduler.s_actions, placements, insts)

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm-started schedule == cold schedule (all observables)" ~count:220
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 20 + (seed mod 50);
          p_seed = seed;
          p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
          p_accumulators = 1 + (seed mod 2);
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      (* a third of the cases pipeline, so SCC moves / speculation — the
         actions that actually exercise prefix replay — occur *)
      let ii = if seed mod 3 = 0 then Some (1 + (seed mod 3)) else None in
      let run warm_start =
        schedule_design ~opts:{ Scheduler.default_options with warm_start } ?ii d |> snd
      in
      match (run true, run false) with
      | Ok w, Ok c ->
          if observables w = observables c then true
          else QCheck.Test.fail_reportf "warm and cold schedules diverge (seed %d)" seed
      | Error w, Error c ->
          if w.Scheduler.e_code = c.Scheduler.e_code then true
          else
            QCheck.Test.fail_reportf "warm error %s vs cold error %s (seed %d)" w.Scheduler.e_code
              c.Scheduler.e_code seed
      | Ok _, Error e | Error e, Ok _ ->
          QCheck.Test.fail_reportf "warm/cold disagree on feasibility: %s (seed %d)"
            e.Scheduler.e_code seed)

(** Warm passes are counted — and on a design whose relaxation uses only
    global actions, every pass is cold. *)
let test_pass_counters () =
  let _, r = schedule_design (Hls_designs.Idct.design ()) in
  match r with
  | Error e -> Alcotest.failf "idct failed: %s" e.Scheduler.e_message
  | Ok s ->
      let st = Scheduler.stats s in
      Alcotest.(check int) "warm + cold = passes" st.Scheduler.st_passes
        (st.Scheduler.st_warm_passes + st.Scheduler.st_cold_passes);
      let _, r' =
        schedule_design
          ~opts:{ Scheduler.default_options with warm_start = false }
          (Hls_designs.Idct.design ())
      in
      (match r' with
      | Error e -> Alcotest.failf "idct (cold) failed: %s" e.Scheduler.e_message
      | Ok c ->
          let stc = Scheduler.stats c in
          Alcotest.(check int) "legacy mode never warm-starts" 0 stc.Scheduler.st_warm_passes;
          Alcotest.(check int) "legacy cold count = passes" stc.Scheduler.st_passes
            stc.Scheduler.st_cold_passes)

(** Region-parallel analysis is deterministic: the same design scheduled
    with 1 and 4 analysis workers yields bit-identical observables (SCC
    results are merged in index order, so the worker count can only change
    wall time, never the outcome). *)
let prop_jobs_deterministic =
  QCheck.Test.make ~name:"schedule observables identical across --jobs" ~count:20
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 40 + (seed mod 120);
          p_seed = seed;
          p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
          p_accumulators = 1 + (seed mod 3);
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let ii = if seed mod 3 = 0 then Some (1 + (seed mod 3)) else None in
      let run jobs =
        Scheduler.set_jobs jobs;
        let r = schedule_design ?ii d |> snd in
        Scheduler.set_jobs 1;
        r
      in
      match (run 1, run 4) with
      | Ok a, Ok b ->
          if observables a = observables b then true
          else QCheck.Test.fail_reportf "1-job and 4-job schedules diverge (seed %d)" seed
      | Error a, Error b ->
          if a.Scheduler.e_code = b.Scheduler.e_code then true
          else
            QCheck.Test.fail_reportf "jobs=1 error %s vs jobs=4 error %s (seed %d)"
              a.Scheduler.e_code b.Scheduler.e_code seed
      | Ok _, Error e | Error e, Ok _ ->
          QCheck.Test.fail_reportf "jobs disagree on feasibility: %s (seed %d)" e.Scheduler.e_code
            seed)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_heap_order;
    Alcotest.test_case "heap interleaved push/pop" `Quick test_heap_interleaved;
    Alcotest.test_case "ops_on_step matches placements fold" `Quick test_ops_on_step_contract;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    Alcotest.test_case "warm/cold pass counters" `Quick test_pass_counters;
    QCheck_alcotest.to_alcotest prop_jobs_deterministic;
  ]
