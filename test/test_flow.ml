(** End-to-end flow and design-library checks. *)

open Hls_frontend
module Diag = Hls_diag.Diag

let test_flow_example1 () =
  match Hls_flow.Flow.run (Hls_designs.Example1.design ()) with
  | Error e -> Alcotest.fail (Diag.to_string e)
  | Ok r ->
      Alcotest.(check bool) "verified" true
        (match r.Hls_flow.Flow.f_equiv with Some v -> v.Hls_sim.Equiv.equivalent | None -> false);
      Alcotest.(check bool) "positive area" true (r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total > 0.0);
      Alcotest.(check bool) "positive power" true (r.Hls_flow.Flow.f_power_mw > 0.0)

let test_flow_reports_frontend_errors () =
  let bad =
    Dsl.(design "bad" ~ins:[ in_port "a" 8 ] ~outs:[] ~vars:[] [ "x" := port "nope" ])
  in
  match Hls_flow.Flow.run bad with
  | Error e ->
      Alcotest.(check bool) "frontend phase" true (e.Diag.d_phase = Diag.Frontend)
  | Ok _ -> Alcotest.fail "must fail in the frontend"

let test_flow_reports_schedule_errors () =
  (* impossible clock: even a single multiplication cannot fit.  Degradation
     is off so the typed diagnostic itself surfaces. *)
  let options =
    { Hls_flow.Flow.default_options with clock_ps = 400.0; degrade = false }
  in
  match Hls_flow.Flow.run ~options (Hls_designs.Example1.design ()) with
  | Error e ->
      Alcotest.(check bool) "schedule phase" true (e.Diag.d_phase = Diag.Schedule)
  | Ok _ -> Alcotest.fail "400 ps must be unschedulable"

let test_flow_rerunnable () =
  (* one design value, many configurations: no cross-run contamination *)
  let d = Hls_designs.Example1.design () in
  let run ii =
    match Hls_flow.Flow.run ~options:{ Hls_flow.Flow.default_options with ii } d with
    | Ok r -> r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total
    | Error e -> Alcotest.fail (Diag.to_string e)
  in
  let a1 = run None in
  let _ = run (Some 1) in
  let a1' = run None in
  Alcotest.(check (float 0.01)) "deterministic across runs" a1 a1'

let test_delay_is_ii_times_clock () =
  let options = { Hls_flow.Flow.default_options with ii = Some 2; clock_ps = 2000.0 } in
  match Hls_flow.Flow.run ~options (Hls_designs.Example1.design ()) with
  | Error e -> Alcotest.fail (Diag.to_string e)
  | Ok r -> Alcotest.(check (float 0.01)) "delay" 4000.0 r.Hls_flow.Flow.f_delay_ps

(* ---- design library sanity ---- *)

let test_designs_check_clean () =
  List.iter
    (fun (name, d) ->
      Alcotest.(check (list string)) (name ^ " checks clean") [] (Check.run (Desugar.design d)))
    [
      ("example1", Hls_designs.Example1.design ());
      ("fir8", Hls_designs.Fir.design ());
      ("fft", Hls_designs.Fft.design ());
      ("idct", Hls_designs.Idct.design ());
      ("sobel", Hls_designs.Conv.design ());
      ("dotprod", Hls_designs.Dotprod.design ());
      ("agc", Hls_designs.Agc.design ());
      ("synthetic", Hls_designs.Synthetic.design ());
    ]

let test_synthetic_deterministic () =
  let p = { Hls_designs.Synthetic.default_profile with p_ops = 150; p_seed = 42 } in
  let d1 = Hls_designs.Synthetic.design ~profile:p () in
  let d2 = Hls_designs.Synthetic.design ~profile:p () in
  Alcotest.(check bool) "same seed, same design" true (d1 = d2);
  let p2 = { p with p_seed = 43 } in
  let d3 = Hls_designs.Synthetic.design ~profile:p2 () in
  Alcotest.(check bool) "different seed, different design" false (d1 = d3)

let test_synthetic_population_sizes () =
  let pop = Hls_designs.Synthetic.population ~n:10 ~lo:100 ~hi:1000 ~seed:5 () in
  Alcotest.(check int) "ten designs" 10 (List.length pop);
  (* op counts grow across the population *)
  let sizes =
    List.map
      (fun d ->
        let e = Elaborate.design d in
        Hls_ir.Dfg.size e.Elaborate.cdfg.Hls_ir.Cdfg.dfg)
      pop
  in
  Alcotest.(check bool) "monotone-ish growth" true (List.nth sizes 9 > List.nth sizes 0 * 3)

let test_idct_is_multiplier_rich () =
  let e = Hls_designs.Idct.elaborated () in
  let dfg = e.Elaborate.cdfg.Hls_ir.Cdfg.dfg in
  let muls =
    List.length
      (List.filter (fun o -> o.Hls_ir.Dfg.kind = Hls_ir.Opkind.Bin Hls_ir.Opkind.Mul)
         (Hls_ir.Dfg.ops dfg))
  in
  Alcotest.(check int) "sixteen constant multiplications" 16 muls

let suite =
  [
    Alcotest.test_case "flow example1" `Quick test_flow_example1;
    Alcotest.test_case "flow frontend errors" `Quick test_flow_reports_frontend_errors;
    Alcotest.test_case "flow schedule errors" `Quick test_flow_reports_schedule_errors;
    Alcotest.test_case "flow rerunnable" `Quick test_flow_rerunnable;
    Alcotest.test_case "delay = II x Tclk" `Quick test_delay_is_ii_times_clock;
    Alcotest.test_case "designs check clean" `Quick test_designs_check_clean;
    Alcotest.test_case "synthetic deterministic" `Quick test_synthetic_deterministic;
    Alcotest.test_case "synthetic population" `Quick test_synthetic_population_sizes;
    Alcotest.test_case "idct multiplier-rich" `Quick test_idct_is_multiplier_rich;
  ]
