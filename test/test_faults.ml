(** Fault injection: feed the flow degraded technology libraries,
    malformed designs and exhausted budgets, and assert that every
    failure comes back as a typed {!Hls_diag.Diag.t} — never an
    exception — and that the degradation ladder serves a result when it
    promises to. *)

open Hls_frontend
module Diag = Hls_diag.Diag
module Flow = Hls_flow.Flow
module Lib = Hls_techlib.Library

(* ---- helpers ---- *)

(** Run the flow; any escaped exception is the bug this suite exists to
    catch. *)
let run_caught ?options design =
  match Flow.run ?options design with
  | r -> r
  | exception e -> Alcotest.failf "flow raised instead of returning: %s" (Printexc.to_string e)

let no_verify = { Flow.default_options with verify = false }

let expect_error ?phase ?code ?(options = no_verify) design =
  match run_caught ~options design with
  | Ok r -> Alcotest.failf "expected a typed error, got a %s-tier result" (Flow.tier_to_string r.Flow.f_tier)
  | Error d ->
      (match phase with
      | Some p ->
          Alcotest.(check string) "phase" (Diag.phase_to_string p) (Diag.phase_to_string d.Diag.d_phase)
      | None -> ());
      (match code with
      | Some c -> Alcotest.(check string) "code" c d.Diag.d_code
      | None -> ());
      d

(* ---- fault class 1: degraded library, absurdly slow operators ---- *)

let test_huge_delay_lib () =
  (* nothing fits in any clock: a typed overconstrained schedule error,
     not a crash, and the baseline rung cannot save it either *)
  let lib = { Lib.artisan90 with Lib.lib_name = "glacial"; d_mul = 1.0e7; d_add = 1.0e7 } in
  let d =
    expect_error ~phase:Diag.Schedule
      ~options:{ no_verify with lib; degrade = false }
      (Hls_designs.Example1.design ())
  in
  Alcotest.(check bool) "mentions restraints or a message" true (String.length d.Diag.d_message > 0)

(* ---- fault class 2: degraded library, zero-delay operators ---- *)

let test_zero_delay_lib () =
  (* degenerate characterization must not divide-by-zero or loop *)
  let lib =
    {
      Lib.artisan90 with
      Lib.lib_name = "free-lunch";
      d_mul = 0.0;
      d_add = 0.0;
      d_cmp_rel = 0.0;
      d_cmp_eq = 0.0;
      d_mux2 = 0.0;
      d_mux_per_extra_input = 0.0;
      ff_clk_q = 0.0;
      ff_clk_q_en = 0.0;
      ff_setup = 0.0;
    }
  in
  match run_caught ~options:{ no_verify with lib } (Hls_designs.Example1.design ()) with
  | Ok _ -> ()
  | Error d -> Alcotest.(check bool) "typed error, not a crash" true (String.length d.Diag.d_code > 0)

(* ---- fault class 3: degenerate clock period ---- *)

let test_zero_clock () =
  let _ =
    expect_error ~phase:Diag.Schedule
      ~options:{ no_verify with clock_ps = 0.0; degrade = false }
      (Hls_designs.Example1.design ())
  in
  ()

(* ---- fault class 4: malformed design (unknown port) ---- *)

let test_unknown_port () =
  let bad = Dsl.(design "bad" ~ins:[ in_port "a" 8 ] ~outs:[] ~vars:[] [ "x" := port "nope" ]) in
  let _ = expect_error ~phase:Diag.Frontend bad in
  ()

(* ---- fault class 5: inverted latency bounds ---- *)

let test_bad_latency_bounds () =
  let d =
    expect_error
      ~options:{ no_verify with min_latency = Some 8; max_latency = Some 2 }
      (Hls_designs.Example1.design ())
  in
  Alcotest.(check bool) "elaborate or schedule phase" true
    (d.Diag.d_phase = Diag.Elaborate || d.Diag.d_phase = Diag.Schedule)

(* ---- fault class 6: degenerate designs (empty, empty loop body) ---- *)

let test_empty_design () =
  let empty = Dsl.(design "empty" ~ins:[] ~outs:[] ~vars:[] []) in
  match run_caught ~options:no_verify empty with
  | Ok _ -> ()
  | Error d -> Alcotest.(check bool) "typed" true (String.length d.Diag.d_code > 0)

let test_empty_loop_body () =
  let d =
    Dsl.(
      design "hollow" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[]
        [ wait; do_while ~ii:1 [ wait ] (int 1) ])
  in
  match run_caught ~options:no_verify d with
  | Ok _ -> ()
  | Error e -> Alcotest.(check bool) "typed" true (String.length e.Diag.d_code > 0)

(* ---- fault class 7: infeasible recurrence at the requested II ---- *)

let recurrence_design () =
  Dsl.(
    design "rec1" ~ins:[ in_port "x" 32 ] ~outs:[ out_port "y" 32 ] ~vars:[ var "acc" 32 ]
      [
        "acc" := int 0;
        wait;
        do_while ~ii:1 ~max_latency:4
          [ "acc" := (v "acc" *: port "x") +: int 1; wait; write "y" (v "acc") ]
          (int 1);
      ])

let test_recurrence_infeasible () =
  (* mul+add ≈ 1280 ps around the carried cycle cannot meet II=1 at 1000 ps *)
  let d =
    expect_error ~phase:Diag.Schedule ~code:"recurrence_infeasible"
      ~options:{ no_verify with ii = Some 1; clock_ps = 1000.0; degrade = false }
      (recurrence_design ())
  in
  Alcotest.(check bool) "no budget tripped" true (d.Diag.d_budget = None)

(* ---- fault class 8: relaxation pass budget ---- *)

let tight_opts ~sched =
  { no_verify with ii = Some 1; clock_ps = 1600.0; degrade = false; sched }

let test_pass_budget () =
  let sched =
    { Hls_core.Scheduler.default_options with max_passes = 1; seed_latency_floor = false }
  in
  let d = expect_error ~phase:Diag.Schedule ~options:(tight_opts ~sched) (Hls_designs.Example1.design ~min_latency:1 ()) in
  Alcotest.(check string) "code" "budget_passes" d.Diag.d_code;
  (match d.Diag.d_budget with
  | Some (Diag.B_passes 1) -> ()
  | other ->
      Alcotest.failf "expected B_passes 1, got %s"
        (match other with Some b -> Diag.budget_to_string b | None -> "none"));
  Alcotest.(check bool) "pass count reported" true (d.Diag.d_passes >= 1)

(* ---- fault class 9: relaxation action budget ---- *)

let test_action_budget () =
  let sched =
    { Hls_core.Scheduler.default_options with max_actions = 0; seed_latency_floor = false }
  in
  let d = expect_error ~phase:Diag.Schedule ~options:(tight_opts ~sched) (Hls_designs.Example1.design ~min_latency:1 ()) in
  Alcotest.(check string) "code" "budget_actions" d.Diag.d_code;
  match d.Diag.d_budget with
  | Some (Diag.B_actions _) -> ()
  | _ -> Alcotest.fail "expected an action-budget diagnostic"

(* ---- fault class 10: wall-clock budget ---- *)

let test_wallclock_budget () =
  let sched = { Hls_core.Scheduler.default_options with timeout_s = Some 0.0 } in
  let d =
    expect_error ~phase:Diag.Schedule ~code:"budget_wallclock"
      ~options:{ no_verify with degrade = false; sched }
      (Hls_designs.Example1.design ())
  in
  match d.Diag.d_budget with
  | Some (Diag.B_wallclock _) -> ()
  | _ -> Alcotest.fail "expected a wall-clock budget diagnostic"

(* ---- fault class 11: budget exhaustion + degradation ladder ----
   The acceptance criterion: with every unified-scheduler tier starved by
   a zero wall-clock budget, the flow must still return a result, served
   by the baseline tier, with the degradation recorded. *)

let test_degrades_to_baseline () =
  let sched = { Hls_core.Scheduler.default_options with timeout_s = Some 0.0 } in
  let options = { no_verify with ii = Some 1; sched; degrade = true } in
  match run_caught ~options (Hls_designs.Example1.design ()) with
  | Error d -> Alcotest.failf "ladder must serve a result, got: %s" (Diag.to_string d)
  | Ok r ->
      Alcotest.(check string) "tier" "baseline" (Flow.tier_to_string r.Flow.f_tier);
      Alcotest.(check bool) "degradation notes recorded" true (List.length r.Flow.f_notes >= 1);
      Alcotest.(check bool) "notes are warnings" true
        (List.for_all (fun n -> n.Diag.d_severity = Diag.Warning) r.Flow.f_notes);
      Alcotest.(check bool) "summary mentions the tier" true
        (let s = Flow.summary r in
         let needle = "degraded: baseline" in
         let n = String.length needle and l = String.length s in
         let rec find i = i + n <= l && (String.sub s i n = needle || find (i + 1)) in
         find 0)

(* ---- fault class 12: paranoid audit runs clean on healthy flows ---- *)

let test_paranoid_clean () =
  let options = { no_verify with paranoid = true; ii = Some 2 } in
  match run_caught ~options (Hls_designs.Example1.design ()) with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "paranoid flow failed: %s" (Diag.to_string d)

(* ---- diagnostic rendering ---- *)

let test_diag_json_well_formed () =
  let d =
    expect_error ~phase:Diag.Schedule
      ~options:{ no_verify with clock_ps = 400.0; degrade = false }
      (Hls_designs.Example1.design ())
  in
  let j = Diag.to_json d in
  Alcotest.(check bool) "object" true (j.[0] = '{' && j.[String.length j - 1] = '}');
  List.iter
    (fun field ->
      let needle = Printf.sprintf "\"%s\"" field in
      let n = String.length needle and l = String.length j in
      let rec find i = i + n <= l && (String.sub j i n = needle || find (i + 1)) in
      Alcotest.(check bool) (field ^ " present") true (find 0))
    [ "phase"; "severity"; "code"; "message"; "restraints"; "actions"; "passes"; "budget" ]

(* ---- fault class: typed frontend loop/nest rejections ---- *)

(* a design around [body] with enough ports/vars for the loop shapes below *)
let loop_design body =
  {
    Ast.d_name = "t";
    d_ins = [ ("x", 8) ];
    d_outs = [ ("y", 16) ];
    d_vars = [ ("acc", 16); ("i", 16); ("j", 16) ];
    d_body = body;
  }

let attrs name = { Ast.default_attrs with Ast.l_name = name }

(** Every frontend rejection must surface as a non-degradable
    [Frontend]-phase diagnostic carrying the typed fault code and the
    offending loop's name in the message. *)
let expect_frontend_fault ~code ~loop body =
  let d =
    expect_error ~phase:Diag.Frontend ~code
      ~options:{ no_verify with degrade = true } (* ladder must NOT rescue frontend faults *)
      (loop_design body)
  in
  let msg = d.Diag.d_message in
  let needle = "'" ^ loop ^ "'" in
  let n = String.length needle and l = String.length msg in
  let rec find i = i + n <= l && (String.sub msg i n = needle || find (i + 1)) in
  Alcotest.(check bool) (Printf.sprintf "message names loop %s: %s" loop msg) true (find 0)

let test_loop_under_conditional () =
  expect_frontend_fault ~code:"loop_under_conditional" ~loop:"guarded"
    [
      Ast.If
        ( Ast.Port "x",
          [ Ast.For ("i", 0, 4, [ Ast.Assign ("acc", Ast.Port "x"); Ast.Wait ], attrs "guarded") ],
          [] );
    ]

let test_nonpositive_trip () =
  expect_frontend_fault ~code:"nonpositive_trip" ~loop:"empty"
    [ Ast.For ("i", 5, 5, [ Ast.Assign ("acc", Ast.Port "x"); Ast.Wait ], attrs "empty") ]

let test_unroll_overflow () =
  (* a single loop marked [unroll] past the bound *)
  expect_frontend_fault ~code:"unroll_overflow" ~loop:"huge"
    [
      Ast.For
        ( "i",
          0,
          5000,
          [ Ast.Assign ("acc", Ast.Port "x"); Ast.Wait ],
          { (attrs "huge") with Ast.l_unroll = true } );
    ]

let test_nest_shape_rejection () =
  (* an INELIGIBLE nest (inner counter read after the inner loop) whose
     inner trip also exceeds the unroll bound: neither lowering applies,
     so the typed [nest_shape] fault must name the outer loop *)
  expect_frontend_fault ~code:"nest_shape" ~loop:"outer"
    [
      Ast.For
        ( "i",
          0,
          4,
          [
            Ast.For ("j", 0, 5000, [ Ast.Assign ("acc", Ast.Port "x"); Ast.Wait ], attrs "inner");
            Ast.Assign ("acc", Ast.Var "j");
          ],
          attrs "outer" );
    ]

let test_bad_nest_ii_grid () =
  (* an inconsistent per-dimension II request on a real nest: outer II
     must equal kernel II x inner trip (here 4), so [3; 1] is impossible *)
  let design =
    {
      Ast.d_name = "nested";
      d_ins = [ ("x", 8) ];
      d_outs = [ ("y", 20) ];
      d_vars = [ ("acc", 20); ("i", 4); ("j", 4) ];
      d_body =
        [
          Ast.For
            ( "i",
              0,
              4,
              [
                Ast.Assign ("acc", Ast.Int_w (0, 20));
                Ast.For
                  ( "j",
                    0,
                    4,
                    [
                      Ast.Assign
                        ("acc", Ast.Bin (Hls_ir.Opkind.Add, Ast.Var "acc", Ast.Port "x"));
                      Ast.Wait;
                    ],
                    attrs "col" );
                Ast.Write ("y", Ast.Var "acc");
              ],
              attrs "row" );
        ];
    }
  in
  let d =
    match
      Flow.run ~options:{ no_verify with ii_dims = Some [ 3; 1 ]; degrade = true } design
    with
    | Ok r -> Alcotest.failf "expected nest_ii error, got %s tier" (Flow.tier_to_string r.Flow.f_tier)
    | Error d -> d
  in
  Alcotest.(check string) "code" "nest_ii" d.Diag.d_code

let suite =
  [
    Alcotest.test_case "huge-delay library" `Quick test_huge_delay_lib;
    Alcotest.test_case "zero-delay library" `Quick test_zero_delay_lib;
    Alcotest.test_case "zero clock period" `Quick test_zero_clock;
    Alcotest.test_case "unknown port" `Quick test_unknown_port;
    Alcotest.test_case "inverted latency bounds" `Quick test_bad_latency_bounds;
    Alcotest.test_case "empty design" `Quick test_empty_design;
    Alcotest.test_case "empty loop body" `Quick test_empty_loop_body;
    Alcotest.test_case "recurrence infeasible" `Quick test_recurrence_infeasible;
    Alcotest.test_case "pass budget" `Quick test_pass_budget;
    Alcotest.test_case "action budget" `Quick test_action_budget;
    Alcotest.test_case "wall-clock budget" `Quick test_wallclock_budget;
    Alcotest.test_case "degrades to baseline tier" `Quick test_degrades_to_baseline;
    Alcotest.test_case "paranoid audit clean" `Quick test_paranoid_clean;
    Alcotest.test_case "diagnostic JSON" `Quick test_diag_json_well_formed;
    Alcotest.test_case "loop under conditional (typed)" `Quick test_loop_under_conditional;
    Alcotest.test_case "non-positive trip count (typed)" `Quick test_nonpositive_trip;
    Alcotest.test_case "unroll overflow (typed)" `Quick test_unroll_overflow;
    Alcotest.test_case "ineligible nest shape (typed)" `Quick test_nest_shape_rejection;
    Alcotest.test_case "inconsistent nest II request" `Quick test_bad_nest_ii_grid;
  ]
