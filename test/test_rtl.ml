(** RTL back end: register allocation, area statistics, Verilog emission. *)

open Hls_core
open Hls_frontend

let lib = Hls_techlib.Library.artisan90

let schedule ?ii ?(clock = 1600.0) design =
  let e = Elaborate.design design in
  let region = Elaborate.main_region ?ii e in
  match Scheduler.schedule ~lib ~clock_ps:clock region with
  | Ok s -> (e, s)
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message

let test_regalloc_example1 () =
  let _, s = schedule (Hls_designs.Example1.design ~max_latency:3 ()) in
  let ra = Hls_rtl.Regalloc.analyze s in
  Alcotest.(check bool) "some registers" true (Hls_rtl.Regalloc.n_registers ra > 0);
  (* every value crossing a step boundary is covered *)
  let covered = List.map (fun v -> v.Hls_rtl.Regalloc.v_op) ra.Hls_rtl.Regalloc.values in
  List.iter
    (fun id -> Alcotest.(check bool) "registered op covered" true (List.mem id covered))
    (Hls_netlist.Netlist.registered_ops s.Scheduler.s_binding.Binding.net)

let test_regalloc_pipeline_copies () =
  (* a value produced in stage 1 and consumed in stage 2 of an II=1
     pipeline needs as many copies as the stage distance *)
  let _, s = schedule ~ii:1 (Hls_designs.Example1.design ()) in
  let ra = Hls_rtl.Regalloc.analyze s in
  let multi = List.filter (fun v -> v.Hls_rtl.Regalloc.v_copies > 1) ra.Hls_rtl.Regalloc.values in
  (* mask is read in stage 0 but consumed by mul3 in the last stage *)
  Alcotest.(check bool) "shift-chain copies exist" true (multi <> [])

let test_regalloc_sharing_disjoint () =
  let _, s = schedule (Hls_designs.Idct.design ~max_latency:24 ()) in
  let ra = Hls_rtl.Regalloc.analyze s in
  (* sharing must never exceed the number of values *)
  Alcotest.(check bool) "fewer registers than values (sharing happened)" true
    (Hls_rtl.Regalloc.n_registers ra <= List.length ra.Hls_rtl.Regalloc.values);
  (* shared registers host values with disjoint life spans *)
  List.iter
    (fun r ->
      let vs = r.Hls_rtl.Regalloc.r_values in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                Alcotest.(check bool) "disjoint spans" true
                  (a.Hls_rtl.Regalloc.v_last_use < b.Hls_rtl.Regalloc.v_def
                  || b.Hls_rtl.Regalloc.v_last_use < a.Hls_rtl.Regalloc.v_def))
            vs)
        vs)
    (Hls_rtl.Regalloc.shared_regs ra)

let test_stats_breakdown () =
  let _, s = schedule (Hls_designs.Example1.design ~max_latency:3 ()) in
  let bd = Hls_rtl.Stats.area ~io_widths:[ 32; 32; 32; 32; 32 ] s in
  Alcotest.(check bool) "total = sum of parts" true
    (abs_float
       (bd.Hls_rtl.Stats.a_total
       -. (bd.Hls_rtl.Stats.a_resources +. bd.Hls_rtl.Stats.a_input_muxes
          +. bd.Hls_rtl.Stats.a_registers +. bd.Hls_rtl.Stats.a_reg_muxes +. bd.Hls_rtl.Stats.a_control))
    < 0.01);
  Alcotest.(check bool) "timing met -> wns 0" true (bd.Hls_rtl.Stats.wns >= -0.01);
  Alcotest.(check bool) "resources dominated by the multiplier" true
    (bd.Hls_rtl.Stats.a_resources > 7000.0)

let test_power_positive_and_scaling () =
  let _, s3 = schedule (Hls_designs.Example1.design ~max_latency:3 ()) in
  let bd3 = Hls_rtl.Stats.area s3 in
  let p3 = Hls_rtl.Stats.power s3 bd3 ~clock_ps:1600.0 in
  let _, s1 = schedule ~ii:1 (Hls_designs.Example1.design ()) in
  let bd1 = Hls_rtl.Stats.area s1 in
  let p1 = Hls_rtl.Stats.power s1 bd1 ~clock_ps:1600.0 in
  Alcotest.(check bool) "positive power" true (p3 > 0.0);
  (* II=1 runs an iteration every cycle: more activity, more power *)
  Alcotest.(check bool) "higher throughput costs power" true (p1 > p3)

let test_verilog_emission () =
  let e, s = schedule ~ii:2 (Hls_designs.Example1.design ()) in
  let f = Pipeline.fold s in
  let src = Hls_rtl.Verilog.emit e s f in
  Alcotest.(check bool) "module present" true
    (String.length src > 200
    && String.sub src 0 2 = "//");
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and sl = String.length src in
        let rec go i = i + nl <= sl && (String.sub src i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true contains)
    [ "module example1"; "endmodule"; "stage_valid"; "first_iter"; "pixel_valid"; "always @(posedge clk)" ];
  Alcotest.(check (list string)) "lint clean" [] (Hls_rtl.Verilog.lint src)

let test_verilog_sequential () =
  let e, s = schedule (Hls_designs.Dotprod.design ()) in
  let f = Pipeline.fold s in
  let src = Hls_rtl.Verilog.emit e s f in
  Alcotest.(check (list string)) "lint clean" [] (Hls_rtl.Verilog.lint src)

let test_verilog_lint_catches () =
  Alcotest.(check bool) "undeclared id reported" true
    (Hls_rtl.Verilog.lint "module m; assign v1_x = v2_ghost; endmodule" <> [])

let suite =
  [
    Alcotest.test_case "regalloc covers registered values" `Quick test_regalloc_example1;
    Alcotest.test_case "regalloc pipeline copies" `Quick test_regalloc_pipeline_copies;
    Alcotest.test_case "regalloc sharing disjoint" `Quick test_regalloc_sharing_disjoint;
    Alcotest.test_case "stats breakdown" `Quick test_stats_breakdown;
    Alcotest.test_case "power scaling" `Quick test_power_positive_and_scaling;
    Alcotest.test_case "verilog pipelined emission" `Quick test_verilog_emission;
    Alcotest.test_case "verilog sequential emission" `Quick test_verilog_sequential;
    Alcotest.test_case "verilog lint" `Quick test_verilog_lint_catches;
  ]
