(** Extension features: multi-cycle black-box IP binding and pipeline
    stalling — the paper's Section IV.B item 2 ("possibly pipelined
    multi-cycle operations ... binding of operations to predesigned IP
    blocks") and Section V's stalling loops. *)

open Hls_ir
open Hls_core
open Hls_frontend

let base_lib = Hls_techlib.Library.artisan90

let test_multicycle_blackbox () =
  (* a 3-cycle pipelined IP block in the middle of the dataflow *)
  let lib =
    Hls_techlib.Library.with_blackbox base_lib ~name:"sqrt3" ~latency:3 ~stage_delay:900.0
      ~area:4200.0 ~energy:8.0
  in
  let open Dsl in
  let d =
    design "mc" ~ins:[ in_port "a" 16 ] ~outs:[ out_port "y" 24 ] ~vars:[ var "x" 24 ]
      [
        "x" := int 0;
        wait;
        do_while ~min_latency:1 ~max_latency:12
          [ "x" := call "sqrt3" [ port "a" ] ~width:20 +: int 1; wait; write "y" (v "x") ]
          (int 1);
      ]
  in
  let e = Elaborate.design d in
  let region = Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "multicycle schedule failed: %s" err.Scheduler.e_message
  | Ok s ->
      let dfg = e.Elaborate.cdfg.Cdfg.dfg in
      let call_op =
        List.find
          (fun o -> match o.Dfg.kind with Opkind.Call _ -> true | _ -> false)
          (Dfg.ops dfg)
      in
      let pl = Option.get (Binding.placement s.Scheduler.s_binding call_op.Dfg.id) in
      Alcotest.(check int) "occupies three steps" 2 (pl.Binding.pl_finish - pl.Binding.pl_step);
      (* its consumer starts strictly after the IP finishes *)
      let add =
        List.find (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Add) (Dfg.ops dfg)
      in
      let apl = Option.get (Binding.placement s.Scheduler.s_binding add.Dfg.id) in
      Alcotest.(check bool) "consumer waits for the pipeline" true
        (apl.Binding.pl_step >= pl.Binding.pl_finish + 1);
      Alcotest.(check bool) "LI covers the latency" true (s.Scheduler.s_li >= 4)

let test_multicycle_busy_across_steps () =
  let lib =
    Hls_techlib.Library.with_blackbox base_lib ~name:"ip2" ~latency:2 ~stage_delay:800.0
      ~area:3000.0 ~energy:5.0
  in
  let dfg = Dfg.create () in
  let r = Dfg.add_op dfg (Opkind.Read "a") ~width:16 in
  let c1 = Dfg.add_op dfg (Opkind.Call { Opkind.callee = "ip2"; call_latency = 1 }) ~width:16 ~name:"c1" in
  let c2 = Dfg.add_op dfg (Opkind.Call { Opkind.callee = "ip2"; call_latency = 1 }) ~width:16 ~name:"c2" in
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c1.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c2.Dfg.id ~port:0;
  let region = Region.create ~min_steps:4 ~max_steps:4 ~name:"mc2" dfg in
  let b = Binding.create ~lib ~clock_ps:1600.0 region in
  let ip =
    Binding.add_inst b { Hls_techlib.Resource.rclass = Opkind.R_blackbox "ip2"; in_widths = [ 16 ]; out_width = 16 }
  in
  Binding.reset_pass b;
  (match Binding.try_bind b r ~step:0 ~inst_opt:None with Ok () -> () | Error _ -> Alcotest.fail "read");
  (match Binding.try_bind b c1 ~step:0 ~inst_opt:(Some ip.Binding.inst_id) with
  | Ok () -> ()
  | Error f -> Alcotest.failf "c1: %s" (Restraint.fail_to_string f));
  (* step 1 is still occupied by the 2-cycle c1 *)
  (match Binding.try_bind b c2 ~step:1 ~inst_opt:(Some ip.Binding.inst_id) with
  | Error (Restraint.F_busy _) -> ()
  | Ok () -> Alcotest.fail "IP must be busy in its second cycle"
  | Error f -> Alcotest.failf "expected busy, got %s" (Restraint.fail_to_string f));
  match Binding.try_bind b c2 ~step:2 ~inst_opt:(Some ip.Binding.inst_id) with
  | Ok () -> ()
  | Error f -> Alcotest.failf "c2 at step 2: %s" (Restraint.fail_to_string f)

let test_stall_condition_plumbed () =
  let open Dsl in
  let d =
    design "st" ~ins:[ in_port "a" 8; in_port "go" 1 ] ~outs:[ out_port "y" 8 ]
      ~vars:[ var "x" 8 ]
      [
        "x" := int 0;
        wait;
        do_while ~ii:1 ~max_latency:4
          [ stall_until (port "go"); "x" := port "a"; wait; write "y" (v "x") ]
          (int 1);
      ]
  in
  let e = Elaborate.design d in
  let region = Elaborate.main_region e in
  Alcotest.(check bool) "stall condition recorded" true (region.Region.stall_cond <> None);
  match Scheduler.schedule ~lib:base_lib ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "stalling design failed: %s" err.Scheduler.e_message
  | Ok s ->
      (* the generated controller gates advancement on the stall signal *)
      let f = Pipeline.fold s in
      let src = Hls_rtl.Verilog.emit e s f in
      let contains needle =
        let nl = String.length needle and sl = String.length src in
        let rec go i = i + nl <= sl && (String.sub src i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "advance gated" true (contains "wire advance = 1'b1 &&")

let test_dedicated_instance () =
  (* Section IV.B item 4: the user may pin an operation to its own
     resource; Example 1's three multiplications then need two instances
     even sequentially *)
  let e = Hls_designs.Example1.elaborated ~max_latency:4 () in
  let region = Elaborate.main_region e in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  let a_mul =
    List.find (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul) (Dfg.ops dfg)
  in
  let opts = { Scheduler.default_options with dedicated_ops = [ a_mul.Dfg.id ] } in
  match Scheduler.schedule ~opts ~lib:base_lib ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "dedicated schedule failed: %s" err.Scheduler.e_message
  | Ok s ->
      let pl = Option.get (Binding.placement s.Scheduler.s_binding a_mul.Dfg.id) in
      let inst = Binding.find_inst s.Scheduler.s_binding (Option.get pl.Binding.pl_inst) in
      Alcotest.(check (list int)) "instance owned outright" [ a_mul.Dfg.id ] inst.Binding.bound;
      let muls =
        List.filter
          (fun (i : Binding.inst) ->
            i.Binding.rtype.Hls_techlib.Resource.rclass = Opkind.R_mul && i.Binding.bound <> [])
          (Hls_netlist.Netlist.insts s.Scheduler.s_binding.Binding.net)
      in
      Alcotest.(check bool) "a second multiplier appears" true (List.length muls >= 2)

let suite =
  [
    Alcotest.test_case "multicycle blackbox scheduling" `Quick test_multicycle_blackbox;
    Alcotest.test_case "dedicated instance constraint" `Quick test_dedicated_instance;
    Alcotest.test_case "multicycle busy spans steps" `Quick test_multicycle_busy_across_steps;
    Alcotest.test_case "stall condition plumbed" `Quick test_stall_condition_plumbed;
  ]
