(** The crash-safe artifact store: durable roundtrips, checksum
    verification with quarantine-on-read, the open-time recovery scan
    (tmp cleanup + corrupt-entry sweep), layout-version enforcement and
    the [index.json] flush. *)

module Store = Hls_store.Store
module P = Hls_server.Protocol

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsc_store_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (* [Store.open_] creates the tree itself; only the root must not be a file *)
  d

let open_ok ?scan dir =
  match Store.open_ ?scan dir with
  | Ok t -> t
  | Error m -> Alcotest.failf "open %s: %s" dir m

let test_roundtrip () =
  let st = open_ok (fresh_dir ()) in
  Alcotest.(check (option string)) "empty store misses" None (Store.find st "k");
  (match Store.put st "k" "payload-1" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "put: %s" m);
  Alcotest.(check (option string)) "roundtrip" (Some "payload-1") (Store.find st "k");
  Alcotest.(check bool) "mem sees it" true (Store.mem st "k");
  (* overwrite: last writer wins, atomically *)
  (match Store.put st "k" "payload-2" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "overwrite: %s" m);
  Alcotest.(check (option string)) "overwrite visible" (Some "payload-2") (Store.find st "k");
  Alcotest.(check int) "overwrite is still one entry" 1 (List.length (Store.keys st));
  (* binary-hostile payloads survive byte-exactly *)
  let nasty = "\x00\xff\nhlsc-art 1\n\x01 binary \\ \" bytes" in
  (match Store.put st "nasty" nasty with
  | Ok () -> ()
  | Error m -> Alcotest.failf "put nasty: %s" m);
  Alcotest.(check (option string)) "binary payload intact" (Some nasty) (Store.find st "nasty");
  let s = Store.stats st in
  Alcotest.(check int) "entries" 2 s.Store.st_entries;
  Alcotest.(check int) "puts counted" 3 s.Store.st_puts;
  Alcotest.(check int) "no quarantine yet" 0 s.Store.st_quarantined

let test_corrupt_quarantined_on_read () =
  List.iter
    (fun how ->
      let st = open_ok (fresh_dir ()) in
      (match Store.put st "k" "the payload bytes" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "put: %s" m);
      Alcotest.(check bool) "corrupt hook found the entry" true (Store.corrupt st "k" how);
      (* the damaged entry is a miss, moved aside, never served *)
      Alcotest.(check (option string)) "corrupt entry not served" None (Store.find st "k");
      Alcotest.(check bool) "entry gone from objects/" false (Store.mem st "k");
      let s = Store.stats st in
      Alcotest.(check int) "quarantined" 1 s.Store.st_quarantined;
      Alcotest.(check int) "no live entries" 0 s.Store.st_entries;
      (* a re-put re-publishes a good copy under the same key *)
      (match Store.put st "k" "fresh copy" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "re-put: %s" m);
      Alcotest.(check (option string)) "key usable again" (Some "fresh copy") (Store.find st "k"))
    [ `Truncate; `Flip ]

let test_recovery_scan () =
  let dir = fresh_dir () in
  let st = open_ok dir in
  (match Store.put st "good" "good bytes" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "put good: %s" m);
  (match Store.put st "bad" "doomed bytes" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "put bad: %s" m);
  ignore (Store.corrupt st "bad" `Truncate);
  (* a crash mid-write leaves garbage in tmp/ under a live root *)
  let tmp_leftover = Filename.concat (Filename.concat dir "tmp") "put.999.1" in
  let oc = open_out_bin tmp_leftover in
  output_string oc "torn half-written entry";
  close_out oc;
  (* a cold re-open runs recovery: tmp wiped, corrupt entry quarantined *)
  let st2 = open_ok dir in
  Alcotest.(check bool) "tmp leftover deleted" false (Sys.file_exists tmp_leftover);
  Alcotest.(check (option string)) "good entry survives" (Some "good bytes") (Store.find st2 "good");
  Alcotest.(check (option string)) "corrupt entry quarantined at open" None (Store.find st2 "bad");
  let s = Store.stats st2 in
  Alcotest.(check int) "one live entry" 1 s.Store.st_entries;
  Alcotest.(check int) "one quarantined file" 1 s.Store.st_quarantined;
  (* opening with the scan disabled must not quarantine — the read does *)
  let dir3 = fresh_dir () in
  let st3 = open_ok dir3 in
  (match Store.put st3 "k" "x" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  ignore (Store.corrupt st3 "k" `Flip);
  let st4 = open_ok ~scan:false dir3 in
  Alcotest.(check int) "no-scan open leaves the damage in place" 0
    (Store.stats st4).Store.st_quarantined;
  Alcotest.(check (option string)) "verified read still refuses it" None (Store.find st4 "k");
  Alcotest.(check int) "…and quarantines it" 1 (Store.stats st4).Store.st_quarantined

let test_version_mismatch () =
  let dir = fresh_dir () in
  ignore (open_ok dir);
  (* rewrite the stamp as a future layout *)
  let vf = Filename.concat dir "VERSION" in
  let oc = open_out_bin vf in
  output_string oc (Printf.sprintf "hlsc-store %d\n" (Store.layout_version + 1));
  close_out oc;
  (match Store.open_ dir with
  | Ok _ -> Alcotest.fail "incompatible layout accepted"
  | Error m ->
      Alcotest.(check bool) ("mentions incompatibility: " ^ m) true
        (String.length m > 0));
  (* garbage stamp is refused too *)
  let oc = open_out_bin vf in
  output_string oc "not a store\n";
  close_out oc;
  match Store.open_ dir with
  | Ok _ -> Alcotest.fail "garbage VERSION accepted"
  | Error _ -> ()

let test_flush_index () =
  let dir = fresh_dir () in
  let st = open_ok dir in
  (match Store.put st "a" "aaaa" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  (match Store.put st "b" "bb" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  (match Store.flush_index st with
  | Ok () -> ()
  | Error m -> Alcotest.failf "flush_index: %s" m);
  let idx = Filename.concat dir "index.json" in
  let ic = open_in_bin idx in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match P.of_string text with
  | Error m -> Alcotest.failf "index.json unparseable: %s" m
  | Ok j ->
      let geti f =
        match Option.bind (P.member f j) P.get_int with
        | Some n -> n
        | None -> Alcotest.failf "index field %s missing" f
      in
      Alcotest.(check int) "layout_version" Store.layout_version (geti "layout_version");
      Alcotest.(check int) "entries" 2 (geti "entries");
      Alcotest.(check int) "quarantined" 0 (geti "quarantined");
      let keys =
        match P.member "keys" j with
        | Some (P.List l) -> List.filter_map P.get_string l
        | _ -> Alcotest.fail "keys array missing"
      in
      Alcotest.(check int) "two hashed keys listed" 2 (List.length keys);
      Alcotest.(check (list string)) "index keys match directory scan" (Store.keys st)
        (List.sort compare keys)

(* [stats] caches its directory scan: writes through the same handle
   stay exact incrementally, other handles' writes show up only after a
   rescan (TTL expiry or an explicit [~max_age:0.0]) *)
let test_stats_scan_cache () =
  let dir = fresh_dir () in
  let st_a = open_ok dir in
  (match Store.put st_a "one" "1" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  Alcotest.(check int) "first stats scans" 1 (Store.stats st_a).Store.st_entries;
  (match Store.put st_a "two" "22" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  Alcotest.(check int) "own writes exact without a rescan" 2 (Store.stats st_a).Store.st_entries;
  let st_b = open_ok ~scan:false dir in
  Alcotest.(check int) "second handle sees both" 2 (Store.stats st_b).Store.st_entries;
  (match Store.put st_a "three" "333" with Ok () -> () | Error m -> Alcotest.failf "put: %s" m);
  Alcotest.(check int) "cached scan lags cross-handle writes" 2
    (Store.stats st_b).Store.st_entries;
  Alcotest.(check int) "max_age 0 forces a fresh scan" 3
    (Store.stats ~max_age:0.0 st_b).Store.st_entries

let suite =
  [
    Alcotest.test_case "put/find roundtrip + overwrite" `Quick test_roundtrip;
    Alcotest.test_case "stats scan cache: exact own writes, bounded lag" `Quick
      test_stats_scan_cache;
    Alcotest.test_case "corrupt entries quarantined on read" `Quick
      test_corrupt_quarantined_on_read;
    Alcotest.test_case "open-time recovery scan" `Quick test_recovery_scan;
    Alcotest.test_case "layout version enforced" `Quick test_version_mismatch;
    Alcotest.test_case "index flush is parseable" `Quick test_flush_index;
  ]
