(** Chaos harness: run a real supervised daemon in-process with fault
    injection armed — workers killed or stalled mid-job, store entries
    corrupted after publication — and prove the service contract holds:
    the daemon never dies, completed jobs are byte-identical to the
    offline CLI, losses surface as typed [worker_lost] /
    [deadline_exceeded] results, retries are bounded, and a cold restart
    quarantines damaged store entries instead of serving them. *)

module Server = Hls_server.Server
module Client = Hls_server.Client
module Worker = Hls_server.Worker
module P = Hls_server.Protocol
module Render = Hls_server.Render
module Design_db = Hls_server.Design_db
module Store = Hls_store.Store
module Flow = Hls_flow.Flow

let counter = ref 0

let fresh_path tag =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hlsc_chaos_%s_%d_%d" tag (Unix.getpid ()) !counter)

let chaos ?(seed = 1) ?(kill = 0.0) ?(stall = 0.0) ?(corrupt = 0.0) () =
  { Worker.cz_seed = seed; cz_kill = kill; cz_stall = stall; cz_corrupt = corrupt }

(* one daemon lifetime; [f socket] runs against it.  Unlike the plain
   server tests this helper is also used twice on one [store_dir] to
   exercise restart recovery. *)
let with_server ?(workers = 2) ?store_dir ?chaos ?deadline_s ?hb_timeout_s ?max_requeues f =
  let socket = fresh_path "sock" in
  let cfg =
    {
      Server.default_config with
      Server.socket;
      workers;
      store_dir;
      chaos;
      deadline_s = Option.value deadline_s ~default:Server.default_config.Server.deadline_s;
      hb_timeout_s = Option.value hb_timeout_s ~default:Server.default_config.Server.hb_timeout_s;
      max_requeues = Option.value max_requeues ~default:Server.default_config.Server.max_requeues;
      (* quick respawns keep the fault tests fast *)
      backoff_base_s = 0.01;
      backoff_cap_s = 0.05;
    }
  in
  match Server.create cfg with
  | Error m -> Alcotest.failf "server create: %s" m
  | Ok srv ->
      let th = Thread.create Server.serve srv in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Thread.join th)
        (fun () -> f socket)

let connect socket =
  match Client.connect ~socket () with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let offline_output (spec : P.job_spec) =
  let design =
    match Design_db.load spec.P.js_design with
    | Ok d -> d
    | Error m -> Alcotest.failf "load: %s" m
  in
  match Flow.run ~options:(Hls_server.Artifact.options_of_spec spec) design with
  | Ok r -> Render.output spec.P.js_cmd r
  | Error d -> Alcotest.failf "offline flow failed: %s" (Hls_diag.Diag.to_string d)

let quick_spec ?(clock = 1600.0) () =
  P.job_spec ~ii:2 ~verify:false ~clock_ps:clock P.C_schedule (`Builtin "example1")

(* supervision counters move on the supervisor's own tick (respawns wait
   out the backoff), so assertions on them poll with a deadline *)
let rec wait_stats_at_least socket path sub n ~deadline =
  if stats_int socket path sub >= n then ()
  else if Unix.gettimeofday () > deadline then
    Alcotest.failf "stats %s.%s never reached %d" path sub n
  else begin
    Unix.sleepf 0.02;
    wait_stats_at_least socket path sub n ~deadline
  end

and stats_int socket path sub =
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.stats c with
  | Error m -> Alcotest.failf "stats: %s" m
  | Ok j -> (
      match Option.bind (P.member path j) (fun o -> Option.bind (P.member sub o) P.get_int) with
      | Some n -> n
      | None -> Alcotest.failf "stats field %s.%s missing" path sub)

(* ---- every worker dies on every job: the client still gets a typed
   answer and the daemon keeps serving ---- *)

let test_kill_storm_typed_loss () =
  with_server ~workers:2 ~chaos:(chaos ~kill:1.0 ()) @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.submit c (quick_spec ()) with
  | Error m -> Alcotest.failf "submit during kill storm must answer, got transport error: %s" m
  | Ok o ->
      Alcotest.(check bool) "status is error" true (o.P.o_status = P.S_error);
      Alcotest.(check (option string)) "typed worker_lost" (Some "worker_lost") o.P.o_code);
  (* the acceptor survived two worker deaths and respawned the fleet *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  wait_stats_at_least socket "supervisor" "crashes" 2 ~deadline;
  wait_stats_at_least socket "supervisor" "respawns" 1 ~deadline;
  (* health still answers (possibly degraded mid-respawn) *)
  let c2 = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  match Client.health c2 with
  | Error m -> Alcotest.failf "health during storm: %s" m
  | Ok j -> (
      match Option.bind (P.member "status" j) P.get_string with
      | Some ("ok" | "degraded") -> ()
      | other -> Alcotest.failf "unexpected health status %s" (Option.value other ~default:"?"))

(* ---- partial kills + client retries: correct bytes, bounded attempts ---- *)

let test_retry_beats_partial_kills () =
  with_server ~workers:2 ~chaos:(chaos ~seed:7 ~kill:0.4 ()) @@ fun socket ->
  let spec = quick_spec () in
  let expected = offline_output spec in
  let retries = 10 in
  match
    Client.submit_retrying ~retries ~backoff_s:0.01 ~max_backoff_s:0.05 ~seed:42
      ~connect:(fun () -> Client.connect ~socket ())
      spec
  with
  | Error m -> Alcotest.failf "retrying submit lost to 40%% kill rate: %s" m
  | Ok (o, attempts) ->
      Alcotest.(check bool) "eventually ok" true (o.P.o_status = P.S_ok);
      Alcotest.(check string) "bytes identical to offline CLI" expected o.P.o_output;
      Alcotest.(check bool)
        (Printf.sprintf "attempts bounded (%d <= %d)" attempts (retries + 1))
        true
        (attempts >= 1 && attempts <= retries + 1)

(* ---- wedged worker: heartbeat staleness trips, the job is answered ---- *)

let test_stall_detected () =
  with_server ~workers:1 ~chaos:(chaos ~stall:1.0 ()) ~hb_timeout_s:0.3 ~max_requeues:0
  @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.submit c (quick_spec ()) with
  | Error m -> Alcotest.failf "stalled job must still answer: %s" m
  | Ok o ->
      Alcotest.(check bool) "status is error" true (o.P.o_status = P.S_error);
      Alcotest.(check (option string)) "typed worker_lost" (Some "worker_lost") o.P.o_code);
  let wall = Unix.gettimeofday () -. t0 in
  (* the hang was detected by heartbeat timeout, not by a 300 s deadline *)
  Alcotest.(check bool) (Printf.sprintf "answered promptly (%.2fs)" wall) true (wall < 10.0);
  Alcotest.(check bool) "hang kill counted" true (stats_int socket "supervisor" "hang_kills" >= 1)

(* ---- per-job deadline: a job that will never finish is killed and
   typed.  A chaos stall (infinite sleep in the worker) stands in for
   the arbitrarily slow compile; the heartbeat timeout is pushed far out
   so the per-job deadline — not hang detection — is what trips. *)

let test_deadline_exceeded () =
  with_server ~workers:1 ~chaos:(chaos ~stall:1.0 ()) ~hb_timeout_s:30.0 @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let doomed () = P.job_spec ~ii:2 ~verify:false ~deadline_s:0.2 P.C_schedule (`Builtin "example1") in
  (match Client.submit c (doomed ()) with
  | Error m -> Alcotest.failf "deadline job must answer: %s" m
  | Ok o ->
      Alcotest.(check bool) "status is error" true (o.P.o_status = P.S_error);
      Alcotest.(check (option string)) "typed deadline_exceeded" (Some "deadline_exceeded")
        o.P.o_code);
  Alcotest.(check bool) "deadline kill counted" true
    (stats_int socket "supervisor" "deadline_kills" >= 1);
  (* the slot respawned: a second doomed job is admitted, dispatched and
     deadline-killed again rather than waiting behind a corpse *)
  match Client.submit c (doomed ()) with
  | Error m -> Alcotest.failf "second deadline job must answer: %s" m
  | Ok o ->
      Alcotest.(check (option string)) "deadline enforced again after respawn"
        (Some "deadline_exceeded") o.P.o_code

(* ---- store corruption: clients never see wrong bytes; the restart
   quarantines the damage instead of serving it ---- *)

let test_corrupt_store_quarantined_across_restart () =
  let store_dir = fresh_path "store" in
  let spec = quick_spec () in
  let expected = offline_output spec in
  (* phase 1: every fresh compile damages its own store entry after the
     atomic publish — the in-hand artifact must still be correct *)
  with_server ~workers:1 ~store_dir ~chaos:(chaos ~corrupt:1.0 ()) (fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.submit c spec with
      | Error m -> Alcotest.failf "submit: %s" m
      | Ok o ->
          Alcotest.(check bool) "compile ok" true (o.P.o_status = P.S_ok);
          Alcotest.(check string) "corrupting the store cannot corrupt the answer" expected
            o.P.o_output);
  (* phase 2: cold restart on the same store — recovery must quarantine
     the damaged entry, recompile, and still serve correct bytes *)
  with_server ~workers:1 ~store_dir (fun socket ->
      Alcotest.(check bool) "restart quarantined the damaged entry" true
        (stats_int socket "store" "quarantined" >= 1);
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.submit c spec with
      | Error m -> Alcotest.failf "submit after restart: %s" m
      | Ok o ->
          Alcotest.(check bool) "recompiled ok" true (o.P.o_status = P.S_ok);
          Alcotest.(check bool) "not served from the damaged entry" false o.P.o_cached;
          Alcotest.(check string) "bytes correct after recovery" expected o.P.o_output)

(* ---- warm restart: artifacts persist and come back as store hits ---- *)

let test_store_survives_restart () =
  let store_dir = fresh_path "store" in
  let spec = quick_spec () in
  let expected = offline_output spec in
  with_server ~workers:1 ~store_dir (fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.submit c spec with
      | Error m -> Alcotest.failf "cold submit: %s" m
      | Ok o ->
          Alcotest.(check bool) "cold compile" false o.P.o_cached;
          Alcotest.(check string) "cold bytes" expected o.P.o_output);
  (* the drain flushed index.json for the next boot *)
  Alcotest.(check bool) "index flushed on drain" true
    (Sys.file_exists (Filename.concat store_dir "index.json"));
  with_server ~workers:1 ~store_dir (fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.submit c spec with
      | Error m -> Alcotest.failf "warm submit: %s" m
      | Ok o ->
          Alcotest.(check bool) "served from the persistent store" true o.P.o_cached;
          Alcotest.(check string) "warm bytes identical" expected o.P.o_output;
          Alcotest.(check bool) "store hit counted" true
            (stats_int socket "cache" "store_hits" >= 1))

(* ---- property: under randomized specs with kills armed, every request
   either completes with offline-identical bytes or fails typed; the
   daemon answers every time.  One chaos daemon serves all iterations
   (the socket is captured in the closure), so the property stays cheap. *)

let test_prop_never_wrong_bytes () =
  with_server ~workers:2 ~chaos:(chaos ~seed:3 ~kill:0.3 ()) @@ fun socket ->
  let prop =
    QCheck.Test.make ~name:"chaos kills never produce wrong bytes" ~count:8
      QCheck.(int_range 0 1000)
      (fun clock_off ->
        let spec = quick_spec ~clock:(1600.0 +. float_of_int clock_off) () in
        match
          Client.submit_retrying ~retries:8 ~backoff_s:0.01 ~max_backoff_s:0.05 ~seed:clock_off
            ~connect:(fun () -> Client.connect ~socket ())
            spec
        with
        | Ok (o, _) when o.P.o_status = P.S_ok -> o.P.o_output = offline_output spec
        | Ok (o, _) -> o.P.o_code <> None (* losses must be typed *)
        | Error _ -> false (* the daemon must always answer *))
  in
  QCheck.Test.check_exn prop

let suite =
  [
    Alcotest.test_case "kill storm: typed loss, daemon survives" `Quick test_kill_storm_typed_loss;
    Alcotest.test_case "client retries beat partial kills" `Quick test_retry_beats_partial_kills;
    Alcotest.test_case "wedged worker detected by heartbeat" `Quick test_stall_detected;
    Alcotest.test_case "per-job deadline enforced" `Quick test_deadline_exceeded;
    Alcotest.test_case "corrupt store quarantined across restart" `Quick
      test_corrupt_store_quarantined_across_restart;
    Alcotest.test_case "artifact store survives restart" `Quick test_store_survives_restart;
    Alcotest.test_case "property: never wrong bytes under chaos" `Quick
      test_prop_never_wrong_bytes;
  ]
