(** The transactional netlist layer: trial/commit/rollback semantics, the
    failed-bind isolation property (a rejected [try_bind] leaves every
    observable bit-identical), and the reference-evaluator oracle (the
    incremental arrival state never drifts from a from-scratch
    recomputation, whatever sequence of trials the scheduler ran). *)

open Hls_ir
open Hls_core
open Hls_techlib
module Netlist = Hls_netlist.Netlist

let lib = Library.artisan90

(** Every observable of the netlist, in canonical (sorted) form: placements,
    non-empty busy slots, per-instance structure with the mux projections,
    the committed arrivals of both views, and the chain-graph edge count.
    Derived caches (mux_cache / mux_delays) are observed through their
    projections, not their representation — a rolled-back trial may leave
    them rebuilt or invalidated, which must be indistinguishable. *)
let snapshot (net : Netlist.t) =
  let placements = Netlist.fold_placements net (fun k v acc -> (k, v) :: acc) [] in
  let busy = Netlist.dump_busy net in
  let insts =
    List.map
      (fun (i : Netlist.inst) ->
        let ports = List.length i.Netlist.rtype.Resource.in_widths in
        ( i.Netlist.inst_id,
          i.Netlist.rtype,
          List.sort compare i.Netlist.bound,
          List.init ports (fun p -> Netlist.mux_inputs net i ~port:p),
          List.init ports (fun p -> Netlist.in_mux_delay net i ~port:p) ))
      (Netlist.insts net)
    |> List.sort compare
  in
  ( placements,
    busy,
    insts,
    Netlist.committed_arrivals net Netlist.Accurate,
    Netlist.committed_arrivals net Netlist.Naive,
    Hls_timing.Cycle_detector.n_edges (Netlist.chain net) )

let scheduled_example1 () =
  let e = Hls_frontend.Elaborate.design (Hls_designs.Example1.design ()) in
  let region = Hls_frontend.Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Ok s -> s
  | Error e -> Alcotest.failf "example1 failed to schedule: %s" e.Scheduler.e_message

(* A rolled-back trial — including structural mutations and arrival
   recomputations — restores every observable of a scheduled netlist. *)
let test_rollback_restores () =
  let s = scheduled_example1 () in
  let net = s.Scheduler.s_binding.Hls_core.Binding.net in
  let before = snapshot net in
  let op_id, pl =
    Netlist.fold_placements net
      (fun k v acc -> match v.Netlist.pl_inst with Some _ -> (k, v) | None -> acc)
      (-1, { Netlist.pl_step = 0; pl_finish = 0; pl_inst = None })
  in
  Alcotest.(check bool) "found a bound op" true (op_id >= 0);
  Netlist.begin_trial net;
  Alcotest.(check bool) "trial open" true (Netlist.in_trial net);
  Netlist.place net op_id ~step:(pl.Netlist.pl_step + 1) ~finish:(pl.Netlist.pl_finish + 1)
    ~inst_opt:pl.Netlist.pl_inst;
  ignore (Netlist.recompute_arrival net op_id);
  (match pl.Netlist.pl_inst with
  | Some i -> Netlist.set_rtype net (Netlist.find_inst net i) { (Netlist.find_inst net i).Netlist.rtype with Resource.out_width = 64 }
  | None -> ());
  Netlist.rollback net;
  Alcotest.(check bool) "trial closed" true (not (Netlist.in_trial net));
  Alcotest.(check bool) "all observables restored" true (snapshot net = before)

(* An idempotent trial (recompute everything, change nothing) commits to
   exactly the same committed state, and the committed state matches the
   from-scratch reference evaluator. *)
let test_commit_idempotent_and_reference () =
  let s = scheduled_example1 () in
  let net = s.Scheduler.s_binding.Hls_core.Binding.net in
  let before = snapshot net in
  Netlist.begin_trial net;
  Netlist.iter_placements net (fun op _ -> ignore (Netlist.recompute_arrival net op));
  Netlist.commit net;
  Alcotest.(check bool) "commit of a no-op trial is a no-op" true (snapshot net = before);
  Alcotest.(check bool) "incremental state matches the reference evaluator" true
    (Netlist.reference_deviation net < 1e-6)

let test_nested_trial_rejected () =
  let s = scheduled_example1 () in
  let net = s.Scheduler.s_binding.Hls_core.Binding.net in
  Netlist.begin_trial net;
  Alcotest.check_raises "no nested trials" (Invalid_argument "Netlist.begin_trial: trial already active")
    (fun () -> Netlist.begin_trial net);
  Netlist.rollback net

let synthetic_region seed ~ops =
  let profile =
    {
      Hls_designs.Synthetic.default_profile with
      Hls_designs.Synthetic.p_ops = ops;
      p_seed = seed;
      p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
    }
  in
  let d = Hls_designs.Synthetic.design ~profile () in
  let e = Hls_frontend.Elaborate.design d in
  Hls_frontend.Elaborate.main_region e

(* Satellite property: a FAILED try_bind — whatever the failure (window,
   busy, slack, cycle) and wherever it aborts (pre-check or rolled-back
   trial) — leaves every netlist observable bit-identical.  One instance
   per resource class plus a tight clock maximizes contention, so slack
   and busy rejections actually occur. *)
let prop_failed_bind_is_invisible =
  QCheck.Test.make ~name:"failed try_bind leaves the netlist bit-identical" ~count:12
    QCheck.(int_range 1 10000)
    (fun seed ->
      let region = synthetic_region seed ~ops:(30 + (seed mod 40)) in
      let dfg = region.Region.dfg in
      let b = Binding.create ~lib ~clock_ps:1250.0 region in
      let class_inst = Hashtbl.create 8 in
      Dfg.iter_ops dfg (fun op ->
          match Resource.of_op dfg op with
          | Some rt when Opkind.is_resource_op op.Dfg.kind ->
              if not (Hashtbl.mem class_inst rt.Resource.rclass) then
                Hashtbl.replace class_inst rt.Resource.rclass
                  (Binding.add_inst b rt).Binding.inst_id
          | _ -> ());
      Binding.reset_pass b;
      let failures = ref 0 and violations = ref 0 in
      List.iter
        (fun op ->
          let inst_opt =
            match Resource.of_op dfg op with
            | Some rt when Opkind.is_resource_op op.Dfg.kind ->
                Hashtbl.find_opt class_inst rt.Resource.rclass
            | _ -> None
          in
          let rec go step =
            if step <= region.Region.n_steps - 1 then begin
              let before = snapshot b.Binding.net in
              match Binding.try_bind b op ~step ~inst_opt with
              | Ok () -> ()
              | Error _ ->
                  incr failures;
                  if snapshot b.Binding.net <> before then incr violations;
                  go (step + 1)
            end
          in
          go 0)
        (Dfg.ops dfg);
      if !violations > 0 then
        QCheck.Test.fail_reportf "%d of %d failed binds mutated the netlist" !violations !failures
      else true)

(* Oracle property: after a real scheduling run — an arbitrary sequence of
   trials, commits and rollbacks — the incremental arrival tables agree
   with a from-scratch reference recomputation; and extra no-op
   trial/rollback and trial/commit cycles keep it that way. *)
let prop_incremental_matches_reference =
  QCheck.Test.make ~name:"incremental arrivals match the reference evaluator" ~count:10
    QCheck.(int_range 1 10000)
    (fun seed ->
      let region = synthetic_region seed ~ops:(30 + (seed mod 60)) in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          let net = s.Scheduler.s_binding.Hls_core.Binding.net in
          let dev0 = Netlist.reference_deviation net in
          Netlist.begin_trial net;
          Netlist.iter_placements net (fun op _ -> ignore (Netlist.recompute_arrival net op));
          Netlist.rollback net;
          Netlist.begin_trial net;
          Netlist.iter_placements net (fun op _ -> ignore (Netlist.recompute_arrival net op));
          Netlist.commit net;
          let dev1 = Netlist.reference_deviation net in
          if dev0 > 0.05 || dev1 > 0.05 then
            QCheck.Test.fail_reportf "deviation %.6f / %.6f ps exceeds tolerance" dev0 dev1
          else true)

(* Scale oracle property: on ≥1k-op designs the scheduling run is
   rollback-heavy (thousands of failed trials roll back their partial
   propagations), and the bounded-incremental arrival state must still
   match the from-scratch reference — including after an extra storm of
   failed rebind trials against the finished schedule. *)
let prop_large_design_matches_reference =
  QCheck.Test.make ~name:"bounded propagation matches reference on 1k-op designs" ~count:2
    QCheck.(int_range 1 10000)
    (fun seed ->
      (* 520 requested ops elaborate to ~2x that; the margin keeps every
         seed above the 1000-op floor (seed 7397 lands at 995 from 500) *)
      let region = synthetic_region seed ~ops:520 in
      let n_ops = Dfg.fold_ops region.Region.dfg (fun _ n -> n + 1) 0 in
      if n_ops < 1000 then QCheck.Test.fail_reportf "generator produced only %d ops" n_ops;
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          let st = Scheduler.stats s in
          if st.Scheduler.st_rollbacks < 100 then
            QCheck.Test.fail_reportf "run not rollback-heavy (%d rollbacks)"
              st.Scheduler.st_rollbacks;
          let net = s.Scheduler.s_binding.Hls_core.Binding.net in
          let dev0 = Netlist.reference_deviation net in
          (* rebind storm: re-trialing placed ops fails (their slot is
             occupied) and every partial propagation rolls back *)
          let b = s.Scheduler.s_binding in
          let stormed = ref 0 in
          Netlist.iter_placements net (fun op_id pl ->
              if !stormed < 200 then
                match pl.Netlist.pl_inst with
                | Some i ->
                    incr stormed;
                    (match
                       Binding.try_bind b (Dfg.find region.Region.dfg op_id)
                         ~step:pl.Netlist.pl_step ~inst_opt:(Some i)
                     with
                    | Ok () -> QCheck.Test.fail_reportf "rebind of a placed op succeeded"
                    | Error _ -> ())
                | None -> ());
          let dev1 = Netlist.reference_deviation net in
          if dev0 > 0.05 || dev1 > 0.05 then
            QCheck.Test.fail_reportf "deviation %.6f / %.6f ps exceeds tolerance" dev0 dev1
          else true)

(* Bounded propagation: re-propagating from a seed whose arrival is
   already settled visits exactly the seed — strictly fewer cells than
   the seed's fanout cone — because propagation stops at unchanged
   arrivals instead of walking the cone. *)
let test_propagation_bounded_by_change () =
  let s = scheduled_example1 () in
  let net = s.Scheduler.s_binding.Hls_core.Binding.net in
  let dfg = Netlist.dfg net in
  let seed =
    Netlist.fold_placements net
      (fun op _ acc -> if Dfg.fanout_cone_size dfg op > 1 then max acc op else acc)
      (-1)
  in
  Alcotest.(check bool) "found a placed op with a fanout cone" true (seed >= 0);
  let cone = Dfg.fanout_cone_size dfg seed in
  let v0 = (Netlist.stats net).Netlist.s_visits in
  Netlist.begin_trial net;
  ignore (Netlist.propagate net ~decision:Netlist.Accurate [ seed ]);
  Netlist.rollback net;
  let visited = (Netlist.stats net).Netlist.s_visits - v0 in
  Alcotest.(check int) "unchanged arrival: only the seed is visited" 1 visited;
  Alcotest.(check bool)
    (Printf.sprintf "visited %d < fanout cone %d" visited cone)
    true (visited < cone)

(* Satellite: rebinding an op already bound to the instance is a no-op —
   the attach keeps the mux caches, and a storm of such rebinds issues no
   netlist timing queries and perturbs no observable. *)
let test_rebind_storm_is_free () =
  let s = scheduled_example1 () in
  let b = s.Scheduler.s_binding in
  let net = b.Hls_core.Binding.net in
  let before = snapshot net in
  let q0 = (Scheduler.stats s).Scheduler.st_queries in
  List.iter
    (fun (i : Netlist.inst) ->
      List.iter (fun op -> for _ = 1 to 50 do Netlist.attach net i op done) i.Netlist.bound)
    (Netlist.insts net);
  Netlist.iter_placements net (fun op_id pl ->
      match pl.Netlist.pl_inst with
      | Some i ->
          (* a full rebind attempt of a placed op fails on the busy check,
             before any trial opens *)
          (match
             Binding.try_bind b (Dfg.find (Netlist.dfg net) op_id) ~step:pl.Netlist.pl_step
               ~inst_opt:(Some i)
           with
          | Ok () -> Alcotest.fail "rebind of a placed op succeeded"
          | Error _ -> ())
      | None -> ());
  Alcotest.(check int) "no timing queries issued" q0 (Scheduler.stats s).Scheduler.st_queries;
  Alcotest.(check bool) "all observables unchanged" true (snapshot net = before)

(* Satellite: instance registration is linear-ish — 5k instances register
   well under a generous wall bound (the former [insts @ [inst]] pattern
   was quadratic), and the registration order is preserved. *)
let test_inst_registration_linear () =
  let region = synthetic_region 7 ~ops:100 in
  let net = Netlist.create ~lib ~clock_ps:1600.0 region in
  let rt =
    { Resource.rclass = Opkind.R_addsub; in_widths = [ 32; 32 ]; out_width = 32 }
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 5000 do
    ignore (Netlist.add_inst net rt)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "5000 instances registered" 5000 (Netlist.n_insts net);
  let ids = List.map (fun (i : Netlist.inst) -> i.Netlist.inst_id) (Netlist.insts net) in
  Alcotest.(check bool) "registration order (ascending ids)" true (ids = List.init 5000 Fun.id);
  Alcotest.(check bool)
    (Printf.sprintf "registration of 5k instances took %.3fs (< 1s)" dt)
    true (dt < 1.0)

let suite =
  [
    Alcotest.test_case "rollback restores all observables" `Quick test_rollback_restores;
    Alcotest.test_case "no-op trial commit is idempotent" `Quick test_commit_idempotent_and_reference;
    Alcotest.test_case "nested trials rejected" `Quick test_nested_trial_rejected;
    Alcotest.test_case "propagation bounded by change, not fanout cone" `Quick
      test_propagation_bounded_by_change;
    Alcotest.test_case "rebind storm issues no queries" `Quick test_rebind_storm_is_free;
    Alcotest.test_case "5k-instance registration stays linear" `Quick test_inst_registration_linear;
    QCheck_alcotest.to_alcotest prop_failed_bind_is_invisible;
    QCheck_alcotest.to_alcotest prop_incremental_matches_reference;
    QCheck_alcotest.to_alcotest prop_large_design_matches_reference;
  ]
