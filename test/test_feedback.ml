(** The feedback subsystem: hint-store algebra, the
    subgraph-extraction invariant (every mined hint points into the
    scheduled region), the iterate loop's no-regress guarantee through
    the flow, and jobs-invariance of feedback-threaded DSE sweeps. *)

module Feedback = Hls_feedback.Feedback
module Hints = Feedback.Hints
module Flow = Hls_flow.Flow
module Dse = Hls_dse.Dse
module Region = Hls_ir.Region
module Synthetic = Hls_designs.Synthetic

(* ---- store algebra ---- *)

let test_store_algebra () =
  let open Hints in
  let a = empty |> add (Boost 3) |> add ~kind:Slack_cone ~weight:2.0 (Speculate 7) in
  let b = empty |> add ~weight:5.0 (Boost 3) |> add (Dedicate 1) in
  Alcotest.(check bool) "empty is empty" true (is_empty empty);
  Alcotest.(check int) "sizes" 2 (size a);
  (* merge is commutative on everything observable *)
  Alcotest.(check string) "merge commutes (digest)" (digest (merge a b)) (digest (merge b a));
  Alcotest.(check string) "merge commutes (render)"
    (to_string (merge a b))
    (to_string (merge b a));
  (* re-adding bumps recurrence and keeps the larger weight *)
  let m = merge a b in
  let entry = List.assoc (Boost 3) (to_list m) in
  Alcotest.(check int) "recurrence summed" 2 entry.e_recur;
  Alcotest.(check (float 0.0)) "larger weight kept" 5.0 entry.e_weight;
  (* digest tracks the key set only *)
  Alcotest.(check string) "digest ignores weight churn" (digest m)
    (digest (add ~weight:9.0 (Boost 3) m));
  Alcotest.(check bool) "digest sees new keys" false (digest m = digest (add (Boost 99) m))

let test_store_roundtrip () =
  let open Hints in
  let s =
    empty |> add (Boost 3)
    |> add ~kind:Scc_window (Scc_stage (0, 2))
    |> add ~kind:Busy_clique (Forbid (4, 1))
    |> add (Latency_floor 6)
  in
  match of_string (to_string s) with
  | None -> Alcotest.fail "serialized store did not parse back"
  | Some s' ->
      Alcotest.(check string) "round-trips" (to_string s) (to_string s');
      Alcotest.(check string) "digest preserved" (digest s) (digest s')

(* ---- extraction: the mined subgraph lives inside the region ---- *)

let synth_options = { Flow.default_options with Flow.verify = false; ii = Some 2 }

(** Every op id any extracted hint references is a member of the
    scheduled region — the mined subgraph is a genuine subgraph. *)
let prop_extract_subset =
  QCheck.Test.make ~name:"extracted subgraph is a subset of the region's ops" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 60 180))
    (fun (seed, ops) ->
      let d =
        Synthetic.design
          ~profile:{ Synthetic.default_profile with Synthetic.p_ops = ops; p_seed = seed }
          ()
      in
      match Flow.run ~options:synth_options d with
      | Error _ -> QCheck.assume_fail ()
      | Ok f ->
          let hints = Feedback.extract f.Flow.f_sched in
          let stray =
            List.filter (fun op -> not (Region.mem f.Flow.f_region op)) (Hints.ops hints)
          in
          if stray = [] then true
          else
            QCheck.Test.fail_reportf "seed=%d ops=%d: %d hint op(s) outside the region" seed
              ops (List.length stray))

(* ---- the feedback loop never serves a worse result ---- *)

let quality f = (f.Flow.f_cycles_per_iter, f.Flow.f_sched.Hls_core.Scheduler.s_li)

(** With feedback on, the served (II, LI) is never lexicographically
    worse than the plain run's — the iterate loop's no-regress guard,
    observed end-to-end through the flow. *)
let prop_feedback_never_worse =
  QCheck.Test.make ~name:"feedback never worsens (II, LI)" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 60 160))
    (fun (seed, ops) ->
      let d =
        Synthetic.design
          ~profile:{ Synthetic.default_profile with Synthetic.p_ops = ops; p_seed = seed }
          ()
      in
      match Flow.run ~options:synth_options d with
      | Error _ -> QCheck.assume_fail ()
      | Ok base -> (
          let options = { synth_options with Flow.feedback = true; feedback_iters = 3 } in
          match Flow.run ~options d with
          | Error diag ->
              QCheck.Test.fail_reportf "feedback run failed: %s" (Hls_diag.Diag.to_string diag)
          | Ok fb ->
              if compare (quality fb) (quality base) <= 0 then true
              else
                QCheck.Test.fail_reportf "seed=%d ops=%d: feedback (%d,%d) worse than (%d,%d)"
                  seed ops (fst (quality fb)) (snd (quality fb)) (fst (quality base))
                  (snd (quality base))))

(* ---- feedback-threaded sweeps are jobs-invariant ---- *)

let fb_options =
  { Flow.default_options with Flow.verify = false; feedback = true; feedback_iters = 2 }

let sweep_points () =
  Dse.grid_points
    (Dse.grid ~iis:[ Dse.Flat 2; Dse.Flat 4 ] ~clocks:[ 1200.0; 1600.0 ] ())

let signature (r : Dse.result) =
  let pr = r.Dse.r_profile in
  Printf.sprintf "%s | %s | passes=%d hints=%d" (Dse.point_label r.Dse.r_point)
    (match r.Dse.r_flow with
    | Ok f -> Flow.summary f
    | Error d -> "error: " ^ Hls_diag.Diag.to_string d)
    pr.Dse.pr_passes pr.Dse.pr_hints

let test_sweep_jobs_invariant () =
  let d = Hls_designs.Fft.design () in
  let pts = sweep_points () in
  let e1 = Dse.create () in
  let sw1 = Dse.sweep ~jobs:1 e1 ~options:fb_options d pts in
  (* max_workers lifted so the pool genuinely runs multi-domain even on
     a single-core host *)
  let e4 = Dse.create () in
  let sw4 = Dse.sweep ~jobs:4 ~max_workers:4 e4 ~options:fb_options d pts in
  Dse.shutdown e1;
  Dse.shutdown e4;
  (* the seed point runs alone, so the pool sizes to the remaining batch *)
  Alcotest.(check bool) "parallel pool actually used" true (sw4.Dse.sw_jobs > 1);
  Alcotest.(check (list string))
    "jobs=4 point results byte-identical to jobs=1"
    (List.map signature sw1.Dse.sw_results)
    (List.map signature sw4.Dse.sw_results);
  Alcotest.(check bool) "hint store warmed later points" true (sw1.Dse.sw_hint_reuse > 0);
  Alcotest.(check int) "identical hint reuse" sw1.Dse.sw_hint_reuse sw4.Dse.sw_hint_reuse

let suite =
  [
    Alcotest.test_case "hint-store algebra" `Quick test_store_algebra;
    Alcotest.test_case "hint-store serialization round-trip" `Quick test_store_roundtrip;
    QCheck_alcotest.to_alcotest prop_extract_subset;
    QCheck_alcotest.to_alcotest prop_feedback_never_worse;
    Alcotest.test_case "feedback sweep jobs-invariant" `Quick test_sweep_jobs_invariant;
  ]
