(** The design-space exploration engine: determinism across worker-pool
    sizes, memoization (no re-scheduling of swept points), and the Pareto
    front's dominance over the swept set. *)

module Dse = Hls_dse.Dse
module Flow = Hls_flow.Flow

let base_options = { Flow.default_options with Flow.verify = false }

let example1_points () =
  Dse.grid_points
    (Dse.grid ~iis:[ Dse.Seq; Dse.Flat 2 ] ~latencies:[ (Some 3, Some 4) ]
       ~clocks:[ 1600.0; 2000.0 ] ())

let design () = Hls_designs.Example1.design ()

(** Everything observable about a result except wall-clock times and cache
    provenance — the fields required to be identical across pool sizes. *)
let signature (r : Dse.result) =
  let pr = r.Dse.r_profile in
  Printf.sprintf "%s | %s | passes=%d actions=%d queries=%d" (Dse.point_label r.Dse.r_point)
    (match r.Dse.r_flow with
    | Ok f -> Flow.summary f
    | Error d -> "error: " ^ Hls_diag.Diag.to_string d)
    pr.pr_passes pr.pr_actions pr.pr_queries

let test_determinism_across_jobs () =
  let pts = example1_points () in
  let sw1 = Dse.sweep ~jobs:1 (Dse.create ()) ~options:base_options (design ()) pts in
  (* max_workers lifted so the domain pool genuinely runs multi-domain
     even on a single-core host *)
  let engine4 = Dse.create () in
  let sw4 = Dse.sweep ~jobs:4 ~max_workers:4 engine4 ~options:base_options (design ()) pts in
  (* join the resident domains: later suites fork worker processes, and
     [Unix.fork] is illegal while sibling domains run *)
  Dse.shutdown engine4;
  Alcotest.(check int) "parallel pool actually used" 4 sw4.Dse.sw_jobs;
  Alcotest.(check (list string))
    "jobs=4 point results byte-identical to jobs=1"
    (List.map signature sw1.Dse.sw_results)
    (List.map signature sw4.Dse.sw_results)

let test_cache_hits () =
  let pts = example1_points () in
  let engine = Dse.create () in
  let sw1 = Dse.sweep ~jobs:1 engine ~options:base_options (design ()) pts in
  Alcotest.(check int) "first sweep runs every point" (List.length pts) sw1.Dse.sw_new_runs;
  let runs_after_first = Dse.runs_performed engine in
  let sw2 = Dse.sweep ~jobs:1 engine ~options:base_options (design ()) pts in
  Alcotest.(check int) "second sweep performs zero new runs" 0 sw2.Dse.sw_new_runs;
  Alcotest.(check int) "second sweep is all cache hits" (List.length pts) sw2.Dse.sw_cache_hits;
  Alcotest.(check int) "engine run counter unchanged" runs_after_first (Dse.runs_performed engine);
  Alcotest.(check bool) "every result marked cached" true
    (List.for_all (fun r -> r.Dse.r_profile.Dse.pr_cached) sw2.Dse.sw_results);
  Alcotest.(check (list string)) "cached results identical to fresh ones"
    (List.map signature sw1.Dse.sw_results)
    (List.map signature sw2.Dse.sw_results)

let test_overlapping_sweep () =
  let pts = example1_points () in
  let engine = Dse.create () in
  ignore (Dse.sweep engine ~options:base_options (design ()) pts);
  (* a sweep overlapping the first only schedules the genuinely new point *)
  let extra = Dse.point ~ii:3 ~min_latency:4 ~max_latency:4 ~clock_ps:1600.0 () in
  let sw = Dse.sweep engine ~options:base_options (design ()) (extra :: pts) in
  Alcotest.(check int) "only the new point runs" 1 sw.Dse.sw_new_runs;
  (* duplicate points inside one sweep are scheduled once *)
  let engine2 = Dse.create () in
  let sw2 = Dse.sweep engine2 ~options:base_options (design ()) (pts @ pts) in
  Alcotest.(check int) "duplicates deduplicated" (List.length pts) sw2.Dse.sw_new_runs;
  Alcotest.(check int) "all duplicates served" (2 * List.length pts)
    (List.length sw2.Dse.sw_results)

let test_grid_parse () =
  match Dse.parse_grid "ii=none,2;latency=3..4,8;clock=1600,2000" with
  | Error m -> Alcotest.fail m
  | Ok g ->
      Alcotest.(check int) "8 points" 8 (List.length (Dse.grid_points g));
      Alcotest.(check bool) "latency shorthand n means n..n" true
        (List.mem (Some 8, Some 8) g.Dse.g_latencies);
      (match Dse.parse_grid "ii=0" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ii=0 must be rejected");
      (match Dse.parse_grid "volt=1.2" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown dimension must be rejected");
      (* per-dimension II specs for loop nests *)
      (match Dse.parse_grid "ii=4x1,2" with
      | Error m -> Alcotest.fail m
      | Ok g ->
          Alcotest.(check (list string))
            "AxB parses to a per-dimension spec" [ "ii=4x1"; "ii=2" ]
            (List.map Dse.ii_label g.Dse.g_iis));
      (match Dse.parse_grid "ii=4x" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ii=4x must be rejected");
      (match Dse.parse_grid "ii=4x0" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ii=4x0 must be rejected")

(* a small pool of candidate points; QCheck picks subsets by bitmask.  The
   shared engine makes repeated selections cache hits, so 30 iterations
   stay cheap. *)
let prop_front_dominates_sweep =
  let pool =
    Dse.grid_points
      (Dse.grid ~iis:[ Dse.Seq; Dse.Flat 2; Dse.Flat 3 ] ~latencies:[ (Some 3, Some 4) ]
         ~clocks:[ 1600.0; 2000.0 ] ())
    |> Array.of_list
  in
  let engine = Dse.create () in
  let d = design () in
  QCheck.Test.make ~name:"reported Pareto front dominates every swept point" ~count:30
    QCheck.(int_range 1 ((1 lsl Array.length pool) - 1))
    (fun mask ->
      let pts =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list pool)
      in
      let sw = Dse.sweep ~jobs:2 ~max_workers:2 engine ~options:base_options d pts in
      (* join the pool between iterations: the memo cache lives in the
         engine (so repeats stay hits), but resident domains would make
         [Unix.fork] in the later server suites illegal *)
      Dse.shutdown engine;
      let swept = Dse.pareto_points sw.Dse.sw_results in
      let front = Hls_report.Pareto.front swept in
      List.for_all
        (fun p ->
          List.exists
            (fun f ->
              f.Hls_report.Pareto.p_x <= p.Hls_report.Pareto.p_x
              && f.Hls_report.Pareto.p_y <= p.Hls_report.Pareto.p_y)
            front)
        swept)

(* [--jobs 0] and negative counts are user errors, not something to clamp
   silently: the driver surfaces a typed Explore-phase diagnostic. *)
let test_validate_jobs () =
  let check_bad n =
    match Dse.validate_jobs n with
    | Ok _ -> Alcotest.failf "jobs=%d accepted" n
    | Error d ->
        Alcotest.(check string) "code" "bad_jobs" d.Hls_diag.Diag.d_code;
        Alcotest.(check bool) "phase" true (d.Hls_diag.Diag.d_phase = Hls_diag.Diag.Explore)
  in
  check_bad 0;
  check_bad (-3);
  List.iter
    (fun n ->
      match Dse.validate_jobs n with
      | Ok m -> Alcotest.(check int) "passes through" n m
      | Error _ -> Alcotest.failf "jobs=%d rejected" n)
    [ 1; 4 ]

(* Pool lifecycle: shutdown joins every domain, refuses late work, and is
   idempotent; wait drains without stopping. *)
let test_pool_lifecycle () =
  let pool = Hls_dse.Dse.Pool.create ~workers:3 () in
  Alcotest.(check int) "resident domains" 3 (Hls_dse.Dse.Pool.size pool);
  Alcotest.(check bool) "alive" true (Hls_dse.Dse.Pool.alive pool);
  let hits = Atomic.make 0 in
  for _ = 1 to 32 do
    let accepted = Hls_dse.Dse.Pool.submit pool (fun () -> Atomic.incr hits) in
    Alcotest.(check bool) "submit accepted while alive" true accepted
  done;
  Hls_dse.Dse.Pool.wait pool;
  Alcotest.(check int) "all tasks ran" 32 (Atomic.get hits);
  Alcotest.(check bool) "still alive after wait" true (Hls_dse.Dse.Pool.alive pool);
  Hls_dse.Dse.Pool.shutdown pool;
  Alcotest.(check bool) "dead after shutdown" false (Hls_dse.Dse.Pool.alive pool);
  Alcotest.(check int) "no resident domains" 0 (Hls_dse.Dse.Pool.size pool);
  Alcotest.(check bool) "late submit refused" false
    (Hls_dse.Dse.Pool.submit pool (fun () -> Atomic.incr hits));
  Hls_dse.Dse.Pool.shutdown pool;
  Alcotest.(check int) "late task never ran" 32 (Atomic.get hits)

(* Shutdown is idempotent and safe to race: concurrent callers (as a
   signal handler and a drain thread might) each return cleanly, exactly
   one performs the join, and the pool ends dead with no resident
   domains. *)
let test_pool_shutdown_idempotent () =
  let pool = Hls_dse.Dse.Pool.create ~workers:2 () in
  let ran = Atomic.make 0 in
  for _ = 1 to 8 do
    ignore (Hls_dse.Dse.Pool.submit pool (fun () -> Atomic.incr ran))
  done;
  let racers =
    List.init 4 (fun _ -> Thread.create (fun () -> Hls_dse.Dse.Pool.shutdown pool) ())
  in
  List.iter Thread.join racers;
  (* …and again, serially, after it is already dead *)
  Hls_dse.Dse.Pool.shutdown pool;
  Hls_dse.Dse.Pool.shutdown pool;
  Alcotest.(check bool) "dead" false (Hls_dse.Dse.Pool.alive pool);
  Alcotest.(check int) "no resident domains" 0 (Hls_dse.Dse.Pool.size pool);
  Alcotest.(check int) "backlog completed exactly once" 8 (Atomic.get ran);
  Alcotest.(check bool) "submit after shutdown refused" false
    (Hls_dse.Dse.Pool.submit pool (fun () -> Atomic.incr ran));
  Alcotest.(check int) "refused task never ran" 8 (Atomic.get ran)

(* Queued tasks still run during a drain: shutdown finishes the backlog
   rather than dropping it. *)
let test_pool_drains_backlog () =
  let pool = Hls_dse.Dse.Pool.create ~workers:1 () in
  let ran = Atomic.make 0 in
  let gate = Mutex.create () in
  Mutex.lock gate;
  ignore
    (Hls_dse.Dse.Pool.submit pool (fun () ->
         Mutex.lock gate;
         Mutex.unlock gate;
         Atomic.incr ran));
  for _ = 1 to 5 do
    ignore (Hls_dse.Dse.Pool.submit pool (fun () -> Atomic.incr ran))
  done;
  (* backlog of 6 with the first task blocked; release and drain *)
  Mutex.unlock gate;
  Hls_dse.Dse.Pool.shutdown pool;
  Alcotest.(check int) "backlog completed during shutdown" 6 (Atomic.get ran)

(* Engine shutdown tears the resident pool down and a later sweep
   transparently rebuilds it. *)
let test_engine_pool_rebuild () =
  let engine = Dse.create () in
  let design = Hls_designs.Example1.design () in
  let options = { Hls_flow.Flow.default_options with verify = false } in
  let grid =
    match Dse.parse_grid "ii=2,4;latency=none;clock=1600" with
    | Ok g -> g
    | Error m -> Alcotest.fail m
  in
  let s1 = Dse.sweep ~jobs:2 engine ~options design (Dse.grid_points grid) in
  Dse.shutdown engine;
  let s2 = Dse.sweep ~jobs:2 engine ~options design (Dse.grid_points grid) in
  Dse.shutdown engine;
  Alcotest.(check int) "same point count after rebuild"
    (List.length s1.Dse.sw_results) (List.length s2.Dse.sw_results)

let suite =
  [
    Alcotest.test_case "determinism across worker counts" `Quick test_determinism_across_jobs;
    Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
    Alcotest.test_case "pool shutdown idempotent under races" `Quick test_pool_shutdown_idempotent;
    Alcotest.test_case "pool drains its backlog" `Quick test_pool_drains_backlog;
    Alcotest.test_case "engine pool rebuild after shutdown" `Quick test_engine_pool_rebuild;
    Alcotest.test_case "--jobs validation" `Quick test_validate_jobs;
    Alcotest.test_case "memo cache: zero re-runs" `Quick test_cache_hits;
    Alcotest.test_case "overlapping and duplicated sweeps" `Quick test_overlapping_sweep;
    Alcotest.test_case "grid parsing" `Quick test_grid_parse;
    QCheck_alcotest.to_alcotest prop_front_dominates_sweep;
  ]
