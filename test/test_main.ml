(** Test entry point: aggregates every suite.  Run with [dune runtest]. *)

let () =
  Alcotest.run "hlspipe"
    [
      ("width", Test_width.suite);
      ("guard", Test_guard.suite);
      ("graph_algo", Test_graph_algo.suite);
      ("dfg", Test_dfg.suite);
      ("cfg", Test_cfg.suite);
      ("techlib", Test_techlib.suite);
      ("frontend", Test_frontend.suite);
      ("elaborate", Test_elaborate.suite);
      ("binding", Test_binding.suite);
      ("scheduler", Test_scheduler.suite);
      ("alloc", Test_alloc.suite);
      ("timing", Test_timing.suite);
      ("pipeline", Test_pipeline.suite);
      ("sim", Test_sim.suite);
      ("opt", Test_opt.suite);
      ("rtl", Test_rtl.suite);
      ("baseline", Test_baseline.suite);
      ("report", Test_report.suite);
      ("parser", Test_parser.suite);
      ("flow", Test_flow.suite);
      ("region", Test_region.suite);
      ("opkind", Test_opkind.suite);
      ("asap_alap", Test_asap_alap.suite);
      ("extensions", Test_extensions.suite);
      ("sched_props", Test_sched_props.suite);
      ("sched_perf", Test_sched_perf.suite);
      ("kernel_sim", Test_kernel_sim.suite);
      ("nest", Test_nest.suite);
      ("faults", Test_faults.suite);
      ("netlist", Test_netlist.suite);
      ("store", Test_store.suite);
      (* the server/chaos suites fork worker processes, and OCaml forbids
         [Unix.fork] once any domain has EVER been created in the process
         — so they must run before the dse suite, whose sweeps spawn
         domains (the ban is sticky: joining the domains doesn't lift it) *)
      ("server", Test_server.suite);
      ("chaos", Test_chaos.suite);
      ("dse", Test_dse.suite);
      (* spawns domains too: must stay at/after the dse position, never
         before the forking server/chaos suites *)
      ("feedback", Test_feedback.suite);
    ]
