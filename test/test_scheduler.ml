(** The scheduler on the paper's worked examples: Table 2 is reproduced
    exactly, the pipelined variants match Examples 2 and 3, and the
    relaxation engine behaves as narrated. *)

open Hls_ir
open Hls_core

let lib = Hls_techlib.Library.artisan90
let clock = 1600.0

(* follow the paper's narrative: start from the designer's latency lower
   bound, not the resource-implied floor *)
let narrative_opts = { Scheduler.default_options with seed_latency_floor = false }

let schedule_example1 ?ii ?(min_latency = 1) ?(max_latency = 3) () =
  let e = Hls_designs.Example1.elaborated ~min_latency ~max_latency ?ii () in
  let region = Hls_frontend.Elaborate.main_region e in
  match Scheduler.schedule ~opts:narrative_opts ~lib ~clock_ps:clock region with
  | Ok s -> (e, s)
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message

let kind_of (e : Hls_frontend.Elaborate.t) id =
  (Dfg.find e.Hls_frontend.Elaborate.cdfg.Cdfg.dfg id).Dfg.kind

let step_of_kind e s k =
  let matches =
    Hls_netlist.Netlist.fold_placements s.Scheduler.s_binding.Binding.net
      (fun id pl acc -> if kind_of e id = k then (id, pl.Binding.pl_step) :: acc else acc)
      []
  in
  List.sort compare (List.map snd matches)

let test_table2_sequential () =
  let e, s = schedule_example1 () in
  (* Table 2: three states, minimum resources *)
  Alcotest.(check int) "LI = 3" 3 s.Scheduler.s_li;
  (* one multiplier instance only *)
  let muls =
    List.filter
      (fun (i : Binding.inst) ->
        i.Binding.rtype.Hls_techlib.Resource.rclass = Opkind.R_mul && i.Binding.bound <> [])
      (Hls_netlist.Netlist.insts s.Scheduler.s_binding.Binding.net)
  in
  Alcotest.(check int) "single multiplier" 1 (List.length muls);
  Alcotest.(check int) "it executes all three multiplications" 3
    (List.length (List.hd muls).Binding.bound);
  (* placements per Table 2: muls in s1/s2/s3, add&neq in s1, gt&mux in s2 *)
  Alcotest.(check (list int)) "muls one per state" [ 0; 1; 2 ]
    (step_of_kind e s (Opkind.Bin Opkind.Mul));
  Alcotest.(check (list int)) "add in s1" [ 0 ] (step_of_kind e s (Opkind.Bin Opkind.Add));
  Alcotest.(check (list int)) "neq in s1" [ 0 ] (step_of_kind e s (Opkind.Bin Opkind.Neq));
  Alcotest.(check (list int)) "gt in s2" [ 1 ] (step_of_kind e s (Opkind.Bin Opkind.Gt));
  Alcotest.(check (list int)) "mux in s2" [ 1 ] (step_of_kind e s Opkind.Mux);
  (* the narrative: two add_state relaxations (latency 1 -> 3) *)
  Alcotest.(check int) "three passes" 3 s.Scheduler.s_passes;
  Alcotest.(check bool) "non-negative final slack" true
    (Binding.worst_slack s.Scheduler.s_binding >= 0.0)

let test_example2_ii2 () =
  let _, s = schedule_example1 ~ii:2 ~max_latency:4 () in
  Alcotest.(check int) "LI = 3" 3 s.Scheduler.s_li;
  let muls =
    List.filter
      (fun (i : Binding.inst) ->
        i.Binding.rtype.Hls_techlib.Resource.rclass = Opkind.R_mul && i.Binding.bound <> [])
      (Hls_netlist.Netlist.insts s.Scheduler.s_binding.Binding.net)
  in
  (* "two mul resources must be created" *)
  Alcotest.(check int) "two multipliers" 2 (List.length muls);
  (* the SCC stays in stage 0 and the schedule succeeds first pass,
     "illustrating the uniformity of the approach" *)
  Alcotest.(check int) "single pass" 1 s.Scheduler.s_passes;
  List.iter
    (fun (_, stage) -> Alcotest.(check int) "SCC in stage 0" 0 stage)
    s.Scheduler.s_scc_stages

let test_example3_ii1 () =
  let _, s = schedule_example1 ~ii:1 ~max_latency:4 () in
  Alcotest.(check int) "LI = 3" 3 s.Scheduler.s_li;
  let muls =
    List.filter
      (fun (i : Binding.inst) ->
        i.Binding.rtype.Hls_techlib.Resource.rclass = Opkind.R_mul && i.Binding.bound <> [])
      (Hls_netlist.Netlist.insts s.Scheduler.s_binding.Binding.net)
  in
  (* "no resource is shareable ... hence 3 multipliers" *)
  Alcotest.(check int) "three multipliers" 3 (List.length muls);
  List.iter
    (fun (i : Binding.inst) ->
      Alcotest.(check int) "one op each" 1 (List.length i.Binding.bound))
    muls;
  (* the novel action: the SCC was moved to the second stage *)
  Alcotest.(check bool) "a move_scc action was applied" true
    (List.exists
       (fun a -> String.length a >= 8 && String.sub a 0 8 = "move_scc")
       s.Scheduler.s_actions);
  List.iter
    (fun (_, stage) -> Alcotest.(check int) "SCC in stage 1 (state s2)" 1 stage)
    s.Scheduler.s_scc_stages

let test_overconstrained_fails_cleanly () =
  (* latency pinned to 1 state: the paper's first pass outcome, with no
     room to relax *)
  let e = Hls_designs.Example1.elaborated ~min_latency:1 ~max_latency:1 () in
  let region = Hls_frontend.Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:clock region with
  | Ok _ -> Alcotest.fail "1-state example1 at 1600 ps must be infeasible"
  | Error err ->
      Alcotest.(check bool) "error mentions constraint" true
        (err.Scheduler.e_message <> "");
      Alcotest.(check bool) "restraints recorded" true (err.Scheduler.e_restraints <> [])

let test_relaxed_clock_shares_multiplier () =
  (* a slow clock does not change the minimal-resource outcome: three
     multiplications still share one multiplier over three states, but the
     deep chains now fit each state comfortably *)
  let e = Hls_designs.Example1.elaborated ~min_latency:1 ~max_latency:3 () in
  let region = Hls_frontend.Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:6000.0 region with
  | Ok s ->
      Alcotest.(check int) "LI = 3 (one multiplier)" 3 s.Scheduler.s_li;
      Alcotest.(check bool) "ample slack" true (Binding.worst_slack s.Scheduler.s_binding > 1000.0)
  | Error err -> Alcotest.failf "must fit: %s" err.Scheduler.e_message

let test_anchor_respected () =
  let open Hls_frontend.Dsl in
  let d =
    design "anch" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 16 ] ~vars:[ var "x" 16 ]
      [
        "x" := int 0;
        wait;
        do_while ~min_latency:2 ~max_latency:4
          [ "x" := port "a" *: port "a"; wait; write "y" (v "x") ]
          (int 1);
      ]
  in
  let e = Hls_frontend.Elaborate.design ~timed:true d in
  let region = Hls_frontend.Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Ok s ->
      let dfg = e.Hls_frontend.Elaborate.cdfg.Cdfg.dfg in
      Hls_netlist.Netlist.iter_placements s.Scheduler.s_binding.Binding.net (fun id pl ->
          match (Dfg.find dfg id).Dfg.anchor with
          | Some a -> Alcotest.(check int) "anchored op at its step" a pl.Binding.pl_step
          | None -> ())
  | Error err -> Alcotest.failf "timed schedule failed: %s" err.Scheduler.e_message

let test_all_members_placed () =
  let e, s = schedule_example1 ~ii:2 ~max_latency:4 () in
  let region = s.Scheduler.s_region in
  ignore e;
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d placed" op.Dfg.id)
        true
        (Binding.placement s.Scheduler.s_binding op.Dfg.id <> None))
    (Region.member_ops region)

let test_busy_exclusivity () =
  (* two ops on the same instance in one step only with exclusive guards *)
  let e, s = schedule_example1 () in
  let dfg = e.Hls_frontend.Elaborate.cdfg.Cdfg.dfg in
  List.iter
    (fun (i : Binding.inst) ->
      let by_step = Hashtbl.create 4 in
      List.iter
        (fun o ->
          match Binding.placement s.Scheduler.s_binding o with
          | Some pl ->
              let prev = Option.value (Hashtbl.find_opt by_step pl.Binding.pl_step) ~default:[] in
              List.iter
                (fun o' ->
                  Alcotest.(check bool) "same-slot ops are exclusive" true
                    (Guard.mutually_exclusive (Dfg.find dfg o).Dfg.guard (Dfg.find dfg o').Dfg.guard))
                prev;
              Hashtbl.replace by_step pl.Binding.pl_step (o :: prev)
          | None -> ())
        i.Binding.bound)
    (Hls_netlist.Netlist.insts s.Scheduler.s_binding.Binding.net)

let test_table_rendering () =
  let _, s = schedule_example1 () in
  let table = Scheduler.to_table s in
  Alcotest.(check bool) "has header plus rows" true (List.length table > 3);
  Alcotest.(check int) "columns = states + 1" 4 (List.length (List.hd table))

let suite =
  [
    Alcotest.test_case "Table 2: sequential schedule" `Quick test_table2_sequential;
    Alcotest.test_case "Example 2: II=2" `Quick test_example2_ii2;
    Alcotest.test_case "Example 3: II=1 moves the SCC" `Quick test_example3_ii1;
    Alcotest.test_case "overconstrained fails cleanly" `Quick test_overconstrained_fails_cleanly;
    Alcotest.test_case "slow clock shares the multiplier" `Quick test_relaxed_clock_shares_multiplier;
    Alcotest.test_case "anchors respected" `Quick test_anchor_respected;
    Alcotest.test_case "all members placed" `Quick test_all_members_placed;
    Alcotest.test_case "busy slots honour exclusivity" `Quick test_busy_exclusivity;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
  ]
