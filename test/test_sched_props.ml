(** Schedule validity properties over random synthetic designs: every
    invariant the generated hardware depends on, checked on whatever the
    scheduler produces. *)

open Hls_ir
open Hls_core

let lib = Hls_techlib.Library.artisan90

(** All invariants of a successful schedule — delegated to the
    post-schedule validator the flow itself runs under [--paranoid]
    ({!Hls_check.Audit}), so the property tests and the production audit
    can never drift apart. *)
let check_schedule (region : Region.t) (s : Scheduler.t) =
  let f = Pipeline.fold s in
  match Hls_check.Audit.run region s f with
  | [] -> true
  | vs ->
      List.iter (fun m -> Printf.eprintf "audit: %s\n" m) (Hls_check.Audit.to_strings vs);
      false

let prop_random_designs pipelined =
  QCheck.Test.make
    ~name:
      (if pipelined then "pipelined schedules satisfy all invariants"
       else "sequential schedules satisfy all invariants")
    ~count:15
    QCheck.(int_range 1 10000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 30 + (seed mod 60);
          p_seed = seed;
          p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
          p_accumulators = 1 + (seed mod 2);
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let e = Hls_frontend.Elaborate.design d in
      let ii = if pipelined then Some (1 + (seed mod 3)) else None in
      let region = Hls_frontend.Elaborate.main_region ?ii e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail () (* infeasible II/clock combinations *)
      | Ok s -> check_schedule region s)

let prop_equivalence_random =
  QCheck.Test.make ~name:"random designs simulate equivalently" ~count:10
    QCheck.(int_range 1 10000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 30 + (seed mod 40);
          p_seed = seed;
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let e = Hls_frontend.Elaborate.design d in
      let region = Hls_frontend.Elaborate.main_region e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          let stim =
            Hls_sim.Stimulus.small_random ~seed ~n_iters:15 ~ports:d.Hls_frontend.Ast.d_ins
          in
          let golden = Hls_sim.Behav.run d stim in
          let sim = Hls_sim.Schedule_sim.run e s stim in
          (Hls_sim.Equiv.check ~out_ports:d.Hls_frontend.Ast.d_outs golden sim).Hls_sim.Equiv.equivalent)

(** The flow's robustness contract, exercised on random designs under
    randomly tight configurations: {!Hls_flow.Flow.run} returns [Ok] or a
    typed diagnostic, and never raises. *)
let prop_flow_never_raises =
  QCheck.Test.make ~name:"Flow.run never raises on random designs" ~count:12
    QCheck.(int_range 1 10000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 20 + (seed mod 50);
          p_seed = seed;
          p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let options =
        {
          Hls_flow.Flow.default_options with
          ii = (if seed mod 3 = 0 then Some (1 + (seed mod 2)) else None);
          clock_ps = (if seed mod 4 = 0 then 900.0 else 1600.0);
          verify = false;
          paranoid = seed mod 2 = 0;
        }
      in
      match Hls_flow.Flow.run ~options d with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "Flow.run raised: %s" (Printexc.to_string e))

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_random_designs false);
    QCheck_alcotest.to_alcotest (prop_random_designs true);
    QCheck_alcotest.to_alcotest prop_equivalence_random;
    QCheck_alcotest.to_alcotest prop_flow_never_raises;
  ]
