(** Frontend: desugaring (unrolling, while lowering, Fig. 4 wait
    balancing) and semantic checks. *)

open Hls_frontend
open Ast

let dsl_body stmts =
  Dsl.(design "t" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[ var "x" 8 ] stmts)

let test_for_unroll () =
  let d =
    dsl_body
      Dsl.[ for_ ~unroll:true "i" ~from:0 ~below:3 [ "x" := v "x" +: v "i" ]; write "y" (v "x") ]
  in
  let d' = Desugar.design d in
  Alcotest.(check bool) "no loops left" false (contains_loop d'.d_body);
  (* three unrolled copies assign x *)
  let assigns = List.length (List.filter (function Assign ("x", _) -> true | _ -> false) d'.d_body) in
  Alcotest.(check int) "three body copies" 3 assigns

let test_for_to_dowhile () =
  let d =
    dsl_body Dsl.[ for_ "i" ~from:0 ~below:10 [ "x" := v "x" +: v "i"; wait ]; write "y" (v "x") ]
  in
  let d' = Desugar.design d in
  let has_dowhile = List.exists (function Do_while _ -> true | _ -> false) d'.d_body in
  Alcotest.(check bool) "counted loop becomes do/while" true has_dowhile

let test_inner_for_auto_unrolls () =
  let d =
    dsl_body
      Dsl.
        [
          do_while ~name:"outer"
            [ for_ "i" ~from:0 ~below:4 [ "x" := v "x" +: v "i" ]; wait; write "y" (v "x") ]
            (int 1);
        ]
  in
  let d' = Desugar.design d in
  let no_nested = function
    | Do_while (b, _, _) -> not (contains_loop b)
    | _ -> true
  in
  Alcotest.(check bool) "inner loop unrolled away" true (List.for_all no_nested d'.d_body)

let test_while_const_becomes_dowhile () =
  let d = dsl_body Dsl.[ while_ (int 1) [ "x" := v "x" +: int 1; wait; write "y" (v "x") ] ] in
  let d' = Desugar.design d in
  Alcotest.(check bool) "while(1) lowered" true
    (List.exists (function Do_while _ -> true | _ -> false) d'.d_body)

let test_while_dynamic_rejected () =
  let d = dsl_body Dsl.[ while_ (v "x" <: int 5) [ "x" := v "x" +: int 1; wait ] ] in
  Alcotest.check_raises "data-dependent while is rejected"
    (Desugar.Error
       {
         Hls_frontend.Fault.fe_code = "while_dynamic";
         fe_loop = Some "loop";
         fe_message =
           "data-dependent 'while' loop 'loop' is not supported: use do/while (the loop body \
            must execute at least once)";
       })
    (fun () -> ignore (Desugar.design d))

let test_wait_balancing () =
  (* Fig. 4: branches with different wait counts become balanced,
     wait-free conditionals separated by shared waits *)
  let d =
    dsl_body
      Dsl.
        [
          if_ (v "x" >: int 0)
            [ "x" := v "x" +: int 1; wait; "x" := v "x" *: int 2 ]
            [ "x" := v "x" -: int 1 ];
          write "y" (v "x");
        ]
  in
  let d' = Desugar.design d in
  let waits = List.length (List.filter (( = ) Wait) d'.d_body) in
  Alcotest.(check int) "one shared wait" 1 waits;
  let ifs = List.filter (function If _ -> true | _ -> false) d'.d_body in
  Alcotest.(check int) "two balanced conditionals" 2 (List.length ifs);
  List.iter
    (function
      | If (_, t, f) ->
          Alcotest.(check int) "branches wait-free (t)" 0 (count_waits t);
          Alcotest.(check int) "branches wait-free (f)" 0 (count_waits f)
      | _ -> ())
    ifs;
  (* the condition is hoisted into a temporary so it is evaluated once *)
  Alcotest.(check bool) "condition hoisted" true
    (List.exists (function Assign (v, _) -> String.length v > 3 && String.sub v 0 3 = "_pc" | _ -> false)
       d'.d_body)

let test_check_undeclared_port () =
  let d = dsl_body Dsl.[ "x" := port "nope"; write "y" (v "x") ] in
  let d' = Desugar.design d in
  Alcotest.(check bool) "undeclared port flagged" true (Check.run d' <> [])

let test_check_read_before_write () =
  let d = dsl_body Dsl.[ write "y" (v "ghost") ] in
  Alcotest.(check bool) "use before def flagged" true (Check.run (Desugar.design d) <> [])

let test_check_two_loops () =
  let d =
    dsl_body
      Dsl.
        [
          do_while [ "x" := v "x" +: int 1; wait ] (int 1);
          do_while [ "x" := v "x" +: int 2; wait ] (int 1);
        ]
  in
  Alcotest.(check bool) "two top-level loops flagged" true (Check.run (Desugar.design d) <> [])

let test_check_bad_ii () =
  let d = dsl_body Dsl.[ do_while ~ii:0 [ "x" := v "x" +: int 1; wait ] (int 1) ] in
  Alcotest.(check bool) "II=0 flagged" true (Check.run (Desugar.design d) <> [])

let test_check_clean_design () =
  Alcotest.(check (list string)) "example1 is clean" []
    (Check.run (Desugar.design (Hls_designs.Example1.design ())))

let suite =
  [
    Alcotest.test_case "for unroll" `Quick test_for_unroll;
    Alcotest.test_case "for to do/while" `Quick test_for_to_dowhile;
    Alcotest.test_case "inner for auto-unrolls" `Quick test_inner_for_auto_unrolls;
    Alcotest.test_case "while(1) lowering" `Quick test_while_const_becomes_dowhile;
    Alcotest.test_case "dynamic while rejected" `Quick test_while_dynamic_rejected;
    Alcotest.test_case "Fig. 4 wait balancing" `Quick test_wait_balancing;
    Alcotest.test_case "check: undeclared port" `Quick test_check_undeclared_port;
    Alcotest.test_case "check: read before write" `Quick test_check_read_before_write;
    Alcotest.test_case "check: two loops" `Quick test_check_two_loops;
    Alcotest.test_case "check: bad II" `Quick test_check_bad_ii;
    Alcotest.test_case "check: example1 clean" `Quick test_check_clean_design;
  ]
