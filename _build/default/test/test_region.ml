(** Regions: equivalence classes, stages, latency bounds, SCC queries. *)

open Hls_ir

let mk ?pipeline ?(min_steps = 1) ?(max_steps = 8) () =
  let dfg = Dfg.create () in
  let a = Dfg.add_op dfg (Opkind.Read "a") ~width:8 in
  let b = Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:9 in
  Dfg.connect dfg ~src:a.Dfg.id ~dst:b.Dfg.id ~port:0;
  Dfg.connect dfg ~src:a.Dfg.id ~dst:b.Dfg.id ~port:1;
  Region.create ?pipeline ~min_steps ~max_steps ~name:"r" dfg

let test_pipelined_initial_li () =
  let r = mk ~pipeline:{ Region.ii = 3 } () in
  (* exploration starts at LI = II + 1 *)
  Alcotest.(check int) "LI = II + 1" 4 r.Region.n_steps;
  let r2 = mk ~pipeline:{ Region.ii = 3 } ~min_steps:6 () in
  Alcotest.(check int) "designer minimum wins when larger" 6 r2.Region.n_steps

let test_equivalence () =
  let r = mk ~pipeline:{ Region.ii = 2 } () in
  Region.reset_steps r 6;
  Alcotest.(check bool) "0 ~ 2" true (Region.steps_equivalent r 0 2);
  Alcotest.(check bool) "0 ~ 4" true (Region.steps_equivalent r 0 4);
  Alcotest.(check bool) "0 !~ 1" false (Region.steps_equivalent r 0 1);
  Alcotest.(check (list int)) "class of 1" [ 1; 3; 5 ] (Region.equivalent_steps r 1);
  let seq = mk () in
  Region.reset_steps seq 4;
  Alcotest.(check (list int)) "sequential classes are singletons" [ 2 ] (Region.equivalent_steps seq 2)

let test_stages () =
  let r = mk ~pipeline:{ Region.ii = 2 } () in
  Region.reset_steps r 6;
  Alcotest.(check int) "3 stages" 3 (Region.n_stages r);
  Alcotest.(check int) "step 5 in stage 2" 2 (Region.stage_of_step r 5);
  Region.reset_steps r 5;
  Alcotest.(check int) "ceiling for ragged LI" 3 (Region.n_stages r)

let test_add_step_bounds () =
  let r = mk ~max_steps:3 () in
  Region.reset_steps r 3;
  Alcotest.(check bool) "bound refuses growth" false (Region.add_step r);
  Region.reset_steps r 2;
  Alcotest.(check bool) "grows within bound" true (Region.add_step r);
  Alcotest.(check int) "now 3" 3 r.Region.n_steps

let test_bad_args () =
  Alcotest.check_raises "min_steps 0 rejected" (Invalid_argument "Region.create: min_steps < 1")
    (fun () -> ignore (mk ~min_steps:0 ()));
  Alcotest.check_raises "ii 0 rejected" (Invalid_argument "Region.create: ii < 1") (fun () ->
      ignore (mk ~pipeline:{ Region.ii = 0 } ()))

let test_membership () =
  let dfg = Dfg.create () in
  let a = Dfg.add_op dfg (Opkind.Const 1) ~width:2 in
  let b = Dfg.add_op dfg (Opkind.Const 2) ~width:2 in
  let r = Region.create ~members:[ a.Dfg.id ] ~name:"m" dfg in
  Alcotest.(check bool) "a in" true (Region.mem r a.Dfg.id);
  Alcotest.(check bool) "b out" false (Region.mem r b.Dfg.id);
  Alcotest.(check int) "one member" 1 (Region.n_members r)

let suite =
  [
    Alcotest.test_case "pipelined initial LI" `Quick test_pipelined_initial_li;
    Alcotest.test_case "step equivalence" `Quick test_equivalence;
    Alcotest.test_case "stages" `Quick test_stages;
    Alcotest.test_case "add_step bounds" `Quick test_add_step_bounds;
    Alcotest.test_case "bad arguments" `Quick test_bad_args;
    Alcotest.test_case "membership" `Quick test_membership;
  ]
