(** Reporting utilities: tables, plots, CSV, Pareto fronts. *)

let test_table_render () =
  let s = Hls_report.Table.render ~title:"t" [ [ "a"; "b" ]; [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 't');
  (* all data rows present *)
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true contains)
    [ "333"; "22" ]

let test_table_ragged_rows () =
  (* missing cells render as blanks, not exceptions *)
  let s = Hls_report.Table.render [ [ "a"; "b"; "c" ]; [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_plot_render () =
  let s =
    Hls_report.Plot.render ~title:"p" ~x_label:"x" ~y_label:"y"
      [ Hls_report.Plot.series "s" [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] ]
  in
  Alcotest.(check bool) "has legend" true
    (let needle = "* = s" in
     let nl = String.length needle and sl = String.length s in
     let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let test_plot_empty () =
  let s = Hls_report.Plot.render ~title:"e" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data message" true (String.length s > 0)

let test_csv () =
  let s = Hls_report.Csv.render [ [ "a"; "b,c" ]; [ "d\"e"; "f" ] ] in
  Alcotest.(check string) "escaping" "a,\"b,c\"\n\"d\"\"e\",f\n" s

let test_pareto_front () =
  let open Hls_report.Pareto in
  let pts =
    [ point ~x:1.0 ~y:10.0 "a"; point ~x:2.0 ~y:5.0 "b"; point ~x:3.0 ~y:6.0 "c";
      point ~x:4.0 ~y:1.0 "d" ]
  in
  let f = front_tags pts in
  Alcotest.(check (list string)) "dominated c removed" [ "a"; "b"; "d" ] f

let prop_front_not_dominated =
  QCheck.Test.make ~name:"no front point is dominated" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun raw ->
      let pts = List.mapi (fun i (x, y) -> Hls_report.Pareto.point ~x ~y i) raw in
      let f = Hls_report.Pareto.front pts in
      List.for_all
        (fun p -> not (List.exists (fun q -> Hls_report.Pareto.dominates q p) pts))
        f)

let prop_front_covers =
  QCheck.Test.make ~name:"every point is dominated by some front point or on it" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun raw ->
      let pts = List.mapi (fun i (x, y) -> Hls_report.Pareto.point ~x ~y i) raw in
      let f = Hls_report.Pareto.front pts in
      List.for_all
        (fun p ->
          List.exists
            (fun q ->
              q.Hls_report.Pareto.p_tag = p.Hls_report.Pareto.p_tag
              || Hls_report.Pareto.dominates q p)
            f)
        pts)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "plot render" `Quick test_plot_render;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    QCheck_alcotest.to_alcotest prop_front_not_dominated;
    QCheck_alcotest.to_alcotest prop_front_covers;
  ]
