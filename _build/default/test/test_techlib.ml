(** Technology library: Table 1 delays are reproduced exactly; scaling,
    sizing curve and mux models behave. *)

open Hls_techlib

let lib = Library.artisan90

let rt32 rclass = { Resource.rclass; in_widths = [ 32; 32 ]; out_width = 32 }

let test_table1_exact () =
  (* the paper's Table 1, artisan_90nm_typical, 32-bit operands *)
  Alcotest.(check (float 0.01)) "mul 930" 930.0 (Library.delay lib (rt32 Hls_ir.Opkind.R_mul));
  Alcotest.(check (float 0.01)) "add 350" 350.0 (Library.delay lib (rt32 Hls_ir.Opkind.R_addsub));
  Alcotest.(check (float 0.01)) "gt 220" 220.0 (Library.delay lib (rt32 Hls_ir.Opkind.R_cmp_rel));
  Alcotest.(check (float 0.01)) "neq 60" 60.0 (Library.delay lib (rt32 Hls_ir.Opkind.R_cmp_eq));
  Alcotest.(check (float 0.01)) "ff 40" 40.0 lib.Library.ff_clk_q;
  Alcotest.(check (float 0.01)) "ff_en 70" 70.0 lib.Library.ff_clk_q_en;
  Alcotest.(check (float 0.01)) "mux2 110" 110.0 (Library.mux_delay lib ~inputs:2);
  Alcotest.(check (float 0.01)) "mux3 115" 115.0 (Library.mux_delay lib ~inputs:3)

let test_fig8_arithmetic () =
  (* Fig. 8(a): FF launch + mux + mul + mux + setup = 1230 ps *)
  let path =
    lib.Library.ff_clk_q
    +. Library.mux_delay lib ~inputs:2
    +. Library.delay lib (rt32 Hls_ir.Opkind.R_mul)
    +. Library.mux_delay lib ~inputs:2
    +. lib.Library.ff_setup
  in
  Alcotest.(check (float 0.01)) "1230 ps" 1230.0 path;
  (* Fig. 8(b): FF + mul-input mux + mul + chained add (no input mux) +
     register mux + setup = 1580 ps *)
  Alcotest.(check (float 0.01)) "1580 ps" 1580.0
    (path +. Library.delay lib (rt32 Hls_ir.Opkind.R_addsub));
  (* Fig. 8(c): adding gt overflows a 1600 ps clock by 200 ps *)
  let gt_path =
    lib.Library.ff_clk_q
    +. Library.mux_delay lib ~inputs:2
    +. Library.delay lib (rt32 Hls_ir.Opkind.R_mul)
    +. Library.delay lib (rt32 Hls_ir.Opkind.R_addsub)
    +. Library.delay lib (rt32 Hls_ir.Opkind.R_cmp_rel)
    +. Library.mux_delay lib ~inputs:2
    +. lib.Library.ff_setup
  in
  Alcotest.(check (float 0.01)) "1800 ps" 1800.0 gt_path

let test_delay_scales_with_width () =
  let d8 = Library.delay lib { (rt32 Hls_ir.Opkind.R_addsub) with Resource.in_widths = [ 8; 8 ] } in
  let d32 = Library.delay lib (rt32 Hls_ir.Opkind.R_addsub) in
  let d62 = Library.delay lib { (rt32 Hls_ir.Opkind.R_addsub) with Resource.in_widths = [ 62; 62 ] } in
  Alcotest.(check bool) "8 < 32" true (d8 < d32);
  Alcotest.(check bool) "32 < 62" true (d32 < d62)

let test_mux_delay_monotone () =
  let rec go k =
    if k > 16 then ()
    else begin
      Alcotest.(check bool)
        (Printf.sprintf "mux%d <= mux%d" k (k + 1))
        true
        (Library.mux_delay lib ~inputs:k <= Library.mux_delay lib ~inputs:(k + 1));
      go (k + 1)
    end
  in
  go 1;
  Alcotest.(check (float 0.01)) "single input needs no mux" 0.0 (Library.mux_delay lib ~inputs:1)

let test_sizing_curve () =
  let rt = rt32 Hls_ir.Opkind.R_mul in
  let nominal = Library.area lib rt in
  (match Library.area_for_delay lib rt ~required:1000.0 with
  | Some a -> Alcotest.(check (float 0.01)) "relaxed timing keeps nominal area" nominal a
  | None -> Alcotest.fail "relaxed must be feasible");
  (match Library.area_for_delay lib rt ~required:700.0 with
  | Some a -> Alcotest.(check bool) "tight timing costs area" true (a > nominal)
  | None -> Alcotest.fail "700 ps is within the curve");
  Alcotest.(check bool) "impossible target is rejected" true
    (Library.area_for_delay lib rt ~required:100.0 = None)

let test_sizing_monotone () =
  let rt = rt32 Hls_ir.Opkind.R_mul in
  let a1 = Option.get (Library.area_for_delay lib rt ~required:800.0) in
  let a2 = Option.get (Library.area_for_delay lib rt ~required:700.0) in
  let a3 = Option.get (Library.area_for_delay lib rt ~required:600.0) in
  Alcotest.(check bool) "tighter is bigger" true (a1 < a2 && a2 < a3)

let test_mul_area_quadratic () =
  let a16 = Library.area lib { (rt32 Hls_ir.Opkind.R_mul) with Resource.in_widths = [ 16; 16 ] } in
  let a32 = Library.area lib (rt32 Hls_ir.Opkind.R_mul) in
  Alcotest.(check bool) "quarter area at half width" true (abs_float ((a32 /. a16) -. 4.0) < 0.2)

let test_blackbox () =
  let lib' = Library.with_blackbox lib ~name:"sqrt" ~latency:4 ~stage_delay:800.0 ~area:5000.0 ~energy:9.0 in
  Alcotest.(check int) "latency" 4
    (Library.op_latency lib' (Hls_ir.Opkind.Call { Hls_ir.Opkind.callee = "sqrt"; call_latency = 1 }));
  Alcotest.(check (float 0.01)) "stage delay" 800.0
    (Library.delay lib' { Resource.rclass = Hls_ir.Opkind.R_blackbox "sqrt"; in_widths = [ 32 ]; out_width = 32 })

let test_resource_merge () =
  (* the paper's example: A1[7:0]+B1[4:0] and A2[5:0]+B2[6:0] share an 8x6 adder *)
  let r1 = { Resource.rclass = Hls_ir.Opkind.R_addsub; in_widths = [ 8; 5 ]; out_width = 9 } in
  let r2 = { Resource.rclass = Hls_ir.Opkind.R_addsub; in_widths = [ 6; 7 ]; out_width = 8 } in
  Alcotest.(check bool) "mergeable" true (Resource.can_merge r1 r2);
  let m = Resource.merge r1 r2 in
  Alcotest.(check (list int)) "8x7 adder" [ 8; 7 ] m.Resource.in_widths;
  (* very different widths must not merge *)
  let r3 = { Resource.rclass = Hls_ir.Opkind.R_addsub; in_widths = [ 32; 32 ]; out_width = 33 } in
  Alcotest.(check bool) "8-bit and 32-bit do not merge" false (Resource.can_merge r1 r3);
  (* a narrow op still fits an already-wide instance *)
  Alcotest.(check bool) "narrow op fits wide instance" true (Resource.fits ~need:r1 ~have:r3)

let prop_sizing_never_below_nominal =
  QCheck.Test.make ~name:"sizing never returns less than nominal area" ~count:200
    QCheck.(pair (int_range 4 62) (int_range 100 3000))
    (fun (w, req) ->
      let rt = { Resource.rclass = Hls_ir.Opkind.R_mul; in_widths = [ w; w ]; out_width = w } in
      match Library.area_for_delay lib rt ~required:(float_of_int req) with
      | Some a -> a >= Library.area lib rt -. 0.001
      | None -> true)

let suite =
  [
    Alcotest.test_case "Table 1 delays exact" `Quick test_table1_exact;
    Alcotest.test_case "Fig. 8 arithmetic" `Quick test_fig8_arithmetic;
    Alcotest.test_case "delay scales with width" `Quick test_delay_scales_with_width;
    Alcotest.test_case "mux delay monotone" `Quick test_mux_delay_monotone;
    Alcotest.test_case "sizing curve" `Quick test_sizing_curve;
    Alcotest.test_case "sizing monotone" `Quick test_sizing_monotone;
    Alcotest.test_case "mul area quadratic" `Quick test_mul_area_quadratic;
    Alcotest.test_case "blackbox registration" `Quick test_blackbox;
    Alcotest.test_case "resource merge rule" `Quick test_resource_merge;
    QCheck_alcotest.to_alcotest prop_sizing_never_below_nominal;
  ]
