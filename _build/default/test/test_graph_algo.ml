(** Graph algorithms: topological sort, Tarjan SCC, reachability, longest
    path — unit cases plus properties on random digraphs. *)

open Hls_ir

let adj edges n =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let r = match Hashtbl.find_opt tbl a with Some r -> r | None -> let r = ref [] in Hashtbl.replace tbl a r; r in
      r := b :: !r)
    edges;
  ( List.init n Fun.id,
    fun v -> match Hashtbl.find_opt tbl v with Some r -> !r | None -> [] )

let test_topo_dag () =
  let nodes, succs = adj [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  match Graph_algo.topo_sort ~nodes ~succs with
  | None -> Alcotest.fail "DAG must sort"
  | Some order ->
      let pos = List.mapi (fun i v -> (v, i)) order in
      let p v = List.assoc v pos in
      Alcotest.(check bool) "0 before 1" true (p 0 < p 1);
      Alcotest.(check bool) "1 before 3" true (p 1 < p 3);
      Alcotest.(check bool) "2 before 3" true (p 2 < p 3)

let test_topo_cycle () =
  let nodes, succs = adj [ (0, 1); (1, 2); (2, 0) ] 3 in
  Alcotest.(check bool) "cycle has no topo order" true (Graph_algo.topo_sort ~nodes ~succs = None)

let test_scc () =
  let nodes, succs = adj [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] 5 in
  let comps = Graph_algo.scc ~nodes ~succs in
  let sets = List.map (List.sort compare) comps |> List.sort compare in
  Alcotest.(check bool) "finds {0,1,2}" true (List.mem [ 0; 1; 2 ] sets);
  Alcotest.(check bool) "finds {3,4}" true (List.mem [ 3; 4 ] sets)

let test_scc_singletons () =
  let nodes, succs = adj [ (0, 1); (1, 2) ] 3 in
  let comps = Graph_algo.scc ~nodes ~succs in
  Alcotest.(check int) "three singleton components" 3 (List.length comps)

let test_reachable () =
  let _, succs = adj [ (0, 1); (1, 2); (3, 4) ] 5 in
  let r = Graph_algo.reachable ~from:0 ~succs in
  Alcotest.(check bool) "reaches 2" true (Hashtbl.mem r 2);
  Alcotest.(check bool) "does not reach 4" false (Hashtbl.mem r 4)

let test_has_path () =
  let _, succs = adj [ (0, 1); (1, 2) ] 3 in
  Alcotest.(check bool) "0 -> 2" true (Graph_algo.has_path ~from:0 ~target:2 ~succs);
  Alcotest.(check bool) "2 -/-> 0" false (Graph_algo.has_path ~from:2 ~target:0 ~succs);
  Alcotest.(check bool) "self" true (Graph_algo.has_path ~from:1 ~target:1 ~succs)

let test_longest_path () =
  let nodes, succs = adj [ (0, 1); (1, 2); (0, 2) ] 3 in
  let dist = Graph_algo.longest_path ~nodes ~succs ~weight:(fun _ -> 1.0) in
  Alcotest.(check (float 0.001)) "node 2 depth 3" 3.0 (Hashtbl.find dist 2)

(* random digraph generator: edge list over n nodes *)
let digraph_gen =
  QCheck.Gen.(
    int_range 2 14 >>= fun n ->
    list_size (int_range 0 (2 * n)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun edges -> return (n, edges))

let digraph_arb =
  QCheck.make digraph_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the vertex set" ~count:300 digraph_arb (fun (n, edges) ->
      let nodes, succs = adj edges n in
      let comps = Graph_algo.scc ~nodes ~succs in
      let all = List.concat comps |> List.sort compare in
      all = List.sort compare nodes)

let prop_scc_mutual =
  QCheck.Test.make ~name:"members of an SCC reach each other" ~count:200 digraph_arb
    (fun (n, edges) ->
      let nodes, succs = adj edges n in
      let comps = Graph_algo.scc ~nodes ~succs in
      ignore nodes;
      List.for_all
        (fun comp ->
          List.for_all
            (fun a -> List.for_all (fun b -> Graph_algo.has_path ~from:a ~target:b ~succs) comp)
            comp)
        comps)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects every edge" ~count:300 digraph_arb
    (fun (n, edges) ->
      let nodes, succs = adj edges n in
      match Graph_algo.topo_sort ~nodes ~succs with
      | None -> true (* cyclic *)
      | Some order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace pos v i) order;
          List.for_all
            (fun (a, b) -> a = b || Hashtbl.find pos a < Hashtbl.find pos b)
            (List.filter (fun (a, b) -> a <> b) edges))

let prop_topo_none_iff_cycle =
  QCheck.Test.make ~name:"topo_sort fails exactly on cyclic graphs" ~count:200 digraph_arb
    (fun (n, edges) ->
      let nodes, succs = adj edges n in
      let has_cycle =
        List.exists
          (fun v -> List.exists (fun s -> Graph_algo.has_path ~from:s ~target:v ~succs) (succs v))
          nodes
      in
      (Graph_algo.topo_sort ~nodes ~succs = None) = has_cycle)

let suite =
  [
    Alcotest.test_case "topo DAG" `Quick test_topo_dag;
    Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "scc singletons" `Quick test_scc_singletons;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "has_path" `Quick test_has_path;
    Alcotest.test_case "longest path" `Quick test_longest_path;
    QCheck_alcotest.to_alcotest prop_scc_partition;
    QCheck_alcotest.to_alcotest prop_scc_mutual;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
    QCheck_alcotest.to_alcotest prop_topo_none_iff_cycle;
  ]
