(** Optimizer passes: folding, simplification, strength reduction, CSE,
    DCE — and semantic preservation of the whole pipeline. *)

open Hls_ir
open Hls_frontend

let elaborate stmts ~vars =
  let open Dsl in
  let d =
    design "opt" ~ins:[ in_port "a" 8; in_port "b" 8 ] ~outs:[ out_port "y" 24 ] ~vars
      ([ "x" := int 0; wait ]
      @ [ do_while ~name:"l" (stmts @ [ wait; write "y" (v "x") ]) (int 1) ])
  in
  (d, Elaborate.design d)

let count dfg pred = List.length (List.filter pred (Dfg.ops dfg))

let test_constant_fold () =
  let open Dsl in
  let _, e = elaborate ~vars:[ Dsl.var "x" 24 ] [ "x" := (int 3 +: int 4) *: port "a" ] in
  let e', stats = Hls_opt.Passes.run e in
  Alcotest.(check bool) "something folded" true (stats.Hls_opt.Passes.folded > 0);
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  (* no add with two constant inputs survives *)
  Alcotest.(check int) "constant add gone" 0
    (count dfg (fun o ->
         o.Dfg.kind = Opkind.Bin Opkind.Add
         && List.for_all
              (fun e ->
                match (Dfg.find dfg e.Dfg.src).Dfg.kind with Opkind.Const _ -> true | _ -> false)
              (Dfg.in_edges dfg o.Dfg.id)))

let test_mul_by_one () =
  let open Dsl in
  let _, e = elaborate ~vars:[ Dsl.var "x" 24 ] [ "x" := port "a" *: int 1 ] in
  let e', stats = Hls_opt.Passes.run e in
  ignore stats;
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  Alcotest.(check int) "multiplication eliminated" 0
    (count dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul))

let test_strength_reduction () =
  let open Dsl in
  let _, e = elaborate ~vars:[ Dsl.var "x" 24 ] [ "x" := port "a" *: int 8 ] in
  let e', _ = Hls_opt.Passes.run e in
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  Alcotest.(check int) "mul by 8 becomes a shift" 0
    (count dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul));
  Alcotest.(check bool) "shift present" true
    (count dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Shl) > 0)

let test_cse () =
  let open Dsl in
  let _, e =
    elaborate ~vars:[ Dsl.var "x" 24; Dsl.var "t1" 16; Dsl.var "t2" 16 ]
      [ "t1" := port "a" *: port "b"; "t2" := port "a" *: port "b"; "x" := v "t1" +: v "t2" ]
  in
  let e', stats = Hls_opt.Passes.run e in
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  Alcotest.(check bool) "merged something" true (stats.Hls_opt.Passes.merged > 0);
  Alcotest.(check int) "one multiplication left" 1
    (count dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul))

let test_dce () =
  let open Dsl in
  let _, e =
    elaborate ~vars:[ Dsl.var "x" 24; Dsl.var "dead" 16 ]
      [ "dead" := port "a" *: port "b"; "x" := port "a" ]
  in
  let e', stats = Hls_opt.Passes.run e in
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  Alcotest.(check bool) "deleted something" true (stats.Hls_opt.Passes.deleted > 0);
  Alcotest.(check int) "dead mul gone" 0 (count dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul))

let test_membership_maintained () =
  let _, e = elaborate ~vars:[ Dsl.var "x" 24 ] Dsl.[ "x" := (int 2 +: int 5) *: port "a" ] in
  let e', _ = Hls_opt.Passes.run e in
  (* every member id must exist in the DFG *)
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  let check_ids ids = List.iter (fun id -> Alcotest.(check bool) "member alive" true (Dfg.mem dfg id)) ids in
  check_ids e'.Elaborate.pre_members;
  (match e'.Elaborate.loop with Some li -> check_ids li.Elaborate.li_members | None -> ());
  check_ids e'.Elaborate.post_members;
  Alcotest.(check (list string)) "validates" [] (Cdfg.validate e'.Elaborate.cdfg)

let test_semantics_preserved () =
  (* optimized design must simulate identically through the full flow *)
  let d = Hls_designs.Example1.design () in
  let e = Elaborate.design d in
  let e', _ = Hls_opt.Passes.run e in
  let region = Elaborate.main_region e' in
  match Hls_core.Scheduler.schedule ~lib:Hls_techlib.Library.artisan90 ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "schedule after opt failed: %s" err.Hls_core.Scheduler.e_message
  | Ok s ->
      let stim = Hls_sim.Stimulus.small_random ~seed:9 ~n_iters:40 ~ports:d.Ast.d_ins in
      let golden = Hls_sim.Behav.run d stim in
      let sim = Hls_sim.Schedule_sim.run e' s stim in
      let v = Hls_sim.Equiv.check ~out_ports:d.Ast.d_outs golden sim in
      if not v.Hls_sim.Equiv.equivalent then Alcotest.fail (Hls_sim.Equiv.verdict_to_string v)

let test_width_reduction () =
  (* a 62-bit product truncated to 16 bits: the multiplier shrinks to the
     demanded width and the full-range slice collapses away *)
  let open Dsl in
  let _, e = elaborate ~vars:[ Dsl.var "x" 16; Dsl.var "t" 16 ]
      [ "t" := port "a" *: port "b"; "x" := v "t" +: int 1 ] in
  let e', stats = Hls_opt.Passes.run e in
  Alcotest.(check bool) "narrowed something" true (stats.Hls_opt.Passes.narrowed > 0);
  let dfg = e'.Elaborate.cdfg.Cdfg.dfg in
  List.iter
    (fun o ->
      if o.Dfg.kind = Opkind.Bin Opkind.Mul then
        Alcotest.(check bool) "multiplier width shrunk" true (o.Dfg.width <= 16))
    (Dfg.ops dfg)

let test_width_reduction_preserves_semantics () =
  let d = Hls_designs.Idct.design () in
  let e = Elaborate.design d in
  let e', stats = Hls_opt.Passes.run e in
  Alcotest.(check bool) "idct narrows" true (stats.Hls_opt.Passes.narrowed > 0);
  let region = Elaborate.main_region e' in
  match Hls_core.Scheduler.schedule ~lib:Hls_techlib.Library.artisan90 ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "schedule after width reduction failed: %s" err.Hls_core.Scheduler.e_message
  | Ok s ->
      let stim = Hls_sim.Stimulus.small_random ~seed:13 ~n_iters:10 ~ports:d.Ast.d_ins in
      let golden = Hls_sim.Behav.run d stim in
      let sim = Hls_sim.Schedule_sim.run e' s stim in
      let v = Hls_sim.Equiv.check ~out_ports:d.Ast.d_outs golden sim in
      if not v.Hls_sim.Equiv.equivalent then Alcotest.fail (Hls_sim.Equiv.verdict_to_string v)

let test_idempotent_fixpoint () =
  let d = Hls_designs.Fir.design () in
  let e = Elaborate.design d in
  let e', _ = Hls_opt.Passes.run e in
  let _, stats2 = Hls_opt.Passes.run e' in
  Alcotest.(check int) "second run is a no-op" 0 (Hls_opt.Passes.total stats2)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_fold;
    Alcotest.test_case "x*1 simplification" `Quick test_mul_by_one;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
    Alcotest.test_case "CSE" `Quick test_cse;
    Alcotest.test_case "DCE" `Quick test_dce;
    Alcotest.test_case "membership maintained" `Quick test_membership_maintained;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
    Alcotest.test_case "width reduction" `Quick test_width_reduction;
    Alcotest.test_case "width reduction preserves semantics" `Quick
      test_width_reduction_preserves_semantics;
    Alcotest.test_case "fixpoint idempotence" `Quick test_idempotent_fixpoint;
  ]
