(** Guards: conjunction algebra, mutual exclusivity, implication. *)

open Hls_ir

let g atoms = List.fold_left (fun acc (p, pol) ->
    match Option.bind acc (fun g -> Guard.add g ~pred:p ~polarity:pol) with
    | Some _ as r -> r
    | None -> None)
    (Some Guard.always) atoms

let get = function Some x -> x | None -> Alcotest.fail "unexpected contradiction"

let test_always () =
  Alcotest.(check bool) "always is always" true (Guard.is_always Guard.always);
  Alcotest.(check bool) "atom is not always" false (Guard.is_always (get (g [ (1, true) ])))

let test_conj () =
  let g1 = get (g [ (1, true) ]) and g2 = get (g [ (2, false) ]) in
  let both = get (Guard.conj g1 g2) in
  Alcotest.(check int) "two atoms" 2 (List.length both);
  (* contradiction *)
  let g1' = get (g [ (1, false) ]) in
  Alcotest.(check bool) "contradiction detected" true (Guard.conj g1 g1' = None);
  (* idempotence *)
  Alcotest.(check bool) "conj with self is self" true (Guard.equal g1 (get (Guard.conj g1 g1)))

let test_mutual_exclusion () =
  let t = get (g [ (5, true) ]) and f = get (g [ (5, false) ]) in
  Alcotest.(check bool) "opposite polarities exclude" true (Guard.mutually_exclusive t f);
  let other = get (g [ (6, true) ]) in
  Alcotest.(check bool) "different preds do not exclude" false (Guard.mutually_exclusive t other);
  Alcotest.(check bool) "always never excludes" false (Guard.mutually_exclusive Guard.always t);
  (* nested: (5,T)&(6,T) vs (5,F)&(7,T) still exclusive through pred 5 *)
  let a = get (g [ (5, true); (6, true) ]) and b = get (g [ (5, false); (7, true) ]) in
  Alcotest.(check bool) "nested exclusion" true (Guard.mutually_exclusive a b)

let test_implies () =
  let a = get (g [ (1, true); (2, false) ]) and b = get (g [ (1, true) ]) in
  Alcotest.(check bool) "stronger implies weaker" true (Guard.implies a b);
  Alcotest.(check bool) "weaker does not imply stronger" false (Guard.implies b a);
  Alcotest.(check bool) "everything implies always" true (Guard.implies a Guard.always)

let test_map_preds () =
  let a = get (g [ (1, true); (2, false) ]) in
  let renamed = Guard.map_preds (fun p -> p + 10) a in
  Alcotest.(check (list int)) "renamed preds" [ 11; 12 ] (Guard.preds renamed)

let atom_gen = QCheck.Gen.(map2 (fun p pol -> (p, pol)) (int_range 0 6) bool)

let guard_gen =
  QCheck.Gen.(
    map
      (fun atoms ->
        List.fold_left
          (fun acc (p, pol) ->
            match Guard.add acc ~pred:p ~polarity:pol with Some x -> x | None -> acc)
          Guard.always atoms)
      (list_size (int_range 0 4) atom_gen))

let guard_arb = QCheck.make guard_gen ~print:Guard.to_string

let prop_mutex_symmetric =
  QCheck.Test.make ~name:"mutual exclusivity is symmetric" ~count:300
    QCheck.(pair guard_arb guard_arb)
    (fun (a, b) -> Guard.mutually_exclusive a b = Guard.mutually_exclusive b a)

let prop_conj_implies =
  QCheck.Test.make ~name:"conjunction implies both conjuncts" ~count:300
    QCheck.(pair guard_arb guard_arb)
    (fun (a, b) ->
      match Guard.conj a b with
      | None -> true
      | Some c -> Guard.implies c a && Guard.implies c b)

let prop_exclusive_conj_contradicts =
  QCheck.Test.make ~name:"mutually exclusive guards have no conjunction" ~count:300
    QCheck.(pair guard_arb guard_arb)
    (fun (a, b) -> (not (Guard.mutually_exclusive a b)) || Guard.conj a b = None)

let suite =
  [
    Alcotest.test_case "always" `Quick test_always;
    Alcotest.test_case "conj" `Quick test_conj;
    Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
    Alcotest.test_case "implies" `Quick test_implies;
    Alcotest.test_case "map_preds" `Quick test_map_preds;
    QCheck_alcotest.to_alcotest prop_mutex_symmetric;
    QCheck_alcotest.to_alcotest prop_conj_implies;
    QCheck_alcotest.to_alcotest prop_exclusive_conj_contradicts;
  ]
