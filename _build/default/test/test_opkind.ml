(** Operation kinds: arity, resource classes, evaluation, width rules. *)

open Hls_ir

let test_arity () =
  Alcotest.(check int) "bin" 2 (Opkind.arity (Opkind.Bin Opkind.Add));
  Alcotest.(check int) "un" 1 (Opkind.arity (Opkind.Un Opkind.Neg));
  Alcotest.(check int) "mux" 3 (Opkind.arity Opkind.Mux);
  Alcotest.(check int) "loop mux" 2 (Opkind.arity Opkind.Loop_mux);
  Alcotest.(check int) "const" 0 (Opkind.arity (Opkind.Const 5));
  Alcotest.(check int) "write" 1 (Opkind.arity (Opkind.Write "y"))

let test_rclass () =
  Alcotest.(check bool) "add and sub share" true
    (Opkind.rclass (Opkind.Bin Opkind.Add) = Opkind.rclass (Opkind.Bin Opkind.Sub));
  Alcotest.(check bool) "gt and eq do not share" false
    (Opkind.rclass (Opkind.Bin Opkind.Gt) = Opkind.rclass (Opkind.Bin Opkind.Eq));
  Alcotest.(check bool) "mux and loop mux share" true
    (Opkind.rclass Opkind.Mux = Opkind.rclass Opkind.Loop_mux);
  Alcotest.(check bool) "slice is wiring" true (Opkind.rclass (Opkind.Slice (7, 0)) = Opkind.R_wire)

let test_is_resource_op () =
  Alcotest.(check bool) "mul is" true (Opkind.is_resource_op (Opkind.Bin Opkind.Mul));
  Alcotest.(check bool) "const is not" false (Opkind.is_resource_op (Opkind.Const 3));
  Alcotest.(check bool) "read is not" false (Opkind.is_resource_op (Opkind.Read "a"));
  Alcotest.(check bool) "mux is" true (Opkind.is_resource_op Opkind.Mux)

let test_complexity_order () =
  let c k = Opkind.complexity k in
  Alcotest.(check bool) "div > mul" true (c (Opkind.Bin Opkind.Div) > c (Opkind.Bin Opkind.Mul));
  Alcotest.(check bool) "mul > add" true (c (Opkind.Bin Opkind.Mul) > c (Opkind.Bin Opkind.Add));
  Alcotest.(check bool) "add > cmp" true (c (Opkind.Bin Opkind.Add) > c (Opkind.Bin Opkind.Gt))

let test_eval_pure () =
  let e k args = Option.get (Opkind.eval_pure k args) in
  Alcotest.(check int) "add" 7 (e (Opkind.Bin Opkind.Add) [ 3; 4 ]);
  Alcotest.(check int) "sub" (-1) (e (Opkind.Bin Opkind.Sub) [ 3; 4 ]);
  Alcotest.(check int) "mul" 12 (e (Opkind.Bin Opkind.Mul) [ 3; 4 ]);
  Alcotest.(check int) "div by zero is 0" 0 (e (Opkind.Bin Opkind.Div) [ 3; 0 ]);
  Alcotest.(check int) "lt true" 1 (e (Opkind.Bin Opkind.Lt) [ 3; 4 ]);
  Alcotest.(check int) "mux select" 9 (e Opkind.Mux [ 1; 9; 5 ]);
  Alcotest.(check int) "mux deselect" 5 (e Opkind.Mux [ 0; 9; 5 ]);
  Alcotest.(check int) "slice" 5 (e (Opkind.Slice (2, 0)) [ 0b1101 ]);
  Alcotest.(check bool) "loop mux is stateful" true (Opkind.eval_pure Opkind.Loop_mux [ 1; 2 ] = None)

let test_result_width () =
  Alcotest.(check int) "add grows" 17 (Opkind.result_width (Opkind.Bin Opkind.Add) [ 16; 16 ]);
  Alcotest.(check int) "cmp is a bit" 1 (Opkind.result_width (Opkind.Bin Opkind.Gt) [ 16; 16 ]);
  Alcotest.(check int) "mux takes data max" 24 (Opkind.result_width Opkind.Mux [ 1; 24; 16 ]);
  Alcotest.(check int) "slice" 8 (Opkind.result_width (Opkind.Slice (9, 2)) [ 32 ]);
  Alcotest.(check int) "read uses self" 12 (Opkind.result_width ~self:12 (Opkind.Read "p") [])

let prop_eval_commutative =
  QCheck.Test.make ~name:"commutative ops commute" ~count:300
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      List.for_all
        (fun k ->
          (not (Opkind.is_commutative k)) || Opkind.eval_pure k [ a; b ] = Opkind.eval_pure k [ b; a ])
        [ Opkind.Bin Opkind.Add; Opkind.Bin Opkind.Mul; Opkind.Bin Opkind.Band;
          Opkind.Bin Opkind.Bor; Opkind.Bin Opkind.Eq; Opkind.Bin Opkind.Sub ])

let suite =
  [
    Alcotest.test_case "arity" `Quick test_arity;
    Alcotest.test_case "resource classes" `Quick test_rclass;
    Alcotest.test_case "is_resource_op" `Quick test_is_resource_op;
    Alcotest.test_case "complexity ordering" `Quick test_complexity_order;
    Alcotest.test_case "eval_pure" `Quick test_eval_pure;
    Alcotest.test_case "result widths" `Quick test_result_width;
    QCheck_alcotest.to_alcotest prop_eval_commutative;
  ]
