(** The textual [.bhv] frontend: lexer, parser, precedence, attributes,
    errors, and agreement with the DSL. *)

open Hls_frontend

let parse = Parser.parse_string

let example_src =
  {|
design t1 {
  in a : 8;
  in b : 8;
  out y : 16;
  var x : 16;

  x = 0;
  wait();
  do [name=m, latency=1..4, ii=2] {
    x = x + $a * $b;
    if (x > 100) { x = 100; } else { x = x + 1; }
    wait();
    $y = x;
  } while (1);
}
|}

let test_parse_design () =
  let d = parse example_src in
  Alcotest.(check string) "name" "t1" d.Ast.d_name;
  Alcotest.(check int) "two inputs" 2 (List.length d.Ast.d_ins);
  Alcotest.(check int) "one output" 1 (List.length d.Ast.d_outs);
  Alcotest.(check (list string)) "design checks clean" [] (Check.run (Desugar.design d))

let test_loop_attrs () =
  let d = parse example_src in
  let rec find = function
    | Ast.Do_while (_, _, a) :: _ -> a
    | _ :: rest -> find rest
    | [] -> Alcotest.fail "no loop"
  in
  let a = find d.Ast.d_body in
  Alcotest.(check string) "name" "m" a.Ast.l_name;
  Alcotest.(check (option int)) "ii" (Some 2) a.Ast.l_ii;
  Alcotest.(check int) "min latency" 1 a.Ast.l_min_latency;
  Alcotest.(check int) "max latency" 4 a.Ast.l_max_latency

let test_precedence () =
  let d =
    parse
      {|design p { in a : 8; out y : 32; var x : 32;
         x = 0; wait();
         do { x = 1 + 2 * 3; wait(); $y = x; } while (1); }|}
  in
  (* behavioural evaluation settles precedence questions *)
  let stim = Hls_sim.Stimulus.create ~n_iters:1 [ ("a", [| 0 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check (list int)) "1 + 2*3 = 7" [ 7 ] (Hls_sim.Behav.port_values r "y")

let test_ternary_and_slice () =
  let d =
    parse
      {|design q { in a : 8; out y : 8; var x : 8;
         x = 0; wait();
         do { x = ($a > 0) ? $a : -$a; x = x[7:0]; wait(); $y = x; } while (1); }|}
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:2 [ ("a", [| -5; 9 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check (list int)) "abs" [ 5; 9 ] (Hls_sim.Behav.port_values r "y")

let test_comments () =
  let d =
    parse
      {|design c { // line comment
         in a : 8; /* block
                      comment */ out y : 8; var x : 8;
         x = 0; wait(); do { x = $a; wait(); $y = x; } while (1); }|}
  in
  Alcotest.(check string) "parsed through comments" "c" d.Ast.d_name

let test_for_loop () =
  let d =
    parse
      {|design f { in a : 8; out y : 16; var x : 16; var i : 8;
         x = 0; wait();
         do { for (i = 0; i < 4; i++) [unroll] { x = x + $a; } wait(); $y = x; } while (1); }|}
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:1 [ ("a", [| 3 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check (list int)) "4 * 3" [ 12 ] (Hls_sim.Behav.port_values r "y")

let test_error_reporting () =
  (try
     ignore (parse "design x { in a : 8; out y : 8;\n  y == 3;\n}");
     Alcotest.fail "must reject"
   with Parser.Error { line; _ } -> Alcotest.(check int) "error line" 2 line);
  try
    ignore (parse "design x { in a @ 8; }");
    Alcotest.fail "must reject"
  with Parser.Error _ | Lexer.Error _ -> ()

let test_parser_dsl_agree () =
  (* the same design through both frontends schedules identically *)
  let parsed = parse example_src in
  let via_dsl =
    Dsl.(
      design "t1"
        ~ins:[ in_port "a" 8; in_port "b" 8 ]
        ~outs:[ out_port "y" 16 ]
        ~vars:[ var "x" 16 ]
        [
          "x" := int 0;
          wait;
          do_while ~name:"m" ~min_latency:1 ~max_latency:4 ~ii:2
            [
              "x" := v "x" +: (port "a" *: port "b");
              if_ (v "x" >: int 100) [ "x" := int 100 ] [ "x" := v "x" +: int 1 ];
              wait;
              write "y" (v "x");
            ]
            (int 1);
        ])
  in
  let stim = Hls_sim.Stimulus.small_random ~seed:21 ~n_iters:25 ~ports:parsed.Ast.d_ins in
  let a = Hls_sim.Behav.run parsed stim and b = Hls_sim.Behav.run via_dsl stim in
  Alcotest.(check (list int)) "same outputs" (Hls_sim.Behav.port_values a "y")
    (Hls_sim.Behav.port_values b "y")

let suite =
  [
    Alcotest.test_case "parse design" `Quick test_parse_design;
    Alcotest.test_case "loop attributes" `Quick test_loop_attrs;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "ternary and slice" `Quick test_ternary_and_slice;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "for loop" `Quick test_for_loop;
    Alcotest.test_case "error reporting" `Quick test_error_reporting;
    Alcotest.test_case "parser agrees with DSL" `Quick test_parser_dsl_agree;
  ]
