(** Elaboration: the Example 1 CDFG matches the paper's Fig. 3 structure,
    guards and loop muxes are built correctly, regions are extracted. *)

open Hls_ir
open Hls_frontend

let example1 () = Hls_designs.Example1.elaborated ()

let count_kind dfg pred = List.length (List.filter pred (Dfg.ops dfg))

let test_example1_shape () =
  let e = example1 () in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  (* Fig. 3(b): three multiplications, one addition, gt, neq, the value mux
     and the aver loop mux *)
  Alcotest.(check int) "3 muls" 3
    (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul));
  Alcotest.(check int) "1 add" 1 (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Add));
  Alcotest.(check int) "1 gt" 1 (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Gt));
  Alcotest.(check int) "1 neq" 1 (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Neq));
  Alcotest.(check int) "1 mux" 1 (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Mux));
  Alcotest.(check int) "1 loop mux" 1 (count_kind dfg (fun o -> o.Dfg.kind = Opkind.Loop_mux));
  (* four port reads, one per port per iteration *)
  Alcotest.(check int) "4 reads" 4
    (count_kind dfg (fun o -> match o.Dfg.kind with Opkind.Read _ -> true | _ -> false));
  Alcotest.(check int) "1 write" 1
    (count_kind dfg (fun o -> match o.Dfg.kind with Opkind.Write _ -> true | _ -> false))

let test_example1_validates () =
  let e = example1 () in
  Alcotest.(check (list string)) "CDFG validates" [] (Cdfg.validate e.Elaborate.cdfg)

let test_guard_on_mul2 () =
  let e = example1 () in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  (* mul2 (aver * scale) sits under the aver > th conditional *)
  let guarded_muls =
    List.filter
      (fun o -> o.Dfg.kind = Opkind.Bin Opkind.Mul && not (Guard.is_always o.Dfg.guard))
      (Dfg.ops dfg)
  in
  Alcotest.(check int) "exactly one guarded mul" 1 (List.length guarded_muls);
  let g = (List.hd guarded_muls).Dfg.guard in
  let pred = List.hd (Guard.preds g) in
  Alcotest.(check bool) "guard predicate is the gt op" true
    ((Dfg.find dfg pred).Dfg.kind = Opkind.Bin Opkind.Gt)

let test_loop_mux_wiring () =
  let e = example1 () in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  let lm = List.find (fun o -> o.Dfg.kind = Opkind.Loop_mux) (Dfg.ops dfg) in
  let port1 = Option.get (Dfg.input dfg lm.Dfg.id ~port:1) in
  Alcotest.(check int) "carried edge has distance 1" 1 port1.Dfg.distance;
  let port0 = Option.get (Dfg.input dfg lm.Dfg.id ~port:0) in
  Alcotest.(check int) "init edge is intra-iteration" 0 port0.Dfg.distance;
  (* init comes from outside the loop *)
  let li = Option.get e.Elaborate.loop in
  Alcotest.(check bool) "init is not a loop member" false
    (List.mem port0.Dfg.src li.Elaborate.li_members)

let test_region_extraction () =
  let e = example1 () in
  let li = Option.get e.Elaborate.loop in
  Alcotest.(check bool) "loop has a continue condition" true (li.Elaborate.li_continue <> None);
  Alcotest.(check int) "source latency one wait" 1 li.Elaborate.li_waits;
  Alcotest.(check bool) "pre region holds the aver init" true (e.Elaborate.pre_members <> []);
  let r = Elaborate.main_region e in
  Alcotest.(check int) "region members" (List.length li.Elaborate.li_members) (Region.n_members r)

let test_example1_scc () =
  let e = example1 () in
  let r = Elaborate.main_region ~ii:2 e in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  let sccs = Region.sccs r in
  Alcotest.(check int) "a single SCC" 1 (List.length sccs);
  let names = List.map (fun id -> (Dfg.find dfg id).Dfg.kind) (List.hd sccs) in
  (* the paper's {loopMux, add, mul2, MUX} (plus zero-delay truncation
     wires); the comparator is excluded because mux selects are control *)
  Alcotest.(check bool) "contains loop mux" true (List.mem Opkind.Loop_mux names);
  Alcotest.(check bool) "contains add" true (List.mem (Opkind.Bin Opkind.Add) names);
  Alcotest.(check bool) "contains mul" true (List.mem (Opkind.Bin Opkind.Mul) names);
  Alcotest.(check bool) "contains mux" true (List.mem Opkind.Mux names);
  Alcotest.(check bool) "excludes gt" false (List.mem (Opkind.Bin Opkind.Gt) names)

let test_port_read_dedup () =
  (* mask is read twice in the source (filt = mask; mask * chrome) but the
     per-iteration semantics give one Read op *)
  let e = example1 () in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  let mask_reads =
    List.filter (fun o -> o.Dfg.kind = Opkind.Read "mask") (Dfg.ops dfg)
  in
  Alcotest.(check int) "one mask read" 1 (List.length mask_reads)

let test_assignment_truncates () =
  let open Dsl in
  let d =
    design "w" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[ var "x" 8 ]
      [ "x" := port "a" *: port "a"; wait; do_while [ write "y" (v "x"); wait ] (int 1) ]
  in
  let e = Elaborate.design d in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  (* the 16-bit product must be truncated back to the 8-bit variable *)
  Alcotest.(check bool) "truncation wire present" true
    (List.exists
       (fun o -> match o.Dfg.kind with Opkind.Slice (7, 0) -> true | _ -> false)
       (Dfg.ops dfg))

let test_timed_anchors () =
  let d = Hls_designs.Example1.design () in
  let e = Elaborate.design ~timed:true d in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  let reads =
    List.filter (fun o -> match o.Dfg.kind with Opkind.Read _ -> true | _ -> false) (Dfg.ops dfg)
  in
  Alcotest.(check bool) "timed mode anchors I/O ops" true
    (List.for_all (fun o -> o.Dfg.anchor <> None) reads)

let test_if_join_mux () =
  let open Dsl in
  let d =
    design "j" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[ var "x" 8 ]
      [
        "x" := int 0;
        wait;
        do_while
          [ if_ (port "a" >: int 0) [ "x" := port "a" ] [ "x" := int 0 -: port "a" ];
            wait; write "y" (v "x") ]
          (int 1);
      ]
  in
  let e = Elaborate.design d in
  let dfg = e.Elaborate.cdfg.Cdfg.dfg in
  Alcotest.(check int) "join merges with one mux" 1
    (List.length (List.filter (fun o -> o.Dfg.kind = Opkind.Mux) (Dfg.ops dfg)));
  Alcotest.(check (list string)) "validates" [] (Cdfg.validate e.Elaborate.cdfg)

let suite =
  [
    Alcotest.test_case "example1 shape (Fig. 3)" `Quick test_example1_shape;
    Alcotest.test_case "example1 validates" `Quick test_example1_validates;
    Alcotest.test_case "guard on mul2" `Quick test_guard_on_mul2;
    Alcotest.test_case "loop mux wiring" `Quick test_loop_mux_wiring;
    Alcotest.test_case "region extraction" `Quick test_region_extraction;
    Alcotest.test_case "example1 SCC" `Quick test_example1_scc;
    Alcotest.test_case "port read dedup" `Quick test_port_read_dedup;
    Alcotest.test_case "assignment truncates" `Quick test_assignment_truncates;
    Alcotest.test_case "timed anchors" `Quick test_timed_anchors;
    Alcotest.test_case "if join mux" `Quick test_if_join_mux;
  ]
