(** Width arithmetic: unit cases plus truncation algebra properties. *)

open Hls_ir

let test_bits_for_signed () =
  Alcotest.(check int) "0 needs 1 bit" 1 (Width.bits_for_signed 0);
  Alcotest.(check int) "1 needs 2 bits" 2 (Width.bits_for_signed 1);
  Alcotest.(check int) "-1 needs 1 bit" 1 (Width.bits_for_signed (-1));
  Alcotest.(check int) "127 needs 8 bits" 8 (Width.bits_for_signed 127);
  Alcotest.(check int) "128 needs 9 bits" 9 (Width.bits_for_signed 128);
  Alcotest.(check int) "-128 needs 8 bits" 8 (Width.bits_for_signed (-128));
  Alcotest.(check int) "-129 needs 9 bits" 9 (Width.bits_for_signed (-129))

let test_truncate () =
  Alcotest.(check int) "255 in 8 bits is -1" (-1) (Width.truncate ~width:8 255);
  Alcotest.(check int) "127 in 8 bits stays" 127 (Width.truncate ~width:8 127);
  Alcotest.(check int) "256 in 8 bits wraps to 0" 0 (Width.truncate ~width:8 256);
  Alcotest.(check int) "-1 in 4 bits stays" (-1) (Width.truncate ~width:4 (-1));
  Alcotest.(check int) "8 in 4 bits is -8" (-8) (Width.truncate ~width:4 8)

let test_result_rules () =
  Alcotest.(check int) "add grows one bit" 17 (Width.add_result 16 16);
  Alcotest.(check int) "mul adds widths" 32 (Width.mul_result 16 16);
  Alcotest.(check int) "mul clamps at max" Width.max_width (Width.mul_result 40 40);
  Alcotest.(check int) "bitwise takes max" 24 (Width.bitwise_result 24 16);
  Alcotest.(check int) "shr keeps width" 16 (Width.shr_result 16 4)

let test_fits () =
  Alcotest.(check bool) "127 fits 8" true (Width.fits ~width:8 127);
  Alcotest.(check bool) "128 does not fit 8" false (Width.fits ~width:8 128);
  Alcotest.(check bool) "-128 fits 8" true (Width.fits ~width:8 (-128))

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate is idempotent" ~count:500
    QCheck.(pair (int_range 1 40) int)
    (fun (w, v) ->
      let t = Width.truncate ~width:w v in
      Width.truncate ~width:w t = t)

let prop_truncate_fits =
  QCheck.Test.make ~name:"truncated value fits its width" ~count:500
    QCheck.(pair (int_range 1 40) int)
    (fun (w, v) -> Width.fits ~width:w (Width.truncate ~width:w v))

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"value fits in bits_for_signed of itself" ~count:500
    QCheck.(int_range (-1000000) 1000000)
    (fun v -> Width.fits ~width:(Width.bits_for_signed v) v)

let suite =
  [
    Alcotest.test_case "bits_for_signed" `Quick test_bits_for_signed;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "result rules" `Quick test_result_rules;
    Alcotest.test_case "fits" `Quick test_fits;
    QCheck_alcotest.to_alcotest prop_truncate_idempotent;
    QCheck_alcotest.to_alcotest prop_truncate_fits;
    QCheck_alcotest.to_alcotest prop_bits_roundtrip;
  ]
