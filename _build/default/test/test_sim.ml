(** Simulators: behavioural semantics, and functional equivalence between
    the golden model and the scheduled design across the whole design ×
    micro-architecture matrix. *)

open Hls_frontend
open Hls_core

let lib = Hls_techlib.Library.artisan90

let test_behav_basics () =
  let open Dsl in
  let d =
    design "acc" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 16 ] ~vars:[ var "s" 16 ]
      [
        "s" := int 0;
        wait;
        do_while [ "s" := v "s" +: port "a"; wait; write "y" (v "s") ] (int 1);
      ]
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:4 [ ("a", [| 1; 2; 3; 4 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check (list int)) "running sums" [ 1; 3; 6; 10 ] (Hls_sim.Behav.port_values r "y");
  Alcotest.(check int) "four iterations" 4 r.Hls_sim.Behav.r_iters

let test_behav_if_semantics () =
  let open Dsl in
  let d =
    design "absd" ~ins:[ in_port "a" 8; in_port "b" 8 ] ~outs:[ out_port "y" 9 ]
      ~vars:[ var "x" 9 ]
      [
        "x" := int 0;
        wait;
        do_while
          [
            if_ (port "a" >: port "b") [ "x" := port "a" -: port "b" ] [ "x" := port "b" -: port "a" ];
            wait;
            write "y" (v "x");
          ]
          (int 1);
      ]
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:3 [ ("a", [| 5; 2; 7 |]); ("b", [| 3; 9; 7 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check (list int)) "abs differences" [ 2; 7; 0 ] (Hls_sim.Behav.port_values r "y")

let test_behav_width_wrap () =
  let open Dsl in
  let d =
    design "wrap" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[ var "x" 8 ]
      [
        "x" := int 0;
        wait;
        do_while [ "x" := v "x" +: port "a"; wait; write "y" (v "x") ] (int 1);
      ]
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:2 [ ("a", [| 100; 100 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  (* 200 wraps in 8 signed bits to -56 *)
  Alcotest.(check (list int)) "8-bit wraparound" [ 100; -56 ] (Hls_sim.Behav.port_values r "y")

let test_behav_exit_condition () =
  let open Dsl in
  let d =
    design "ex" ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 8 ] ~vars:[ var "x" 8 ]
      [
        "x" := int 0;
        wait;
        do_while [ "x" := port "a"; wait; write "y" (v "x") ] (v "x" <>: int 0);
      ]
  in
  let stim = Hls_sim.Stimulus.create ~n_iters:5 [ ("a", [| 3; 7; 0; 9; 9 |]) ] in
  let r = Hls_sim.Behav.run d stim in
  Alcotest.(check int) "stops when a = 0" 3 r.Hls_sim.Behav.r_iters;
  Alcotest.(check (list int)) "outputs up to the exit" [ 3; 7; 0 ] (Hls_sim.Behav.port_values r "y")

(* ------------------------------------------------------------------ *)

let equiv_case name design ii n_iters seed =
  Alcotest.test_case
    (Printf.sprintf "%s%s" name (match ii with Some i -> Printf.sprintf " II=%d" i | None -> ""))
    `Quick
    (fun () ->
      let e = Elaborate.design design in
      let region = Elaborate.main_region ?ii e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message
      | Ok s ->
          let stim =
            Hls_sim.Stimulus.small_random ~seed ~n_iters ~ports:design.Ast.d_ins
          in
          let golden = Hls_sim.Behav.run design stim in
          let sim = Hls_sim.Schedule_sim.run e s stim in
          let v = Hls_sim.Equiv.check ~out_ports:design.Ast.d_outs golden sim in
          if not v.Hls_sim.Equiv.equivalent then
            Alcotest.fail (Hls_sim.Equiv.verdict_to_string v);
          Alcotest.(check bool) "nonempty check" true (v.Hls_sim.Equiv.checked_values > 0))

let test_throughput_matches_ii () =
  let d = Hls_designs.Example1.design () in
  let e = Elaborate.design d in
  let region = Elaborate.main_region ~ii:2 e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message
  | Ok s ->
      let stim = Hls_sim.Stimulus.small_random ~seed:5 ~n_iters:40 ~ports:d.Ast.d_ins in
      let sim = Hls_sim.Schedule_sim.run e s stim in
      (* steady state: ~II cycles per committed iteration plus the drain *)
      let expected = ((sim.Hls_sim.Schedule_sim.r_iters - 1) * 2) + s.Scheduler.s_li in
      Alcotest.(check int) "cycle count" expected sim.Hls_sim.Schedule_sim.r_cycles

let test_exec_counts_reflect_guards () =
  let d = Hls_designs.Example1.design () in
  let e = Elaborate.design d in
  let region = Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
  | Error err -> Alcotest.failf "schedule failed: %s" err.Scheduler.e_message
  | Ok s ->
      let stim = Hls_sim.Stimulus.small_random ~seed:5 ~n_iters:30 ~ports:d.Ast.d_ins in
      let sim = Hls_sim.Schedule_sim.run e s stim in
      (* every member op executes once per issued iteration in the
         predicated datapath model *)
      Hashtbl.iter
        (fun _op n ->
          Alcotest.(check bool) "bounded by issue count" true
            (n <= sim.Hls_sim.Schedule_sim.r_issued))
        sim.Hls_sim.Schedule_sim.r_exec_counts

let suite =
  [
    Alcotest.test_case "behav: accumulator" `Quick test_behav_basics;
    Alcotest.test_case "behav: conditionals" `Quick test_behav_if_semantics;
    Alcotest.test_case "behav: width wraparound" `Quick test_behav_width_wrap;
    Alcotest.test_case "behav: data-dependent exit" `Quick test_behav_exit_condition;
    equiv_case "example1" (Hls_designs.Example1.design ()) None 60 1;
    equiv_case "example1" (Hls_designs.Example1.design ()) (Some 2) 60 2;
    equiv_case "example1" (Hls_designs.Example1.design ()) (Some 1) 60 3;
    equiv_case "fir8" (Hls_designs.Fir.design ()) None 40 4;
    equiv_case "fir8" (Hls_designs.Fir.design ()) (Some 1) 40 5;
    equiv_case "fir4" (Hls_designs.Fir.design ~taps:4 ()) (Some 2) 40 6;
    equiv_case "fft" (Hls_designs.Fft.design ()) None 30 7;
    equiv_case "fft" (Hls_designs.Fft.design ()) (Some 1) 30 8;
    equiv_case "sobel" (Hls_designs.Conv.design ()) None 30 9;
    equiv_case "sobel" (Hls_designs.Conv.design ()) (Some 1) 30 10;
    equiv_case "dotprod" (Hls_designs.Dotprod.design ()) None 30 11;
    equiv_case "dotprod" (Hls_designs.Dotprod.design ()) (Some 1) 30 12;
    equiv_case "idct" (Hls_designs.Idct.design ()) None 10 13;
    equiv_case "idct" (Hls_designs.Idct.design ()) (Some 4) 10 14;
    equiv_case "synthetic" (Hls_designs.Synthetic.design ()) None 20 15;
    equiv_case "matvec4" (Hls_designs.Matmul.design ()) None 25 16;
    equiv_case "matvec4" (Hls_designs.Matmul.design ()) (Some 2) 25 17;
    equiv_case "matvec8" (Hls_designs.Matmul.design ~n:8 ()) (Some 1) 20 18;
    equiv_case "idct8x8" (Hls_designs.Idct2d.design ()) None 32 19;
    Alcotest.test_case "throughput matches II" `Quick test_throughput_matches_ii;
    Alcotest.test_case "exec counts bounded" `Quick test_exec_counts_reflect_guards;
  ]
