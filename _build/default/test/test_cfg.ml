(** Control-flow graph structure and validation. *)

open Hls_ir

let test_chain_structure () =
  (* entry -> s0 -> loop_head -> s1 -> loop_tail -> exit, with a back edge *)
  let g = Cfg.create () in
  let entry = Cfg.add_node g Cfg.Entry in
  let s0 = Cfg.add_node g Cfg.State ~name:"s0" in
  let head = Cfg.add_node g (Cfg.Loop_head { kind = `Do_while; cond = None }) in
  let s1 = Cfg.add_node g Cfg.State ~name:"s1" in
  let tail = Cfg.add_node g (Cfg.Loop_tail { head = head.Cfg.nid }) in
  let exit_n = Cfg.add_node g Cfg.Exit in
  let e0 = Cfg.add_edge g ~src:entry.Cfg.nid ~dst:s0.Cfg.nid in
  let _ = Cfg.add_edge g ~src:s0.Cfg.nid ~dst:head.Cfg.nid in
  let _ = Cfg.add_edge g ~src:head.Cfg.nid ~dst:s1.Cfg.nid in
  let _ = Cfg.add_edge g ~src:s1.Cfg.nid ~dst:tail.Cfg.nid in
  let _ = Cfg.add_edge g ~label:`Back ~src:tail.Cfg.nid ~dst:head.Cfg.nid in
  let _ = Cfg.add_edge g ~src:tail.Cfg.nid ~dst:exit_n.Cfg.nid in
  Alcotest.(check int) "6 nodes" 6 (Cfg.n_nodes g);
  Alcotest.(check int) "6 edges" 6 (Cfg.n_edges g);
  Alcotest.(check (list string)) "validates" [] (Cfg.validate g);
  Alcotest.(check bool) "entry found" true (Cfg.find_entry g <> None);
  Alcotest.(check bool) "exit found" true (Cfg.find_exit g <> None);
  Alcotest.(check int) "edge endpoints" s0.Cfg.nid (Cfg.edge g e0.Cfg.eid).Cfg.edst;
  (* the loop head has two predecessors: sequential and back *)
  Alcotest.(check int) "head in-degree" 2 (List.length (Cfg.in_edges g head.Cfg.nid))

let test_unreachable_flagged () =
  let g = Cfg.create () in
  let _ = Cfg.add_node g Cfg.Entry in
  let orphan = Cfg.add_node g Cfg.State in
  ignore orphan;
  Alcotest.(check bool) "unreachable node reported" true (Cfg.validate g <> [])

let test_fork_needs_labels () =
  let g = Cfg.create () in
  let entry = Cfg.add_node g Cfg.Entry in
  let fork = Cfg.add_node g (Cfg.Fork { cond = 0 }) in
  let s = Cfg.add_node g Cfg.State in
  let _ = Cfg.add_edge g ~src:entry.Cfg.nid ~dst:fork.Cfg.nid in
  let _ = Cfg.add_edge g ~label:`True ~src:fork.Cfg.nid ~dst:s.Cfg.nid in
  (* missing the False branch *)
  Alcotest.(check bool) "fork without F edge flagged" true (Cfg.validate g <> []);
  let _ = Cfg.add_edge g ~label:`False ~src:fork.Cfg.nid ~dst:s.Cfg.nid in
  Alcotest.(check (list string)) "complete fork validates" [] (Cfg.validate g)

let test_remove () =
  let g = Cfg.create () in
  let a = Cfg.add_node g Cfg.Entry in
  let b = Cfg.add_node g Cfg.State in
  let e = Cfg.add_edge g ~src:a.Cfg.nid ~dst:b.Cfg.nid in
  Cfg.remove_edge g e.Cfg.eid;
  Alcotest.(check int) "edge gone" 0 (Cfg.n_edges g);
  Cfg.remove_node g b.Cfg.nid;
  Alcotest.(check int) "node gone" 1 (Cfg.n_nodes g)

let test_elaborated_cfg_shape () =
  (* the example1 CFG is the canonical chain with a loop *)
  let e = Hls_designs.Example1.elaborated () in
  let g = e.Hls_frontend.Elaborate.cdfg.Cdfg.cfg in
  Alcotest.(check (list string)) "validates" [] (Cfg.validate g);
  let kinds = List.map (fun n -> n.Cfg.nkind) (Cfg.nodes g) in
  Alcotest.(check bool) "has a loop head" true
    (List.exists (function Cfg.Loop_head _ -> true | _ -> false) kinds);
  Alcotest.(check bool) "has a loop tail" true
    (List.exists (function Cfg.Loop_tail _ -> true | _ -> false) kinds);
  (* the back edge is labelled *)
  Alcotest.(check bool) "back edge present" true
    (List.exists (fun ed -> ed.Cfg.elabel = `Back) (Cfg.edges g))

let suite =
  [
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "unreachable flagged" `Quick test_unreachable_flagged;
    Alcotest.test_case "fork labels" `Quick test_fork_needs_labels;
    Alcotest.test_case "removal" `Quick test_remove;
    Alcotest.test_case "elaborated CFG shape" `Quick test_elaborated_cfg_shape;
  ]
