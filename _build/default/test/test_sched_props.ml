(** Schedule validity properties over random synthetic designs: every
    invariant the generated hardware depends on, checked on whatever the
    scheduler produces. *)

open Hls_ir
open Hls_core

let lib = Hls_techlib.Library.artisan90

(** All invariants of a successful schedule:
    - every region member is placed within [0, LI);
    - dependencies are ordered (same-step chaining allowed for
      single-cycle producers; multi-cycle producers finish strictly
      earlier);
    - loop-carried edges satisfy the modulo constraint;
    - no two ops share an instance on equivalent steps unless their guards
      are mutually exclusive;
    - the accurate netlist view reports no negative endpoint slack;
    - folding invariants hold. *)
let check_schedule (region : Region.t) (s : Scheduler.t) =
  let dfg = region.Region.dfg in
  let li = s.Scheduler.s_li in
  let ii = Region.ii region in
  let binding = s.Scheduler.s_binding in
  let ok = ref true in
  let fail _msg = ok := false in
  List.iter
    (fun op ->
      match Binding.placement binding op.Dfg.id with
      | None -> fail "unplaced member"
      | Some pl ->
          if pl.Binding.pl_step < 0 || pl.Binding.pl_finish > li - 1 then fail "out of range")
    (Region.member_ops region);
  (* dependency ordering *)
  Dfg.iter_ops dfg (fun op ->
      List.iter
        (fun e ->
          if Region.mem region e.Dfg.src && Region.mem region e.Dfg.dst then
            match (Binding.placement binding e.Dfg.src, Binding.placement binding e.Dfg.dst) with
            | Some sp, Some dp ->
                if e.Dfg.distance = 0 then begin
                  let p_op = Dfg.find dfg e.Dfg.src in
                  let min_step =
                    if Hls_techlib.Library.op_latency lib p_op.Dfg.kind > 1 then
                      sp.Binding.pl_finish + 1
                    else sp.Binding.pl_finish
                  in
                  if dp.Binding.pl_step < min_step then fail "dependency order"
                end
                else if dp.Binding.pl_step < sp.Binding.pl_finish - (e.Dfg.distance * ii) + 1 then
                  fail "modulo constraint"
            | _ -> ())
        (Dfg.in_edges dfg op.Dfg.id));
  (* busy discipline on equivalence classes *)
  List.iter
    (fun (inst : Binding.inst) ->
      let by_slot = Hashtbl.create 8 in
      List.iter
        (fun o ->
          match Binding.placement binding o with
          | Some pl ->
              for st = pl.Binding.pl_step to pl.Binding.pl_finish do
                let slot = if Region.is_pipelined region then st mod ii else st in
                let prev = Option.value (Hashtbl.find_opt by_slot slot) ~default:[] in
                List.iter
                  (fun o' ->
                    if
                      not
                        (Guard.mutually_exclusive (Dfg.find dfg o).Dfg.guard
                           (Dfg.find dfg o').Dfg.guard)
                    then fail "slot collision")
                  prev;
                Hashtbl.replace by_slot slot (o :: prev)
              done
          | None -> ())
        inst.Binding.bound)
    binding.Binding.insts;
  (* accurate timing is met *)
  if Binding.worst_slack binding < -0.001 then fail "negative slack";
  (* folding invariants *)
  let f = Pipeline.fold s in
  if Pipeline.validate s f <> [] then fail "fold invariants";
  !ok

let prop_random_designs pipelined =
  QCheck.Test.make
    ~name:
      (if pipelined then "pipelined schedules satisfy all invariants"
       else "sequential schedules satisfy all invariants")
    ~count:15
    QCheck.(int_range 1 10000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 30 + (seed mod 60);
          p_seed = seed;
          p_tightness = 0.2 +. (float_of_int (seed mod 5) /. 10.0);
          p_accumulators = 1 + (seed mod 2);
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let e = Hls_frontend.Elaborate.design d in
      let ii = if pipelined then Some (1 + (seed mod 3)) else None in
      let region = Hls_frontend.Elaborate.main_region ?ii e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail () (* infeasible II/clock combinations *)
      | Ok s -> check_schedule region s)

let prop_equivalence_random =
  QCheck.Test.make ~name:"random designs simulate equivalently" ~count:10
    QCheck.(int_range 1 10000)
    (fun seed ->
      let profile =
        {
          Hls_designs.Synthetic.default_profile with
          Hls_designs.Synthetic.p_ops = 30 + (seed mod 40);
          p_seed = seed;
        }
      in
      let d = Hls_designs.Synthetic.design ~profile () in
      let e = Hls_frontend.Elaborate.design d in
      let region = Hls_frontend.Elaborate.main_region e in
      match Scheduler.schedule ~lib ~clock_ps:1600.0 region with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          let stim =
            Hls_sim.Stimulus.small_random ~seed ~n_iters:15 ~ports:d.Hls_frontend.Ast.d_ins
          in
          let golden = Hls_sim.Behav.run d stim in
          let sim = Hls_sim.Schedule_sim.run e s stim in
          (Hls_sim.Equiv.check ~out_ports:d.Hls_frontend.Ast.d_outs golden sim).Hls_sim.Equiv.equivalent)

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_random_designs false);
    QCheck_alcotest.to_alcotest (prop_random_designs true);
    QCheck_alcotest.to_alcotest prop_equivalence_random;
  ]
