(** DFG construction, rewiring and analysis. *)

open Hls_ir

let mk () = Dfg.create ()

let add g kind ~width = (Dfg.add_op g kind ~width).Dfg.id

let test_build_and_find () =
  let g = mk () in
  let a = add g (Opkind.Const 5) ~width:4 in
  let b = add g (Opkind.Read "x") ~width:8 in
  let s = add g (Opkind.Bin Opkind.Add) ~width:9 in
  Dfg.connect g ~src:a ~dst:s ~port:0;
  Dfg.connect g ~src:b ~dst:s ~port:1;
  Alcotest.(check int) "size" 3 (Dfg.size g);
  Alcotest.(check (list int)) "preds sorted by port" [ a; b ] (Dfg.preds g s);
  Alcotest.(check (list int)) "succs of a" [ s ] (Dfg.succs g a);
  Alcotest.(check bool) "validate clean" true (Dfg.validate g = [])

let test_connect_replaces_port () =
  let g = mk () in
  let a = add g (Opkind.Const 1) ~width:2 in
  let b = add g (Opkind.Const 2) ~width:3 in
  let u = add g (Opkind.Un Opkind.Neg) ~width:4 in
  Dfg.connect g ~src:a ~dst:u ~port:0;
  Dfg.connect g ~src:b ~dst:u ~port:0;
  Alcotest.(check (list int)) "second connect wins" [ b ] (Dfg.preds g u)

let test_replace_uses () =
  let g = mk () in
  let a = add g (Opkind.Const 1) ~width:2 in
  let b = add g (Opkind.Const 2) ~width:2 in
  let u1 = add g (Opkind.Un Opkind.Neg) ~width:3 in
  let u2 = add g (Opkind.Un Opkind.Bnot) ~width:2 in
  Dfg.connect g ~src:a ~dst:u1 ~port:0;
  Dfg.connect g ~src:a ~dst:u2 ~port:0;
  Dfg.replace_uses g ~old_id:a ~by:b;
  Alcotest.(check (list int)) "u1 rewired" [ b ] (Dfg.preds g u1);
  Alcotest.(check (list int)) "u2 rewired" [ b ] (Dfg.preds g u2);
  Alcotest.(check (list int)) "a has no consumers" [] (Dfg.succs g a)

let test_replace_uses_guards () =
  let g = mk () in
  let c1 = add g (Opkind.Bin Opkind.Gt) ~width:1 in
  let c2 = add g (Opkind.Bin Opkind.Lt) ~width:1 in
  let guarded =
    Dfg.add_op g (Opkind.Const 7) ~width:4
      ~guard:(Option.get (Guard.add Guard.always ~pred:c1 ~polarity:true))
  in
  Dfg.replace_uses g ~old_id:c1 ~by:c2;
  Alcotest.(check (list int)) "guard predicate rewritten" [ c2 ] (Guard.preds guarded.Dfg.guard)

let test_loop_carried_scc () =
  let g = mk () in
  let init = add g (Opkind.Const 0) ~width:8 in
  let lm = add g Opkind.Loop_mux ~width:8 in
  let inc = add g (Opkind.Bin Opkind.Add) ~width:8 in
  let one = add g (Opkind.Const 1) ~width:2 in
  Dfg.connect g ~src:init ~dst:lm ~port:0;
  Dfg.connect g ~src:lm ~dst:inc ~port:0;
  Dfg.connect g ~src:one ~dst:inc ~port:1;
  Dfg.connect g ~src:inc ~dst:lm ~port:1 ~distance:1;
  let sccs = Dfg.sccs g in
  Alcotest.(check int) "one SCC" 1 (List.length sccs);
  Alcotest.(check (list int)) "accumulator cycle" [ lm; inc ] (List.sort compare (List.hd sccs));
  (* topo over distance-0 edges must still succeed *)
  Alcotest.(check int) "topo covers all ops" 4 (List.length (Dfg.topo_order g))

let test_remove_op () =
  let g = mk () in
  let a = add g (Opkind.Const 1) ~width:2 in
  let u = add g (Opkind.Un Opkind.Neg) ~width:3 in
  Dfg.connect g ~src:a ~dst:u ~port:0;
  Dfg.remove_op g u;
  Alcotest.(check int) "one op left" 1 (Dfg.size g);
  Alcotest.(check (list int)) "a loses consumer" [] (Dfg.succs g a)

let test_validate_errors () =
  let g = mk () in
  let a = add g (Opkind.Bin Opkind.Add) ~width:4 in
  ignore a;
  Alcotest.(check bool) "missing inputs flagged" true (Dfg.validate g <> []);
  let g2 = mk () in
  let lm = add g2 Opkind.Loop_mux ~width:4 in
  let c = add g2 (Opkind.Const 0) ~width:4 in
  Dfg.connect g2 ~src:c ~dst:lm ~port:0;
  Dfg.connect g2 ~src:c ~dst:lm ~port:1;
  (* port-1 edge must be loop-carried *)
  Alcotest.(check bool) "loop_mux distance-0 carried edge flagged" true (Dfg.validate g2 <> [])

let test_fanout_cone () =
  let g = mk () in
  let a = add g (Opkind.Const 1) ~width:2 in
  let b = add g (Opkind.Un Opkind.Neg) ~width:3 in
  let c = add g (Opkind.Un Opkind.Bnot) ~width:3 in
  let d = add g (Opkind.Bin Opkind.Add) ~width:4 in
  Dfg.connect g ~src:a ~dst:b ~port:0;
  Dfg.connect g ~src:b ~dst:c ~port:0;
  Dfg.connect g ~src:b ~dst:d ~port:0;
  Dfg.connect g ~src:c ~dst:d ~port:1;
  Alcotest.(check int) "cone of a" 3 (Dfg.fanout_cone_size g a);
  Alcotest.(check int) "cone of d" 0 (Dfg.fanout_cone_size g d)

let test_copy_isolation () =
  let g = mk () in
  let a = add g (Opkind.Const 1) ~width:2 in
  let g' = Dfg.copy g in
  (Dfg.find g' a).Dfg.name <- "changed";
  Alcotest.(check bool) "copy does not alias" false ((Dfg.find g a).Dfg.name = "changed")

let suite =
  [
    Alcotest.test_case "build and find" `Quick test_build_and_find;
    Alcotest.test_case "connect replaces port" `Quick test_connect_replaces_port;
    Alcotest.test_case "replace_uses" `Quick test_replace_uses;
    Alcotest.test_case "replace_uses rewrites guards" `Quick test_replace_uses_guards;
    Alcotest.test_case "loop-carried SCC" `Quick test_loop_carried_scc;
    Alcotest.test_case "remove op" `Quick test_remove_op;
    Alcotest.test_case "validate errors" `Quick test_validate_errors;
    Alcotest.test_case "fanout cone" `Quick test_fanout_cone;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
  ]
