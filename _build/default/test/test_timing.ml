(** Timing substrate: the incremental cycle detector and the downstream
    logic-synthesis sizing model. *)

open Hls_timing

let test_cycle_detector_basic () =
  let t = Cycle_detector.create () in
  Cycle_detector.add_edge t ~src:0 ~dst:1;
  Cycle_detector.add_edge t ~src:1 ~dst:2;
  Alcotest.(check bool) "2->0 would close" true (Cycle_detector.would_close_cycle t ~src:2 ~dst:0);
  Alcotest.(check bool) "0->2 is fine" false (Cycle_detector.would_close_cycle t ~src:0 ~dst:2);
  Alcotest.(check bool) "self edge closes" true (Cycle_detector.would_close_cycle t ~src:1 ~dst:1);
  Alcotest.check_raises "adding a closing edge raises"
    (Invalid_argument "Cycle_detector.add_edge: closes a cycle") (fun () ->
      Cycle_detector.add_edge t ~src:2 ~dst:0)

let test_cycle_detector_remove () =
  let t = Cycle_detector.create () in
  Cycle_detector.add_edge t ~src:0 ~dst:1;
  Cycle_detector.remove_edge t ~src:0 ~dst:1;
  Alcotest.(check bool) "after removal the reverse edge is fine" false
    (Cycle_detector.would_close_cycle t ~src:1 ~dst:0);
  Alcotest.(check int) "edge count" 0 (Cycle_detector.n_edges t)

let test_cycle_detector_idempotent () =
  let t = Cycle_detector.create () in
  Cycle_detector.add_edge t ~src:0 ~dst:1;
  Cycle_detector.add_edge t ~src:0 ~dst:1;
  Alcotest.(check int) "idempotent add" 1 (Cycle_detector.n_edges t)

let prop_detector_never_cyclic =
  QCheck.Test.make ~name:"greedy edge insertion keeps the graph acyclic" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (int_range 0 9) (int_range 0 9)))
    (fun edges ->
      let t = Cycle_detector.create () in
      List.iter
        (fun (a, b) ->
          if not (Cycle_detector.would_close_cycle t ~src:a ~dst:b) then
            Cycle_detector.add_edge t ~src:a ~dst:b)
        edges;
      (* the resulting graph must topologically sort *)
      let nodes = List.init 10 Fun.id in
      Hls_ir.Graph_algo.topo_sort ~nodes ~succs:(Cycle_detector.succs t) <> None)

(* ------------------------------------------------------------------ *)

let lib = Hls_techlib.Library.artisan90

let mul32 = { Hls_techlib.Resource.rclass = Hls_ir.Opkind.R_mul; in_widths = [ 32; 32 ]; out_width = 32 }
let add32 = { Hls_techlib.Resource.rclass = Hls_ir.Opkind.R_addsub; in_widths = [ 32; 32 ]; out_width = 32 }

let path ?(fixed = 300.0) elems =
  {
    Synthesize.p_endpoint = "t";
    p_step = 0;
    p_fixed = fixed;
    p_elems =
      List.mapi
        (fun i rt ->
          { Synthesize.pe_inst = i; pe_rtype = rt; pe_nominal = Hls_techlib.Library.delay lib rt })
        elems;
  }

let test_synthesize_nominal () =
  (* relaxed path: nominal areas, no upsizing *)
  let rep = { Synthesize.r_clock_ps = 2000.0; r_paths = [ path [ mul32 ] ] } in
  let r = Synthesize.run lib rep in
  Alcotest.(check bool) "feasible" true r.Synthesize.s_feasible;
  Alcotest.(check int) "nothing upsized" 0 r.Synthesize.s_upsized;
  Alcotest.(check (float 0.5)) "nominal area" (Hls_techlib.Library.area lib mul32) r.Synthesize.s_area

let test_synthesize_upsizes () =
  (* 930 + 300 fixed > 1100 clock: the multiplier must speed up *)
  let rep = { Synthesize.r_clock_ps = 1100.0; r_paths = [ path [ mul32 ] ] } in
  let r = Synthesize.run lib rep in
  Alcotest.(check bool) "feasible after sizing" true r.Synthesize.s_feasible;
  Alcotest.(check int) "one instance upsized" 1 r.Synthesize.s_upsized;
  Alcotest.(check bool) "area above nominal" true
    (r.Synthesize.s_area > Hls_techlib.Library.area lib mul32)

let test_synthesize_infeasible () =
  (* even the fastest sizing cannot absorb this *)
  let rep = { Synthesize.r_clock_ps = 700.0; r_paths = [ path [ mul32 ] ] } in
  let r = Synthesize.run lib rep in
  Alcotest.(check bool) "not feasible" false r.Synthesize.s_feasible;
  Alcotest.(check bool) "residual violation reported" true (r.Synthesize.s_wns < 0.0)

let test_synthesize_shared_instance_takes_worst () =
  (* the same instance on a loose and a tight path follows the tight one *)
  let tight = path ~fixed:500.0 [ mul32 ] in
  let loose = path ~fixed:100.0 [ mul32 ] in
  let rep = { Synthesize.r_clock_ps = 1400.0; r_paths = [ loose; tight ] } in
  let r = Synthesize.run lib rep in
  (match r.Synthesize.s_per_inst with
  | [ (_, _, f, _) ] -> Alcotest.(check bool) "scale below 1" true (f < 1.0)
  | _ -> Alcotest.fail "expected a single instance");
  Alcotest.(check bool) "feasible" true r.Synthesize.s_feasible

let test_synthesize_multi_element_path () =
  let rep = { Synthesize.r_clock_ps = 1500.0; r_paths = [ path [ mul32; add32 ] ] } in
  let r = Synthesize.run lib rep in
  (* 300 + 930 + 350 = 1580 > 1500: both elements scale by the same factor *)
  Alcotest.(check int) "both upsized" 2 r.Synthesize.s_upsized;
  Alcotest.(check bool) "feasible" true r.Synthesize.s_feasible

let suite =
  [
    Alcotest.test_case "cycle detector basics" `Quick test_cycle_detector_basic;
    Alcotest.test_case "cycle detector removal" `Quick test_cycle_detector_remove;
    Alcotest.test_case "cycle detector idempotence" `Quick test_cycle_detector_idempotent;
    QCheck_alcotest.to_alcotest prop_detector_never_cyclic;
    Alcotest.test_case "synthesize: nominal" `Quick test_synthesize_nominal;
    Alcotest.test_case "synthesize: upsizing" `Quick test_synthesize_upsizes;
    Alcotest.test_case "synthesize: infeasible" `Quick test_synthesize_infeasible;
    Alcotest.test_case "synthesize: worst path wins" `Quick test_synthesize_shared_instance_takes_worst;
    Alcotest.test_case "synthesize: multi-element path" `Quick test_synthesize_multi_element_path;
  ]
