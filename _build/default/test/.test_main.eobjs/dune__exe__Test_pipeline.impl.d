test/test_pipeline.ml: Alcotest Binding Hashtbl Hls_core Hls_designs Hls_frontend Hls_techlib List Pipeline QCheck QCheck_alcotest Scheduler String
