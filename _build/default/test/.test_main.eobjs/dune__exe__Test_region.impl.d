test/test_region.ml: Alcotest Dfg Hls_ir Opkind Region
