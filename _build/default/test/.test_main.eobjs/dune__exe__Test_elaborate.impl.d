test/test_elaborate.ml: Alcotest Cdfg Dfg Dsl Elaborate Guard Hls_designs Hls_frontend Hls_ir List Opkind Option Region
