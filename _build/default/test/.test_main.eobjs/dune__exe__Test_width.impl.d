test/test_width.ml: Alcotest Hls_ir QCheck QCheck_alcotest Width
