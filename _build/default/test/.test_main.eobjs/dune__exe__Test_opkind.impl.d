test/test_opkind.ml: Alcotest Hls_ir List Opkind Option QCheck QCheck_alcotest
