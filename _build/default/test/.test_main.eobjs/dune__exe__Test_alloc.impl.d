test/test_alloc.ml: Alcotest Alloc Asap_alap Dfg Guard Hls_core Hls_designs Hls_frontend Hls_ir Hls_techlib List Opkind Option Region
