test/test_graph_algo.ml: Alcotest Fun Graph_algo Hashtbl Hls_ir List Printf QCheck QCheck_alcotest String
