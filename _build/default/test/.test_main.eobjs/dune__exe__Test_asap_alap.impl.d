test/test_asap_alap.ml: Alcotest Asap_alap Dfg Guard Hls_core Hls_ir Hls_techlib List Opkind Option Region
