test/test_scheduler.ml: Alcotest Binding Cdfg Dfg Guard Hashtbl Hls_core Hls_designs Hls_frontend Hls_ir Hls_techlib List Opkind Option Printf Region Scheduler String
