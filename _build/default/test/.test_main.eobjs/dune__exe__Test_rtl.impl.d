test/test_rtl.ml: Alcotest Binding Elaborate Hls_core Hls_designs Hls_frontend Hls_rtl Hls_techlib List Pipeline Scheduler String
