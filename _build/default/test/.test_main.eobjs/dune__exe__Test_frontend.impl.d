test/test_frontend.ml: Alcotest Ast Check Desugar Dsl Hls_designs Hls_frontend List String
