test/test_timing.ml: Alcotest Cycle_detector Fun Gen Hls_ir Hls_techlib Hls_timing List QCheck QCheck_alcotest Synthesize
