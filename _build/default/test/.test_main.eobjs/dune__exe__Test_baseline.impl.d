test/test_baseline.ml: Alcotest Binding Dfg Elaborate Hashtbl Hls_baseline Hls_core Hls_designs Hls_frontend Hls_ir Hls_techlib Hls_timing List Opkind Printf Region
