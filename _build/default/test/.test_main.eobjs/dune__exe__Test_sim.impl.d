test/test_sim.ml: Alcotest Ast Dsl Elaborate Hashtbl Hls_core Hls_designs Hls_frontend Hls_sim Hls_techlib Printf Scheduler
