test/test_binding.ml: Alcotest Binding Dfg Hashtbl Hls_core Hls_ir Hls_techlib Library List Opkind Region Resource Restraint
