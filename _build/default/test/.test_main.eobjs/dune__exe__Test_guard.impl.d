test/test_guard.ml: Alcotest Guard Hls_ir List Option QCheck QCheck_alcotest
