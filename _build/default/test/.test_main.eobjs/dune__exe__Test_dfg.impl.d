test/test_dfg.ml: Alcotest Dfg Guard Hls_ir List Opkind Option
