test/test_opt.ml: Alcotest Ast Cdfg Dfg Dsl Elaborate Hls_core Hls_designs Hls_frontend Hls_ir Hls_opt Hls_sim Hls_techlib List Opkind
