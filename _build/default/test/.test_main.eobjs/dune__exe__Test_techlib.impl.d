test/test_techlib.ml: Alcotest Hls_ir Hls_techlib Library Option Printf QCheck QCheck_alcotest Resource
