test/test_parser.ml: Alcotest Ast Check Desugar Dsl Hls_frontend Hls_sim Lexer List Parser
