test/test_sched_props.ml: Binding Dfg Guard Hashtbl Hls_core Hls_designs Hls_frontend Hls_ir Hls_sim Hls_techlib List Option Pipeline QCheck QCheck_alcotest Region Scheduler
