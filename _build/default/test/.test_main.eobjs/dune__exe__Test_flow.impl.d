test/test_flow.ml: Alcotest Check Desugar Dsl Elaborate Hls_designs Hls_flow Hls_frontend Hls_ir Hls_rtl Hls_sim List
