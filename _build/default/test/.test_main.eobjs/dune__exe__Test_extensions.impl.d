test/test_extensions.ml: Alcotest Binding Cdfg Dfg Dsl Elaborate Hls_core Hls_designs Hls_frontend Hls_ir Hls_rtl Hls_techlib List Opkind Option Pipeline Region Restraint Scheduler String
