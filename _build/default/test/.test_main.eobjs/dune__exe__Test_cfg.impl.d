test/test_cfg.ml: Alcotest Cdfg Cfg Hls_designs Hls_frontend Hls_ir List
