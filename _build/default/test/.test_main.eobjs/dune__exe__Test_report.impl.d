test/test_report.ml: Alcotest Gen Hls_report List QCheck QCheck_alcotest String
