test/test_kernel_sim.ml: Alcotest Ast Elaborate Hls_core Hls_designs Hls_frontend Hls_sim Hls_techlib List Printf Scheduler
