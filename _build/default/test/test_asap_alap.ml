(** Timing-aware ASAP/ALAP: chaining packs steps, spills respect the clock,
    windows and anchors clamp, guards act as dependencies. *)

open Hls_ir
open Hls_core

let lib = Hls_techlib.Library.artisan90

(* read -> mul -> add -> gt chain (the Fig. 8 shape) *)
let chain_region ?(li = 4) () =
  let dfg = Dfg.create () in
  let r = Dfg.add_op dfg (Opkind.Read "a") ~width:32 in
  let m = Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:32 ~name:"m" in
  let a = Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:32 ~name:"a" in
  let g = Dfg.add_op dfg (Opkind.Bin Opkind.Gt) ~width:1 ~name:"g" in
  Dfg.connect dfg ~src:r.Dfg.id ~dst:m.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:m.Dfg.id ~port:1;
  Dfg.connect dfg ~src:m.Dfg.id ~dst:a.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:a.Dfg.id ~port:1;
  Dfg.connect dfg ~src:a.Dfg.id ~dst:g.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:g.Dfg.id ~port:1;
  let region = Region.create ~min_steps:li ~max_steps:li ~name:"chain" dfg in
  (region, r.Dfg.id, m.Dfg.id, a.Dfg.id, g.Dfg.id)

let test_chaining_packs () =
  (* at 1600 ps: mul+add chain fits one step (40+930+350+40 = 1360), gt
     spills to the next (1360+220 at its ALAP estimate without muxes =
     1580+40... the estimator ignores muxes so everything fits step 0) *)
  let region, r, m, a, g = chain_region () in
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  Alcotest.(check int) "read asap 0" 0 (Asap_alap.range aa r).Asap_alap.asap;
  Alcotest.(check int) "mul asap 0" 0 (Asap_alap.range aa m).Asap_alap.asap;
  Alcotest.(check int) "add asap 0 (chains)" 0 (Asap_alap.range aa a).Asap_alap.asap;
  Alcotest.(check int) "gt asap 0 (mux-free estimate fits)" 0 (Asap_alap.range aa g).Asap_alap.asap

let test_spill_on_tight_clock () =
  (* at 1100 ps the mul+add chain no longer fits a single step *)
  let region, _, m, a, _ = chain_region () in
  let aa = Asap_alap.compute ~lib ~clock_ps:1100.0 region in
  Alcotest.(check int) "mul asap 0" 0 (Asap_alap.range aa m).Asap_alap.asap;
  Alcotest.(check bool) "add spills past the mul" true ((Asap_alap.range aa a).Asap_alap.asap >= 1)

let test_alap_bounded_by_li () =
  let region, _, _, _, g = chain_region ~li:3 () in
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  Alcotest.(check bool) "alap <= LI-1" true ((Asap_alap.range aa g).Asap_alap.alap <= 2)

let test_mobility_order () =
  (* upstream ops have at least as much mobility as the sink chain *)
  let region, r, _, _, g = chain_region () in
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  Alcotest.(check bool) "read mobility >= gt mobility" true
    (Asap_alap.mobility aa r >= Asap_alap.mobility aa g - 3)

let test_scc_window_clamps () =
  let region, _, m, _, _ = chain_region () in
  let window id = if id = m then Some (2, 2) else None in
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 ~scc_window:window region in
  let rm = Asap_alap.range aa m in
  Alcotest.(check int) "asap clamped" 2 rm.Asap_alap.asap;
  Alcotest.(check int) "alap clamped" 2 rm.Asap_alap.alap

let test_anchor_clamps_and_infeasible () =
  let region, r, m, _, _ = chain_region () in
  (Dfg.find region.Region.dfg m).Dfg.anchor <- Some 1;
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  Alcotest.(check int) "anchored op pinned" 1 (Asap_alap.range aa m).Asap_alap.asap;
  ignore r;
  (* contradictory anchor + window -> infeasible list *)
  let aa2 =
    Asap_alap.compute ~lib ~clock_ps:1600.0
      ~scc_window:(fun id -> if id = m then Some (3, 3) else None)
      region
  in
  Alcotest.(check bool) "conflict detected" true (List.mem m aa2.Asap_alap.infeasible);
  (Dfg.find region.Region.dfg m).Dfg.anchor <- None

let test_guard_is_dependency () =
  let dfg = Dfg.create () in
  let r = Dfg.add_op dfg (Opkind.Read "a") ~width:32 in
  let c = Dfg.add_op dfg (Opkind.Bin Opkind.Gt) ~width:1 ~name:"cond" in
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c.Dfg.id ~port:1;
  let guarded =
    Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:32
      ~guard:(Option.get (Guard.add Guard.always ~pred:c.Dfg.id ~polarity:true))
  in
  Dfg.connect dfg ~src:r.Dfg.id ~dst:guarded.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:guarded.Dfg.id ~port:1;
  let region = Region.create ~min_steps:4 ~max_steps:4 ~name:"g" dfg in
  let preds = Asap_alap.sched_preds region guarded in
  Alcotest.(check bool) "guard pred is a scheduling dependency" true (List.mem c.Dfg.id preds)

let suite =
  [
    Alcotest.test_case "chaining packs a step" `Quick test_chaining_packs;
    Alcotest.test_case "tight clock spills" `Quick test_spill_on_tight_clock;
    Alcotest.test_case "alap bounded by LI" `Quick test_alap_bounded_by_li;
    Alcotest.test_case "mobility ordering" `Quick test_mobility_order;
    Alcotest.test_case "SCC window clamps" `Quick test_scc_window_clamps;
    Alcotest.test_case "anchors clamp / conflicts flagged" `Quick test_anchor_clamps_and_infeasible;
    Alcotest.test_case "guards are dependencies" `Quick test_guard_is_dependency;
  ]
