(** Initial resource estimation (Section IV.A): the paper's worked counts
    and the sharing-mux bound. *)

open Hls_ir
open Hls_core

let lib = Hls_techlib.Library.artisan90

let analyze ?ii ?(max_latency = 3) () =
  let e = Hls_designs.Example1.elaborated ~max_latency ?ii () in
  let region = Hls_frontend.Elaborate.main_region e in
  Region.reset_steps region region.Region.max_steps;
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  (region, Alloc.run ~lib ~clock_ps:1600.0 region aa)

let count_class alloc rclass =
  List.fold_left
    (fun acc (rt, n, _) -> if rt.Hls_techlib.Resource.rclass = rclass then acc + n else acc)
    0 alloc

let test_example1_sequential () =
  (* "3 multiplies are to be scheduled in at most 3 states, which suggests
     that a single multiplier suffices" *)
  let _, alloc = analyze () in
  Alcotest.(check int) "one multiplier" 1 (count_class alloc Opkind.R_mul);
  Alcotest.(check int) "one adder" 1 (count_class alloc Opkind.R_addsub);
  Alcotest.(check int) "one relational comparator" 1 (count_class alloc Opkind.R_cmp_rel);
  Alcotest.(check int) "one equality comparator" 1 (count_class alloc Opkind.R_cmp_eq)

let test_example1_ii2 () =
  (* Example 2: "Due to edge equivalence ... two mul resources must be
     created" *)
  let _, alloc = analyze ~ii:2 ~max_latency:4 () in
  Alcotest.(check int) "two multipliers" 2 (count_class alloc Opkind.R_mul)

let test_example1_ii1 () =
  (* Example 3: "II=1 makes all the edges equivalent, hence 3 multipliers
     are created in the initial set" *)
  let _, alloc = analyze ~ii:1 ~max_latency:4 () in
  Alcotest.(check int) "three multipliers" 3 (count_class alloc Opkind.R_mul)

let test_exclusivity_counts_once () =
  (* two mutually exclusive ops need one slot *)
  let dfg = Dfg.create () in
  let c = Dfg.add_op dfg (Opkind.Bin Opkind.Gt) ~width:1 in
  let r = Dfg.add_op dfg (Opkind.Read "a") ~width:16 in
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c.Dfg.id ~port:0;
  Dfg.connect dfg ~src:r.Dfg.id ~dst:c.Dfg.id ~port:1;
  let gt = Option.get (Guard.add Guard.always ~pred:c.Dfg.id ~polarity:true) in
  let gf = Option.get (Guard.add Guard.always ~pred:c.Dfg.id ~polarity:false) in
  let m1 = Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:16 ~guard:gt in
  let m2 = Dfg.add_op dfg (Opkind.Bin Opkind.Mul) ~width:16 ~guard:gf in
  List.iter
    (fun m ->
      Dfg.connect dfg ~src:r.Dfg.id ~dst:m.Dfg.id ~port:0;
      Dfg.connect dfg ~src:r.Dfg.id ~dst:m.Dfg.id ~port:1)
    [ m1; m2 ];
  let region = Region.create ~min_steps:1 ~max_steps:1 ~name:"excl" dfg in
  let aa = Asap_alap.compute ~lib ~clock_ps:1600.0 region in
  let alloc = Alloc.run ~lib ~clock_ps:1600.0 region aa in
  Alcotest.(check int) "exclusive muls share one multiplier" 1 (count_class alloc Opkind.R_mul)

let test_exclusive_slot_count () =
  Alcotest.(check int) "empty" 0 (Alloc.exclusive_slot_count []);
  let dfg = Dfg.create () in
  let u1 = Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:8 in
  let u2 = Dfg.add_op dfg (Opkind.Bin Opkind.Add) ~width:8 in
  Alcotest.(check int) "two unguarded need two slots" 2 (Alloc.exclusive_slot_count [ u1; u2 ])

let test_max_share_bound () =
  let rt = { Hls_techlib.Resource.rclass = Opkind.R_mul; in_widths = [ 32; 32 ]; out_width = 32 } in
  let k = Alloc.max_share lib ~clock_ps:1600.0 rt in
  (* budget = 1600-40-930-110-40 = 480 ps of mux -> well over 64 inputs at
     5 ps/extra input; the cap keeps it sane *)
  Alcotest.(check bool) "positive" true (k >= 1);
  (* at a hopeless clock even one op barely fits *)
  let k2 = Alloc.max_share lib ~clock_ps:1000.0 rt in
  Alcotest.(check int) "tight clock allows no sharing" 1 k2

let test_latency_floor () =
  Alcotest.(check int) "floor of 10 ops on 3 insts" 4
    (Alloc.latency_floor [ ({ Hls_techlib.Resource.rclass = Opkind.R_mul; in_widths = []; out_width = 1 }, 3, 10) ]);
  Alcotest.(check int) "empty floor" 1 (Alloc.latency_floor [])

let suite =
  [
    Alcotest.test_case "example1 sequential (1 mul)" `Quick test_example1_sequential;
    Alcotest.test_case "example1 II=2 (2 muls)" `Quick test_example1_ii2;
    Alcotest.test_case "example1 II=1 (3 muls)" `Quick test_example1_ii1;
    Alcotest.test_case "exclusive ops share" `Quick test_exclusivity_counts_once;
    Alcotest.test_case "exclusive slot count" `Quick test_exclusive_slot_count;
    Alcotest.test_case "max share bound" `Quick test_max_share_bound;
    Alcotest.test_case "latency floor" `Quick test_latency_floor;
  ]
