lib/opt/passes.ml: Cdfg Dfg Elaborate Guard Hashtbl Hls_frontend Hls_ir List Opkind Option Printf Width
