lib/opt/passes.mli: Hls_frontend
