(** DFG optimizer (the "optimizer" box of the paper's Fig. 2).

    "The goal of the optimizer is to simplify the DFG and CFG as much as
    possible, by applying standard compiler optimizations, such as constant
    propagation, operand width reduction, operation strength reduction,
    etc."  The passes here:

    - {!constant_fold}: operations whose inputs are all constants are
      replaced by constants (iterated to a fixpoint by {!run});
    - {!simplify}: algebraic identities ([x*1], [x+0], [x&0], [mux(c,a,a)],
      …) and operation strength reduction ([x * 2^k] → [x << k]);
    - {!cse}: structurally identical operations (same kind, inputs and
      guard, within the same scheduling region) are merged;
    - {!dce}: operations with no observable effect are deleted;
    - {!collapse_wires}: chains of width-conversion wires ([sext] of
      [sext], [slice] of [slice], conversions to the producer's own width)
      are collapsed.

    The fork/join-removing branch predication transform of Fig. 4 lives in
    the frontend ({!Hls_frontend.Desugar.balance_if} for wait-bearing
    conditionals, guard attachment in {!Hls_frontend.Elaborate} for
    wait-free ones), because value merging needs elaboration-time variable
    maps.

    Every pass operates on an {!Hls_frontend.Elaborate.t} and keeps its
    region-membership lists consistent. *)

open Hls_ir
open Hls_frontend

type stats = {
  mutable folded : int;
  mutable simplified : int;
  mutable merged : int;
  mutable deleted : int;
  mutable collapsed : int;
  mutable narrowed : int;
}

let new_stats () =
  { folded = 0; simplified = 0; merged = 0; deleted = 0; collapsed = 0; narrowed = 0 }

let total s = s.folded + s.simplified + s.merged + s.deleted + s.collapsed + s.narrowed

(* membership bookkeeping -------------------------------------------------- *)

type env = {
  elab : Elaborate.t;
  dfg : Dfg.t;
  member_of : (int, [ `Pre | `Loop | `Post ]) Hashtbl.t;
  mutable extra : (int * [ `Pre | `Loop | `Post ]) list;  (** ops added by passes *)
  mutable removed : (int, unit) Hashtbl.t;
}

let make_env (elab : Elaborate.t) =
  let member_of = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace member_of id `Pre) elab.Elaborate.pre_members;
  (match elab.Elaborate.loop with
  | Some li -> List.iter (fun id -> Hashtbl.replace member_of id `Loop) li.Elaborate.li_members
  | None -> ());
  List.iter (fun id -> Hashtbl.replace member_of id `Post) elab.Elaborate.post_members;
  { elab; dfg = elab.Elaborate.cdfg.Cdfg.dfg; member_of; extra = []; removed = Hashtbl.create 16 }

let region_of env id = Hashtbl.find_opt env.member_of id

(** Rebuild the [Elaborate.t] membership lists after passes ran. *)
let commit env : Elaborate.t =
  List.iter (fun (id, r) -> Hashtbl.replace env.member_of id r) env.extra;
  Hashtbl.iter (fun id () -> Hashtbl.remove env.member_of id) env.removed;
  let members r =
    Hashtbl.fold (fun id r' acc -> if r' = r && Dfg.mem env.dfg id then id :: acc else acc)
      env.member_of []
    |> List.sort compare
  in
  let elab = env.elab in
  {
    elab with
    Elaborate.pre_members = members `Pre;
    loop =
      Option.map (fun li -> { li with Elaborate.li_members = members `Loop }) elab.Elaborate.loop;
    post_members = members `Post;
  }

(** Replace every use of [old_id] by [by], remove [old_id].  The
    replacement inherits the victim's CFG attachment when it has none of
    its own (ops created by the passes). *)
let subsume env ~old_id ~by =
  (match (Cdfg.attachment env.elab.Elaborate.cdfg old_id,
          Cdfg.attachment env.elab.Elaborate.cdfg by) with
  | Some edge, None -> Cdfg.attach env.elab.Elaborate.cdfg ~op:by ~edge
  | _ -> ());
  Dfg.replace_uses env.dfg ~old_id ~by;
  Dfg.remove_op env.dfg old_id;
  Hashtbl.replace env.removed old_id ()

(* side-effect / liveness roots ------------------------------------------- *)

let is_root env (op : Dfg.op) =
  match op.Dfg.kind with
  | Opkind.Write _ -> true
  | _ -> (
      let used_as_cond id =
        match env.elab.Elaborate.loop with
        | Some li ->
            li.Elaborate.li_continue = Some id
            || li.Elaborate.li_stall = Some id
            || List.exists (fun (_, m) -> m = id) li.Elaborate.li_carried
        | None -> false
      in
      used_as_cond op.Dfg.id)

(* passes ------------------------------------------------------------------ *)

let constant_fold env stats =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (op : Dfg.op) ->
        if Dfg.mem env.dfg op.Dfg.id && Guard.is_always op.Dfg.guard then
          match op.Dfg.kind with
          | Opkind.Const _ | Opkind.Read _ | Opkind.Write _ | Opkind.Loop_mux | Opkind.Call _ -> ()
          | kind -> (
              let ins = Dfg.in_edges env.dfg op.Dfg.id in
              let const_in e =
                match (Dfg.find env.dfg e.Dfg.src).Dfg.kind with
                | Opkind.Const n -> Some n
                | _ -> None
              in
              match List.map const_in ins with
              | args when args <> [] && List.for_all Option.is_some args -> (
                  let args = List.map Option.get args in
                  match Opkind.eval_pure kind args with
                  | Some v ->
                      let v = Width.truncate ~width:op.Dfg.width v in
                      let c =
                        Dfg.add_op env.dfg (Opkind.Const v)
                          ~width:(max op.Dfg.width (Width.bits_for_signed v))
                          ~name:(Printf.sprintf "c%d" v)
                      in
                      (match region_of env op.Dfg.id with
                      | Some r -> env.extra <- (c.Dfg.id, r) :: env.extra
                      | None -> ());
                      subsume env ~old_id:op.Dfg.id ~by:c.Dfg.id;
                      stats.folded <- stats.folded + 1;
                      changed := true
                  | None -> ())
              | _ -> ()))
      (Dfg.ops env.dfg)
  done

let simplify env stats =
  let const_of id =
    match (Dfg.find env.dfg id).Dfg.kind with Opkind.Const n -> Some n | _ -> None
  in
  let is_pow2 n = n > 0 && n land (n - 1) = 0 in
  let log2 n =
    let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
    go 0 n
  in
  List.iter
    (fun (op : Dfg.op) ->
      if Dfg.mem env.dfg op.Dfg.id then
        let ins = Dfg.in_edges env.dfg op.Dfg.id in
        let input i = List.nth_opt ins i in
        let src i = Option.map (fun e -> e.Dfg.src) (input i) in
        let redirect_to id =
          subsume env ~old_id:op.Dfg.id ~by:id;
          stats.simplified <- stats.simplified + 1
        in
        match (op.Dfg.kind, src 0, src 1) with
        | Opkind.Bin Opkind.Mul, Some a, Some b -> (
            match (const_of a, const_of b) with
            | Some 1, _ -> redirect_to b
            | _, Some 1 -> redirect_to a
            | Some 0, _ | _, Some 0 ->
                let c = Dfg.add_op env.dfg (Opkind.Const 0) ~width:1 ~name:"c0" in
                (match region_of env op.Dfg.id with
                | Some r -> env.extra <- (c.Dfg.id, r) :: env.extra
                | None -> ());
                redirect_to c.Dfg.id
            | _, Some n when is_pow2 n && Guard.is_always op.Dfg.guard ->
                (* strength reduction: x * 2^k -> x << k *)
                let k = log2 n in
                let sh =
                  Dfg.add_op env.dfg (Opkind.Bin Opkind.Shl) ~width:op.Dfg.width
                    ~guard:op.Dfg.guard ~name:(Printf.sprintf "shl%d" k)
                in
                let kc = Dfg.add_op env.dfg (Opkind.Const k) ~width:(Width.bits_for_signed k) ~name:"shamt" in
                Dfg.connect env.dfg ~src:a ~dst:sh.Dfg.id ~port:0;
                Dfg.connect env.dfg ~src:kc.Dfg.id ~dst:sh.Dfg.id ~port:1;
                (match Cdfg.attachment env.elab.Elaborate.cdfg op.Dfg.id with
                | Some edge -> Cdfg.attach env.elab.Elaborate.cdfg ~op:kc.Dfg.id ~edge
                | None -> ());
                (match region_of env op.Dfg.id with
                | Some r ->
                    env.extra <- (sh.Dfg.id, r) :: (kc.Dfg.id, r) :: env.extra
                | None -> ());
                redirect_to sh.Dfg.id
            | _ -> ())
        | Opkind.Bin Opkind.Add, Some a, Some b -> (
            match (const_of a, const_of b) with
            | Some 0, _ -> redirect_to b
            | _, Some 0 -> redirect_to a
            | _ -> ())
        | Opkind.Bin Opkind.Sub, Some a, Some b -> (
            match const_of b with
            | Some 0 -> redirect_to a
            | _ -> if a = b then () (* x - x: folded only when widths align; skip *))
        | Opkind.Bin Opkind.Band, Some _, Some b -> (
            match const_of b with Some 0 -> redirect_to b | _ -> ())
        | Opkind.Bin Opkind.Bor, Some a, Some b -> (
            match (const_of a, const_of b) with
            | Some 0, _ -> redirect_to b
            | _, Some 0 -> redirect_to a
            | _ -> ())
        | Opkind.Mux, _, Some a -> (
            (* mux(c, a, a) -> a *)
            match src 2 with
            | Some b when a = b -> redirect_to a
            | _ -> ())
        | _ -> ())
    (Dfg.ops env.dfg)

let cse env stats =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (op : Dfg.op) ->
      if Dfg.mem env.dfg op.Dfg.id then
        match op.Dfg.kind with
        | Opkind.Read _ | Opkind.Write _ | Opkind.Loop_mux | Opkind.Call _ -> ()
        | kind ->
            let ins =
              List.map (fun e -> (e.Dfg.port, e.Dfg.src, e.Dfg.distance)) (Dfg.in_edges env.dfg op.Dfg.id)
            in
            let key = (kind, ins, op.Dfg.guard, region_of env op.Dfg.id, op.Dfg.width) in
            (match Hashtbl.find_opt seen key with
            | Some keeper when keeper <> op.Dfg.id ->
                subsume env ~old_id:op.Dfg.id ~by:keeper;
                stats.merged <- stats.merged + 1
            | Some _ -> ()
            | None -> Hashtbl.replace seen key op.Dfg.id))
    (Dfg.ops env.dfg)

let dce env stats =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (op : Dfg.op) ->
        if
          Dfg.mem env.dfg op.Dfg.id
          && (not (is_root env op))
          && Dfg.out_edges env.dfg op.Dfg.id = []
          && (* not used as a guard predicate anywhere *)
          not
            (List.exists
               (fun o -> List.mem op.Dfg.id (Guard.preds o.Dfg.guard))
               (Dfg.ops env.dfg))
        then begin
          Dfg.remove_op env.dfg op.Dfg.id;
          Hashtbl.replace env.removed op.Dfg.id ();
          stats.deleted <- stats.deleted + 1;
          changed := true
        end)
      (Dfg.ops env.dfg)
  done

let collapse_wires env stats =
  List.iter
    (fun (op : Dfg.op) ->
      if Dfg.mem env.dfg op.Dfg.id then
        match (op.Dfg.kind, Dfg.in_edges env.dfg op.Dfg.id) with
        | (Opkind.Sext w, [ e ]) when e.Dfg.distance = 0 ->
            let p = Dfg.find env.dfg e.Dfg.src in
            if p.Dfg.width = w then begin
              (* conversion to the producer's own width *)
              subsume env ~old_id:op.Dfg.id ~by:p.Dfg.id;
              stats.collapsed <- stats.collapsed + 1
            end
        | (Opkind.Slice (hi, lo), [ e ]) when e.Dfg.distance = 0 ->
            let p = Dfg.find env.dfg e.Dfg.src in
            if lo = 0 && hi = p.Dfg.width - 1 then begin
              subsume env ~old_id:op.Dfg.id ~by:p.Dfg.id;
              stats.collapsed <- stats.collapsed + 1
            end
        | _ -> ())
    (Dfg.ops env.dfg)

(* Operand width reduction (named explicitly by the paper's optimizer
   list).  Backward demand analysis: the low [w] result bits of the
   truncating arithmetic operations depend only on the low [w] bits of
   their operands, so a producer whose every consumer uses at most [w]
   low bits can shrink to [w].  Order-sensitive consumers (comparisons,
   shifts, sign extensions, mux selects, guards, loop-carried reads,
   region-crossing uses) demand the full width. *)
let width_reduce env stats =
  let demands = Hashtbl.create 64 in
  let full_demand = Hashtbl.create 64 in
  let note id bits =
    let cur = Option.value (Hashtbl.find_opt demands id) ~default:0 in
    if bits > cur then Hashtbl.replace demands id bits
  in
  let guard_preds = Hashtbl.create 16 in
  List.iter
    (fun (o : Dfg.op) ->
      List.iter (fun p -> Hashtbl.replace guard_preds p ()) (Guard.preds o.Dfg.guard))
    (Dfg.ops env.dfg);
  List.iter
    (fun (op : Dfg.op) ->
      List.iter
        (fun e ->
          let src = e.Dfg.src in
          if e.Dfg.distance > 0 then Hashtbl.replace full_demand src ()
          else
            match op.Dfg.kind with
            | Opkind.Bin (Opkind.Add | Opkind.Sub | Opkind.Mul | Opkind.Band | Opkind.Bor | Opkind.Bxor) ->
                note src op.Dfg.width
            | Opkind.Slice (hi, _) -> note src (hi + 1)
            | Opkind.Write _ -> note src op.Dfg.width
            | Opkind.Mux when e.Dfg.port > 0 -> note src op.Dfg.width
            | _ -> Hashtbl.replace full_demand src ())
        (Dfg.in_edges env.dfg op.Dfg.id))
    (Dfg.ops env.dfg);
  List.iter
    (fun (op : Dfg.op) ->
      if
        (not (Hashtbl.mem full_demand op.Dfg.id))
        && (not (Hashtbl.mem guard_preds op.Dfg.id))
        && (not (is_root env op))
        && Dfg.out_edges env.dfg op.Dfg.id <> []
      then
        match op.Dfg.kind with
        | Opkind.Bin (Opkind.Add | Opkind.Sub | Opkind.Mul | Opkind.Band | Opkind.Bor | Opkind.Bxor) -> (
            match Hashtbl.find_opt demands op.Dfg.id with
            | Some d when d < op.Dfg.width && d >= 1 ->
                op.Dfg.width <- d;
                stats.narrowed <- stats.narrowed + 1
            | _ -> ())
        | _ -> ())
    (Dfg.ops env.dfg)

(** Run all passes to a (bounded) fixpoint; returns the updated elaboration
    and cumulative statistics. *)
let run ?(max_rounds = 8) (elab : Elaborate.t) : Elaborate.t * stats =
  let stats = new_stats () in
  let env = ref (make_env elab) in
  let rec go round last_total =
    constant_fold !env stats;
    simplify !env stats;
    collapse_wires !env stats;
    cse !env stats;
    dce !env stats;
    width_reduce !env stats;
    let elab' = commit !env in
    if total stats > last_total && round < max_rounds then begin
      env := make_env elab';
      go (round + 1) (total stats)
    end
    else elab'
  in
  let elab' = go 1 0 in
  (elab', stats)
