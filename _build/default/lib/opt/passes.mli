(** DFG optimizer (the "optimizer" box of the paper's Fig. 2): constant
    folding, algebraic simplification and strength reduction, CSE, DCE and
    width-conversion wire collapsing, iterated to a fixpoint.  Passes
    operate on an {!Hls_frontend.Elaborate.t} and keep its
    region-membership lists and CFG attachments consistent.

    (Predicate conversion itself lives in the frontend — join-mux
    insertion needs elaboration-time variable maps.) *)

type stats = {
  mutable folded : int;
  mutable simplified : int;
  mutable merged : int;
  mutable deleted : int;
  mutable collapsed : int;
  mutable narrowed : int;  (** ops shrunk by operand width reduction *)
}

val total : stats -> int

val run : ?max_rounds:int -> Hls_frontend.Elaborate.t -> Hls_frontend.Elaborate.t * stats
