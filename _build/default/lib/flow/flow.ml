(** End-to-end HLS flow: elaborate → schedule+bind → fold → area/power →
    functional verification.

    One call to {!run} performs what the paper's Fig. 2 tool flow does for
    one micro-architectural configuration, and returns everything the
    evaluation section reports: the schedule, the folded pipeline, the area
    breakdown (post-synthesis sized), the activity-based power estimate,
    the delay point (II × Tclk — the inverse-throughput axis of Figures 10
    and 11), and a functional-equivalence verdict against the behavioural
    golden model. *)

open Hls_ir
open Hls_frontend
open Hls_core

type options = {
  lib : Hls_techlib.Library.t;
  clock_ps : float;
  ii : int option;  (** pipeline with this initiation interval *)
  min_latency : int option;  (** override the loop's latency bounds *)
  max_latency : int option;
  sched : Scheduler.options;
  verify : bool;  (** run the simulators and check equivalence *)
  sim_iters : int;
  seed : int;
}

let default_options =
  {
    lib = Hls_techlib.Library.artisan90;
    clock_ps = 1600.0;
    ii = None;
    min_latency = None;
    max_latency = None;
    sched = Scheduler.default_options;
    verify = true;
    sim_iters = 100;
    seed = 1;
  }

type t = {
  f_design : Ast.design;
  f_elab : Elaborate.t;
  f_region : Region.t;
  f_sched : Scheduler.t;
  f_fold : Pipeline.t;
  f_area : Hls_rtl.Stats.breakdown;
  f_power_mw : float;
  f_equiv : Hls_sim.Equiv.verdict option;
  f_cycles_per_iter : int;  (** steady-state initiation interval *)
  f_delay_ps : float;  (** inverse throughput: II * Tclk *)
  f_clock_ps : float;
}

type error = { err_phase : string; err_message : string }

let err phase fmt = Printf.ksprintf (fun m -> Error { err_phase = phase; err_message = m }) fmt

(** Run the flow on a design.  Elaboration is always fresh (scheduling
    mutates speculation flags and the region latency), so one [Ast.design]
    value can be explored under many configurations. *)
let run ?(options = default_options) ?trace (design : Ast.design) : (t, error) Stdlib.result =
  match Elaborate.design design with
  | exception Hls_frontend.Desugar.Error m -> err "frontend" "%s" m
  | elab -> (
      let region =
        Elaborate.main_region ?ii:options.ii ?min_latency:options.min_latency
          ?max_latency:options.max_latency elab
      in
      (match Cdfg.validate elab.Elaborate.cdfg with
      | [] -> Ok ()
      | errs -> err "elaborate" "invalid CDFG: %s" (String.concat "; " errs))
      |> function
      | Error e -> Error e
      | Ok () -> (
          match
            Scheduler.schedule ~opts:options.sched ?trace ~lib:options.lib
              ~clock_ps:options.clock_ps region
          with
          | Error e ->
              err "schedule" "%s (after %d passes: %s)" e.Scheduler.e_message e.Scheduler.e_passes
                (String.concat " / " e.Scheduler.e_actions)
          | Ok sched -> (
              let fold = Pipeline.fold sched in
              match Pipeline.validate sched fold with
              | _ :: _ as errs -> err "fold" "folding invariants violated: %s" (String.concat "; " errs)
              | [] ->
                  let io_widths = List.map snd (design.Ast.d_ins @ design.Ast.d_outs) in
                  let area = Hls_rtl.Stats.area ~io_widths sched in
                  let equiv, activity, iters =
                    if options.verify then begin
                      let stim =
                        Hls_sim.Stimulus.small_random ~seed:options.seed ~n_iters:options.sim_iters
                          ~ports:design.Ast.d_ins
                      in
                      let golden = Hls_sim.Behav.run design stim in
                      let sim = Hls_sim.Schedule_sim.run elab sched stim in
                      let v = Hls_sim.Equiv.check ~out_ports:design.Ast.d_outs golden sim in
                      (Some v, Some sim.Hls_sim.Schedule_sim.r_exec_counts, sim.Hls_sim.Schedule_sim.r_iters)
                    end
                    else (None, None, 1)
                  in
                  let power =
                    Hls_rtl.Stats.power ?activity ~iters sched area ~clock_ps:options.clock_ps
                  in
                  let ii = Region.ii region in
                  Ok
                    {
                      f_design = design;
                      f_elab = elab;
                      f_region = region;
                      f_sched = sched;
                      f_fold = fold;
                      f_area = area;
                      f_power_mw = power;
                      f_equiv = equiv;
                      f_cycles_per_iter = ii;
                      f_delay_ps = float_of_int ii *. options.clock_ps;
                      f_clock_ps = options.clock_ps;
                    })))

(** Convenience: run and raise on error (used by examples and benches). *)
let run_exn ?options ?trace design =
  match run ?options ?trace design with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "[%s] %s" e.err_phase e.err_message)

let summary (r : t) =
  Printf.sprintf "%s: LI=%d II=%d clock=%.0fps delay=%.0fps area=%.0f power=%.2fmW%s" r.f_design.Ast.d_name
    r.f_sched.Scheduler.s_li r.f_cycles_per_iter r.f_clock_ps r.f_delay_ps r.f_area.Hls_rtl.Stats.a_total
    r.f_power_mw
    (match r.f_equiv with
    | Some v when v.Hls_sim.Equiv.equivalent -> " [verified]"
    | Some _ -> " [MISMATCH]"
    | None -> "")
