(** End-to-end HLS flow: elaborate → schedule+bind → fold → area/power →
    functional verification — one call per micro-architectural
    configuration, returning everything the paper's evaluation reports. *)

open Hls_frontend

type options = {
  lib : Hls_techlib.Library.t;
  clock_ps : float;
  ii : int option;  (** pipeline with this initiation interval *)
  min_latency : int option;
  max_latency : int option;
  sched : Hls_core.Scheduler.options;
  verify : bool;  (** simulate and check equivalence *)
  sim_iters : int;
  seed : int;
}

val default_options : options

type t = {
  f_design : Ast.design;
  f_elab : Elaborate.t;
  f_region : Hls_ir.Region.t;
  f_sched : Hls_core.Scheduler.t;
  f_fold : Hls_core.Pipeline.t;
  f_area : Hls_rtl.Stats.breakdown;
  f_power_mw : float;
  f_equiv : Hls_sim.Equiv.verdict option;
  f_cycles_per_iter : int;  (** steady-state initiation interval *)
  f_delay_ps : float;  (** inverse throughput, II × Tclk (Figs. 10/11 x-axis) *)
  f_clock_ps : float;
}

type error = { err_phase : string; err_message : string }

val run : ?options:options -> ?trace:Hls_core.Trace.t -> Ast.design -> (t, error) result
(** Elaboration is always fresh, so one design value can be explored under
    many configurations. *)

val run_exn : ?options:options -> ?trace:Hls_core.Trace.t -> Ast.design -> t
val summary : t -> string
