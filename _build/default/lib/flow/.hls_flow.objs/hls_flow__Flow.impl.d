lib/flow/flow.ml: Ast Cdfg Elaborate Hls_core Hls_frontend Hls_ir Hls_rtl Hls_sim Hls_techlib List Pipeline Printf Region Scheduler Stdlib String
