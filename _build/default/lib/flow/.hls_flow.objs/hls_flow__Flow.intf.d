lib/flow/flow.mli: Ast Elaborate Hls_core Hls_frontend Hls_ir Hls_rtl Hls_sim Hls_techlib
