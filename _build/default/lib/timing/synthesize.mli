(** Downstream logic-synthesis model: turn a post-scheduling timing report
    into a final timing-feasible area.  Negative slack — which only the
    Table 4 ablation and the timing-naive baselines produce — is absorbed
    by speeding every resource on the violating path along the library's
    delay–area curve ("compensated by larger area during subsequent logic
    synthesis"). *)

open Hls_techlib

type path_elem = { pe_inst : int; pe_rtype : Resource.t; pe_nominal : float }

type path = {
  p_endpoint : string;  (** the registered op ending the path *)
  p_step : int;
  p_fixed : float;  (** unscalable ps: clock-to-q, muxes, setup *)
  p_elems : path_elem list;
}

type report = { r_clock_ps : float; r_paths : path list }

type result = {
  s_area : float;  (** total post-synthesis resource area *)
  s_per_inst : (int * Resource.t * float * float) list;
      (** instance, type, delay scale applied, final area *)
  s_wns : float;  (** residual worst negative slack (0 = met) *)
  s_feasible : bool;
  s_upsized : int;
}

val path_nominal : path -> float
val path_slack : clock:float -> path -> scale:(int -> float) -> float
val run : Library.t -> report -> result
