lib/timing/synthesize.ml: Hashtbl Hls_techlib Library List Resource
