lib/timing/cycle_detector.ml: Hashtbl Hls_ir List
