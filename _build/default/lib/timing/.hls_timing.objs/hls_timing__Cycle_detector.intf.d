lib/timing/cycle_detector.mli: Hashtbl
