lib/timing/synthesize.mli: Hls_techlib Library Resource
