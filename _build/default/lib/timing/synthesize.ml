(** Downstream logic-synthesis model: turn a post-scheduling timing report
    into a final, timing-feasible area figure.

    The scheduler normally produces bindings with non-negative slack, so
    every resource keeps its nominal area.  When a schedule carries
    negative slack — which happens exactly in the paper's Table 4 ablation,
    where the timing-driven SCC-move action is disabled — logic synthesis
    must "compensate by larger area": each resource on a violating path is
    sped up along the library's delay–area sizing curve until the path
    meets the clock (or the curve's fastest point is reached, leaving a
    residual violation).

    Paths are reported by the scheduler as a fixed (unscalable) component —
    launch clock-to-q, sharing muxes, setup — plus the chain of resource
    instances with their nominal delays.  Sizing scales all resources on a
    violating path by a common factor, and a resource on several paths
    takes the most demanding factor. *)

open Hls_techlib

type path_elem = { pe_inst : int; pe_rtype : Resource.t; pe_nominal : float }

type path = {
  p_endpoint : string;  (** diagnostic: the registered op that ends the path *)
  p_step : int;
  p_fixed : float;  (** ps of unscalable delay on the path *)
  p_elems : path_elem list;
}

type report = { r_clock_ps : float; r_paths : path list }

type result = {
  s_area : float;  (** total post-synthesis resource area *)
  s_per_inst : (int * Resource.t * float * float) list;
      (** instance, type, delay scale factor applied, final area *)
  s_wns : float;  (** worst negative slack remaining (0 when all paths met) *)
  s_feasible : bool;
  s_upsized : int;  (** number of instances that needed speeding up *)
}

let path_nominal p = List.fold_left (fun acc e -> acc +. e.pe_nominal) 0.0 p.p_elems

let path_slack ~clock p ~scale =
  let d = List.fold_left (fun acc e -> acc +. (e.pe_nominal *. scale e.pe_inst)) 0.0 p.p_elems in
  clock -. (p.p_fixed +. d)

(** Run the sizing model.  [lib] provides the per-resource sizing curve. *)
let run (lib : Library.t) (rep : report) : result =
  (* collect every instance with its type and nominal delay *)
  let insts = Hashtbl.create 16 in
  List.iter
    (fun p -> List.iter (fun e -> Hashtbl.replace insts e.pe_inst e.pe_rtype) p.p_elems)
    rep.r_paths;
  (* demanded scale factor per instance: min over violating paths *)
  let factor = Hashtbl.create 16 in
  Hashtbl.iter (fun i _ -> Hashtbl.replace factor i 1.0) insts;
  List.iter
    (fun p ->
      let nominal = path_nominal p in
      let available = rep.r_clock_ps -. p.p_fixed in
      if nominal > available && nominal > 0.0 then begin
        let f = max lib.Library.min_delay_factor (available /. nominal) in
        List.iter
          (fun e ->
            let cur = Hashtbl.find factor e.pe_inst in
            if f < cur then Hashtbl.replace factor e.pe_inst f)
          p.p_elems
      end)
    rep.r_paths;
  let per_inst =
    Hashtbl.fold
      (fun i rt acc ->
        let f = Hashtbl.find factor i in
        let nominal_delay = Library.delay lib rt in
        let required = f *. nominal_delay in
        let area =
          match Library.area_for_delay lib rt ~required with
          | Some a -> a
          | None -> (
              (* fastest sizing: area at the curve's end point *)
              match Library.area_for_delay lib rt ~required:(Library.min_delay lib rt) with
              | Some a -> a
              | None -> Library.area lib rt)
        in
        (i, rt, f, area) :: acc)
      insts []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  in
  let scale i = Hashtbl.find factor i in
  let wns =
    List.fold_left (fun acc p -> min acc (path_slack ~clock:rep.r_clock_ps p ~scale)) 0.0 rep.r_paths
  in
  {
    s_area = List.fold_left (fun acc (_, _, _, a) -> acc +. a) 0.0 per_inst;
    s_per_inst = per_inst;
    s_wns = wns;
    s_feasible = wns >= -1e-9;
    s_upsized = List.length (List.filter (fun (_, _, f, _) -> f < 0.999) per_inst);
  }
