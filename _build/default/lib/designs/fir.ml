(** N-tap FIR filter with constant coefficients.

    One main-loop iteration consumes one input sample and produces one
    output sample:

    {v
      acc = c0*x + c1*z1 + c2*z2 + ... + c(N-1)*z(N-1);
      z(N-1) = z(N-2); ...; z1 = x;
      y = acc;
    v}

    The delay line [z1 .. z(N-1)] is loop-carried, giving N-1 registers and
    a multiplier-rich body — the classic pipelining workload of the paper's
    evaluation ("filters, FFTs, image processing algorithms"). *)

open Hls_frontend

let default_coeffs taps = List.init taps (fun i -> ((i * 7) mod 15) - 7)

(** Build a [taps]-tap FIR design.  [width] is the sample width. *)
let design ?(taps = 8) ?coeffs ?(width = 16) ?(min_latency = 1) ?(max_latency = 16) ?ii () =
  let coeffs = Option.value coeffs ~default:(default_coeffs taps) in
  if List.length coeffs <> taps then invalid_arg "Fir.design: coefficient count mismatch";
  let z i = Printf.sprintf "z%d" i in
  let open Dsl in
  let products =
    List.mapi
      (fun i c ->
        let x = if i = 0 then v "x" else v (z i) in
        int c *: x)
      coeffs
  in
  let sum = match products with [] -> int 0 | p :: ps -> List.fold_left ( +: ) p ps in
  let shifts =
    (* update from the oldest tap downward so each assignment reads the
       previous iteration's value *)
    List.init (taps - 1) (fun k ->
        let i = taps - 1 - k in
        if i = 1 then z 1 := v "x" else z i := v (z (i - 1)))
  in
  let init = List.init (taps - 1) (fun i -> z (i + 1) := int 0) in
  let body =
    ("x" := port "sample") :: ("acc" := sum)
    :: (shifts @ [ wait; write "filtered" (v "acc") ])
  in
  design
    (Printf.sprintf "fir%d" taps)
    ~ins:[ in_port "sample" width ]
    ~outs:[ out_port "filtered" (width + 8) ]
    ~vars:(("x", width) :: ("acc", width + 8) :: List.init (taps - 1) (fun i -> (z (i + 1), width)))
    (init @ [ wait; do_while ~name:"fir" ?ii ~min_latency ~max_latency body (int 1) ])

let elaborated ?taps ?coeffs ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?taps ?coeffs ?width ?min_latency ?max_latency ?ii ())
