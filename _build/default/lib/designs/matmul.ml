(** Streaming matrix–vector multiply: one [n]-element dot-product row per
    iteration, with the vector held in loop-carried registers and refreshed
    through a rotating write index.

    The dot product is emitted fully flattened — the form an unrolled
    inner loop reaches after the frontend's mandatory unrolling ("nested
    loops must either be unrolled or correspond to the stalling of the
    pipeline").  The result is a wide multiply–add tree whose resource
    demand scales with [n], a good stress for the initial allocator and
    the sharing machinery. *)

open Hls_frontend

let design ?(n = 4) ?(width = 12) ?(min_latency = 1) ?(max_latency = 32) ?ii () =
  let open Dsl in
  let v_i i = Printf.sprintf "v%d" i in
  let acc_term i = v (v_i i) *: port (Printf.sprintf "row%d" i) in
  let sum =
    match List.init n acc_term with
    | [] -> int 0
    | t :: ts -> List.fold_left ( +: ) t ts
  in
  let body =
    (* rotate one fresh vector element in per iteration *)
    List.init (n - 1) (fun i -> v_i i := v (v_i (i + 1)))
    @ [
        v_i (n - 1) := port "vec_in";
        (* the flattened dot product *)
        "acc" := sum;
        wait;
        write "dot" (v "acc");
      ]
  in
  design
    (Printf.sprintf "matvec%d" n)
    ~ins:(in_port "vec_in" width :: List.init n (fun i -> in_port (Printf.sprintf "row%d" i) width))
    ~outs:[ out_port "dot" ((2 * width) + 4) ]
    ~vars:(var "acc" ((2 * width) + 4) :: List.init n (fun i -> var (v_i i) width))
    (List.init n (fun i -> v_i i := int 0)
    @ [ wait; do_while ~name:"matvec" ?ii ~min_latency ~max_latency body (int 1) ])

let elaborated ?n ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?n ?width ?min_latency ?max_latency ?ii ())
