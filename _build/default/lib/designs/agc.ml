(** Automatic-gain-control style kernels: a leaky accumulator with a
    conditional, non-power-of-two rescale, fed by a configurable
    multiplier chain.

    {v
      p    = ((x * k1) * k2 ...) ;          // producer chain, depth muls
      acc += p;
      if (acc > th) acc = (acc * gain) >> sh;   // the SCC's multiplier
      y    = acc;
    v}

    This is the paper's "timing-critical pipelined design" shape in the
    small: the accumulator SCC contains a real multiplication (like
    Example 1's conditional rescale), and the producer chain makes the
    first pipeline stage timing-hostile — exactly the situation where the
    time-driven SCC-move heuristic of Table 4 earns its area back. *)

open Hls_frontend

let design ?(name = "agc") ?(width = 16) ?(depth = 1) ?(gain = 3) ?(shift = 0)
    ?(min_latency = 1) ?(max_latency = 12) ?ii () =
  let open Dsl in
  let rec chain k e = if k = 0 then e else chain (k - 1) (e *: int (2 + k)) in
  let rescale e = if shift = 0 then e *: int gain else e *: int gain >>: int shift in
  let body =
    [
      "x" := port "sample";
      "p" := chain depth (v "x");
      "acc" := v "acc" +: v "p";
      when_ (v "acc" >: port "limit") [ "acc" := rescale (v "acc") ];
      wait;
      write "level" (v "acc");
    ]
  in
  design name
    ~ins:[ in_port "sample" width; in_port "limit" (width + 8) ]
    ~outs:[ out_port "level" (width + 8) ]
    ~vars:[ var "x" width; var "p" (width + 8); var "acc" (width + 8) ]
    [ "acc" := int 0; wait; do_while ~name:(name ^ "_loop") ?ii ~min_latency ~max_latency body (int 1) ]

let elaborated ?name ?width ?depth ?gain ?shift ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?name ?width ?depth ?gain ?shift ?min_latency ?max_latency ?ii ())
