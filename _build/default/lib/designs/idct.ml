(** 8-point one-dimensional IDCT (Chen/Wang even–odd decomposition), the
    design of the paper's Section VI exploration ("an IDCT algorithm used
    in video decoding").

    Each main-loop iteration transforms one 8-coefficient column: it reads
    the eight spectral inputs, runs the even/odd butterfly network (sixteen
    constant multiplications, ~29 additions on 14.12 fixed point) and
    writes the eight spatial outputs.  Latency can be swept from a handful
    of states (many parallel multipliers) to dozens (a single shared
    multiplier), with or without pipelining — exactly the 25-run design
    space of Figures 10 and 11. *)

open Hls_frontend

(* cos(k*pi/16) scaled by 2^12 *)
let c1 = 4017
let c2 = 3784
let c3 = 3406
let c4 = 2896
let c5 = 2276
let c6 = 1567
let c7 = 799

let fx = 12 (* fixed-point fraction bits *)

let design ?(width = 16) ?(min_latency = 2) ?(max_latency = 40) ?ii () =
  let open Dsl in
  let inp i = Printf.sprintf "s%d" i in
  let out i = Printf.sprintf "d%d" i in
  let scale e = e >>: int fx in
  let body =
    (* load the column *)
    List.init 8 (fun i -> Printf.sprintf "x%d" i := port (inp i))
    @ [
        (* even part *)
        "e0" := scale (int c4 *: (v "x0" +: v "x4"));
        "e1" := scale (int c4 *: (v "x0" -: v "x4"));
        "e2" := scale ((int c2 *: v "x2") +: (int c6 *: v "x6"));
        "e3" := scale ((int c6 *: v "x2") -: (int c2 *: v "x6"));
        "f0" := v "e0" +: v "e2";
        "f1" := v "e1" +: v "e3";
        "f2" := v "e1" -: v "e3";
        "f3" := v "e0" -: v "e2";
        (* odd part *)
        "o0" := scale ((int c1 *: v "x1") +: (int c7 *: v "x7"));
        "o1" := scale ((int c3 *: v "x3") +: (int c5 *: v "x5"));
        "o2" := scale ((int c3 *: v "x5") -: (int c5 *: v "x3"));
        "o3" := scale ((int c1 *: v "x7") -: (int c7 *: v "x1"));
        "g0" := v "o0" +: v "o1";
        "g1" := v "o0" -: v "o1";
        "g2" := v "o3" +: v "o2";
        "g3" := v "o3" -: v "o2";
        "h1" := scale (int c4 *: (v "g1" +: v "g3"));
        "h2" := scale (int c4 *: (v "g1" -: v "g3"));
        wait;
        (* recombination *)
        write (out 0) (v "f0" +: v "g0");
        write (out 7) (v "f0" -: v "g0");
        write (out 1) (v "f1" +: v "h1");
        write (out 6) (v "f1" -: v "h1");
        write (out 2) (v "f2" +: v "h2");
        write (out 5) (v "f2" -: v "h2");
        write (out 3) (v "f3" +: v "g2");
        write (out 4) (v "f3" -: v "g2");
      ]
  in
  let w2 = width + fx + 2 in
  design "idct8"
    ~ins:(List.init 8 (fun i -> in_port (inp i) width))
    ~outs:(List.init 8 (fun i -> out_port (out i) w2))
    ~vars:
      (List.init 8 (fun i -> var (Printf.sprintf "x%d" i) width)
      @ List.map (fun n -> var n w2)
          [ "e0"; "e1"; "e2"; "e3"; "f0"; "f1"; "f2"; "f3";
            "o0"; "o1"; "o2"; "o3"; "g0"; "g1"; "g2"; "g3"; "h1"; "h2" ])
    [ wait; do_while ~name:"idct" ?ii ~min_latency ~max_latency body (int 1) ]

let elaborated ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?width ?min_latency ?max_latency ?ii ())
