(** 8×8 two-dimensional IDCT by row–column decomposition — the full
    video-decoding form of the paper's Section VI design.

    The kernel streams one 8-coefficient column per iteration through a
    16-iteration block schedule kept in a loop-carried phase counter:

    - iterations 0..7 (column phase): apply the 1-D transform to the
      incoming column and store the result into the 64-register transpose
      buffer (predicated writes select the column);
    - iterations 8..15 (row phase): select one buffered row (mux trees),
      apply the 1-D transform again and write the eight spatial outputs
      (output writes predicated on the phase).

    Everything — the transpose buffer, the phase counter, both transform
    networks and the row/column steering — elaborates into one flat
    predicated DFG of ~700 operations, making this the largest concrete
    (non-synthetic) design in the library and a serious workout for the
    predication, allocation and sharing machinery. *)

open Hls_frontend

(* cos(k*pi/16) scaled by 2^12, as in the 1-D kernel *)
let c1 = 4017
let c2 = 3784
let c3 = 3406
let c4 = 2896
let c5 = 2276
let c6 = 1567
let c7 = 799

let fx = 12

(** The 1-D Chen butterfly over eight expression inputs; returns the eight
    output expressions.  [pfx] keeps intermediate variable names unique
    between the column and row instantiations. *)
let transform_stmts ~pfx x =
  let open Dsl in
  let n s = pfx ^ s in
  let scale e = e >>: int fx in
  ( [
      n "e0" := scale (int c4 *: (x 0 +: x 4));
      n "e1" := scale (int c4 *: (x 0 -: x 4));
      n "e2" := scale ((int c2 *: x 2) +: (int c6 *: x 6));
      n "e3" := scale ((int c6 *: x 2) -: (int c2 *: x 6));
      n "f0" := v (n "e0") +: v (n "e2");
      n "f1" := v (n "e1") +: v (n "e3");
      n "f2" := v (n "e1") -: v (n "e3");
      n "f3" := v (n "e0") -: v (n "e2");
      n "o0" := scale ((int c1 *: x 1) +: (int c7 *: x 7));
      n "o1" := scale ((int c3 *: x 3) +: (int c5 *: x 5));
      n "o2" := scale ((int c3 *: x 5) -: (int c5 *: x 3));
      n "o3" := scale ((int c1 *: x 7) -: (int c7 *: x 1));
      n "g0" := v (n "o0") +: v (n "o1");
      n "g1" := v (n "o0") -: v (n "o1");
      n "g2" := v (n "o3") +: v (n "o2");
      n "g3" := v (n "o3") -: v (n "o2");
      n "h1" := scale (int c4 *: (v (n "g1") +: v (n "g3")));
      n "h2" := scale (int c4 *: (v (n "g1") -: v (n "g3")));
    ],
    [|
      (fun () -> v (n "f0") +: v (n "g0"));
      (fun () -> v (n "f1") +: v (n "h1"));
      (fun () -> v (n "f2") +: v (n "h2"));
      (fun () -> v (n "f3") +: v (n "g2"));
      (fun () -> v (n "f3") -: v (n "g2"));
      (fun () -> v (n "f2") -: v (n "h2"));
      (fun () -> v (n "f1") -: v (n "h1"));
      (fun () -> v (n "f0") -: v (n "g0"));
    |] )

let transform_vars ~pfx w =
  List.map
    (fun s -> (pfx ^ s, w))
    [ "e0"; "e1"; "e2"; "e3"; "f0"; "f1"; "f2"; "f3"; "o0"; "o1"; "o2"; "o3"; "g0"; "g1"; "g2";
      "g3"; "h1"; "h2" ]

let design ?(width = 16) ?(min_latency = 2) ?(max_latency = 48) ?ii () =
  let open Dsl in
  let w2 = width + fx + 2 in
  let t r c = Printf.sprintf "t%d_%d" r c in
  (* column phase: transform the incoming column *)
  let col_stmts, col_out = transform_stmts ~pfx:"c_" (fun i -> v (Printf.sprintf "x%d" i)) in
  (* predicated transpose-buffer writes: column cnt receives the result *)
  let buffer_writes =
    List.concat_map
      (fun c ->
        [
          when_ (v "col_phase" &&: (v "cnt" =: int c))
            (List.init 8 (fun r -> t r c := (col_out.(r)) ()));
        ])
      (List.init 8 Fun.id)
  in
  (* row phase: steer one buffered row into the second transform *)
  let row_select r_var c =
    (* nested muxes over the eight rows of column c *)
    let rec pick r = if r = 7 then v (t 7 c) else cond (r_var =: int r) (v (t r c)) (pick (r + 1)) in
    pick 0
  in
  let row_stmts, row_out = transform_stmts ~pfx:"r_" (fun c -> v (Printf.sprintf "rw%d" c)) in
  let body =
    [
      "col_phase" := v "cnt" <: int 8;
      "row" := v "cnt" -: int 8;
    ]
    @ List.init 8 (fun i -> Printf.sprintf "x%d" i := port (Printf.sprintf "s%d" i))
    @ col_stmts @ buffer_writes
    @ List.init 8 (fun c -> Printf.sprintf "rw%d" c := row_select (v "row") c)
    @ row_stmts
    @ [ wait ]
    @ List.init 8 (fun i ->
          when_ (lnot (v "col_phase")) [ write (Printf.sprintf "d%d" i) ((row_out.(i)) ()) ])
    @ [ "cnt" := (v "cnt" +: int 1) &: int 15 ]
  in
  design "idct8x8"
    ~ins:(List.init 8 (fun i -> in_port (Printf.sprintf "s%d" i) width))
    ~outs:(List.init 8 (fun i -> out_port (Printf.sprintf "d%d" i) (w2 + 2)))
    ~vars:
      ([ var "cnt" 5; var "col_phase" 1; var "row" 5 ]
      @ List.init 8 (fun i -> var (Printf.sprintf "x%d" i) width)
      @ List.init 8 (fun c -> var (Printf.sprintf "rw%d" c) w2)
      @ List.concat_map (fun r -> List.init 8 (fun c -> var (t r c) w2)) (List.init 8 Fun.id)
      @ transform_vars ~pfx:"c_" w2
      @ transform_vars ~pfx:"r_" (w2 + 2))
    ([ "cnt" := int 0 ]
    @ List.concat_map (fun r -> List.init 8 (fun c -> t r c := int 0)) (List.init 8 Fun.id)
    @ [ wait; do_while ~name:"idct2d" ?ii ~min_latency ~max_latency body (int 1) ])

let elaborated ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?width ?min_latency ?max_latency ?ii ())
