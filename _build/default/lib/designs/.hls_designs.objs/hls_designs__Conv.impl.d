lib/designs/conv.ml: Dsl Elaborate Hls_frontend List Printf
