lib/designs/fir.ml: Dsl Elaborate Hls_frontend List Option Printf
