lib/designs/synthetic.ml: Dsl Hls_frontend List Printf
