lib/designs/idct2d.ml: Array Dsl Elaborate Fun Hls_frontend List Printf
