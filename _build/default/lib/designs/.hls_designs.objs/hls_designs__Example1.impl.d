lib/designs/example1.ml: Dsl Elaborate Hls_frontend
