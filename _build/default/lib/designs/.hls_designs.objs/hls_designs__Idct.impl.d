lib/designs/idct.ml: Dsl Elaborate Hls_frontend List Printf
