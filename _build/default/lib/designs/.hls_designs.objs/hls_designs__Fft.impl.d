lib/designs/fft.ml: Dsl Elaborate Hls_frontend
