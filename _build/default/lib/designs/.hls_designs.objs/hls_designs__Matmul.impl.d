lib/designs/matmul.ml: Dsl Elaborate Hls_frontend List Printf
