lib/designs/dotprod.ml: Dsl Elaborate Hls_frontend
