lib/designs/agc.ml: Dsl Elaborate Hls_frontend
