(** Streaming dot-product accumulator: the smallest design with a
    loop-carried SCC ([acc += a*b]) and a data-dependent exit
    ([while (a != 0)]).  Used widely in the unit tests. *)

open Hls_frontend

let design ?(width = 16) ?(min_latency = 1) ?(max_latency = 8) ?ii () =
  let open Dsl in
  let body =
    [
      "a" := port "a_in";
      "b" := port "b_in";
      "acc" := v "acc" +: (v "a" *: v "b");
      wait;
      write "dot" (v "acc");
    ]
  in
  design "dotprod"
    ~ins:[ in_port "a_in" width; in_port "b_in" width ]
    ~outs:[ out_port "dot" (2 * width) ]
    ~vars:[ var "a" width; var "b" width; var "acc" (2 * width) ]
    [ "acc" := int 0; wait; do_while ~name:"dot" ?ii ~min_latency ~max_latency body (v "a" <>: int 0) ]

let elaborated ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?width ?min_latency ?max_latency ?ii ())
