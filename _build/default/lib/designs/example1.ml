(** The paper's running example (Fig. 1): a do/while loop reading pixel
    filter inputs, accumulating a weighted average with a conditional
    rescale, and writing a filtered pixel.

    {v
      void example1::thread() {
        wait();
        while (true) {
          int aver = 0;
          wait();                       // s0
          do {
            int filt = mask;
            delta = mask * chrome;
            aver += delta;
            if (aver > th) { aver *= scale; }
            wait();                     // s1
            pixel = aver * filt;
          } while (delta != 0);
        }
      }
    v}

    The loop DFG (Fig. 3b) has three multiplications ([mul1] = mask*chrome,
    [mul2] = aver*scale, [mul3] = aver*filt), one addition, one relational
    and one equality comparator, the conditional-rescale MUX and the [aver]
    loop mux.  The [aver]-carried cycle {loopMux, add, mul2, MUX} is the SCC
    that constrains pipelining in the paper's Examples 2 and 3. *)

open Hls_frontend

(** Designer latency bounds for the do/while loop (the paper explores
    1 <= latency <= 3; we allow head-room for relaxation experiments). *)
let design ?(min_latency = 1) ?(max_latency = 8) ?ii () =
  Dsl.(
    design "example1"
      ~ins:[ in_port "mask" 32; in_port "chrome" 32; in_port "scale" 32; in_port "th" 32 ]
      ~outs:[ out_port "pixel" 32 ]
      ~vars:[ var "aver" 32; var "delta" 32; var "filt" 32 ]
      [
        "aver" := int 0;
        wait;
        do_while ~name:"main" ?ii ~min_latency ~max_latency
          [
            "filt" := port "mask";
            "delta" := port "mask" *: port "chrome";
            "aver" := v "aver" +: v "delta";
            when_ (v "aver" >: port "th") [ "aver" := v "aver" *: port "scale" ];
            wait;
            write "pixel" (v "aver" *: v "filt");
          ]
          (v "delta" <>: int 0);
      ])

(** Elaborated form. *)
let elaborated ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?min_latency ?max_latency ?ii ())
