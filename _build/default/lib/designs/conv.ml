(** 3×3 convolution (Sobel-style edge detector) over a streamed window.

    The nine window registers are loop-carried (shifted one pixel per
    iteration, with two line-delay taps fed from ports, as a line-buffered
    streaming kernel would); each iteration computes the horizontal and
    vertical Sobel responses and writes their sum of absolute values —
    conditionals included, so predicate conversion is exercised. *)

open Hls_frontend

let design ?(width = 12) ?(min_latency = 1) ?(max_latency = 16) ?ii () =
  let open Dsl in
  let wname r c = Printf.sprintf "w%d%d" r c in
  let w2 = width + 6 in
  (* window shift: w[r][0] <- w[r][1] <- w[r][2] <- new column *)
  let shifts =
    List.concat_map
      (fun r ->
        [
          wname r 0 := v (wname r 1);
          wname r 1 := v (wname r 2);
          wname r 2 := port (Printf.sprintf "col%d" r);
        ])
      [ 0; 1; 2 ]
  in
  let gx =
    (* [-1 0 1; -2 0 2; -1 0 1] *)
    v (wname 0 2) -: v (wname 0 0)
    +: (int 2 *: (v (wname 1 2) -: v (wname 1 0)))
    +: v (wname 2 2) -: v (wname 2 0)
  in
  let gy =
    v (wname 2 0) -: v (wname 0 0)
    +: (int 2 *: (v (wname 2 1) -: v (wname 0 1)))
    +: v (wname 2 2) -: v (wname 0 2)
  in
  let body =
    shifts
    @ [
        "gx" := gx;
        "gy" := gy;
        if_ (v "gx" <: int 0) [ "agx" := int 0 -: v "gx" ] [ "agx" := v "gx" ];
        if_ (v "gy" <: int 0) [ "agy" := int 0 -: v "gy" ] [ "agy" := v "gy" ];
        wait;
        "mag" := v "agx" +: v "agy";
        if_ (v "mag" >: port "threshold") [ write "edge" (int 1) ] [ write "edge" (int 0) ];
        write "grad" (v "mag");
      ]
  in
  let window_vars =
    List.concat_map (fun r -> List.init 3 (fun c -> var (wname r c) width)) [ 0; 1; 2 ]
  in
  design "sobel3x3"
    ~ins:[ in_port "col0" width; in_port "col1" width; in_port "col2" width; in_port "threshold" w2 ]
    ~outs:[ out_port "grad" w2; out_port "edge" 1 ]
    ~vars:(window_vars @ [ var "gx" w2; var "gy" w2; var "agx" w2; var "agy" w2; var "mag" w2 ])
    (List.map (fun (n, _) -> n := int 0) (List.map (fun r -> (r, ())) (List.map fst window_vars))
    @ [ wait; do_while ~name:"sobel" ?ii ~min_latency ~max_latency body (int 1) ])

let elaborated ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?width ?min_latency ?max_latency ?ii ())
