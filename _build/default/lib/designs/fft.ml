(** Radix-2 decimation-in-time FFT butterfly stage.

    Each iteration performs one complex butterfly with a streamed twiddle
    factor on 14.12 fixed point:

    {v
      t  = w * b          (complex multiply: 4 muls, 2 adds)
      a' = a + t;  b' = a - t
    v}

    A running energy accumulator ([acc += |a'_re|] approximation) adds a
    loop-carried SCC so the design exercises the pipelining constraints. *)

open Hls_frontend

let fx = 12

let design ?(width = 16) ?(min_latency = 1) ?(max_latency = 24) ?ii () =
  let open Dsl in
  let scale e = e >>: int fx in
  let w2 = width + 4 in
  let body =
    [
      "ar" := port "a_re";
      "ai" := port "a_im";
      "br" := port "b_re";
      "bi" := port "b_im";
      "wr" := port "w_re";
      "wi" := port "w_im";
      (* t = w * b *)
      "tr" := scale ((v "wr" *: v "br") -: (v "wi" *: v "bi"));
      "ti" := scale ((v "wr" *: v "bi") +: (v "wi" *: v "br"));
      wait;
      (* outputs *)
      write "x_re" (v "ar" +: v "tr");
      write "x_im" (v "ai" +: v "ti");
      write "y_re" (v "ar" -: v "tr");
      write "y_im" (v "ai" -: v "ti");
      (* loop-carried energy accumulator (SCC) *)
      "acc" := v "acc" +: cond (v "ar" +: v "tr" >: int 0) (v "ar" +: v "tr") (int 0 -: (v "ar" +: v "tr"));
      write "energy" (v "acc");
    ]
  in
  design "fft_bfly"
    ~ins:
      [
        in_port "a_re" width; in_port "a_im" width; in_port "b_re" width; in_port "b_im" width;
        in_port "w_re" width; in_port "w_im" width;
      ]
    ~outs:
      [
        out_port "x_re" w2; out_port "x_im" w2; out_port "y_re" w2; out_port "y_im" w2;
        out_port "energy" (w2 + 8);
      ]
    ~vars:
      [
        var "ar" width; var "ai" width; var "br" width; var "bi" width; var "wr" width;
        var "wi" width; var "tr" w2; var "ti" w2; var "acc" (w2 + 8);
      ]
    [ "acc" := int 0; wait; do_while ~name:"bfly" ?ii ~min_latency ~max_latency body (int 1) ]

let elaborated ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?width ?min_latency ?max_latency ?ii ())
