(** Seeded synthetic design generator.

    Substitute for the ~40 proprietary industrial designs of the paper's
    Fig. 9 (op counts from 100 to over 6000, "filters, FFTs, image
    processing algorithms").  The generator emits a main loop whose body is
    a random layered dataflow over a handful of streamed ports:

    - a configurable mix of multiplications, additions/subtractions,
      comparisons and predicated updates (wait-free conditionals);
    - a few loop-carried accumulators, giving the SCCs that constrain
      pipelining;
    - a [tightness] knob (0..1) scaling how much of the clock period each
      chain consumes, which — as the paper observes — drives scheduler
      runtime far more than raw design size does.

    Deterministic for a given seed. *)

open Hls_frontend

type profile = {
  p_ops : int;  (** approximate operation-count target *)
  p_tightness : float;  (** 0 = loose, 1 = heavily multiplication-biased *)
  p_accumulators : int;
  p_width : int;
  p_seed : int;
}

let default_profile = { p_ops = 200; p_tightness = 0.4; p_accumulators = 2; p_width = 16; p_seed = 1 }

(* xorshift64* PRNG: deterministic, independent of the global Random state *)
type rng = { mutable s : int }

let rng_make seed = { s = (if seed = 0 then 0x9E3779B9 else seed) }

let rand_int r bound =
  let x = r.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.s <- x land max_int;
  r.s mod max 1 bound

let rand_float r = float_of_int (rand_int r 1_000_000) /. 1_000_000.0

(* Dsl's [:=] statement builder shadows the ref-assignment operator inside
   [open Dsl] scopes; [<<-] is plain ref assignment. *)
let ( <<- ) r x = r.contents <- x

let design ?(profile = default_profile) () =
  let open Dsl in
  let r = rng_make profile.p_seed in
  let n_ports = 3 + rand_int r 4 in
  let ins = List.init n_ports (fun i -> in_port (Printf.sprintf "in%d" i) profile.p_width) in
  let n_ops = ref 0 in
  let values = ref (List.init n_ports (fun i -> port (Printf.sprintf "in%d" i))) in
  let vars = ref [] in
  let stmts = ref [] in
  let fresh_var =
    let k = ref 0 in
    fun width ->
      incr k;
      let name = Printf.sprintf "t%d" !k in
      vars <<- (name, width) :: !vars;
      name
  in
  let pick_value () =
    let vs = !values in
    List.nth vs (rand_int r (List.length vs))
  in
  let emit_stmt s = stmts <<- s :: !stmts in
  let gen_expr () =
    let a = pick_value () and b = pick_value () in
    let roll = rand_float r in
    if roll < profile.p_tightness *. 0.6 then begin
      n_ops <<- !n_ops + 1;
      a *: b
    end
    else if roll < 0.75 then begin
      n_ops <<- !n_ops + 1;
      if rand_int r 2 = 0 then a +: b else a -: b
    end
    else if roll < 0.85 then begin
      n_ops <<- !n_ops + 2;
      cond (a >: b) (a -: b) (b -: a)
    end
    else begin
      n_ops <<- !n_ops + 1;
      if rand_int r 2 = 0 then a &: b else a ^: b
    end
  in
  (* accumulators: loop-carried SCCs *)
  let acc_names = List.init profile.p_accumulators (fun i -> Printf.sprintf "acc%d" i) in
  List.iter (fun a -> vars <<- (a, profile.p_width + 8) :: !vars) acc_names;
  while !n_ops < profile.p_ops - (3 * profile.p_accumulators) do
    let w = profile.p_width + rand_int r 8 in
    let name = fresh_var w in
    (if rand_float r < 0.12 then begin
       (* predicated update through a wait-free conditional *)
       let c = pick_value () and t = gen_expr () in
       n_ops <<- !n_ops + 2;
       emit_stmt (name := int 0);
       emit_stmt (if_ (c >: int 0) [ name := t ] [ name := pick_value () ])
     end
     else emit_stmt (name := gen_expr ()));
    values <<- v name :: !values;
    (* keep the live set bounded so chains deepen *)
    if List.length !values > 24 then
      values <<- List.filteri (fun i _ -> i < 20) !values
  done;
  List.iter
    (fun a ->
      n_ops <<- !n_ops + 2;
      emit_stmt (a := v a +: gen_expr ()))
    acc_names;
  let outs = [ out_port "out0" (profile.p_width + 8); out_port "out1" (profile.p_width + 8) ] in
  let body =
    List.rev !stmts
    @ [
        wait;
        write "out0" (match acc_names with a :: _ -> v a | [] -> pick_value ());
        write "out1" (pick_value ());
      ]
  in
  (* deep chains need room: a value chain of k ops may need ~k/2 states,
     and the latency bound also caps how far resources can be shared *)
  let max_latency = max 48 profile.p_ops in
  design
    (Printf.sprintf "synth_s%d_n%d" profile.p_seed profile.p_ops)
    ~ins ~outs
    ~vars:(List.rev !vars)
    (List.map (fun a -> a := int 0) acc_names
    @ [ wait; do_while ~name:"kernel" ~min_latency:1 ~max_latency body (int 1) ])

(** The Fig. 9 population: [n] designs with op counts log-spaced between
    [lo] and [hi] and varying tightness. *)
let population ?(n = 40) ?(lo = 100) ?(hi = 6000) ~seed () =
  List.init n (fun i ->
      let f = float_of_int i /. float_of_int (max 1 (n - 1)) in
      let ops =
        int_of_float (float_of_int lo *. exp (f *. log (float_of_int hi /. float_of_int lo)))
      in
      let tightness = 0.15 +. (0.55 *. float_of_int ((i * 7) mod 10) /. 10.0) in
      design
        ~profile:
          {
            p_ops = ops;
            p_tightness = tightness;
            p_accumulators = 1 + (i mod 3);
            p_width = 12 + (i mod 3 * 4);
            p_seed = seed + (i * 131);
          }
        ())
