(** Functional equivalence between the behavioural golden model and a
    simulated scheduled design: the schedule preserves semantics iff every
    output port's committed value sequence matches. *)

type mismatch = {
  m_port : string;
  m_index : int;
  m_expected : int option;  (** [None] = golden produced fewer values *)
  m_actual : int option;
}

type verdict = { equivalent : bool; mismatches : mismatch list; checked_values : int }

val compare_port : port:string -> int list -> int list -> mismatch list

val check : out_ports:(string * int) list -> Behav.result -> Schedule_sim.result -> verdict

val mismatch_to_string : mismatch -> string
val verdict_to_string : verdict -> string
