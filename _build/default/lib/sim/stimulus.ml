(** Input stimulus for the simulators: one sample per main-loop iteration
    and per input port. *)

type t = {
  n_iters : int;
  samples : (string * int array) list;  (** port -> per-iteration values *)
}

let create ~n_iters samples =
  List.iter
    (fun (p, a) ->
      if Array.length a <> n_iters then
        invalid_arg (Printf.sprintf "Stimulus.create: port %s has %d samples, expected %d" p
                       (Array.length a) n_iters))
    samples;
  { n_iters; samples }

let value t ~port ~iter =
  match List.assoc_opt port t.samples with
  | None -> invalid_arg ("Stimulus.value: no samples for port " ^ port)
  | Some a ->
      if iter < 0 || iter >= Array.length a then 0
      else a.(iter)

(** Deterministic pseudo-random stimulus (seeded splitmix-style hash; no
    dependence on global [Random] state). *)
let random ~seed ~n_iters ~(ports : (string * int) list) =
  let mix x =
    let x = x * 0x9E3779B1 land max_int in
    let x = x lxor (x lsr 15) in
    let x = x * 0x85EBCA77 land max_int in
    x lxor (x lsr 13)
  in
  let samples =
    List.mapi
      (fun pi (p, w) ->
        let a =
          Array.init n_iters (fun i ->
              let h = mix ((seed * 1000003) + (pi * 7919) + i) in
              Hls_ir.Width.truncate ~width:w h)
        in
        (p, a))
      ports
  in
  create ~n_iters samples

(** Small positive values — useful when multiplications must not saturate
    the 62-bit simulation arithmetic. *)
let small_random ~seed ~n_iters ~(ports : (string * int) list) =
  let mix x =
    let x = x * 0x9E3779B1 land max_int in
    x lxor (x lsr 16)
  in
  let samples =
    List.mapi
      (fun pi (p, w) ->
        let bound = min 256 (1 lsl min (w - 1) 8) in
        let a =
          Array.init n_iters (fun i -> mix ((seed * 65537) + (pi * 31) + i) mod bound)
        in
        (p, a))
      ports
  in
  create ~n_iters samples
