(** Input stimulus: one sample per main-loop iteration per input port. *)

type t = { n_iters : int; samples : (string * int array) list }

val create : n_iters:int -> (string * int array) list -> t
(** @raise Invalid_argument on length mismatches. *)

val value : t -> port:string -> iter:int -> int
(** Sample for one iteration (0 outside the recorded range).
    @raise Invalid_argument for unknown ports. *)

val random : seed:int -> n_iters:int -> ports:(string * int) list -> t
(** Deterministic full-width pseudo-random samples. *)

val small_random : seed:int -> n_iters:int -> ports:(string * int) list -> t
(** Small positive samples (safe for multiplication-heavy designs under
    the 62-bit simulation arithmetic). *)
