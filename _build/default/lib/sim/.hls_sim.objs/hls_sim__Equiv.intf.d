lib/sim/equiv.mli: Behav Schedule_sim
