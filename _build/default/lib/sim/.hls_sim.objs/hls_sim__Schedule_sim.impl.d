lib/sim/schedule_sim.ml: Behav Binding Cdfg Dfg Elaborate Graph_algo Guard Hashtbl Hls_core Hls_frontend Hls_ir List Opkind Option Region Scheduler Stimulus Width
