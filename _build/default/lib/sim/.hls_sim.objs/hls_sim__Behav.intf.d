lib/sim/behav.mli: Hls_frontend Stimulus
