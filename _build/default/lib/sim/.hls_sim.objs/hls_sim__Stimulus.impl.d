lib/sim/stimulus.ml: Array Hls_ir List Printf
