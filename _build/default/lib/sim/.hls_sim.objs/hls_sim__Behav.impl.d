lib/sim/behav.ml: Ast Desugar Hashtbl Hls_frontend Hls_ir List Opkind Option Stimulus Width
