lib/sim/schedule_sim.mli: Hashtbl Hls_core Hls_frontend Stimulus
