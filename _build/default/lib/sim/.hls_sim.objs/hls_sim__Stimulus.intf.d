lib/sim/stimulus.mli:
