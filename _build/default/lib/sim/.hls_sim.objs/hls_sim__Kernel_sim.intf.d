lib/sim/kernel_sim.mli: Hls_core Hls_frontend Stimulus
