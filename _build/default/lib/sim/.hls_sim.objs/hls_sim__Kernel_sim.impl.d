lib/sim/kernel_sim.ml: Array Behav Cdfg Dfg Elaborate Graph_algo Guard Hashtbl Hls_core Hls_frontend Hls_ir List Opkind Option Pipeline Region Scheduler Stimulus Width
