lib/sim/equiv.ml: Behav List Printf Schedule_sim String
