(** Simulator of a scheduled (and folded) design: executes the elaborated
    DFG iteration by iteration with loop-carried values across
    distance-[d] edges and guards gating write commits, reconstructing the
    folded pipeline's timing analytically (an op on step [s] of iteration
    [i] executes at cycle [i*II + s]).  Data-dependent exits behave
    speculatively: younger in-flight iterations are squashed and their
    writes suppressed. *)

type output_event = { o_port : string; o_iter : int; o_cycle : int; o_value : int }

type result = {
  r_outputs : output_event list;  (** committed writes *)
  r_iters : int;  (** committed iterations *)
  r_cycles : int;  (** first issue to drain *)
  r_issued : int;  (** including squashed iterations *)
  r_exec_counts : (int, int) Hashtbl.t;  (** op -> executions (activity) *)
}

val run :
  ?funcs:(string -> int list -> int) ->
  ?max_iters:int ->
  Hls_frontend.Elaborate.t ->
  Hls_core.Scheduler.t ->
  Stimulus.t ->
  result

val port_values : result -> string -> int list
