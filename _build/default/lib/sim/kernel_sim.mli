(** Cycle-stepped simulator of the {e folded} pipeline: steps the
    generated controller clock by clock — kernel-state counter,
    stage-validity shift register (prologue/epilogue), stall freezing, and
    data-dependent exit with squash of younger in-flight iterations —
    exactly as the emitted RTL behaves.  Cross-checked against both the
    behavioural golden model and {!Schedule_sim} in the test matrix. *)

type output_event = { k_port : string; k_iter : int; k_cycle : int; k_value : int }

type result = {
  k_outputs : output_event list;
  k_iters : int;  (** committed iterations *)
  k_cycles : int;  (** cycles stepped, stalls and drain included *)
  k_stall_cycles : int;
  k_squashed : int;  (** iterations issued past the exit and discarded *)
}

val run :
  ?funcs:(string -> int list -> int) ->
  ?max_iters:int ->
  ?stall_pattern:(int -> bool) ->
  Hls_frontend.Elaborate.t ->
  Hls_core.Scheduler.t ->
  Stimulus.t ->
  result
(** [stall_pattern cycle] = false freezes the pipeline at [cycle]
    (external stall); the design's own [stall_until] condition is honoured
    independently. *)

val port_values : result -> string -> int list
(** Committed values of one port in iteration order. *)
