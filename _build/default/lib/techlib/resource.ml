(** Resource types.

    A resource type is "a combination of the operation type with operand and
    result widths" (Section IV.A).  Two operations may be implemented by the
    same resource instance when their types are compatible: same resource
    class and widths that are not "very different" (the paper avoids merging
    widely differing widths to protect power); we use a factor-of-two rule
    per operand.  The merged type takes the element-wise maximum widths,
    e.g. [A1\[7:0\] + B1\[4:0\]] and [A2\[5:0\] + B2\[6:0\]] share an 8x6
    adder. *)

open Hls_ir

type t = {
  rclass : Opkind.rclass;
  in_widths : int list;  (** operand widths, by port *)
  out_width : int;
}

(** [of_op dfg op] is the resource type needed by [op] given its operand
    widths in [dfg].  Wire-class ops have no resource type. *)
let of_op (dfg : Dfg.t) (op : Dfg.op) : t option =
  let rc = Opkind.rclass op.Dfg.kind in
  match rc with
  | Opkind.R_wire -> None
  | _ ->
      let in_widths =
        List.map (fun e -> (Dfg.find dfg e.Dfg.src).Dfg.width) (Dfg.in_edges dfg op.Dfg.id)
      in
      Some { rclass = rc; in_widths; out_width = op.Dfg.width }

let same_class a b = a.rclass = b.rclass

(** Width-compatibility: per-operand ratio bounded by 2 (and same arity). *)
let widths_compatible a b =
  List.length a.in_widths = List.length b.in_widths
  && List.for_all2
       (fun wa wb ->
         let lo = min wa wb and hi = max wa wb in
         hi <= 2 * lo)
       a.in_widths b.in_widths

let can_merge a b = same_class a b && widths_compatible a b

(** Element-wise maximum of widths; requires [can_merge]. *)
let merge a b =
  if not (can_merge a b) then invalid_arg "Resource.merge: incompatible types";
  {
    rclass = a.rclass;
    in_widths = List.map2 max a.in_widths b.in_widths;
    out_width = max a.out_width b.out_width;
  }

(** Whether an op of type [need] can run on an instance of type [have]
    (instance at least as wide on every operand, same class). *)
let fits ~need ~have =
  same_class need have
  && List.length need.in_widths = List.length have.in_widths
  && List.for_all2 (fun wn wh -> wn <= wh) need.in_widths have.in_widths
  && need.out_width <= have.out_width

let to_string t =
  Printf.sprintf "%s_%s" (Opkind.rclass_to_string t.rclass)
    (String.concat "x" (List.map string_of_int t.in_widths))

let compare_t (a : t) (b : t) = compare (a.rclass, a.in_widths, a.out_width) (b.rclass, b.in_widths, b.out_width)

let equal a b = compare_t a b = 0
