(** Technology library: delay, area and energy characterization, plus the
    "downstream logic synthesis" sizing model.

    This module substitutes for the commercial logic-synthesis engine the
    paper's scheduler queries.  Its reference numbers reproduce the
    paper's Table 1 exactly (artisan_90nm_typical, 32-bit operands:
    mul 930 / add 350 / gt 220 / neq 60 / ff 40,70 / mux2 110 / mux3 115
    ps) and the worked Fig. 8 arithmetic
    (40 + 110 + 930 + 110 + 40 = 1230 ps). *)

open Hls_ir

type blackbox_char = {
  bb_latency : int;
  bb_stage_delay : float;
  bb_area : float;
  bb_energy : float;
}

type t = {
  lib_name : string;
  d_mul : float;
  d_add : float;
  d_cmp_rel : float;
  d_cmp_eq : float;
  d_divmod : float;
  d_shift : float;
  d_logic : float;
  d_mux2 : float;
  d_mux_per_extra_input : float;
  ff_clk_q : float;  (** plain flip-flop clock-to-q *)
  ff_clk_q_en : float;  (** flip-flop with load enable *)
  ff_setup : float;
  a_mul : float;
  a_add : float;
  a_cmp_rel : float;
  a_cmp_eq : float;
  a_divmod : float;
  a_shift : float;
  a_logic : float;
  a_mux2_per_bit : float;
  a_ff_per_bit : float;
  a_port : float;
  control_area_base : float;
  control_area_per_state : float;
  min_delay_factor : float;  (** fastest sizing = factor × nominal delay *)
  sizing_gamma : float;  (** area = nominal × (1 + γ (d_nom/d_req − 1)) *)
  energy_per_area : float;  (** pJ per activation per unit area *)
  leakage_per_area_mw : float;
  blackboxes : (string * blackbox_char) list;
}

val ref_width : int
(** Reference characterization width (32). *)

val delay : t -> Resource.t -> float
(** Nominal propagation delay, ps (log-of-width scaling from the
    reference). *)

val mux_delay : t -> inputs:int -> float
(** Delay of a k-input sharing mux; 0 below two inputs. *)

val area : t -> Resource.t -> float
(** Nominal area (linear in width; quadratic in the width product for
    multipliers). *)

val mux_area : t -> inputs:int -> width:int -> float
val reg_area : t -> width:int -> float

val min_delay : t -> Resource.t -> float

val area_for_delay : t -> Resource.t -> required:float -> float option
(** Post-synthesis area when the resource must propagate in [required] ps:
    nominal when it already fits, super-linearly upsized otherwise, [None]
    beyond the curve's fastest point. *)

val energy : t -> Resource.t -> float
(** Switching energy of one activation, pJ. *)

val reg_energy : t -> width:int -> float
val leakage_mw : t -> total_area:float -> float

val artisan90 : t
(** The library used throughout the paper's examples (Table 1 delays
    verbatim; areas calibrated against Table 3). *)

val with_blackbox :
  t -> name:string -> latency:int -> stage_delay:float -> area:float -> energy:float -> t
(** Register a pre-designed (possibly pipelined multi-cycle) IP block. *)

val op_latency : t -> Opkind.t -> int
(** Cycles an op occupies (black boxes may be multi-cycle; 1 otherwise). *)

val table1_rows : t -> (string * float) list
(** The rows of the paper's Table 1, for reporting. *)
