(** Resource types: "a combination of the operation type with operand and
    result widths" (Section IV.A).  Sharing is licensed by {!can_merge}
    (same class, widths within a factor of two — the paper avoids merging
    "very different bit widths" to protect power); the merged type takes
    element-wise maximum widths. *)

open Hls_ir

type t = {
  rclass : Opkind.rclass;
  in_widths : int list;  (** operand widths, by port *)
  out_width : int;
}

val of_op : Dfg.t -> Dfg.op -> t option
(** The resource type an op needs, from its operand widths; [None] for
    wire-class ops. *)

val same_class : t -> t -> bool

val widths_compatible : t -> t -> bool
(** Same arity and per-operand width ratio bounded by 2. *)

val can_merge : t -> t -> bool

val merge : t -> t -> t
(** Element-wise maximum widths.  @raise Invalid_argument unless
    {!can_merge}. *)

val fits : need:t -> have:t -> bool
(** Can an op of type [need] run on an existing instance of type [have]
    (same class, instance at least as wide on every operand)? *)

val to_string : t -> string
val compare_t : t -> t -> int
val equal : t -> t -> bool
