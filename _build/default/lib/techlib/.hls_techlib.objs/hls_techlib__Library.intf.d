lib/techlib/library.mli: Hls_ir Opkind Resource
