lib/techlib/resource.mli: Dfg Hls_ir Opkind
