lib/techlib/library.ml: Hls_ir List Opkind Resource
