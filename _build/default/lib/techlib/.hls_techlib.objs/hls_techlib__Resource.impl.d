lib/techlib/resource.ml: Dfg Hls_ir List Opkind Printf String
