(** Technology library: delay, area and energy characterization of datapath
    resources, plus the "downstream logic synthesis" sizing model.

    This module substitutes for the commercial logic-synthesis engine the
    paper's scheduler queries.  Its reference numbers reproduce Table 1 of
    the paper exactly (artisan_90nm_typical, 32-bit operands):

    {v
      resource   mul  add  gt   neq  ff     mux2  mux3
      delay(ps)  930  350  220  60   40/70  110   115
    v}

    and the worked delay arithmetic of Fig. 8:
    [40 + 110 + 930 + 110 + 40 = 1230 ps].

    Delays scale with operand width as [log2 w / log2 32] (carry-lookahead /
    tree-reduction shapes); areas scale linearly in width (quadratically in
    the product of widths for multipliers).  The {e sizing curve}
    [area_for_delay] models logic synthesis compensating negative slack with
    area: a resource can be sped up to [min_delay_factor] times its nominal
    delay at super-linear area cost — this is what Table 4 measures. *)

open Hls_ir

type blackbox_char = { bb_latency : int; bb_stage_delay : float; bb_area : float; bb_energy : float }

type t = {
  lib_name : string;
  (* reference delays at 32 bits, ps *)
  d_mul : float;
  d_add : float;
  d_cmp_rel : float;
  d_cmp_eq : float;
  d_divmod : float;
  d_shift : float;
  d_logic : float;
  d_mux2 : float;
  d_mux_per_extra_input : float;
  ff_clk_q : float;  (** plain flip-flop clock-to-q *)
  ff_clk_q_en : float;  (** flip-flop with load-enable *)
  ff_setup : float;
  (* reference areas at 32 bits (multiplier at 32x32), arbitrary gate units *)
  a_mul : float;
  a_add : float;
  a_cmp_rel : float;
  a_cmp_eq : float;
  a_divmod : float;
  a_shift : float;
  a_logic : float;
  a_mux2_per_bit : float;
  a_ff_per_bit : float;
  a_port : float;
  control_area_base : float;
  control_area_per_state : float;
  (* sizing curve *)
  min_delay_factor : float;  (** fastest achievable delay = factor * nominal *)
  sizing_gamma : float;  (** area = nominal * (1 + gamma * (d_nom/d_req - 1)) *)
  (* energy, pJ per activation per unit area *)
  energy_per_area : float;
  leakage_per_area_mw : float;
  blackboxes : (string * blackbox_char) list;
}

let ref_width = 32

(* Width scaling of delay: logarithmic with a floor so that 1-bit resources
   are not free. *)
let width_scale w =
  let w = max 2 w in
  let s = log (float_of_int w) /. log (float_of_int ref_width) in
  max 0.25 s

let max_in_width rt = List.fold_left max 1 rt.Resource.in_widths

let blackbox t name =
  match List.assoc_opt name t.blackboxes with
  | Some c -> c
  | None -> { bb_latency = 1; bb_stage_delay = t.d_mul; bb_area = t.a_mul; bb_energy = t.a_mul *. t.energy_per_area }

(** Nominal propagation delay of a resource type, ps. *)
let delay t (rt : Resource.t) =
  let w = max_in_width rt in
  let s = width_scale w in
  match rt.Resource.rclass with
  | Opkind.R_mul -> t.d_mul *. s
  | Opkind.R_addsub -> t.d_add *. s
  | Opkind.R_cmp_rel -> t.d_cmp_rel *. s
  | Opkind.R_cmp_eq -> t.d_cmp_eq *. s
  | Opkind.R_divmod -> t.d_divmod *. s
  | Opkind.R_shift -> t.d_shift *. s
  | Opkind.R_logic -> t.d_logic *. s
  | Opkind.R_mux -> t.d_mux2
  | Opkind.R_port_in | Opkind.R_port_out -> 0.0
  | Opkind.R_blackbox name -> (blackbox t name).bb_stage_delay
  | Opkind.R_wire -> 0.0

(** Delay of a [k]-input sharing multiplexer (k >= 2): Table 1 gives mux2 =
    110, mux3 = 115; each further input adds [d_mux_per_extra_input]. *)
let mux_delay t ~inputs =
  if inputs <= 1 then 0.0 else t.d_mux2 +. (t.d_mux_per_extra_input *. float_of_int (inputs - 2))

(** Nominal area of a resource type. *)
let area t (rt : Resource.t) =
  let wmax = float_of_int (max_in_width rt) /. float_of_int ref_width in
  match rt.Resource.rclass with
  | Opkind.R_mul ->
      (* multiplier area grows with the product of operand widths *)
      let prod =
        match rt.Resource.in_widths with
        | [ a; b ] -> float_of_int (a * b) /. float_of_int (ref_width * ref_width)
        | _ -> wmax *. wmax
      in
      t.a_mul *. max 0.02 prod
  | Opkind.R_addsub -> t.a_add *. wmax
  | Opkind.R_cmp_rel -> t.a_cmp_rel *. wmax
  | Opkind.R_cmp_eq -> t.a_cmp_eq *. wmax
  | Opkind.R_divmod -> t.a_divmod *. wmax
  | Opkind.R_shift -> t.a_shift *. wmax
  | Opkind.R_logic -> t.a_logic *. wmax
  | Opkind.R_mux -> t.a_mux2_per_bit *. float_of_int rt.Resource.out_width
  | Opkind.R_port_in | Opkind.R_port_out -> t.a_port
  | Opkind.R_blackbox name -> (blackbox t name).bb_area
  | Opkind.R_wire -> 0.0

(** Area of a [k]-input, [width]-bit multiplexer tree ((k-1) 2:1 stages). *)
let mux_area t ~inputs ~width =
  if inputs <= 1 then 0.0
  else t.a_mux2_per_bit *. float_of_int width *. float_of_int (inputs - 1)

let reg_area t ~width = t.a_ff_per_bit *. float_of_int width

(** Fastest delay logic synthesis can reach for this resource. *)
let min_delay t rt = t.min_delay_factor *. delay t rt

(** [area_for_delay t rt ~required] is the post-synthesis area of the
    resource when it must propagate in [required] ps: nominal area when the
    nominal delay fits, super-linearly upsized otherwise, [None] when even
    the fastest sizing misses (the constraint is unimplementable). *)
let area_for_delay t rt ~required =
  let d = delay t rt in
  let a = area t rt in
  if required >= d then Some a
  else if required < min_delay t rt then None
  else Some (a *. (1.0 +. (t.sizing_gamma *. ((d /. required) -. 1.0))))

(** Switching energy of one activation of the resource, pJ. *)
let energy t rt = area t rt *. t.energy_per_area

let reg_energy t ~width = reg_area t ~width *. t.energy_per_area *. 0.4

let leakage_mw t ~total_area = total_area *. t.leakage_per_area_mw

(** The library used throughout the paper's examples.  Delays of Table 1 are
    reproduced verbatim at 32-bit operands; areas are calibrated so the
    micro-architecture comparison of Table 3 lands in the right ranges. *)
let artisan90 : t =
  {
    lib_name = "artisan_90nm_typical";
    d_mul = 930.0;
    d_add = 350.0;
    d_cmp_rel = 220.0;
    d_cmp_eq = 60.0;
    d_divmod = 2600.0;
    d_shift = 180.0;
    d_logic = 50.0;
    d_mux2 = 110.0;
    d_mux_per_extra_input = 5.0;
    ff_clk_q = 40.0;
    ff_clk_q_en = 70.0;
    ff_setup = 40.0;
    a_mul = 7200.0;
    a_add = 620.0;
    a_cmp_rel = 290.0;
    a_cmp_eq = 140.0;
    a_divmod = 9500.0;
    a_shift = 380.0;
    a_logic = 90.0;
    a_mux2_per_bit = 3.2;
    a_ff_per_bit = 5.5;
    a_port = 0.0;
    control_area_base = 3200.0;
    control_area_per_state = 180.0;
    min_delay_factor = 0.55;
    sizing_gamma = 1.5;
    energy_per_area = 0.0021;
    leakage_per_area_mw = 0.00012;
    blackboxes = [];
  }

(** Register a black-box IP characterization (pre-designed, possibly
    pipelined multi-cycle blocks the binder may target). *)
let with_blackbox t ~name ~latency ~stage_delay ~area ~energy =
  {
    t with
    blackboxes =
      (name, { bb_latency = latency; bb_stage_delay = stage_delay; bb_area = area; bb_energy = energy })
      :: List.remove_assoc name t.blackboxes;
  }

(** Latency in cycles of an op kind under this library (black boxes may be
    multi-cycle; everything else is combinational = 1 state). *)
let op_latency t = function
  | Opkind.Call c ->
      let bb = blackbox t c.Opkind.callee in
      max c.Opkind.call_latency bb.bb_latency
  | _ -> 1

(** Rows of Table 1 for reporting. *)
let table1_rows t =
  let r32 rc n = { Resource.rclass = rc; in_widths = List.init n (fun _ -> 32); out_width = 32 } in
  [
    ("mul", delay t (r32 Opkind.R_mul 2));
    ("add", delay t (r32 Opkind.R_addsub 2));
    ("gt", delay t (r32 Opkind.R_cmp_rel 2));
    ("neq", delay t (r32 Opkind.R_cmp_eq 2));
    ("ff", t.ff_clk_q);
    ("ff_en", t.ff_clk_q_en);
    ("mux2", mux_delay t ~inputs:2);
    ("mux3", mux_delay t ~inputs:3);
  ]
