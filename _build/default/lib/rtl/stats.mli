(** Area and power roll-up of a scheduled design — the figures the paper's
    Table 3 and Figures 10/11 report.  Resource areas default to nominal
    and are replaced by post-sizing areas when the schedule carries
    negative slack (the Table 4 ablation path). *)

type breakdown = {
  a_resources : float;
  a_input_muxes : float;
  a_registers : float;
  a_reg_muxes : float;
  a_control : float;
  a_total : float;
  n_registers : int;
  n_instances : int;
  wns : float;  (** worst negative slack after sizing (0 = met) *)
}

val area :
  ?synth:Hls_timing.Synthesize.result -> ?io_widths:int list -> Hls_core.Scheduler.t -> breakdown
(** [io_widths] adds one I/O register per port. *)

val power :
  ?activity:(int, int) Hashtbl.t ->
  ?iters:int ->
  Hls_core.Scheduler.t ->
  breakdown ->
  clock_ps:float ->
  float
(** Activity-aware power (mW): per-execution switching energy (from the
    simulator's counts, default one execution per op per iteration),
    register and controller toggling, plus leakage. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
