lib/rtl/verilog.ml: Binding Buffer Cdfg Dfg Guard Hashtbl Hls_core Hls_frontend Hls_ir List Opkind Pipeline Printf Region Scheduler String
