lib/rtl/stats.ml: Binding Dfg Format Fun Hashtbl Hls_core Hls_ir Hls_techlib Hls_timing Library List Opkind Option Printf Regalloc Region Resource Scheduler
