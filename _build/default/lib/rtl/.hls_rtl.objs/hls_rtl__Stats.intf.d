lib/rtl/stats.mli: Format Hashtbl Hls_core Hls_timing
