lib/rtl/regalloc.ml: Binding Dfg Hls_core Hls_ir List Opkind Region Scheduler
