lib/rtl/regalloc.mli: Hls_core
