lib/rtl/verilog.mli: Hls_core Hls_frontend
