(** Register allocation for values crossing control-step boundaries:
    pipeline shift-chain copies (a value alive [u - s] cycles against a
    new instance every II needs [ceil((u-s)/II)] registers) and greedy
    life-span sharing for sequential schedules (shared registers carry the
    input mux the paper's Fig. 8 prices). *)

type value_info = {
  v_op : int;
  v_width : int;
  v_def : int;  (** producing step *)
  v_last_use : int;
  v_copies : int;  (** pipeline shift-chain length *)
  v_dedicated : bool;  (** loop-carried / cross-region: not shareable *)
}

type reg = { r_width : int; r_values : value_info list; r_copies : int }

type t = { values : value_info list; regs : reg list }

val analyze : Hls_core.Scheduler.t -> t
val n_registers : t -> int
val register_bits : t -> int

val shared_regs : t -> reg list
(** Registers written by more than one value (these get input muxes). *)
