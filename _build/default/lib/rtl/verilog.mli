(** Verilog-2001 emitter for a scheduled (and folded) design: one FSM over
    the kernel states, a stage-validity shift register (prologue/epilogue,
    stalling), a first-iteration flag for the loop muxes, per-value
    registers with (state, stage, guard)-decoded enables, and
    combinational expressions inlining the approved same-step chains. *)

val emit : Hls_frontend.Elaborate.t -> Hls_core.Scheduler.t -> Hls_core.Pipeline.t -> string

val lint : string -> string list
(** Structural self-check: balanced [begin]/[end] and
    [module]/[endmodule], every generated identifier declared.
    Empty = clean. *)
