(** Bit-width arithmetic.

    Widths are plain [int]s (number of bits, >= 1).  Values are
    two's-complement signed; every operation produces the smallest width
    representing all results of its input widths.  These rules are shared
    by elaboration, the optimizer and the simulators, so that all agree on
    one finite-width semantics. *)

type t = int

val max_width : int
(** Maximum accepted width (62, so native-int simulation is exact). *)

val bits_for_signed : int -> int
(** Smallest two's-complement width representing the value. *)

val clamp : int -> int
(** Clamp into [1, max_width]. *)

val add_result : int -> int -> int
(** Width of [a + b] / [a - b]: one growth bit over the wider operand. *)

val mul_result : int -> int -> int
(** Width of [a * b]: sum of operand widths (clamped). *)

val div_result : int -> int -> int
val mod_result : int -> int -> int
val bitwise_result : int -> int -> int
val shl_result : int -> int -> int
val shr_result : int -> int -> int

val truncate : width:int -> int -> int
(** Reinterpret the low [width] bits as a signed value — the single
    definition of finite-width wraparound used everywhere. *)

val fits : width:int -> int -> bool
(** Is the value representable in [width] signed bits? *)
