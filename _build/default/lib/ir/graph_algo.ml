(** Graph algorithms over integer-id graphs given as adjacency functions.

    All functions take [~nodes] (the vertex set, any order) and [~succs]
    (successor function).  They are used on DFGs (up to ~10k nodes in the
    Fig. 9 experiment), so the DFS-based ones are implemented iteratively
    where recursion depth could be proportional to graph size. *)

(** [topo_sort ~nodes ~succs] is [Some order] (dependencies first) or [None]
    if the graph has a cycle.  Kahn's algorithm; ties broken by ascending
    node id for determinism. *)
let topo_sort ~nodes ~succs =
  let indeg = Hashtbl.create (List.length nodes) in
  List.iter (fun n -> Hashtbl.replace indeg n 0) nodes;
  List.iter
    (fun n ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt indeg s with
          | Some d -> Hashtbl.replace indeg s (d + 1)
          | None -> ())
        (succs n))
    nodes;
  let module Pq = Set.Make (Int) in
  let ready = ref Pq.empty in
  Hashtbl.iter (fun n d -> if d = 0 then ready := Pq.add n !ready) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Pq.is_empty !ready) do
    let n = Pq.min_elt !ready in
    ready := Pq.remove n !ready;
    order := n :: !order;
    incr count;
    List.iter
      (fun s ->
        match Hashtbl.find_opt indeg s with
        | Some d ->
            let d = d - 1 in
            Hashtbl.replace indeg s d;
            if d = 0 then ready := Pq.add s !ready
        | None -> ())
      (succs n)
  done;
  if !count = List.length nodes then Some (List.rev !order) else None

(** Tarjan's strongly-connected components, iterative.  Components are
    returned in reverse topological order of the condensation; each
    component lists its nodes in discovery order. *)
let scc ~nodes ~succs =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      (* explicit DFS stack: (node, remaining successors) *)
      let call = ref [ (root, ref (succs root)) ] in
      Hashtbl.replace index root !next_index;
      Hashtbl.replace lowlink root !next_index;
      incr next_index;
      stack := root :: !stack;
      Hashtbl.replace on_stack root ();
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: frames -> (
            match !rest with
            | w :: more ->
                rest := more;
                if not (Hashtbl.mem index w) then begin
                  Hashtbl.replace index w !next_index;
                  Hashtbl.replace lowlink w !next_index;
                  incr next_index;
                  stack := w :: !stack;
                  Hashtbl.replace on_stack w ();
                  call := (w, ref (succs w)) :: !call
                end
                else if Hashtbl.mem on_stack w then
                  Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
            | [] ->
                call := frames;
                (match frames with
                | (parent, _) :: _ ->
                    Hashtbl.replace lowlink parent
                      (min (Hashtbl.find lowlink parent) (Hashtbl.find lowlink v))
                | [] -> ());
                if Hashtbl.find lowlink v = Hashtbl.find index v then begin
                  let comp = ref [] in
                  let continue = ref true in
                  while !continue do
                    match !stack with
                    | [] -> continue := false
                    | w :: rest ->
                        stack := rest;
                        Hashtbl.remove on_stack w;
                        comp := w :: !comp;
                        if w = v then continue := false
                  done;
                  comps := !comp :: !comps
                end)
      done
    end
  in
  List.iter visit nodes;
  List.rev !comps

(** [reachable ~from ~succs] is the set (as a hashtable) of nodes reachable
    from [from], including [from] itself. *)
let reachable ~from ~succs =
  let seen = Hashtbl.create 64 in
  let stack = ref [ from ] in
  Hashtbl.replace seen from ();
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        List.iter
          (fun s ->
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.replace seen s ();
              stack := s :: !stack
            end)
          (succs n)
  done;
  seen

(** Longest path lengths from sources in a DAG, with per-node weights.
    Returns a hashtable node -> longest distance (sum of weights along the
    heaviest path ending at the node, inclusive).  Raises
    [Invalid_argument] on cyclic input. *)
let longest_path ~nodes ~succs ~weight =
  match topo_sort ~nodes ~succs with
  | None -> invalid_arg "Graph_algo.longest_path: cyclic graph"
  | Some order ->
      let dist = Hashtbl.create (List.length nodes) in
      List.iter (fun n -> Hashtbl.replace dist n (weight n)) order;
      List.iter
        (fun n ->
          let dn = Hashtbl.find dist n in
          List.iter
            (fun s ->
              match Hashtbl.find_opt dist s with
              | Some ds -> if dn +. weight s > ds then Hashtbl.replace dist s (dn +. weight s)
              | None -> ())
            (succs n))
        order;
      dist

(** [has_path ~from ~target ~succs] — DFS reachability test, early exit. *)
let has_path ~from ~target ~succs =
  if from = target then true
  else begin
    let seen = Hashtbl.create 16 in
    let found = ref false in
    let stack = ref [ from ] in
    Hashtbl.replace seen from ();
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
          stack := rest;
          List.iter
            (fun s ->
              if s = target then found := true
              else if not (Hashtbl.mem seen s) then begin
                Hashtbl.replace seen s ();
                stack := s :: !stack
              end)
            (succs n)
    done;
    !found
  end
