(** Execution guards (predicates) attached to DFG operations.

    Predicate conversion (Fig. 4 of the paper) replaces fork/join control
    with straight-line code in which every operation from a conditional
    branch carries a guard: a conjunction of (condition-op, polarity)
    atoms.  Mutually exclusive guards license resource sharing within one
    control step; a guard also gates its operation's commit-register
    enable, so its arrival participates in endpoint timing. *)

type atom = { pred : int  (** DFG op id computing the condition *); polarity : bool }

type t = atom list
(** Conjunction of atoms, sorted by [pred], no duplicates.  [[]] is the
    always-true guard.  Treat as abstract; build with {!add}/{!conj}. *)

val always : t
val is_always : t -> bool

val atom : int -> bool -> atom

val conj : t -> t -> t option
(** Conjunction; [None] when contradictory (the op can never execute). *)

val add : t -> pred:int -> polarity:bool -> t option
(** Conjoin a single atom. *)

val mutually_exclusive : t -> t -> bool
(** Same predicate with opposite polarities on both sides: the guarded ops
    can never execute together, so they may share a resource in a step. *)

val implies : t -> t -> bool
(** [implies g1 g2]: every execution satisfying [g1] satisfies [g2]. *)

val preds : t -> int list
(** Predicate op ids mentioned. *)

val equal : t -> t -> bool

val map_preds : (int -> int) -> t -> t
(** Rewrite predicate ids (used when the optimizer replaces ops). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
