(** Operation kinds of the data-flow graph.

    Each DFG node carries one [t].  The classification functions below are
    what the rest of the tool keys on: [arity] (shape checking), [rclass]
    (which datapath resource class can implement the op — the basis of
    resource sharing, Section IV.A of the paper), [complexity] (scheduling
    priority, Section IV.B) and [result_width] (width propagation). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Bnot | Lnot

type t =
  | Bin of binop
  | Un of unop
  | Const of int  (** literal; width on the node *)
  | Read of string  (** read of an input port *)
  | Write of string  (** write of an output port; input 0 is the value *)
  | Mux  (** [Mux(sel, a, b)]: [a] when [sel <> 0], else [b] *)
  | Loop_mux
      (** loop-carried merge: input 0 = initial value (pre-loop), input 1 =
          value from the previous iteration (distance-1 edge).  Selected by
          the controller's first-iteration flag, not by a data input. *)
  | Slice of int * int  (** [Slice (hi, lo)]: bit-field extract *)
  | Zext of int
  | Sext of int
  | Concat  (** input 0 becomes the high bits *)
  | Call of call_spec
      (** black-box operation bound to a pre-designed IP block; possibly
          multi-cycle (Section IV.B, item 2) *)

and call_spec = { callee : string; call_latency : int  (** cycles; 1 = combinational *) }

(** Resource classes: two operations may share a datapath resource only if
    they map to the same class (and to compatible widths; see
    {!Hls_techlib}).  [Wire] ops (slices, extensions, constants…) consume no
    resource and no delay budget beyond wiring. *)
type rclass =
  | R_addsub
  | R_mul
  | R_divmod
  | R_shift
  | R_logic
  | R_cmp_rel  (** <, <=, >, >= *)
  | R_cmp_eq  (** =, <> *)
  | R_mux
  | R_port_in
  | R_port_out
  | R_blackbox of string
  | R_wire

let rclass = function
  | Bin (Add | Sub) | Un Neg -> R_addsub
  | Bin Mul -> R_mul
  | Bin (Div | Mod) -> R_divmod
  | Bin (Shl | Shr) -> R_shift
  | Bin (Band | Bor | Bxor | Land | Lor) | Un (Bnot | Lnot) -> R_logic
  | Bin (Lt | Le | Gt | Ge) -> R_cmp_rel
  | Bin (Eq | Neq) -> R_cmp_eq
  | Mux | Loop_mux -> R_mux
  | Read _ -> R_port_in
  | Write _ -> R_port_out
  | Call c -> R_blackbox c.callee
  | Const _ | Slice _ | Zext _ | Sext _ | Concat -> R_wire

(** Number of data inputs the op expects. *)
let arity = function
  | Bin _ -> 2
  | Un _ -> 1
  | Const _ -> 0
  | Read _ -> 0
  | Write _ -> 1
  | Mux -> 3
  | Loop_mux -> 2
  | Slice _ -> 1
  | Zext _ | Sext _ -> 1
  | Concat -> 2
  | Call _ -> -1 (* variable; checked against the node's recorded arity *)

(** Relative structural complexity, used by the scheduling priority function
    ("more complex operations are scheduled first"). *)
let complexity = function
  | Bin (Div | Mod) -> 10.0
  | Bin Mul -> 8.0
  | Call _ -> 8.0
  | Bin (Add | Sub) | Un Neg -> 3.0
  | Bin (Shl | Shr) -> 2.5
  | Bin (Lt | Le | Gt | Ge) -> 2.0
  | Bin (Eq | Neq) -> 1.5
  | Bin (Band | Bor | Bxor | Land | Lor) | Un (Bnot | Lnot) -> 1.0
  | Mux | Loop_mux -> 1.0
  | Read _ | Write _ -> 0.5
  | Const _ | Slice _ | Zext _ | Sext _ | Concat -> 0.0

(** [result_width kind ws] propagates operand widths [ws] to the result
    width.  [Read]/[Const] widths are fixed on the node, so callers pass the
    recorded width through [~self]. *)
let result_width ?(self = 0) kind ws =
  let w i = try List.nth ws i with _ -> 1 in
  match kind with
  | Bin Add | Bin Sub -> Width.add_result (w 0) (w 1)
  | Bin Mul -> Width.mul_result (w 0) (w 1)
  | Bin Div -> Width.div_result (w 0) (w 1)
  | Bin Mod -> Width.mod_result (w 0) (w 1)
  | Bin Shl -> Width.shl_result (w 0) (w 1)
  | Bin Shr -> Width.shr_result (w 0) (w 1)
  | Bin (Band | Bor | Bxor) -> Width.bitwise_result (w 0) (w 1)
  | Bin (Land | Lor) -> 1
  | Bin (Eq | Neq | Lt | Le | Gt | Ge) -> 1
  | Un Neg -> Width.add_result (w 0) 1
  | Un Bnot -> w 0
  | Un Lnot -> 1
  | Const n -> if self > 0 then self else Width.bits_for_signed n
  | Read _ | Write _ | Call _ -> self
  | Mux -> max (w 1) (w 2)
  | Loop_mux -> max (w 0) (w 1)
  | Slice (hi, lo) -> Width.clamp (hi - lo + 1)
  | Zext n | Sext n -> n
  | Concat -> Width.clamp (w 0 + w 1)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_to_string = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

let to_string = function
  | Bin b -> binop_to_string b
  | Un u -> unop_to_string u
  | Const n -> string_of_int n
  | Read p -> Printf.sprintf "read(%s)" p
  | Write p -> Printf.sprintf "write(%s)" p
  | Mux -> "mux"
  | Loop_mux -> "loop_mux"
  | Slice (hi, lo) -> Printf.sprintf "[%d:%d]" hi lo
  | Zext n -> Printf.sprintf "zext%d" n
  | Sext n -> Printf.sprintf "sext%d" n
  | Concat -> "concat"
  | Call c -> Printf.sprintf "call(%s)" c.callee

let rclass_to_string = function
  | R_addsub -> "add"
  | R_mul -> "mul"
  | R_divmod -> "div"
  | R_shift -> "shift"
  | R_logic -> "logic"
  | R_cmp_rel -> "cmp"
  | R_cmp_eq -> "eqcmp"
  | R_mux -> "mux"
  | R_port_in -> "in"
  | R_port_out -> "out"
  | R_blackbox s -> "ip:" ^ s
  | R_wire -> "wire"

(** True when the op consumes a shareable datapath resource (and therefore
    participates in resource allocation, sharing-mux construction and
    busy-table bookkeeping). *)
let is_resource_op k =
  match rclass k with
  | R_wire | R_port_in | R_port_out -> false
  | _ -> true

let is_commutative = function
  | Bin (Add | Mul | Band | Bor | Bxor | Land | Lor | Eq | Neq) -> true
  | _ -> false

(** Evaluate a kind over concrete operand values; widths are applied by the
    caller via {!Width.truncate}.  [Read]/[Write]/[Call] are handled by the
    simulators, not here. *)
let eval_pure kind args =
  let a i = List.nth args i in
  let b2i b = if b then 1 else 0 in
  match kind with
  | Bin Add -> Some (a 0 + a 1)
  | Bin Sub -> Some (a 0 - a 1)
  | Bin Mul -> Some (a 0 * a 1)
  | Bin Div -> if a 1 = 0 then Some 0 else Some (a 0 / a 1)
  | Bin Mod -> if a 1 = 0 then Some 0 else Some (a 0 mod a 1)
  | Bin Shl -> Some (a 0 lsl (a 1 land 63))
  | Bin Shr -> Some (a 0 asr (a 1 land 63))
  | Bin Band -> Some (a 0 land a 1)
  | Bin Bor -> Some (a 0 lor a 1)
  | Bin Bxor -> Some (a 0 lxor a 1)
  | Bin Land -> Some (b2i (a 0 <> 0 && a 1 <> 0))
  | Bin Lor -> Some (b2i (a 0 <> 0 || a 1 <> 0))
  | Bin Eq -> Some (b2i (a 0 = a 1))
  | Bin Neq -> Some (b2i (a 0 <> a 1))
  | Bin Lt -> Some (b2i (a 0 < a 1))
  | Bin Le -> Some (b2i (a 0 <= a 1))
  | Bin Gt -> Some (b2i (a 0 > a 1))
  | Bin Ge -> Some (b2i (a 0 >= a 1))
  | Un Neg -> Some (-(a 0))
  | Un Bnot -> Some (lnot (a 0))
  | Un Lnot -> Some (b2i (a 0 = 0))
  | Const n -> Some n
  | Mux -> Some (if a 0 <> 0 then a 1 else a 2)
  | Slice (hi, lo) ->
      let v = a 0 asr lo in
      let width = hi - lo + 1 in
      Some (if width >= 62 then v else v land ((1 lsl width) - 1))
  | Zext n ->
      let v = a 0 in
      Some (if n >= 62 then v else v land ((1 lsl n) - 1))
  | Sext _ -> Some (a 0)
  | Concat -> None (* needs operand widths; simulators handle it *)
  | Loop_mux | Read _ | Write _ | Call _ -> None
