lib/ir/opkind.ml: List Printf Width
