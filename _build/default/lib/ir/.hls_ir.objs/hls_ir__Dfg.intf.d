lib/ir/dfg.mli: Format Guard Opkind
