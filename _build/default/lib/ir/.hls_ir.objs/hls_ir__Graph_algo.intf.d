lib/ir/graph_algo.mli: Hashtbl
