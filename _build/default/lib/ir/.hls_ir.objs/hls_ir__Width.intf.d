lib/ir/width.mli:
