lib/ir/guard.mli: Format
