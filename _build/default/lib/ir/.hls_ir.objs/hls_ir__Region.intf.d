lib/ir/region.mli: Dfg Format Hashtbl
