lib/ir/graph_algo.ml: Hashtbl Int List Set
