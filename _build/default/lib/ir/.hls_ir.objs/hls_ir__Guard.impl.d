lib/ir/guard.ml: Format List Option String
