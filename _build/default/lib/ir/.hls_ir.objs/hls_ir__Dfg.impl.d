lib/ir/dfg.ml: Format Graph_algo Guard Hashtbl List Opkind Printf String
