lib/ir/cdfg.ml: Cfg Dfg Format Hashtbl List Opkind Printf String
