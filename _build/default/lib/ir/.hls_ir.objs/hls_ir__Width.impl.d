lib/ir/width.ml:
