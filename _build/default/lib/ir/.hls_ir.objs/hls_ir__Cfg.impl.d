lib/ir/cfg.ml: Format Graph_algo Hashtbl List Printf
