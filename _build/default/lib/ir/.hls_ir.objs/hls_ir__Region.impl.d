lib/ir/region.ml: Dfg Format Graph_algo Hashtbl List Opkind Printf
