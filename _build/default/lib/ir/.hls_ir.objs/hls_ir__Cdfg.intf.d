lib/ir/cdfg.mli: Cfg Dfg Format Hashtbl
