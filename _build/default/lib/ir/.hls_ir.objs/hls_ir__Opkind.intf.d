lib/ir/opkind.mli:
