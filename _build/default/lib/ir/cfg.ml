(** The control-flow graph.

    Nodes either delimit control steps ([State] corresponds to a SystemC
    [wait()]) or fork/join control ([Fork]/[Join] from conditionals,
    [Loop_head]/[Loop_tail] from loops).  Operations of the DFG are
    associated with CFG {e edges} — the control steps — via {!Cdfg}.

    The optimizer's predicate conversion removes [Fork]/[Join] pairs and the
    micro-architecture transformer converts pipelined loops into linear
    sequences of states; after those passes the regions handed to the
    scheduler are plain chains of [State] nodes. *)

type loop_kind = [ `Do_while | `While | `Infinite ]

type node_kind =
  | Entry
  | Exit
  | State  (** a wait() boundary: registers between the steps on each side *)
  | Fork of { cond : int  (** DFG op computing the branch condition *) }
  | Join
  | Loop_head of { kind : loop_kind; cond : int option  (** exit condition op *) }
  | Loop_tail of { head : int }

type node = { nid : int; mutable nkind : node_kind; mutable nname : string }

type edge_label = [ `Seq | `True | `False | `Back | `Exit_loop ]

type edge = { eid : int; esrc : int; edst : int; elabel : edge_label }

type t = {
  mutable next_nid : int;
  mutable next_eid : int;
  nodes : (int, node) Hashtbl.t;
  edges : (int, edge) Hashtbl.t;
  out_adj : (int, int list ref) Hashtbl.t;  (** node -> outgoing edge ids *)
  in_adj : (int, int list ref) Hashtbl.t;
}

let create () =
  {
    next_nid = 0;
    next_eid = 0;
    nodes = Hashtbl.create 16;
    edges = Hashtbl.create 16;
    out_adj = Hashtbl.create 16;
    in_adj = Hashtbl.create 16;
  }

let add_node ?(name = "") g kind =
  let id = g.next_nid in
  g.next_nid <- id + 1;
  let n = { nid = id; nkind = kind; nname = name } in
  Hashtbl.replace g.nodes id n;
  Hashtbl.replace g.out_adj id (ref []);
  Hashtbl.replace g.in_adj id (ref []);
  n

let node g id =
  match Hashtbl.find_opt g.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Cfg.node: no node %d" id)

let edge g id =
  match Hashtbl.find_opt g.edges id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Cfg.edge: no edge %d" id)

let adj tbl id = match Hashtbl.find_opt tbl id with Some r -> r | None -> let r = ref [] in Hashtbl.replace tbl id r; r

let add_edge ?(label = `Seq) g ~src ~dst =
  let id = g.next_eid in
  g.next_eid <- id + 1;
  let e = { eid = id; esrc = src; edst = dst; elabel = label } in
  Hashtbl.replace g.edges id e;
  let o = adj g.out_adj src in
  o := !o @ [ id ];
  let i = adj g.in_adj dst in
  i := !i @ [ id ];
  e

let out_edges g id = List.map (edge g) !(adj g.out_adj id)
let in_edges g id = List.map (edge g) !(adj g.in_adj id)

let remove_edge g eid =
  match Hashtbl.find_opt g.edges eid with
  | None -> ()
  | Some e ->
      Hashtbl.remove g.edges eid;
      let o = adj g.out_adj e.esrc in
      o := List.filter (fun i -> i <> eid) !o;
      let i = adj g.in_adj e.edst in
      i := List.filter (fun x -> x <> eid) !i

let remove_node g nid =
  List.iter (fun e -> remove_edge g e.eid) (out_edges g nid);
  List.iter (fun e -> remove_edge g e.eid) (in_edges g nid);
  Hashtbl.remove g.nodes nid;
  Hashtbl.remove g.out_adj nid;
  Hashtbl.remove g.in_adj nid

let nodes g =
  Hashtbl.fold (fun _ n acc -> n :: acc) g.nodes [] |> List.sort (fun a b -> compare a.nid b.nid)

let edges g =
  Hashtbl.fold (fun _ e acc -> e :: acc) g.edges [] |> List.sort (fun a b -> compare a.eid b.eid)

let n_nodes g = Hashtbl.length g.nodes
let n_edges g = Hashtbl.length g.edges

let find_entry g = List.find_opt (fun n -> n.nkind = Entry) (nodes g)
let find_exit g = List.find_opt (fun n -> n.nkind = Exit) (nodes g)

let kind_to_string = function
  | Entry -> "entry"
  | Exit -> "exit"
  | State -> "state"
  | Fork { cond } -> Printf.sprintf "fork(%%%d)" cond
  | Join -> "join"
  | Loop_head { kind; cond } ->
      let k = match kind with `Do_while -> "do_while" | `While -> "while" | `Infinite -> "inf" in
      Printf.sprintf "loop_head[%s%s]" k
        (match cond with Some c -> Printf.sprintf ",exit=%%%d" c | None -> "")
  | Loop_tail { head } -> Printf.sprintf "loop_tail(->%d)" head

let label_to_string = function
  | `Seq -> ""
  | `True -> "T"
  | `False -> "F"
  | `Back -> "back"
  | `Exit_loop -> "exit"

let pp fmt g =
  List.iter
    (fun n ->
      Format.fprintf fmt "n%d %s%s@." n.nid (kind_to_string n.nkind)
        (if n.nname = "" then "" else " (* " ^ n.nname ^ " *)"))
    (nodes g);
  List.iter
    (fun e ->
      Format.fprintf fmt "e%d: n%d -> n%d %s@." e.eid e.esrc e.edst (label_to_string e.elabel))
    (edges g)

(** Structural checks: single entry/exit, fork edges labelled T/F, loop tail
    points at a live head, all nodes reachable from entry. *)
let validate g =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (match List.filter (fun n -> n.nkind = Entry) (nodes g) with
  | [ _ ] -> ()
  | l -> err "expected exactly one entry node, found %d" (List.length l));
  List.iter
    (fun n ->
      match n.nkind with
      | Fork _ ->
          let labels = List.map (fun e -> e.elabel) (out_edges g n.nid) in
          if not (List.mem `True labels && List.mem `False labels) then
            err "fork n%d missing T/F out-edges" n.nid
      | Loop_tail { head } ->
          if not (Hashtbl.mem g.nodes head) then err "loop_tail n%d: dead head %d" n.nid head
      | _ -> ())
    (nodes g);
  (match find_entry g with
  | None -> ()
  | Some entry ->
      let succs id = List.map (fun e -> e.edst) (out_edges g id) in
      let seen = Graph_algo.reachable ~from:entry.nid ~succs in
      List.iter
        (fun n -> if not (Hashtbl.mem seen n.nid) then err "node n%d unreachable from entry" n.nid)
        (nodes g));
  List.rev !errs
