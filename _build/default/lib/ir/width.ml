(** Bit-width arithmetic.

    Widths are plain [int]s (number of bits, >= 1).  This module gathers the
    width-propagation rules used by elaboration and by the operand
    width-reduction pass, so that all agree on a single convention:
    values are two's-complement signed, and every operation produces the
    smallest width that can represent all results of its input widths. *)

type t = int

(** Maximum width the toolchain accepts.  Anything larger is a frontend
    error; keeping a bound makes the simulator's boxed-int arithmetic safe
    ([Int64]-free: we rely on OCaml's 63-bit native ints). *)
let max_width = 62

(** [bits_for_signed n] is the smallest two's-complement width that can
    represent [n]. *)
let bits_for_signed n =
  if n = 0 then 1
  else if n > 0 then
    let rec go w = if n < 1 lsl (w - 1) then w else go (w + 1) in
    go 1
  else
    let rec go w = if -n <= 1 lsl (w - 1) then w else go (w + 1) in
    go 1

let clamp w = if w < 1 then 1 else if w > max_width then max_width else w

(** Width of [a + b] / [a - b]: one growth bit over the wider operand. *)
let add_result wa wb = clamp (max wa wb + 1)

(** Width of [a * b]. *)
let mul_result wa wb = clamp (wa + wb)

(** Width of a division result (bounded by the dividend plus a sign bit). *)
let div_result wa _wb = clamp (wa + 1)

(** Width of a modulo result (bounded by the divisor). *)
let mod_result _wa wb = clamp wb

(** Bitwise operations keep the wider operand's width. *)
let bitwise_result wa wb = max wa wb

(** Left shift by a [wb]-bit amount can add up to [2^wb - 1] bits; we cap the
    growth at the shift amount's full range but never past [max_width]. *)
let shl_result wa wb = clamp (wa + (1 lsl min wb 6) - 1)

let shr_result wa _wb = wa

(** [truncate ~width v] reinterprets the low [width] bits of [v] as a signed
    two's-complement value.  This is the single place where simulation
    semantics of finite-width arithmetic are defined. *)
let truncate ~width v =
  let width = clamp width in
  if width >= 62 then v
  else
    let m = 1 lsl width in
    let v = v land (m - 1) in
    if v land (1 lsl (width - 1)) <> 0 then v - m else v

(** [fits ~width v] is true when [v] is representable in [width] signed
    bits. *)
let fits ~width v = truncate ~width v = v
