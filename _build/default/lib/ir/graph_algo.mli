(** Graph algorithms over integer-id graphs given as adjacency functions.

    All functions take the vertex set and a successor function; DFS-based
    ones are iterative, safe for the multi-thousand-node DFGs of the
    Fig. 9 experiment. *)

val topo_sort : nodes:int list -> succs:(int -> int list) -> int list option
(** Kahn's algorithm, dependencies first, ascending-id tie-break;
    [None] on cyclic input. *)

val scc : nodes:int list -> succs:(int -> int list) -> int list list
(** Tarjan's strongly connected components, in reverse topological order
    of the condensation. *)

val reachable : from:int -> succs:(int -> int list) -> (int, unit) Hashtbl.t
(** Nodes reachable from [from], inclusive. *)

val longest_path :
  nodes:int list -> succs:(int -> int list) -> weight:(int -> float) -> (int, float) Hashtbl.t
(** Heaviest-path weight ending at each node (inclusive of the node's own
    weight).  @raise Invalid_argument on cyclic input. *)

val has_path : from:int -> target:int -> succs:(int -> int list) -> bool
(** DFS reachability with early exit; [true] when [from = target]. *)
