(** The combined control/data flow graph: a {!Cfg.t}, a {!Dfg.t}, and the
    association of every DFG operation to the CFG edge (control step) on
    which the source specified it — the structure elaboration produces
    (Fig. 3 of the paper). *)

type t = {
  name : string;
  cfg : Cfg.t;
  dfg : Dfg.t;
  attach : (int, int) Hashtbl.t;  (** DFG op id -> CFG edge id *)
  in_ports : (string * int) list;  (** (name, width) *)
  out_ports : (string * int) list;
}

val create : name:string -> in_ports:(string * int) list -> out_ports:(string * int) list -> t

val attach : t -> op:int -> edge:int -> unit
val attachment : t -> int -> int option

val ops_on_edge : t -> edge:int -> int list
(** Ops attached to a control step, sorted by id. *)

val reattach_edge : t -> from_edge:int -> to_edge:int -> unit
(** Move every op from one control step to another (step merging). *)

val port_width : t -> string -> int option

val validate : t -> string list
(** {!Dfg.validate} + {!Cfg.validate} + cross-structure checks
    (attachments live, ports declared).  Empty = clean. *)

val pp : Format.formatter -> t -> unit
