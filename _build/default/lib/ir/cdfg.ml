(** The combined control/data flow graph: a {!Cfg.t}, a {!Dfg.t}, and the
    association of every DFG operation to the CFG edge (control step) on
    which the source code specified it.

    The attachment is what elaboration produces (Fig. 3 of the paper); the
    optimizer updates it when predicate conversion merges control steps, and
    the micro-architecture transformer consumes it when slicing pipelined
    loops into linear scheduling regions. *)

type t = {
  name : string;
  cfg : Cfg.t;
  dfg : Dfg.t;
  attach : (int, int) Hashtbl.t;  (** DFG op id -> CFG edge id *)
  in_ports : (string * int) list;  (** (name, width) *)
  out_ports : (string * int) list;
}

let create ~name ~in_ports ~out_ports =
  { name; cfg = Cfg.create (); dfg = Dfg.create (); attach = Hashtbl.create 64; in_ports; out_ports }

(** [attach t ~op ~edge] records that [op] belongs to control step [edge]. *)
let attach t ~op ~edge = Hashtbl.replace t.attach op edge

let attachment t op = Hashtbl.find_opt t.attach op

(** Ops attached to CFG edge [edge], sorted by op id. *)
let ops_on_edge t ~edge =
  Hashtbl.fold (fun op e acc -> if e = edge then op :: acc else acc) t.attach []
  |> List.sort compare

(** Move every op attached to [from_edge] onto [to_edge] (used when folding
    or merging control steps). *)
let reattach_edge t ~from_edge ~to_edge =
  let moved = ops_on_edge t ~edge:from_edge in
  List.iter (fun op -> Hashtbl.replace t.attach op to_edge) moved

let port_width t name =
  match List.assoc_opt name t.in_ports with
  | Some w -> Some w
  | None -> List.assoc_opt name t.out_ports

(** Cross-structure validation on top of {!Dfg.validate} and
    {!Cfg.validate}: every resource-consuming op is attached to a live CFG
    edge, and port ops reference declared ports. *)
let validate t =
  let errs = ref (Dfg.validate t.dfg @ Cfg.validate t.cfg) in
  let err fmt = Printf.ksprintf (fun s -> errs := !errs @ [ s ]) fmt in
  Dfg.iter_ops t.dfg (fun op ->
      (match Hashtbl.find_opt t.attach op.Dfg.id with
      | Some e ->
          if not (Hashtbl.mem t.cfg.Cfg.edges e) then
            err "op %d attached to dead CFG edge %d" op.Dfg.id e
      | None -> err "op %d (%s) has no CFG attachment" op.Dfg.id op.Dfg.name);
      match op.Dfg.kind with
      | Opkind.Read p ->
          if not (List.mem_assoc p t.in_ports) then err "op %d reads undeclared port %s" op.Dfg.id p
      | Opkind.Write p ->
          if not (List.mem_assoc p t.out_ports) then
            err "op %d writes undeclared port %s" op.Dfg.id p
      | _ -> ());
  !errs

let pp fmt t =
  Format.fprintf fmt "design %s@." t.name;
  Format.fprintf fmt "-- CFG --@.%a" Cfg.pp t.cfg;
  Format.fprintf fmt "-- DFG --@.%a" Dfg.pp t.dfg;
  List.iter
    (fun e ->
      let ops = ops_on_edge t ~edge:e.Cfg.eid in
      if ops <> [] then
        Format.fprintf fmt "edge e%d: ops [%s]@." e.Cfg.eid
          (String.concat "; " (List.map string_of_int ops)))
    (Cfg.edges t.cfg)
