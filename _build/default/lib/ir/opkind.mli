(** Operation kinds of the data-flow graph.

    Each DFG node carries one {!t}.  The classification functions are what
    the rest of the tool keys on: {!arity} (shape checking), {!rclass}
    (which datapath resource class implements the op — the basis of
    resource sharing, Section IV.A of the paper), {!complexity}
    (scheduling priority, Section IV.B) and {!result_width} (width
    propagation). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Bnot | Lnot

type t =
  | Bin of binop
  | Un of unop
  | Const of int  (** literal; width recorded on the node *)
  | Read of string  (** read of an input port *)
  | Write of string  (** write of an output port; input 0 is the value *)
  | Mux  (** [Mux (sel, a, b)]: [a] when [sel <> 0], else [b] *)
  | Loop_mux
      (** loop-carried merge: input 0 = initial value (pre-loop), input 1 =
          previous iteration's value (a distance-1 edge); selected by the
          controller's first-iteration flag *)
  | Slice of int * int  (** [Slice (hi, lo)]: bit-field extract *)
  | Zext of int
  | Sext of int
  | Concat  (** input 0 becomes the high bits *)
  | Call of call_spec
      (** black-box operation bound to a pre-designed, possibly multi-cycle
          IP block (Section IV.B item 2) *)

and call_spec = { callee : string; call_latency : int  (** cycles; 1 = combinational *) }

(** Resource classes: two operations may share a datapath instance only if
    they map to the same class (and compatible widths).  [R_wire] ops
    consume no resource and no delay. *)
type rclass =
  | R_addsub
  | R_mul
  | R_divmod
  | R_shift
  | R_logic
  | R_cmp_rel  (** [<], [<=], [>], [>=] *)
  | R_cmp_eq  (** [=], [<>] *)
  | R_mux
  | R_port_in
  | R_port_out
  | R_blackbox of string
  | R_wire

val rclass : t -> rclass

val arity : t -> int
(** Number of data inputs; [-1] for variable-arity calls. *)

val complexity : t -> float
(** Relative structural complexity ("more complex operations are scheduled
    first"). *)

val result_width : ?self:int -> t -> int list -> int
(** Propagate operand widths to the result width; [self] supplies the
    recorded width of width-carrying kinds ([Read], [Const], [Call]). *)

val binop_to_string : binop -> string
val unop_to_string : unop -> string
val to_string : t -> string
val rclass_to_string : rclass -> string

val is_resource_op : t -> bool
(** Does the op occupy a shareable datapath resource (participating in
    allocation, sharing muxes and busy tables)? *)

val is_commutative : t -> bool

val eval_pure : t -> int list -> int option
(** Evaluate over concrete operands (callers apply {!Width.truncate}).
    [None] for stateful/contextual kinds ([Read], [Write], [Loop_mux],
    [Call], [Concat]) — the simulators handle those. *)
