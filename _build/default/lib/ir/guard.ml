(** Execution guards (predicates) attached to DFG operations.

    Predicate conversion (Fig. 4 of the paper) replaces fork/join control
    with straight-line code in which every operation from a conditional
    branch carries a guard: a conjunction of (condition-op, polarity) atoms.
    Guards matter to the scheduler in two ways:

    - two operations with {e mutually exclusive} guards may share a resource
      on the same control step ("unless they depend on orthogonal
      predicates", Section V), and may be counted once by the initial
      resource estimator (Section IV.A);
    - a guarded operation whose result is committed with a register enable
      has the guard's arrival time on its timing path; the [Speculate]
      relaxation removes the guard from the enable path. *)

type atom = { pred : int  (** DFG op id computing the condition *); polarity : bool }

type t = atom list
(** Conjunction of atoms, kept sorted by [pred] id with no duplicate
    [pred].  The empty list is the always-true guard. *)

let always : t = []
let is_always (g : t) = g = []

let atom pred polarity = { pred; polarity }

let rec insert a = function
  | [] -> Some [ a ]
  | b :: rest ->
      if a.pred < b.pred then Some (a :: b :: rest)
      else if a.pred = b.pred then
        if a.polarity = b.polarity then Some (b :: rest) else None (* contradiction *)
      else Option.map (fun r -> b :: r) (insert a rest)

(** [conj g1 g2] is the conjunction, or [None] if contradictory (an op that
    can never execute; the optimizer deletes those). *)
let conj (g1 : t) (g2 : t) : t option =
  List.fold_left (fun acc a -> Option.bind acc (insert a)) (Some g1) g2

(** [add g ~pred ~polarity] conjoins one atom. *)
let add g ~pred ~polarity = conj g [ atom pred polarity ]

(** Two guards are mutually exclusive when they contain the same predicate
    with opposite polarities: the guarded ops can never both execute in the
    same iteration, so they may share a resource in the same state. *)
let mutually_exclusive (g1 : t) (g2 : t) =
  List.exists (fun a -> List.exists (fun b -> a.pred = b.pred && a.polarity <> b.polarity) g2) g1

(** [implies g1 g2]: every execution satisfying [g1] satisfies [g2]
    (i.e. [g2]'s atoms are a subset of [g1]'s). *)
let implies (g1 : t) (g2 : t) =
  List.for_all (fun b -> List.exists (fun a -> a.pred = b.pred && a.polarity = b.polarity) g1) g2

(** Predicate op ids mentioned by the guard. *)
let preds (g : t) = List.map (fun a -> a.pred) g

let equal (g1 : t) (g2 : t) = g1 = g2

(** Rewrite predicate ids (used when the optimizer replaces an op). *)
let map_preds f (g : t) : t =
  let renamed = List.map (fun a -> { a with pred = f a.pred }) g in
  List.sort_uniq (fun a b -> compare (a.pred, a.polarity) (b.pred, b.polarity)) renamed

let to_string (g : t) =
  if is_always g then "1"
  else
    String.concat " & "
      (List.map (fun a -> (if a.polarity then "p" else "!p") ^ string_of_int a.pred) g)

let pp fmt g = Format.pp_print_string fmt (to_string g)
