(** Minimal CSV output (machine-readable companions to the tables). *)

val escape : string -> string
val render : string list list -> string
val write : path:string -> string list list -> unit
