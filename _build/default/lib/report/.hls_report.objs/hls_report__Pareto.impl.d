lib/report/pareto.ml: List
