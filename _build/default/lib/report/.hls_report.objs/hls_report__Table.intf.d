lib/report/table.mli:
