lib/report/plot.mli:
