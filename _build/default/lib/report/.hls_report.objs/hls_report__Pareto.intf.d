lib/report/pareto.mli:
