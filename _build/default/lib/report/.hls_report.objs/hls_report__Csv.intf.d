lib/report/csv.mli:
