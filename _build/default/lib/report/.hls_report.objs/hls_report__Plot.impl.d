lib/report/plot.ml: Array Buffer List Printf String
