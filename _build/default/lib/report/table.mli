(** ASCII tables for the experiment harness. *)

val render : ?title:string -> string list list -> string
(** First row is the header; ragged rows pad with blanks. *)

val print : ?title:string -> string list list -> unit

val cell_f : float -> string
val cell_f0 : float -> string
val cell_i : int -> string
