(** Pareto-front extraction for the design-space exploration reports
    (Section VI: "the best Pareto point can be achieved only by
    pipelining"). *)

type 'a point = { p_x : float; p_y : float; p_tag : 'a }

let point ~x ~y tag = { p_x = x; p_y = y; p_tag = tag }

(** [dominates a b]: [a] is no worse in both minimized dimensions and
    strictly better in at least one. *)
let dominates a b =
  a.p_x <= b.p_x && a.p_y <= b.p_y && (a.p_x < b.p_x || a.p_y < b.p_y)

(** Minimizing front, sorted by x. *)
let front (points : 'a point list) : 'a point list =
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points)) points
  |> List.sort (fun a b -> compare (a.p_x, a.p_y) (b.p_x, b.p_y))

(** Points on the front, tagged. *)
let front_tags points = List.map (fun p -> p.p_tag) (front points)

let is_on_front points p = List.exists (fun q -> q == p) (front points)
