(** Minimal CSV output for experiment records (machine-readable companions
    to the ASCII tables). *)

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render (rows : string list list) : string =
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map escape row)) rows) ^ "\n"

let write ~path rows =
  let oc = open_out path in
  output_string oc (render rows);
  close_out oc
