(** ASCII tables for the experiment harness. *)

(** Render rows (first row = header) with column alignment. *)
let render ?(title = "") (rows : string list list) : string =
  match rows with
  | [] -> ""
  | header :: _ ->
      let n_cols = List.length header in
      let width c =
        List.fold_left
          (fun acc row -> max acc (String.length (try List.nth row c with _ -> "")))
          0 rows
      in
      let widths = List.init n_cols width in
      let buf = Buffer.create 256 in
      if title <> "" then Buffer.add_string buf (title ^ "\n");
      let sep =
        "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+\n"
      in
      let render_row row =
        Buffer.add_string buf "|";
        List.iteri
          (fun c w ->
            let cell = try List.nth row c with _ -> "" in
            Buffer.add_string buf (Printf.sprintf " %-*s |" w cell))
          widths;
        Buffer.add_char buf '\n'
      in
      Buffer.add_string buf sep;
      render_row header;
      Buffer.add_string buf sep;
      List.iter render_row (List.tl rows);
      Buffer.add_string buf sep;
      Buffer.contents buf

let print ?title rows = print_string (render ?title rows)

let cell_f v = Printf.sprintf "%.1f" v
let cell_f0 v = Printf.sprintf "%.0f" v
let cell_i v = string_of_int v
