(** Combinator DSL for building {!Ast.design}s from OCaml, mirroring the
    SystemC style of the paper's Fig. 1.

    {[
      Dsl.(design "acc"
        ~ins:[ in_port "a" 8 ] ~outs:[ out_port "y" 16 ] ~vars:[ var "s" 16 ]
        [ "s" := int 0; wait;
          do_while ~ii:1 [ "s" := v "s" +: port "a"; wait; write "y" (v "s") ] (int 1) ])
    ]}
*)

open Ast

val in_port : string -> int -> string * int
val out_port : string -> int -> string * int
val var : string -> int -> string * int

val design :
  ?ins:(string * int) list ->
  ?outs:(string * int) list ->
  ?vars:(string * int) list ->
  string ->
  stmt list ->
  design

(** {2 Expressions} *)

val int : int -> expr
val int_w : int -> width:int -> expr
val v : string -> expr
val port : string -> expr
val slice : expr -> int -> int -> expr
val call : string -> expr list -> width:int -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr
val ( >>: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val neg : expr -> expr
val bnot : expr -> expr
val lnot : expr -> expr
val cond : expr -> expr -> expr -> expr

(** {2 Statements} *)

val ( := ) : string -> expr -> stmt
val assign : string -> expr -> stmt
val write : string -> expr -> stmt
val wait : stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val stall_until : expr -> stmt

val attrs :
  ?name:string -> ?ii:int -> ?min_latency:int -> ?max_latency:int -> ?unroll:bool -> unit ->
  loop_attrs

val do_while :
  ?name:string -> ?ii:int -> ?min_latency:int -> ?max_latency:int -> stmt list -> expr -> stmt

val while_ :
  ?name:string -> ?ii:int -> ?min_latency:int -> ?max_latency:int -> expr -> stmt list -> stmt

val for_ :
  ?name:string ->
  ?ii:int ->
  ?min_latency:int ->
  ?max_latency:int ->
  ?unroll:bool ->
  string ->
  from:int ->
  below:int ->
  stmt list ->
  stmt
