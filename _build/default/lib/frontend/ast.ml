(** Behavioural input language.

    This AST is the reproduction's substitute for the paper's SystemC
    frontend: a design is a module with input/output ports and a single
    thread whose body runs forever (an implicit [while (true)] with an
    implicit leading [wait()], exactly the shape of Fig. 1).  Statements are
    untimed except for explicit [Wait]s, which delimit clock states in timed
    mode and act as latency hints otherwise.

    Designs are written either with the combinator DSL ({!Dsl}) or in the
    textual [.bhv] language ({!Parser}). *)

type expr =
  | Int of int  (** literal, width inferred from the value *)
  | Int_w of int * int  (** literal with explicit width *)
  | Var of string
  | Port of string  (** read of an input port *)
  | Bin of Hls_ir.Opkind.binop * expr * expr
  | Un of Hls_ir.Opkind.unop * expr
  | Cond of expr * expr * expr  (** C ternary [c ? a : b] *)
  | Slice of expr * int * int  (** [e.range(hi, lo)] *)
  | Call of string * expr list * int  (** callee, args, result width *)

type loop_attrs = {
  l_name : string;
  l_ii : int option;  (** pipeline with this initiation interval *)
  l_min_latency : int;  (** designer latency bounds for the loop body *)
  l_max_latency : int;
  l_unroll : bool;  (** fully unroll (only for counted [For] loops) *)
}

let default_attrs =
  { l_name = "loop"; l_ii = None; l_min_latency = 1; l_max_latency = 64; l_unroll = false }

type stmt =
  | Assign of string * expr
  | Write of string * expr  (** output-port write *)
  | Wait  (** clock boundary *)
  | If of expr * stmt list * stmt list
  | Do_while of stmt list * expr * loop_attrs  (** body; continue condition *)
  | While of expr * stmt list * loop_attrs
  | For of string * int * int * stmt list * loop_attrs
      (** [For (i, lo, hi, body)]: i = lo; while (i < hi) { body; i++ } *)
  | Stall_until of expr
      (** pipeline stall: freeze until the expression becomes nonzero (the
          paper's "stalling loop" [while (!cond) wait();]) *)

type design = {
  d_name : string;
  d_ins : (string * int) list;  (** input ports: name, width *)
  d_outs : (string * int) list;
  d_vars : (string * int) list;  (** declared variables with widths *)
  d_body : stmt list;
}

(** {2 Traversals} *)

let rec expr_ports acc = function
  | Int _ | Int_w _ | Var _ -> acc
  | Port p -> p :: acc
  | Bin (_, a, b) -> expr_ports (expr_ports acc a) b
  | Un (_, a) | Slice (a, _, _) -> expr_ports acc a
  | Cond (a, b, c) -> expr_ports (expr_ports (expr_ports acc a) b) c
  | Call (_, args, _) -> List.fold_left expr_ports acc args

let rec expr_vars acc = function
  | Int _ | Int_w _ | Port _ -> acc
  | Var v -> v :: acc
  | Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Un (_, a) | Slice (a, _, _) -> expr_vars acc a
  | Cond (a, b, c) -> expr_vars (expr_vars (expr_vars acc a) b) c
  | Call (_, args, _) -> List.fold_left expr_vars acc args

(** Variables assigned anywhere in a statement list (including loop
    counters). *)
let rec assigned_vars stmts =
  List.concat_map
    (function
      | Assign (v, _) -> [ v ]
      | Write _ | Wait | Stall_until _ -> []
      | If (_, t, f) -> assigned_vars t @ assigned_vars f
      | Do_while (b, _, _) | While (_, b, _) -> assigned_vars b
      | For (v, _, _, b, _) -> v :: assigned_vars b)
    stmts

(** Number of [Wait]s along the statement list (loops count their body
    once; used for latency hints and the Fig. 4 balancing pass). *)
let rec count_waits stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Wait -> 1
      | If (_, t, f) -> max (count_waits t) (count_waits f)
      | Do_while (b, _, _) | While (_, b, _) | For (_, _, _, b, _) -> count_waits b
      | Assign _ | Write _ | Stall_until _ -> 0)
    0 stmts

let rec contains_loop stmts =
  List.exists
    (function
      | Do_while _ | While _ | For _ -> true
      | If (_, t, f) -> contains_loop t || contains_loop f
      | Assign _ | Write _ | Wait | Stall_until _ -> false)
    stmts

(** {2 Printing} *)

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Int_w (n, w) -> Format.fprintf fmt "%d'%d" w n
  | Var v -> Format.pp_print_string fmt v
  | Port p -> Format.fprintf fmt "$%s" p
  | Bin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (Hls_ir.Opkind.binop_to_string op) pp_expr b
  | Un (op, a) -> Format.fprintf fmt "%s%a" (Hls_ir.Opkind.unop_to_string op) pp_expr a
  | Cond (c, a, b) -> Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Slice (e, hi, lo) -> Format.fprintf fmt "%a[%d:%d]" pp_expr e hi lo
  | Call (f, args, _) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_expr)
        args

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v pp_expr e
  | Write (p, e) -> Format.fprintf fmt "$%s = %a;" p pp_expr e
  | Wait -> Format.fprintf fmt "wait();"
  | If (c, t, []) -> Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_stmts t
  | If (c, t, f) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c pp_stmts t
        pp_stmts f
  | Do_while (b, c, a) ->
      Format.fprintf fmt "@[<v 2>do { /* %s */@,%a@]@,} while (%a);" a.l_name pp_stmts b pp_expr c
  | While (c, b, a) ->
      Format.fprintf fmt "@[<v 2>while (%a) { /* %s */@,%a@]@,}" pp_expr c a.l_name pp_stmts b
  | For (v, lo, hi, b, a) ->
      Format.fprintf fmt "@[<v 2>for (%s = %d; %s < %d; %s++) { /* %s */@,%a@]@,}" v lo v hi v
        a.l_name pp_stmts b
  | Stall_until e -> Format.fprintf fmt "stall_until (%a);" pp_expr e

and pp_stmts fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp_design fmt d =
  Format.fprintf fmt "@[<v 2>design %s {@," d.d_name;
  List.iter (fun (p, w) -> Format.fprintf fmt "in %s : %d;@," p w) d.d_ins;
  List.iter (fun (p, w) -> Format.fprintf fmt "out %s : %d;@," p w) d.d_outs;
  List.iter (fun (v, w) -> Format.fprintf fmt "var %s : %d;@," v w) d.d_vars;
  pp_stmts fmt d.d_body;
  Format.fprintf fmt "@]@,}"
