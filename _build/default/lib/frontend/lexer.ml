(** Lexer for the textual [.bhv] behavioural language (the file-based
    counterpart of the {!Dsl} combinators; see {!Parser} for the grammar). *)

type token =
  | INT of int
  | IDENT of string
  | DOLLAR  (** port sigil *)
  | KW_DESIGN
  | KW_IN
  | KW_OUT
  | KW_VAR
  | KW_WAIT
  | KW_IF
  | KW_ELSE
  | KW_DO
  | KW_WHILE
  | KW_FOR
  | KW_STALL_UNTIL
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COLON
  | COMMA
  | ASSIGN  (** [=] *)
  | PLUSPLUS
  | DOTDOT
  | QUESTION
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | TILDE
  | BANG
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { line : int; message : string }

let err line fmt = Printf.ksprintf (fun m -> raise (Error { line; message = m })) fmt

let keyword = function
  | "design" -> Some KW_DESIGN
  | "in" -> Some KW_IN
  | "out" -> Some KW_OUT
  | "var" -> Some KW_VAR
  | "wait" -> Some KW_WAIT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "do" -> Some KW_DO
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "stall_until" -> Some KW_STALL_UNTIL
  | _ -> None

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | DOLLAR -> "$"
  | KW_DESIGN -> "design"
  | KW_IN -> "in"
  | KW_OUT -> "out"
  | KW_VAR -> "var"
  | KW_WAIT -> "wait"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_DO -> "do"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_STALL_UNTIL -> "stall_until"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COLON -> ":"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUSPLUS -> "++"
  | DOTDOT -> ".."
  | QUESTION -> "?"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | SHL -> "<<"
  | SHR -> ">>"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | PIPE -> "|"
  | PIPEPIPE -> "||"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

(** Tokenize a source string; tokens are paired with their line number. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident c = is_ident_start c || is_digit c in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then err !line "unterminated comment"
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      push (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      push (match keyword word with Some k -> k | None -> IDENT word);
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let t, len =
        match two with
        | "==" -> (EQ, 2)
        | "!=" -> (NEQ, 2)
        | "<=" -> (LE, 2)
        | ">=" -> (GE, 2)
        | "<<" -> (SHL, 2)
        | ">>" -> (SHR, 2)
        | "&&" -> (AMPAMP, 2)
        | "||" -> (PIPEPIPE, 2)
        | "++" -> (PLUSPLUS, 2)
        | ".." -> (DOTDOT, 2)
        | _ -> (
            match c with
            | '$' -> (DOLLAR, 1)
            | '{' -> (LBRACE, 1)
            | '}' -> (RBRACE, 1)
            | '(' -> (LPAREN, 1)
            | ')' -> (RPAREN, 1)
            | '[' -> (LBRACKET, 1)
            | ']' -> (RBRACKET, 1)
            | ';' -> (SEMI, 1)
            | ':' -> (COLON, 1)
            | ',' -> (COMMA, 1)
            | '=' -> (ASSIGN, 1)
            | '?' -> (QUESTION, 1)
            | '+' -> (PLUS, 1)
            | '-' -> (MINUS, 1)
            | '*' -> (STAR, 1)
            | '/' -> (SLASH, 1)
            | '%' -> (PERCENT, 1)
            | '&' -> (AMP, 1)
            | '|' -> (PIPE, 1)
            | '^' -> (CARET, 1)
            | '~' -> (TILDE, 1)
            | '!' -> (BANG, 1)
            | '<' -> (LT, 1)
            | '>' -> (GT, 1)
            | _ -> err !line "unexpected character %C" c)
      in
      push t;
      i := !i + len
    end
  done;
  push EOF;
  List.rev !toks
