(** Recursive-descent parser for the [.bhv] behavioural language.

    {v
      design example1 {
        in  mask   : 32;
        in  chrome : 32;
        out pixel  : 32;
        var aver   : 32;

        aver = 0;
        wait();
        do [name=main, latency=1..3] {
          filt  = $mask;
          delta = $mask * $chrome;
          aver  = aver + delta;
          if (aver > $th) { aver = aver * $scale; }
          wait();
          $pixel = aver * filt;
        } while (delta != 0);
      }
    v}

    Loop attribute lists accept [ii=N], [latency=LO..HI], [unroll] and
    [name=IDENT].  [$p] reads input port [p] in expressions and writes
    output port [p] on the left of an assignment.  Expressions follow C
    precedence; [e[hi:lo]] is a bit slice. *)

open Ast

exception Error of { line : int; message : string }

let err line fmt = Printf.ksprintf (fun m -> raise (Error { line; message = m })) fmt

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF
let line_of st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t =
  if peek st = t then advance st
  else err (line_of st) "expected '%s', found '%s'" (Lexer.token_to_string t)
         (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> err (line_of st) "expected identifier, found '%s'" (Lexer.token_to_string t)

let int_lit st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | Lexer.MINUS ->
      advance st;
      (match peek st with
      | Lexer.INT n ->
          advance st;
          -n
      | t -> err (line_of st) "expected integer, found '%s'" (Lexer.token_to_string t))
  | t -> err (line_of st) "expected integer, found '%s'" (Lexer.token_to_string t)

(* ---- expressions, C precedence ---- *)

let rec expr st = ternary st

and ternary st =
  let c = logical_or st in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let a = expr st in
    expect st Lexer.COLON;
    let b = ternary st in
    Cond (c, a, b)
  end
  else c

and binary_level ops next st =
  let rec go acc =
    match List.assoc_opt (peek st) ops with
    | Some op ->
        advance st;
        let rhs = next st in
        go (Bin (op, acc, rhs))
    | None -> acc
  in
  go (next st)

and logical_or st = binary_level [ (Lexer.PIPEPIPE, Hls_ir.Opkind.Lor) ] logical_and st
and logical_and st = binary_level [ (Lexer.AMPAMP, Hls_ir.Opkind.Land) ] bit_or st
and bit_or st = binary_level [ (Lexer.PIPE, Hls_ir.Opkind.Bor) ] bit_xor st
and bit_xor st = binary_level [ (Lexer.CARET, Hls_ir.Opkind.Bxor) ] bit_and st
and bit_and st = binary_level [ (Lexer.AMP, Hls_ir.Opkind.Band) ] equality st

and equality st =
  binary_level [ (Lexer.EQ, Hls_ir.Opkind.Eq); (Lexer.NEQ, Hls_ir.Opkind.Neq) ] relational st

and relational st =
  binary_level
    [ (Lexer.LT, Hls_ir.Opkind.Lt); (Lexer.LE, Hls_ir.Opkind.Le); (Lexer.GT, Hls_ir.Opkind.Gt);
      (Lexer.GE, Hls_ir.Opkind.Ge) ]
    shift st

and shift st =
  binary_level [ (Lexer.SHL, Hls_ir.Opkind.Shl); (Lexer.SHR, Hls_ir.Opkind.Shr) ] additive st

and additive st =
  binary_level [ (Lexer.PLUS, Hls_ir.Opkind.Add); (Lexer.MINUS, Hls_ir.Opkind.Sub) ] multiplicative st

and multiplicative st =
  binary_level
    [ (Lexer.STAR, Hls_ir.Opkind.Mul); (Lexer.SLASH, Hls_ir.Opkind.Div);
      (Lexer.PERCENT, Hls_ir.Opkind.Mod) ]
    unary st

and unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Un (Hls_ir.Opkind.Neg, unary st)
  | Lexer.TILDE ->
      advance st;
      Un (Hls_ir.Opkind.Bnot, unary st)
  | Lexer.BANG ->
      advance st;
      Un (Hls_ir.Opkind.Lnot, unary st)
  | _ -> postfix st

and postfix st =
  let e = primary st in
  if peek st = Lexer.LBRACKET then begin
    advance st;
    let hi = int_lit st in
    expect st Lexer.COLON;
    let lo = int_lit st in
    expect st Lexer.RBRACKET;
    Slice (e, hi, lo)
  end
  else e

and primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Int n
  | Lexer.DOLLAR ->
      advance st;
      Port (ident st)
  | Lexer.IDENT name ->
      advance st;
      if peek st = Lexer.LPAREN then begin
        (* call: name(args) with the result width defaulting to 32; an
           explicit width uses name:width(args) — rare, kept simple *)
        advance st;
        let args = ref [] in
        if peek st <> Lexer.RPAREN then begin
          args := [ expr st ];
          while peek st = Lexer.COMMA do
            advance st;
            args := expr st :: !args
          done
        end;
        expect st Lexer.RPAREN;
        Call (name, List.rev !args, 32)
      end
      else Var name
  | Lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Lexer.RPAREN;
      e
  | t -> err (line_of st) "expected expression, found '%s'" (Lexer.token_to_string t)

(* ---- loop attributes ---- *)

let attrs st =
  if peek st <> Lexer.LBRACKET then default_attrs
  else begin
    advance st;
    let a = ref default_attrs in
    let one () =
      match peek st with
      | Lexer.IDENT "ii" ->
          advance st;
          expect st Lexer.ASSIGN;
          a := { !a with l_ii = Some (int_lit st) }
      | Lexer.IDENT "latency" ->
          advance st;
          expect st Lexer.ASSIGN;
          let lo = int_lit st in
          expect st Lexer.DOTDOT;
          let hi = int_lit st in
          a := { !a with l_min_latency = lo; l_max_latency = hi }
      | Lexer.IDENT "unroll" ->
          advance st;
          a := { !a with l_unroll = true }
      | Lexer.IDENT "name" ->
          advance st;
          expect st Lexer.ASSIGN;
          a := { !a with l_name = ident st }
      | t -> err (line_of st) "unknown loop attribute '%s'" (Lexer.token_to_string t)
    in
    one ();
    while peek st = Lexer.COMMA do
      advance st;
      one ()
    done;
    expect st Lexer.RBRACKET;
    !a
  end

(* ---- statements ---- *)

let rec stmt st : stmt =
  match peek st with
  | Lexer.KW_WAIT ->
      advance st;
      expect st Lexer.LPAREN;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Wait
  | Lexer.KW_STALL_UNTIL ->
      advance st;
      expect st Lexer.LPAREN;
      let e = expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Stall_until e
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let c = expr st in
      expect st Lexer.RPAREN;
      let t = block st in
      let f = if peek st = Lexer.KW_ELSE then (advance st; block st) else [] in
      If (c, t, f)
  | Lexer.KW_DO ->
      advance st;
      let a = attrs st in
      let body = block st in
      expect st Lexer.KW_WHILE;
      expect st Lexer.LPAREN;
      let c = expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Do_while (body, c, a)
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let c = expr st in
      expect st Lexer.RPAREN;
      let a = attrs st in
      let body = block st in
      While (c, body, a)
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let v = ident st in
      expect st Lexer.ASSIGN;
      let lo = int_lit st in
      expect st Lexer.SEMI;
      let v2 = ident st in
      if v2 <> v then err (line_of st) "for-loop condition must test '%s'" v;
      expect st Lexer.LT;
      let hi = int_lit st in
      expect st Lexer.SEMI;
      let v3 = ident st in
      if v3 <> v then err (line_of st) "for-loop increment must bump '%s'" v;
      expect st Lexer.PLUSPLUS;
      expect st Lexer.RPAREN;
      let a = attrs st in
      let body = block st in
      For (v, lo, hi, body, a)
  | Lexer.DOLLAR ->
      advance st;
      let p = ident st in
      expect st Lexer.ASSIGN;
      let e = expr st in
      expect st Lexer.SEMI;
      Write (p, e)
  | Lexer.IDENT _ ->
      let v = ident st in
      expect st Lexer.ASSIGN;
      let e = expr st in
      expect st Lexer.SEMI;
      Assign (v, e)
  | t -> err (line_of st) "expected statement, found '%s'" (Lexer.token_to_string t)

and block st =
  expect st Lexer.LBRACE;
  let stmts = ref [] in
  while peek st <> Lexer.RBRACE do
    stmts := stmt st :: !stmts
  done;
  expect st Lexer.RBRACE;
  List.rev !stmts

(* ---- design ---- *)

let design_of_tokens toks : design =
  let st = { toks } in
  expect st Lexer.KW_DESIGN;
  let name = ident st in
  expect st Lexer.LBRACE;
  let ins = ref [] and outs = ref [] and vars = ref [] in
  let rec decls () =
    match peek st with
    | Lexer.KW_IN | Lexer.KW_OUT | Lexer.KW_VAR ->
        let kind = peek st in
        advance st;
        let n = ident st in
        expect st Lexer.COLON;
        let w = int_lit st in
        expect st Lexer.SEMI;
        (match kind with
        | Lexer.KW_IN -> ins := (n, w) :: !ins
        | Lexer.KW_OUT -> outs := (n, w) :: !outs
        | _ -> vars := (n, w) :: !vars);
        decls ()
    | _ -> ()
  in
  decls ();
  let stmts = ref [] in
  while peek st <> Lexer.RBRACE do
    stmts := stmt st :: !stmts
  done;
  expect st Lexer.RBRACE;
  {
    d_name = name;
    d_ins = List.rev !ins;
    d_outs = List.rev !outs;
    d_vars = List.rev !vars;
    d_body = List.rev !stmts;
  }

(** Parse a [.bhv] source string. *)
let parse_string (src : string) : design =
  try design_of_tokens (Lexer.tokenize src)
  with Lexer.Error { line; message } -> raise (Error { line; message })

(** Parse a [.bhv] file. *)
let parse_file (path : string) : design =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
