(** Combinator DSL for building {!Ast.design}s from OCaml.

    Mirrors the SystemC style of the paper's Fig. 1:

    {[
      let example1 =
        Dsl.(
          design "example1"
            ~ins:[ in_port "mask" 32; in_port "chrome" 32 ]
            ~outs:[ out_port "pixel" 32 ]
            ~vars:[ var "aver" 32 ]
            [ aver := int 0; wait;
              do_while ~name:"main"
                [ ... ]
                (v "delta" <>: int 0) ])
    ]}
*)

open Ast

let in_port name width = (name, width)
let out_port name width = (name, width)
let var name width = (name, width)

let design ?(ins = []) ?(outs = []) ?(vars = []) name body =
  { d_name = name; d_ins = ins; d_outs = outs; d_vars = vars; d_body = body }

(* expressions *)
let int n = Int n
let int_w n ~width = Int_w (n, width)
let v name = Var name
let port name = Port name
let slice e hi lo = Slice (e, hi, lo)
let call f args ~width = Call (f, args, width)

let ( +: ) a b = Bin (Hls_ir.Opkind.Add, a, b)
let ( -: ) a b = Bin (Hls_ir.Opkind.Sub, a, b)
let ( *: ) a b = Bin (Hls_ir.Opkind.Mul, a, b)
let ( /: ) a b = Bin (Hls_ir.Opkind.Div, a, b)
let ( %: ) a b = Bin (Hls_ir.Opkind.Mod, a, b)
let ( <<: ) a b = Bin (Hls_ir.Opkind.Shl, a, b)
let ( >>: ) a b = Bin (Hls_ir.Opkind.Shr, a, b)
let ( &: ) a b = Bin (Hls_ir.Opkind.Band, a, b)
let ( |: ) a b = Bin (Hls_ir.Opkind.Bor, a, b)
let ( ^: ) a b = Bin (Hls_ir.Opkind.Bxor, a, b)
let ( =: ) a b = Bin (Hls_ir.Opkind.Eq, a, b)
let ( <>: ) a b = Bin (Hls_ir.Opkind.Neq, a, b)
let ( <: ) a b = Bin (Hls_ir.Opkind.Lt, a, b)
let ( <=: ) a b = Bin (Hls_ir.Opkind.Le, a, b)
let ( >: ) a b = Bin (Hls_ir.Opkind.Gt, a, b)
let ( >=: ) a b = Bin (Hls_ir.Opkind.Ge, a, b)
let ( &&: ) a b = Bin (Hls_ir.Opkind.Land, a, b)
let ( ||: ) a b = Bin (Hls_ir.Opkind.Lor, a, b)
let neg a = Un (Hls_ir.Opkind.Neg, a)
let bnot a = Un (Hls_ir.Opkind.Bnot, a)
let lnot a = Un (Hls_ir.Opkind.Lnot, a)
let cond c a b = Cond (c, a, b)

(* statements *)
let ( := ) name e = Assign (name, e)
let assign name e = Assign (name, e)
let write p e = Write (p, e)
let wait = Wait
let if_ c t f = If (c, t, f)
let when_ c t = If (c, t, [])
let stall_until e = Stall_until e

let attrs ?(name = "loop") ?ii ?(min_latency = 1) ?(max_latency = 64) ?(unroll = false) () =
  { l_name = name; l_ii = ii; l_min_latency = min_latency; l_max_latency = max_latency; l_unroll = unroll }

let do_while ?name ?ii ?min_latency ?max_latency body continue_cond =
  Do_while (body, continue_cond, attrs ?name ?ii ?min_latency ?max_latency ())

let while_ ?name ?ii ?min_latency ?max_latency c body =
  While (c, body, attrs ?name ?ii ?min_latency ?max_latency ())

let for_ ?name ?ii ?min_latency ?max_latency ?unroll counter ~from ~below body =
  For (counter, from, below, body, attrs ?name ?ii ?min_latency ?max_latency ?unroll ())
