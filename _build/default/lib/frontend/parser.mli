(** Recursive-descent parser for the textual [.bhv] behavioural language.

    {v
      design example1 {
        in  mask : 32;  out pixel : 32;  var aver : 32;
        aver = 0;
        wait();
        do [name=main, latency=1..3, ii=2] {
          aver = aver + $mask * $chrome;
          if (aver > $th) { aver = aver * $scale; }
          wait();
          $pixel = aver;
        } while (aver != 0);
      }
    v}

    [$p] reads input port [p] in expressions and writes output port [p] on
    an assignment's left; loop attribute lists accept [ii=N],
    [latency=LO..HI], [unroll] and [name=IDENT]; expressions follow C
    precedence; [e[hi:lo]] is a bit slice; [//] and [/* */] comment. *)

exception Error of { line : int; message : string }

val parse_string : string -> Ast.design
val parse_file : string -> Ast.design
