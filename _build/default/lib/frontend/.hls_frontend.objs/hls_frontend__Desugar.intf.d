lib/frontend/desugar.mli: Ast
