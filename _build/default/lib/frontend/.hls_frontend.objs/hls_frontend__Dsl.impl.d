lib/frontend/dsl.ml: Ast Hls_ir
