lib/frontend/desugar.ml: Ast Hls_ir List Printf
