lib/frontend/parser.ml: Ast Hls_ir Lexer List Printf
