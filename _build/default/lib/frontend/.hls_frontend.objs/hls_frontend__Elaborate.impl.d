lib/frontend/elaborate.ml: Ast Cdfg Cfg Check Desugar Dfg Guard Hashtbl Hls_ir List Opkind Option Printf Region Width
