lib/frontend/check.ml: Ast Desugar Hashtbl Hls_ir List Printf String
