lib/frontend/dsl.mli: Ast
