lib/frontend/elaborate.mli: Ast Cdfg Hls_ir Region
