lib/frontend/ast.ml: Format Hls_ir List
