(** AST lowering ahead of elaboration:

    - [For] loops unroll (when requested, or always when nested — the
      paper requires inner loops to be unrolled) or lower to counter +
      [Do_while];
    - constant-condition [While] becomes [Do_while]; data-dependent
      [while] is rejected with a pointer at [do/while];
    - wait-bearing conditionals are balanced and split at waits — the
      latency-balancing half of Fig. 4's predicate conversion
      ([s1]/[s2] merging into [s1_2]). *)

open Ast

exception Error of string

val max_unroll : int

val split_at_waits : stmt list -> stmt list list
val balance_if : expr -> stmt list -> stmt list -> stmt list

val lower_stmts : in_loop:bool -> stmt list -> stmt list

val design : design -> design
(** Lower a whole design; the result contains only [Assign], [Write],
    [Wait], wait-free [If], [Stall_until] and top-level [Do_while]. *)
