(** Initial resource-set estimation (Section IV.A).

    Produces a lower bound on the number of resources of each type before
    the first scheduling pass:

    - operations are grouped into compatibility classes (same
      {!Hls_techlib.Resource} class, widths within the merge rule);
    - candidate intervals are formed from the timing-aware ASAP/ALAP ranges
      of the class members (every [asap, alap] combination);
    - the demand of an interval is the number of member ops whose life span
      is contained in it — counting mutually exclusive ops (opposite
      predicate polarities from the branch-predication transform) once —
      divided by the interval's capacity;
    - in a pipelined region the capacity of an interval is additionally
      bounded by II, since operations on equivalent steps cannot share
      (Example 2 of the paper: with II = 2 and three multiplications in
      three states, two multipliers are the lower bound);
    - the class lower bound is the maximum demand over all intervals.

    The estimate "might be reconsidered during scheduling": the expert
    system adds resources when passes fail for lack of them. *)

open Hls_ir
open Hls_techlib

type cls = {
  mutable c_rtype : Resource.t;  (** merged (element-wise max) type *)
  mutable c_ops : Dfg.op list;
}

(** Partition the region's resource ops into compatibility classes. *)
let classes (region : Region.t) : cls list =
  let dfg = region.Region.dfg in
  let cs = ref [] in
  List.iter
    (fun op ->
      match Resource.of_op dfg op with
      | None -> ()
      | Some rt ->
          if Opkind.is_resource_op op.Dfg.kind then begin
            match List.find_opt (fun c -> Resource.can_merge c.c_rtype rt) !cs with
            | Some c ->
                c.c_rtype <- Resource.merge c.c_rtype rt;
                c.c_ops <- op :: c.c_ops
            | None -> cs := { c_rtype = rt; c_ops = [ op ] } :: !cs
          end)
    (Region.member_ops region);
  List.rev !cs

(** Greedy exclusivity grouping: ops that are pairwise mutually exclusive
    can occupy one resource slot; returns the number of slots needed for
    [ops] if they all had to run concurrently.  Unguarded ops can never be
    exclusive, so only the (typically few) guarded ops need the quadratic
    grouping. *)
let exclusive_slot_count (ops : Dfg.op list) =
  let unguarded, guarded = List.partition (fun o -> Guard.is_always o.Dfg.guard) ops in
  let groups : Dfg.op list list ref = ref [] in
  List.iter
    (fun op ->
      let rec place = function
        | [] -> groups := [ op ] :: !groups
        | g :: rest ->
            if List.for_all (fun o -> Guard.mutually_exclusive o.Dfg.guard op.Dfg.guard) g then
              groups := (op :: g) :: List.filter (fun g' -> g' != g) !groups
            else place rest
      in
      place !groups)
    guarded;
  List.length unguarded + List.length !groups

(** How many operations can share one instance of [rt] before the input
    sharing mux alone breaks timing: largest [k] with
    [clk_q + mux(k) + delay + reg_mux + setup <= Tclk].  This is the
    "timing-aware" part of the paper's estimator — a purely count-based
    bound would funnel dozens of ops onto one resource and leave the
    scheduler discovering the mux wall one failing pass at a time. *)
let max_share (lib : Library.t) ~clock_ps (rt : Resource.t) =
  let d = Library.delay lib rt in
  let budget =
    clock_ps -. lib.Library.ff_clk_q -. d -. Library.mux_delay lib ~inputs:2
    -. lib.Library.ff_setup
  in
  if budget < 0.0 then 1
  else
    let rec grow k =
      if k >= 64 then k
      else if Library.mux_delay lib ~inputs:(k + 1) <= budget then grow (k + 1)
      else k
    in
    grow 1

(** Lower bound for one class given the analyzed life spans. *)
let class_lower_bound ?(lib : Library.t option) ?(clock_ps = 0.0) (region : Region.t)
    (aa : Asap_alap.t) (c : cls) =
  let spans =
    List.map
      (fun op ->
        let r = Asap_alap.range aa op.Dfg.id in
        (op, r.Asap_alap.asap, r.Asap_alap.alap))
      c.c_ops
  in
  (* candidate intervals: the distinct member life spans plus their union —
     enumerating all (asap, alap) cross pairs is quadratic and adds nothing
     in practice *)
  let candidates =
    let own = List.map (fun (_, a, b) -> (a, b)) spans in
    let lo = List.fold_left (fun acc (_, a, _) -> min acc a) max_int spans in
    let hi = List.fold_left (fun acc (_, _, b) -> max acc b) 0 spans in
    List.sort_uniq compare ((lo, hi) :: own)
  in
  let ii = Region.ii region in
  let demand (lo, hi) =
    let inside = List.filter (fun (_, a, b) -> lo <= a && b <= hi) spans in
    if inside = [] then 0
    else
      let n = exclusive_slot_count (List.map (fun (o, _, _) -> o) inside) in
      let capacity = min (hi - lo + 1) (if Region.is_pipelined region then ii else max_int) in
      (n + capacity - 1) / capacity
  in
  let interval_bound = List.fold_left (fun acc iv -> max acc (demand iv)) 1 candidates in
  let share_bound =
    match lib with
    | None -> 1
    | Some lib ->
        let k = max_share lib ~clock_ps c.c_rtype in
        (exclusive_slot_count c.c_ops + k - 1) / k
  in
  max interval_bound share_bound

(** [run region aa] is the initial resource set: one entry per class with
    the merged type, the instance count and the class's op population.
    [lib]/[clock_ps] enable the sharing-mux bound. *)
let run ?lib ?(clock_ps = 0.0) (region : Region.t) (aa : Asap_alap.t) :
    (Resource.t * int * int) list =
  List.map
    (fun c -> (c.c_rtype, class_lower_bound ?lib ~clock_ps region aa c, List.length c.c_ops))
    (classes region)

(** Latency lower bound implied by the resource set: with [n] instances
    serving [ops] operations (exclusive groups counted once), at least
    [ceil(ops / n)] states are needed.  Seeding the latency interval here
    saves the relaxation loop from adding those states one pass at a
    time. *)
let latency_floor (alloc : (Resource.t * int * int) list) =
  List.fold_left (fun acc (_, n, ops) -> max acc ((ops + n - 1) / max 1 n)) 1 alloc
