(** Scheduling priority (Section IV.B): mobility from the timing-aware
    ASAP/ALAP intervals (Force-Directed-style), operation complexity
    (complex first), and fanout-cone size. *)

open Hls_ir

type weights = { w_mobility : float; w_complexity : float; w_fanout : float }

val default_weights : weights

val fanout_table : Dfg.t -> int -> int
(** Precomputed fanout-cone sizes (one DFS per op, built once per pass). *)

val score : ?weights:weights -> fanout:(int -> int) -> Asap_alap.t -> Dfg.op -> float
(** Higher = scheduled earlier. *)

val rank : ?weights:weights -> fanout:(int -> int) -> Asap_alap.t -> Dfg.op list -> Dfg.op list
(** Sort, highest priority first, ascending-id tie-break. *)
