(** Event trace of a scheduling run.

    Collects human-readable events (pass starts, binding failures,
    relaxation decisions) so that the worked examples of the paper
    (Examples 1–3) can be replayed as narratives by the bench harness. *)

type t = { mutable events : string list; echo : bool }

let create ?(echo = false) () = { events = []; echo }

let log t fmt =
  Printf.ksprintf
    (fun s ->
      t.events <- s :: t.events;
      if t.echo then print_endline s)
    fmt

let logf t_opt fmt =
  match t_opt with
  | Some t -> log t fmt
  | None -> Printf.ksprintf ignore fmt

let events t = List.rev t.events

let pp fmt t = List.iter (fun e -> Format.fprintf fmt "%s@." e) (events t)
