lib/core/restraint.ml: Hashtbl Hls_ir Hls_techlib List Printf Resource
