lib/core/pipeline.mli: Hashtbl Scheduler
