lib/core/scheduler.mli: Asap_alap Binding Expert Hls_ir Hls_techlib Library Priority Region Restraint Trace
