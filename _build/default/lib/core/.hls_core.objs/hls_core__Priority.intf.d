lib/core/priority.mli: Asap_alap Dfg Hls_ir
