lib/core/asap_alap.mli: Dfg Hashtbl Hls_ir Hls_techlib Library Region
