lib/core/scheduler.ml: Alloc Array Asap_alap Binding Dfg Expert Graph_algo Guard Hashtbl Hls_ir Hls_techlib Library List Opkind Option Printf Priority Region Resource Restraint String Trace Unix
