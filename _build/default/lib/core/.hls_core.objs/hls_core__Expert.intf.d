lib/core/expert.mli: Binding Dfg Hashtbl Hls_ir Hls_techlib Region Resource Restraint
