lib/core/alloc.ml: Asap_alap Dfg Guard Hls_ir Hls_techlib Library List Opkind Region Resource
