lib/core/alloc.mli: Asap_alap Dfg Hls_ir Hls_techlib Library Region Resource
