lib/core/asap_alap.ml: Dfg Graph_algo Guard Hashtbl Hls_ir Hls_techlib Library List Opkind Printf Region Resource
