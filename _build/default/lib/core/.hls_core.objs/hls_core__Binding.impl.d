lib/core/binding.ml: Array Dfg Fun Guard Hashtbl Hls_ir Hls_techlib Hls_timing Lazy Library List Opkind Option Queue Region Resource Restraint
