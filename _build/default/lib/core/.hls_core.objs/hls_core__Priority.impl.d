lib/core/priority.ml: Asap_alap Dfg Hashtbl Hls_ir List Opkind Option
