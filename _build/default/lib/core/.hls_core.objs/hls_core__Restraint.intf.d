lib/core/restraint.mli: Hls_ir Hls_techlib Resource
