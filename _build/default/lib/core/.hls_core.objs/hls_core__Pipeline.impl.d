lib/core/pipeline.ml: Binding Dfg Guard Hashtbl Hls_ir List Opkind Option Printf Region Scheduler String
