lib/core/trace.ml: Format List Printf
