lib/core/binding.mli: Dfg Hashtbl Hls_ir Hls_techlib Hls_timing Library Region Resource Restraint
