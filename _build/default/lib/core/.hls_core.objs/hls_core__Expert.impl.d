lib/core/expert.ml: Binding Dfg Guard Hashtbl Hls_ir Hls_techlib Library List Opkind Option Printf Region Resource Restraint
