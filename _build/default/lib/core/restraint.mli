(** Restraints: the pass scheduler's failure records — "issued every time
    a binding of an operation to an edge and/or a resource fails"
    (Section IV.B) — weighted by proximity to hard failures and consumed
    by the {!Expert} system. *)

open Hls_techlib

type fail =
  | F_busy of Resource.t  (** all compatible instances occupied or saturated *)
  | F_forbidden
  | F_cycle of int  (** would close a structural comb cycle through instance *)
  | F_slack of float  (** negative slack (ps) of the best attempt *)
  | F_window  (** outside the SCC stage window / latency interval *)
  | F_dep  (** inter-iteration (modulo) dependency violated *)
  | F_anchor
  | F_no_resource of Resource.t
  | F_blocked  (** never became ready: upstream of a failed op *)

type t = {
  r_op : int;
  r_step : int;
  r_fail : fail;
  r_fatal : bool;  (** issued at the end of the op's life span *)
  mutable r_weight : float;
}

val make : op:int -> step:int -> fail:fail -> fatal:bool -> t
val fail_to_string : fail -> string
val to_string : t -> string

val weight_by_proximity : Hls_ir.Dfg.t -> t list -> t list
(** Boost restraints lying in the fan-in cones of the failed operations
    ("Restraint analysis is done for the fanin cones of the failed
    operations"). *)
