(** Pipeline folding (Section V, Step II): equivalent control steps
    (congruent modulo II) fold onto single kernel states, each executing
    the union of their operations predicated by stage activity; the
    prologue fills stages one initiation interval apart, the epilogue
    drains, stalls freeze.  Folding is pure bookkeeping over a successful
    schedule — the scheduler already guaranteed the invariants
    {!validate} re-checks. *)

type t = {
  f_ii : int;
  f_li : int;
  f_stages : int;
  f_kernel : (int, int * int) Hashtbl.t;
      (** op -> (kernel state = step mod II, stage = step / II) *)
}

val fold : Scheduler.t -> t
(** Identity fold (one stage) for sequential regions. *)

val kernel_state : t -> int -> (int * int) option

val ops_at : t -> state:int -> stage:int -> int list

val validate : Scheduler.t -> t -> string list
(** No same-instance collisions within a kernel state (up to guard
    exclusivity), every SCC within one stage, every loop-carried edge
    within the modulo constraint.  Empty = clean. *)

val to_table : Scheduler.t -> t -> string list list
(** The paper's Fig. 5 rendering: kernel states × stages. *)
