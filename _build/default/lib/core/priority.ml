(** Scheduling priority function (Section IV.B, Fig. 7).

    "The priority function takes into account the mobility of the
    operations defined by timing-aware ASAP/ALAP intervals (similar to
    Force-Directed Scheduling), the complexity of operations (more complex
    ones are scheduled first), the size of the fanout cone of an operation,
    etc." *)

open Hls_ir

type weights = { w_mobility : float; w_complexity : float; w_fanout : float }

let default_weights = { w_mobility = 100.0; w_complexity = 10.0; w_fanout = 0.5 }

(** Precomputed fanout-cone sizes for all ops of a DFG.  Cones are stable
    within a scheduling run, so the table is built once instead of running
    a DFS per priority query. *)
let fanout_table (dfg : Dfg.t) =
  let tbl = Hashtbl.create (Dfg.size dfg) in
  Dfg.iter_ops dfg (fun op -> Hashtbl.replace tbl op.Dfg.id (Dfg.fanout_cone_size dfg op.Dfg.id));
  fun id -> Option.value (Hashtbl.find_opt tbl id) ~default:0

(** Higher score = scheduled earlier.  Mobility 0 (a single feasible step)
    dominates; among equally mobile ops, structural complexity, then fanout
    cone size, break ties; op id is the final deterministic tie-break. *)
let score ?(weights = default_weights) ~fanout (aa : Asap_alap.t) (op : Dfg.op) =
  let mobility = float_of_int (Asap_alap.mobility aa op.Dfg.id) in
  let complexity = Opkind.complexity op.Dfg.kind in
  (weights.w_mobility /. (1.0 +. mobility))
  +. (weights.w_complexity *. complexity)
  +. (weights.w_fanout *. float_of_int (fanout op.Dfg.id))

(** Sort candidate ops, highest priority first. *)
let rank ?weights ~fanout (aa : Asap_alap.t) ops =
  ops
  |> List.map (fun op -> (score ?weights ~fanout aa op, op))
  |> List.stable_sort (fun (sa, oa) (sb, ob) ->
         match compare sb sa with 0 -> compare oa.Dfg.id ob.Dfg.id | c -> c)
  |> List.map snd
