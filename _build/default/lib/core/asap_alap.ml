(** Timing-aware ASAP/ALAP analysis (Section IV.A).

    Unlike classical unit-delay mobility analysis, operation life spans are
    computed "by performing approximate timing analysis on the DFG,
    initially ignoring the sharing multiplexers": the forward pass packs
    chained operations into a control step as long as the accumulated
    combinational delay (plus register setup) fits the clock period, and
    spills to the next step otherwise; the backward pass mirrors it from
    the latency bound.

    Guard predicates are scheduling dependencies: a predicated operation
    commits under a register enable driven by its guard, so the guard op
    must be available no later than the operation's step.

    SCC stage assignments (pipelining) and user anchors clamp the computed
    ranges.  An operation whose clamped range is empty marks the analysis
    infeasible — the signal the relaxation engine uses to add states. *)

open Hls_ir
open Hls_techlib

type range = {
  asap : int;
  alap : int;
  asap_arrival : float;  (** estimated in-step arrival at ASAP placement *)
}

type t = {
  ranges : (int, range) Hashtbl.t;
  infeasible : int list;  (** ops whose range is empty under current LI *)
}

let range t op_id =
  match Hashtbl.find_opt t.ranges op_id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Asap_alap.range: op %d not analyzed" op_id)

let mobility t op_id =
  let r = range t op_id in
  r.alap - r.asap

(** Nominal delay of an op under [lib], ignoring sharing muxes. *)
let op_delay lib dfg (op : Dfg.op) =
  match Resource.of_op dfg op with
  | None -> 0.0 (* wire *)
  | Some rt -> Library.delay lib rt

(** Dependencies that constrain scheduling order: distance-0 data inputs
    plus guard predicates, both restricted to region members. *)
let sched_preds region (op : Dfg.op) =
  let dfg = region.Region.dfg in
  let data =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Region.mem region e.Dfg.src then Some e.Dfg.src else None)
      (Dfg.in_edges dfg op.Dfg.id)
  in
  let guards = List.filter (Region.mem region) (Guard.preds op.Dfg.guard) in
  List.sort_uniq compare (data @ guards)

(** Reverse index of guard dependencies: predicate op -> guarded member
    ops.  Building it once avoids a full member scan per query. *)
let guard_dependents_index region =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (o : Dfg.op) ->
      List.iter
        (fun p ->
          if Region.mem region p then begin
            let r =
              match Hashtbl.find_opt tbl p with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.replace tbl p r;
                  r
            in
            r := o.Dfg.id :: !r
          end)
        (Guard.preds o.Dfg.guard))
    (Region.member_ops region);
  fun p -> match Hashtbl.find_opt tbl p with Some r -> !r | None -> []

(** Consumers, tagged: [false] = data edge (the value chains through the
    consumer's logic), [true] = guard edge (the value only gates the
    consumer's commit enable).  [guard_deps] defaults to a fresh index —
    pass {!guard_dependents_index} when querying many ops. *)
let sched_succs_tagged ?guard_deps region (op : Dfg.op) =
  let dfg = region.Region.dfg in
  let data =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Region.mem region e.Dfg.dst then Some (e.Dfg.dst, false)
        else None)
      (Dfg.out_edges dfg op.Dfg.id)
  in
  let index = match guard_deps with Some f -> f | None -> guard_dependents_index region in
  let guarded = List.map (fun g -> (g, true)) (index op.Dfg.id) in
  (* a consumer reachable through both a data and a guard edge counts as data *)
  List.sort_uniq compare (data @ List.filter (fun (g, _) -> not (List.mem_assoc g data)) guarded)

let sched_succs ?guard_deps region op = List.map fst (sched_succs_tagged ?guard_deps region op)

(** Clamp a range with an anchor and an SCC stage window. *)
let clamp_range ~anchor ~window (a, b) =
  let a, b = match anchor with Some s -> (max a s, min b s) | None -> (a, b) in
  match window with Some (lo, hi) -> (max a lo, min b hi) | None -> (a, b)

(** [compute ~lib ~clock_ps ~scc_window region] analyzes all member ops.
    [scc_window op] returns the inclusive step window imposed by a pipeline
    SCC stage assignment, if any. *)
let compute ~(lib : Library.t) ~clock_ps ?(scc_window = fun _ -> None) (region : Region.t) : t =
  let dfg = region.Region.dfg in
  let members = Region.member_ops region in
  let nodes = List.map (fun o -> o.Dfg.id) members in
  let li = region.Region.n_steps in
  let guard_deps = guard_dependents_index region in
  let succs id = sched_succs ~guard_deps region (Dfg.find dfg id) in
  let order =
    match Graph_algo.topo_sort ~nodes ~succs with
    | Some o -> o
    | None -> invalid_arg "Asap_alap.compute: combinational cycle among member ops"
  in
  let latency op = Library.op_latency lib op.Dfg.kind in
  let overhead = lib.Library.ff_setup in
  (* ---- forward (ASAP) ---- *)
  let fwd = Hashtbl.create (List.length nodes) in
  (* op -> (step, finish_step, out_arrival, multi) *)
  List.iter
    (fun id ->
      let op = Dfg.find dfg id in
      let d = op_delay lib dfg op in
      let lat = latency op in
      let preds = sched_preds region op in
      let guard_preds = List.filter (Region.mem region) (Guard.preds op.Dfg.guard) in
      let data_preds = List.filter (fun p -> not (List.mem p guard_preds)) preds in
      let pred_info p =
        match Hashtbl.find_opt fwd p with
        | Some x -> x
        | None -> (0, 0, lib.Library.ff_clk_q, false)
      in
      (* earliest step considering register crossings of multi-cycle preds *)
      let min_step =
        List.fold_left
          (fun acc p ->
            let _, fin, _, multi = pred_info p in
            max acc (if multi then fin + 1 else fin))
          0 preds
      in
      let arr_at step p =
        let _, fin, arr, multi = pred_info p in
        if (not multi) && fin = step then arr else lib.Library.ff_clk_q
      in
      let rec settle step =
        let in_arr =
          List.fold_left
            (fun acc p -> max acc (arr_at step p))
            (if data_preds = [] then
               match op.Dfg.kind with
               | Opkind.Const _ -> 0.0
               | _ -> lib.Library.ff_clk_q
             else 0.0)
            data_preds
        in
        let out = in_arr +. d in
        (* the guard gates the commit enable in parallel with the datapath *)
        let commit =
          List.fold_left (fun acc p -> max acc (arr_at step p)) out guard_preds
        in
        if lat > 1 then (step, out) (* multi-cycle: occupies whole steps *)
        else if commit +. overhead <= clock_ps then (step, out)
        else if in_arr <= lib.Library.ff_clk_q +. 0.001
                && List.for_all (fun p -> arr_at step p <= lib.Library.ff_clk_q +. 0.001) guard_preds
        then
          (* already starts from registers; the op alone does not fit — the
             binder will face the same wall, keep the optimistic estimate *)
          (step, out)
        else settle (step + 1)
      in
      let step, out = settle min_step in
      Hashtbl.replace fwd id (step, step + lat - 1, out, lat > 1))
    order;
  (* ---- backward (ALAP) ---- *)
  let bwd = Hashtbl.create (List.length nodes) in
  (* op -> (alap_start_step, required_output_time) *)
  List.iter
    (fun id ->
      let op = Dfg.find dfg id in
      let d = op_delay lib dfg op in
      let lat = latency op in
      let cons = sched_succs_tagged ~guard_deps region op in
      let alap_start, req =
        if cons = [] then (li - 1, clock_ps -. overhead)
        else
          List.fold_left
            (fun (acc_step, acc_req) (c, is_guard) ->
              let c_op = Dfg.find dfg c in
              let c_lat = latency c_op in
              let c_start, c_req =
                match Hashtbl.find_opt bwd c with
                | Some x -> x
                | None -> (li - 1, clock_ps -. overhead)
              in
              let cand_step, cand_req =
                if c_lat > 1 || lat > 1 then (c_start - lat, clock_ps -. overhead)
                else
                  (* deadline for our output: a guard must settle by the
                     consumer's commit time, data by the consumer's input
                     time (its output deadline minus its delay) *)
                  let budget = if is_guard then c_req else c_req -. op_delay lib dfg c_op in
                  if budget -. d >= lib.Library.ff_clk_q then (c_start, budget)
                  else (c_start - 1, clock_ps -. overhead)
              in
              (min acc_step cand_step, if cand_step < acc_step then cand_req else min acc_req cand_req))
            (max_int, clock_ps -. overhead)
            cons
      in
      Hashtbl.replace bwd id (alap_start, req))
    (List.rev order);
  (* ---- combine, clamp, detect infeasibility ---- *)
  let ranges = Hashtbl.create (List.length nodes) in
  let infeasible = ref [] in
  List.iter
    (fun id ->
      let op = Dfg.find dfg id in
      let asap, _, arr, _ = Hashtbl.find fwd id in
      let alap, _ = Hashtbl.find bwd id in
      let alap = min alap (li - 1) in
      let asap', alap' =
        clamp_range ~anchor:op.Dfg.anchor ~window:(scc_window id) (asap, alap)
      in
      if asap' > alap' then infeasible := id :: !infeasible;
      Hashtbl.replace ranges id { asap = asap'; alap = max asap' alap'; asap_arrival = arr })
    order;
  { ranges; infeasible = List.rev !infeasible }
