(** Restraints: the failure-analysis records of the pass scheduler.

    "The history of the scheduling pass is recorded in a set of restraints,
    which are issued every time a binding of an operation to an edge and/or
    a resource fails" (Section IV.B).  Restraints are weighted by proximity
    to hard failures; the expert system ({!Expert}) turns them into
    relaxation actions. *)

open Hls_techlib

(** Why a particular (op, step, resource) binding attempt failed. *)
type fail =
  | F_busy of Resource.t  (** all compatible instances occupied (incl. equivalent steps) *)
  | F_forbidden  (** pair excluded by an earlier comb-cycle restraint *)
  | F_cycle of int  (** binding would close a structural comb cycle through instance *)
  | F_slack of float  (** negative slack (ps) of the best attempt *)
  | F_window  (** outside the SCC stage window *)
  | F_dep  (** inter-iteration (modulo) dependency violated *)
  | F_anchor  (** conflicts with a user anchor *)
  | F_no_resource of Resource.t  (** no instance of a compatible type exists at all *)
  | F_blocked  (** never became ready: upstream of a failed op *)

type t = {
  r_op : int;
  r_step : int;
  r_fail : fail;
  r_fatal : bool;  (** issued at the end of the op's life span (a pass-failing op) *)
  mutable r_weight : float;
}

let make ~op ~step ~fail ~fatal =
  { r_op = op; r_step = step; r_fail = fail; r_fatal = fatal; r_weight = (if fatal then 1.0 else 0.3) }

let fail_to_string = function
  | F_busy rt -> Printf.sprintf "busy(%s)" (Resource.to_string rt)
  | F_forbidden -> "forbidden"
  | F_cycle i -> Printf.sprintf "comb_cycle(inst %d)" i
  | F_slack s -> Printf.sprintf "slack(%.0f)" s
  | F_window -> "window"
  | F_dep -> "inter_iteration_dep"
  | F_anchor -> "anchor"
  | F_no_resource rt -> Printf.sprintf "no_resource(%s)" (Resource.to_string rt)
  | F_blocked -> "blocked"

let to_string r =
  Printf.sprintf "op %d @ step %d: %s%s (w=%.1f)" r.r_op r.r_step (fail_to_string r.r_fail)
    (if r.r_fatal then " [fatal]" else "")
    r.r_weight

(** Boost the weights of restraints on ops lying in the fan-in cones of the
    failed operations ("Restraint analysis is done for the fanin cones of
    the failed operations"). *)
let weight_by_proximity (dfg : Hls_ir.Dfg.t) (restraints : t list) =
  let fatal_ops = List.filter_map (fun r -> if r.r_fatal then Some r.r_op else None) restraints in
  let cone = Hashtbl.create 32 in
  let rec up id =
    if not (Hashtbl.mem cone id) then begin
      Hashtbl.replace cone id ();
      List.iter (fun e -> if e.Hls_ir.Dfg.distance = 0 then up e.Hls_ir.Dfg.src) (Hls_ir.Dfg.in_edges dfg id)
    end
  in
  List.iter up fatal_ops;
  List.iter (fun r -> if (not r.r_fatal) && Hashtbl.mem cone r.r_op then r.r_weight <- r.r_weight +. 0.4) restraints;
  restraints
