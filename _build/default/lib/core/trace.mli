(** Event trace of a scheduling run, used to replay the paper's worked
    examples as narratives. *)

type t

val create : ?echo:bool -> unit -> t
val log : t -> ('a, unit, string, unit) format4 -> 'a

val logf : t option -> ('a, unit, string, unit) format4 -> 'a
(** No-op on [None] — callers thread an optional trace for free. *)

val events : t -> string list
val pp : Format.formatter -> t -> unit
