(** Simultaneous scheduling-and-binding state (Section IV.B).

    Binding assigns an operation both a control step and a resource
    instance, and every candidate is evaluated against the datapath
    netlist built so far: input sharing muxes (sized by distinct sources
    per port, pre-allocated on shared resources — Fig. 8a), register
    launch/setup plus the register-input sharing mux, combinational
    chaining within a step, multi-cycle black boxes, guard
    (register-enable) arrival, and structural combinational cycles through
    the sharing network (Fig. 6), which are rejected rather than reported
    as false paths.

    Two arrival views are kept per bound op: the accurate one (all mux
    delays — what the paper's netlist queries return) and a naive additive
    one; [timing_aware] selects which gates decisions, while the accurate
    view always feeds the final timing report (the basis of the
    timing-awareness ablation). *)

open Hls_ir
open Hls_techlib

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** bound op ids, most recent first *)
  mutable prealloc_shared : bool;
  added_by_expert : bool;
  mutable mux_cache : int array option;
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

type t = {
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  mutable insts : inst list;
  inst_tbl : (int, inst) Hashtbl.t;
  mutable next_inst_id : int;
  placements : (int, placement) Hashtbl.t;
  busy : (int * int, int list ref) Hashtbl.t;
  arr_true : (int, float) Hashtbl.t;
  arr_naive : (int, float) Hashtbl.t;
  chain : Hls_timing.Cycle_detector.t;
  forbidden : (int * int, unit) Hashtbl.t;  (** (op, inst) exclusions *)
  dedicated : (int, unit) Hashtbl.t;
      (** user constraint: these ops own their instance outright *)
  timing_aware : bool;
  mutable query_count : int;
  mutable journal : (int * float option * float option) list;
  mutable journal_active : bool;
}

val create : ?timing_aware:bool -> lib:Library.t -> clock_ps:float -> Region.t -> t
val add_inst : ?added_by_expert:bool -> t -> Resource.t -> inst
val find_inst : t -> int -> inst

val reset_pass : t -> unit
(** Clear pass-local state (placements, busy, arrivals, chain graph) while
    keeping the resource set and forbidden pairs; recompute which
    instances pre-allocate sharing muxes. *)

val placement : t -> int -> placement option
val is_placed : t -> int -> bool
val slot : t -> int -> int
val op_latency : t -> Dfg.op -> int
val is_multicycle : t -> Dfg.op -> bool

val mux_inputs : t -> inst -> port:int -> int
(** Distinct sources feeding an instance port (≥ 2 when pre-allocated). *)

val in_mux_delay : t -> inst -> port:int -> float

val reg_mux_delay : t -> float
(** The register-input sharing mux of Fig. 8; vanishes at II = 1 where no
    register can be shared (what closes the paper's Example 3). *)

val source_arrival : t -> step:int -> naive:bool -> Dfg.edge -> float
val guard_arrival : t -> step:int -> naive:bool -> Dfg.op -> float
val exec_delay : t -> Dfg.op -> int option -> float
val endpoint_slack : t -> naive:bool -> int -> float
val chained_consumers : t -> int -> int list
val chain_source_insts : t -> int -> step:int -> int list
val modulo_ok : t -> op_id:int -> step:int -> finish:int -> bool
val quick_slack : t -> Dfg.op -> step:int -> inst_id:int -> float

val try_bind : t -> Dfg.op -> step:int -> inst_opt:int option -> (unit, Restraint.fail) result
(** Attempt a binding; on failure the state is untouched and the reason
    returned.  A trial that breaks an {e already-bound} op's timing (the
    sharing mux grew) reports [F_busy] — the instance is saturated. *)

val force_bind : t -> Dfg.op -> step:int -> inst_opt:int option -> unit
(** Record a placement unconditionally (imports of external schedules and
    the Table 4 ablation). *)

val recompute_all : t -> unit

val compatible_insts : t -> Dfg.op -> inst list
(** Candidate instances, exact-fit then least-loaded first. *)

val registered_ops : t -> int list
(** Ops whose results need registers (cross-step, loop-carried, writes). *)

val timing_report : t -> Hls_timing.Synthesize.report
(** Critical-path decomposition per registered endpoint for the
    downstream-synthesis sizing model. *)

val worst_slack : t -> float

val estimate : t -> Dfg.op -> step:int -> float * float * float * float
(** (data arrival, guard arrival, exec delay, endpoint overhead) for a
    hypothetical placement — the expert system's evidence. *)

val would_fit : t -> Dfg.op -> step:int -> speculated:bool -> bool
val would_fit_existing : t -> Dfg.op -> bool
val guard_dominated : t -> Dfg.op -> step:int -> bool
