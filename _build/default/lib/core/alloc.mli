(** Initial resource-set estimation (Section IV.A): a lower bound per
    compatibility class from timing-aware life spans, counting mutually
    exclusive (predicated) operations once, bounding interval capacity by
    II for pipelined regions (Example 2's two multipliers), and bounding
    sharing by the point at which the input mux alone would break timing
    (the "timing aware" refinement over plain counting). *)

open Hls_ir
open Hls_techlib

type cls = { mutable c_rtype : Resource.t; mutable c_ops : Dfg.op list }

val classes : Region.t -> cls list
(** Greedy partition of the region's resource ops into width-compatible
    classes. *)

val exclusive_slot_count : Dfg.op list -> int
(** Concurrent slots needed if all ops ran together (mutually exclusive
    guards share a slot). *)

val max_share : Library.t -> clock_ps:float -> Resource.t -> int
(** How many ops can share one instance before
    [clk_q + mux(k) + delay + reg_mux + setup] exceeds the clock. *)

val class_lower_bound : ?lib:Library.t -> ?clock_ps:float -> Region.t -> Asap_alap.t -> cls -> int

val run : ?lib:Library.t -> ?clock_ps:float -> Region.t -> Asap_alap.t -> (Resource.t * int * int) list
(** The initial resource set: (merged type, instance count, class
    population) per class. *)

val latency_floor : (Resource.t * int * int) list -> int
(** The latency lower bound the resource counts imply
    (max ceil(ops / instances)). *)
