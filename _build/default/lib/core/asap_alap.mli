(** Timing-aware ASAP/ALAP analysis (Section IV.A): life spans computed
    "by performing approximate timing analysis on the DFG, initially
    ignoring the sharing multiplexers" — the forward pass packs chained
    ops into a step while the accumulated delay fits the clock, the
    backward pass mirrors it from the latency bound.  Guards are
    scheduling dependencies (the enable must settle in the op's step); SCC
    stage windows and user anchors clamp the ranges. *)

open Hls_ir
open Hls_techlib

type range = {
  asap : int;
  alap : int;
  asap_arrival : float;  (** estimated in-step arrival at the ASAP placement *)
}

type t = {
  ranges : (int, range) Hashtbl.t;
  infeasible : int list;  (** ops whose clamped range is empty at this LI *)
}

val range : t -> int -> range
(** @raise Invalid_argument for unanalyzed ops. *)

val mobility : t -> int -> int

val op_delay : Library.t -> Dfg.t -> Dfg.op -> float
(** Nominal mux-free delay of an op. *)

val sched_preds : Region.t -> Dfg.op -> int list
(** Ordering dependencies: distance-0 data inputs plus guard predicates,
    restricted to region members. *)

val guard_dependents_index : Region.t -> int -> int list
(** Reverse guard-dependency index, built once per analysis. *)

val sched_succs_tagged : ?guard_deps:(int -> int list) -> Region.t -> Dfg.op -> (int * bool) list
(** Consumers tagged [true] when reached through a guard (enable) edge. *)

val sched_succs : ?guard_deps:(int -> int list) -> Region.t -> Dfg.op -> int list

val compute :
  lib:Library.t -> clock_ps:float -> ?scc_window:(int -> (int * int) option) -> Region.t -> t
