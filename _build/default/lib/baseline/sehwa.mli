(** Decoupled "schedule-then-fold" pipelining (Sehwa / loop-winding
    style): a pipeline-blind list schedule of one iteration, then a
    folding check at the requested II; latency relaxes when folding fails
    — "separation of scheduling and constraint checking is a significant
    source of inefficiency" (Section III). *)

open Hls_techlib
open Hls_core

type result = {
  s_ii : int;
  s_li : int;
  s_binding : Binding.t;
  s_attempts : int;  (** schedule+fold attempts before success *)
  s_time_s : float;
}

type error = { s_message : string }

val fold_ok : Hls_ir.Region.t -> (int, int * int) Hashtbl.t -> ii:int -> bool

val schedule :
  ii:int -> lib:Library.t -> clock_ps:float -> Hls_ir.Region.t -> (result, error) Stdlib.result
