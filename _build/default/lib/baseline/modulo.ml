(** Iterative modulo scheduling (Rau, MICRO'94) — the classical
    software-pipelining baseline the paper contrasts with (Section III:
    "assigning an operation to a timing slot is modeled by explicitly
    placing several instances of this operation II slots apart.  If this
    causes a conflict ... the schedule chooses a candidate for unscheduling
    and backtracks").

    This implementation is deliberately {e timing-naive}: operations are
    unit-latency cycle-grained entities and resource conflicts are tracked
    in a modulo reservation table (MRT); sharing-mux delays and chaining
    arithmetic are invisible to it.  Comparing its post-synthesis timing
    against the paper's netlist-aware engine is exactly the experiment the
    paper's Section III motivates.

    The scheduler computes ResMII/RecMII lower bounds, then runs
    height-priority scheduling with eviction and a backtracking budget,
    incrementing II on exhaustion (or holding II fixed when the caller pins
    it, as hardware designers do per the paper's Section V condition 1). *)

open Hls_ir
open Hls_techlib
open Hls_core

type result = {
  m_ii : int;
  m_li : int;  (** schedule length of one iteration *)
  m_binding : Binding.t;  (** placements imported for timing/area reporting *)
  m_backtracks : int;
  m_time_s : float;
}

type error = { m_message : string }

(** Resource-constrained minimum II: ops per class over instances. *)
let res_mii alloc =
  List.fold_left (fun acc (_, n, ops) -> max acc ((ops + n - 1) / max 1 n)) 1 alloc

(** Recurrence-constrained minimum II: for every SCC cycle, the latency
    around the cycle divided by its distance.  Computed per SCC with a
    Bellman-Ford-style bound (unit latencies — the baseline's view). *)
let rec_mii (region : Region.t) =
  let dfg = region.Region.dfg in
  List.fold_left
    (fun acc scc ->
      let member = Hashtbl.create 8 in
      List.iter (fun o -> Hashtbl.replace member o ()) scc;
      (* total latency and distance of the heaviest simple cycle is NP-hard;
         use the standard estimate sum(latency)/sum(distance) per SCC *)
      let lat, dist =
        List.fold_left
          (fun (l, dt) o ->
            let edges = Dfg.out_edges dfg o in
            let d =
              List.fold_left
                (fun acc e -> if Hashtbl.mem member e.Dfg.dst then acc + e.Dfg.distance else acc)
                0 edges
            in
            let cycles = if Opkind.is_resource_op (Dfg.find dfg o).Dfg.kind then 1 else 0 in
            (l + cycles, dt + d))
          (0, 0) scc
      in
      if dist = 0 then acc else max acc ((lat + dist - 1) / dist))
    1
    (Region.sccs region)

(** Schedule with a fixed [ii].  Returns op->cycle placements or [None] if
    the backtracking budget is exhausted. *)
let try_ii (region : Region.t) ~(alloc : (Resource.t * int * int) list) ~ii ~budget_factor =
  let dfg = region.Region.dfg in
  let members = Region.member_ops region in
  let n = List.length members in
  (* instance table: one MRT row per instance *)
  let insts = List.concat_map (fun (rt, k, _) -> List.init k (fun _ -> rt)) alloc in
  let insts = Array.of_list insts in
  let mrt : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* (inst, slot) -> op *)
  let sched : (int, int * int) Hashtbl.t = Hashtbl.create n in
  (* op -> (cycle, inst or -1) *)
  let height = Hashtbl.create n in
  (* priority: longest path to any sink over distance-0 edges *)
  let nodes = List.map (fun o -> o.Dfg.id) members in
  let succs0 id =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Region.mem region e.Dfg.dst then Some e.Dfg.dst else None)
      (Dfg.out_edges dfg id)
  in
  (match Graph_algo.topo_sort ~nodes ~succs:succs0 with
  | Some order ->
      List.iter
        (fun id ->
          let h =
            List.fold_left
              (fun acc s -> max acc (1 + Option.value (Hashtbl.find_opt height s) ~default:0))
              0 (succs0 id)
          in
          Hashtbl.replace height id h)
        (List.rev order)
  | None -> ());
  let budget = ref (budget_factor * n) in
  let backtracks_guard = ref (budget_factor * n) in
  let backtracks = ref 0 in
  let unscheduled = ref (List.sort (fun a b ->
      compare
        (- (Option.value (Hashtbl.find_opt height b.Dfg.id) ~default:0), b.Dfg.id)
        (- (Option.value (Hashtbl.find_opt height a.Dfg.id) ~default:0), a.Dfg.id))
      members |> List.rev)
  in
  (* earliest start given scheduled predecessors (cycle-grained, unit
     latency for resource ops, zero for wires) *)
  let latency op = if Opkind.is_resource_op op.Dfg.kind then 1 else 0 in
  let estart op =
    List.fold_left
      (fun acc e ->
        if not (Region.mem region e.Dfg.src) then acc
        else
          match Hashtbl.find_opt sched e.Dfg.src with
          | Some (tc, _) ->
              let p = Dfg.find dfg e.Dfg.src in
              max acc (tc + latency p - (e.Dfg.distance * ii))
          | None -> acc)
      0 (Dfg.in_edges dfg op.Dfg.id)
  in
  let compatible op =
    match Resource.of_op dfg op with
    | None -> []
    | Some need ->
        Array.to_list
          (Array.mapi (fun i rt -> (i, rt)) insts)
        |> List.filter_map (fun (i, rt) ->
               if Resource.fits ~need ~have:rt || Resource.can_merge need rt then Some i else None)
  in
  (* Rau's anti-livelock rule: an evicted op is rescheduled no earlier
     than one past its previous slot *)
  let last_time : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let unschedule op_id =
    match Hashtbl.find_opt sched op_id with
    | None -> ()
    | Some (tc, inst) ->
        Hashtbl.remove sched op_id;
        Hashtbl.replace last_time op_id tc;
        if inst >= 0 then Hashtbl.remove mrt (inst, ((tc mod ii) + ii) mod ii)
  in
  let ok = ref true in
  (* after any placement, already-scheduled neighbours whose dependence
     constraints are now violated must be unscheduled and retried (the
     backtracking core of iterative modulo scheduling) *)
  let evict_violators op_id t =
    let lat_here = latency (Dfg.find dfg op_id) in
    let violated =
      List.filter_map
        (fun e ->
          if not (Region.mem region e.Dfg.dst) then None
          else
            match Hashtbl.find_opt sched e.Dfg.dst with
            | Some (tc, _) when tc < t + lat_here - (e.Dfg.distance * ii) -> Some e.Dfg.dst
            | _ -> None)
        (Dfg.out_edges dfg op_id)
      @ List.filter_map
          (fun e ->
            if not (Region.mem region e.Dfg.src) then None
            else
              match Hashtbl.find_opt sched e.Dfg.src with
              | Some (tp, _) ->
                  let p = Dfg.find dfg e.Dfg.src in
                  if t < tp + latency p - (e.Dfg.distance * ii) then Some e.Dfg.src else None
              | None -> None)
          (Dfg.in_edges dfg op_id)
    in
    List.sort_uniq compare violated
  in
  while !unscheduled <> [] && !ok do
    match !unscheduled with
    | [] -> ()
    | op :: rest ->
        unscheduled := rest;
        let e0 = max 0 (estart op) in
        let e0 =
          match Hashtbl.find_opt last_time op.Dfg.id with
          | Some prev -> max e0 (prev + 1)
          | None -> e0
        in
        if not (Opkind.is_resource_op op.Dfg.kind) then begin
          Hashtbl.replace sched op.Dfg.id (e0, -1);
          let vs = evict_violators op.Dfg.id e0 in
          if vs <> [] then begin
            decr budget;
            incr backtracks;
            if !budget <= 0 then ok := false
            else
              List.iter
                (fun v ->
                  unschedule v;
                  unscheduled := Dfg.find dfg v :: !unscheduled)
                vs
          end
        end
        else begin
          let placed = ref false in
          let cands = compatible op in
          (* scan II consecutive cycles for a free MRT slot *)
          let t = ref e0 in
          while (not !placed) && !t < e0 + ii do
            let slot = ((!t mod ii) + ii) mod ii in
            (match List.find_opt (fun i -> not (Hashtbl.mem mrt (i, slot))) cands with
            | Some i ->
                Hashtbl.replace mrt (i, slot) op.Dfg.id;
                Hashtbl.replace sched op.Dfg.id (!t, i);
                placed := true;
                let vs = evict_violators op.Dfg.id !t in
                if vs <> [] then begin
                  decr backtracks_guard;
                  incr backtracks;
                  if !backtracks_guard <= 0 then ok := false
                  else
                    List.iter
                      (fun v ->
                        unschedule v;
                        unscheduled := Dfg.find dfg v :: !unscheduled)
                      vs
                end
            | None -> ());
            incr t
          done;
          if not !placed then begin
            (* force at e0: evict whoever holds the slot on the first
               candidate instance, reschedule the victim later *)
            decr budget;
            incr backtracks;
            if !budget <= 0 || cands = [] then ok := false
            else begin
              let slot = e0 mod ii in
              let inst = List.hd cands in
              (match Hashtbl.find_opt mrt (inst, slot) with
              | Some victim ->
                  unschedule victim;
                  unscheduled := Dfg.find dfg victim :: !unscheduled
              | None -> ());
              (* also evict anything that now violates dependences *)
              Hashtbl.replace mrt (inst, slot) op.Dfg.id;
              Hashtbl.replace sched op.Dfg.id (e0, inst);
              List.iter
                (fun v ->
                  unschedule v;
                  unscheduled := Dfg.find dfg v :: !unscheduled)
                (evict_violators op.Dfg.id e0)
            end
          end
        end
  done;
  if !ok then Some (sched, insts, !backtracks) else None

(** Run the baseline.  [ii] pins the initiation interval (as the paper's
    designers do); otherwise the search starts at max(ResMII, RecMII) and
    increments. *)
let schedule ?ii ?(budget_factor = 6) ~(lib : Library.t) ~clock_ps (region : Region.t) :
    (result, error) Stdlib.result =
  let t0 = Unix.gettimeofday () in
  (* resource set: reuse the same initial estimator as the main engine *)
  let saved = region.Region.n_steps in
  Region.reset_steps region region.Region.max_steps;
  let aa = Asap_alap.compute ~lib ~clock_ps region in
  let alloc = Alloc.run ~lib ~clock_ps region aa in
  Region.reset_steps region saved;
  let mii = max (res_mii alloc) (rec_mii region) in
  let start_ii = match ii with Some i -> max i 1 | None -> max 1 mii in
  let max_ii = match ii with Some i -> i | None -> start_ii + 64 in
  let rec search cur =
    if cur > max_ii then Error { m_message = Printf.sprintf "no schedule up to II=%d" max_ii }
    else
      match try_ii region ~alloc ~ii:cur ~budget_factor with
      | Some (sched, insts, backtracks) ->
          (* normalize cycles to start at 0 and import into a Binding *)
          let min_c = Hashtbl.fold (fun _ (c, _) acc -> min acc c) sched 0 in
          let max_c = Hashtbl.fold (fun _ (c, _) acc -> max acc c) sched 0 in
          let li = max_c - min_c + 1 in
          let binding = Binding.create ~lib ~clock_ps region in
          let inst_ids = Array.map (fun rt -> (Binding.add_inst binding rt).Binding.inst_id) insts in
          Region.reset_steps region (min region.Region.max_steps (max li region.Region.min_steps));
          Hashtbl.iter
            (fun op_id (c, i) ->
              let op = Dfg.find region.Region.dfg op_id in
              let inst_opt = if i >= 0 then Some inst_ids.(i) else None in
              Binding.force_bind binding op ~step:(c - min_c) ~inst_opt)
            sched;
          Binding.recompute_all binding;
          Ok
            {
              m_ii = cur;
              m_li = li;
              m_binding = binding;
              m_backtracks = backtracks;
              m_time_s = Unix.gettimeofday () -. t0;
            }
      | None -> search (cur + 1)
  in
  search start_ii
