(** Decoupled "schedule-then-fold" pipelining (Sehwa [4] / loop-winding
    [5] style): a plain resource-constrained list scheduler places one
    iteration with no knowledge of pipelining, then a separate folding step
    checks whether the schedule can overlap at the requested II; when
    folding fails (a resource collides with itself II states apart, or an
    inter-iteration dependency breaks), the loop latency is relaxed and
    scheduling repeats.

    "Separation of scheduling and constraint checking is a significant
    source of inefficiency of this method" (Section III) — the bench
    compares its relaxation count and final latency against the unified
    engine. *)

open Hls_ir
open Hls_techlib
open Hls_core

type result = {
  s_ii : int;
  s_li : int;
  s_binding : Binding.t;
  s_attempts : int;  (** schedule+fold attempts before success *)
  s_time_s : float;
}

type error = { s_message : string }

(** Plain list schedule of one iteration into [li] states, pipeline-blind:
    resources are busy per state (not per equivalence class), chaining is
    approximated by one resource op per value chain per state. *)
let list_schedule (region : Region.t) ~(alloc : (Resource.t * int * int) list) ~li =
  let dfg = region.Region.dfg in
  let members = Region.member_ops region in
  let insts = Array.of_list (List.concat_map (fun (rt, k, _) -> List.init k (fun _ -> rt)) alloc) in
  let busy : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let sched : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let nodes = List.map (fun o -> o.Dfg.id) members in
  let succs0 id =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Region.mem region e.Dfg.dst then Some e.Dfg.dst else None)
      (Dfg.out_edges dfg id)
  in
  match Graph_algo.topo_sort ~nodes ~succs:succs0 with
  | None -> None
  | Some order ->
      let ok = ref true in
      List.iter
        (fun id ->
          if !ok then begin
            let op = Dfg.find dfg id in
            let e0 =
              List.fold_left
                (fun acc e ->
                  if e.Dfg.distance > 0 || not (Region.mem region e.Dfg.src) then acc
                  else
                    match Hashtbl.find_opt sched e.Dfg.src with
                    | Some (t, _) ->
                        let p = Dfg.find dfg e.Dfg.src in
                        max acc (if Opkind.is_resource_op p.Dfg.kind then t + 1 else t)
                    | None -> acc)
                0 (Dfg.in_edges dfg id)
            in
            if not (Opkind.is_resource_op op.Dfg.kind) then Hashtbl.replace sched id (min e0 (li - 1), -1)
            else begin
              let need = Option.get (Resource.of_op dfg op) in
              let placed = ref false in
              let t = ref e0 in
              while (not !placed) && !t < li do
                (match
                   Array.to_list (Array.mapi (fun i rt -> (i, rt)) insts)
                   |> List.find_opt (fun (i, rt) ->
                          (Resource.fits ~need ~have:rt || Resource.can_merge need rt)
                          && not (Hashtbl.mem busy (i, !t)))
                 with
                | Some (i, _) ->
                    Hashtbl.replace busy (i, !t) ();
                    Hashtbl.replace sched id (!t, i);
                    placed := true
                | None -> ());
                incr t
              done;
              if not !placed then ok := false
            end
          end)
        order;
      if !ok then Some (sched, insts) else None

(** Fold check: ops on equivalent states (mod II) must not share an
    instance, and loop-carried edges must satisfy the modulo constraint. *)
let fold_ok (region : Region.t) sched ~ii =
  let dfg = region.Region.dfg in
  let by_slot = Hashtbl.create 64 in
  let ok = ref true in
  Hashtbl.iter
    (fun _op (t, i) ->
      if i >= 0 then begin
        let key = (i, t mod ii) in
        if Hashtbl.mem by_slot key then ok := false else Hashtbl.replace by_slot key ()
      end)
    sched;
  Hashtbl.iter
    (fun op (t, _) ->
      List.iter
        (fun e ->
          if e.Dfg.distance > 0 && Region.mem region e.Dfg.src then
            match Hashtbl.find_opt sched e.Dfg.src with
            | Some (tp, _) -> if t < tp - (e.Dfg.distance * ii) + 1 then ok := false
            | None -> ())
        (Dfg.in_edges dfg op))
    sched;
  !ok

(** Run the decoupled pipeliner: schedule at growing LI until the folding
    check passes. *)
let schedule ~ii ~(lib : Library.t) ~clock_ps (region : Region.t) : (result, error) Stdlib.result =
  let t0 = Unix.gettimeofday () in
  let saved = region.Region.n_steps in
  Region.reset_steps region region.Region.max_steps;
  let aa = Asap_alap.compute ~lib ~clock_ps region in
  let alloc = Alloc.run ~lib ~clock_ps region aa in
  Region.reset_steps region saved;
  let rec attempt li n =
    if li > region.Region.max_steps then
      Error { s_message = Printf.sprintf "folding never succeeded up to LI=%d" li }
    else
      match list_schedule region ~alloc ~li with
      | Some (sched, insts) when fold_ok region sched ~ii ->
          let binding = Binding.create ~lib ~clock_ps region in
          let inst_ids = Array.map (fun rt -> (Binding.add_inst binding rt).Binding.inst_id) insts in
          Region.reset_steps region (min region.Region.max_steps (max li region.Region.min_steps));
          Hashtbl.iter
            (fun op_id (t, i) ->
              let op = Dfg.find region.Region.dfg op_id in
              Binding.force_bind binding op ~step:t
                ~inst_opt:(if i >= 0 then Some inst_ids.(i) else None))
            sched;
          Binding.recompute_all binding;
          Ok { s_ii = ii; s_li = li; s_binding = binding; s_attempts = n; s_time_s = Unix.gettimeofday () -. t0 }
      | _ -> attempt (li + 1) (n + 1)
  in
  attempt (max region.Region.min_steps (ii + 1)) 1
