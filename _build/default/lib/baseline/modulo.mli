(** Iterative modulo scheduling (Rau, MICRO'94) — the classical
    software-pipelining baseline the paper contrasts with (Section III).
    Deliberately {e cycle-grained and timing-naive}: unit latencies, a
    modulo reservation table, height priority, eviction with Rau's
    no-earlier-than-before rule and a backtracking budget; II search from
    max(ResMII, RecMII) unless pinned. *)

open Hls_ir
open Hls_techlib
open Hls_core

type result = {
  m_ii : int;
  m_li : int;  (** schedule length of one iteration *)
  m_binding : Binding.t;  (** imported for accurate timing/area reporting *)
  m_backtracks : int;
  m_time_s : float;
}

type error = { m_message : string }

val res_mii : (Resource.t * int * int) list -> int
val rec_mii : Region.t -> int

val schedule :
  ?ii:int ->
  ?budget_factor:int ->
  lib:Library.t ->
  clock_ps:float ->
  Region.t ->
  (result, error) Stdlib.result
