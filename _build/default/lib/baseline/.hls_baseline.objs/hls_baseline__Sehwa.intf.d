lib/baseline/sehwa.mli: Binding Hashtbl Hls_core Hls_ir Hls_techlib Library Stdlib
