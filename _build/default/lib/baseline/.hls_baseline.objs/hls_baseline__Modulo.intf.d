lib/baseline/modulo.mli: Binding Hls_core Hls_ir Hls_techlib Library Region Resource Stdlib
