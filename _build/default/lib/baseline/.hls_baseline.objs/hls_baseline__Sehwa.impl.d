lib/baseline/sehwa.ml: Alloc Array Asap_alap Binding Dfg Graph_algo Hashtbl Hls_core Hls_ir Hls_techlib Library List Opkind Option Printf Region Resource Stdlib Unix
