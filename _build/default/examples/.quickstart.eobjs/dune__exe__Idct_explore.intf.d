examples/idct_explore.mli:
