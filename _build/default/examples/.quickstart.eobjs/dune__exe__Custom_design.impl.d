examples/custom_design.ml: Ast Dsl Format Hls_core Hls_flow Hls_frontend Hls_report Hls_sim Parser Printf
