examples/fir_pipeline.ml: Hls_core Hls_designs Hls_flow Hls_report Hls_rtl Hls_sim List Printf
