examples/quickstart.mli:
