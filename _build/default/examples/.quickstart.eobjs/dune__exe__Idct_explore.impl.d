examples/idct_explore.ml: Hls_designs Hls_flow Hls_report Hls_rtl List Printf String
