examples/quickstart.ml: Dsl Hls_core Hls_flow Hls_frontend Hls_report List Printf
