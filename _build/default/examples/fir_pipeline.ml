(** FIR filter micro-architecture exploration: sweep the initiation
    interval from sequential down to II=1 and watch area buy throughput,
    with every point functionally verified against the behavioural model.

    Run with: [dune exec examples/fir_pipeline.exe] *)

let () =
  let taps = 8 in
  let design = Hls_designs.Fir.design ~taps () in
  Printf.printf "%d-tap FIR filter, 1600 ps clock\n\n" taps;
  let rows =
    List.filter_map
      (fun ii ->
        let options = { Hls_flow.Flow.default_options with ii } in
        match Hls_flow.Flow.run ~options design with
        | Error _ -> None
        | Ok r ->
            Some
              [
                (match ii with Some i -> Printf.sprintf "pipelined II=%d" i | None -> "sequential");
                string_of_int r.Hls_flow.Flow.f_sched.Hls_core.Scheduler.s_li;
                string_of_int r.Hls_flow.Flow.f_cycles_per_iter;
                Printf.sprintf "%.1f" (1e6 /. r.Hls_flow.Flow.f_delay_ps);
                Printf.sprintf "%.0f" r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total;
                Printf.sprintf "%.2f" r.Hls_flow.Flow.f_power_mw;
                (match r.Hls_flow.Flow.f_equiv with
                | Some v when v.Hls_sim.Equiv.equivalent -> "yes"
                | _ -> "NO");
              ])
      [ None; Some 4; Some 2; Some 1 ]
  in
  Hls_report.Table.print
    ([ "architecture"; "LI"; "cycles/sample"; "Msamples/s"; "area"; "power (mW)"; "verified" ] :: rows);
  print_endline "\nEach halving of the initiation interval buys throughput with multipliers:";
  print_endline "the scheduler reuses the same engine for every point (the paper's key claim)."
