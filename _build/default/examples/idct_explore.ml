(** The Section VI design-space exploration on the IDCT: sweep loop
    latency and pipelining, plot area/delay, extract the Pareto front, and
    confirm that the best point needs pipelining.

    Run with: [dune exec examples/idct_explore.exe]
    (a reduced sweep; [bench/main.exe fig10] runs the full one) *)

let () =
  print_endline "IDCT design-space exploration (reduced sweep)\n";
  let runs =
    List.concat_map
      (fun latency ->
        List.filter_map
          (fun pipelined ->
            let ii = if pipelined then Some (latency / 2) else None in
            let options =
              {
                Hls_flow.Flow.default_options with
                ii;
                min_latency = Some latency;
                max_latency = Some latency;
                verify = false;
              }
            in
            match Hls_flow.Flow.run ~options (Hls_designs.Idct.design ()) with
            | Ok r ->
                Some
                  ( (if pipelined then Printf.sprintf "pipe-%d" latency
                     else Printf.sprintf "seq-%d" latency),
                    r )
            | Error _ -> None)
          [ false; true ])
      [ 16; 24; 32 ]
  in
  Hls_report.Table.print
    ([ "config"; "II"; "delay (ns)"; "area"; "power (mW)" ]
    :: List.map
         (fun (name, (r : Hls_flow.Flow.t)) ->
           [
             name;
             string_of_int r.Hls_flow.Flow.f_cycles_per_iter;
             Printf.sprintf "%.1f" (r.Hls_flow.Flow.f_delay_ps /. 1000.0);
             Printf.sprintf "%.0f" r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total;
             Printf.sprintf "%.2f" r.Hls_flow.Flow.f_power_mw;
           ])
         runs);
  let pts =
    List.map
      (fun (n, (r : Hls_flow.Flow.t)) ->
        Hls_report.Pareto.point ~x:r.Hls_flow.Flow.f_delay_ps
          ~y:r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total n)
      runs
  in
  Printf.printf "\narea/delay Pareto front: %s\n"
    (String.concat ", " (Hls_report.Pareto.front_tags pts));
  print_endline "(the fastest Pareto point is pipelined, as in the paper's Fig. 10)"
