(** Experiment harness: regenerates every table and figure of the paper's
    evaluation, plus Bechamel micro-benchmarks of the scheduler internals.

    {v
      dune exec bench/main.exe            # everything
      dune exec bench/main.exe table3     # one experiment
      dune exec bench/main.exe -- --list  # available experiments
    v}

    Paper-vs-measured records for each experiment are written to
    EXPERIMENTS.md by hand from this output (the shapes are deterministic;
    wall-clock figures vary with the host). *)

open Hls_ir
open Hls_core
open Hls_frontend

let lib = Hls_techlib.Library.artisan90
let clock = 1600.0

(* --smoke: shrink iteration counts so CI can run the benches as a fast
   correctness check (the numbers are then meaningless as measurements) *)
let smoke = ref false

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let narrative_opts = { Scheduler.default_options with seed_latency_floor = false }

let flow_opts ?ii ?min_latency ?max_latency ?(clock_ps = clock) ?(sched = Scheduler.default_options)
    () =
  { Hls_flow.Flow.default_options with ii; min_latency; max_latency; clock_ps; sched; sim_iters = 60 }

(* ------------------------------------------------------------------ *)
(* Table 1: initial set of resources with delays                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "TABLE 1 — initial set of resources with delays (artisan 90nm, ps)";
  let rows = Hls_techlib.Library.table1_rows lib in
  let paper = [ ("mul", 930.); ("add", 350.); ("gt", 220.); ("neq", 60.); ("ff", 40.); ("ff_en", 70.); ("mux2", 110.); ("mux3", 115.) ] in
  Hls_report.Table.print
    ([ "resource"; "delay (ours)"; "delay (paper)" ]
    :: List.map
         (fun (name, d) ->
           [ name; Printf.sprintf "%.0f" d;
             (match List.assoc_opt name paper with Some p -> Printf.sprintf "%.0f" p | None -> "-") ])
         rows);
  print_endline "Fig. 8 worked arithmetic: ff + mux2 + mul + mux2 + ff_setup =";
  Printf.printf "  40 + 110 + 930 + 110 + 40 = %.0f ps (paper: 1230)\n"
    (lib.Hls_techlib.Library.ff_clk_q +. 110. +. 930. +. 110. +. lib.Hls_techlib.Library.ff_setup)

(* ------------------------------------------------------------------ *)
(* Table 2: schedule for Example 1                                      *)
(* ------------------------------------------------------------------ *)

let schedule_example1 ?ii ?(max_latency = 3) ?(opts = narrative_opts) () =
  let e = Hls_designs.Example1.elaborated ~max_latency ?ii () in
  let region = Elaborate.main_region e in
  match Scheduler.schedule ~opts ~lib ~clock_ps:clock region with
  | Ok s -> (e, s)
  | Error err -> failwith ("example1 schedule failed: " ^ err.Scheduler.e_message)

let table2 () =
  section "TABLE 2 — schedule for Example 1 (sequential, Tclk = 1600 ps)";
  let _, s = schedule_example1 () in
  Hls_report.Table.print (Scheduler.to_table s);
  Printf.printf "LI = %d states, %d passes, relaxations: %s\n" s.Scheduler.s_li s.Scheduler.s_passes
    (String.concat " | " s.Scheduler.s_actions);
  print_endline "paper: s1 = {mul1, add, neq}, s2 = {mul2, gt, mux}, s3 = {mul3}; single multiplier"

(* ------------------------------------------------------------------ *)
(* Table 3: micro-architecture comparison                               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "TABLE 3 — comparing micro-architectures for Example 1";
  let run name ii =
    let options = flow_opts ?ii ~max_latency:4 () in
    match Hls_flow.Flow.run ~options (Hls_designs.Example1.design ()) with
    | Ok r -> (name, r.Hls_flow.Flow.f_cycles_per_iter, r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total,
               (match r.Hls_flow.Flow.f_equiv with Some v -> v.Hls_sim.Equiv.equivalent | None -> false))
    | Error e -> failwith (name ^ ": " ^ Hls_diag.Diag.to_string e)
  in
  let rows =
    [ run "Sequential (S)" None; run "Pipe II=2 (P2)" (Some 2); run "Pipe II=1 (P1)" (Some 1) ]
  in
  let paper = [ (3, 16094); (2, 24010); (1, 30491) ] in
  Hls_report.Table.print
    ([ "arch"; "cycles/iter"; "area (ours)"; "area (paper)"; "verified" ]
    :: List.map2
         (fun (n, c, a, ok) (pc, pa) ->
           [ n; string_of_int c; Printf.sprintf "%.0f" a;
             Printf.sprintf "%d (cycles %d)" pa pc; (if ok then "yes" else "NO") ])
         rows paper);
  let areas = List.map (fun (_, _, a, _) -> a) rows in
  (match areas with
  | [ s; p2; p1 ] ->
      Printf.printf "ordering S < P2 < P1: %b (paper: true)\n" (s < p2 && p2 < p1);
      Printf.printf "deltas: P2-S = %.0f (paper 7916), P1-P2 = %.0f (paper 6481)\n" (p2 -. s) (p1 -. p2)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Table 4: impact of the time-driven SCC-move heuristic                *)
(* ------------------------------------------------------------------ *)

let table4_designs () =
  (* seven timing-critical pipelined designs (the paper's D1..D7 are
     proprietary; these are tight-clock pipelined kernels whose
     accumulator SCCs contain real multiplications, the shape the SCC-move
     heuristic exists for) *)
  [
    ("D1 example1 II=1", Hls_designs.Example1.design (), 1, clock);
    ("D2 example1 II=2", Hls_designs.Example1.design (), 2, 1500.0);
    ("D3 agc d1 II=1", Hls_designs.Agc.design ~name:"agc_d1" ~depth:1 ~width:20 (), 1, clock);
    ("D4 agc w10 II=1", Hls_designs.Agc.design ~name:"agc_w10" ~depth:1 ~width:10 (), 1, clock);
    ("D5 agc d1 II=2", Hls_designs.Agc.design ~name:"agc_w" ~depth:1 ~width:28 (), 2, 1400.0);
    ("D6 agc w12 II=2", Hls_designs.Agc.design ~name:"agc_w12" ~depth:1 ~width:12 (), 2, 1500.0);
    ("D7 agc d2 II=3", Hls_designs.Agc.design ~name:"agc_ii3" ~depth:2 ~width:24 (), 3, 1200.0);
  ]

let table4 () =
  section "TABLE 4 — % area penalty with the SCC-move action disabled";
  let penalty (name, d, ii, clk) =
    let normal = flow_opts ~ii ~clock_ps:clk () in
    let ablated =
      {
        normal with
        Hls_flow.Flow.sched =
          {
            Scheduler.default_options with
            expert = { Expert.default_options with Expert.enable_scc_move = false };
            tolerate_scc_slack = true;
          };
        verify = false;
      }
    in
    match (Hls_flow.Flow.run ~options:normal d, Hls_flow.Flow.run ~options:ablated d) with
    | Ok a, Ok b ->
        let pa = a.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total in
        let pb = b.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total in
        Some (name, pa, pb, (pb -. pa) /. pa *. 100.0, b.Hls_flow.Flow.f_area.Hls_rtl.Stats.wns)
    | Error e, _ | _, Error e ->
        Printf.printf "  (%s skipped: %s)\n" name (Hls_diag.Diag.to_string e);
        None
  in
  let rows = List.filter_map penalty (table4_designs ()) in
  Hls_report.Table.print
    ([ "design"; "area (moves on)"; "area (moves off)"; "% penalty"; "wns off (ps)" ]
    :: List.map
         (fun (n, a, b, p, w) ->
           [ n; Printf.sprintf "%.0f" a; Printf.sprintf "%.0f" b; Printf.sprintf "%.1f" p;
             Printf.sprintf "%.0f" w ])
         rows);
  let avg = List.fold_left (fun acc (_, _, _, p, _) -> acc +. p) 0.0 rows /. float_of_int (max 1 (List.length rows)) in
  Printf.printf "average penalty: %.1f %% (paper: 13.5 %%, designs D1..D7: 14.7/2.7/33.0/21.5/3.7/6.4/12.9)\n" avg

(* ------------------------------------------------------------------ *)
(* Fig. 5: pipelining Example 1 with LI=3 and II=2                      *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "FIG 5 — pipeline kernel for Example 1 (LI=3, II=2)";
  let _, s = schedule_example1 ~ii:2 ~max_latency:4 () in
  let f = Pipeline.fold s in
  Hls_report.Table.print (Pipeline.to_table s f);
  Printf.printf "stages = %d, kernel states = %d (paper: 2 stages, II=2)\n" f.Pipeline.f_stages
    f.Pipeline.f_ii

(* ------------------------------------------------------------------ *)
(* Fig. 8: datapath modelling during scheduling                          *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "FIG 8 — datapath delay queries during binding (Example 1, pass 1)";
  let e = Hls_designs.Example1.elaborated ~max_latency:1 ~min_latency:1 () in
  let region = Elaborate.main_region e in
  let trace = Trace.create () in
  (match Scheduler.schedule ~opts:narrative_opts ~trace ~lib ~clock_ps:clock region with
  | Ok _ -> ()
  | Error _ -> ());
  (* the narrative of interest is in the first pass events *)
  List.iter print_endline
    (List.filteri (fun i _ -> i < 14) (Trace.events trace));
  print_endline "paper: mul binds at 1230 ps, add chains to 1580 ps, gt fails at 1800 ps (slack -200)"

(* ------------------------------------------------------------------ *)
(* Fig. 9: scheduling time vs number of operations                      *)
(* ------------------------------------------------------------------ *)

(* the population is capped at ~1000 ops so the whole sweep runs in
   minutes; the paper's own scheduler averaged 7 minutes per design, and
   the observation under test — runtime does not correlate with size —
   shows at this scale too *)
let fig9 ?(n = 40) ?(hi = 1000) () =
  section (Printf.sprintf "FIG 9 — scheduling time vs design size (%d synthetic designs)" n);
  let designs = Hls_designs.Synthetic.population ~n ~lo:100 ~hi ~seed:17 () in
  (* constraint tightness — the paper's actual runtime driver — varies via
     the clock: tight small designs burn passes, relaxed large ones don't *)
  let clocks = [| 1150.0; 2400.0; 1300.0; 1800.0; 1600.0 |] in
  let points =
    List.filter_map
      (fun (idx, d) ->
        let e = Elaborate.design d in
        let region = Elaborate.main_region e in
        let ops = Region.n_members region in
        (* wide-operand giants are not schedulable at the tightest clocks;
           assign those a relaxed period (the paper's large customer
           designs were likewise not its most constrained ones) *)
        let clock =
          let c = clocks.(idx mod Array.length clocks) in
          if ops > 1400 then max c 1600.0 else c
        in
        match Scheduler.schedule ~lib ~clock_ps:clock region with
        | Ok s ->
            Printf.printf "  %-22s %5d ops  clk %4.0f  %7.2f s  (%d passes, %d insts)\n%!"
              d.Ast.d_name ops clock s.Scheduler.s_sched_time_s s.Scheduler.s_passes
              (Hls_netlist.Netlist.n_insts s.Scheduler.s_binding.Binding.net);
            Some ((float_of_int ops, float_of_int s.Scheduler.s_passes), s.Scheduler.s_sched_time_s)
        | Error err ->
            Printf.printf "  %-22s %5d ops  clk %4.0f  FAILED (%s)\n%!" d.Ast.d_name ops clock
              err.Scheduler.e_message;
            None)
      (List.mapi (fun i d -> (i, d)) designs)
  in
  let points_passes = List.map (fun ((_, p), t) -> (p, t)) points in
  let points = List.map (fun ((o, _), t) -> (o, t)) points in
  Hls_report.Plot.print ~x_scale:Hls_report.Plot.Log10 ~title:"scheduling time vs #ops"
    ~x_label:"#ops" ~y_label:"time (s)"
    [ Hls_report.Plot.series "designs" points ];
  (* the paper's observation: runtime does not correlate with size *)
  let xs = List.map fst points and ys = List.map snd points in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mx = mean xs and my = mean ys in
  let cov = mean (List.map2 (fun x y -> (x -. mx) *. (y -. my)) xs ys) in
  let sx = sqrt (mean (List.map (fun x -> (x -. mx) ** 2.0) xs)) in
  let sy = sqrt (mean (List.map (fun y -> (y -. my) ** 2.0) ys)) in
  let r_size = if sx *. sy = 0.0 then 0.0 else cov /. (sx *. sy) in
  let xs2 = List.map fst points_passes and ys2 = List.map snd points_passes in
  let mx2 = mean xs2 and my2 = mean ys2 in
  let cov2 = mean (List.map2 (fun x y -> (x -. mx2) *. (y -. my2)) xs2 ys2) in
  let sx2 = sqrt (mean (List.map (fun x -> (x -. mx2) ** 2.0) xs2)) in
  let sy2 = sqrt (mean (List.map (fun y -> (y -. my2) ** 2.0) ys2)) in
  let r_passes = if sx2 *. sy2 = 0.0 then 0.0 else cov2 /. (sx2 *. sy2) in
  (* tightness spread at similar size: the ratio of slowest to fastest
     runtime among mid-population designs *)
  let mid = List.filter (fun (o, _) -> o >= 300.0 && o <= 900.0) points in
  let spread =
    match mid with
    | [] -> 1.0
    | (_, t) :: _ ->
        let mx = List.fold_left (fun a (_, t) -> max a t) t mid in
        let mn = List.fold_left (fun a (_, t) -> min a t) t mid in
        if mn > 0.0 then mx /. mn else 1.0
  in
  Printf.printf
    "Pearson r(#ops, time) = %.2f, r(#passes, time) = %.2f; %.0fx runtime spread among\n\
     similar-size designs (paper: \"execution time does not correlate with input CDFG size\",\n\
     \"depends on the number of pass scheduler calls\" — our per-pass cost does grow with\n\
     op count, so a moderate size correlation remains; the tightness-driven spread at\n\
     fixed size is the paper's observable)\n"
    r_size r_passes spread

(* ------------------------------------------------------------------ *)
(* Figs. 10 and 11: area/delay and power/delay for the IDCT              *)
(* ------------------------------------------------------------------ *)

(* the Fig. 10/11 sweep as a DSE point list: each curve = a
   micro-architecture (loop latency, pipelined or not); points along a
   curve = different clock periods at that latency *)
let idct_points () =
  let latencies = [ 8; 16; 24; 32 ] in
  let clocks = [ 1200.0; 1600.0; 2400.0 ] in
  List.concat_map
    (fun l ->
      List.concat_map
        (fun pipelined ->
          List.map
            (fun clk ->
              Hls_dse.Dse.point
                ?ii:(if pipelined then Some (l / 2) else None)
                ~min_latency:l ~max_latency:l ~clock_ps:clk ())
            clocks)
        [ false; true ])
    latencies

let idct_point_name (p : Hls_dse.Dse.point) =
  let l = Option.value p.Hls_dse.Dse.pt_min_latency ~default:0 in
  match p.Hls_dse.Dse.pt_ii with
  | Hls_dse.Dse.Seq -> Printf.sprintf "Non-Pipelined %d" l
  | _ -> Printf.sprintf "Pipelined %d" l

let idct_sweep_options =
  { (flow_opts ()) with Hls_flow.Flow.verify = false }

let idct_sweep ?(jobs = Domain.recommended_domain_count ()) ?max_workers
    ?(engine = Hls_dse.Dse.create ()) () =
  let sw =
    Hls_dse.Dse.sweep ~jobs ?max_workers engine ~options:idct_sweep_options
      (Hls_designs.Idct.design ()) (idct_points ())
  in
  let runs =
    List.filter_map
      (fun (r : Hls_dse.Dse.result) ->
        match r.Hls_dse.Dse.r_flow with
        | Ok f -> Some (idct_point_name r.Hls_dse.Dse.r_point, f)
        | Error _ -> None)
      sw.Hls_dse.Dse.sw_results
  in
  (runs, sw)

let fig10_11 () =
  section "FIG 10 / FIG 11 — area/delay and power/delay for the IDCT design space";
  let runs, sw = idct_sweep () in
  Printf.printf "%d HLS runs (paper: 25 runs) — %s\n" (List.length runs)
    (Hls_dse.Dse.stats_to_string (Hls_dse.Dse.stats sw));
  Hls_report.Table.print
    ([ "curve"; "clock (ps)"; "II"; "delay (ns)"; "area"; "power (mW)" ]
    :: List.map
         (fun (name, (r : Hls_flow.Flow.t)) ->
           [
             name;
             Printf.sprintf "%.0f" r.Hls_flow.Flow.f_clock_ps;
             string_of_int r.Hls_flow.Flow.f_cycles_per_iter;
             Printf.sprintf "%.1f" (r.Hls_flow.Flow.f_delay_ps /. 1000.0);
             Printf.sprintf "%.0f" r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total;
             Printf.sprintf "%.2f" r.Hls_flow.Flow.f_power_mw;
           ])
         runs);
  let by_curve =
    List.sort_uniq compare (List.map fst runs)
    |> List.mapi (fun i name ->
           let pts =
             List.filter_map
               (fun (n, r) ->
                 if n = name then
                   Some (r.Hls_flow.Flow.f_delay_ps /. 1000.0, r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total)
                 else None)
               runs
           in
           Hls_report.Plot.series
             ~glyph:Hls_report.Plot.default_glyphs.(i mod 8)
             name pts)
  in
  Hls_report.Plot.print ~title:"FIG 10: area vs delay (inverse throughput)" ~x_label:"delay (ns)"
    ~y_label:"area" by_curve;
  let by_curve_p =
    List.sort_uniq compare (List.map fst runs)
    |> List.mapi (fun i name ->
           let pts =
             List.filter_map
               (fun (n, r) ->
                 if n = name then Some (r.Hls_flow.Flow.f_delay_ps /. 1000.0, r.Hls_flow.Flow.f_power_mw)
                 else None)
               runs
           in
           Hls_report.Plot.series ~glyph:Hls_report.Plot.default_glyphs.(i mod 8) name pts)
  in
  Hls_report.Plot.print ~title:"FIG 11: power vs delay" ~x_label:"delay (ns)" ~y_label:"power (mW)"
    by_curve_p;
  (* Pareto analysis: the paper's key claim — the best (bottom-left) point
     is reachable only by pipelining *)
  let pts =
    List.map
      (fun (n, r) ->
        Hls_report.Pareto.point ~x:(r.Hls_flow.Flow.f_delay_ps) ~y:r.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total n)
      runs
  in
  let front = Hls_report.Pareto.front pts in
  Printf.printf "area/delay Pareto front: %s\n"
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "%s@%.1fns" p.Hls_report.Pareto.p_tag (p.Hls_report.Pareto.p_x /. 1000.)) front));
  let fastest = List.hd front in
  Printf.printf "fastest Pareto point is pipelined: %b (paper: true — \"the best Pareto point can \
                 be achieved only by pipelining\")\n"
    (String.length fastest.Hls_report.Pareto.p_tag >= 4
    && String.sub fastest.Hls_report.Pareto.p_tag 0 4 = "Pipe")

(* ------------------------------------------------------------------ *)
(* DSE engine benchmark: exploration throughput and parallel speedup    *)
(* ------------------------------------------------------------------ *)

(* per-point orchestration overhead: wall-clock the sweep spent outside
   the flow runs themselves (fingerprinting, dedup, domain spawn/handoff),
   spread over the points *)
let overhead_per_point (s : Hls_dse.Dse.stats) =
  if s.Hls_dse.Dse.s_points > 0 then
    (s.Hls_dse.Dse.s_wall_s -. s.Hls_dse.Dse.s_cpu_s) /. float_of_int s.Hls_dse.Dse.s_points
  else 0.0

let bench_dse () =
  section "DSE — exploration throughput on the IDCT sweep (BENCH_dse.json)";
  let requested_jobs = 4 in
  (* fresh engine per timing run: the cache must not serve the second run.
     max_workers is NOT lifted past the host's core count any more —
     oversubscribing domains on a small machine measured the scheduler
     thrash, not the engine (the old 0.32x "speedup") — so on a single-core
     host the parallel run degrades to sequential and says so *)
  let _, sw1 = idct_sweep ~jobs:1 ~engine:(Hls_dse.Dse.create ()) () in
  let par_engine = Hls_dse.Dse.create () in
  let _, swn = idct_sweep ~jobs:requested_jobs ~engine:par_engine () in
  (* second parallel sweep on the same engine over a disjoint point set:
     the resident pool is already spawned, so the wall difference against
     the first sweep is the amortized domain-startup cost *)
  let warm_points =
    List.map
      (fun (p : Hls_dse.Dse.point) ->
        { p with Hls_dse.Dse.pt_clock_ps = p.Hls_dse.Dse.pt_clock_ps +. 8.0 })
      (idct_points ())
  in
  let sw_pool =
    Hls_dse.Dse.sweep ~jobs:requested_jobs par_engine ~options:idct_sweep_options
      (Hls_designs.Idct.design ()) warm_points
  in
  (* and a cache-hit pass on a shared engine, to show the memoization *)
  let engine = Hls_dse.Dse.create () in
  let _ = idct_sweep ~jobs:1 ~engine () in
  let _, sw_cached = idct_sweep ~jobs:1 ~engine () in
  let s1 = Hls_dse.Dse.stats sw1 and sn = Hls_dse.Dse.stats swn in
  let sp = Hls_dse.Dse.stats sw_pool in
  let sc = Hls_dse.Dse.stats sw_cached in
  let speedup = if sn.Hls_dse.Dse.s_wall_s > 0.0 then s1.Hls_dse.Dse.s_wall_s /. sn.Hls_dse.Dse.s_wall_s else 0.0 in
  Printf.printf "jobs=1: %s\n" (Hls_dse.Dse.stats_to_string s1);
  Printf.printf "jobs=%d (effective %d): %s\n" requested_jobs sn.Hls_dse.Dse.s_jobs
    (Hls_dse.Dse.stats_to_string sn);
  Printf.printf "jobs=%d warm pool: %s\n" requested_jobs (Hls_dse.Dse.stats_to_string sp);
  Printf.printf "cached re-sweep: %s\n" (Hls_dse.Dse.stats_to_string sc);
  Printf.printf
    "per-point overhead: %.1f us (jobs=1), %.1f us (jobs=%d cold pool), %.1f us (jobs=%d warm \
     pool)\n"
    (overhead_per_point s1 *. 1e6)
    (overhead_per_point sn *. 1e6)
    requested_jobs
    (overhead_per_point sp *. 1e6)
    requested_jobs;
  Printf.printf "speedup jobs=%d vs jobs=1: %.2fx (%d core(s) available)\n" requested_jobs speedup
    (Domain.recommended_domain_count ());
  Hls_dse.Dse.shutdown par_engine;
  let oc = open_out "BENCH_dse.json" in
  Printf.fprintf oc
    {|{"design":"idct","points":%d,"requested_jobs":%d,"effective_jobs":%d,"cores":%d,"jobs_1":%s,"jobs_n":%s,"jobs_n_warm_pool":%s,"cached_resweep":%s,"points_per_s_jobs_1":%.3f,"points_per_s_jobs_n":%.3f,"overhead_per_point_s_jobs_1":%.6f,"overhead_per_point_s_jobs_n":%.6f,"overhead_per_point_s_warm_pool":%.6f,"speedup":%.3f}
|}
    s1.Hls_dse.Dse.s_points requested_jobs sn.Hls_dse.Dse.s_jobs
    (Domain.recommended_domain_count ())
    (Hls_dse.Dse.stats_to_json s1) (Hls_dse.Dse.stats_to_json sn)
    (Hls_dse.Dse.stats_to_json sp)
    (Hls_dse.Dse.stats_to_json sc)
    s1.Hls_dse.Dse.s_points_per_s sn.Hls_dse.Dse.s_points_per_s (overhead_per_point s1)
    (overhead_per_point sn) (overhead_per_point sp) speedup;
  close_out oc;
  print_endline "wrote BENCH_dse.json"

(* ------------------------------------------------------------------ *)
(* Scheduler benchmark: warm-start relaxation throughput                *)
(* (BENCH_sched.json)                                                   *)
(* ------------------------------------------------------------------ *)

let bench_sched () =
  section "SCHED — warm-start relaxation-loop throughput (BENCH_sched.json)";
  let reps = if !smoke then 1 else 3 in
  (* the headline synthetic-350 run pipelines at II=2: its long relaxation
     loop (40+ passes) works through SCC moves and speculation — the local
     actions prefix replay warm-starts from.  The -seq variant relaxes
     through global actions only (add state / add resource, which force a
     cold restart by design), so it isolates what the pass-invariant
     context, the heap and the ASAP/ALAP cache buy on their own; idct is
     the paper's worked example. *)
  let synth_profile tightness =
    { Hls_designs.Synthetic.default_profile with
      Hls_designs.Synthetic.p_ops = 350; p_seed = 7; p_tightness = tightness }
  in
  let designs =
    [
      ("synthetic-350",
       (fun () -> Hls_designs.Synthetic.design ~profile:(synth_profile 0.5) ()), Some 2, 3200.0);
      ("synthetic-350-seq",
       (fun () -> Hls_designs.Synthetic.design ~profile:(synth_profile 0.4) ()), None, clock);
      ("idct", (fun () -> Hls_designs.Idct.design ()), None, clock);
    ]
  in
  let measure ~warm_start (mk : unit -> Ast.design) ii clk =
    (* fresh elaboration per run — the scheduler mutates the region *)
    let best = ref infinity in
    let last = ref None in
    for _ = 1 to reps do
      let e = Elaborate.design (mk ()) in
      let region = Elaborate.main_region ?ii e in
      let opts = { Scheduler.default_options with warm_start } in
      let t0 = Unix.gettimeofday () in
      let r = Scheduler.schedule ~opts ~lib ~clock_ps:clk region in
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w;
      last := Some r
    done;
    match !last with
    | Some (Ok s) -> (!best, Some (Scheduler.stats s))
    | _ -> (!best, None)
  in
  let flow_wall ~warm_start (mk : unit -> Ast.design) ii clk =
    let options =
      { (flow_opts ?ii ~clock_ps:clk ~sched:{ Scheduler.default_options with warm_start } ()) with
        Hls_flow.Flow.verify = false }
    in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Hls_flow.Flow.run ~options (mk ()));
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let rows =
    List.map
      (fun (name, mk, ii, clk) ->
        let wall_legacy, st_legacy = measure ~warm_start:false mk ii clk in
        let wall_warm, st_warm = measure ~warm_start:true mk ii clk in
        let fw_legacy = flow_wall ~warm_start:false mk ii clk in
        let fw_warm = flow_wall ~warm_start:true mk ii clk in
        let speedup = if wall_warm > 0.0 then wall_legacy /. wall_warm else 0.0 in
        (match (st_legacy, st_warm) with
        | Some l, Some w ->
            let pps wall (st : Scheduler.stats) =
              if wall > 0.0 then float_of_int st.Scheduler.st_passes /. wall else 0.0
            in
            Printf.printf
              "  %-14s legacy %.3f s (%d passes, %.1f passes/s, %d queries) | warm %.3f s (%.1f \
               passes/s, %d queries, %d warm / %d cold) | speedup %.2fx | flow %.3f -> %.3f s\n%!"
              name wall_legacy l.Scheduler.st_passes (pps wall_legacy l) l.Scheduler.st_queries
              wall_warm (pps wall_warm w) w.Scheduler.st_queries w.Scheduler.st_warm_passes
              w.Scheduler.st_cold_passes speedup fw_legacy fw_warm
        | _ -> Printf.printf "  %-14s FAILED to schedule\n%!" name);
        (name, wall_legacy, wall_warm, speedup, fw_legacy, fw_warm, st_legacy, st_warm))
      designs
  in
  let json_row (name, wl, ww, sp, fl, fw, stl, stw) =
    let stats_part tag (st : Scheduler.stats option) =
      match st with
      | None -> Printf.sprintf {|"%s_passes":0,"%s_queries":0|} tag tag
      | Some s ->
          Printf.sprintf {|"%s_passes":%d,"%s_queries":%d|} tag s.Scheduler.st_passes tag
            s.Scheduler.st_queries
    in
    let warm_counts =
      match stw with
      | None -> {|"warm_start_passes":0,"cold_start_passes":0|}
      | Some s ->
          Printf.sprintf {|"warm_start_passes":%d,"cold_start_passes":%d|}
            s.Scheduler.st_warm_passes s.Scheduler.st_cold_passes
    in
    let queries_saved =
      match (stl, stw) with
      | Some l, Some w -> l.Scheduler.st_queries - w.Scheduler.st_queries
      | _ -> 0
    in
    Printf.sprintf
      {|{"design":"%s","wall_legacy_s":%.6f,"wall_warm_s":%.6f,"speedup":%.3f,"flow_wall_legacy_s":%.6f,"flow_wall_warm_s":%.6f,%s,%s,%s,"queries_saved":%d}|}
      name wl ww sp fl fw (stats_part "legacy" stl) (stats_part "warm" stw) warm_counts
      queries_saved
  in
  let speedup_of name =
    match List.find_opt (fun (n, _, _, _, _, _, _, _) -> n = name) rows with
    | Some (_, _, _, sp, _, _, _, _) -> sp
    | None -> 0.0
  in
  let synth_speedup = speedup_of "synthetic-350" in
  let oc = open_out "BENCH_sched.json" in
  Printf.fprintf oc
    {|{"reps":%d,"speedup_synthetic_350":%.3f,"speedup_synthetic_350_seq":%.3f,"designs":[%s]}
|}
    reps synth_speedup
    (speedup_of "synthetic-350-seq")
    (String.concat "," (List.map json_row rows));
  close_out oc;
  Printf.printf "synthetic-350 relaxation-loop speedup (warm vs legacy): %.2fx (target >= 1.5x)\n"
    synth_speedup;
  print_endline "wrote BENCH_sched.json"

(* ------------------------------------------------------------------ *)
(* Worked examples 1-3 narratives                                       *)
(* ------------------------------------------------------------------ *)

let examples () =
  section "EXAMPLES 1-3 — relaxation narratives";
  let narrate name ?ii ?(max_latency = 3) () =
    Printf.printf "\n--- %s ---\n" name;
    let e = Hls_designs.Example1.elaborated ~max_latency ?ii () in
    let region = Elaborate.main_region e in
    let trace = Trace.create () in
    (match Scheduler.schedule ~opts:narrative_opts ~trace ~lib ~clock_ps:clock region with
    | Ok s ->
        List.iter
          (fun ev -> if not (String.length ev > 3 && String.sub ev 0 4 = "    ") then print_endline ev)
          (Trace.events trace);
        Printf.printf "=> success: LI=%d, passes=%d\n" s.Scheduler.s_li s.Scheduler.s_passes
    | Error err -> Printf.printf "=> failed: %s\n" err.Scheduler.e_message)
  in
  narrate "Example 1: sequential (paper: fails at LI=1 and 2, succeeds at 3)" ();
  narrate "Example 2: pipelined II=2 (paper: succeeds immediately at LI=3)" ~ii:2 ~max_latency:4 ();
  narrate "Example 3: pipelined II=1 (paper: SCC moved to s2, 3 multipliers)" ~ii:1 ~max_latency:4 ()

(* ------------------------------------------------------------------ *)
(* Baseline comparison (Section III context)                            *)
(* ------------------------------------------------------------------ *)

let baselines () =
  section "BASELINES — unified timing-aware engine vs modulo scheduling vs schedule-then-fold";
  let designs =
    [
      ("example1 II=2", Hls_designs.Example1.design (), 2);
      ("example1 II=1", Hls_designs.Example1.design (), 1);
      ("fir8 II=1", Hls_designs.Fir.design (), 1);
      ("fft II=1", Hls_designs.Fft.design (), 1);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, d, ii) ->
        let ours =
          let e = Elaborate.design d in
          let region = Elaborate.main_region ~ii e in
          match Scheduler.schedule ~lib ~clock_ps:clock region with
          | Ok s ->
              let rep = Hls_netlist.Netlist.timing_report s.Scheduler.s_binding.Binding.net in
              let syn = Hls_timing.Synthesize.run lib rep in
              [ [ name ^ " / ours"; string_of_int s.Scheduler.s_li;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_wns;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_area;
                  string_of_int syn.Hls_timing.Synthesize.s_upsized ] ]
          | Error _ -> [ [ name ^ " / ours"; "-"; "-"; "-"; "-" ] ]
        in
        let modulo =
          (* unpinned: the cycle-grained engine reports the II it can reach
             (its chaining-blind RecMII is larger than ours) *)
          let e = Elaborate.design d in
          let region = Elaborate.main_region ~ii e in
          match Hls_baseline.Modulo.schedule ~lib ~clock_ps:clock region with
          | Ok m ->
              let rep = Hls_netlist.Netlist.timing_report m.Hls_baseline.Modulo.m_binding.Binding.net in
              let syn = Hls_timing.Synthesize.run lib rep in
              [ [ Printf.sprintf "%s / modulo (reaches II=%d)" name m.Hls_baseline.Modulo.m_ii;
                  string_of_int m.Hls_baseline.Modulo.m_li;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_wns;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_area;
                  string_of_int syn.Hls_timing.Synthesize.s_upsized ] ]
          | Error e -> [ [ name ^ " / modulo"; "-"; e.Hls_baseline.Modulo.m_message; "-"; "-" ] ]
        in
        let sehwa =
          let e = Elaborate.design d in
          let region = Elaborate.main_region ~ii e in
          match Hls_baseline.Sehwa.schedule ~ii ~lib ~clock_ps:clock region with
          | Ok m ->
              let rep = Hls_netlist.Netlist.timing_report m.Hls_baseline.Sehwa.s_binding.Binding.net in
              let syn = Hls_timing.Synthesize.run lib rep in
              [ [ name ^ " / schedule-then-fold";
                  Printf.sprintf "%d (%d attempts)" m.Hls_baseline.Sehwa.s_li m.Hls_baseline.Sehwa.s_attempts;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_wns;
                  Printf.sprintf "%.0f" syn.Hls_timing.Synthesize.s_area;
                  string_of_int syn.Hls_timing.Synthesize.s_upsized ] ]
          | Error e -> [ [ name ^ " / schedule-then-fold"; "-"; e.Hls_baseline.Sehwa.s_message; "-"; "-" ] ]
        in
        ours @ modulo @ sehwa)
      designs
  in
  Hls_report.Table.print
    ([ "engine"; "LI"; "wns after synth (ps)"; "resource area"; "#upsized" ] :: rows);
  print_endline
    "shape: the unified chaining-aware engine reaches the designer's II at short LI; the\n\
     cycle-grained modulo baseline cannot chain, so its recurrence bound forces a larger II\n\
     (and much larger LI), and schedule-then-fold never converges on recurrences -- the\n\
     decoupling weaknesses Section III describes."

(* ------------------------------------------------------------------ *)
(* Timing-awareness ablation                                            *)
(* ------------------------------------------------------------------ *)

let ablation_timing () =
  section "ABLATION — netlist-accurate timing vs naive additive timing during scheduling";
  let designs =
    [ ("example1 II=1", Hls_designs.Example1.design (), Some 1, clock);
      ("idct seq (shared)", Hls_designs.Idct.design ~min_latency:16 ~max_latency:16 (), None, 1500.0);
      ("fir8 II=1", Hls_designs.Fir.design (), Some 1, 1400.0);
      ("sobel seq", Hls_designs.Conv.design (), None, 900.0) ]
  in
  let rows =
    List.filter_map
      (fun (name, d, ii, clk) ->
        let aware = flow_opts ?ii ~clock_ps:clk () in
        let naive =
          { aware with
            Hls_flow.Flow.sched = { Scheduler.default_options with timing_aware = false };
            verify = false }
        in
        match (Hls_flow.Flow.run ~options:aware d, Hls_flow.Flow.run ~options:naive d) with
        | Ok a, Ok b ->
            Some
              [ name;
                Printf.sprintf "%.0f / %.0f" a.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total
                  b.Hls_flow.Flow.f_area.Hls_rtl.Stats.a_total;
                Printf.sprintf "%.0f / %.0f" a.Hls_flow.Flow.f_area.Hls_rtl.Stats.wns
                  b.Hls_flow.Flow.f_area.Hls_rtl.Stats.wns ]
        | _ -> Some [ name; "(one side failed)"; "-" ])
      designs
  in
  Hls_report.Table.print ([ "design"; "area aware/naive"; "wns aware/naive (ps)" ] :: rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "MICRO — Bechamel benchmarks of the scheduler internals";
  let open Bechamel in
  let e = Hls_designs.Example1.elaborated ~max_latency:4 () in
  let region = Elaborate.main_region ~ii:2 e in
  let sched_example1 =
    Test.make ~name:"schedule example1 (II=2, full relaxation loop)"
      (Staged.stage (fun () ->
           let e = Hls_designs.Example1.elaborated ~max_latency:4 ~ii:2 () in
           let region = Elaborate.main_region e in
           ignore (Scheduler.schedule ~lib ~clock_ps:clock region)))
  in
  let asap =
    Test.make ~name:"asap/alap analysis (example1)"
      (Staged.stage (fun () -> ignore (Asap_alap.compute ~lib ~clock_ps:clock region)))
  in
  let sccs =
    Test.make ~name:"SCC detection (example1)"
      (Staged.stage (fun () -> ignore (Region.sccs region)))
  in
  let synth100 =
    let d = Hls_designs.Synthetic.design ~profile:{ Hls_designs.Synthetic.default_profile with p_ops = 100; p_seed = 3 } () in
    Test.make ~name:"schedule synthetic-100"
      (Staged.stage (fun () ->
           let e = Elaborate.design d in
           let region = Elaborate.main_region e in
           ignore (Scheduler.schedule ~lib ~clock_ps:clock region)))
  in
  let behave =
    let d = Hls_designs.Example1.design () in
    let stim = Hls_sim.Stimulus.small_random ~seed:3 ~n_iters:100 ~ports:d.Ast.d_ins in
    Test.make ~name:"behavioural sim (100 iters)"
      (Staged.stage (fun () -> ignore (Hls_sim.Behav.run d stim)))
  in
  let tests = [ sched_example1; asap; sccs; synth100; behave ] in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 300) () in
    let results =
      Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (Test.make_grouped ~name:"g" [ test ])
    in
    let ols =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Toolkit.Instance.monotonic_clock results
    in
    Hashtbl.iter
      (fun name r ->
        match Bechamel.Analyze.OLS.estimates r with
        | Some [ est ] -> Printf.printf "  %-48s %12.0f ns/run\n" name est
        | _ -> ())
      ols
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Netlist engine benchmark: incremental-timing query throughput and    *)
(* trial/rollback transaction throughput (BENCH_netlist.json)           *)
(* ------------------------------------------------------------------ *)

let bench_netlist () =
  section "NETLIST — incremental timing engine throughput (BENCH_netlist.json)";
  let module Netlist = Hls_netlist.Netlist in
  let profile =
    { Hls_designs.Synthetic.default_profile with Hls_designs.Synthetic.p_ops = 350; p_seed = 7 }
  in
  let d = Hls_designs.Synthetic.design ~profile () in
  let e = Elaborate.design d in
  let region = Elaborate.main_region e in
  match Scheduler.schedule ~lib ~clock_ps:clock region with
  | Error err -> Printf.printf "synthetic-350 failed to schedule: %s\n" err.Scheduler.e_message
  | Ok s ->
      let net = s.Scheduler.s_binding.Hls_core.Binding.net in
      let st = Scheduler.stats s in
      let ns = Netlist.stats net in
      let sched_queries_per_s =
        if st.Scheduler.st_sched_s > 0.0 then
          float_of_int ns.Netlist.s_queries /. st.Scheduler.st_sched_s
        else 0.0
      in
      (* micro-loop: a full what-if transaction (open, recompute the seed
         ops, roll back) — the unit of work a candidate binding costs *)
      let seeds =
        Netlist.fold_placements net (fun op _ acc -> op :: acc) [] |> fun l ->
        List.filteri (fun i _ -> i < 32) (List.sort compare l)
      in
      let iters = if !smoke then 50 else 2000 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        Netlist.begin_trial net;
        List.iter (fun op -> ignore (Netlist.recompute_arrival net op)) seeds;
        Netlist.rollback net
      done;
      let trial_s = Unix.gettimeofday () -. t0 in
      let trial_per_s = if trial_s > 0.0 then float_of_int iters /. trial_s else 0.0 in
      let micro_queries_per_s =
        if trial_s > 0.0 then float_of_int (iters * List.length seeds) /. trial_s else 0.0
      in
      let deviation = Netlist.reference_deviation net in
      Printf.printf "schedule: %d ops, LI=%d, %.3f s in the scheduler\n"
        (Netlist.n_placed net) s.Scheduler.s_li st.Scheduler.st_sched_s;
      Printf.printf "scheduling run: %d queries, %d trials (%d commits / %d rollbacks), %.0f queries/s\n"
        ns.Netlist.s_queries ns.Netlist.s_trials ns.Netlist.s_commits ns.Netlist.s_rollbacks
        sched_queries_per_s;
      Printf.printf "micro trial/rollback: %d iters x %d seeds in %.3f s = %.0f transactions/s, %.0f queries/s\n"
        iters (List.length seeds) trial_s trial_per_s micro_queries_per_s;
      Printf.printf "oracle deviation vs reference evaluator: %.6f ps\n" deviation;
      let oc = open_out "BENCH_netlist.json" in
      Printf.fprintf oc
        {|{"design":"synthetic-350","ops":%d,"li":%d,"sched_s":%.6f,"queries":%d,"trials":%d,"commits":%d,"rollbacks":%d,"sched_queries_per_s":%.1f,"trial_rollback_iters":%d,"trial_rollback_s":%.6f,"trial_rollback_per_s":%.1f,"micro_queries_per_s":%.1f,"oracle_max_deviation_ps":%.6f}
|}
        (Netlist.n_placed net)
        s.Scheduler.s_li st.Scheduler.st_sched_s ns.Netlist.s_queries ns.Netlist.s_trials
        ns.Netlist.s_commits ns.Netlist.s_rollbacks sched_queries_per_s iters trial_s trial_per_s
        micro_queries_per_s deviation;
      close_out oc;
      print_endline "wrote BENCH_netlist.json"

(* ------------------------------------------------------------------ *)
(* Design-size scaling sweep: wall clock and query throughput vs op     *)
(* count, tracked per PR (BENCH_scale.json)                             *)
(* ------------------------------------------------------------------ *)

let bench_scale () =
  section "SCALE — scheduler wall clock vs design size (BENCH_scale.json)";
  (* log-spaced sizes from the synthetic-350 reference up to production
     scale; tightness is kept moderate so the relaxation loop terminates
     in a comparable number of passes at every size and the curve
     isolates per-pass cost growth *)
  (* generator targets chosen so the *elaborated* op counts land at
     ~350 / 1k / 3k / 10k (elaboration roughly doubles the source op
     count with muxes and port plumbing) *)
  let sizes = if !smoke then [ 175; 500 ] else [ 175; 500; 1500; 5000 ] in
  let rows =
    List.map
      (fun ops ->
        let profile =
          { Hls_designs.Synthetic.default_profile with
            Hls_designs.Synthetic.p_ops = ops; p_seed = 7; p_tightness = 0.3 }
        in
        let d = Hls_designs.Synthetic.design ~profile () in
        let e = Elaborate.design d in
        let region = Elaborate.main_region e in
        let n = Region.n_members region in
        Gc.compact ();
        match Scheduler.schedule ~lib ~clock_ps:clock region with
        | Ok s ->
            let st = Scheduler.stats s in
            let peak = (Gc.quick_stat ()).Gc.top_heap_words in
            let qps =
              if st.Scheduler.st_sched_s > 0.0 then
                float_of_int st.Scheduler.st_queries /. st.Scheduler.st_sched_s
              else 0.0
            in
            Printf.printf
              "  %6d ops  %8.3f s  %9d queries  %8.0f queries/s  %3d passes  %9d visits  \
               %7d trials (%d rb)  %10d peak words\n%!"
              n st.Scheduler.st_sched_s st.Scheduler.st_queries qps st.Scheduler.st_passes
              st.Scheduler.st_visits st.Scheduler.st_trials st.Scheduler.st_rollbacks peak;
            Some (n, st, peak)
        | Error err ->
            Printf.printf "  %6d ops  FAILED: %s\n%!" n err.Scheduler.e_message;
            None)
      sizes
  in
  let rows = List.filter_map Fun.id rows in
  let json_row (n, (st : Scheduler.stats), peak) =
    let qps =
      if st.Scheduler.st_sched_s > 0.0 then
        float_of_int st.Scheduler.st_queries /. st.Scheduler.st_sched_s
      else 0.0
    in
    Printf.sprintf
      {|{"ops":%d,"wall_s":%.6f,"queries":%d,"queries_per_s":%.1f,"passes":%d,"visits":%d,"peak_heap_words":%d}|}
      n st.Scheduler.st_sched_s st.Scheduler.st_queries qps st.Scheduler.st_passes
      st.Scheduler.st_visits peak
  in
  (* the headline scaling exponent: slope of log(wall) over log(ops)
     between the smallest and largest completed points *)
  let exponent =
    match (rows, List.rev rows) with
    | (n0, st0, _) :: _, (n1, st1, _) :: _
      when n1 > n0 && st0.Scheduler.st_sched_s > 0.0 && st1.Scheduler.st_sched_s > 0.0 ->
        log (st1.Scheduler.st_sched_s /. st0.Scheduler.st_sched_s)
        /. log (float_of_int n1 /. float_of_int n0)
    | _ -> 0.0
  in
  Printf.printf "scaling exponent (log wall / log ops): %.2f\n" exponent;
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc {|{"design":"synthetic","clock_ps":%.0f,"scaling_exponent":%.3f,"points":[%s]}
|}
    clock exponent
    (String.concat "," (List.map json_row rows));
  close_out oc;
  print_endline "wrote BENCH_scale.json"

(* ------------------------------------------------------------------ *)
(* Loop-nest pipelining: unroll-based 1-D baseline vs the flattened     *)
(* multi-dimensional pipeline vs hierarchical bottom-up composition     *)
(* (BENCH_nest.json)                                                    *)
(* ------------------------------------------------------------------ *)

let bench_nest () =
  section "NEST — 1-D unroll baseline vs multi-dimensional pipelining (BENCH_nest.json)";
  let module Flow = Hls_flow.Flow in
  let workloads =
    [
      ("matmul", "examples/matmul.bhv", [ 8; 1 ]);
      ("stencil2d", "examples/stencil2d.bhv", [ 8400; 2 ]);
    ]
  in
  let json_of_flow (r : Flow.t) =
    let a = r.Flow.f_area in
    Printf.sprintf
      {|{"ok":true,"ii":%d,"ii_dims":[%s],"li":%d,"delay_ps":%.0f,"area":%.0f,"tier":"%s","verified":%b}|}
      r.Flow.f_cycles_per_iter
      (String.concat "," (List.map string_of_int (Flow.per_dim_iis r)))
      r.Flow.f_sched.Scheduler.s_li r.Flow.f_delay_ps a.Hls_rtl.Stats.a_total
      (Flow.tier_to_string r.Flow.f_tier)
      (match r.Flow.f_equiv with Some v -> v.Hls_sim.Equiv.equivalent | None -> false)
  in
  let json_err (d : Hls_diag.Diag.t) =
    Printf.sprintf {|{"ok":false,"code":"%s"}|} d.Hls_diag.Diag.d_code
  in
  let sim_iters = if !smoke then 20 else 60 in
  let rows =
    List.map
      (fun (name, path, dims) ->
        let design = Parser.parse_file path in
        let run ~nest_mode ~ii ~ii_dims =
          Flow.run
            ~options:
              { Flow.default_options with ii; ii_dims; nest_mode; sim_iters; degrade = false }
            design
        in
        (* 1-D baseline: fully unroll the inner dimension, then pipeline
           the single remaining loop as before this PR *)
        let unroll = run ~nest_mode:`Unroll ~ii:(Some 1) ~ii_dims:None in
        let unroll =
          match unroll with Ok _ -> unroll | Error _ -> run ~nest_mode:`Unroll ~ii:(Some 2) ~ii_dims:None
        in
        (* flattened multi-dimensional pipeline at the per-dimension request *)
        let flat = run ~nest_mode:`Flatten ~ii:None ~ii_dims:(Some dims) in
        (* hierarchical bottom-up composition (inner kernel as super-op) *)
        let hier = Nest_sched.compose ~lib ~clock_ps:clock design in
        let show tag = function
          | Ok r -> Printf.printf "  %-10s %-8s %s\n%!" name tag (Flow.summary r)
          | Error d ->
              Printf.printf "  %-10s %-8s infeasible (%s)\n%!" name tag d.Hls_diag.Diag.d_code
        in
        show "unroll" unroll;
        show "flatten" flat;
        (match hier with
        | Ok h -> Printf.printf "  %-10s %-8s %s\n%!" name "hier" (Nest_sched.summary h)
        | Error m -> Printf.printf "  %-10s %-8s infeasible (%s)\n%!" name "hier" m);
        let hier_json =
          match hier with
          | Ok h ->
              Printf.sprintf {|{"ok":true,"inner_ii":%d,"span":%d,"outer_ii":%d,"ii_dims":[%s]}|}
                h.Nest_sched.ns_inner_ii h.Nest_sched.ns_span h.Nest_sched.ns_outer_ii
                (String.concat "," (List.map string_of_int h.Nest_sched.ns_per_dim_iis))
          | Error _ -> {|{"ok":false}|}
        in
        let flat_beats_unroll =
          match (flat, unroll) with
          | Ok _, Error _ -> true (* multi-D schedules a nest the 1-D baseline refuses *)
          | Ok f, Ok u -> f.Flow.f_area.Hls_rtl.Stats.a_total < u.Flow.f_area.Hls_rtl.Stats.a_total
          | _ -> false
        in
        Printf.sprintf
          {|{"design":"%s","requested_ii_dims":[%s],"unroll":%s,"flatten":%s,"hier":%s,"multi_d_wins":%b}|}
          name
          (String.concat "," (List.map string_of_int dims))
          (match unroll with Ok r -> json_of_flow r | Error d -> json_err d)
          (match flat with Ok r -> json_of_flow r | Error d -> json_err d)
          hier_json flat_beats_unroll)
      workloads
  in
  let oc = open_out "BENCH_nest.json" in
  Printf.fprintf oc {|{"clock_ps":%.0f,"workloads":[%s]}
|} clock (String.concat "," rows);
  close_out oc;
  print_endline "wrote BENCH_nest.json"

(* ------------------------------------------------------------------ *)
(* Compiled kernel simulation: interpreted vs compiled engine           *)
(* throughput across stimulus lengths, plus the randomized three-way    *)
(* fuzz gate (BENCH_kernel.json)                                        *)
(* ------------------------------------------------------------------ *)

let bench_kernel () =
  section "KERNEL — interpreted vs compiled folded-pipeline simulation (BENCH_kernel.json)";
  let schedule ?ii design =
    let e = Elaborate.design design in
    let region = Elaborate.main_region ?ii e in
    match Scheduler.schedule ~lib ~clock_ps:clock region with
    | Ok s -> (e, s)
    | Error err -> failwith ("bench kernel: schedule failed: " ^ err.Scheduler.e_message)
  in
  (* time one run; repeat short runs until the sample is >= 50 ms, and
     take the best of three samples — throughput on a shared machine is
     noisy and the minimum is the least-disturbed measurement *)
  let time f =
    let sample () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt >= 0.05 then (dt, r)
      else begin
        let reps = max 1 (int_of_float (0.05 /. Float.max dt 1e-7)) in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        ((Unix.gettimeofday () -. t0) /. float_of_int reps, r)
      end
    in
    Gc.major ();
    let t1, r = sample () in
    let t2, _ = sample () in
    let t3, _ = sample () in
    (Float.min t1 (Float.min t2 t3), r)
  in
  let workloads =
    [
      ("example1", Hls_designs.Example1.design (), Some 1);
      ("fir8", Hls_designs.Fir.design (), Some 1);
      ("fir64", Hls_designs.Fir.design ~taps:64 ~max_latency:64 (), Some 1);
      ("agc", Hls_designs.Agc.design (), Some 2);
    ]
  in
  let lengths =
    if !smoke then [ 100; 1_000 ] else [ 100; 1_000; 10_000; 100_000; 1_000_000 ]
  in
  (* the interpreter is the baseline being replaced: measuring it beyond
     1e5 iterations would dominate the bench for no extra information *)
  let interp_cap = 100_000 in
  let rows =
    List.concat_map
      (fun (name, design, ii) ->
        let e, s = schedule ?ii design in
        let plan = Hls_sim.Kernel_compile.compile e s (Pipeline.fold s) in
        List.map
          (fun n_iters ->
            let stim =
              Hls_sim.Stimulus.small_random ~seed:7 ~n_iters ~ports:design.Ast.d_ins
            in
            let compiled_s, cres = time (fun () -> Hls_sim.Kernel_compile.run plan stim) in
            let cycles = cres.Hls_sim.Kernel_sim.k_cycles in
            let interp =
              if n_iters > interp_cap then None
              else begin
                let interp_s, ires =
                  time (fun () -> Hls_sim.Kernel_sim.run ~engine:`Interp e s stim)
                in
                assert (ires = cres);
                Some interp_s
              end
            in
            let c_rate = float_of_int cycles /. compiled_s in
            Printf.printf "  %-9s n=%-8d compiled %10.3e cyc/s%s\n%!" name n_iters c_rate
              (match interp with
              | Some t ->
                  Printf.sprintf "  interp %10.3e cyc/s  speedup %8.1fx"
                    (float_of_int cycles /. t)
                    (t /. compiled_s)
              | None -> "  interp (skipped)");
            Printf.sprintf
              {|{"design":"%s","ii":%s,"n_iters":%d,"cycles":%d,"compiled_s":%.6f,"compiled_cycles_per_s":%.1f,"interp_s":%s,"speedup":%s}|}
              name
              (match ii with Some i -> string_of_int i | None -> "null")
              n_iters cycles compiled_s c_rate
              (match interp with Some t -> Printf.sprintf "%.6f" t | None -> "null")
              (match interp with
              | Some t -> Printf.sprintf "%.1f" (t /. compiled_s)
              | None -> "null"))
          lengths)
      workloads
  in
  (* the randomized three-way gate, reported alongside the numbers *)
  let cases = if !smoke then 60 else 300 in
  let report = Hls_sim.Equiv.fuzz ~cases ~seed:2026 () in
  print_endline ("  " ^ Hls_sim.Equiv.fuzz_to_string report);
  let fuzz_json =
    Printf.sprintf
      {|{"cases":%d,"equivalent":%d,"infeasible":%d,"checked_values":%d,"failures":%d}|}
      report.Hls_sim.Equiv.fz_cases report.Hls_sim.Equiv.fz_equivalent
      report.Hls_sim.Equiv.fz_infeasible report.Hls_sim.Equiv.fz_checked_values
      (List.length report.Hls_sim.Equiv.fz_failures)
  in
  let oc = open_out "BENCH_kernel.json" in
  Printf.fprintf oc {|{"clock_ps":%.0f,"interp_cap":%d,"rows":[%s],"fuzz":%s}
|} clock interp_cap
    (String.concat "," rows)
    fuzz_json;
  close_out oc;
  print_endline "wrote BENCH_kernel.json"

(* ------------------------------------------------------------------ *)
(* Feedback-guided iterative scheduling: scheduler passes and QoR with  *)
(* and without the subgraph-extraction feedback loop                    *)
(* (BENCH_feedback.json)                                                *)
(* ------------------------------------------------------------------ *)

let bench_feedback () =
  section "FEEDBACK — pass reduction under subgraph-extraction feedback (BENCH_feedback.json)";
  let module Flow = Hls_flow.Flow in
  let workloads =
    [
      ("idct", Hls_designs.Idct.design (), 2);
      ("fft", Hls_designs.Fft.design (), 2);
      ("sobel", Hls_designs.Conv.design (), 2);
      ( "synthetic-350",
        Hls_designs.Synthetic.design
          ~profile:
            { Hls_designs.Synthetic.default_profile with Hls_designs.Synthetic.p_ops = 350; p_seed = 7 }
          (),
        2 );
    ]
  in
  let rows =
    List.map
      (fun (name, design, ii) ->
        let run feedback =
          Flow.run
            ~options:
              {
                Flow.default_options with
                Flow.ii = Some ii;
                verify = false;
                feedback;
                feedback_iters = 3;
              }
            design
        in
        let describe (r : Flow.t) =
          ( r.Flow.f_cycles_per_iter,
            r.Flow.f_sched.Scheduler.s_li,
            r.Flow.f_area.Hls_rtl.Stats.a_total,
            r.Flow.f_stats.Scheduler.st_passes )
        in
        match (run false, run true) with
        | Ok b, Ok f ->
            let bii, bli, barea, bp = describe b and fii, fli, farea, fp = describe f in
            let qor_ok = (fii, fli, farea) <= (bii, bli, barea) in
            Printf.printf "  %-14s baseline: II=%d LI=%d area=%.0f passes=%d\n%!" name bii bli
              barea bp;
            Printf.printf "  %-14s feedback: II=%d LI=%d area=%.0f passes=%d%s\n%!" name fii
              fli farea fp
              (if fp < bp then "  (fewer passes)" else "");
            Printf.sprintf
              {|{"design":"%s","ii_request":%d,"baseline":{"ii":%d,"li":%d,"area":%.0f,"passes":%d},"feedback":{"ii":%d,"li":%d,"area":%.0f,"passes":%d},"fewer_passes":%b,"qor_no_worse":%b}|}
              name ii bii bli barea bp fii fli farea fp (fp < bp) qor_ok
        | Error d, _ | _, Error d ->
            Printf.printf "  %-14s infeasible (%s)\n%!" name d.Hls_diag.Diag.d_code;
            Printf.sprintf {|{"design":"%s","ok":false,"code":"%s"}|} name d.Hls_diag.Diag.d_code)
      workloads
  in
  let oc = open_out "BENCH_feedback.json" in
  Printf.fprintf oc {|{"clock_ps":%.0f,"workloads":[%s]}
|} clock (String.concat "," rows);
  close_out oc;
  print_endline "wrote BENCH_feedback.json"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("fig5", fig5);
    ("fig8", fig8);
    ("fig9", fun () -> fig9 ());
    ("fig10", fig10_11);
    ("fig11", fig10_11);
    ("dse", bench_dse);
    ("sched", bench_sched);
    ("netlist", bench_netlist);
    ("scale", bench_scale);
    ("nest", bench_nest);
    ("feedback", bench_feedback);
    ("kernel", bench_kernel);
    ("examples", examples);
    ("baselines", baselines);
    ("ablation-timing", ablation_timing);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          smoke := true;
          false
        end
        else true)
      args
  in
  match args with
  | [ "--list" ] -> List.iter (fun (n, _) -> print_endline n) experiments
  | [] ->
      (* everything; fig10 and fig11 share one sweep *)
      List.iter
        (fun (n, f) -> if n <> "fig11" then f ())
        experiments
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown experiment %s (try --list)\n" n)
        names
