#!/usr/bin/env bash
# CI scale-smoke gate: run the design-size sweep at smoke sizes (~350 and
# ~1k elaborated ops) and enforce a generous wall-clock guard on the ~1k
# point.  The guard is deliberately loose (CI machines are slow and
# shared) — it exists to catch superlinear regressions that push the 1k
# point from under a second into the tens of seconds, not to benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_WALL_1K="${MAX_WALL_1K:-15.0}"

dune exec bench/main.exe -- scale --smoke

python3 - "$MAX_WALL_1K" <<'EOF' 2>/dev/null || awk_fallback=1
import json, sys
limit = float(sys.argv[1])
with open("BENCH_scale.json") as f:
    data = json.load(f)
points = data["points"]
assert len(points) >= 2, f"expected >= 2 smoke points, got {len(points)}"
big = max(points, key=lambda p: p["ops"])
assert big["ops"] >= 900, f"largest smoke point only {big['ops']} ops"
assert big["wall_s"] <= limit, (
    f"~1k-op point took {big['wall_s']:.2f}s > {limit}s wall guard")
print(f"scale smoke OK: {big['ops']} ops in {big['wall_s']:.2f}s "
      f"(guard {limit}s)")
EOF

if [ "${awk_fallback:-0}" = "1" ]; then
  # no python3: pull the largest point's wall_s with sed/awk
  wall=$(sed 's/},{/}\n{/g' BENCH_scale.json | grep -o '"ops":[0-9]*,"wall_s":[0-9.]*' |
    sort -t: -k2 -n | tail -1 | grep -o 'wall_s":[0-9.]*' | cut -d: -f2)
  awk -v w="$wall" -v m="$MAX_WALL_1K" 'BEGIN {
    if (w == "" || w + 0 > m + 0) { print "scale smoke FAILED: wall " w "s > " m "s"; exit 1 }
    print "scale smoke OK: ~1k point in " w "s (guard " m "s)" }'
fi
