#!/bin/sh
# Chaos acceptance gate for the supervised compile service, with a fixed
# fault-injection seed so CI runs are reproducible:
#
#   1. start `hlsc serve` with chaos armed (workers randomly killed
#      before jobs, fresh store entries randomly corrupted after the
#      atomic publish) over a persistent artifact store;
#   2. drive it with `hlsc bench-chaos` through the retrying client —
#      every completed job must be byte-identical to the offline
#      compiler, losses must be typed, the daemon must stay alive;
#   3. corrupt a published store entry by hand, SIGTERM-drain (clean
#      exit, socket unlinked, index.json flushed);
#   4. cold-restart on the same store with chaos off: recovery must
#      quarantine the damage, repeat requests must be served correctly,
#      and at least one artifact must come back from the store.
#
# Run from the repository root; CI runs it in the chaos-smoke job.
set -eu

HLSC="dune exec --no-build bin/hlsc.exe --"
dune build bin/hlsc.exe

dir=$(mktemp -d)
sock="$dir/hlsc.sock"
store="$dir/store"
serve_pid=""
trap '{ [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; } || true; rm -rf "$dir"' EXIT

fail=0

wait_socket() {
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "daemon never bound $sock" >&2; cat "$dir/serve.log" >&2; exit 1; }
    sleep 0.1
  done
}

# ---- phase 1+2: chaos armed, fixed seed ----------------------------------

$HLSC serve --socket "$sock" --jobs 2 --store-dir "$store" \
  --chaos-seed 1 --chaos-kill 0.3 --chaos-corrupt 0.3 \
  >"$dir/serve.log" 2>&1 &
serve_pid=$!
wait_socket

if $HLSC bench-chaos --socket "$sock" --requests 16 --retries 8 \
     --json "$dir/chaos.json"; then
  echo "ok   bench-chaos under kill/corrupt injection"
else
  echo "FAIL bench-chaos reported wrong bytes, hard errors or a dead daemon" >&2
  fail=1
fi

# the daemon must still answer its health endpoint (a respawn may be
# mid-backoff, so tolerate a few degraded answers before giving up)
i=0
until $HLSC health --socket "$sock" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -le 20 ] || { echo "FAIL health never returned ok after chaos" >&2; fail=1; break; }
  sleep 0.1
done
[ "$i" -le 20 ] && echo "ok   health ok after chaos run"

# ---- phase 3: manual corruption + graceful drain -------------------------

# damage one published entry behind the daemon's back (truncate to half)
victim=$(find "$store/objects" -type f | head -n 1)
if [ -n "$victim" ]; then
  size=$(wc -c <"$victim")
  dd if="$victim" of="$victim.tmp" bs=1 count=$((size / 2)) 2>/dev/null
  mv "$victim.tmp" "$victim"
  echo "ok   manually corrupted $(basename "$victim")"
else
  echo "FAIL store has no published entries to corrupt" >&2
  fail=1
fi

kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
[ "$serve_rc" -eq 0 ] || { echo "FAIL: daemon exited $serve_rc on SIGTERM" >&2; cat "$dir/serve.log" >&2; fail=1; }
[ ! -e "$sock" ] || { echo "FAIL: socket still bound after drain" >&2; fail=1; }
[ -f "$store/index.json" ] || { echo "FAIL: store index not flushed on drain" >&2; fail=1; }
grep -q "drained after" "$dir/serve.log" || { echo "FAIL: no drain report in the final stats line" >&2; fail=1; }
echo "ok   SIGTERM drain (socket unlinked, index flushed)"

# ---- phase 4: cold restart, chaos off, recovery --------------------------

$HLSC serve --socket "$sock" --jobs 2 --store-dir "$store" \
  >"$dir/serve2.log" 2>&1 &
serve_pid=$!
wait_socket

# repeat a prefix of the same request set: bytes must still be identical
# and nothing may be served from the damaged entry
if $HLSC bench-chaos --socket "$sock" --requests 4 --retries 2 \
     --json "$dir/chaos_restart.json"; then
  echo "ok   repeat requests correct after cold restart"
else
  echo "FAIL repeat requests after restart" >&2
  fail=1
fi

# recovery must have quarantined the manual damage (and any chaos damage)
quarantined=$(find "$store/quarantine" -type f 2>/dev/null | wc -l)
if [ "$quarantined" -ge 1 ]; then
  echo "ok   $quarantined corrupt entr(ies) quarantined, never served"
else
  echo "FAIL corrupt entry was not quarantined on restart" >&2
  fail=1
fi

# at least one artifact must have come back from the persistent store
stats=$($HLSC stats --socket "$sock")
case $stats in
  *'"store_hits":0'*) echo "FAIL: restart served no store hits" >&2; fail=1 ;;
  *) echo "ok   store hits after restart" ;;
esac

kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
[ "$serve_rc" -eq 0 ] || { echo "FAIL: restarted daemon exited $serve_rc on SIGTERM" >&2; fail=1; }

[ "$fail" -eq 0 ] && echo "chaos smoke OK" || exit 1
