#!/bin/sh
# Golden-output gate for the paper artifacts: regenerates Tables 1-4 and
# the Fig 10/11 sweep and requires the output to be byte-identical to the
# committed reference, except for the one wall-clock line the fig10 run
# prints (normalized away below).  Run from the repository root; CI runs
# it in the bench-smoke job so perf work cannot silently change schedules.
set -eu

ref="bench/golden/tables_fig10_11.txt"
[ -f "$ref" ] || { echo "missing $ref" >&2; exit 1; }

out=$(mktemp)
trap 'rm -f "$out" "$out.norm" "$ref.norm"' EXIT

dune exec bench/main.exe -- table1 table2 table3 table4 fig10 > "$out"

# the only volatile line: "<n> HLS runs (paper: 25 runs) — <wall s, points/s>"
norm='s/^[0-9]* HLS runs (paper: 25 runs) — .*//'
sed "$norm" "$ref" > "$ref.norm"
sed "$norm" "$out" > "$out.norm"

if diff -u "$ref.norm" "$out.norm"; then
  echo "golden check OK: Tables 1-4 and Fig 10/11 match $ref"
else
  echo "golden check FAILED: regenerate deliberately with" >&2
  echo "  dune exec bench/main.exe -- table1 table2 table3 table4 fig10 > $ref" >&2
  exit 1
fi
