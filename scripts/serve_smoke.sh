#!/bin/sh
# End-to-end smoke test of the compile-service daemon: start `hlsc serve`,
# submit a spread of designs through `hlsc submit`, require the streamed
# results to be byte-identical to the offline CLI, then drain with SIGTERM
# and check nothing leaked (exit 0, socket unlinked).  Run from the
# repository root; CI runs it in the serve-smoke job.
set -eu

HLSC="dune exec --no-build bin/hlsc.exe --"
dune build bin/hlsc.exe

dir=$(mktemp -d)
sock="$dir/hlsc.sock"
trap 'rm -rf "$dir"' EXIT

$HLSC serve --socket "$sock" --jobs 2 >"$dir/serve.log" 2>&1 &
serve_pid=$!

# wait for the socket to appear (the daemon binds before accepting)
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { echo "daemon never bound $sock" >&2; cat "$dir/serve.log" >&2; exit 1; }
  sleep 0.1
done

fail=0
check_identical() {
  # $1 = label, rest = command + design + flags
  label=$1; shift
  $HLSC submit "$@" --socket "$sock" >"$dir/sub.out" 2>"$dir/sub.err" || {
    echo "FAIL $label: submit exited $?" >&2; sed 's/^/  /' "$dir/sub.err" >&2; fail=1; return
  }
  $HLSC "$@" >"$dir/off.out" 2>/dev/null || { echo "FAIL $label: offline exited $?" >&2; fail=1; return; }
  if diff -u "$dir/off.out" "$dir/sub.out" >"$dir/diff.out"; then
    echo "ok   $label"
  else
    echo "FAIL $label: submit differs from offline CLI" >&2
    sed 's/^/  /' "$dir/diff.out" >&2
    fail=1
  fi
}

check_identical "schedule example1 --ii 2"   schedule example1 --ii 2
check_identical "schedule fir8"              schedule fir8
check_identical "pipeline fir8 --ii 1"       pipeline fir8 --ii 1
check_identical "pipeline dotprod --ii 2"    pipeline dotprod --ii 2
check_identical "flow fft"                   flow fft
check_identical "flow idct --latency 8..8 --clock 1200" flow idct --latency 8..8 --clock 1200
check_identical "schedule examples/satacc.bhv --ii 2" schedule examples/satacc.bhv --ii 2

# second pass: every request must now be a cache hit with identical bytes
check_identical "schedule example1 --ii 2 (cached)" schedule example1 --ii 2
check_identical "flow fft (cached)"                 flow fft

stats=$($HLSC stats --socket "$sock")
echo "stats: $stats"
case $stats in
  *'"hits":0'*) echo "FAIL: cache served no hits after repeat submits" >&2; fail=1 ;;
esac

# graceful drain: SIGTERM, clean exit, socket unlinked
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
[ "$serve_rc" -eq 0 ] || { echo "FAIL: daemon exited $serve_rc on SIGTERM" >&2; cat "$dir/serve.log" >&2; fail=1; }
[ ! -e "$sock" ] || { echo "FAIL: socket still bound after drain" >&2; fail=1; }

[ "$fail" -eq 0 ] && echo "serve smoke OK" || exit 1
