#!/usr/bin/env bash
# CI kernel-equiv gate: the compiled folded-kernel engine end to end.
#
#  1. The randomized three-way gate at the acceptance count: 200 seeded
#     random designs x micro-architectures x stimuli (stall patterns and
#     early exits included), behavioural == schedule-sim == compiled
#     kernel, plus an interpreted-vs-compiled cross-check of the full
#     kernel result record.  Deterministic; a failure logs its case seed.
#  2. An interpreted-vs-compiled diff (`hlsc cosim`) on built-in designs
#     and every checked-in .bhv example, including both flattened loop
#     nests — identical outputs and identical iteration / cycle / stall /
#     squash counters under three stall duty patterns each.
#  3. The `bench kernel` experiment in smoke mode, so the BENCH_kernel
#     code path (engine timing + its own fuzz batch) stays alive.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/hlsc.exe bench/main.exe

run() { dune exec --no-build bin/hlsc.exe -- "$@"; }

# 1: fixed-seed fuzz batch at the acceptance count
run fuzz --cases 200 --seed 2026

# 2: engine diff on representative micro-architectures (pipelined at
#    several IIs, a data-dependent exit, and both nest examples)
run cosim example1 --ii 1
run cosim example1 --ii 2
run cosim fir8 --ii 1
run cosim agc --ii 2
run cosim dotprod --ii 1
run cosim examples/satacc.bhv --ii 2
run cosim examples/matmul.bhv --ii 8x1 --iters 64
run cosim examples/stencil2d.bhv --ii 8400x2 --iters 64

# 3: the experiment code path (short lengths, reduced fuzz batch)
dune exec --no-build bench/main.exe -- kernel --smoke >/dev/null
grep -q '"fuzz"' BENCH_kernel.json || { echo "FAIL: BENCH_kernel.json has no fuzz record"; exit 1; }
grep -q '"failures":0' BENCH_kernel.json || { echo "FAIL: bench fuzz batch recorded failures"; exit 1; }

echo "kernel smoke OK: 200-case three-way fuzz clean, engines agree on all examples, bench path alive"
