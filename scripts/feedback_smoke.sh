#!/usr/bin/env bash
# CI feedback-smoke gate: subgraph-extraction feedback-guided iterative
# scheduling end to end.
#
#  1. The `bench feedback` experiment (fixed designs, fixed synthetic
#     seed) shows every workload reaching equal-or-better (II, LI, area)
#     in strictly fewer scheduler passes with --feedback on.
#  2. `hlsc explore --feedback` reuses mined hints across grid points
#     (the cross-point hint store actually warms later points).
#  3. With feedback OFF (the default), the committed paper artifacts
#     regenerate byte-identically — the subsystem is inert unless asked
#     for.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/hlsc.exe bench/main.exe

# 1: pass reduction at no QoR cost, recorded in BENCH_feedback.json
dune exec --no-build bench/main.exe -- feedback --smoke >/dev/null
grep -q '"fewer_passes":false' BENCH_feedback.json && { echo "FAIL: a workload did not reduce passes"; exit 1; }
grep -q '"qor_no_worse":false' BENCH_feedback.json && { echo "FAIL: feedback worsened QoR on a workload"; exit 1; }
grep -q '"fewer_passes":true' BENCH_feedback.json || { echo "FAIL: no feedback workloads recorded"; exit 1; }

# 2: exploration shares hints across points
out=$(dune exec --no-build bin/hlsc.exe -- explore idct --grid "ii=2,4;latency=none;clock=1200,1600" --feedback)
echo "$out" | grep -Eq "feedback: [1-9][0-9]* point\(s\) hint-warmed" \
  || { echo "FAIL: explore --feedback reported no hint-warmed points"; echo "$out" | tail -2; exit 1; }

# 3: feedback off leaves the golden artifacts byte-identical
./scripts/check_golden.sh

echo "feedback smoke OK: fewer passes at equal-or-better QoR, cross-point hint reuse, golden artifacts unchanged"
