#!/usr/bin/env bash
# CI nest-smoke gate: the loop-nest pipelining path end to end.
#
#  1. Both checked-in nest examples compile through `hlsc flow` with a
#     per-dimension II request, report a nest-II, and verify.
#  2. The 1-D unroll baseline is REFUSED on stencil2d (inner trip 4200 >
#     the 4096 unroll ceiling) with the typed unroll_overflow fault —
#     the strict multi-D win the PR claims.
#  3. The `bench nest` experiment runs in smoke mode and produces a
#     BENCH_nest.json where multi-D wins on every workload.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/hlsc.exe bench/main.exe

run() { dune exec --no-build bin/hlsc.exe -- "$@"; }

# 1: flattened multi-dimensional pipelines schedule and verify
out=$(run flow examples/matmul.bhv --ii 8x1)
echo "$out" | grep -q "nest-II=8x1" || { echo "FAIL: matmul missing nest-II=8x1"; echo "$out"; exit 1; }
echo "$out" | grep -q "\[verified\]" || { echo "FAIL: matmul not verified"; echo "$out"; exit 1; }

out=$(run flow examples/stencil2d.bhv --ii 8400x2)
echo "$out" | grep -q "nest-II=8400x2" || { echo "FAIL: stencil2d missing nest-II=8400x2"; echo "$out"; exit 1; }
echo "$out" | grep -q "\[verified\]" || { echo "FAIL: stencil2d not verified"; echo "$out"; exit 1; }

# 2: the unroll-limited 1-D baseline is refused on the wide nest
if err=$(run flow examples/stencil2d.bhv --nest unroll 2>&1); then
  echo "FAIL: stencil2d --nest unroll unexpectedly succeeded"; exit 1
fi
echo "$err" | grep -q "unroll_overflow" || { echo "FAIL: expected unroll_overflow, got: $err"; exit 1; }

# 3: the bench experiment's verdict
dune exec --no-build bench/main.exe -- nest --smoke >/dev/null
grep -q '"multi_d_wins":false' BENCH_nest.json && { echo "FAIL: a workload lost to the 1-D baseline"; exit 1; }
grep -q '"multi_d_wins":true' BENCH_nest.json || { echo "FAIL: no multi_d_wins entries in BENCH_nest.json"; exit 1; }

echo "nest smoke OK: both examples verified, 1-D baseline refused on stencil2d, multi-D wins recorded"
