#!/bin/sh
# Exit-code contract of the hlsc CLI:
#   0   — success
#   1   — typed diagnostic or bad input (unknown design, parse error,
#         overconstrained spec with --no-degrade, lint failure on emit)
#   124 — command-line misuse (cmdliner's CLI-error code: bad flag,
#         missing argument, unknown subcommand)
# Run from the repository root.
set -u

HLSC="dune exec --no-build bin/hlsc.exe --"
dune build bin/hlsc.exe || exit 1

fail=0
expect() {
  want=$1; label=$2; shift 2
  $HLSC "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq "$want" ]; then
    echo "ok   $label -> $got"
  else
    echo "FAIL $label: expected exit $want, got $got" >&2
    fail=1
  fi
}

# success paths
expect 0 "schedule ok"            schedule example1 --ii 2
expect 0 "designs ok"             designs
expect 0 "version ok"             version

# typed diagnostics and bad inputs -> 1
expect 1 "unknown design"         schedule no_such_design
expect 1 "missing .bhv file"      schedule missing_file.bhv
expect 1 "overconstrained spec"   schedule example1 --ii 1 --latency 1..1 --no-degrade
expect 1 "bad latency bounds"     schedule example1 --latency nonsense
expect 1 "bad --jobs"             explore example1 --jobs 0

# command-line misuse -> cmdliner's 124
expect 124 "bad flag"             schedule example1 --no-such-flag
expect 124 "unknown subcommand"   frobnicate
expect 124 "missing argument"     schedule

# service-tier typed errors -> 1
# no daemon behind the socket: a transport failure, not a crash
expect 1 "submit: no daemon"      submit schedule example1 --socket /tmp/hlsc_no_such.sock --retries 0
expect 1 "health: no daemon"      health --socket /tmp/hlsc_no_such.sock

# a daemon whose workers stall forever: the per-job deadline trips and
# the client exits 1 on the typed deadline_exceeded result
dir=$(mktemp -d)
sock="$dir/hlsc.sock"
$HLSC serve --socket "$sock" --jobs 1 --chaos-seed 1 --chaos-stall 1.0 --hb-timeout 30 \
  >"$dir/serve.log" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { echo "FAIL: stall daemon never bound" >&2; fail=1; break; }
  sleep 0.1
done
if [ -S "$sock" ]; then
  # health first: after the deadline kill below the slot is briefly dead
  # (mid-respawn backoff) and health legitimately reports degraded
  expect 0 "health: daemon up"    health --socket "$sock"
  expect 1 "deadline exceeded"    submit schedule example1 --ii 2 --socket "$sock" --deadline 0.2
fi
kill -TERM "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null
rm -rf "$dir"

[ "$fail" -eq 0 ] && echo "exit-code contract OK" || exit 1
