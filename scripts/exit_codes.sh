#!/bin/sh
# Exit-code contract of the hlsc CLI:
#   0   — success
#   1   — typed diagnostic or bad input (unknown design, parse error,
#         overconstrained spec with --no-degrade, lint failure on emit)
#   124 — command-line misuse (cmdliner's CLI-error code: bad flag,
#         missing argument, unknown subcommand)
# Run from the repository root.
set -u

HLSC="dune exec --no-build bin/hlsc.exe --"
dune build bin/hlsc.exe || exit 1

fail=0
expect() {
  want=$1; label=$2; shift 2
  $HLSC "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq "$want" ]; then
    echo "ok   $label -> $got"
  else
    echo "FAIL $label: expected exit $want, got $got" >&2
    fail=1
  fi
}

# success paths
expect 0 "schedule ok"            schedule example1 --ii 2
expect 0 "designs ok"             designs
expect 0 "version ok"             version

# typed diagnostics and bad inputs -> 1
expect 1 "unknown design"         schedule no_such_design
expect 1 "missing .bhv file"      schedule missing_file.bhv
expect 1 "overconstrained spec"   schedule example1 --ii 1 --latency 1..1 --no-degrade
expect 1 "bad latency bounds"     schedule example1 --latency nonsense
expect 1 "bad --jobs"             explore example1 --jobs 0

# command-line misuse -> cmdliner's 124
expect 124 "bad flag"             schedule example1 --no-such-flag
expect 124 "unknown subcommand"   frobnicate
expect 124 "missing argument"     schedule

[ "$fail" -eq 0 ] && echo "exit-code contract OK" || exit 1
