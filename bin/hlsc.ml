(** [hlsc] — command-line driver for the HLS flow.

    {v
      hlsc designs                         # list built-in designs
      hlsc compile example1                # elaborate and summarize the CDFG
      hlsc schedule example1 --ii 2        # schedule + print the binding table
      hlsc pipeline example1 --ii 2        # ... and the folded kernel (Fig. 5 view)
      hlsc flow idct --latency 8..8 --clock 1200   # full flow with verification
      hlsc emit example1 --ii 2 -o out.v   # generate Verilog
      hlsc explore idct --grid "ii=none,8;latency=16;clock=1200,1600" --jobs 4
                                           # parallel design-space sweep
      hlsc serve --socket hlsc.sock --jobs 4       # compile-service daemon
      hlsc submit schedule example1 --ii 2         # compile via the daemon
      hlsc compile my.bhv                  # any command also accepts .bhv files
    v}
*)

open Cmdliner
open Hls_frontend
module Proto = Hls_server.Protocol
module Design_db = Hls_server.Design_db
module Render = Hls_server.Render
module Client = Hls_server.Client
module Server = Hls_server.Server

(* ---- design lookup (shared with the daemon, see Hls_server.Design_db) ---- *)

let load_design name =
  match Design_db.local_spec name with
  | Error _ as e -> e
  | Ok spec -> Design_db.load spec

(** Run a command body under a catch-all: a bad input file or an internal
    fault exits with code 1 and a one-line diagnostic, never a backtrace. *)
let guarded f =
  try f () with
  | Parser.Error { line; message } | Lexer.Error { line; message } ->
      prerr_endline (Printf.sprintf "hlsc: line %d: %s" line message);
      exit 1
  | Desugar.Error m | Failure m | Invalid_argument m | Sys_error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- common args ---- *)

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc:"Built-in design name or .bhv file.")

let ii_arg =
  Arg.(value & opt (some int) None & info [ "ii" ] ~docv:"N" ~doc:"Pipeline with initiation interval $(docv).")

let clock_arg =
  Arg.(value & opt float 1600.0 & info [ "clock" ] ~docv:"PS" ~doc:"Clock period in picoseconds (default 1600).")

let latency_arg =
  Arg.(value & opt (some string) None & info [ "latency" ] ~docv:"LO..HI" ~doc:"Loop latency bounds, e.g. 2..8.")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print scheduling pass events.")

let opt_arg = Arg.(value & flag & info [ "optimize" ] ~doc:"Run the DFG optimizer before scheduling.")

let parse_latency = function
  | None -> Ok (None, None)
  | Some s -> (
      match String.index_opt s '.' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' -> (
          try
            Ok
              ( Some (int_of_string (String.sub s 0 i)),
                Some (int_of_string (String.sub s (i + 2) (String.length s - i - 2))) )
          with _ -> Error "bad latency bounds (expected LO..HI)")
      | _ -> Error "bad latency bounds (expected LO..HI)")

let or_die = function
  | Ok x -> x
  | Error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- robustness flags ---- *)

type robust = {
  diag_json : bool;
  paranoid : bool;
  max_passes : int option;
  timeout : float option;
  no_degrade : bool;
}

let robust_term =
  let diag_json =
    Arg.(value & flag & info [ "diag-json" ] ~doc:"On failure, print the diagnostic as a JSON object on stderr.")
  in
  let paranoid =
    Arg.(value & flag & info [ "paranoid" ] ~doc:"Audit every schedule with the post-schedule validator.")
  in
  let max_passes =
    Arg.(value & opt (some int) None & info [ "max-passes" ] ~docv:"N" ~doc:"Relaxation pass budget (default 200).")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc:"Wall-clock scheduling budget in seconds.")
  in
  let no_degrade =
    Arg.(value & flag & info [ "no-degrade" ] ~doc:"Fail on an overconstrained specification instead of walking the degradation ladder.")
  in
  Term.(
    const (fun diag_json paranoid max_passes timeout no_degrade ->
        { diag_json; paranoid; max_passes; timeout; no_degrade })
    $ diag_json $ paranoid $ max_passes $ timeout $ no_degrade)

let flow_result ~ii ~clock ~latency ~optimize ~trace ~robust design_name =
  let design = or_die (load_design design_name) in
  let min_latency, max_latency = or_die (parse_latency latency) in
  let design =
    if optimize then design (* the optimizer runs on the elaborated form inside the flow below *)
    else design
  in
  ignore optimize;
  let sched =
    {
      Hls_core.Scheduler.default_options with
      max_passes =
        Option.value robust.max_passes
          ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
      timeout_s = robust.timeout;
    }
  in
  let options =
    {
      Hls_flow.Flow.default_options with
      ii;
      clock_ps = clock;
      min_latency;
      max_latency;
      sched;
      degrade = not robust.no_degrade;
      paranoid = robust.paranoid;
    }
  in
  let trace_obj = if trace then Some (Hls_core.Trace.create ~echo:true ()) else None in
  let trace_summary () =
    Option.iter (fun t -> prerr_endline ("trace: " ^ Hls_core.Trace.summary t)) trace_obj
  in
  match Hls_flow.Flow.run ~options ?trace:trace_obj design with
  | Ok r ->
      trace_summary ();
      List.iter
        (fun n -> prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string n))
        r.Hls_flow.Flow.f_notes;
      r
  | Error d ->
      trace_summary ();
      if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
      else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
      exit 1

(* ---- commands ---- *)

let designs_cmd =
  let doc = "List built-in designs." in
  Cmd.v (Cmd.info "designs" ~doc)
    Term.(
      const (fun () ->
          List.iter (fun (n, _) -> print_endline n) Design_db.builtins)
      $ const ())

let compile_cmd =
  let doc = "Elaborate a design and summarize its CDFG." in
  let run name optimize =
    guarded @@ fun () ->
    let design = or_die (load_design name) in
    match Elaborate.design design with
    | exception Desugar.Error m -> prerr_endline ("hlsc: " ^ m); exit 1
    | e ->
        let e, stats_msg =
          if optimize then
            let e', st = Hls_opt.Passes.run e in
            ( e',
              Printf.sprintf
                " (optimizer: %d folded, %d simplified, %d merged, %d deleted, %d collapsed, %d narrowed)"
                st.Hls_opt.Passes.folded st.Hls_opt.Passes.simplified st.Hls_opt.Passes.merged
                st.Hls_opt.Passes.deleted st.Hls_opt.Passes.collapsed st.Hls_opt.Passes.narrowed )
          else (e, "")
        in
        (match Hls_ir.Cdfg.validate e.Elaborate.cdfg with
        | [] -> ()
        | errs ->
            List.iter (fun m -> prerr_endline ("invalid: " ^ m)) errs;
            exit 1);
        let dfg = e.Elaborate.cdfg.Hls_ir.Cdfg.dfg in
        Printf.printf "design %s: %d DFG operations%s\n" design.Ast.d_name (Hls_ir.Dfg.size dfg) stats_msg;
        (match e.Elaborate.loop with
        | Some li ->
            Printf.printf "main loop '%s': %d ops, %s, %d source wait state(s)\n"
              li.Elaborate.li_attrs.Ast.l_name
              (List.length li.Elaborate.li_members)
              (match li.Elaborate.li_continue with
              | Some _ -> "data-dependent exit"
              | None -> "free-running")
              li.Elaborate.li_waits
        | None -> print_endline "no main loop (straight-line design)");
        let region = Elaborate.main_region e in
        List.iteri
          (fun i scc -> Printf.printf "SCC %d: %d ops (must fit one pipeline stage)\n" i (List.length scc))
          (Hls_ir.Region.sccs region)
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ design_arg $ opt_arg)

let schedule_cmd =
  let doc = "Schedule and bind a design; print the resource/state table." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    print_string (Render.schedule r)
  in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let pipeline_cmd =
  let doc = "Schedule, fold and print the pipeline kernel (the Fig. 5 view)." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    print_string (Render.pipeline r)
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let flow_cmd =
  let doc = "Run the full flow: schedule, fold, area/power, verification." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    print_string (Render.flow r)
  in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let emit_cmd =
  let doc = "Generate Verilog for a scheduled design." in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run name ii clock latency out optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace:false ~robust name in
    let src = Hls_rtl.Verilog.emit r.Hls_flow.Flow.f_elab r.Hls_flow.Flow.f_sched r.Hls_flow.Flow.f_fold in
    (match Hls_rtl.Verilog.lint src with
    | [] -> ()
    | errs ->
        List.iter (fun m -> prerr_endline ("lint: " ^ m)) errs;
        exit 1);
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length src)
    | None -> print_string src
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ out_arg $ opt_arg $ robust_term)

let explore_cmd =
  let doc =
    "Design-space exploration: sweep a parameter grid through the flow on a worker pool and \
     report the swept points, profiling and the area/delay Pareto front."
  in
  let grid_arg =
    Arg.(
      value
      & opt string "ii=none;latency=none;clock=1600"
      & info [ "grid" ] ~docv:"SPEC"
          ~doc:
            "Parameter grid, e.g. $(b,ii=none,2,4;latency=8..8,16;clock=1200,1600).  Dimensions \
             are semicolon-separated, values comma-separated; $(b,none) means sequential (for \
             ii) or designer bounds (for latency); a bare latency $(b,n) means $(b,n..n).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker-pool size (capped at the machine's recommended domain count; results are \
             identical for every N).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep as JSON to $(docv).")
  in
  let run name grid_spec jobs json robust =
    guarded @@ fun () ->
    let jobs =
      match Hls_dse.Dse.validate_jobs jobs with
      | Ok j -> j
      | Error d ->
          if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
          else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
          exit 1
    in
    let design = or_die (load_design name) in
    let grid = or_die (Hls_dse.Dse.parse_grid grid_spec) in
    let options =
      {
        Hls_flow.Flow.default_options with
        verify = false;
        degrade = not robust.no_degrade;
        paranoid = robust.paranoid;
        sched =
          {
            Hls_core.Scheduler.default_options with
            max_passes =
              Option.value robust.max_passes
                ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
            timeout_s = robust.timeout;
          };
      }
    in
    let engine = Hls_dse.Dse.create () in
    at_exit (fun () -> Hls_dse.Dse.shutdown engine);
    let sw = Hls_dse.Dse.sweep ~jobs engine ~options design (Hls_dse.Dse.grid_points grid) in
    Hls_report.Table.print (Hls_dse.Dse.table sw.Hls_dse.Dse.sw_results);
    let pts = Hls_dse.Dse.pareto_points sw.Hls_dse.Dse.sw_results in
    (match Hls_report.Pareto.front pts with
    | [] -> print_endline "area/delay Pareto front: (no successful points)"
    | front ->
        Printf.printf "area/delay Pareto front: %s\n"
          (String.concat ", "
             (List.map
                (fun p -> Hls_dse.Dse.point_label p.Hls_report.Pareto.p_tag.Hls_dse.Dse.r_point)
                front)));
    print_endline (Hls_dse.Dse.stats_to_string (Hls_dse.Dse.stats sw));
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hls_dse.Dse.sweep_to_json sw);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ design_arg $ grid_arg $ jobs_arg $ json_arg $ robust_term)

(* ---- compile service ---- *)

let socket_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon (default hlsc.sock).")

let serve_cmd =
  let doc =
    "Run the compile-service daemon: a persistent process with a shared compile cache and a \
     worker-domain pool, accepting framed JSON jobs over a Unix-domain socket.  SIGTERM drains \
     gracefully: in-flight and queued jobs finish, then every domain is joined and the socket \
     unlinked."
  in
  let tcp_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:$(docv).")
  in
  let jobs_arg =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker-domain count (default 2).")
  in
  let capacity_arg =
    Arg.(
      value & opt int Server.default_config.Server.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Admission limit on queued-but-not-started jobs (default 64).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log connection and job lifecycle to stderr.")
  in
  let run socket tcp_port jobs queue_capacity verbose =
    guarded @@ fun () ->
    if jobs < 1 then or_die (Error "at least one worker domain is required (--jobs)");
    or_die
      (Server.run { Server.socket; tcp_port; workers = jobs; queue_capacity; verbose })
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ jobs_arg $ capacity_arg $ verbose_arg)

let cmd_of_name s =
  match Proto.cmd_of_string s with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown command '%s' (expected schedule, pipeline or flow)" s)

let submit_cmd =
  let doc =
    "Submit a compile job to a running daemon and print the result — byte-identical on stdout \
     to the offline $(b,schedule)/$(b,pipeline)/$(b,flow) commands."
  in
  let cmd_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CMD" ~doc:"One of $(b,schedule), $(b,pipeline), $(b,flow).")
  in
  let design_pos1 =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DESIGN" ~doc:"Built-in design name or .bhv file.")
  in
  let max_passes_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-passes" ] ~docv:"N" ~doc:"Relaxation pass budget (default 200).")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Per-job wall-clock budget in seconds.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip RTL-vs-reference verification.")
  in
  let diag_json_arg =
    Arg.(
      value & flag
      & info [ "diag-json" ] ~doc:"On failure, print the diagnostic as a JSON object on stderr.")
  in
  let run cmdname name socket ii clock latency trace max_passes timeout no_verify diag_json =
    guarded @@ fun () ->
    let cmd = or_die (cmd_of_name cmdname) in
    let min_latency, max_latency = or_die (parse_latency latency) in
    let spec_design = or_die (Design_db.local_spec name) in
    let spec =
      Proto.job_spec ?ii ?min_latency ?max_latency ?max_passes ?timeout_s:timeout
        ~verify:(not no_verify) ~trace ~clock_ps:clock cmd spec_design
    in
    let client = or_die (Client.connect ~socket ()) in
    let on_event ~level text = Printf.eprintf "[%s] %s\n%!" level text in
    let outcome = or_die (Client.submit ~on_event client spec) in
    Client.close client;
    List.iter (fun n -> prerr_endline ("hlsc: " ^ n)) outcome.Proto.o_notes;
    match outcome.Proto.o_status with
    | Proto.S_ok -> print_string outcome.Proto.o_output
    | Proto.S_cancelled ->
        prerr_endline "hlsc: job cancelled";
        exit 1
    | Proto.S_error ->
        (match (diag_json, outcome.Proto.o_diag_json, outcome.Proto.o_diag) with
        | true, Some j, _ -> prerr_endline j
        | _, _, Some d -> prerr_endline ("hlsc: " ^ d)
        | _, Some j, None -> prerr_endline j
        | _ -> prerr_endline "hlsc: job failed");
        exit 1
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ cmd_arg $ design_pos1 $ socket_arg $ ii_arg $ clock_arg $ latency_arg
      $ trace_arg $ max_passes_arg $ timeout_arg $ no_verify_arg $ diag_json_arg)

let stats_cmd =
  let doc = "Print a running daemon's metrics snapshot (queue, cache, scheduler counters)." in
  let run socket =
    guarded @@ fun () ->
    let client = or_die (Client.connect ~socket ()) in
    let j = or_die (Client.stats client) in
    Client.close client;
    print_endline (Proto.to_string j)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ socket_arg)

let bench_serve_cmd =
  let doc =
    "Load-test a running daemon: K concurrent clients, each submitting M distinct compiles \
     (cold phase) and then the same M again (warm phase, pure cache service); report p50/p95 \
     latency, throughput, cache hit rate and warm speedup."
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"K" ~doc:"Concurrent clients (default 8).")
  in
  let requests_arg =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"M" ~doc:"Requests per client per phase (default 4).")
  in
  let design_opt_arg =
    Arg.(
      value & opt string "fir8"
      & info [ "design" ] ~docv:"NAME" ~doc:"Built-in design to compile (default fir8).")
  in
  let cmd_opt_arg =
    Arg.(
      value & opt string "schedule"
      & info [ "cmd" ] ~docv:"CMD" ~doc:"schedule, pipeline or flow (default schedule).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON to $(docv).")
  in
  let run socket clients requests design cmdname json =
    guarded @@ fun () ->
    let cmd = or_die (cmd_of_name cmdname) in
    let b = or_die (Client.bench ~socket ~clients ~requests ~design ~cmd ()) in
    Printf.printf
      "%d clients x %d requests: cold p50 %.1f ms p95 %.1f ms (%.1f req/s), warm p50 %.2f ms \
       p95 %.2f ms (%.1f req/s), speedup %.1fx, cache hit rate %.1f%%, errors %d\n"
      b.Client.b_clients b.Client.b_requests b.Client.b_cold_p50_ms b.Client.b_cold_p95_ms
      b.Client.b_cold_throughput b.Client.b_warm_p50_ms b.Client.b_warm_p95_ms
      b.Client.b_warm_throughput b.Client.b_speedup
      (100.0 *. b.Client.b_cache_hit_rate)
      b.Client.b_errors;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Client.bench_to_json b);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path);
    if b.Client.b_errors > 0 then exit 1
  in
  Cmd.v (Cmd.info "bench-serve" ~doc)
    Term.(
      const run $ socket_arg $ clients_arg $ requests_arg $ design_opt_arg $ cmd_opt_arg
      $ json_arg)

let version_cmd =
  let doc = "Print the binary and wire-protocol versions." in
  Cmd.v (Cmd.info "version" ~doc)
    Term.(
      const (fun () ->
          Printf.printf "hlsc %s (wire protocol %d)\n" Proto.binary_version Proto.version)
      $ const ())

let () =
  let doc = "performance-constrained pipelining HLS flow (Kondratyev et al., DATE'11 reproduction)" in
  let version = Printf.sprintf "%s (wire protocol %d)" Proto.binary_version Proto.version in
  let info = Cmd.info "hlsc" ~version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            designs_cmd; compile_cmd; schedule_cmd; pipeline_cmd; flow_cmd; emit_cmd; explore_cmd;
            serve_cmd; submit_cmd; stats_cmd; bench_serve_cmd; version_cmd;
          ]))
