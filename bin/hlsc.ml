(** [hlsc] — command-line driver for the HLS flow.

    {v
      hlsc designs                         # list built-in designs
      hlsc compile example1                # elaborate and summarize the CDFG
      hlsc schedule example1 --ii 2        # schedule + print the binding table
      hlsc pipeline example1 --ii 2        # ... and the folded kernel (Fig. 5 view)
      hlsc flow idct --latency 8..8 --clock 1200   # full flow with verification
      hlsc emit example1 --ii 2 -o out.v   # generate Verilog
      hlsc explore idct --grid "ii=none,8;latency=16;clock=1200,1600" --jobs 4
                                           # parallel design-space sweep
      hlsc compile my.bhv                  # any command also accepts .bhv files
    v}
*)

open Cmdliner
open Hls_frontend



(* ---- design lookup ---- *)

let builtin_designs =
  [
    ("example1", fun () -> Hls_designs.Example1.design ());
    ("fir8", fun () -> Hls_designs.Fir.design ());
    ("fir16", fun () -> Hls_designs.Fir.design ~taps:16 ());
    ("fft", fun () -> Hls_designs.Fft.design ());
    ("idct", fun () -> Hls_designs.Idct.design ());
    ("sobel", fun () -> Hls_designs.Conv.design ());
    ("dotprod", fun () -> Hls_designs.Dotprod.design ());
    ("agc", fun () -> Hls_designs.Agc.design ());
    ("matvec4", fun () -> Hls_designs.Matmul.design ());
    ("matvec8", fun () -> Hls_designs.Matmul.design ~n:8 ());
    ("idct8x8", fun () -> Hls_designs.Idct2d.design ());
  ]

let load_design name =
  match List.assoc_opt name builtin_designs with
  | Some f -> Ok (f ())
  | None ->
      if Filename.check_suffix name ".bhv" then
        if Sys.file_exists name then
          try Ok (Parser.parse_file name) with
          | Parser.Error { line; message } | Lexer.Error { line; message } ->
              Error (Printf.sprintf "%s:%d: %s" name line message)
          | Sys_error m -> Error m
        else Error (Printf.sprintf "no such file: %s" name)
      else
        Error
          (Printf.sprintf "unknown design '%s' (try 'hlsc designs' or pass a .bhv file)" name)

(** Run a command body under a catch-all: a bad input file or an internal
    fault exits with code 1 and a one-line diagnostic, never a backtrace. *)
let guarded f =
  try f () with
  | Parser.Error { line; message } | Lexer.Error { line; message } ->
      prerr_endline (Printf.sprintf "hlsc: line %d: %s" line message);
      exit 1
  | Desugar.Error m | Failure m | Invalid_argument m | Sys_error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- common args ---- *)

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc:"Built-in design name or .bhv file.")

let ii_arg =
  Arg.(value & opt (some int) None & info [ "ii" ] ~docv:"N" ~doc:"Pipeline with initiation interval $(docv).")

let clock_arg =
  Arg.(value & opt float 1600.0 & info [ "clock" ] ~docv:"PS" ~doc:"Clock period in picoseconds (default 1600).")

let latency_arg =
  Arg.(value & opt (some string) None & info [ "latency" ] ~docv:"LO..HI" ~doc:"Loop latency bounds, e.g. 2..8.")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print scheduling pass events.")

let opt_arg = Arg.(value & flag & info [ "optimize" ] ~doc:"Run the DFG optimizer before scheduling.")

let parse_latency = function
  | None -> Ok (None, None)
  | Some s -> (
      match String.index_opt s '.' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' -> (
          try
            Ok
              ( Some (int_of_string (String.sub s 0 i)),
                Some (int_of_string (String.sub s (i + 2) (String.length s - i - 2))) )
          with _ -> Error "bad latency bounds (expected LO..HI)")
      | _ -> Error "bad latency bounds (expected LO..HI)")

let or_die = function
  | Ok x -> x
  | Error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- robustness flags ---- *)

type robust = {
  diag_json : bool;
  paranoid : bool;
  max_passes : int option;
  timeout : float option;
  no_degrade : bool;
}

let robust_term =
  let diag_json =
    Arg.(value & flag & info [ "diag-json" ] ~doc:"On failure, print the diagnostic as a JSON object on stderr.")
  in
  let paranoid =
    Arg.(value & flag & info [ "paranoid" ] ~doc:"Audit every schedule with the post-schedule validator.")
  in
  let max_passes =
    Arg.(value & opt (some int) None & info [ "max-passes" ] ~docv:"N" ~doc:"Relaxation pass budget (default 200).")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc:"Wall-clock scheduling budget in seconds.")
  in
  let no_degrade =
    Arg.(value & flag & info [ "no-degrade" ] ~doc:"Fail on an overconstrained specification instead of walking the degradation ladder.")
  in
  Term.(
    const (fun diag_json paranoid max_passes timeout no_degrade ->
        { diag_json; paranoid; max_passes; timeout; no_degrade })
    $ diag_json $ paranoid $ max_passes $ timeout $ no_degrade)

let flow_result ~ii ~clock ~latency ~optimize ~trace ~robust design_name =
  let design = or_die (load_design design_name) in
  let min_latency, max_latency = or_die (parse_latency latency) in
  let design =
    if optimize then design (* the optimizer runs on the elaborated form inside the flow below *)
    else design
  in
  ignore optimize;
  let sched =
    {
      Hls_core.Scheduler.default_options with
      max_passes =
        Option.value robust.max_passes
          ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
      timeout_s = robust.timeout;
    }
  in
  let options =
    {
      Hls_flow.Flow.default_options with
      ii;
      clock_ps = clock;
      min_latency;
      max_latency;
      sched;
      degrade = not robust.no_degrade;
      paranoid = robust.paranoid;
    }
  in
  let trace_obj = if trace then Some (Hls_core.Trace.create ~echo:true ()) else None in
  let trace_summary () =
    Option.iter (fun t -> prerr_endline ("trace: " ^ Hls_core.Trace.summary t)) trace_obj
  in
  match Hls_flow.Flow.run ~options ?trace:trace_obj design with
  | Ok r ->
      trace_summary ();
      List.iter
        (fun n -> prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string n))
        r.Hls_flow.Flow.f_notes;
      r
  | Error d ->
      trace_summary ();
      if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
      else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
      exit 1

(* ---- commands ---- *)

let designs_cmd =
  let doc = "List built-in designs." in
  Cmd.v (Cmd.info "designs" ~doc)
    Term.(
      const (fun () ->
          List.iter (fun (n, _) -> print_endline n) builtin_designs)
      $ const ())

let compile_cmd =
  let doc = "Elaborate a design and summarize its CDFG." in
  let run name optimize =
    guarded @@ fun () ->
    let design = or_die (load_design name) in
    match Elaborate.design design with
    | exception Desugar.Error m -> prerr_endline ("hlsc: " ^ m); exit 1
    | e ->
        let e, stats_msg =
          if optimize then
            let e', st = Hls_opt.Passes.run e in
            ( e',
              Printf.sprintf
                " (optimizer: %d folded, %d simplified, %d merged, %d deleted, %d collapsed, %d narrowed)"
                st.Hls_opt.Passes.folded st.Hls_opt.Passes.simplified st.Hls_opt.Passes.merged
                st.Hls_opt.Passes.deleted st.Hls_opt.Passes.collapsed st.Hls_opt.Passes.narrowed )
          else (e, "")
        in
        (match Hls_ir.Cdfg.validate e.Elaborate.cdfg with
        | [] -> ()
        | errs ->
            List.iter (fun m -> prerr_endline ("invalid: " ^ m)) errs;
            exit 1);
        let dfg = e.Elaborate.cdfg.Hls_ir.Cdfg.dfg in
        Printf.printf "design %s: %d DFG operations%s\n" design.Ast.d_name (Hls_ir.Dfg.size dfg) stats_msg;
        (match e.Elaborate.loop with
        | Some li ->
            Printf.printf "main loop '%s': %d ops, %s, %d source wait state(s)\n"
              li.Elaborate.li_attrs.Ast.l_name
              (List.length li.Elaborate.li_members)
              (match li.Elaborate.li_continue with
              | Some _ -> "data-dependent exit"
              | None -> "free-running")
              li.Elaborate.li_waits
        | None -> print_endline "no main loop (straight-line design)");
        let region = Elaborate.main_region e in
        List.iteri
          (fun i scc -> Printf.printf "SCC %d: %d ops (must fit one pipeline stage)\n" i (List.length scc))
          (Hls_ir.Region.sccs region)
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ design_arg $ opt_arg)

let schedule_cmd =
  let doc = "Schedule and bind a design; print the resource/state table." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    Hls_report.Table.print (Hls_core.Scheduler.to_table r.Hls_flow.Flow.f_sched);
    Printf.printf "%s\n" (Hls_flow.Flow.summary r);
    List.iter (Printf.printf "  relaxation: %s\n") r.Hls_flow.Flow.f_sched.Hls_core.Scheduler.s_actions
  in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let pipeline_cmd =
  let doc = "Schedule, fold and print the pipeline kernel (the Fig. 5 view)." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    Hls_report.Table.print (Hls_core.Pipeline.to_table r.Hls_flow.Flow.f_sched r.Hls_flow.Flow.f_fold);
    Printf.printf "%s\n" (Hls_flow.Flow.summary r)
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let flow_cmd =
  let doc = "Run the full flow: schedule, fold, area/power, verification." in
  let run name ii clock latency trace optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace ~robust name in
    print_endline (Hls_flow.Flow.summary r);
    Format.printf "%a@." Hls_rtl.Stats.pp_breakdown r.Hls_flow.Flow.f_area;
    match r.Hls_flow.Flow.f_equiv with
    | Some v -> print_endline (Hls_sim.Equiv.verdict_to_string v)
    | None -> ()
  in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term)

let emit_cmd =
  let doc = "Generate Verilog for a scheduled design." in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run name ii clock latency out optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace:false ~robust name in
    let src = Hls_rtl.Verilog.emit r.Hls_flow.Flow.f_elab r.Hls_flow.Flow.f_sched r.Hls_flow.Flow.f_fold in
    (match Hls_rtl.Verilog.lint src with
    | [] -> ()
    | errs -> List.iter (fun m -> prerr_endline ("lint: " ^ m)) errs);
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length src)
    | None -> print_string src
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ out_arg $ opt_arg $ robust_term)

let explore_cmd =
  let doc =
    "Design-space exploration: sweep a parameter grid through the flow on a worker pool and \
     report the swept points, profiling and the area/delay Pareto front."
  in
  let grid_arg =
    Arg.(
      value
      & opt string "ii=none;latency=none;clock=1600"
      & info [ "grid" ] ~docv:"SPEC"
          ~doc:
            "Parameter grid, e.g. $(b,ii=none,2,4;latency=8..8,16;clock=1200,1600).  Dimensions \
             are semicolon-separated, values comma-separated; $(b,none) means sequential (for \
             ii) or designer bounds (for latency); a bare latency $(b,n) means $(b,n..n).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker-pool size (capped at the machine's recommended domain count; results are \
             identical for every N).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep as JSON to $(docv).")
  in
  let run name grid_spec jobs json robust =
    guarded @@ fun () ->
    let jobs =
      match Hls_dse.Dse.validate_jobs jobs with
      | Ok j -> j
      | Error d ->
          if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
          else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
          exit 1
    in
    let design = or_die (load_design name) in
    let grid = or_die (Hls_dse.Dse.parse_grid grid_spec) in
    let options =
      {
        Hls_flow.Flow.default_options with
        verify = false;
        degrade = not robust.no_degrade;
        paranoid = robust.paranoid;
        sched =
          {
            Hls_core.Scheduler.default_options with
            max_passes =
              Option.value robust.max_passes
                ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
            timeout_s = robust.timeout;
          };
      }
    in
    let engine = Hls_dse.Dse.create () in
    let sw = Hls_dse.Dse.sweep ~jobs engine ~options design (Hls_dse.Dse.grid_points grid) in
    Hls_report.Table.print (Hls_dse.Dse.table sw.Hls_dse.Dse.sw_results);
    let pts = Hls_dse.Dse.pareto_points sw.Hls_dse.Dse.sw_results in
    (match Hls_report.Pareto.front pts with
    | [] -> print_endline "area/delay Pareto front: (no successful points)"
    | front ->
        Printf.printf "area/delay Pareto front: %s\n"
          (String.concat ", "
             (List.map
                (fun p -> Hls_dse.Dse.point_label p.Hls_report.Pareto.p_tag.Hls_dse.Dse.r_point)
                front)));
    print_endline (Hls_dse.Dse.stats_to_string (Hls_dse.Dse.stats sw));
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hls_dse.Dse.sweep_to_json sw);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ design_arg $ grid_arg $ jobs_arg $ json_arg $ robust_term)

let () =
  let doc = "performance-constrained pipelining HLS flow (Kondratyev et al., DATE'11 reproduction)" in
  let info = Cmd.info "hlsc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ designs_cmd; compile_cmd; schedule_cmd; pipeline_cmd; flow_cmd; emit_cmd; explore_cmd ]))
