(** [hlsc] — command-line driver for the HLS flow.

    {v
      hlsc designs                         # list built-in designs
      hlsc compile example1                # elaborate and summarize the CDFG
      hlsc schedule example1 --ii 2        # schedule + print the binding table
      hlsc pipeline example1 --ii 2        # ... and the folded kernel (Fig. 5 view)
      hlsc flow idct --latency 8..8 --clock 1200   # full flow with verification
      hlsc emit example1 --ii 2 -o out.v   # generate Verilog
      hlsc explore idct --grid "ii=none,8;latency=16;clock=1200,1600" --jobs 4
                                           # parallel design-space sweep
      hlsc serve --socket hlsc.sock --jobs 4       # compile-service daemon
      hlsc submit schedule example1 --ii 2         # compile via the daemon
      hlsc compile my.bhv                  # any command also accepts .bhv files
    v}
*)

open Cmdliner
open Hls_frontend
module Proto = Hls_server.Protocol
module Design_db = Hls_server.Design_db
module Render = Hls_server.Render
module Client = Hls_server.Client
module Server = Hls_server.Server

(* ---- design lookup (shared with the daemon, see Hls_server.Design_db) ---- *)

let load_design name =
  match Design_db.local_spec name with
  | Error _ as e -> e
  | Ok spec -> Design_db.load spec

(** Run a command body under a catch-all: a bad input file or an internal
    fault exits with code 1 and a one-line diagnostic, never a backtrace. *)
let guarded f =
  try f () with
  | Parser.Error { line; message } | Lexer.Error { line; message } ->
      prerr_endline (Printf.sprintf "hlsc: line %d: %s" line message);
      exit 1
  | Desugar.Error f ->
      prerr_endline ("hlsc: " ^ Hls_frontend.Fault.message f);
      exit 1
  | Failure m | Invalid_argument m | Sys_error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- common args ---- *)

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc:"Built-in design name or .bhv file.")

let ii_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ii" ] ~docv:"N"
        ~doc:
          "Pipeline with initiation interval $(docv).  For a counted loop nest, a per-dimension \
           spec $(b,AxB) (outermost first, e.g. $(b,4x1)) requests those IIs for the flattened \
           nest.")

let nest_arg =
  Arg.(
    value
    & opt (enum [ ("flatten", `Flatten); ("unroll", `Unroll) ]) `Flatten
    & info [ "nest" ] ~docv:"MODE"
        ~doc:
          "Counted-nest lowering: $(b,flatten) (default; one combined induction counter) or \
           $(b,unroll) (the 1-D baseline that fully unrolls inner loops).")

let clock_arg =
  Arg.(value & opt float 1600.0 & info [ "clock" ] ~docv:"PS" ~doc:"Clock period in picoseconds (default 1600).")

let latency_arg =
  Arg.(value & opt (some string) None & info [ "latency" ] ~docv:"LO..HI" ~doc:"Loop latency bounds, e.g. 2..8.")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print scheduling pass events.")

let feedback_arg =
  Arg.(
    value & flag
    & info [ "feedback" ]
        ~doc:
          "Run the subgraph-extraction feedback loop: schedule, mine the critical subgraphs \
           (negative-slack cones, contended-resource cliques, SCC stage windows) into typed \
           hints, and re-schedule with the hints batched in — serving whichever iteration wins \
           on (II, latency, area), preferring the one that needed fewer relaxation passes.")

let feedback_iters_arg =
  Arg.(
    value & opt int 2
    & info [ "feedback-iters" ] ~docv:"N"
        ~doc:"Schedule calls the feedback loop may spend (default 2; implies $(b,--feedback)).")

let opt_arg = Arg.(value & flag & info [ "optimize" ] ~doc:"Run the DFG optimizer before scheduling.")

let parse_latency = function
  | None -> Ok (None, None)
  | Some s -> (
      match String.index_opt s '.' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' -> (
          try
            Ok
              ( Some (int_of_string (String.sub s 0 i)),
                Some (int_of_string (String.sub s (i + 2) (String.length s - i - 2))) )
          with _ -> Error "bad latency bounds (expected LO..HI)")
      | _ -> Error "bad latency bounds (expected LO..HI)")

let or_die = function
  | Ok x -> x
  | Error m ->
      prerr_endline ("hlsc: " ^ m);
      exit 1

(* ---- robustness flags ---- *)

type robust = {
  diag_json : bool;
  paranoid : bool;
  max_passes : int option;
  timeout : float option;
  no_degrade : bool;
}

let robust_term =
  let diag_json =
    Arg.(value & flag & info [ "diag-json" ] ~doc:"On failure, print the diagnostic as a JSON object on stderr.")
  in
  let paranoid =
    Arg.(value & flag & info [ "paranoid" ] ~doc:"Audit every schedule with the post-schedule validator.")
  in
  let max_passes =
    Arg.(value & opt (some int) None & info [ "max-passes" ] ~docv:"N" ~doc:"Relaxation pass budget (default 200).")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc:"Wall-clock scheduling budget in seconds.")
  in
  let no_degrade =
    Arg.(value & flag & info [ "no-degrade" ] ~doc:"Fail on an overconstrained specification instead of walking the degradation ladder.")
  in
  Term.(
    const (fun diag_json paranoid max_passes timeout no_degrade ->
        { diag_json; paranoid; max_passes; timeout; no_degrade })
    $ diag_json $ paranoid $ max_passes $ timeout $ no_degrade)

(* "--ii 2" -> flat II; "--ii 4x1" -> per-dimension nest II *)
let parse_ii = function
  | None -> Ok (None, None)
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok (Some v, None)
      | Some _ -> Error (Printf.sprintf "bad --ii value '%s' (expected a positive integer)" s)
      | None -> (
          let parts = String.split_on_char 'x' s |> List.map String.trim in
          let dims = List.filter_map int_of_string_opt parts in
          match dims with
          | _ :: _ :: _ when List.length dims = List.length parts && List.for_all (fun d -> d >= 1) dims
            ->
              Ok (None, Some dims)
          | _ -> Error (Printf.sprintf "bad --ii value '%s' (expected N or AxB, e.g. 4x1)" s)))

let flow_result ~ii ~clock ~latency ~optimize ~trace ~robust ?(nest = `Flatten)
    ?(feedback = false) ?(feedback_iters = 2) design_name =
  let design = or_die (load_design design_name) in
  let ii, ii_dims = or_die (parse_ii ii) in
  let min_latency, max_latency = or_die (parse_latency latency) in
  let design =
    if optimize then design (* the optimizer runs on the elaborated form inside the flow below *)
    else design
  in
  ignore optimize;
  let sched =
    {
      Hls_core.Scheduler.default_options with
      max_passes =
        Option.value robust.max_passes
          ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
      timeout_s = robust.timeout;
    }
  in
  let options =
    {
      Hls_flow.Flow.default_options with
      ii;
      ii_dims;
      nest_mode = nest;
      clock_ps = clock;
      min_latency;
      max_latency;
      sched;
      degrade = not robust.no_degrade;
      paranoid = robust.paranoid;
      feedback = feedback || feedback_iters <> 2;
      feedback_iters = max 1 feedback_iters;
    }
  in
  let trace_obj = if trace then Some (Hls_core.Trace.create ~echo:true ()) else None in
  let trace_summary () =
    Option.iter (fun t -> prerr_endline ("trace: " ^ Hls_core.Trace.summary t)) trace_obj
  in
  match Hls_flow.Flow.run ~options ?trace:trace_obj design with
  | Ok r ->
      trace_summary ();
      List.iter
        (fun n -> prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string n))
        r.Hls_flow.Flow.f_notes;
      r
  | Error d ->
      trace_summary ();
      if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
      else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
      exit 1

(* ---- commands ---- *)

let designs_cmd =
  let doc = "List built-in designs." in
  Cmd.v (Cmd.info "designs" ~doc)
    Term.(
      const (fun () ->
          List.iter (fun (n, _) -> print_endline n) Design_db.builtins)
      $ const ())

let compile_cmd =
  let doc = "Elaborate a design and summarize its CDFG." in
  let run name optimize =
    guarded @@ fun () ->
    let design = or_die (load_design name) in
    match Elaborate.design design with
    | exception Desugar.Error f ->
        prerr_endline ("hlsc: " ^ Hls_frontend.Fault.message f);
        exit 1
    | e ->
        let e, stats_msg =
          if optimize then
            let e', st = Hls_opt.Passes.run e in
            ( e',
              Printf.sprintf
                " (optimizer: %d folded, %d simplified, %d merged, %d deleted, %d collapsed, %d narrowed)"
                st.Hls_opt.Passes.folded st.Hls_opt.Passes.simplified st.Hls_opt.Passes.merged
                st.Hls_opt.Passes.deleted st.Hls_opt.Passes.collapsed st.Hls_opt.Passes.narrowed )
          else (e, "")
        in
        (match Hls_ir.Cdfg.validate e.Elaborate.cdfg with
        | [] -> ()
        | errs ->
            List.iter (fun m -> prerr_endline ("invalid: " ^ m)) errs;
            exit 1);
        let dfg = e.Elaborate.cdfg.Hls_ir.Cdfg.dfg in
        Printf.printf "design %s: %d DFG operations%s\n" design.Ast.d_name (Hls_ir.Dfg.size dfg) stats_msg;
        (match e.Elaborate.loop with
        | Some li ->
            Printf.printf "main loop '%s': %d ops, %s, %d source wait state(s)\n"
              li.Elaborate.li_attrs.Ast.l_name
              (List.length li.Elaborate.li_members)
              (match li.Elaborate.li_continue with
              | Some _ -> "data-dependent exit"
              | None -> "free-running")
              li.Elaborate.li_waits
        | None -> print_endline "no main loop (straight-line design)");
        let region = Elaborate.main_region e in
        List.iteri
          (fun i scc -> Printf.printf "SCC %d: %d ops (must fit one pipeline stage)\n" i (List.length scc))
          (Hls_ir.Region.sccs region)
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ design_arg $ opt_arg)

let schedule_cmd =
  let doc = "Schedule and bind a design; print the resource/state table." in
  let run name ii clock latency trace optimize robust nest feedback feedback_iters =
    guarded @@ fun () ->
    let r =
      flow_result ~ii ~clock ~latency ~optimize ~trace ~robust ~nest ~feedback ~feedback_iters
        name
    in
    print_string (Render.schedule r)
  in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term
      $ nest_arg $ feedback_arg $ feedback_iters_arg)

let pipeline_cmd =
  let doc = "Schedule, fold and print the pipeline kernel (the Fig. 5 view)." in
  let run name ii clock latency trace optimize robust nest feedback feedback_iters =
    guarded @@ fun () ->
    let r =
      flow_result ~ii ~clock ~latency ~optimize ~trace ~robust ~nest ~feedback ~feedback_iters
        name
    in
    print_string (Render.pipeline r)
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(
      const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term
      $ nest_arg $ feedback_arg $ feedback_iters_arg)

let flow_cmd =
  let doc = "Run the full flow: schedule, fold, area/power, verification." in
  let run name ii clock latency trace optimize robust nest feedback feedback_iters =
    guarded @@ fun () ->
    let r =
      flow_result ~ii ~clock ~latency ~optimize ~trace ~robust ~nest ~feedback ~feedback_iters
        name
    in
    print_string (Render.flow r)
  in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(
      const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ trace_arg $ opt_arg $ robust_term
      $ nest_arg $ feedback_arg $ feedback_iters_arg)

let fuzz_cmd =
  let doc =
    "Run the randomized three-way equivalence gate: seeded random designs x micro-architectures \
     x stimuli (stall patterns and early exits included), checked behavioural vs schedule-sim vs \
     compiled kernel, with an interpreted-vs-compiled cross-check of the full kernel result."
  in
  let cases_arg =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N" ~doc:"Number of seeded random cases (default 200).")
  in
  let seed_arg =
    Arg.(
      value & opt int 2026
      & info [ "seed" ] ~docv:"S"
          ~doc:"Base seed; a failure logs its case seed so the find replays exactly.")
  in
  let run cases seed =
    guarded @@ fun () ->
    let report = Hls_sim.Equiv.fuzz ~cases ~seed () in
    print_endline (Hls_sim.Equiv.fuzz_to_string report);
    if not (Hls_sim.Equiv.fuzz_ok report) then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const run $ cases_arg $ seed_arg)

let cosim_cmd =
  let doc =
    "Diff the interpreted and compiled folded-kernel engines on one design: identical outputs \
     and identical iteration/cycle/stall/squash counters, under several external stall duty \
     patterns."
  in
  let iters_arg =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~docv:"N" ~doc:"Stimulus length in iterations (default 200).")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Stimulus seed (default 7).")
  in
  let run name ii clock latency robust nest iters seed =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize:false ~trace:false ~robust ~nest name in
    let d = r.Hls_flow.Flow.f_design in
    let elab = r.Hls_flow.Flow.f_elab and sched = r.Hls_flow.Flow.f_sched in
    let stim = Hls_sim.Stimulus.small_random ~seed ~n_iters:iters ~ports:d.Ast.d_ins in
    let patterns =
      [
        ("free-running", fun _ -> true);
        ("duty-1/2", fun c -> c mod 2 = 0);
        ("duty-2/3", fun c -> c mod 3 <> 0);
      ]
    in
    List.iter
      (fun (pname, stall_pattern) ->
        let interp = Hls_sim.Kernel_sim.run ~engine:`Interp ~stall_pattern elab sched stim in
        let compiled = Hls_sim.Kernel_sim.run ~engine:`Compiled ~stall_pattern elab sched stim in
        if interp <> compiled then begin
          Printf.eprintf
            "hlsc: engines diverge on %s (%s): interpreted \
             {iters=%d;cycles=%d;stalls=%d;squashed=%d;outputs=%d} vs compiled \
             {iters=%d;cycles=%d;stalls=%d;squashed=%d;outputs=%d}\n"
            name pname interp.Hls_sim.Kernel_sim.k_iters interp.Hls_sim.Kernel_sim.k_cycles
            interp.Hls_sim.Kernel_sim.k_stall_cycles interp.Hls_sim.Kernel_sim.k_squashed
            (List.length interp.Hls_sim.Kernel_sim.k_outputs)
            compiled.Hls_sim.Kernel_sim.k_iters compiled.Hls_sim.Kernel_sim.k_cycles
            compiled.Hls_sim.Kernel_sim.k_stall_cycles compiled.Hls_sim.Kernel_sim.k_squashed
            (List.length compiled.Hls_sim.Kernel_sim.k_outputs);
          exit 1
        end;
        Printf.printf "%-14s %-12s %d outputs, %d iterations, %d cycles — engines agree\n" name
          pname
          (List.length compiled.Hls_sim.Kernel_sim.k_outputs)
          compiled.Hls_sim.Kernel_sim.k_iters compiled.Hls_sim.Kernel_sim.k_cycles)
      patterns
  in
  Cmd.v (Cmd.info "cosim" ~doc)
    Term.(
      const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ robust_term $ nest_arg
      $ iters_arg $ seed_arg)

let emit_cmd =
  let doc = "Generate Verilog for a scheduled design." in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run name ii clock latency out optimize robust =
    guarded @@ fun () ->
    let r = flow_result ~ii ~clock ~latency ~optimize ~trace:false ~robust name in
    let src = Hls_rtl.Verilog.emit r.Hls_flow.Flow.f_elab r.Hls_flow.Flow.f_sched r.Hls_flow.Flow.f_fold in
    (match Hls_rtl.Verilog.lint src with
    | [] -> ()
    | errs ->
        List.iter (fun m -> prerr_endline ("lint: " ^ m)) errs;
        exit 1);
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length src)
    | None -> print_string src
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ design_arg $ ii_arg $ clock_arg $ latency_arg $ out_arg $ opt_arg $ robust_term)

let explore_cmd =
  let doc =
    "Design-space exploration: sweep a parameter grid through the flow on a worker pool and \
     report the swept points, profiling and the area/delay Pareto front."
  in
  let grid_arg =
    Arg.(
      value
      & opt string "ii=none;latency=none;clock=1600"
      & info [ "grid" ] ~docv:"SPEC"
          ~doc:
            "Parameter grid, e.g. $(b,ii=none,2,4;latency=8..8,16;clock=1200,1600).  Dimensions \
             are semicolon-separated, values comma-separated; $(b,none) means sequential (for \
             ii) or designer bounds (for latency); a bare latency $(b,n) means $(b,n..n); an II \
             of the form $(b,AxB) (e.g. $(b,4x1)) requests per-dimension IIs for a loop nest, \
             outermost first.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker-pool size (capped at the machine's recommended domain count; results are \
             identical for every N).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep as JSON to $(docv).")
  in
  let explore_feedback_arg =
    Arg.(
      value & flag
      & info [ "feedback" ]
          ~doc:
            "Thread the engine's cross-point hint store through the sweep: the first point of \
             a design seeds the store with portable mined hints, every later point warm-starts \
             from that snapshot (results stay identical for every $(b,--jobs) count), and the \
             stats line reports how many points were hint-warmed.")
  in
  let run name grid_spec jobs json robust feedback =
    guarded @@ fun () ->
    let jobs =
      match Hls_dse.Dse.validate_jobs jobs with
      | Ok j -> j
      | Error d ->
          if robust.diag_json then prerr_endline (Hls_diag.Diag.to_json d)
          else prerr_endline ("hlsc: " ^ Hls_diag.Diag.to_string d);
          exit 1
    in
    Hls_core.Scheduler.set_jobs jobs;
    let design = or_die (load_design name) in
    let grid = or_die (Hls_dse.Dse.parse_grid grid_spec) in
    let options =
      {
        Hls_flow.Flow.default_options with
        verify = false;
        degrade = not robust.no_degrade;
        paranoid = robust.paranoid;
        feedback;
        sched =
          {
            Hls_core.Scheduler.default_options with
            max_passes =
              Option.value robust.max_passes
                ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
            timeout_s = robust.timeout;
          };
      }
    in
    let engine = Hls_dse.Dse.create () in
    at_exit (fun () -> Hls_dse.Dse.shutdown engine);
    let sw = Hls_dse.Dse.sweep ~jobs engine ~options design (Hls_dse.Dse.grid_points grid) in
    Hls_report.Table.print (Hls_dse.Dse.table sw.Hls_dse.Dse.sw_results);
    let pts = Hls_dse.Dse.pareto_points sw.Hls_dse.Dse.sw_results in
    (match Hls_report.Pareto.front pts with
    | [] -> print_endline "area/delay Pareto front: (no successful points)"
    | front ->
        Printf.printf "area/delay Pareto front: %s\n"
          (String.concat ", "
             (List.map
                (fun p -> Hls_dse.Dse.point_label p.Hls_report.Pareto.p_tag.Hls_dse.Dse.r_point)
                front)));
    print_endline (Hls_dse.Dse.stats_to_string (Hls_dse.Dse.stats sw));
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hls_dse.Dse.sweep_to_json sw);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ design_arg $ grid_arg $ jobs_arg $ json_arg $ robust_term
      $ explore_feedback_arg)

(* ---- compile service ---- *)

let socket_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon (default hlsc.sock).")

let serve_cmd =
  let doc =
    "Run the compile-service daemon: a supervising acceptor process over a fleet of forked \
     worker processes (crash isolation), a shared in-memory artifact cache, and optionally a \
     crash-safe on-disk artifact store ($(b,--store-dir)).  Workers that crash, hang (missed \
     heartbeats) or blow a job's wall deadline are killed and respawned with backoff; their \
     jobs are re-queued or answered with typed $(b,worker_lost)/$(b,deadline_exceeded) errors. \
     SIGTERM drains gracefully: queued and in-flight jobs finish, the store index is flushed, \
     and the final stats line reports queued-vs-completed counts."
  in
  let tcp_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:$(docv).")
  in
  let jobs_arg =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "workers"; "jobs"; "j" ] ~docv:"N" ~doc:"Worker-process count (default 2).")
  in
  let capacity_arg =
    Arg.(
      value & opt int Server.default_config.Server.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Admission limit on queued-but-not-started jobs (default 64).")
  in
  let watermark_arg =
    Arg.(
      value & opt int 48
      & info [ "watermark" ] ~docv:"N"
          ~doc:
            "Shed watermark: queued jobs at or beyond $(docv) are refused with a typed \
             $(b,overloaded) error before the hard queue limit (default 48; 0 disables \
             shedding).")
  in
  let store_arg =
    Arg.(
      value & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:
            "Persist compile artifacts in a content-addressed store under $(docv): results \
             survive daemon restarts, corrupt entries are quarantined, writes are atomic.")
  in
  let cache_cap_arg =
    Arg.(
      value & opt int Server.default_config.Server.cache_cap
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "In-memory artifact-cache entry bound (default 512, minimum 1); oldest entries \
             are evicted first, falling back to the store when one is configured.")
  in
  let deadline_arg =
    Arg.(
      value & opt float Server.default_config.Server.deadline_s
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Default hard per-job wall deadline: the worker is killed and the job answered \
             with $(b,deadline_exceeded) (default 300; a submit's own deadline overrides).")
  in
  let hb_timeout_arg =
    Arg.(
      value & opt float Server.default_config.Server.hb_timeout_s
      & info [ "hb-timeout" ] ~docv:"SEC"
          ~doc:"Heartbeat staleness before a worker counts as wedged (default 2).")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"N" ~doc:"Fault-injection RNG seed (testing only).")
  in
  let chaos_kill_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-kill" ] ~docv:"P"
          ~doc:"Per-job probability of the worker dying before work (testing only).")
  in
  let chaos_stall_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-stall" ] ~docv:"P"
          ~doc:"Per-job probability of the worker hanging silently (testing only).")
  in
  let chaos_corrupt_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-corrupt" ] ~docv:"P"
          ~doc:"Per-compile probability of corrupting the stored artifact (testing only).")
  in
  let run socket tcp_port jobs queue_capacity watermark store_dir cache_cap deadline hb_timeout
      cz_seed cz_kill cz_stall cz_corrupt verbose =
    guarded @@ fun () ->
    if jobs < 1 then or_die (Error "at least one worker process is required (--workers)");
    if cache_cap < 1 then or_die (Error "the cache needs room for at least one entry (--cache-cap)");
    let chaos =
      if cz_kill > 0.0 || cz_stall > 0.0 || cz_corrupt > 0.0 then
        Some { Hls_server.Worker.cz_seed; cz_kill; cz_stall; cz_corrupt }
      else None
    in
    or_die
      (Server.run
         {
           Server.default_config with
           Server.socket;
           tcp_port;
           workers = jobs;
           queue_capacity;
           shed_watermark = (if watermark <= 0 then None else Some watermark);
           store_dir;
           cache_cap;
           deadline_s = deadline;
           hb_timeout_s = hb_timeout;
           chaos;
           verbose;
         })
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log connection and job lifecycle to stderr.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ capacity_arg $ watermark_arg $ store_arg
      $ cache_cap_arg $ deadline_arg $ hb_timeout_arg $ chaos_seed_arg $ chaos_kill_arg
      $ chaos_stall_arg $ chaos_corrupt_arg $ verbose_arg)

let cmd_of_name s =
  match Proto.cmd_of_string s with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown command '%s' (expected schedule, pipeline or flow)" s)

let submit_cmd =
  let doc =
    "Submit a compile job to a running daemon and print the result — byte-identical on stdout \
     to the offline $(b,schedule)/$(b,pipeline)/$(b,flow) commands."
  in
  let cmd_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CMD" ~doc:"One of $(b,schedule), $(b,pipeline), $(b,flow).")
  in
  let design_pos1 =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DESIGN" ~doc:"Built-in design name or .bhv file.")
  in
  let max_passes_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-passes" ] ~docv:"N" ~doc:"Relaxation pass budget (default 200).")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Per-job wall-clock budget in seconds.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip RTL-vs-reference verification.")
  in
  let diag_json_arg =
    Arg.(
      value & flag
      & info [ "diag-json" ] ~doc:"On failure, print the diagnostic as a JSON object on stderr.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Hard per-job wall deadline: the daemon kills the worker and answers \
             $(b,deadline_exceeded) when it trips.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) times with jittered exponential backoff on transport faults \
             and transient typed errors ($(b,worker_lost), $(b,overloaded), $(b,queue_full)); \
             jobs are idempotent by fingerprint (default 0).")
  in
  let run cmdname name socket ii clock latency trace max_passes timeout deadline retries
      no_verify diag_json =
    guarded @@ fun () ->
    let cmd = or_die (cmd_of_name cmdname) in
    let ii, ii_dims = or_die (parse_ii ii) in
    (match ii_dims with
    | Some _ ->
        or_die (Error "per-dimension --ii (AxB) is not supported over the daemon protocol yet")
    | None -> ());
    let min_latency, max_latency = or_die (parse_latency latency) in
    let spec_design = or_die (Design_db.local_spec name) in
    let spec =
      Proto.job_spec ?ii ?min_latency ?max_latency ?max_passes ?timeout_s:timeout
        ?deadline_s:deadline ~verify:(not no_verify) ~trace ~clock_ps:clock cmd spec_design
    in
    let on_event ~level text = Printf.eprintf "[%s] %s\n%!" level text in
    let outcome =
      if retries > 0 then
        let connect () = Client.connect ~socket () in
        match Client.submit_retrying ~on_event ~retries ~connect spec with
        | Ok (o, _attempts) -> o
        | Error m ->
            prerr_endline ("hlsc: " ^ m);
            exit 1
      else begin
        let client = or_die (Client.connect ~socket ()) in
        let o = or_die (Client.submit ~on_event client spec) in
        Client.close client;
        o
      end
    in
    List.iter (fun n -> prerr_endline ("hlsc: " ^ n)) outcome.Proto.o_notes;
    match outcome.Proto.o_status with
    | Proto.S_ok -> print_string outcome.Proto.o_output
    | Proto.S_cancelled ->
        prerr_endline "hlsc: job cancelled";
        exit 1
    | Proto.S_error ->
        (match (diag_json, outcome.Proto.o_diag_json, outcome.Proto.o_diag) with
        | true, Some j, _ -> prerr_endline j
        | _, _, Some d -> prerr_endline ("hlsc: " ^ d)
        | _, Some j, None -> prerr_endline j
        | _ -> prerr_endline "hlsc: job failed");
        exit 1
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ cmd_arg $ design_pos1 $ socket_arg $ ii_arg $ clock_arg $ latency_arg
      $ trace_arg $ max_passes_arg $ timeout_arg $ deadline_arg $ retries_arg $ no_verify_arg
      $ diag_json_arg)

let stats_cmd =
  let doc = "Print a running daemon's metrics snapshot (queue, cache, scheduler counters)." in
  let run socket =
    guarded @@ fun () ->
    let client = or_die (Client.connect ~socket ()) in
    let j = or_die (Client.stats client) in
    Client.close client;
    print_endline (Proto.to_string j)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ socket_arg)

let health_cmd =
  let doc =
    "Probe a running daemon's health: prints the supervision snapshot (per-worker liveness, \
     queue depths, store health) and exits 0 when every worker is alive, 1 when the daemon is \
     degraded or unreachable — suitable as a liveness/readiness check."
  in
  let run socket =
    guarded @@ fun () ->
    let client = or_die (Client.connect ~socket ()) in
    let j = or_die (Client.health client) in
    Client.close client;
    print_endline (Proto.to_string j);
    match Option.bind (Proto.member "status" j) Proto.get_string with
    | Some "ok" -> ()
    | _ -> exit 1
  in
  Cmd.v (Cmd.info "health" ~doc) Term.(const run $ socket_arg)

let bench_chaos_cmd =
  let doc =
    "Chaos acceptance run against a (fault-injected) daemon: submit distinct compiles through \
     the retrying client, verify every completed job byte-identical to the offline compiler, \
     and report retry/shed/recovery statistics.  Exits nonzero on any wrong bytes or if the \
     daemon died."
  in
  let requests_arg =
    Arg.(
      value & opt int 24 & info [ "requests" ] ~docv:"N" ~doc:"Distinct compiles (default 24).")
  in
  let design_opt_arg =
    Arg.(
      value & opt string "fir8"
      & info [ "design" ] ~docv:"NAME" ~doc:"Built-in design to compile (default fir8).")
  in
  let cmd_opt_arg =
    Arg.(
      value & opt string "schedule"
      & info [ "cmd" ] ~docv:"CMD" ~doc:"schedule, pipeline or flow (default schedule).")
  in
  let retries_arg =
    Arg.(
      value & opt int 6
      & info [ "retries" ] ~docv:"N" ~doc:"Client retry budget per request (default 6).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON to $(docv).")
  in
  let run socket requests design cmdname retries json =
    guarded @@ fun () ->
    let cmd = or_die (cmd_of_name cmdname) in
    let design_ast = or_die (load_design design) in
    let spec_of i =
      Proto.job_spec ~verify:false ~clock_ps:(1600.0 +. float_of_int i) cmd (`Builtin design)
    in
    (* ground truth: the offline flow through the same render path the
       worker uses — byte-identity is the acceptance criterion *)
    let expected spec =
      let options = Hls_server.Artifact.options_of_spec spec in
      match Hls_flow.Flow.run ~options design_ast with
      | Ok r -> Some (Render.output cmd r)
      | Error _ -> None
    in
    let ok = ref 0 and wrong = ref 0 and typed = ref 0 and hard = ref 0 in
    let attempts_total = ref 0 and retried_jobs = ref 0 in
    let recovery = ref [] in
    let codes = Hashtbl.create 4 in
    for i = 0 to requests - 1 do
      let spec = spec_of i in
      let t0 = Unix.gettimeofday () in
      match
        Client.submit_retrying ~retries ~seed:i ~connect:(fun () -> Client.connect ~socket ())
          spec
      with
      | Ok (o, attempts) -> (
          attempts_total := !attempts_total + attempts;
          if attempts > 1 then begin
            incr retried_jobs;
            recovery := (Unix.gettimeofday () -. t0) :: !recovery
          end;
          match o.Proto.o_status with
          | Proto.S_ok -> (
              match expected spec with
              | Some want when want = o.Proto.o_output -> incr ok
              | Some _ ->
                  incr wrong;
                  Printf.eprintf "hlsc bench-chaos: WRONG BYTES for request %d\n%!" i
              | None ->
                  (* offline failed but daemon succeeded: count as wrong *)
                  incr wrong)
          | Proto.S_error ->
              incr typed;
              let c = Option.value o.Proto.o_code ~default:"unknown" in
              Hashtbl.replace codes c (1 + Option.value (Hashtbl.find_opt codes c) ~default:0)
          | Proto.S_cancelled -> incr typed)
      | Error m ->
          incr hard;
          Printf.eprintf "hlsc bench-chaos: request %d failed hard: %s\n%!" i m
    done;
    let daemon_alive, shed, crashes, respawns =
      match Client.connect ~socket () with
      | Error _ -> (false, -1, -1, -1)
      | Ok c ->
          let stat = Client.stats c in
          Client.close c;
          let geti path j =
            match path with
            | [ a; b ] ->
                Option.value
                  (Option.bind (Proto.member a j) (fun o ->
                       Option.bind (Proto.member b o) Proto.get_int))
                  ~default:(-1)
            | _ -> -1
          in
          (match stat with
          | Ok j ->
              (true, geti [ "jobs"; "shed" ] j, geti [ "supervisor"; "crashes" ] j,
               geti [ "supervisor"; "respawns" ] j)
          | Error _ -> (false, -1, -1, -1))
    in
    let recovery_arr = Array.of_list !recovery in
    Array.sort compare recovery_arr;
    let pct p =
      match Array.length recovery_arr with
      | 0 -> 0.0
      | n -> recovery_arr.(min (n - 1) (int_of_float (p *. float_of_int n))) *. 1000.0
    in
    let retry_rate = float_of_int !retried_jobs /. float_of_int (max 1 requests) in
    Printf.printf
      "chaos: %d request(s): %d ok (byte-identical), %d wrong-byte, %d typed failure(s), %d \
       hard error(s); %d attempt(s) total, %d job(s) retried (rate %.2f), recovery p50 %.0f ms \
       max %.0f ms; daemon %s, %d shed, %d crash(es), %d respawn(s)\n"
      requests !ok !wrong !typed !hard !attempts_total !retried_jobs retry_rate (pct 0.5)
      (pct 1.0)
      (if daemon_alive then "alive" else "DEAD")
      shed crashes respawns;
    Hashtbl.iter (fun c n -> Printf.printf "chaos: typed failure %s: %d\n" c n) codes;
    (match json with
    | None -> ()
    | Some path ->
        let code_fields =
          Hashtbl.fold (fun c n acc -> (c, Proto.Int n) :: acc) codes []
        in
        let j =
          Proto.Obj
            [
              ("requests", Proto.Int requests);
              ("ok_byte_identical", Proto.Int !ok);
              ("wrong_bytes", Proto.Int !wrong);
              ("typed_failures", Proto.Obj code_fields);
              ("typed_failures_total", Proto.Int !typed);
              ("hard_errors", Proto.Int !hard);
              ("attempts_total", Proto.Int !attempts_total);
              ("jobs_retried", Proto.Int !retried_jobs);
              ("retry_rate", Proto.Float retry_rate);
              ("recovery_p50_ms", Proto.Float (pct 0.5));
              ("recovery_max_ms", Proto.Float (pct 1.0));
              ("daemon_alive", Proto.Bool daemon_alive);
              ("shed", Proto.Int shed);
              ("crashes", Proto.Int crashes);
              ("respawns", Proto.Int respawns);
            ]
        in
        let oc = open_out path in
        output_string oc (Proto.to_string j);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path);
    if !wrong > 0 || !hard > 0 || not daemon_alive then exit 1
  in
  Cmd.v (Cmd.info "bench-chaos" ~doc)
    Term.(
      const run $ socket_arg $ requests_arg $ design_opt_arg $ cmd_opt_arg $ retries_arg
      $ json_arg)

let bench_serve_cmd =
  let doc =
    "Load-test a running daemon: K concurrent clients, each submitting M distinct compiles \
     (cold phase) and then the same M again (warm phase, pure cache service); report p50/p95 \
     latency, throughput, cache hit rate and warm speedup."
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"K" ~doc:"Concurrent clients (default 8).")
  in
  let requests_arg =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"M" ~doc:"Requests per client per phase (default 4).")
  in
  let design_opt_arg =
    Arg.(
      value & opt string "fir8"
      & info [ "design" ] ~docv:"NAME" ~doc:"Built-in design to compile (default fir8).")
  in
  let cmd_opt_arg =
    Arg.(
      value & opt string "schedule"
      & info [ "cmd" ] ~docv:"CMD" ~doc:"schedule, pipeline or flow (default schedule).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON to $(docv).")
  in
  let run socket clients requests design cmdname json =
    guarded @@ fun () ->
    let cmd = or_die (cmd_of_name cmdname) in
    let b = or_die (Client.bench ~socket ~clients ~requests ~design ~cmd ()) in
    Printf.printf
      "%d clients x %d requests: cold p50 %.1f ms p95 %.1f ms (%.1f req/s), warm p50 %.2f ms \
       p95 %.2f ms (%.1f req/s), speedup %.1fx, cache hit rate %.1f%%, errors %d\n"
      b.Client.b_clients b.Client.b_requests b.Client.b_cold_p50_ms b.Client.b_cold_p95_ms
      b.Client.b_cold_throughput b.Client.b_warm_p50_ms b.Client.b_warm_p95_ms
      b.Client.b_warm_throughput b.Client.b_speedup
      (100.0 *. b.Client.b_cache_hit_rate)
      b.Client.b_errors;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Client.bench_to_json b);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path);
    if b.Client.b_errors > 0 then exit 1
  in
  Cmd.v (Cmd.info "bench-serve" ~doc)
    Term.(
      const run $ socket_arg $ clients_arg $ requests_arg $ design_opt_arg $ cmd_opt_arg
      $ json_arg)

let version_cmd =
  let doc = "Print the binary and wire-protocol versions." in
  Cmd.v (Cmd.info "version" ~doc)
    Term.(
      const (fun () ->
          Printf.printf "hlsc %s (wire protocol %d)\n" Proto.binary_version Proto.version)
      $ const ())

let () =
  let doc = "performance-constrained pipelining HLS flow (Kondratyev et al., DATE'11 reproduction)" in
  let version = Printf.sprintf "%s (wire protocol %d)" Proto.binary_version Proto.version in
  let info = Cmd.info "hlsc" ~version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            designs_cmd; compile_cmd; schedule_cmd; pipeline_cmd; flow_cmd; fuzz_cmd; cosim_cmd;
            emit_cmd; explore_cmd;
            serve_cmd; submit_cmd; stats_cmd; health_cmd; bench_serve_cmd; bench_chaos_cmd;
            version_cmd;
          ]))
