(** Writing designs in the textual [.bhv] language: parse a source string,
    cross-check it against the equivalent DSL construction, and run both
    through the flow.

    Run with: [dune exec examples/custom_design.exe] *)

open Hls_frontend

let bhv_source =
  {|
// a saturating accumulator written in the .bhv language
design satacc {
  in  sample : 12;
  in  ceiling : 20;
  out total : 20;
  var acc : 20;

  acc = 0;
  wait();
  do [name=main, latency=1..6, ii=2] {
    acc = acc + $sample * 3;
    if (acc > $ceiling) { acc = $ceiling; }
    wait();
    $total = acc;
  } while (1);
}
|}

let dsl_equivalent =
  Dsl.(
    design "satacc"
      ~ins:[ in_port "sample" 12; in_port "ceiling" 20 ]
      ~outs:[ out_port "total" 20 ]
      ~vars:[ var "acc" 20 ]
      [
        "acc" := int 0;
        wait;
        do_while ~name:"main" ~min_latency:1 ~max_latency:6 ~ii:2
          [
            "acc" := v "acc" +: (port "sample" *: int 3);
            when_ (v "acc" >: port "ceiling") [ "acc" := port "ceiling" ];
            wait;
            write "total" (v "acc");
          ]
          (int 1);
      ])

let run label design =
  match Hls_flow.Flow.run design with
  | Error e -> Printf.printf "%-10s failed: %s\n" label (Hls_diag.Diag.to_string e)
  | Ok r ->
      Printf.printf "%-10s %s\n" label (Hls_flow.Flow.summary r);
      Hls_report.Table.print (Hls_core.Scheduler.to_table r.Hls_flow.Flow.f_sched)

let () =
  let parsed = Parser.parse_string bhv_source in
  print_endline "parsed .bhv design:";
  Format.printf "%a@.@." Ast.pp_design parsed;
  run "parsed" parsed;
  run "dsl" dsl_equivalent;
  (* both frontends produce the same behaviour: compare golden simulations *)
  let stim =
    Hls_sim.Stimulus.small_random ~seed:11 ~n_iters:30 ~ports:parsed.Ast.d_ins
  in
  let a = Hls_sim.Behav.run parsed stim and b = Hls_sim.Behav.run dsl_equivalent stim in
  let same =
    Hls_sim.Behav.port_values a "total" = Hls_sim.Behav.port_values b "total"
  in
  Printf.printf "\n.bhv and DSL behavioural outputs identical: %b\n" same
