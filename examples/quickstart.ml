(** Quickstart: build a design with the DSL, schedule it sequentially and
    pipelined, inspect the results, and verify functional equivalence —
    the paper's Example 1 end to end.

    Run with: [dune exec examples/quickstart.exe] *)

open Hls_frontend

let () =
  (* 1. Describe the behaviour (the paper's Fig. 1 SystemC, in the DSL). *)
  let design =
    Dsl.(
      design "quickstart"
        ~ins:[ in_port "mask" 32; in_port "chrome" 32; in_port "scale" 32; in_port "th" 32 ]
        ~outs:[ out_port "pixel" 32 ]
        ~vars:[ var "aver" 32; var "delta" 32; var "filt" 32 ]
        [
          "aver" := int 0;
          wait;
          do_while ~name:"main" ~min_latency:1 ~max_latency:4
            [
              "filt" := port "mask";
              "delta" := port "mask" *: port "chrome";
              "aver" := v "aver" +: v "delta";
              when_ (v "aver" >: port "th") [ "aver" := v "aver" *: port "scale" ];
              wait;
              write "pixel" (v "aver" *: v "filt");
            ]
            (v "delta" <>: int 0);
        ])
  in
  (* 2. Run the flow for three micro-architectures. *)
  List.iter
    (fun (label, ii) ->
      let options = { Hls_flow.Flow.default_options with ii } in
      match Hls_flow.Flow.run ~options design with
      | Error e -> Printf.printf "%-16s failed: %s\n" label (Hls_diag.Diag.to_string e)
      | Ok r ->
          Printf.printf "\n=== %s ===\n" label;
          Hls_report.Table.print (Hls_core.Scheduler.to_table r.Hls_flow.Flow.f_sched);
          print_endline (Hls_flow.Flow.summary r);
          if ii <> None then
            Hls_report.Table.print
              ~title:"pipeline kernel (stages x cycles):"
              (Hls_core.Pipeline.to_table r.Hls_flow.Flow.f_sched r.Hls_flow.Flow.f_fold))
    [ ("sequential", None); ("pipelined II=2", Some 2); ("pipelined II=1", Some 1) ];
  print_endline "\nAll three micro-architectures computed identical output streams (verified above).";
  print_endline "Compare areas: higher throughput costs more parallel hardware (the paper's Table 3)."
