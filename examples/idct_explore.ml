(** The Section VI design-space exploration on the IDCT: sweep loop
    latency and pipelining through the parallel DSE engine, print the
    per-point table (with profiling), extract the Pareto front, and
    confirm that the best point needs pipelining.

    Run with: [dune exec examples/idct_explore.exe]
    (a reduced sweep; [bench/main.exe fig10] runs the full one) *)

module Dse = Hls_dse.Dse

let () =
  print_endline "IDCT design-space exploration (reduced sweep)\n";
  let points =
    List.concat_map
      (fun latency ->
        List.map
          (fun pipelined ->
            Dse.point
              ?ii:(if pipelined then Some (latency / 2) else None)
              ~min_latency:latency ~max_latency:latency ~clock_ps:1600.0 ())
          [ false; true ])
      [ 16; 24; 32 ]
  in
  let options = { Hls_flow.Flow.default_options with verify = false } in
  let engine = Dse.create () in
  let sw =
    Dse.sweep ~jobs:(Domain.recommended_domain_count ()) engine ~options
      (Hls_designs.Idct.design ()) points
  in
  Hls_report.Table.print (Dse.table sw.Dse.sw_results);
  let front = Hls_report.Pareto.front (Dse.pareto_points sw.Dse.sw_results) in
  Printf.printf "\narea/delay Pareto front: %s\n"
    (String.concat ", "
       (List.map (fun p -> Dse.point_label p.Hls_report.Pareto.p_tag.Dse.r_point) front));
  print_endline (Dse.stats_to_string (Dse.stats sw));
  print_endline "(the fastest Pareto point is pipelined, as in the paper's Fig. 10)"
