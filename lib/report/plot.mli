(** ASCII scatter/line plots for the figure-reproducing benches: multiple
    glyph-coded series on one grid, linear or log10 axes — enough to show
    the {e shape} of the paper's Figures 9–11 in bench output.

    Values ≤ 0 on a log-scaled axis are dropped from the render (with a
    one-line warning) rather than silently plotted at the cell of 1. *)

type scale = Linear | Log10

type series = { s_label : string; s_glyph : char; s_points : (float * float) list }

val series : ?glyph:char -> string -> (float * float) list -> series

val default_glyphs : char array

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string

val print :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit
