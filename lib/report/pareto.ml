(** Pareto-front extraction for the design-space exploration reports
    (Section VI: "the best Pareto point can be achieved only by
    pipelining"). *)

type 'a point = { p_x : float; p_y : float; p_tag : 'a }

let point ~x ~y tag = { p_x = x; p_y = y; p_tag = tag }

(** [dominates a b]: [a] is no worse in both minimized dimensions and
    strictly better in at least one. *)
let dominates a b =
  a.p_x <= b.p_x && a.p_y <= b.p_y && (a.p_x < b.p_x || a.p_y < b.p_y)

(** Minimizing front, sorted by x then y, structurally deduplicated — the
    output is invariant under duplication and reordering of the input.

    Sort-based O(n log n) scan: after sorting ascending by (x, y, tag),
    only an earlier point can dominate a later one, and it does exactly
    when its y is strictly below the running minimum over strictly-smaller
    x (ties in both coordinates dominate in neither direction). *)
let front (points : 'a point list) : 'a point list =
  let sorted =
    List.sort_uniq (fun a b -> compare (a.p_x, a.p_y, a.p_tag) (b.p_x, b.p_y, b.p_tag)) points
  in
  let rec scan best_y acc = function
    | [] -> List.rev acc
    | p :: rest ->
        (* consume the whole equal-x group at once: within a group only the
           minimal-y points can survive, and they survive iff they beat the
           best y of every strictly-smaller x *)
        let same_x, rest = List.partition (fun q -> q.p_x = p.p_x) rest in
        let group = p :: same_x in
        let gmin = List.fold_left (fun m q -> min m q.p_y) p.p_y group in
        let survivors = if gmin < best_y then List.filter (fun q -> q.p_y = gmin) group else [] in
        scan (min best_y gmin) (List.rev_append survivors acc) rest
  in
  scan infinity [] sorted

(** Points on the front, tagged. *)
let front_tags points = List.map (fun p -> p.p_tag) (front points)

(** Structural, not physical: a caller may rebuild an equal point and still
    ask whether it sits on the front. *)
let is_on_front points p =
  List.exists (fun q -> q = p) points && not (List.exists (fun q -> dominates q p) points)
