(** Pareto-front extraction for the design-space exploration reports
    (Section VI: "the best Pareto point can be achieved only by
    pipelining").  Both dimensions are minimized. *)

type 'a point = { p_x : float; p_y : float; p_tag : 'a }

val point : x:float -> y:float -> 'a -> 'a point

val dominates : 'a point -> 'a point -> bool
(** No worse in both, strictly better in one. *)

val front : 'a point list -> 'a point list
(** The minimizing front, sorted by x then y and structurally
    deduplicated: the output is invariant under duplication and
    reordering of the input.  O(n log n). *)

val front_tags : 'a point list -> 'a list

val is_on_front : 'a point list -> 'a point -> bool
(** Structural: true when a point equal to [p] is in [points] and no
    point dominates it — a caller may rebuild an equal point and still
    ask. *)
