(** ASCII scatter / line plots for the figure-reproducing benches.

    Multiple series are drawn with distinct glyphs into one grid; axes are
    linear or log10.  Good enough to show the {e shape} of the paper's
    Figures 9–11 directly in the bench output. *)

type scale = Linear | Log10

type series = { s_label : string; s_glyph : char; s_points : (float * float) list }

let series ?(glyph = '*') label points = { s_label = label; s_glyph = glyph; s_points = points }

let default_glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let transform = function Linear -> fun v -> v | Log10 -> log10

(** Render the plot as a string.  [width]/[height] are the grid size in
    characters.  Values ≤ 0 on a log-scaled axis have no finite image and
    are dropped from the plot (with a one-line warning) instead of being
    silently collapsed onto the cell of value 1. *)
let render ?(width = 64) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear) ~title ~x_label
    ~y_label (ss : series list) : string =
  let plottable (x, y) =
    (x_scale = Linear || x > 0.0) && (y_scale = Linear || y > 0.0)
  in
  let n_raw = List.fold_left (fun n s -> n + List.length s.s_points) 0 ss in
  let ss = List.map (fun s -> { s with s_points = List.filter plottable s.s_points }) ss in
  let dropped = n_raw - List.fold_left (fun n s -> n + List.length s.s_points) 0 ss in
  let warning =
    if dropped = 0 then ""
    else Printf.sprintf "  (warning: %d non-positive point(s) dropped from log axes)\n" dropped
  in
  let pts = List.concat_map (fun s -> s.s_points) ss in
  if pts = [] then title ^ ": (no data)\n" ^ warning
  else begin
    let tx = transform x_scale and ty = transform y_scale in
    let xs = List.map (fun (x, _) -> tx x) pts and ys = List.map (fun (_, y) -> ty y) pts in
    let fmin l = List.fold_left min (List.hd l) l and fmax l = List.fold_left max (List.hd l) l in
    let x0 = fmin xs and x1 = fmax xs and y0 = fmin ys and y1 = fmax ys in
    let xr = if x1 -. x0 < 1e-9 then 1.0 else x1 -. x0 in
    let yr = if y1 -. y0 < 1e-9 then 1.0 else y1 -. y0 in
    let cell v v0 vr n = int_of_float (Float.round ((v -. v0) /. vr *. float_of_int (n - 1))) in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            let cx = cell (tx x) x0 xr width in
            let cy = height - 1 - cell (ty y) y0 yr height in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then grid.(cy).(cx) <- s.s_glyph)
          s.s_points)
      ss;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "%s\n" title);
    let fmt_axis v scale =
      match scale with Log10 -> Printf.sprintf "%.3g" (10.0 ** v) | Linear -> Printf.sprintf "%.3g" v
    in
    Buffer.add_string buf (Printf.sprintf "%10s ^\n" (y_label ^ " " ^ fmt_axis y1 y_scale));
    Array.iteri
      (fun _i row ->
        Buffer.add_string buf (Printf.sprintf "%10s |%s|\n" "" (String.init width (Array.get row))))
      grid;
    Buffer.add_string buf
      (Printf.sprintf "%10s +%s>\n" (fmt_axis y0 y_scale) (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%11s %-20s%*s\n" "" (fmt_axis x0 x_scale)
         (width - 18)
         (fmt_axis x1 x_scale ^ " " ^ x_label));
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.s_glyph s.s_label))
      ss;
    Buffer.add_string buf warning;
    Buffer.contents buf
  end

let print ?width ?height ?x_scale ?y_scale ~title ~x_label ~y_label ss =
  print_string (render ?width ?height ?x_scale ?y_scale ~title ~x_label ~y_label ss)
