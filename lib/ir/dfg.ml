(** The data-flow graph.

    Nodes are operations ({!Opkind.t} plus result width, guard and
    bookkeeping); edges are data dependencies [(src, dst, port, distance)].
    [distance] is the inter-iteration distance: 0 for an ordinary
    dependency, [d >= 1] when the consumer reads the value produced [d]
    iterations earlier (a loop-carried dependency).  Cycles through
    positive-distance edges are exactly the strongly connected components
    that constrain pipelining (Section V, requirement (a) of the paper). *)

type op = {
  id : int;
  mutable kind : Opkind.t;
      (** mutable for post-elaboration retiming only (e.g. fixing a nest
          super-op's latency once the inner kernel is scheduled) *)
  mutable width : int;  (** result width in bits *)
  mutable guard : Guard.t;
  mutable name : string;  (** diagnostic name, e.g. ["mul1_op"] *)
  mutable anchor : int option;
      (** pin to an exact control step (user constraint / timed I/O) *)
  mutable speculated : bool;
      (** guard removed from the commit path by the [Speculate] action *)
}

type edge = {
  src : int;
  dst : int;
  port : int;
  distance : int;
  dim : int;
      (** loop-nest dimension carrying the dependence: 0 (default) = the
          region's own iteration axis; [d >= 1] = carried across
          iterations of the [d]-th enclosing loop dimension.  The
          effective distance in innermost iterations is
          [distance * stride(dim)] (see {!Region.stride}). *)
}

type t = {
  mutable next_id : int;
  ops : (int, op) Hashtbl.t;
  ins : (int, edge list ref) Hashtbl.t;  (** incoming edges, keyed by dst *)
  outs : (int, edge list ref) Hashtbl.t;  (** outgoing edges, keyed by src *)
}

let create () = { next_id = 0; ops = Hashtbl.create 64; ins = Hashtbl.create 64; outs = Hashtbl.create 64 }

let mem g id = Hashtbl.mem g.ops id

let find g id =
  match Hashtbl.find_opt g.ops id with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "Dfg.find: no op %d" id)

let find_opt g id = Hashtbl.find_opt g.ops id
let size g = Hashtbl.length g.ops

let add_op ?(guard = Guard.always) ?(name = "") ?anchor g kind ~width =
  let id = g.next_id in
  g.next_id <- id + 1;
  let name = if name = "" then Printf.sprintf "%s_%d" (Opkind.rclass_to_string (Opkind.rclass kind)) id else name in
  let op = { id; kind; width; guard; name; anchor; speculated = false } in
  Hashtbl.replace g.ops id op;
  Hashtbl.replace g.ins id (ref []);
  Hashtbl.replace g.outs id (ref []);
  op

let edges_ref tbl id =
  match Hashtbl.find_opt tbl id with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace tbl id r;
      r

let connect ?(distance = 0) ?(dim = 0) g ~src ~dst ~port =
  if not (mem g src) then invalid_arg "Dfg.connect: unknown src";
  if not (mem g dst) then invalid_arg "Dfg.connect: unknown dst";
  if distance < 0 then invalid_arg "Dfg.connect: negative distance";
  if dim < 0 then invalid_arg "Dfg.connect: negative dim";
  if dim > 0 && distance = 0 then invalid_arg "Dfg.connect: dim tag on a distance-0 edge";
  let e = { src; dst; port; distance; dim } in
  let inr = edges_ref g.ins dst in
  (* at most one edge per (dst, port) *)
  inr := e :: List.filter (fun e' -> e'.port <> port) !inr;
  let outr = edges_ref g.outs src in
  outr := e :: List.filter (fun e' -> not (e'.dst = dst && e'.port = port)) !outr

(** Replace an op's kind in place.  Intended for post-elaboration
    retiming of nest super-ops ([Call] latency patching); the new kind
    must keep the arity of the old one. *)
let set_kind g id kind =
  let op = find g id in
  let old_arity = Opkind.arity op.kind and new_arity = Opkind.arity kind in
  if old_arity >= 0 && new_arity >= 0 && old_arity <> new_arity then
    invalid_arg "Dfg.set_kind: arity change";
  op.kind <- kind

(** Incoming edges of [id], sorted by port. *)
let in_edges g id =
  match Hashtbl.find_opt g.ins id with
  | None -> []
  | Some r -> List.sort (fun a b -> compare a.port b.port) !r

let out_edges g id = match Hashtbl.find_opt g.outs id with None -> [] | Some r -> !r

(** Producer feeding input [port] of [id], if connected. *)
let input g id ~port = List.find_opt (fun e -> e.port = port) (in_edges g id)

(** All producers of [id] (ids, one per connected port, sorted by port). *)
let preds g id = List.map (fun e -> e.src) (in_edges g id)

(** All consumers of [id]'s result. *)
let succs g id = List.map (fun e -> e.dst) (out_edges g id)

let iter_ops g f = Hashtbl.iter (fun _ op -> f op) g.ops
let fold_ops g f acc = Hashtbl.fold (fun _ op acc -> f op acc) g.ops acc

(** Ops sorted by id (deterministic iteration order). *)
let ops g = List.sort (fun a b -> compare a.id b.id) (fold_ops g (fun op l -> op :: l) [])

let all_edges g =
  Hashtbl.fold (fun _ r acc -> List.rev_append !r acc) g.ins []
  |> List.sort (fun a b -> compare (a.dst, a.port) (b.dst, b.port))

(** [remove_op g id] deletes the op and all edges touching it.  Callers are
    responsible for having rewired consumers first. *)
let remove_op g id =
  Hashtbl.remove g.ops id;
  Hashtbl.remove g.ins id;
  Hashtbl.remove g.outs id;
  let strip tbl =
    Hashtbl.iter (fun _ r -> r := List.filter (fun e -> e.src <> id && e.dst <> id) !r) tbl
  in
  strip g.ins;
  strip g.outs

(** [replace_uses g ~old_id ~by] rewires every consumer of [old_id] to read
    from [by] instead (same ports and distances), and rewrites guards that
    mention [old_id] as a predicate. *)
let replace_uses g ~old_id ~by =
  let uses = out_edges g old_id in
  List.iter
    (fun e ->
      (* drop the old edge then reconnect *)
      let inr = edges_ref g.ins e.dst in
      inr := List.filter (fun e' -> not (e'.src = old_id && e'.port = e.port)) !inr;
      connect g ~src:by ~dst:e.dst ~port:e.port ~distance:e.distance ~dim:e.dim)
    uses;
  let outr = edges_ref g.outs old_id in
  outr := [];
  iter_ops g (fun op ->
      op.guard <- Guard.map_preds (fun p -> if p = old_id then by else p) op.guard)

(** Topological order over distance-0 edges.  Raises [Invalid_argument] if
    the zero-distance subgraph has a cycle (an ill-formed DFG: combinational
    cycles in the specification). *)
let topo_order g =
  let nodes = List.map (fun op -> op.id) (ops g) in
  let succs0 id =
    List.filter_map (fun e -> if e.distance = 0 then Some e.dst else None) (out_edges g id)
  in
  match Graph_algo.topo_sort ~nodes ~succs:succs0 with
  | Some order -> order
  | None -> invalid_arg "Dfg.topo_order: zero-distance cycle in DFG"

(** Strongly connected components over {e all} edges (including
    loop-carried ones).  Only components with more than one node, or with a
    self-loop, are returned: these are the SCCs that must be scheduled
    within one pipeline stage. *)
let sccs g =
  let nodes = List.map (fun op -> op.id) (ops g) in
  let succs id = List.map (fun e -> e.dst) (out_edges g id) in
  let comps = Graph_algo.scc ~nodes ~succs in
  List.filter
    (fun comp ->
      match comp with
      | [ x ] -> List.exists (fun e -> e.dst = x) (out_edges g x)
      | _ :: _ :: _ -> true
      | [] -> false)
    comps

(** Number of ops in the transitive fanout cone of [id] (distance-0 edges),
    used by the scheduling priority function. *)
let fanout_cone_size g id =
  let seen = Hashtbl.create 16 in
  let rec go id =
    List.iter
      (fun e ->
        if e.distance = 0 && not (Hashtbl.mem seen e.dst) then begin
          Hashtbl.replace seen e.dst ();
          go e.dst
        end)
      (out_edges g id)
  in
  go id;
  Hashtbl.length seen

(** Deep copy (fresh hashtables; ops are re-allocated so mutation of the
    copy never aliases the original). *)
let copy g =
  let g' =
    {
      next_id = g.next_id;
      ops = Hashtbl.create (Hashtbl.length g.ops);
      ins = Hashtbl.create (Hashtbl.length g.ins);
      outs = Hashtbl.create (Hashtbl.length g.outs);
    }
  in
  Hashtbl.iter (fun id op -> Hashtbl.replace g'.ops id { op with id = op.id }) g.ops;
  Hashtbl.iter (fun id r -> Hashtbl.replace g'.ins id (ref !r)) g.ins;
  Hashtbl.iter (fun id r -> Hashtbl.replace g'.outs id (ref !r)) g.outs;
  g'

(** Structural well-formedness: arities respected, edges reference live ops,
    guard predicates are 1-bit ops, loop_mux has its distance-1 edge. *)
let validate g =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  iter_ops g (fun op ->
      let ins = in_edges g op.id in
      let expected = Opkind.arity op.kind in
      if expected >= 0 && List.length ins <> expected then
        err "op %d (%s): arity %d, expected %d" op.id op.name (List.length ins) expected;
      List.iter
        (fun e ->
          if not (mem g e.src) then err "op %d: dangling input from %d" op.id e.src)
        ins;
      List.iter
        (fun a ->
          match find_opt g a.Guard.pred with
          | None -> err "op %d: guard references dead op %d" op.id a.Guard.pred
          | Some p -> if p.width <> 1 then err "op %d: guard pred %d is %d-bit" op.id p.id p.width)
        op.guard;
      (match op.kind with
      | Opkind.Loop_mux -> (
          match input g op.id ~port:1 with
          | Some e when e.distance >= 1 -> ()
          | Some _ -> err "loop_mux %d: carried input has distance 0" op.id
          | None -> err "loop_mux %d: missing carried input" op.id)
      | _ -> ());
      if op.width < 1 then err "op %d: width %d" op.id op.width);
  List.rev !errs

let pp_op fmt (op : op) =
  Format.fprintf fmt "%%%d = %s :%d%s%s" op.id (Opkind.to_string op.kind) op.width
    (if Guard.is_always op.guard then "" else Printf.sprintf " if %s" (Guard.to_string op.guard))
    (if op.name = "" then "" else " (* " ^ op.name ^ " *)")

let pp fmt g =
  List.iter
    (fun op ->
      let ins =
        String.concat ", "
          (List.map
             (fun e ->
               if e.distance = 0 then Printf.sprintf "%%%d" e.src
               else Printf.sprintf "%%%d@-%d" e.src e.distance)
             (in_edges g op.id))
      in
      Format.fprintf fmt "%a <- [%s]@." pp_op op ins)
    (ops g)
