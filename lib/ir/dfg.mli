(** The data-flow graph.

    Nodes are operations; edges are data dependencies
    [(src, dst, port, distance)] where [distance] is the inter-iteration
    distance: 0 for an ordinary dependency, [d >= 1] when the consumer
    reads the value produced [d] iterations earlier.  Cycles through
    positive-distance edges are exactly the strongly connected components
    that constrain pipelining (Section V of the paper). *)

type op = {
  id : int;
  mutable kind : Opkind.t;  (** mutate only via {!set_kind} *)
  mutable width : int;  (** result width in bits *)
  mutable guard : Guard.t;
  mutable name : string;  (** diagnostic name, e.g. ["mul1_op"] *)
  mutable anchor : int option;  (** pin to an exact control step *)
  mutable speculated : bool;  (** guard removed from the commit path *)
}

type edge = {
  src : int;
  dst : int;
  port : int;
  distance : int;
  dim : int;
      (** loop-nest dimension carrying the dependence: 0 (default) = the
          region's own (innermost) iteration axis; [d >= 1] = carried
          across iterations of the [d]-th enclosing loop dimension, so the
          effective distance in innermost iterations is
          [distance * stride(dim)] (see {!Region.stride}). *)
}

type t

val create : unit -> t
val mem : t -> int -> bool

val find : t -> int -> op
(** @raise Invalid_argument on unknown ids. *)

val find_opt : t -> int -> op option
val size : t -> int

val add_op : ?guard:Guard.t -> ?name:string -> ?anchor:int -> t -> Opkind.t -> width:int -> op

val connect : ?distance:int -> ?dim:int -> t -> src:int -> dst:int -> port:int -> unit
(** Connect [src]'s result to input [port] of [dst]; at most one edge per
    (dst, port) — reconnecting replaces.  [dim] (default 0) tags a
    loop-carried edge with its carrying nest dimension; tagging a
    distance-0 edge is an error. *)

val set_kind : t -> int -> Opkind.t -> unit
(** Replace an op's kind in place (post-elaboration retiming of nest
    super-ops, e.g. patching a [Call]'s latency once the inner kernel is
    scheduled).  @raise Invalid_argument on an arity change. *)

val in_edges : t -> int -> edge list
(** Incoming edges, sorted by port. *)

val out_edges : t -> int -> edge list

val input : t -> int -> port:int -> edge option
(** The edge feeding one input port, if connected. *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val iter_ops : t -> (op -> unit) -> unit
val fold_ops : t -> (op -> 'a -> 'a) -> 'a -> 'a

val ops : t -> op list
(** All ops sorted by id (deterministic iteration). *)

val all_edges : t -> edge list

val remove_op : t -> int -> unit
(** Delete the op and every edge touching it (rewire consumers first). *)

val replace_uses : t -> old_id:int -> by:int -> unit
(** Rewire every consumer of [old_id] to read [by] (same ports and
    distances) and rewrite guards mentioning [old_id]. *)

val topo_order : t -> int list
(** Topological order over distance-0 edges.
    @raise Invalid_argument on a zero-distance cycle. *)

val sccs : t -> int list list
(** Strongly connected components over all edges (loop-carried included);
    only multi-node components and self-loops are returned — the SCCs that
    must fit one pipeline stage. *)

val fanout_cone_size : t -> int -> int
(** Size of the transitive distance-0 fanout cone (priority input). *)

val copy : t -> t
(** Deep copy; mutating the copy never aliases the original. *)

val validate : t -> string list
(** Structural well-formedness report (empty = clean). *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
