(** Linear scheduling regions, optionally annotated as loop-nest nodes.

    After predicate conversion and loop linearization, each schedulable
    unit — typically the body of the (pipelined) main loop — is a straight
    line of control steps [0 .. n_steps-1], the structure the paper's pass
    scheduler consumes (Section V, Step I).

    A region references the design-wide {!Dfg.t} plus a membership set;
    producers outside the region are treated by the scheduler as
    registered, available from step 0.  For a pipelined region, two steps
    are {e equivalent} when congruent modulo II (they fold onto one kernel
    state).

    {b Loop nests.}  A counted 2-level nest is represented in one of two
    ways, both carrying a {!nest} annotation:
    - {e flattened} ([n_flattened = true]): the nest was collapsed by the
      frontend into a single region iterating over the combined induction
      counter, so the ordinary scheduler, fold and simulators apply
      unchanged; per-dimension IIs derive from the kernel II via
      {!per_dim_iis}.
    - {e hierarchical} ([n_flattened = false]): the region covers one
      dimension only, and the inner dimension appears as a fixed-latency
      multicycle super-op (see [Hls_core.Nest_sched]); loop-carried edges
      of an enclosing dimension are tagged with their [dim] and validated
      against [distance * stride dim] (the per-dimension modulo
      constraint). *)

type pipeline_spec = { ii : int  (** initiation interval, designer-given *) }

type dim = {
  nd_name : string;  (** source loop name of this dimension *)
  nd_trip : int;  (** static trip count *)
  nd_ii : int option;  (** designer-requested II along this dimension *)
}

type nest = {
  n_dims : dim list;  (** outermost first; the last entry is the innermost *)
  n_perfect : bool;  (** no statements between the nest's loop headers *)
  n_flattened : bool;
      (** this region is the flattened kernel of the nest (one combined
          induction counter); [false] for hierarchical composition *)
}

type t = {
  rname : string;
  dfg : Dfg.t;  (** the design-wide DFG (shared, not owned) *)
  members : (int, unit) Hashtbl.t;
  mutable n_steps : int;  (** current latency interval LI *)
  min_steps : int;
  max_steps : int;  (** designer latency bounds; relaxation stops here *)
  pipeline : pipeline_spec option;
  continue_cond : int option;
      (** loop region: op whose nonzero value means "iterate again" *)
  stall_cond : int option;
      (** stalling support: op whose zero value freezes the pipeline
          (ignored during scheduling, honoured by the controller) *)
  is_loop : bool;
  source_waits : int;  (** wait() states the source specified *)
  nest : nest option;  (** loop-nest metadata; [None] for ordinary regions *)
}

val create :
  ?min_steps:int ->
  ?max_steps:int ->
  ?pipeline:pipeline_spec ->
  ?continue_cond:int ->
  ?stall_cond:int ->
  ?is_loop:bool ->
  ?source_waits:int ->
  ?members:int list ->
  ?nest:nest ->
  name:string ->
  Dfg.t ->
  t
(** Membership defaults to every op currently in the DFG.  A pipelined
    region starts at LI = max(min_steps, II+1) — "exploration often starts
    from LI = II + 1" (Section V, condition 2). *)

val mem : t -> int -> bool

val nest : t -> nest option

val stride : t -> int -> int
(** [stride t d] is the stride of nest dimension [d] in innermost
    (kernel) iterations: the product of the trip counts of the [d]
    innermost dimensions (1 for [d = 0], nest or not).  A loop-carried
    edge tagged [dim = d] with logical distance [ld] has effective
    innermost distance [ld * stride t d]. *)

val flat_iters : t -> int
(** Product of the nest's trip counts (1 for ordinary regions). *)

val per_dim_iis : t -> kernel_ii:int -> int list
(** Achieved per-dimension initiation intervals, outermost first, given
    the kernel II actually scheduled; empty for ordinary regions. *)

val member_ops : t -> Dfg.op list
val n_members : t -> int

val ii : t -> int
(** The initiation interval; equals [n_steps] for sequential regions. *)

val is_pipelined : t -> bool

val n_stages : t -> int
(** PS = ceil(LI / II). *)

val stage_of_step : t -> int -> int

val steps_equivalent : t -> int -> int -> bool
(** Congruent modulo II (always false for distinct sequential steps). *)

val equivalent_steps : t -> int -> int list

val sccs : t -> int list list
(** SCCs of the member subgraph over all edges — the groups that must fit
    one pipeline stage.  Mux {e select} inputs count as control, not data,
    matching the paper's Fig. 3 SCC membership. *)

val add_step : t -> bool
(** Grow LI by one ("add state"); [false] when the bound forbids it. *)

val reset_steps : t -> int -> unit
(** @raise Invalid_argument outside the designer bounds. *)

val pp : Format.formatter -> t -> unit
