(** Linear scheduling regions.

    After predicate conversion and loop linearization, each schedulable unit
    of the design — typically the body of the (pipelined) main loop — is a
    straight-line sequence of control steps [0 .. n_steps-1].  This is
    exactly the structure the paper's pass scheduler consumes: "Converting
    the loop into a straight-line sequence of nodes in the CFG" (Section V,
    Step I.1).

    A region does not own a private DFG: it references the design-wide
    {!Dfg.t} together with a membership set, so that data edges crossing the
    region boundary (values computed before the loop, used inside it) stay
    visible.  A producer outside the region is treated by the scheduler as
    registered and available from step 0.

    For a pipelined region, [pipeline = Some { ii }] and two steps are
    {e equivalent} when they are congruent modulo [ii] (Section V, Step
    I.2); the scheduler folds them after a successful pass. *)

type pipeline_spec = { ii : int  (** initiation interval, designer-given *) }

type dim = {
  nd_name : string;  (** source loop name of this dimension *)
  nd_trip : int;  (** static trip count *)
  nd_ii : int option;  (** designer-requested II along this dimension *)
}

type nest = {
  n_dims : dim list;  (** outermost first; the last entry is the innermost *)
  n_perfect : bool;  (** no statements between the nest's loop headers *)
  n_flattened : bool;
      (** true when this region is the flattened kernel of the nest (one
          combined induction counter); false for the hierarchical
          composition, where the region covers one dimension only *)
}

type t = {
  rname : string;
  dfg : Dfg.t;  (** the design-wide DFG (shared, not owned) *)
  members : (int, unit) Hashtbl.t;  (** op ids scheduled within this region *)
  mutable n_steps : int;  (** current latency interval LI (number of states) *)
  min_steps : int;  (** designer lower latency bound *)
  max_steps : int;  (** designer upper latency bound; relaxation stops here *)
  pipeline : pipeline_spec option;
  continue_cond : int option;
      (** for a loop region: DFG op whose nonzero value means "iterate
          again" (the do_while condition) *)
  stall_cond : int option;
      (** "stalling loop" support (Section V, Step I.1): op whose zero value
          freezes the pipeline; ignored during scheduling, honoured by the
          generated controller *)
  is_loop : bool;
  source_waits : int;  (** number of wait() states the source specified *)
  nest : nest option;  (** loop-nest metadata; [None] for ordinary regions *)
}

let create ?(min_steps = 1) ?(max_steps = 64) ?pipeline ?continue_cond ?stall_cond
    ?(is_loop = false) ?(source_waits = 1) ?members ?nest ~name dfg =
  if min_steps < 1 then invalid_arg "Region.create: min_steps < 1";
  if max_steps < min_steps then invalid_arg "Region.create: max_steps < min_steps";
  (match pipeline with
  | Some { ii } when ii < 1 -> invalid_arg "Region.create: ii < 1"
  | _ -> ());
  let member_tbl = Hashtbl.create 64 in
  (match members with
  | Some ids -> List.iter (fun id -> Hashtbl.replace member_tbl id ()) ids
  | None -> Dfg.iter_ops dfg (fun op -> Hashtbl.replace member_tbl op.Dfg.id ()));
  let initial =
    match pipeline with
    | None -> min_steps
    | Some { ii } ->
        (* pipelined execution needs LI > II; exploration starts at II+1
           (Section V, condition 2) *)
        max min_steps (ii + 1)
  in
  {
    rname = name;
    dfg;
    members = member_tbl;
    n_steps = initial;
    min_steps;
    max_steps;
    pipeline;
    continue_cond;
    stall_cond;
    is_loop;
    source_waits;
    nest;
  }

let mem t id = Hashtbl.mem t.members id

(** {2 Loop-nest accessors} *)

let nest t = t.nest

(** Stride of nest dimension [d] in innermost (kernel) iterations: the
    product of the trip counts of the [d] innermost dimensions.  Dimension
    0 — the region's own iteration axis — always has stride 1, nest or
    not.  A loop-carried edge tagged [dim = d] with logical distance [ld]
    therefore has effective innermost distance [ld * stride t d]. *)
let stride t d =
  if d <= 0 then 1
  else
    match t.nest with
    | None -> 1
    | Some n ->
        let dims = List.rev n.n_dims in
        (* innermost first *)
        let rec go k acc = function
          | [] -> acc
          | dm :: rest -> if k >= d then acc else go (k + 1) (acc * max 1 dm.nd_trip) rest
        in
        go 0 1 dims

(** Total iterations of the flattened nest (product of all trip counts);
    1 for ordinary regions. *)
let flat_iters t =
  match t.nest with
  | None -> 1
  | Some n -> List.fold_left (fun acc d -> acc * max 1 d.nd_trip) 1 n.n_dims

(** Achieved per-dimension initiation intervals, outermost first, given
    the kernel II actually scheduled: the innermost dimension initiates
    every [kernel_ii] cycles and each enclosing dimension every
    [kernel_ii * stride] cycles.  Empty for ordinary regions. *)
let per_dim_iis t ~kernel_ii =
  match t.nest with
  | None -> []
  | Some n ->
      let ndims = List.length n.n_dims in
      List.mapi (fun i _ -> kernel_ii * stride t (ndims - 1 - i)) n.n_dims

(** Member ops, sorted by id. *)
let member_ops t =
  Dfg.fold_ops t.dfg (fun op acc -> if mem t op.Dfg.id then op :: acc else acc) []
  |> List.sort (fun a b -> compare a.Dfg.id b.Dfg.id)

let n_members t = Hashtbl.length t.members

let ii t = match t.pipeline with Some { ii } -> ii | None -> t.n_steps

let is_pipelined t = t.pipeline <> None

(** Number of pipeline stages PS = ceil(LI / II) (the paper assumes II
    divides LI for the folded kernel; we take the ceiling so intermediate
    LIs during relaxation are well-defined). *)
let n_stages t =
  match t.pipeline with Some { ii } -> (t.n_steps + ii - 1) / ii | None -> 1

(** Stage containing step [s]. *)
let stage_of_step t s = match t.pipeline with Some { ii } -> s / ii | None -> 0

(** Steps [a] and [b] are equivalent (will fold onto the same kernel state)
    iff congruent modulo II.  In a non-pipelined region no two distinct
    steps are equivalent. *)
let steps_equivalent t a b =
  match t.pipeline with Some { ii } -> a mod ii = b mod ii | None -> a = b

(** All steps equivalent to [s] within the current latency interval. *)
let equivalent_steps t s =
  match t.pipeline with
  | None -> [ s ]
  | Some { ii } ->
      let r = s mod ii in
      let rec go k acc = if k >= t.n_steps then List.rev acc else go (k + ii) (k :: acc) in
      go r []

(** Strongly connected components of the member subgraph (over all edges,
    including loop-carried ones): the op groups that must fit within one
    pipeline stage.

    Mux {e select} inputs (port 0) are treated as control, not data, when
    forming components — matching the paper's Fig. 3, where the [aver] SCC
    is [{loopMux, add_op, mul2_op, MUX}] without the comparator feeding the
    MUX select.  The selector still schedules inside the stage in practice,
    pulled in by its ordinary data dependencies. *)
let sccs t =
  let nodes = List.map (fun op -> op.Dfg.id) (member_ops t) in
  let succs id =
    List.filter_map
      (fun e ->
        let is_select =
          e.Dfg.port = 0 && (Dfg.find t.dfg e.Dfg.dst).Dfg.kind = Opkind.Mux
        in
        if mem t e.Dfg.dst && not is_select then Some e.Dfg.dst else None)
      (Dfg.out_edges t.dfg id)
  in
  let comps = Graph_algo.scc ~nodes ~succs in
  List.filter
    (fun comp ->
      match comp with
      | [ x ] -> List.exists (fun e -> e.Dfg.dst = x) (Dfg.out_edges t.dfg x)
      | _ :: _ :: _ -> true
      | [] -> false)
    comps

(** Grow the latency interval by one state (the "add state" relaxation).
    Returns [false] when the designer bound forbids it. *)
let add_step t =
  if t.n_steps >= t.max_steps then false
  else begin
    t.n_steps <- t.n_steps + 1;
    true
  end

let reset_steps t n =
  if n < t.min_steps || n > t.max_steps then invalid_arg "Region.reset_steps: out of bounds";
  t.n_steps <- n

let pp fmt t =
  Format.fprintf fmt "region %s: LI=%d (bounds %d..%d)%s, %d ops@." t.rname t.n_steps t.min_steps
    t.max_steps
    (match t.pipeline with Some { ii } -> Printf.sprintf ", II=%d" ii | None -> "")
    (n_members t)
