(** Incremental structural combinational-cycle detection.

    When the binder shares resources, the sharing multiplexers can create
    {e structural} combinational cycles that are never sensitized in any
    reachable control state (Fig. 6 of the paper: [add_16_16] chains into
    [add_32_16] in state s1 while [add_32_16] chains into [add_16_16] in
    state s2 — a false loop through the input muxes).  Rather than emit
    false-path constraints downstream, the paper's scheduler — and ours —
    {e avoids bindings that close such cycles}.

    Nodes are resource-instance ids; a directed edge [a -> b] is recorded
    whenever an op bound to instance [a] feeds, {e combinationally in the
    same control step}, an op bound to instance [b].  [would_close_cycle]
    answers whether adding an edge creates a loop; the check is a DFS from
    [dst] looking for [src]. *)

type t = {
  succs : (int, int list ref) Hashtbl.t;
  mutable n_edges : int;
}

let create () = { succs = Hashtbl.create 16; n_edges = 0 }

let succs_ref t n =
  match Hashtbl.find_opt t.succs n with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.succs n r;
      r

let succs t n = match Hashtbl.find_opt t.succs n with Some r -> !r | None -> []

let mem_edge t ~src ~dst = List.mem dst (succs t src)

(** Would adding [src -> dst] close a directed cycle?  (True in particular
    for a self-edge [src = dst]: a resource chained into itself.) *)
let would_close_cycle t ~src ~dst =
  src = dst || Hls_ir.Graph_algo.has_path ~from:dst ~target:src ~succs:(succs t)

(** Record the edge (idempotent).  Raises [Invalid_argument] if it would
    close a cycle — callers must test first. *)
let add_edge t ~src ~dst =
  if would_close_cycle t ~src ~dst then invalid_arg "Cycle_detector.add_edge: closes a cycle";
  if not (mem_edge t ~src ~dst) then begin
    let r = succs_ref t src in
    r := dst :: !r;
    t.n_edges <- t.n_edges + 1
  end

(** Drop every edge, returning the detector to its freshly-created state.
    Resets the successor table {e and} the edge count together — clearing
    [succs] alone would leave [n_edges] stale. *)
let clear t =
  Hashtbl.reset t.succs;
  t.n_edges <- 0

let remove_edge t ~src ~dst =
  match Hashtbl.find_opt t.succs src with
  | None -> ()
  | Some r ->
      if List.mem dst !r then begin
        r := List.filter (fun x -> x <> dst) !r;
        t.n_edges <- t.n_edges - 1
      end

let copy t =
  let succs = Hashtbl.create (Hashtbl.length t.succs) in
  Hashtbl.iter (fun k r -> Hashtbl.replace succs k (ref !r)) t.succs;
  { succs; n_edges = t.n_edges }

let n_edges t = t.n_edges
