(** Incremental structural combinational-cycle detection (Fig. 6 of the
    paper): sharing muxes can create {e structural} loops that are never
    sensitized; rather than emit false-path constraints downstream, the
    binder avoids the bindings that would close them.  Nodes are resource
    instances; an edge [a -> b] records a same-step combinational chain
    from an op on [a] to an op on [b]. *)

type t = { succs : (int, int list ref) Hashtbl.t; mutable n_edges : int }

val create : unit -> t
val succs : t -> int -> int list
val mem_edge : t -> src:int -> dst:int -> bool

val would_close_cycle : t -> src:int -> dst:int -> bool
(** True in particular for self-edges. *)

val add_edge : t -> src:int -> dst:int -> unit
(** Idempotent.  @raise Invalid_argument when the edge would close a
    cycle — callers must test first. *)

val remove_edge : t -> src:int -> dst:int -> unit

(** Drop every edge and reset the edge count — the fresh-detector state. *)
val clear : t -> unit
val copy : t -> t
val n_edges : t -> int
