(** Post-schedule validator: audits every invariant the generated hardware
    depends on over whatever the scheduler (or a degraded-tier baseline)
    produced.  Runs after every pass of the flow under [--paranoid], and is
    the single source of truth the property tests also call. *)

open Hls_ir
open Hls_core

type violation = {
  v_rule : string;  (** stable rule id, e.g. ["slot-collision"] *)
  v_message : string;
}

val run : ?check_timing:bool -> Region.t -> Scheduler.t -> Pipeline.t -> violation list
(** Audit a schedule and its fold.  Rules:
    - [placement]: every region member is placed within [0, LI);
    - [dep-order]: distance-0 dependencies are ordered (same-step chaining
      allowed for single-cycle producers; multi-cycle producers finish
      strictly earlier);
    - [modulo]: loop-carried edges satisfy the modulo constraint;
    - [slot-collision]: no two ops share an instance on equivalent steps
      unless their guards are mutually exclusive;
    - [timing]: the accurate netlist view reports no negative endpoint
      slack (skipped when [check_timing] is false — degraded baseline
      tiers are structurally valid but timing-naive);
    - [fold]: the folding invariants of {!Pipeline.validate} hold.

    Empty list = clean. *)

val to_strings : violation list -> string list
