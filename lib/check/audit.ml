(** Post-schedule validator.  See the interface for the rule catalogue;
    the logic mirrors what the property tests have always demanded of a
    successful schedule, factored here so the flow can audit every pass
    (and every degraded tier) under [--paranoid]. *)

open Hls_ir
open Hls_core
module Netlist = Hls_netlist.Netlist

type violation = { v_rule : string; v_message : string }

let to_strings vs = List.map (fun v -> Printf.sprintf "%s: %s" v.v_rule v.v_message) vs

let run ?(check_timing = true) (region : Region.t) (s : Scheduler.t) (fold : Pipeline.t) :
    violation list =
  let dfg = region.Region.dfg in
  let li = s.Scheduler.s_li in
  let ii = Region.ii region in
  let nl = s.Scheduler.s_binding.Binding.net in
  let lib = Netlist.lib nl in
  let viols = ref [] in
  let fail rule fmt =
    Printf.ksprintf (fun m -> viols := { v_rule = rule; v_message = m } :: !viols) fmt
  in
  (* placement: every member placed, within the latency interval *)
  List.iter
    (fun op ->
      match Netlist.placement nl op.Dfg.id with
      | None -> fail "placement" "op %d (%s) is not placed" op.Dfg.id op.Dfg.name
      | Some pl ->
          if pl.Netlist.pl_step < 0 || pl.Netlist.pl_finish > li - 1 then
            fail "placement" "op %d (%s) at steps %d..%d outside [0,%d)" op.Dfg.id op.Dfg.name
              pl.Netlist.pl_step pl.Netlist.pl_finish li)
    (Region.member_ops region);
  (* dependency ordering and modulo constraints *)
  Dfg.iter_ops dfg (fun op ->
      List.iter
        (fun e ->
          if Region.mem region e.Dfg.src && Region.mem region e.Dfg.dst then
            match (Netlist.placement nl e.Dfg.src, Netlist.placement nl e.Dfg.dst) with
            | Some sp, Some dp ->
                if e.Dfg.distance = 0 then begin
                  let p_op = Dfg.find dfg e.Dfg.src in
                  let min_step =
                    if Hls_techlib.Library.op_latency lib p_op.Dfg.kind > 1 then
                      sp.Netlist.pl_finish + 1
                    else sp.Netlist.pl_finish
                  in
                  if dp.Netlist.pl_step < min_step then
                    fail "dep-order" "edge %d->%d: consumer at step %d before producer finish %d"
                      e.Dfg.src e.Dfg.dst dp.Netlist.pl_step min_step
                end
                else if dp.Netlist.pl_step < sp.Netlist.pl_finish - (e.Dfg.distance * ii) + 1 then
                  fail "modulo" "loop-carried edge %d->%d (distance %d) violates the modulo constraint"
                    e.Dfg.src e.Dfg.dst e.Dfg.distance
            | _ -> ())
        (Dfg.in_edges dfg op.Dfg.id));
  (* busy discipline on equivalence classes of steps *)
  List.iter
    (fun (inst : Netlist.inst) ->
      let by_slot = Hashtbl.create 8 in
      List.iter
        (fun o ->
          match Netlist.placement nl o with
          | Some pl ->
              for st = pl.Netlist.pl_step to pl.Netlist.pl_finish do
                let slot = if Region.is_pipelined region then st mod ii else st in
                let prev = Option.value (Hashtbl.find_opt by_slot slot) ~default:[] in
                List.iter
                  (fun o' ->
                    if
                      not
                        (Guard.mutually_exclusive (Dfg.find dfg o).Dfg.guard
                           (Dfg.find dfg o').Dfg.guard)
                    then
                      fail "slot-collision" "ops %d and %d share instance %d on equivalent step %d"
                        o o' inst.Netlist.inst_id slot)
                  prev;
                Hashtbl.replace by_slot slot (o :: prev)
              done
          | None -> ())
        inst.Netlist.bound)
    (Netlist.insts nl);
  (* accurate timing is met *)
  if check_timing then begin
    let wns = Netlist.worst_slack nl in
    if wns < -0.001 then fail "timing" "negative endpoint slack: %.0f ps" wns
  end;
  (* folding invariants *)
  List.iter (fun m -> fail "fold" "%s" m) (Pipeline.validate s fold);
  List.rev !viols
