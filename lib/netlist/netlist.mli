(** Explicit datapath-netlist value with an incremental timing engine and a
    transactional what-if API ({!begin_trial} / {!commit} / {!rollback}).

    This layer owns the structural netlist state built by simultaneous
    scheduling-and-binding — instances, port sharing/mux structure,
    busy/occupancy tables, placements — and both arrival-time views
    (accurate with mux delays, naive without).  Policy (modulo constraints,
    dedication, forbidden pairs) lives above it in [Hls_core.Binding].

    The representation is dense: every hot per-op table is an int-indexed
    array with a pass stamp, so {!reset_pass} is O(1), unplacing an op is
    O(1) swap-remove, and {!propagate} runs a worklist deduplicated by op
    id that stops at unchanged arrivals.  [t] is abstract so the dense
    tables can evolve without touching callers. *)

open Hls_ir
open Hls_techlib

(** Which arrival view a query reads: [Accurate] includes every sharing-mux
    delay (the paper's netlist queries); [Naive] is the mux-free view a
    timing-unaware scheduler would believe. *)
type view = Accurate | Naive

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** op ids, most recent first *)
  mutable prealloc_shared : bool;
      (** instantiate input muxes even before a second op arrives *)
  added_by_expert : bool;
  mutable mux_cache : int list array option;
      (** per-port distinct sources, invalidated when [bound]/[rtype] change *)
  mutable mux_delays : float array option;
      (** memoized per-port mux delay, derived from [mux_cache] *)
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

type stats = {
  s_queries : int;  (** netlist timing queries (arrival recomputations) *)
  s_trials : int;
  s_commits : int;
  s_rollbacks : int;
  s_visits : int;
      (** cells examined by {!propagate} — bounded propagation stops at
          unchanged arrivals, so this stays well below the fanout cone *)
}

type t

val create : lib:Library.t -> clock_ps:float -> Region.t -> t
val stats : t -> stats

(** {2 Accessors for the abstract state} *)

val region : t -> Region.t
val lib : t -> Library.t
val clock_ps : t -> float
val dfg : t -> Dfg.t
val chain : t -> Hls_timing.Cycle_detector.t

val insts : t -> inst list
(** Instances in registration order (ascending id); memoized, so
    registering k instances costs O(k) amortized, not O(k²). *)

val n_insts : t -> int
(** Number of registered instances (= the next instance id). *)

val add_inst : ?added_by_expert:bool -> t -> Resource.t -> inst
val find_inst : t -> int -> inst

val reset_pass : ?keep_prealloc:bool -> t -> unit
(** Reset all pass-local state (placements, busy tables, arrivals, chain
    graph, any dangling trial) while keeping the resource set; recomputes
    each instance's [prealloc_shared] flag.  O(1) on the dense per-op
    tables (a pass-stamp bump).  [~keep_prealloc:true] skips the flag
    recompute — sound only when no instance was added since the flags
    were last computed (region membership is static). *)

(** {2 Placements} *)

val placement : t -> int -> placement option
val is_placed : t -> int -> bool

val iter_placements : t -> (int -> placement -> unit) -> unit
(** Visit every placed op in ascending id order. *)

val fold_placements : t -> (int -> placement -> 'a -> 'a) -> 'a -> 'a
(** Fold over placed ops in ascending id order. *)

val n_placed : t -> int

val ops_on_step : t -> int -> int list
(** Ops placed on a step, sorted ascending by id — served from a per-step
    bucket with a memoized sorted view, not a fold over all placements. *)

val slot : t -> int -> int
(** Modulo slot of a control step ([step mod II] when pipelined). *)

val busy_ops : t -> int -> int -> int list
(** [busy_ops t inst_id step] — ops occupying the instance in the step's slot. *)

val dump_busy : t -> ((int * int) * int list) list
(** Non-empty busy entries as [((inst, slot), sorted ops)], sorted — for
    tests and debugging dumps. *)

val op_latency : t -> Dfg.op -> int
val is_multicycle : t -> Dfg.op -> bool

(** {2 Transactions} *)

val in_trial : t -> bool

val begin_trial : t -> unit
(** Open a trial: subsequent mutations are journaled and arrival writes
    land in generation-stamped trial slots.  Raises [Invalid_argument] if a
    trial is already active. *)

val commit : t -> unit
(** Fold the trial arrivals into the committed view (O(touched ops)) and
    drop the undo log. *)

val rollback : t -> unit
(** Replay the structural undo log and abandon the trial arrivals (their
    generation stamp can never be read again). *)

(** {2 Structural mutators} — journaled while a trial is active *)

val place : t -> int -> step:int -> finish:int -> inst_opt:int option -> unit

val attach : t -> inst -> int -> unit
(** Bind an op id onto an instance (prepends to [bound], invalidates the
    mux caches).  Re-attaching an op already bound to the instance is a
    no-op: the mux structure cannot have changed, so the caches survive. *)

val set_rtype : t -> inst -> Resource.t -> unit
val occupy : t -> inst_id:int -> step:int -> finish:int -> int -> unit

(** {2 Mux structure} *)

val port_srcs : t -> inst -> port:int -> int list
(** Distinct sources feeding the port over the instance's bound ops
    (cached). *)

val mux_inputs : t -> inst -> port:int -> int

val mux_inputs_with : t -> inst -> port:int -> src:int -> int
(** Mux inputs of the port after a hypothetical bind of an op whose input
    on this port comes from [src]: a source already feeding the port adds
    no mux input. *)

val in_mux_delay : t -> inst -> port:int -> float
val reg_mux_delay : t -> float

(** {2 Timing queries} *)

val arrival : t -> view:view -> int -> float option
(** Current visible arrival of a placed op: the trial value when the
    active trial has written it, the committed value otherwise. *)

val committed_arrivals : t -> view -> (int * float) list
(** Committed arrivals of the view as [(op, arrival)], ascending by op id
    — for snapshot tests. *)

val source_arrival : t -> step:int -> view:view -> Dfg.edge -> float
val guard_arrival : t -> step:int -> view:view -> Dfg.op -> float
val exec_delay : t -> Dfg.op -> int option -> float

val recompute_arrival : t -> int -> bool
(** Recompute both arrival views of a placed op; true if the accurate view
    moved.  Counts as one netlist timing query. *)

val chained_consumers : t -> int -> int list
val endpoint_slack : t -> view:view -> int -> float

val screen_busy_reject :
  t ->
  decision:view ->
  op:Dfg.op ->
  step:int ->
  finish:int ->
  inst:inst ->
  changed_ports:int list ->
  bool
(** Saturation screen: [true] when binding [op] on [inst] provably breaks
    an already-bound cohabitant's timing strictly below the op's own exact
    slack — the full trial would reject with [F_busy] — all priced from
    committed state.  [false] means "run the real trial", never a wrong
    verdict.  [changed_ports] are the instance ports whose effective mux
    input count the bind grows. *)

val propagate : t -> decision:view -> int list -> float * int
(** Propagate arrival changes from the seed ops through same-step chains;
    returns the worst endpoint slack in the [decision] view and the op
    carrying it.  The worklist is deduplicated by op id and stops at ops
    whose arrival did not move, so the visited set is bounded by the
    region the change actually reaches, not the seeds' fanout cone. *)

val recompute_all : t -> unit
val chain_source_insts : t -> int -> step:int -> int list
val would_close_cycle : t -> src:int -> dst:int -> bool
val add_chain_edge : t -> src:int -> dst:int -> unit

(** {2 Reporting} *)

val registered_ops : t -> int list
val timing_report : t -> Hls_timing.Synthesize.report
val worst_slack : t -> float

(** {2 Reference evaluator — the oracle} *)

val reference_arrivals : t -> (int, float) Hashtbl.t * (int, float) Hashtbl.t
(** From-scratch recomputation of both arrival views (accurate, naive),
    ignoring all incremental state.  Does not touch the query counters. *)

val reference_deviation : t -> float
(** Worst absolute difference between the incremental arrival state and
    {!reference_arrivals} over all placed ops and both views. *)
