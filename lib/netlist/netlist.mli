(** Explicit datapath-netlist value with an incremental timing engine and a
    transactional what-if API ({!begin_trial} / {!commit} / {!rollback}).

    This layer owns the structural netlist state built by simultaneous
    scheduling-and-binding — instances, port sharing/mux structure,
    busy/occupancy tables, placements — and both arrival-time views
    (accurate with mux delays, naive without).  Policy (modulo constraints,
    dedication, forbidden pairs) lives above it in [Hls_core.Binding]. *)

open Hls_ir
open Hls_techlib

(** Which arrival view a query reads: [Accurate] includes every sharing-mux
    delay (the paper's netlist queries); [Naive] is the mux-free view a
    timing-unaware scheduler would believe. *)
type view = Accurate | Naive

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** op ids, most recent first *)
  mutable prealloc_shared : bool;
      (** instantiate input muxes even before a second op arrives *)
  added_by_expert : bool;
  mutable mux_cache : int list array option;
      (** per-port distinct sources, invalidated when [bound]/[rtype] change *)
  mutable mux_delays : float array option;
      (** memoized per-port mux delay, derived from [mux_cache] *)
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

(** One arrival value with a generation-stamped trial slot. *)
type cell = {
  mutable a_committed : float;
  mutable a_live : bool;  (** committed value present *)
  mutable a_trial : float;
  mutable a_gen : int;  (** trial generation that wrote [a_trial] *)
}

type stats = {
  s_queries : int;  (** netlist timing queries (arrival recomputations) *)
  s_trials : int;
  s_commits : int;
  s_rollbacks : int;
}

type undo
(** Structural undo-log entry (opaque; managed by the trial machinery). *)

type t = {
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  mutable insts : inst list;
  inst_tbl : (int, inst) Hashtbl.t;
  mutable next_inst_id : int;
  placements : (int, placement) Hashtbl.t;
  step_index : (int, int list ref) Hashtbl.t;
      (** step -> ops placed there (unsorted), kept in lockstep with
          [placements] *)
  guard_index : (int, int list ref) Hashtbl.t;
      (** guard predecessor -> placed ops whose guard reads it, kept in
          lockstep with [placements] *)
  busy : (int * int, int list ref) Hashtbl.t;  (** (inst, slot) -> bound ops *)
  arr_true : (int, cell) Hashtbl.t;
  arr_naive : (int, cell) Hashtbl.t;
  chain : Hls_timing.Cycle_detector.t;
  mutable generation : int;
  mutable trial_on : bool;
  mutable touched : int list;
  mutable undo_log : undo list;
  mutable n_queries : int;
  mutable n_trials : int;
  mutable n_commits : int;
  mutable n_rollbacks : int;
}

val create : lib:Library.t -> clock_ps:float -> Region.t -> t
val stats : t -> stats
val add_inst : ?added_by_expert:bool -> t -> Resource.t -> inst
val find_inst : t -> int -> inst

val reset_pass : ?keep_prealloc:bool -> t -> unit
(** Reset all pass-local state (placements, busy tables, arrivals, chain
    graph, any dangling trial) while keeping the resource set; recomputes
    each instance's [prealloc_shared] flag.  [~keep_prealloc:true] skips
    that recompute — sound only when no instance was added since the flags
    were last computed (region membership is static). *)

val placement : t -> int -> placement option
val is_placed : t -> int -> bool

val ops_on_step : t -> int -> int list
(** Ops placed on a step, sorted ascending by id — O(k log k) in the
    step's population via the per-step reverse index, not a fold over all
    placements. *)

val slot : t -> int -> int
(** Modulo slot of a control step ([step mod II] when pipelined). *)

val busy_ops : t -> int -> int -> int list
(** [busy_ops t inst_id step] — ops occupying the instance in the step's slot. *)

val op_latency : t -> Dfg.op -> int
val is_multicycle : t -> Dfg.op -> bool

(** {2 Transactions} *)

val in_trial : t -> bool

val begin_trial : t -> unit
(** Open a trial: subsequent mutations are journaled and arrival writes
    land in generation-stamped trial slots.  Raises [Invalid_argument] if a
    trial is already active. *)

val commit : t -> unit
(** Fold the trial arrivals into the committed view (O(touched ops)) and
    drop the undo log. *)

val rollback : t -> unit
(** Replay the structural undo log and abandon the trial arrivals (their
    generation stamp can never be read again). *)

(** {2 Structural mutators} — journaled while a trial is active *)

val place : t -> int -> step:int -> finish:int -> inst_opt:int option -> unit
val attach : t -> inst -> int -> unit
(** Bind an op id onto an instance (prepends to [bound], invalidates the
    mux caches). *)

val set_rtype : t -> inst -> Resource.t -> unit
val occupy : t -> inst_id:int -> step:int -> finish:int -> int -> unit

(** {2 Mux structure} *)

val port_srcs : t -> inst -> port:int -> int list
(** Distinct sources feeding the port over the instance's bound ops
    (cached). *)

val mux_inputs : t -> inst -> port:int -> int
val mux_inputs_with : t -> inst -> port:int -> src:int -> int
(** Mux inputs of the port after a hypothetical bind of an op whose input
    on this port comes from [src]: a source already feeding the port adds
    no mux input. *)

val in_mux_delay : t -> inst -> port:int -> float
val reg_mux_delay : t -> float

(** {2 Timing queries} *)

val arrival : t -> view:view -> int -> float option
(** Current visible arrival of a placed op: the trial value when the
    active trial has written it, the committed value otherwise. *)

val source_arrival : t -> step:int -> view:view -> Dfg.edge -> float
val guard_arrival : t -> step:int -> view:view -> Dfg.op -> float
val exec_delay : t -> Dfg.op -> int option -> float
val recompute_arrival : t -> int -> bool
(** Recompute both arrival views of a placed op; true if the accurate view
    moved.  Counts as one netlist timing query. *)

val chained_consumers : t -> int -> int list
val endpoint_slack : t -> view:view -> int -> float
val propagate : t -> decision:view -> int list -> float * int
(** Propagate arrival changes from the seed ops through same-step chains;
    returns the worst endpoint slack in the [decision] view and the op
    carrying it. *)

val recompute_all : t -> unit
val chain_source_insts : t -> int -> step:int -> int list
val would_close_cycle : t -> src:int -> dst:int -> bool
val add_chain_edge : t -> src:int -> dst:int -> unit

(** {2 Reporting} *)

val registered_ops : t -> int list
val timing_report : t -> Hls_timing.Synthesize.report
val worst_slack : t -> float

(** {2 Reference evaluator — the oracle} *)

val reference_arrivals : t -> (int, float) Hashtbl.t * (int, float) Hashtbl.t
(** From-scratch recomputation of both arrival views (accurate, naive),
    ignoring all incremental state.  Does not touch the query counters. *)

val reference_deviation : t -> float
(** Worst absolute difference between the incremental arrival state and
    {!reference_arrivals} over all placed ops and both views. *)
