(** Explicit datapath-netlist value with an incremental timing engine
    (Section IV.B's "logic-synthesis-grade" query model).

    This layer owns everything structural about the datapath being grown by
    simultaneous scheduling-and-binding: the resource instances, the port
    sharing/mux structure, the busy/occupancy tables, the placements, and
    the two arrival-time views of every bound op:

    - the {e accurate} view including all mux delays (what the paper's
      netlist queries return), and
    - the {e naive} view with pure operator delays (what a timing-unaware
      scheduler would believe).

    Mutations happen through a transactional what-if API:
    {!begin_trial} opens a trial, every mutation ({!place}, {!attach},
    {!set_rtype}, {!occupy}) is journaled in a structural undo log, and
    arrival writes land in generation-stamped trial slots of each arrival
    cell.  {!commit} folds the trial arrivals into the committed view in
    O(touched ops); {!rollback} replays the undo log and simply abandons
    the trial generation — stale trial stamps can never be read again
    because the next trial bumps the generation.

    {b Representation.}  Every hot table is a dense array indexed by op id
    (op ids are small and near-contiguous after elaboration): placements,
    both arrival-cell arrays, the per-step and per-guard reverse indexes,
    and the propagation worklist's membership stamps.  Each entry carries a
    pass stamp, so {!reset_pass} is O(1) on the per-op state — it bumps the
    stamp and every stale entry reads as absent.  The step and guard
    indexes use swap-remove with stored positions, so unplacing an op is
    O(1) instead of O(step population).  {!propagate} runs a worklist
    deduplicated by op id — an op already pending is not enqueued again —
    and stops at cells whose arrival did not move, so the visit count
    stays bounded by the changed region, not the full fanout cone.

    Policy (modulo constraints, dedication, forbidden pairs, restraint
    failures) lives above this layer in [Hls_core.Binding]; everything
    here is mechanism.  A from-scratch {!reference_arrivals} evaluator
    recomputes both views ignoring all incremental state and serves as the
    test oracle for the transaction machinery. *)

open Hls_ir
open Hls_techlib

type view = Accurate | Naive

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** op ids, most recent first *)
  mutable prealloc_shared : bool;
      (** instantiate input muxes even before a second op arrives *)
  added_by_expert : bool;
  mutable mux_cache : int list array option;
      (** per-port distinct sources, invalidated when [bound]/[rtype]
          change (the hottest query of the timing engine) *)
  mutable mux_delays : float array option;
      (** memoized per-port mux delay, derived from [mux_cache] *)
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

(** One arrival value with a generation-stamped trial slot and a pass
    stamp.  Read rule: a cell whose pass stamp is stale is absent; during
    a trial, a cell stamped with the current generation shows its trial
    value; otherwise the committed value (if any) shows through. *)
type cell = {
  mutable a_committed : float;
  mutable a_live : bool;  (** committed value present *)
  mutable a_trial : float;
  mutable a_gen : int;  (** trial generation that wrote [a_trial] *)
  mutable a_pass : int;  (** pass stamp: stale means the cell is absent *)
}

(** Structural undo log entry: each records the absolute prior value, so
    replaying the log newest-first leaves the oldest (pre-trial) value in
    place for every mutated location. *)
type undo =
  | U_place of int  (** placement was absent before the trial *)
  | U_replace of int * placement
  | U_bound of inst * int list
  | U_rtype of inst * Resource.t
  | U_mux of inst * int list array option * float array option
  | U_busy of int list ref * int list

type stats = {
  s_queries : int;  (** netlist timing queries (arrival recomputations) *)
  s_trials : int;
  s_commits : int;
  s_rollbacks : int;
  s_visits : int;
      (** cells examined by {!propagate} — bounded propagation stops at
          unchanged arrivals, so this stays well below the fanout cone *)
}

(** Growable per-step (or per-guard-pred) bucket of op ids, swap-removed
    in O(1) via the positions stored in the owner's [si_pos]/[gpos]
    arrays.  [b_gen] is the pass stamp: a stale bucket reads as empty.
    [b_sorted]/[b_dirty] cache the ascending-id view for {!ops_on_step}. *)
type bucket = {
  mutable b_a : int array;
  mutable b_len : int;
  mutable b_gen : int;
  mutable b_sorted : int list;
  mutable b_dirty : bool;
}

type t = {
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  mutable insts_rev : inst list;  (** newest first; see {!insts} *)
  mutable insts_memo : inst list option;  (** registration order *)
  inst_tbl : (int, inst) Hashtbl.t;  (** id -> instance, O(1) lookup *)
  mutable next_inst_id : int;
  mutable cap : int;  (** dense-array capacity: > every op id seen *)
  mutable pass_stamp : int;
      (** bumped by {!reset_pass}: per-op entries are live only when their
          stamp matches, making the reset O(1) on the dense state *)
  (* placements: op id -> (step, finish, inst or -1), live iff stamped *)
  mutable pl_gen : int array;
  mutable pl_step : int array;
  mutable pl_finish : int array;
  mutable pl_inst : int array;
  mutable cell_true : cell array;
  mutable cell_naive : cell array;
  mutable steps : bucket array;  (** step -> ops placed there *)
  mutable si_pos : int array;  (** op -> its position in its step bucket *)
  mutable gslots : bucket array;
      (** guard predecessor (op id) -> placed ops whose guard reads it *)
  mutable gpreds_c : int array option array;  (** op -> guard preds (static) *)
  mutable gpos : int array option array;
      (** op -> positions in each pred's bucket, parallel to [gpreds_c] *)
  busy : (int, int list ref) Hashtbl.t;
      (** (inst lsl 21) lor slot -> bound ops; slots are control steps,
          far below 2^21 *)
  chain : Hls_timing.Cycle_detector.t;
  mutable generation : int;
  mutable trial_on : bool;
  mutable touched : int list;  (** ops whose arrivals this trial wrote *)
  mutable undo_log : undo list;
  mutable n_queries : int;
  mutable n_trials : int;
  mutable n_commits : int;
  mutable n_rollbacks : int;
  mutable n_visits : int;
  (* static DFG caches (the graph and guards do not change during
     scheduling; only the [speculated] flag flips, which is read from the
     op record, not from these) *)
  mutable op_c : Dfg.op option array;
  mutable ins_c : Dfg.edge list option array;  (** in-edges, port-sorted *)
  mutable out0_c : int array option array;  (** distance-0 consumer ids *)
  mutable lat_c : int array;  (** op latency, -1 = not computed *)
  mutable rmem_c : int array;  (** region membership: 0 unknown / 1 in / 2 out *)
  mutable opdelay_c : float array;  (** exec delay off-instance, nan = unknown *)
  member_needs : Resource.t list;  (** static: resource needs of the members *)
  class_ops_memo : (Resource.t, int) Hashtbl.t;
      (** rtype -> members mergeable into it (static per region) *)
  (* propagation worklist: ring buffer + membership stamps for dedup *)
  mutable wl : int array;
  mutable wl_head : int;
  mutable wl_tail : int;
  mutable in_wl : int array;
  mutable prop_gen : int;
}

(* field accessors for the abstract [t] (the record itself stays private
   so the dense tables can evolve without touching callers) *)
let region t = t.region
let lib t = t.lib
let clock_ps t = t.clock_ps
let dfg t = t.dfg

let fresh_cell () =
  { a_committed = 0.0; a_live = false; a_trial = 0.0; a_gen = min_int; a_pass = 0 }

let fresh_bucket () = { b_a = [||]; b_len = 0; b_gen = 0; b_sorted = []; b_dirty = false }

let create ~lib ~clock_ps (region : Region.t) =
  let dfg = region.Region.dfg in
  let cap = 1 + Dfg.fold_ops dfg (fun op m -> max m op.Dfg.id) (-1) in
  let cap = max cap 16 in
  let member_needs =
    List.filter_map (fun op -> Resource.of_op dfg op) (Region.member_ops region)
  in
  {
    region;
    lib;
    clock_ps;
    dfg;
    insts_rev = [];
    insts_memo = Some [];
    inst_tbl = Hashtbl.create 16;
    next_inst_id = 0;
    cap;
    pass_stamp = 1;
    pl_gen = Array.make cap 0;
    pl_step = Array.make cap 0;
    pl_finish = Array.make cap 0;
    pl_inst = Array.make cap (-1);
    cell_true = Array.init cap (fun _ -> fresh_cell ());
    cell_naive = Array.init cap (fun _ -> fresh_cell ());
    steps = Array.init 64 (fun _ -> fresh_bucket ());
    si_pos = Array.make cap 0;
    gslots = Array.init cap (fun _ -> fresh_bucket ());
    gpreds_c = Array.make cap None;
    gpos = Array.make cap None;
    busy = Hashtbl.create 64;
    chain = Hls_timing.Cycle_detector.create ();
    generation = 0;
    trial_on = false;
    touched = [];
    undo_log = [];
    n_queries = 0;
    n_trials = 0;
    n_commits = 0;
    n_rollbacks = 0;
    n_visits = 0;
    op_c = Array.make cap None;
    ins_c = Array.make cap None;
    out0_c = Array.make cap None;
    lat_c = Array.make cap (-1);
    rmem_c = Array.make cap 0;
    opdelay_c = Array.make cap nan;
    member_needs;
    class_ops_memo = Hashtbl.create 8;
    wl = Array.make 256 0;
    wl_head = 0;
    wl_tail = 0;
    in_wl = Array.make cap 0;
    prop_gen = 0;
  }

let grow_arr a cap d =
  let b = Array.make cap d in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_with a cap f =
  Array.init cap (fun i -> if i < Array.length a then a.(i) else f ())

(* op ids are fixed before the netlist is created; this is a safety net
   for callers querying ids outside the original graph *)
let ensure_cap t id =
  if id >= t.cap then begin
    let cap = max (id + 1) (2 * t.cap) in
    t.pl_gen <- grow_arr t.pl_gen cap 0;
    t.pl_step <- grow_arr t.pl_step cap 0;
    t.pl_finish <- grow_arr t.pl_finish cap 0;
    t.pl_inst <- grow_arr t.pl_inst cap (-1);
    t.cell_true <- grow_with t.cell_true cap fresh_cell;
    t.cell_naive <- grow_with t.cell_naive cap fresh_cell;
    t.si_pos <- grow_arr t.si_pos cap 0;
    t.gslots <- grow_with t.gslots cap fresh_bucket;
    t.gpreds_c <- grow_arr t.gpreds_c cap None;
    t.gpos <- grow_arr t.gpos cap None;
    t.op_c <- grow_arr t.op_c cap None;
    t.ins_c <- grow_arr t.ins_c cap None;
    t.out0_c <- grow_arr t.out0_c cap None;
    t.lat_c <- grow_arr t.lat_c cap (-1);
    t.rmem_c <- grow_arr t.rmem_c cap 0;
    t.opdelay_c <- grow_arr t.opdelay_c cap nan;
    t.in_wl <- grow_arr t.in_wl cap 0;
    t.cap <- cap
  end

(* --- static DFG caches --- *)

let op_of t id =
  match t.op_c.(id) with
  | Some op -> op
  | None ->
      let op = Dfg.find t.dfg id in
      t.op_c.(id) <- Some op;
      op

let in_edges_of t id =
  match t.ins_c.(id) with
  | Some l -> l
  | None ->
      let l = Dfg.in_edges t.dfg id in
      t.ins_c.(id) <- Some l;
      l

let out0_of t id =
  match t.out0_c.(id) with
  | Some a -> a
  | None ->
      let a =
        Dfg.out_edges t.dfg id
        |> List.filter_map (fun e -> if e.Dfg.distance = 0 then Some e.Dfg.dst else None)
        |> Array.of_list
      in
      t.out0_c.(id) <- Some a;
      a

let gpreds_of t id =
  match t.gpreds_c.(id) with
  | Some a -> a
  | None ->
      let a = Array.of_list (Guard.preds (op_of t id).Dfg.guard) in
      t.gpreds_c.(id) <- Some a;
      a

let region_mem t id =
  if id >= t.cap then Region.mem t.region id
  else
    match t.rmem_c.(id) with
    | 1 -> true
    | 2 -> false
    | _ ->
        let m = Region.mem t.region id in
        t.rmem_c.(id) <- (if m then 1 else 2);
        m

let op_latency t (op : Dfg.op) =
  let id = op.Dfg.id in
  if id < t.cap then begin
    if t.lat_c.(id) < 0 then t.lat_c.(id) <- Library.op_latency t.lib op.Dfg.kind;
    t.lat_c.(id)
  end
  else Library.op_latency t.lib op.Dfg.kind

let lat_of t id = op_latency t (op_of t id)

let is_multicycle t op = op_latency t op > 1

(* --- instances --- *)

let stats t =
  { s_queries = t.n_queries; s_trials = t.n_trials; s_commits = t.n_commits;
    s_rollbacks = t.n_rollbacks; s_visits = t.n_visits }

let add_inst ?(added_by_expert = false) t rtype =
  let inst =
    { inst_id = t.next_inst_id; rtype; bound = []; prealloc_shared = false; added_by_expert;
      mux_cache = None; mux_delays = None }
  in
  t.next_inst_id <- t.next_inst_id + 1;
  t.insts_rev <- inst :: t.insts_rev;
  t.insts_memo <- None;
  Hashtbl.replace t.inst_tbl inst.inst_id inst;
  inst

(** Instances in registration order (ascending id); memoized, so the
    amortized cost of registering k instances is O(k), not O(k²). *)
let insts t =
  match t.insts_memo with
  | Some l -> l
  | None ->
      let l = List.rev t.insts_rev in
      t.insts_memo <- Some l;
      l

let n_insts t = t.next_inst_id

let find_inst t id = Hashtbl.find t.inst_tbl id

(** Reset all pass-local state (placements, busy tables, arrivals, chain
    graph, any dangling trial) while keeping the resource set — the state
    carried between scheduling passes.  O(1) on the dense per-op tables:
    bumping [pass_stamp] makes every stale entry read as absent. *)
let reset_pass ?(keep_prealloc = false) t =
  t.pass_stamp <- t.pass_stamp + 1;
  Hashtbl.reset t.busy;
  List.iter
    (fun i ->
      i.bound <- [];
      i.mux_cache <- None;
      i.mux_delays <- None)
    t.insts_rev;
  Hls_timing.Cycle_detector.clear t.chain;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  (* mark shared instances: a class with more candidate ops than instances
     will be shared, so its input muxes are pre-allocated (Fig. 8a).  The
     flags depend only on the region's membership and the instance set, so
     a caller that knows no instance was added since the last pass skips
     the recompute with [keep_prealloc].  Both counts are memoized per
     resource type — the member count permanently (membership is static),
     the instance count for this call — so the recompute is
     O(distinct types × (members + instances)), not O(instances²). *)
  if not keep_prealloc then begin
    let all = insts t in
    let n_insts_memo = Hashtbl.create 8 in
    let insts_of_class rt =
      match Hashtbl.find_opt n_insts_memo rt with
      | Some n -> n
      | None ->
          let n = List.length (List.filter (fun i -> Resource.can_merge i.rtype rt) all) in
          Hashtbl.add n_insts_memo rt n;
          n
    in
    let ops_of_class rt =
      match Hashtbl.find_opt t.class_ops_memo rt with
      | Some n -> n
      | None ->
          let n = List.length (List.filter (fun m -> Resource.can_merge m rt) t.member_needs) in
          Hashtbl.add t.class_ops_memo rt n;
          n
    in
    List.iter
      (fun inst -> inst.prealloc_shared <- ops_of_class inst.rtype > insts_of_class inst.rtype)
      all
  end

(* --- placements --- *)

let placed t op_id = op_id < t.cap && t.pl_gen.(op_id) = t.pass_stamp

let placement t op_id =
  if placed t op_id then
    Some
      {
        pl_step = t.pl_step.(op_id);
        pl_finish = t.pl_finish.(op_id);
        pl_inst = (let i = t.pl_inst.(op_id) in if i < 0 then None else Some i);
      }
  else None

let is_placed t op_id = placed t op_id

let iter_placements t f =
  for id = 0 to t.cap - 1 do
    if t.pl_gen.(id) = t.pass_stamp then
      f id
        {
          pl_step = t.pl_step.(id);
          pl_finish = t.pl_finish.(id);
          pl_inst = (let i = t.pl_inst.(id) in if i < 0 then None else Some i);
        }
  done

let fold_placements t f acc =
  let acc = ref acc in
  iter_placements t (fun id pl -> acc := f id pl !acc);
  !acc

let n_placed t =
  let n = ref 0 in
  for id = 0 to t.cap - 1 do
    if t.pl_gen.(id) = t.pass_stamp then incr n
  done;
  !n

let slot t step = if Region.is_pipelined t.region then step mod Region.ii t.region else step

(* busy keys pack (instance, slot) into one int: slots are control steps,
   bounded far below 2^21 by the region's latency interval *)
let busy_key inst s = (inst lsl 21) lor s

let busy_ref t inst step =
  let key = busy_key inst (slot t step) in
  match Hashtbl.find_opt t.busy key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.busy key r;
      r

let busy_ops t inst step = !(busy_ref t inst step)

let dump_busy t =
  Hashtbl.fold
    (fun key r acc ->
      if !r = [] then acc
      else ((key lsr 21, key land 0x1fffff), List.sort compare !r) :: acc)
    t.busy []
  |> List.sort compare

(* --- step index: step -> ops placed there --- *)

let step_bucket t step =
  if step >= Array.length t.steps then
    t.steps <- grow_with t.steps (max (step + 1) (2 * Array.length t.steps)) fresh_bucket;
  let b = t.steps.(step) in
  if b.b_gen <> t.pass_stamp then begin
    b.b_gen <- t.pass_stamp;
    b.b_len <- 0;
    b.b_sorted <- [];
    b.b_dirty <- false
  end;
  b

let bucket_push b x =
  if b.b_len = Array.length b.b_a then begin
    let a = Array.make (max 4 (2 * Array.length b.b_a)) 0 in
    Array.blit b.b_a 0 a 0 b.b_len;
    b.b_a <- a
  end;
  b.b_a.(b.b_len) <- x;
  b.b_len <- b.b_len + 1

(* [remove] consults the op's *current* placement, so it must run before
   the placement entry is changed *)
let step_index_remove t op_id =
  if placed t op_id then begin
    let b = step_bucket t t.pl_step.(op_id) in
    let p = t.si_pos.(op_id) in
    let last = b.b_len - 1 in
    if p <> last then begin
      let moved = b.b_a.(last) in
      b.b_a.(p) <- moved;
      t.si_pos.(moved) <- p
    end;
    b.b_len <- last;
    b.b_dirty <- true
  end

let step_index_add t op_id step =
  let b = step_bucket t step in
  bucket_push b op_id;
  t.si_pos.(op_id) <- b.b_len - 1;
  b.b_dirty <- true

let ops_on_step t step =
  if step >= Array.length t.steps then []
  else
    let b = t.steps.(step) in
    if b.b_gen <> t.pass_stamp || b.b_len = 0 then []
    else begin
      if b.b_dirty then begin
        b.b_sorted <- List.sort compare (Array.to_list (Array.sub b.b_a 0 b.b_len));
        b.b_dirty <- false
      end;
      b.b_sorted
    end

(* --- guard index: guard predecessor -> placed ops whose guard reads it.
   Membership depends only on the op being placed (the guard structure is
   static), so a re-placement needs no update.  Removal is O(#preds) via
   the positions stored in [gpos]. --- *)

let guard_bucket t pred =
  ensure_cap t pred;
  let b = t.gslots.(pred) in
  if b.b_gen <> t.pass_stamp then begin
    b.b_gen <- t.pass_stamp;
    b.b_len <- 0;
    b.b_sorted <- [];
    b.b_dirty <- false
  end;
  b

let guard_index_add t op_id =
  let gp = gpreds_of t op_id in
  if Array.length gp > 0 then begin
    let pos =
      match t.gpos.(op_id) with
      | Some a when Array.length a = Array.length gp -> a
      | _ ->
          let a = Array.make (Array.length gp) 0 in
          t.gpos.(op_id) <- Some a;
          a
    in
    Array.iteri
      (fun k p ->
        let b = guard_bucket t p in
        bucket_push b op_id;
        pos.(k) <- b.b_len - 1)
      gp
  end

let guard_index_remove t op_id =
  let gp = gpreds_of t op_id in
  if Array.length gp > 0 then
    match t.gpos.(op_id) with
    | None -> ()
    | Some pos ->
        Array.iteri
          (fun k p ->
            let b = guard_bucket t p in
            let i = pos.(k) in
            let last = b.b_len - 1 in
            if i <> last then begin
              let moved = b.b_a.(last) in
              b.b_a.(i) <- moved;
              (* fix the moved op's stored position for this predecessor *)
              match (t.gpos.(moved), t.gpreds_c.(moved)) with
              | Some mpos, Some mgp ->
                  let n = Array.length mgp in
                  let rec fix k' =
                    if k' < n then
                      if mgp.(k') = p && mpos.(k') = last then mpos.(k') <- i else fix (k' + 1)
                  in
                  fix 0
              | _ -> ()
            end;
            b.b_len <- last)
          gp

(* --- transactions --- *)

let in_trial t = t.trial_on

let begin_trial t =
  if t.trial_on then invalid_arg "Netlist.begin_trial: trial already active";
  t.generation <- t.generation + 1;
  t.trial_on <- true;
  t.touched <- [];
  t.undo_log <- [];
  t.n_trials <- t.n_trials + 1

let cell_of t view id =
  ensure_cap t id;
  let c = (match view with Accurate -> t.cell_true | Naive -> t.cell_naive).(id) in
  if c.a_pass <> t.pass_stamp then begin
    c.a_pass <- t.pass_stamp;
    c.a_live <- false;
    c.a_gen <- min_int
  end;
  c

let commit t =
  if not t.trial_on then invalid_arg "Netlist.commit: no active trial";
  List.iter
    (fun op ->
      let fold c =
        if c.a_pass = t.pass_stamp && c.a_gen = t.generation then begin
          c.a_committed <- c.a_trial;
          c.a_live <- true
        end
      in
      fold t.cell_true.(op);
      fold t.cell_naive.(op))
    t.touched;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  t.n_commits <- t.n_commits + 1

let unplace t op_id =
  step_index_remove t op_id;
  guard_index_remove t op_id;
  t.pl_gen.(op_id) <- 0

let rollback t =
  if not t.trial_on then invalid_arg "Netlist.rollback: no active trial";
  (* newest-first replay: the oldest entry for a location lands last and
     carries the pre-trial value.  Trial arrivals are simply abandoned —
     their generation stamp can never match again. *)
  List.iter
    (function
      | U_place op -> unplace t op
      | U_replace (op, pl) ->
          step_index_remove t op;
          t.pl_step.(op) <- pl.pl_step;
          t.pl_finish.(op) <- pl.pl_finish;
          t.pl_inst.(op) <- (match pl.pl_inst with Some i -> i | None -> -1);
          t.pl_gen.(op) <- t.pass_stamp;
          step_index_add t op pl.pl_step
      | U_bound (i, b) -> i.bound <- b
      | U_rtype (i, rt) -> i.rtype <- rt
      | U_mux (i, mc, md) ->
          i.mux_cache <- mc;
          i.mux_delays <- md
      | U_busy (r, l) -> r := l)
    t.undo_log;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  t.n_rollbacks <- t.n_rollbacks + 1

(** {2 Structural mutators} — journaled while a trial is active *)

let place t op_id ~step ~finish ~inst_opt =
  ensure_cap t op_id;
  let fresh = not (placed t op_id) in
  if t.trial_on then
    (match placement t op_id with
    | Some pl -> t.undo_log <- U_replace (op_id, pl) :: t.undo_log
    | None -> t.undo_log <- U_place op_id :: t.undo_log);
  if fresh then guard_index_add t op_id;
  step_index_remove t op_id;
  t.pl_step.(op_id) <- step;
  t.pl_finish.(op_id) <- finish;
  t.pl_inst.(op_id) <- (match inst_opt with Some i -> i | None -> -1);
  t.pl_gen.(op_id) <- t.pass_stamp;
  step_index_add t op_id step

let invalidate_mux t i =
  if t.trial_on then t.undo_log <- U_mux (i, i.mux_cache, i.mux_delays) :: t.undo_log;
  i.mux_cache <- None;
  i.mux_delays <- None

(** Insert [x] into an ascending duplicate-free list, keeping it so. *)
let rec sorted_insert x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: _ as l when x = y -> l
  | y :: rest -> y :: sorted_insert x rest

(** Bind an op onto an instance.  Re-attaching an op already bound to the
    instance is a no-op — the mux structure cannot have changed, so the
    caches survive and no arrival recomputation is triggered downstream.

    A warm mux cache is updated in place rather than invalidated: the new
    op contributes at most one source per port, so inserting each into the
    cached (sorted, duplicate-free) source lists reproduces exactly what a
    full rebuild over the grown bound list would compute — without the
    O(bound × ports) rescan every trial attach would otherwise pay.  Ports
    beyond the cached array stay uncached and fall back to the rebuild in
    {!port_srcs}. *)
let attach t i op_id =
  if not (List.mem op_id i.bound) then begin
    if t.trial_on then t.undo_log <- U_bound (i, i.bound) :: t.undo_log;
    i.bound <- op_id :: i.bound;
    match i.mux_cache with
    | None -> invalidate_mux t i
    | Some c ->
        if t.trial_on then t.undo_log <- U_mux (i, i.mux_cache, i.mux_delays) :: t.undo_log;
        let c' = Array.copy c in
        let changed = Array.make (Array.length c) false in
        List.iter
          (fun (e : Dfg.edge) ->
            let p = e.Dfg.port in
            if
              p < Array.length c'
              && (not (List.mem e.Dfg.src c'.(p)))
              && Dfg.input t.dfg op_id ~port:p = Some e
            then begin
              c'.(p) <- sorted_insert e.Dfg.src c'.(p);
              changed.(p) <- true
            end)
          (Dfg.in_edges t.dfg op_id);
        i.mux_cache <- Some c';
        (match i.mux_delays with
        | None -> ()
        | Some d ->
            let d' = Array.copy d in
            Array.iteri
              (fun p ch ->
                if ch && p < Array.length d' then begin
                  let n = List.length c'.(p) in
                  let n = if i.prealloc_shared then max n 2 else n in
                  d'.(p) <- Library.mux_delay t.lib ~inputs:n
                end)
              changed;
            i.mux_delays <- Some d')
  end

let set_rtype t i rt =
  if rt <> i.rtype then begin
    if t.trial_on then t.undo_log <- U_rtype (i, i.rtype) :: t.undo_log;
    i.rtype <- rt;
    invalidate_mux t i
  end

let occupy t ~inst_id ~step ~finish op_id =
  for s = step to finish do
    let r = busy_ref t inst_id s in
    if t.trial_on then t.undo_log <- U_busy (r, !r) :: t.undo_log;
    r := op_id :: !r
  done

(** {2 Mux structure} *)

(** Distinct sources feeding input [port] of [inst] over its bound ops.
    Cached per instance; every [bound]/[rtype] mutation clears the cache. *)
let port_srcs t (inst : inst) ~port =
  let srcs =
    match inst.mux_cache with
    | Some c when port < Array.length c -> c
    | _ ->
        let n_ports = max (port + 1) (List.length inst.rtype.Resource.in_widths) in
        let c =
          Array.init n_ports (fun p ->
              List.filter_map
                (fun o -> Option.map (fun e -> e.Dfg.src) (Dfg.input t.dfg o ~port:p))
                inst.bound
              |> List.sort_uniq compare)
        in
        (* derived state: rebuilding reflects the current bound/rtype, so a
           rebuild during a trial needs no journal entry of its own — the
           attach/set_rtype that changed the inputs already journaled the
           pre-trial caches *)
        inst.mux_cache <- Some c;
        inst.mux_delays <- None;
        c
  in
  if port < Array.length srcs then srcs.(port) else []

let mux_inputs t inst ~port =
  let n = List.length (port_srcs t inst ~port) in
  if inst.prealloc_shared then max n 2 else n

(** Mux inputs of [port] after a hypothetical bind of an op whose [port]
    input comes from [src]: a source already feeding the port adds no mux
    input. *)
let mux_inputs_with t inst ~port ~src =
  let l = port_srcs t inst ~port in
  let n = if List.mem src l then List.length l else List.length l + 1 in
  if inst.prealloc_shared then max n 2 else n

let in_mux_delay t inst ~port =
  match inst.mux_delays with
  | Some d when port < Array.length d -> d.(port)
  | _ ->
      ignore (port_srcs t inst ~port);
      (* the call above guarantees mux_cache covers [port] *)
      let c = match inst.mux_cache with Some c -> c | None -> [||] in
      let d =
        Array.init (Array.length c) (fun p ->
            Library.mux_delay t.lib ~inputs:(mux_inputs t inst ~port:p))
      in
      inst.mux_delays <- Some d;
      if port < Array.length d then d.(port)
      else Library.mux_delay t.lib ~inputs:(mux_inputs t inst ~port)

(** The register-input sharing mux every registered result passes (the
    second mux of the paper's Fig. 8 arithmetic).  With II = 1 every value
    is live on every cycle, so registers cannot be shared and the mux
    disappears — which is what lets the paper's Example 3 close timing. *)
let reg_mux_delay t =
  if Region.is_pipelined t.region && Region.ii t.region = 1 then 0.0
  else Library.mux_delay t.lib ~inputs:2

(** {2 Arrival state} *)

(** Raw visible arrival in [view]: the trial value when the active trial
    has written it, the committed value otherwise; [neg_infinity] when
    absent (so the hot path needs no option allocation). *)
let arrival_raw t view id =
  if id >= t.cap then neg_infinity
  else
    let c = (match view with Accurate -> t.cell_true | Naive -> t.cell_naive).(id) in
    if c.a_pass <> t.pass_stamp then neg_infinity
    else if t.trial_on && c.a_gen = t.generation then c.a_trial
    else if c.a_live then c.a_committed
    else neg_infinity

let arrival t ~view op_id =
  let v = arrival_raw t view op_id in
  if v = neg_infinity then None else Some v

let committed_arrivals t view =
  let arr = match view with Accurate -> t.cell_true | Naive -> t.cell_naive in
  let acc = ref [] in
  for id = t.cap - 1 downto 0 do
    let c = arr.(id) in
    if c.a_pass = t.pass_stamp && c.a_live then acc := (id, c.a_committed) :: !acc
  done;
  !acc

let set_arrivals t op_id ~tv ~nv =
  if t.trial_on then begin
    let ct = cell_of t Accurate op_id in
    if ct.a_gen <> t.generation then t.touched <- op_id :: t.touched;
    ct.a_gen <- t.generation;
    ct.a_trial <- tv;
    let cn = cell_of t Naive op_id in
    cn.a_gen <- t.generation;
    cn.a_trial <- nv
  end
  else begin
    let ct = cell_of t Accurate op_id in
    ct.a_committed <- tv;
    ct.a_live <- true;
    let cn = cell_of t Naive op_id in
    cn.a_committed <- nv;
    cn.a_live <- true
  end

(** {2 Arrival computation}

    The formula is written once, parameterized over the producer-arrival
    [lookup] (returning [neg_infinity] for "absent"), so the incremental
    engine and the from-scratch reference evaluator cannot drift apart. *)

(** Arrival of the value carried by edge [e] at the inputs of an op placed
    at [step], before any input mux. *)
let source_arrival_with t ~step ~lookup e =
  let ff = t.lib.Library.ff_clk_q in
  let p = e.Dfg.src in
  if e.Dfg.distance > 0 then ff
  else if not (region_mem t p) then ff
  else if not (placed t p) then ff (* should not happen: scheduler orders by readiness *)
  else if lat_of t p > 1 then ff
  else if t.pl_finish.(p) = step then (
    let v = lookup p in
    if v = neg_infinity then ff else v)
  else ff

let source_arrival t ~step ~view e =
  source_arrival_with t ~step ~lookup:(fun p -> arrival_raw t view p) e

let guard_arrival_with t ~step ~lookup (op : Dfg.op) =
  if op.Dfg.speculated || Guard.is_always op.Dfg.guard then 0.0
  else
    let ff = t.lib.Library.ff_clk_q in
    let gp = gpreds_of t op.Dfg.id in
    let acc = ref 0.0 in
    Array.iter
      (fun p ->
        let a =
          if (not (region_mem t p)) || not (placed t p) then ff
          else if t.pl_finish.(p) = step then (
            let v = lookup p in
            if v = neg_infinity then ff else v)
          else ff
        in
        if a > !acc then acc := a)
      gp;
    !acc

let guard_arrival t ~step ~view op =
  guard_arrival_with t ~step ~lookup:(fun p -> arrival_raw t view p) op

(** Combinational delay of [op] when executed on [inst_opt]. *)
let exec_delay t (op : Dfg.op) inst_opt =
  match inst_opt with
  | Some i -> Library.delay t.lib (find_inst t i).rtype
  | None ->
      let id = op.Dfg.id in
      if id < t.cap then begin
        if Float.is_nan t.opdelay_c.(id) then
          t.opdelay_c.(id) <-
            (match Resource.of_op t.dfg op with
            | None -> 0.0
            | Some rt -> Library.delay t.lib rt);
        t.opdelay_c.(id)
      end
      else
        (match Resource.of_op t.dfg op with None -> 0.0 | Some rt -> Library.delay t.lib rt)

(** One full arrival evaluation of [op] placed at [step] on instance
    [inst] (-1 for none); [with_mux] selects the accurate (mux-laden)
    formula. *)
let compute_arrival_with t ~lookup ~with_mux (op : Dfg.op) ~step ~inst =
  let ins = in_edges_of t op.Dfg.id in
  let data =
    List.fold_left
      (fun acc e ->
        let a = source_arrival_with t ~step ~lookup e in
        let a =
          if not with_mux then a
          else if inst >= 0 then a +. in_mux_delay t (find_inst t inst) ~port:e.Dfg.port
          else a
        in
        max acc a)
      (match op.Dfg.kind with
      | Opkind.Const _ -> 0.0
      | Opkind.Read _ -> t.lib.Library.ff_clk_q
      | _ -> if ins = [] then t.lib.Library.ff_clk_q else 0.0)
      ins
  in
  data +. exec_delay t op (if inst >= 0 then Some inst else None)

(** Recompute both arrival views of a placed op; returns true if the
    accurate view moved by more than 1 fs.  The guard does not serialize
    with the datapath — it drives the commit register's enable pin in
    parallel and is accounted for in {!endpoint_slack}. *)
let recompute_arrival t op_id =
  t.n_queries <- t.n_queries + 1;
  let op = op_of t op_id in
  let step = t.pl_step.(op_id) and inst = t.pl_inst.(op_id) in
  (* fused two-view evaluation: one walk over the in-edges computes both
     the accurate (mux-laden) and naive arrivals — same formulas as
     {!compute_arrival_with}, with the instance lookup hoisted out of the
     per-edge fold and no per-call lookup closures *)
  let ins = in_edges_of t op_id in
  let ff = t.lib.Library.ff_clk_q in
  let base =
    match op.Dfg.kind with
    | Opkind.Const _ -> 0.0
    | Opkind.Read _ -> ff
    | _ -> if ins = [] then ff else 0.0
  in
  let io = if inst >= 0 then Some (find_inst t inst) else None in
  let dt = ref base and dn = ref base in
  List.iter
    (fun (e : Dfg.edge) ->
      let p = e.Dfg.src in
      let live =
        e.Dfg.distance = 0 && region_mem t p && placed t p
        && not (lat_of t p > 1)
        && t.pl_finish.(p) = step
      in
      let at, an =
        if live then (
          let vt = arrival_raw t Accurate p and vn = arrival_raw t Naive p in
          ((if vt = neg_infinity then ff else vt), (if vn = neg_infinity then ff else vn)))
        else (ff, ff)
      in
      let at = match io with Some i -> at +. in_mux_delay t i ~port:e.Dfg.port | None -> at in
      dt := max !dt at;
      dn := max !dn an)
    ins;
  let ex = exec_delay t op (if inst >= 0 then Some inst else None) in
  let new_true = !dt +. ex in
  let new_naive = !dn +. ex in
  let old_true = arrival_raw t Accurate op_id in
  set_arrivals t op_id ~tv:new_true ~nv:new_naive;
  if old_true = neg_infinity then true else abs_float (old_true -. new_true) > 0.001

(** Same-step combinational consumers of a placed op (data or guard),
    i.e. the ops whose arrivals depend on this op's arrival. *)
let chained_consumers t op_id =
  if not (placed t op_id) then []
  else begin
    let step = t.pl_finish.(op_id) in
    let acc = ref [] in
    let outs = out0_of t op_id in
    for k = Array.length outs - 1 downto 0 do
      let dst = outs.(k) in
      if placed t dst && t.pl_step.(dst) = step then acc := dst :: !acc
    done;
    !acc
  end

(** Worst-case registered-endpoint slack of a placed op: its result must
    traverse the register-input mux and meet setup, and its commit enable
    (the guard, unless speculated) must also settle in time. *)
let endpoint_slack t ~view op_id =
  let arr =
    let v = arrival_raw t view op_id in
    if v = neg_infinity then 0.0 else v
  in
  let op = op_of t op_id in
  let g = if placed t op_id then guard_arrival t ~step:t.pl_finish.(op_id) ~view op else 0.0 in
  let reg_path = match view with Naive -> 0.0 | Accurate -> reg_mux_delay t in
  t.clock_ps -. (max arr g +. reg_path +. t.lib.Library.ff_setup)

(** {2 Saturation screen}

    Price a hypothetical bind of [op] at [step]..[finish] on [inst]
    against the committed state, without opening a transaction.
    [changed_ports] are the instance input ports whose effective mux
    input count the bind would grow (computed by the caller against the
    committed caches, first-edge-per-port semantics).

    Returns [true] when some already-bound cohabitant provably ends up
    with endpoint slack below the -1 fs tolerance {e and} strictly below
    the new op's own exact slack: the full trial is then guaranteed to
    fail with [worst_op <> op] — a busy rejection — so the caller can
    return [F_busy] without paying the transaction, the propagation and
    the rollback.  Soundness: every quantity is computed with the same
    formulas as {!recompute_arrival} / {!endpoint_slack}, with the grown
    mux delays substituted, so a priced cohabitant's value equals its
    settled in-trial slack; the trial's worst slack is at most that, and
    the op itself — strictly above it — cannot carry the minimum.  Any
    source or guard predecessor whose own arrival the bind might disturb
    (it reads a grown port, or a same-step chain connects it to one — or
    to the new op's result) makes the candidate unpriceable and the
    screen answers [false] — "run the real trial" — never a wrong
    verdict. *)
let screen_busy_reject t ~decision ~(op : Dfg.op) ~step ~finish ~(inst : inst)
    ~(changed_ports : int list) =
  (* only the accurate view reacts to mux growth *)
  if decision <> Accurate || changed_ports = [] then false
  else begin
    let ff = t.lib.Library.ff_clk_q in
    let exec = Library.delay t.lib inst.rtype in
    let grown =
      List.map
        (fun p ->
          let n = List.length (port_srcs t inst ~port:p) + 1 in
          let n = if inst.prealloc_shared then max n 2 else n in
          (p, Library.mux_delay t.lib ~inputs:n))
        changed_ports
    in
    let new_mux p =
      match List.assoc_opt p grown with
      | Some d -> d
      | None -> in_mux_delay t inst ~port:p
    in
    let reads_changed o = List.exists (fun p -> Dfg.input t.dfg o ~port:p <> None) changed_ports in
    (* would [id]'s committed arrival move under the hypothetical bind?
       True when it reads a grown port on [inst] or when the change (or
       the new op's result) reaches it through a same-step chain; deep
       chains bail out conservatively *)
    let rec affected depth id =
      depth > 8
      || (t.pl_inst.(id) = inst.inst_id && reads_changed id)
      ||
      let st = t.pl_step.(id) in
      List.exists
        (fun (e : Dfg.edge) ->
          e.Dfg.distance = 0
          &&
          if e.Dfg.src = op.Dfg.id then finish = st
          else
            let p = e.Dfg.src in
            region_mem t p && placed t p
            && not (lat_of t p > 1)
            && t.pl_finish.(p) = st
            && affected (depth + 1) p)
        (in_edges_of t id)
    in
    let guard_affected (o : Dfg.op) ~fstep =
      (not (o.Dfg.speculated || Guard.is_always o.Dfg.guard))
      && Array.exists
           (fun g ->
             if g = op.Dfg.id then finish = fstep
             else region_mem t g && placed t g && t.pl_finish.(g) = fstep && affected 0 g)
           (gpreds_of t o.Dfg.id)
    in
    let exception Unpriceable in
    (* exact endpoint slack of [o] executing on [inst] at [st]..[fstep]
       with the grown mux delays; raises when a committed input would
       itself move *)
    let hypo_slack (o : Dfg.op) ~st ~fstep =
      let ins = in_edges_of t o.Dfg.id in
      let base =
        match o.Dfg.kind with
        | Opkind.Const _ -> 0.0
        | Opkind.Read _ -> ff
        | _ -> if ins = [] then ff else 0.0
      in
      let data =
        List.fold_left
          (fun acc (e : Dfg.edge) ->
            let s = e.Dfg.src in
            let a =
              if e.Dfg.distance <> 0 then ff
              else if s = op.Dfg.id then
                if finish = st then raise Unpriceable else ff
              else if
                region_mem t s && placed t s && not (lat_of t s > 1) && t.pl_finish.(s) = st
              then begin
                if affected 0 s then raise Unpriceable;
                let v = arrival_raw t Accurate s in
                if v = neg_infinity then ff else v
              end
              else ff
            in
            max acc (a +. new_mux e.Dfg.port))
          base ins
      in
      let arr = data +. exec in
      if guard_affected o ~fstep then raise Unpriceable;
      let g = guard_arrival t ~step:fstep ~view:Accurate o in
      t.clock_ps -. (max arr g +. reg_mux_delay t +. t.lib.Library.ff_setup)
    in
    match hypo_slack op ~st:step ~fstep:finish with
    | exception Unpriceable -> false
    | s_op ->
        List.exists
          (fun o_id ->
            o_id <> op.Dfg.id && placed t o_id && reads_changed o_id
            &&
            match
              hypo_slack (op_of t o_id) ~st:t.pl_step.(o_id) ~fstep:t.pl_finish.(o_id)
            with
            | exception Unpriceable -> false
            | s -> s < -0.001 && s < s_op)
          inst.bound
  end

(* --- propagation worklist: FIFO ring with membership stamps --- *)

let wl_reset t =
  t.wl_head <- 0;
  t.wl_tail <- 0;
  t.prop_gen <- t.prop_gen + 1

let wl_push t id =
  (* dedup: an op already pending is recomputed once, with its inputs
     settled — the monotone max-fixpoint makes the result identical *)
  if t.in_wl.(id) <> t.prop_gen then begin
    t.in_wl.(id) <- t.prop_gen;
    (if t.wl_tail = Array.length t.wl then
       if t.wl_head > 0 then begin
         Array.blit t.wl t.wl_head t.wl 0 (t.wl_tail - t.wl_head);
         t.wl_tail <- t.wl_tail - t.wl_head;
         t.wl_head <- 0
       end
       else begin
         let a = Array.make (2 * Array.length t.wl) 0 in
         Array.blit t.wl 0 a 0 t.wl_tail;
         t.wl <- a
       end);
    t.wl.(t.wl_tail) <- id;
    t.wl_tail <- t.wl_tail + 1
  end

let wl_pop t =
  let id = t.wl.(t.wl_head) in
  t.wl_head <- t.wl_head + 1;
  t.in_wl.(id) <- 0;
  id

(** Propagate arrival changes from [seeds] through same-step chains.
    [decision] selects the view whose slack gates the result.  Returns the
    worst endpoint slack seen together with the op carrying it — so the
    caller can tell a failure of the new binding itself from collateral
    damage to ops already bound (a saturated instance).

    The worklist is deduplicated by op id and propagation stops at ops
    whose accurate arrival did not move, so the visited set is bounded by
    the region the change actually reaches — not the transitive fanout
    cone of the seeds.  Arrivals only grow inside a trial (mux growth and
    new chains), so every op's last recomputation is its settled value
    and the returned worst slack equals the full-fanout walk's. *)
let propagate t ~decision seeds =
  let worst = ref infinity in
  let worst_op = ref (-1) in
  wl_reset t;
  List.iter
    (fun s ->
      ensure_cap t s;
      wl_push t s)
    seeds;
  while t.wl_head < t.wl_tail do
    let id = wl_pop t in
    t.n_visits <- t.n_visits + 1;
    if placed t id then begin
      let changed = recompute_arrival t id in
      let slack = endpoint_slack t ~view:decision id in
      if slack < !worst then begin
        worst := slack;
        worst_op := id
      end;
      if changed then begin
        let fstep = t.pl_finish.(id) in
        let outs = out0_of t id in
        for k = 0 to Array.length outs - 1 do
          let dst = outs.(k) in
          if placed t dst && t.pl_step.(dst) = fstep then wl_push t dst
        done;
        if id < Array.length t.gslots then begin
          let b = t.gslots.(id) in
          if b.b_gen = t.pass_stamp then
            for k = 0 to b.b_len - 1 do
              let g = b.b_a.(k) in
              if placed t g && t.pl_step.(g) = fstep then wl_push t g
            done
        end
      end
    end
  done;
  (!worst, !worst_op)

(** Refresh every arrival from scratch through the incremental engine
    (processing in step order so chained arrivals settle). *)
let recompute_all t =
  let by_step =
    fold_placements t (fun id pl acc -> (pl.pl_step, id) :: acc) []
    |> List.sort compare |> List.map snd
  in
  ignore (propagate t ~decision:Accurate by_step)

(** Resource instances that combinationally feed [op] when placed at
    [step], tracing through same-step wire ops (for the structural-cycle
    check). *)
let chain_source_insts t op_id ~step =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      if placed t id && t.pl_finish.(id) = step && lat_of t id <= 1 then
        match t.pl_inst.(id) with
        | -1 ->
            List.iter
              (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src)
              (in_edges_of t id)
        | j -> acc := j :: !acc
    end
  in
  List.iter (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src) (in_edges_of t op_id);
  List.sort_uniq compare !acc

let would_close_cycle t ~src ~dst = Hls_timing.Cycle_detector.would_close_cycle t.chain ~src ~dst

let chain t = t.chain

let add_chain_edge t ~src ~dst =
  if not (Hls_timing.Cycle_detector.mem_edge t.chain ~src ~dst) then
    Hls_timing.Cycle_detector.add_edge t.chain ~src ~dst

(** {2 Reporting} *)

(** Values that must live in registers: results consumed in a later step,
    loop-carried values, and port writes.  Ascending id order. *)
let registered_ops t =
  List.rev
    (fold_placements t
       (fun id pl acc ->
         let op = op_of t id in
         let crosses =
           List.exists
             (fun e ->
               e.Dfg.distance > 0
               || (not (region_mem t e.Dfg.dst))
               || (if placed t e.Dfg.dst then t.pl_step.(e.Dfg.dst) > pl.pl_finish else true))
             (Dfg.out_edges t.dfg id)
         in
         let is_write = match op.Dfg.kind with Opkind.Write _ -> true | _ -> false in
         if crosses || is_write then id :: acc else acc)
       [])

(** Critical-path decomposition for the downstream-synthesis model: one
    path per registered endpoint, tracing the argmax chain backwards. *)
let timing_report t : Hls_timing.Synthesize.report =
  let paths =
    List.filter_map
      (fun endpoint ->
        let step = t.pl_finish.(endpoint) in
        let fixed = ref (reg_mux_delay t +. t.lib.Library.ff_setup) in
        let elems = ref [] in
        let rec back id =
          let op = op_of t id in
          let op_inst = t.pl_inst.(id) in
          (if op_inst >= 0 then
             let inst = find_inst t op_inst in
             elems :=
               {
                 Hls_timing.Synthesize.pe_inst = op_inst;
                 pe_rtype = inst.rtype;
                 pe_nominal = Library.delay t.lib inst.rtype;
               }
               :: !elems);
          (* find dominant input *)
          let best = ref None in
          List.iter
            (fun e ->
              let a = source_arrival t ~step ~view:Accurate e in
              let mux =
                if op_inst >= 0 then in_mux_delay t (find_inst t op_inst) ~port:e.Dfg.port
                else 0.0
              in
              let tot = a +. mux in
              match !best with
              | Some (_, _, bt) when bt >= tot -> ()
              | _ -> best := Some (e, mux, tot))
            (in_edges_of t id);
          match !best with
          | None ->
              fixed :=
                !fixed +. (match op.Dfg.kind with Opkind.Const _ -> 0.0 | _ -> t.lib.Library.ff_clk_q)
          | Some (e, mux, _) ->
              fixed := !fixed +. mux;
              let p = e.Dfg.src in
              let chained =
                e.Dfg.distance = 0
                && region_mem t p
                && placed t p
                && t.pl_finish.(p) = step
                && lat_of t p <= 1
              in
              if chained then back p else fixed := !fixed +. t.lib.Library.ff_clk_q
        in
        back endpoint;
        if !elems = [] then None
        else
          Some
            {
              Hls_timing.Synthesize.p_endpoint = (op_of t endpoint).Dfg.name;
              p_step = step;
              p_fixed = !fixed;
              p_elems = !elems;
            })
      (registered_ops t)
  in
  { Hls_timing.Synthesize.r_clock_ps = t.clock_ps; r_paths = paths }

(** Worst accurate endpoint slack over all placed ops. *)
let worst_slack t =
  fold_placements t (fun id _ acc -> min acc (endpoint_slack t ~view:Accurate id)) infinity

(** {2 Reference evaluator — the oracle} *)

(** From-scratch recomputation of both arrival views, ignoring every
    incremental structure (cells, journal, propagation order).  Sweeps the
    placed ops in (step, id) order to a fixpoint so same-step chains settle
    regardless of id order.  Does not touch the query counters. *)
let reference_arrivals t =
  let rt : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let rn : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let ids =
    fold_placements t (fun id pl acc -> ((pl.pl_step, id), id) :: acc) []
    |> List.sort compare |> List.map snd
  in
  let lookup tbl p = match Hashtbl.find_opt tbl p with Some v -> v | None -> neg_infinity in
  let sweep () =
    List.fold_left
      (fun changed id ->
        let op = op_of t id in
        let step = t.pl_step.(id) and inst = t.pl_inst.(id) in
        let v_true = compute_arrival_with t ~lookup:(lookup rt) ~with_mux:true op ~step ~inst in
        let v_naive =
          compute_arrival_with t ~lookup:(lookup rn) ~with_mux:false op ~step ~inst
        in
        let moved tbl v =
          match Hashtbl.find_opt tbl id with
          | Some o -> abs_float (o -. v) > 1e-9
          | None -> true
        in
        let c = moved rt v_true || moved rn v_naive in
        Hashtbl.replace rt id v_true;
        Hashtbl.replace rn id v_naive;
        changed || c)
      false ids
  in
  let rec fix n = if n > 0 && sweep () then fix (n - 1) in
  fix (List.length ids + 2);
  (rt, rn)

(** Worst absolute difference between the incremental arrival state and
    {!reference_arrivals}, over all placed ops and both views.  Zero (up
    to float noise) whenever the transaction machinery is correct. *)
let reference_deviation t =
  let rt, rn = reference_arrivals t in
  fold_placements t
    (fun id _ acc ->
      let dev tbl view =
        match (Hashtbl.find_opt tbl id, arrival t ~view id) with
        | Some r, Some a -> abs_float (r -. a)
        | Some r, None -> abs_float r
        | None, Some a -> abs_float a
        | None, None -> 0.0
      in
      max acc (max (dev rt Accurate) (dev rn Naive)))
    0.0
