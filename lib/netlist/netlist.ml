(** Explicit datapath-netlist value with an incremental timing engine
    (Section IV.B's "logic-synthesis-grade" query model).

    This layer owns everything structural about the datapath being grown by
    simultaneous scheduling-and-binding: the resource instances, the port
    sharing/mux structure, the busy/occupancy tables, the placements, and
    the two arrival-time views of every bound op:

    - the {e accurate} view including all mux delays (what the paper's
      netlist queries return), and
    - the {e naive} view with pure operator delays (what a timing-unaware
      scheduler would believe).

    Mutations happen through a transactional what-if API:
    {!begin_trial} opens a trial, every mutation ({!place}, {!attach},
    {!set_rtype}, {!occupy}) is journaled in a structural undo log, and
    arrival writes land in generation-stamped trial slots of each arrival
    cell.  {!commit} folds the trial arrivals into the committed view in
    O(touched ops); {!rollback} replays the undo log and simply abandons
    the trial generation — stale trial stamps can never be read again
    because the next trial bumps the generation.

    Policy (modulo constraints, dedication, forbidden pairs, restraint
    failures) lives above this layer in [Hls_core.Binding]; everything
    here is mechanism.  A from-scratch {!reference_arrivals} evaluator
    recomputes both views ignoring all incremental state and serves as the
    test oracle for the transaction machinery. *)

open Hls_ir
open Hls_techlib

type view = Accurate | Naive

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** op ids, most recent first *)
  mutable prealloc_shared : bool;
      (** instantiate input muxes even before a second op arrives *)
  added_by_expert : bool;
  mutable mux_cache : int list array option;
      (** per-port distinct sources, invalidated when [bound]/[rtype]
          change (the hottest query of the timing engine) *)
  mutable mux_delays : float array option;
      (** memoized per-port mux delay, derived from [mux_cache] *)
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

(** One arrival value with a generation-stamped trial slot.  Read rule:
    during a trial, a cell stamped with the current generation shows its
    trial value; otherwise the committed value (if any) shows through. *)
type cell = {
  mutable a_committed : float;
  mutable a_live : bool;  (** committed value present *)
  mutable a_trial : float;
  mutable a_gen : int;  (** trial generation that wrote [a_trial] *)
}

(** Structural undo log entry: each records the absolute prior value, so
    replaying the log newest-first leaves the oldest (pre-trial) value in
    place for every mutated location. *)
type undo =
  | U_place of int  (** placement was absent before the trial *)
  | U_replace of int * placement
  | U_bound of inst * int list
  | U_rtype of inst * Resource.t
  | U_mux of inst * int list array option * float array option
  | U_busy of int list ref * int list

type stats = {
  s_queries : int;  (** netlist timing queries (arrival recomputations) *)
  s_trials : int;
  s_commits : int;
  s_rollbacks : int;
}

type t = {
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  mutable insts : inst list;
  inst_tbl : (int, inst) Hashtbl.t;  (** id -> instance, O(1) lookup *)
  mutable next_inst_id : int;
  placements : (int, placement) Hashtbl.t;
  step_index : (int, int list ref) Hashtbl.t;
      (** step -> ops placed there (unsorted); kept in lockstep with
          [placements] so per-step queries avoid a full fold *)
  guard_index : (int, int list ref) Hashtbl.t;
      (** guard predecessor -> placed ops whose guard reads it; kept in
          lockstep with [placements] so [propagate] needs no per-call
          rebuild of the reverse guard map *)
  busy : (int * int, int list ref) Hashtbl.t;  (** (inst, slot) -> bound ops *)
  arr_true : (int, cell) Hashtbl.t;
  arr_naive : (int, cell) Hashtbl.t;
  chain : Hls_timing.Cycle_detector.t;
  mutable generation : int;
  mutable trial_on : bool;
  mutable touched : int list;  (** ops whose arrivals this trial wrote *)
  mutable undo_log : undo list;
  mutable n_queries : int;
  mutable n_trials : int;
  mutable n_commits : int;
  mutable n_rollbacks : int;
}

let create ~lib ~clock_ps (region : Region.t) =
  {
    region;
    lib;
    clock_ps;
    dfg = region.Region.dfg;
    insts = [];
    inst_tbl = Hashtbl.create 16;
    next_inst_id = 0;
    placements = Hashtbl.create 64;
    step_index = Hashtbl.create 64;
    guard_index = Hashtbl.create 16;
    busy = Hashtbl.create 64;
    arr_true = Hashtbl.create 64;
    arr_naive = Hashtbl.create 64;
    chain = Hls_timing.Cycle_detector.create ();
    generation = 0;
    trial_on = false;
    touched = [];
    undo_log = [];
    n_queries = 0;
    n_trials = 0;
    n_commits = 0;
    n_rollbacks = 0;
  }

let stats t =
  { s_queries = t.n_queries; s_trials = t.n_trials; s_commits = t.n_commits;
    s_rollbacks = t.n_rollbacks }

let add_inst ?(added_by_expert = false) t rtype =
  let inst =
    { inst_id = t.next_inst_id; rtype; bound = []; prealloc_shared = false; added_by_expert;
      mux_cache = None; mux_delays = None }
  in
  t.next_inst_id <- t.next_inst_id + 1;
  t.insts <- t.insts @ [ inst ];
  Hashtbl.replace t.inst_tbl inst.inst_id inst;
  inst

let find_inst t id = Hashtbl.find t.inst_tbl id

(** Reset all pass-local state (placements, busy tables, arrivals, chain
    graph, any dangling trial) while keeping the resource set — the state
    carried between scheduling passes. *)
let reset_pass ?(keep_prealloc = false) t =
  Hashtbl.reset t.placements;
  Hashtbl.reset t.step_index;
  Hashtbl.reset t.guard_index;
  Hashtbl.reset t.busy;
  Hashtbl.reset t.arr_true;
  Hashtbl.reset t.arr_naive;
  List.iter
    (fun i ->
      i.bound <- [];
      i.mux_cache <- None;
      i.mux_delays <- None)
    t.insts;
  Hls_timing.Cycle_detector.clear t.chain;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  (* mark shared instances: a class with more candidate ops than instances
     will be shared, so its input muxes are pre-allocated (Fig. 8a).  The
     flags depend only on the region's membership and the instance set, so
     a caller that knows no instance was added since the last pass skips
     the recompute with [keep_prealloc]. *)
  if not keep_prealloc then begin
    let member_needs =
      List.filter_map (fun op -> Resource.of_op t.dfg op) (Region.member_ops t.region)
    in
    let ops_by_class inst =
      List.length (List.filter (fun rt -> Resource.can_merge rt inst.rtype) member_needs)
    in
    List.iter
      (fun inst ->
        let n_insts =
          List.length (List.filter (fun i -> Resource.can_merge i.rtype inst.rtype) t.insts)
        in
        inst.prealloc_shared <- ops_by_class inst > n_insts)
      t.insts
  end

let placement t op_id = Hashtbl.find_opt t.placements op_id

let is_placed t op_id = Hashtbl.mem t.placements op_id

let slot t step = if Region.is_pipelined t.region then step mod Region.ii t.region else step

let busy_ref t inst step =
  let key = (inst, slot t step) in
  match Hashtbl.find_opt t.busy key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.busy key r;
      r

let busy_ops t inst step = !(busy_ref t inst step)

let op_latency t (op : Dfg.op) = Library.op_latency t.lib op.Dfg.kind

let is_multicycle t op = op_latency t op > 1

(** {2 Transactions} *)

let in_trial t = t.trial_on

let begin_trial t =
  if t.trial_on then invalid_arg "Netlist.begin_trial: trial already active";
  t.generation <- t.generation + 1;
  t.trial_on <- true;
  t.touched <- [];
  t.undo_log <- [];
  t.n_trials <- t.n_trials + 1

let commit t =
  if not t.trial_on then invalid_arg "Netlist.commit: no active trial";
  List.iter
    (fun op ->
      let fold tbl =
        match Hashtbl.find_opt tbl op with
        | Some c when c.a_gen = t.generation ->
            c.a_committed <- c.a_trial;
            c.a_live <- true
        | _ -> ()
      in
      fold t.arr_true;
      fold t.arr_naive)
    t.touched;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  t.n_commits <- t.n_commits + 1

(* step-index maintenance: [remove] consults the op's *current* placement,
   so it must run before the [placements] entry is changed *)
let step_index_remove t op_id =
  match Hashtbl.find_opt t.placements op_id with
  | None -> ()
  | Some pl -> (
      match Hashtbl.find_opt t.step_index pl.pl_step with
      | Some r -> r := List.filter (fun o -> o <> op_id) !r
      | None -> ())

let step_index_add t op_id step =
  match Hashtbl.find_opt t.step_index step with
  | Some r -> r := op_id :: !r
  | None -> Hashtbl.replace t.step_index step (ref [ op_id ])

let ops_on_step t step =
  match Hashtbl.find_opt t.step_index step with
  | None -> []
  | Some r -> List.sort compare !r

(* guard-index maintenance: membership depends only on the op being placed
   (the guard structure is static), so a re-placement needs no update *)
let guard_index_add t op_id =
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.guard_index p with
      | Some r -> r := op_id :: !r
      | None -> Hashtbl.replace t.guard_index p (ref [ op_id ]))
    (Guard.preds (Dfg.find t.dfg op_id).Dfg.guard)

let guard_index_remove t op_id =
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.guard_index p with
      | Some r -> r := List.filter (fun o -> o <> op_id) !r
      | None -> ())
    (Guard.preds (Dfg.find t.dfg op_id).Dfg.guard)

let rollback t =
  if not t.trial_on then invalid_arg "Netlist.rollback: no active trial";
  (* newest-first replay: the oldest entry for a location lands last and
     carries the pre-trial value.  Trial arrivals are simply abandoned —
     their generation stamp can never match again. *)
  List.iter
    (function
      | U_place op ->
          step_index_remove t op;
          guard_index_remove t op;
          Hashtbl.remove t.placements op
      | U_replace (op, pl) ->
          step_index_remove t op;
          Hashtbl.replace t.placements op pl;
          step_index_add t op pl.pl_step
      | U_bound (i, b) -> i.bound <- b
      | U_rtype (i, rt) -> i.rtype <- rt
      | U_mux (i, mc, md) ->
          i.mux_cache <- mc;
          i.mux_delays <- md
      | U_busy (r, l) -> r := l)
    t.undo_log;
  t.trial_on <- false;
  t.touched <- [];
  t.undo_log <- [];
  t.n_rollbacks <- t.n_rollbacks + 1

(** {2 Structural mutators} — journaled while a trial is active *)

let place t op_id ~step ~finish ~inst_opt =
  let fresh = not (Hashtbl.mem t.placements op_id) in
  if t.trial_on then
    (match Hashtbl.find_opt t.placements op_id with
    | Some pl -> t.undo_log <- U_replace (op_id, pl) :: t.undo_log
    | None -> t.undo_log <- U_place op_id :: t.undo_log);
  if fresh then guard_index_add t op_id;
  step_index_remove t op_id;
  Hashtbl.replace t.placements op_id { pl_step = step; pl_finish = finish; pl_inst = inst_opt };
  step_index_add t op_id step

let invalidate_mux t i =
  if t.trial_on then t.undo_log <- U_mux (i, i.mux_cache, i.mux_delays) :: t.undo_log;
  i.mux_cache <- None;
  i.mux_delays <- None

let attach t i op_id =
  if t.trial_on then t.undo_log <- U_bound (i, i.bound) :: t.undo_log;
  i.bound <- op_id :: i.bound;
  invalidate_mux t i

let set_rtype t i rt =
  if rt <> i.rtype then begin
    if t.trial_on then t.undo_log <- U_rtype (i, i.rtype) :: t.undo_log;
    i.rtype <- rt;
    invalidate_mux t i
  end

let occupy t ~inst_id ~step ~finish op_id =
  for s = step to finish do
    let r = busy_ref t inst_id s in
    if t.trial_on then t.undo_log <- U_busy (r, !r) :: t.undo_log;
    r := op_id :: !r
  done

(** {2 Mux structure} *)

(** Distinct sources feeding input [port] of [inst] over its bound ops.
    Cached per instance; every [bound]/[rtype] mutation clears the cache. *)
let port_srcs t (inst : inst) ~port =
  let srcs =
    match inst.mux_cache with
    | Some c when port < Array.length c -> c
    | _ ->
        let n_ports = max (port + 1) (List.length inst.rtype.Resource.in_widths) in
        let c =
          Array.init n_ports (fun p ->
              List.filter_map
                (fun o -> Option.map (fun e -> e.Dfg.src) (Dfg.input t.dfg o ~port:p))
                inst.bound
              |> List.sort_uniq compare)
        in
        (* derived state: rebuilding reflects the current bound/rtype, so a
           rebuild during a trial needs no journal entry of its own — the
           attach/set_rtype that changed the inputs already journaled the
           pre-trial caches *)
        inst.mux_cache <- Some c;
        inst.mux_delays <- None;
        c
  in
  if port < Array.length srcs then srcs.(port) else []

let mux_inputs t inst ~port =
  let n = List.length (port_srcs t inst ~port) in
  if inst.prealloc_shared then max n 2 else n

(** Mux inputs of [port] after a hypothetical bind of an op whose [port]
    input comes from [src]: a source already feeding the port adds no mux
    input. *)
let mux_inputs_with t inst ~port ~src =
  let l = port_srcs t inst ~port in
  let n = if List.mem src l then List.length l else List.length l + 1 in
  if inst.prealloc_shared then max n 2 else n

let in_mux_delay t inst ~port =
  match inst.mux_delays with
  | Some d when port < Array.length d -> d.(port)
  | _ ->
      ignore (port_srcs t inst ~port);
      (* the call above guarantees mux_cache covers [port] *)
      let c = match inst.mux_cache with Some c -> c | None -> [||] in
      let d =
        Array.init (Array.length c) (fun p ->
            Library.mux_delay t.lib ~inputs:(mux_inputs t inst ~port:p))
      in
      inst.mux_delays <- Some d;
      if port < Array.length d then d.(port)
      else Library.mux_delay t.lib ~inputs:(mux_inputs t inst ~port)

(** The register-input sharing mux every registered result passes (the
    second mux of the paper's Fig. 8 arithmetic).  With II = 1 every value
    is live on every cycle, so registers cannot be shared and the mux
    disappears — which is what lets the paper's Example 3 close timing. *)
let reg_mux_delay t =
  if Region.is_pipelined t.region && Region.ii t.region = 1 then 0.0
  else Library.mux_delay t.lib ~inputs:2

(** {2 Arrival state} *)

let table t = function Accurate -> t.arr_true | Naive -> t.arr_naive

(** Current visible arrival of a placed op in [view]: the trial value when
    the active trial has written it, the committed value otherwise. *)
let arrival t ~view op_id =
  match Hashtbl.find_opt (table t view) op_id with
  | None -> None
  | Some c ->
      if t.trial_on && c.a_gen = t.generation then Some c.a_trial
      else if c.a_live then Some c.a_committed
      else None

let find_cell tbl op_id =
  match Hashtbl.find_opt tbl op_id with
  | Some c -> c
  | None ->
      let c = { a_committed = 0.0; a_live = false; a_trial = 0.0; a_gen = min_int } in
      Hashtbl.replace tbl op_id c;
      c

let set_arrivals t op_id ~tv ~nv =
  if t.trial_on then begin
    let ct = find_cell t.arr_true op_id in
    if ct.a_gen <> t.generation then t.touched <- op_id :: t.touched;
    ct.a_gen <- t.generation;
    ct.a_trial <- tv;
    let cn = find_cell t.arr_naive op_id in
    cn.a_gen <- t.generation;
    cn.a_trial <- nv
  end
  else begin
    let ct = find_cell t.arr_true op_id in
    ct.a_committed <- tv;
    ct.a_live <- true;
    let cn = find_cell t.arr_naive op_id in
    cn.a_committed <- nv;
    cn.a_live <- true
  end

(** {2 Arrival computation}

    The formula is written once, parameterized over the producer-arrival
    [lookup], so the incremental engine and the from-scratch reference
    evaluator cannot drift apart. *)

(** Arrival of the value carried by edge [e] at the inputs of an op placed
    at [step], before any input mux. *)
let source_arrival_with t ~step ~lookup e =
  let ff = t.lib.Library.ff_clk_q in
  let p = e.Dfg.src in
  if e.Dfg.distance > 0 then ff
  else if not (Region.mem t.region p) then ff
  else
    match Hashtbl.find_opt t.placements p with
    | None -> ff (* should not happen: scheduler orders by readiness *)
    | Some pl ->
        let p_op = Dfg.find t.dfg p in
        if is_multicycle t p_op then ff
        else if pl.pl_finish = step then Option.value (lookup p) ~default:ff
        else ff

let source_arrival t ~step ~view e =
  source_arrival_with t ~step ~lookup:(fun p -> arrival t ~view p) e

let guard_arrival_with t ~step ~lookup (op : Dfg.op) =
  if op.Dfg.speculated || Guard.is_always op.Dfg.guard then 0.0
  else
    let ff = t.lib.Library.ff_clk_q in
    List.fold_left
      (fun acc p ->
        if not (Region.mem t.region p) then max acc ff
        else
          match Hashtbl.find_opt t.placements p with
          | Some pl when pl.pl_finish = step -> max acc (Option.value (lookup p) ~default:ff)
          | Some _ -> max acc ff
          | None -> max acc ff)
      0.0 (Guard.preds op.Dfg.guard)

let guard_arrival t ~step ~view op =
  guard_arrival_with t ~step ~lookup:(fun p -> arrival t ~view p) op

(** Combinational delay of [op] when executed on [inst_opt]. *)
let exec_delay t (op : Dfg.op) inst_opt =
  match inst_opt with
  | Some i -> Library.delay t.lib (find_inst t i).rtype
  | None -> (
      match Resource.of_op t.dfg op with None -> 0.0 | Some rt -> Library.delay t.lib rt)

(** One full arrival evaluation of [op] at its placement; [with_mux]
    selects the accurate (mux-laden) formula. *)
let compute_arrival_with t ~lookup ~with_mux (op : Dfg.op) (pl : placement) =
  let step = pl.pl_step in
  let ins = Dfg.in_edges t.dfg op.Dfg.id in
  let data =
    List.fold_left
      (fun acc e ->
        let a = source_arrival_with t ~step ~lookup e in
        let a =
          if not with_mux then a
          else
            match pl.pl_inst with
            | Some i -> a +. in_mux_delay t (find_inst t i) ~port:e.Dfg.port
            | None -> a
        in
        max acc a)
      (match op.Dfg.kind with
      | Opkind.Const _ -> 0.0
      | Opkind.Read _ -> t.lib.Library.ff_clk_q
      | _ -> if ins = [] then t.lib.Library.ff_clk_q else 0.0)
      ins
  in
  data +. exec_delay t op pl.pl_inst

(** Recompute both arrival views of a placed op; returns true if the
    accurate view moved by more than 1 fs.  The guard does not serialize
    with the datapath — it drives the commit register's enable pin in
    parallel and is accounted for in {!endpoint_slack}. *)
let recompute_arrival t op_id =
  t.n_queries <- t.n_queries + 1;
  let op = Dfg.find t.dfg op_id in
  let pl = Hashtbl.find t.placements op_id in
  let new_true =
    compute_arrival_with t ~lookup:(fun p -> arrival t ~view:Accurate p) ~with_mux:true op pl
  in
  let new_naive =
    compute_arrival_with t ~lookup:(fun p -> arrival t ~view:Naive p) ~with_mux:false op pl
  in
  let old_true = arrival t ~view:Accurate op_id in
  set_arrivals t op_id ~tv:new_true ~nv:new_naive;
  (match old_true with Some v -> abs_float (v -. new_true) > 0.001 | None -> true)

(** Same-step combinational consumers of a placed op (data or guard),
    i.e. the ops whose arrivals depend on this op's arrival. *)
let chained_consumers t op_id =
  match Hashtbl.find_opt t.placements op_id with
  | None -> []
  | Some pl ->
      let step = pl.pl_finish in
      List.filter_map
        (fun e ->
          if e.Dfg.distance <> 0 then None
          else
            match Hashtbl.find_opt t.placements e.Dfg.dst with
            | Some cpl when cpl.pl_step = step -> Some e.Dfg.dst
            | _ -> None)
        (Dfg.out_edges t.dfg op_id)

(** Worst-case registered-endpoint slack of a placed op: its result must
    traverse the register-input mux and meet setup, and its commit enable
    (the guard, unless speculated) must also settle in time. *)
let endpoint_slack t ~view op_id =
  let arr = Option.value (arrival t ~view op_id) ~default:0.0 in
  let op = Dfg.find t.dfg op_id in
  let g =
    match Hashtbl.find_opt t.placements op_id with
    | Some pl -> guard_arrival t ~step:pl.pl_finish ~view op
    | None -> 0.0
  in
  let reg_path = match view with Naive -> 0.0 | Accurate -> reg_mux_delay t in
  t.clock_ps -. (max arr g +. reg_path +. t.lib.Library.ff_setup)

(** Propagate arrival changes from [seeds] through same-step chains.
    [decision] selects the view whose slack gates the result.  Returns the
    worst endpoint slack seen together with the op carrying it — so the
    caller can tell a failure of the new binding itself from collateral
    damage to ops already bound (a saturated instance). *)
let propagate t ~decision seeds =
  let worst = ref infinity in
  let worst_op = ref (-1) in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) seeds;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if Hashtbl.mem t.placements id then begin
      let changed = recompute_arrival t id in
      let slack = endpoint_slack t ~view:decision id in
      if slack < !worst then begin
        worst := slack;
        worst_op := id
      end;
      if changed then begin
        List.iter (fun c -> Queue.add c queue) (chained_consumers t id);
        match Hashtbl.find_opt t.guard_index id with
        | Some r ->
            let pl = Hashtbl.find t.placements id in
            List.iter
              (fun g ->
                match Hashtbl.find_opt t.placements g with
                | Some gpl when gpl.pl_step = pl.pl_finish -> Queue.add g queue
                | _ -> ())
              !r
        | None -> ()
      end
    end
  done;
  (!worst, !worst_op)

(** Refresh every arrival from scratch through the incremental engine
    (processing in step order so chained arrivals settle). *)
let recompute_all t =
  let by_step =
    Hashtbl.fold (fun id pl acc -> (pl.pl_step, id) :: acc) t.placements []
    |> List.sort compare |> List.map snd
  in
  ignore (propagate t ~decision:Accurate by_step)

(** Resource instances that combinationally feed [op] when placed at
    [step], tracing through same-step wire ops (for the structural-cycle
    check). *)
let chain_source_insts t op_id ~step =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt t.placements id with
      | Some pl when pl.pl_finish = step && not (is_multicycle t (Dfg.find t.dfg id)) -> (
          match pl.pl_inst with
          | Some j -> acc := j :: !acc
          | None ->
              List.iter
                (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src)
                (Dfg.in_edges t.dfg id))
      | _ -> ()
    end
  in
  List.iter (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src) (Dfg.in_edges t.dfg op_id);
  List.sort_uniq compare !acc

let would_close_cycle t ~src ~dst = Hls_timing.Cycle_detector.would_close_cycle t.chain ~src ~dst

let add_chain_edge t ~src ~dst =
  if not (Hls_timing.Cycle_detector.mem_edge t.chain ~src ~dst) then
    Hls_timing.Cycle_detector.add_edge t.chain ~src ~dst

(** {2 Reporting} *)

(** Values that must live in registers: results consumed in a later step,
    loop-carried values, and port writes. *)
let registered_ops t =
  Hashtbl.fold
    (fun id pl acc ->
      let op = Dfg.find t.dfg id in
      let crosses =
        List.exists
          (fun e ->
            e.Dfg.distance > 0
            || (not (Region.mem t.region e.Dfg.dst))
            ||
            match Hashtbl.find_opt t.placements e.Dfg.dst with
            | Some cpl -> cpl.pl_step > pl.pl_finish
            | None -> true)
          (Dfg.out_edges t.dfg id)
      in
      let is_write = match op.Dfg.kind with Opkind.Write _ -> true | _ -> false in
      if crosses || is_write then id :: acc else acc)
    t.placements []
  |> List.sort compare

(** Critical-path decomposition for the downstream-synthesis model: one
    path per registered endpoint, tracing the argmax chain backwards. *)
let timing_report t : Hls_timing.Synthesize.report =
  let paths =
    List.filter_map
      (fun endpoint ->
        let pl = Hashtbl.find t.placements endpoint in
        let step = pl.pl_finish in
        let fixed = ref (reg_mux_delay t +. t.lib.Library.ff_setup) in
        let elems = ref [] in
        let rec back id =
          let op = Dfg.find t.dfg id in
          let opl = Hashtbl.find t.placements id in
          (match opl.pl_inst with
          | Some i ->
              let inst = find_inst t i in
              elems :=
                {
                  Hls_timing.Synthesize.pe_inst = i;
                  pe_rtype = inst.rtype;
                  pe_nominal = Library.delay t.lib inst.rtype;
                }
                :: !elems
          | None -> ());
          (* find dominant input *)
          let best = ref None in
          List.iter
            (fun e ->
              let a = source_arrival t ~step ~view:Accurate e in
              let mux =
                match opl.pl_inst with
                | Some i -> in_mux_delay t (find_inst t i) ~port:e.Dfg.port
                | None -> 0.0
              in
              let tot = a +. mux in
              match !best with
              | Some (_, _, bt) when bt >= tot -> ()
              | _ -> best := Some (e, mux, tot))
            (Dfg.in_edges t.dfg id);
          match !best with
          | None ->
              fixed :=
                !fixed +. (match op.Dfg.kind with Opkind.Const _ -> 0.0 | _ -> t.lib.Library.ff_clk_q)
          | Some (e, mux, _) ->
              fixed := !fixed +. mux;
              let p = e.Dfg.src in
              let chained =
                e.Dfg.distance = 0
                && Region.mem t.region p
                &&
                match Hashtbl.find_opt t.placements p with
                | Some ppl -> ppl.pl_finish = step && not (is_multicycle t (Dfg.find t.dfg p))
                | None -> false
              in
              if chained then back p else fixed := !fixed +. t.lib.Library.ff_clk_q
        in
        back endpoint;
        if !elems = [] then None
        else
          Some
            {
              Hls_timing.Synthesize.p_endpoint = (Dfg.find t.dfg endpoint).Dfg.name;
              p_step = step;
              p_fixed = !fixed;
              p_elems = !elems;
            })
      (registered_ops t)
  in
  { Hls_timing.Synthesize.r_clock_ps = t.clock_ps; r_paths = paths }

(** Worst accurate endpoint slack over all placed ops. *)
let worst_slack t =
  Hashtbl.fold (fun id _ acc -> min acc (endpoint_slack t ~view:Accurate id)) t.placements infinity

(** {2 Reference evaluator — the oracle} *)

(** From-scratch recomputation of both arrival views, ignoring every
    incremental structure (cells, journal, propagation order).  Sweeps the
    placed ops in (step, id) order to a fixpoint so same-step chains settle
    regardless of id order.  Does not touch the query counters. *)
let reference_arrivals t =
  let rt : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let rn : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let ids =
    Hashtbl.fold (fun id pl acc -> ((pl.pl_step, id), id) :: acc) t.placements []
    |> List.sort compare |> List.map snd
  in
  let sweep () =
    List.fold_left
      (fun changed id ->
        let op = Dfg.find t.dfg id in
        let pl = Hashtbl.find t.placements id in
        let v_true = compute_arrival_with t ~lookup:(Hashtbl.find_opt rt) ~with_mux:true op pl in
        let v_naive = compute_arrival_with t ~lookup:(Hashtbl.find_opt rn) ~with_mux:false op pl in
        let moved tbl v =
          match Hashtbl.find_opt tbl id with
          | Some o -> abs_float (o -. v) > 1e-9
          | None -> true
        in
        let c = moved rt v_true || moved rn v_naive in
        Hashtbl.replace rt id v_true;
        Hashtbl.replace rn id v_naive;
        changed || c)
      false ids
  in
  let rec fix n = if n > 0 && sweep () then fix (n - 1) in
  fix (List.length ids + 2);
  (rt, rn)

(** Worst absolute difference between the incremental arrival state and
    {!reference_arrivals}, over all placed ops and both views.  Zero (up
    to float noise) whenever the transaction machinery is correct. *)
let reference_deviation t =
  let rt, rn = reference_arrivals t in
  Hashtbl.fold
    (fun id _ acc ->
      let dev tbl view =
        match (Hashtbl.find_opt tbl id, arrival t ~view id) with
        | Some r, Some a -> abs_float (r -. a)
        | Some r, None -> abs_float r
        | None, Some a -> abs_float a
        | None, None -> 0.0
      in
      max acc (max (dev rt Accurate) (dev rn Naive)))
    t.placements 0.0
