(** Semantic checks on lowered designs (run after {!Desugar}): port and
    variable declarations, shadowing, read-before-write, loop placement
    and attributes, slice/width sanity, single schedulable main loop.
    Errors are collected so a user sees all problems at once. *)

type error = string

val run : Ast.design -> error list
(** Empty = valid. *)

val run_exn : Ast.design -> unit
(** @raise Fault.Error (code ["check"]) with a combined message. *)
