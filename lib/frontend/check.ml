(** Semantic checks on lowered designs (run after {!Desugar}).

    Errors are collected, not raised, so a frontend user sees all problems
    at once. *)

open Ast

type error = string

let check_expr ~design ~defined errs e =
  let errs = ref errs in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun p ->
      if not (List.mem_assoc p design.d_ins) then err "read of undeclared input port '%s'" p)
    (expr_ports [] e);
  List.iter
    (fun v ->
      if not (Hashtbl.mem defined v) then err "variable '%s' read before any assignment" v)
    (expr_vars [] e);
  let rec widths = function
    | Int_w (n, w) ->
        if w < 1 || w > Hls_ir.Width.max_width then err "literal width %d out of range" w
        else if not (Hls_ir.Width.fits ~width:w n) then err "literal %d does not fit in %d bits" n w
    | Int _ | Var _ | Port _ -> ()
    | Bin (_, a, b) -> widths a; widths b
    | Un (_, a) -> widths a
    | Cond (a, b, c) -> widths a; widths b; widths c
    | Slice (a, hi, lo) ->
        if lo < 0 || hi < lo then err "bad slice [%d:%d]" hi lo;
        widths a
    | Call (_, args, w) ->
        if w < 1 then err "call result width %d" w;
        List.iter widths args
  in
  widths e;
  !errs

let rec check_stmts ~design ~defined ~top errs stmts =
  List.fold_left
    (fun errs s ->
      match s with
      | Assign (v, e) ->
          let errs = check_expr ~design ~defined errs e in
          Hashtbl.replace defined v ();
          if List.mem_assoc v design.d_ins || List.mem_assoc v design.d_outs then
            Printf.sprintf "variable '%s' shadows a port" v :: errs
          else errs
      | Write (p, e) ->
          let errs = check_expr ~design ~defined errs e in
          if not (List.mem_assoc p design.d_outs) then
            Printf.sprintf "write to undeclared output port '%s'" p :: errs
          else errs
      | Wait -> errs
      | Stall_until e -> check_expr ~design ~defined errs e
      | If (c, t, f) ->
          let errs = check_expr ~design ~defined errs c in
          if count_waits t > 0 || count_waits f > 0 then
            "internal: wait-bearing conditional survived desugaring" :: errs
          else begin
            (* branch-local definitions stay visible conservatively: a
               variable defined on one branch only is reported when read
               later without an unconditional definition — tracked by
               marking it defined only if both branches define it *)
            let dt = Hashtbl.copy defined and df = Hashtbl.copy defined in
            let errs = check_stmts ~design ~defined:dt ~top:false errs t in
            let errs = check_stmts ~design ~defined:df ~top:false errs f in
            Hashtbl.iter (fun v () -> if Hashtbl.mem df v then Hashtbl.replace defined v ()) dt;
            errs
          end
      | Do_while (body, cond, attrs) ->
          let errs =
            if not top then
              Printf.sprintf "loop '%s' is not at the top level of the thread body" attrs.l_name
              :: errs
            else errs
          in
          let errs =
            if attrs.l_min_latency < 1 || attrs.l_max_latency < attrs.l_min_latency then
              Printf.sprintf "loop '%s': bad latency bounds [%d, %d]" attrs.l_name
                attrs.l_min_latency attrs.l_max_latency
              :: errs
            else errs
          in
          let errs =
            match attrs.l_ii with
            | Some ii when ii < 1 -> Printf.sprintf "loop '%s': II must be >= 1" attrs.l_name :: errs
            | Some ii when ii > attrs.l_max_latency ->
                Printf.sprintf "loop '%s': II %d exceeds the latency bound %d" attrs.l_name ii
                  attrs.l_max_latency
                :: errs
            | _ -> errs
          in
          let errs = check_stmts ~design ~defined ~top:false errs body in
          check_expr ~design ~defined errs cond
      | While _ | For _ -> "internal: while/for survived desugaring" :: errs)
    errs stmts

(** [run design] returns all semantic errors of a lowered design (empty
    list = valid).  Checks: port/variable declarations and shadowing,
    read-before-write, loop placement and attributes, slice/width sanity,
    and that at most one top-level loop exists (the schedulable main loop). *)
let run (design : design) : error list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p, w) ->
      if Hashtbl.mem seen p then err "duplicate port '%s'" p;
      Hashtbl.replace seen p ();
      if w < 1 || w > Hls_ir.Width.max_width then err "port '%s': width %d out of range" p w)
    (design.d_ins @ design.d_outs);
  List.iter
    (fun (v, w) ->
      if Hashtbl.mem seen v then err "variable '%s' duplicates a port or variable" v;
      Hashtbl.replace seen v ();
      if w < 1 || w > Hls_ir.Width.max_width then err "variable '%s': width %d out of range" v w)
    design.d_vars;
  let n_loops =
    List.length
      (List.filter (function Do_while _ | While _ | For _ -> true | _ -> false) design.d_body)
  in
  if n_loops > 1 then
    err "design '%s' has %d top-level loops; the flow schedules one main loop (merge or split \
         the design)"
      design.d_name n_loops;
  let defined = Hashtbl.create 16 in
  List.iter (fun (v, _) -> Hashtbl.replace defined v ()) design.d_vars;
  let errs' = check_stmts ~design ~defined ~top:true !errs design.d_body in
  List.rev errs'

(** Raise {!Fault.Error} (code ["check"]) with a readable message when
    [run] finds problems. *)
let run_exn design =
  match run design with
  | [] -> ()
  | errs ->
      Fault.fail ~code:"check" "design '%s': %s" design.d_name (String.concat "; " errs)
