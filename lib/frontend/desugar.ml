(** AST lowering ahead of elaboration.

    Four rewrites:

    - Counted loop {e nests} at the top level: when {!Nest} recognizes an
      eligible 2- or 3-level nest (and the mode is [`Flatten], the
      default), it is collapsed into a single loop over the combined
      induction counter instead of unrolling the inner dimensions —
      3-level recognition is tried first, so a triple nest flattens as
      one 3-dimensional loop rather than unrolling its innermost level.
      Ineligible nests fall back to the legacy unroll lowering; if that
      would overflow the unroll bound, a typed [nest_shape] fault names
      the loop.
    - [For] loops: fully unrolled when requested (or when nested inside
      another loop — the paper requires inner loops to be unrolled), else
      lowered to counter initialization plus [Do_while].
    - [While] loops: [while (k)] with a nonzero constant condition becomes
      an (infinite) [Do_while]; data-dependent [while] is rejected with a
      pointer at [do/while] (test-before-first-iteration FSMs are outside
      the reproduction's scope, as in the paper all examples are do/while).
    - Conditionals containing [wait()]: the latency-balancing half of
      predicate conversion (Fig. 4).  The condition is hoisted into a fresh
      temporary, both branches are split at their waits, the shorter branch
      is padded, and the statement becomes a sequence of wait-free
      conditionals separated by single waits — [s1]/[s2] merging into
      [s1_2] exactly as in the paper.  Wait-free conditionals are predicated
      directly by the elaborator.

    All rejections raise the typed {!Fault.Error} with a stable machine
    code and the offending loop's name. *)

open Ast

exception Error = Fault.Error

type nest_mode = [ `Flatten | `Unroll ]

let max_unroll = 4096

(** Split a wait-free-segment decomposition: [a; Wait; b; Wait; c] becomes
    [[a]; [b]; [c]]. *)
let split_at_waits stmts =
  let segs, last =
    List.fold_left
      (fun (segs, cur) s -> match s with Wait -> (List.rev cur :: segs, []) | s -> (segs, s :: cur))
      ([], []) stmts
  in
  List.rev (List.rev last :: segs)

let fresh_tmp =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "_pc%d" !n

(** Interleave balanced branch segments with waits, guarding each segment
    pair with the hoisted condition. *)
let balance_if c t f =
  let tmp = fresh_tmp () in
  let segs_t = split_at_waits t and segs_f = split_at_waits f in
  let n = max (List.length segs_t) (List.length segs_f) in
  let pad segs = segs @ List.init (n - List.length segs) (fun _ -> []) in
  let segs_t = pad segs_t and segs_f = pad segs_f in
  let pieces =
    List.map2
      (fun st sf -> match (st, sf) with [], [] -> [] | _ -> [ If (Var tmp, st, sf) ])
      segs_t segs_f
  in
  let rec join = function
    | [] -> []
    | [ last ] -> last
    | seg :: rest -> seg @ (Wait :: join rest)
  in
  Assign (tmp, c) :: join pieces

(** Name of the first loop in the statements (for fault anchoring). *)
let rec first_loop_name stmts =
  List.find_map
    (function
      | Do_while (_, _, a) | While (_, _, a) | For (_, _, _, _, a) -> Some a.l_name
      | If (_, t, f) -> (
          match first_loop_name t with Some n -> Some n | None -> first_loop_name f)
      | Assign _ | Write _ | Wait | Stall_until _ -> None)
    stmts

let rec lower_stmt ~in_loop s =
  match s with
  | Assign _ | Write _ | Wait | Stall_until _ -> [ s ]
  | If (c, t, f) ->
      let t = lower_stmts ~in_loop t and f = lower_stmts ~in_loop f in
      if contains_loop t || contains_loop f then begin
        let loop = match first_loop_name (t @ f) with Some n -> n | None -> "loop" in
        Fault.fail ~loop ~code:"loop_under_conditional"
          "loop '%s' nested under a conditional: unroll it or restructure the code" loop
      end;
      if count_waits t > 0 || count_waits f > 0 then
        (* the balancing rewrite can expose nothing new to lower *)
        balance_if c t f
      else [ If (c, t, f) ]
  | Do_while (body, cond, attrs) ->
      let body = lower_stmts ~in_loop:true body in
      [ Do_while (body, cond, attrs) ]
  | While (cond, body, attrs) -> (
      let body = lower_stmts ~in_loop:true body in
      match cond with
      | Int k | Int_w (k, _) ->
          if k <> 0 then [ Do_while (body, cond, attrs) ]
          else
            Fault.fail ~loop:attrs.l_name ~code:"while_never"
              "while (0) loop '%s' never executes: delete it" attrs.l_name
      | _ ->
          Fault.fail ~loop:attrs.l_name ~code:"while_dynamic"
            "data-dependent 'while' loop '%s' is not supported: use do/while (the loop body must \
             execute at least once)"
            attrs.l_name)
  | For (v, lo, hi, body, attrs) ->
      let body = lower_stmts ~in_loop:true body in
      let trip = hi - lo in
      if trip <= 0 then
        Fault.fail ~loop:attrs.l_name ~code:"nonpositive_trip"
          "for loop '%s' has non-positive trip count %d" attrs.l_name trip;
      if attrs.l_unroll || in_loop then begin
        (* inner loops must be unrolled (Section V, Step I.1) *)
        if trip > max_unroll then
          Fault.fail ~loop:attrs.l_name ~code:"unroll_overflow"
            "refusing to unroll loop '%s' with trip count %d (max %d)" attrs.l_name trip
            max_unroll;
        List.concat (List.init trip (fun i -> Assign (v, Int (lo + i)) :: body))
        @ [ Assign (v, Int hi) ]
      end
      else
        [
          Assign (v, Int lo);
          Do_while
            ( body @ [ Assign (v, Bin (Hls_ir.Opkind.Add, Var v, Int 1)) ],
              Bin (Hls_ir.Opkind.Lt, Var v, Int hi),
              attrs );
        ]

and lower_stmts ~in_loop stmts = List.concat_map (lower_stmt ~in_loop) stmts

(** Variables assigned by the top-level statements (conservatively
    including conditional assignments), for {!Nest.flatten}'s live-in
    set. *)
let top_assigned stmts = Ast.assigned_vars stmts

(** Lower a whole design.  In [`Flatten] mode (the default) the first
    eligible counted nest at top level — 3-level nests tried before
    2-level — is collapsed via {!Nest.flatten3}/{!Nest.flatten} and its
    {!Nest.info} returned; everything else (and
    everything in [`Unroll] mode) goes through the per-statement
    lowering, where nested counted loops are fully unrolled.  The result
    contains only [Assign], [Write], [Wait], wait-free [If],
    [Stall_until] and top-level [Do_while]. *)
let design_ex ?(nest = `Flatten) (d : design) =
  let lower stmts = lower_stmts ~in_loop:false stmts in
  match nest with
  | `Unroll -> ({ d with d_body = lower d.d_body }, None)
  | `Flatten -> (
      let depth3 =
        match Nest.find3 d.d_body with
        | Some (before, n3, after) when Nest.eligible3 n3 = Ok () ->
            let already = top_assigned before in
            let stmts, info = Nest.flatten3 ~design:d ~already n3 in
            Some ({ d with d_body = lower before @ lower stmts @ lower after }, Some info)
        | _ -> None
      in
      match depth3 with
      | Some r -> r
      | None -> (
          match Nest.find d.d_body with
          | None -> ({ d with d_body = lower d.d_body }, None)
          | Some (before, n, after) -> (
              match Nest.eligible n with
              | Ok () ->
                  let already = top_assigned before in
                  let stmts, info = Nest.flatten ~design:d ~already n in
                  ({ d with d_body = lower before @ lower stmts @ lower after }, Some info)
              | Error reason ->
                  if Nest.inner_trip n > max_unroll then
                    Fault.fail ~loop:n.Nest.outer_attrs.l_name ~code:"nest_shape"
                      "loop nest '%s' cannot be flattened (%s) and its inner trip count %d \
                       exceeds the unroll bound (%d)"
                      n.Nest.outer_attrs.l_name reason (Nest.inner_trip n) max_unroll
                  else ({ d with d_body = lower d.d_body }, None))))

let design ?nest (d : design) = fst (design_ex ?nest d)
