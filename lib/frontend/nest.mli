(** Counted loop-nest recognition, flattening and hierarchical splitting.

    Recognizes a 2-level counted nest ([for (i) { pre; for (j) { inner };
    post }]) at the top level of a design and lowers it either by
    {e flattening} — one loop over the combined induction counter, with
    first/last-of-row flags predicating [pre] and [post]; the executed,
    equivalence-checked path — or by {e splitting} into an inner design
    plus an outer timing summary for bottom-up hierarchical scheduling
    ([Hls_core.Nest_sched]).  Nests that fail {!eligible} fall back to the
    legacy full-unroll lowering in {!Desugar}. *)

type t = {
  outer_var : string;
  outer_lo : int;
  outer_hi : int;
  outer_attrs : Ast.loop_attrs;
  inner_var : string;
  inner_lo : int;
  inner_hi : int;
  inner_attrs : Ast.loop_attrs;
  pre : Ast.stmt list;  (** outer-body statements before the inner loop *)
  inner_body : Ast.stmt list;
  post : Ast.stmt list;  (** outer-body statements after the inner loop *)
}

type dim = {
  d_name : string;  (** source loop name *)
  d_var : string;  (** induction variable *)
  d_lo : int;
  d_trip : int;
  d_ii : int option;  (** designer-requested II along this dimension *)
}

type info = {
  ni_dims : dim list;  (** outermost first *)
  ni_perfect : bool;  (** no statements between the nest's loop headers *)
  ni_flat_name : string;  (** loop name of the flattened/outer region *)
  ni_pre_stmts : int;
  ni_post_stmts : int;
}

val outer_trip : t -> int
val inner_trip : t -> int

val info_of : t -> info

val region_nest : info -> flattened:bool -> Hls_ir.Region.nest
(** Lower the frontend nest description to the IR-level annotation. *)

val recognize : Ast.stmt -> t option
(** Structural recognition only: a [For] whose body contains a [For] at
    top level.  Use {!eligible} before flattening. *)

val find : Ast.stmt list -> (Ast.stmt list * t * Ast.stmt list) option
(** First structurally recognizable nest among top-level statements;
    returns (statements before, nest, statements after). *)

val eligible : t -> (unit, string) result
(** Flattening eligibility: both trips positive, distinct induction
    variables never assigned by the body, [pre]/[post] loop-free and
    independent of the inner counter, nest exactly two deep, no [unroll]
    request on either dimension.  [Error reason] means the nest falls
    back to the legacy unroll lowering. *)

val flatten : design:Ast.design -> already:string list -> t -> Ast.stmt list * info
(** Collapse an eligible nest into one loop over the combined induction
    counter.  [already] lists variables assigned at top level before the
    nest (live-in; not re-initialized).  Variables first assigned inside
    the nest are hoisted to width-pinned zero-initializations so the
    elaborator treats them as loop-carried.  The flattened loop takes the
    {e inner} loop's pipeline attributes; the outer dimension's II is
    derived ([kernel II x inner trip], see {!Hls_ir.Region.per_dim_iis}). *)

(** {2 Depth-3 nests} *)

(** A 3-level counted nest ([for (i) { pre1; for (j) { pre2; for (k)
    { body } post2 }; post1 }]), numbered outermost-in. *)
type t3 = {
  v1 : string;
  lo1 : int;
  hi1 : int;
  a1 : Ast.loop_attrs;
  v2 : string;
  lo2 : int;
  hi2 : int;
  a2 : Ast.loop_attrs;
  v3 : string;
  lo3 : int;
  hi3 : int;
  a3 : Ast.loop_attrs;
  pre1 : Ast.stmt list;  (** outer-body statements before the middle loop *)
  post1 : Ast.stmt list;  (** outer-body statements after the middle loop *)
  pre2 : Ast.stmt list;  (** middle-body statements before the inner loop *)
  post2 : Ast.stmt list;  (** middle-body statements after the inner loop *)
  body3 : Ast.stmt list;  (** innermost kernel *)
}

val trip1 : t3 -> int
val trip2 : t3 -> int
val trip3 : t3 -> int

val info_of3 : t3 -> info
(** Three dimensions, outermost first; [ni_perfect] iff all four
    pre/post segments are empty. *)

val recognize3 : Ast.stmt -> t3 option
(** Structural recognition only: {!recognize} applied twice.  Use
    {!eligible3} before flattening. *)

val find3 : Ast.stmt list -> (Ast.stmt list * t3 * Ast.stmt list) option
(** First structurally recognizable 3-level nest among top-level
    statements; returns (statements before, nest, statements after). *)

val eligible3 : t3 -> (unit, string) result
(** Depth-3 flattening eligibility: the {!eligible} discipline across
    three dimensions — positive trips, distinct never-assigned counters,
    each counter read only inside its own loop's extent, pre/post
    segments loop-free, nest exactly three deep, no [unroll] request.
    [Error reason] means the nest falls back to the depth-2 path (which
    will itself fall back to unrolling). *)

val flatten3 : design:Ast.design -> already:string list -> t3 -> Ast.stmt list * info
(** Collapse an eligible 3-level nest into one loop over the combined
    induction counter.  Generalizes {!flatten} with two extra flags:
    [_nf]/[_nl] predicate [pre2]/[post2] (first/last innermost iteration
    of a middle row), [_nff]/[_nll] predicate [pre1]/[post1] (first/last
    middle iteration of an outer row), [_nd] exits the loop.  The
    flattened loop takes the {e innermost} loop's pipeline attributes
    and the outermost loop's name; enclosing dimensions' IIs derive by
    stride ({!Hls_ir.Region.per_dim_iis}). *)

val super_op_callee : string
(** Callee name of the black-box super-op standing in for the inner loop
    in the outer summary design ("nest_body"). *)

val split : Ast.design -> (Ast.design * Ast.design * info) option
(** Split a design around its first eligible nest into (inner design,
    outer summary design, info) for bottom-up hierarchical scheduling.
    The outer design summarizes {e timing}: the inner loop becomes a
    fixed-latency call whose latency the scheduler patches once the inner
    kernel is scheduled.  [None] when no eligible nest exists (or other
    loops precede it). *)
