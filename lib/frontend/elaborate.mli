(** Elaboration: lowered {!Ast.design} → {!Hls_ir.Cdfg.t} plus region
    membership — the paper's elaboration step (Fig. 2/3).

    Wait-free conditionals are predicate-converted on the fly: branch
    operations carry {!Hls_ir.Guard} atoms over the 1-bit-normalized
    condition and joins merge with muxes (Fig. 4b); wait-bearing
    conditionals were already flattened by {!Desugar}.  Loop-carried
    variables become [Loop_mux] ops whose port 1 is a distance-1 edge —
    Fig. 3(b)'s [loopMux].

    Per-iteration I/O semantics: one [Read] per port per iteration scope
    (reads are speculation-safe and unconditional); writes keep their
    guard and commit conditionally. *)

open Hls_ir

exception Error of Fault.t
(** Alias of {!Fault.Error}. *)

type loop_info = {
  li_attrs : Ast.loop_attrs;
  li_members : int list;  (** DFG ops scheduled inside the loop body *)
  li_continue : int option;  (** continue-while-nonzero op; [None] = infinite *)
  li_stall : int option;
  li_waits : int;  (** source latency: waits in the body *)
  li_carried : (string * int) list;  (** variable -> its [Loop_mux] op *)
  li_exit_env : (string * int) list;  (** carried values at loop exit *)
}

type t = {
  cdfg : Cdfg.t;
  source : Ast.design;  (** the lowered design (input to the simulators) *)
  pre_members : int list;
  loop : loop_info option;
  post_members : int list;
  nest : Nest.info option;  (** set when the frontend flattened a loop nest *)
}

val design : ?timed:bool -> ?nest:Desugar.nest_mode -> ?carried_dim:int -> Ast.design -> t
(** Desugar, check and elaborate.  [timed] pins I/O ops to their source
    wait states; the default untimed mode lets the scheduler re-time
    everything, as in the paper's worked examples.  [nest] selects the
    loop-nest lowering (default [`Flatten]); [carried_dim] tags every
    loop-carried closure edge with that nest dimension (for hierarchical
    composition and tests).
    @raise Fault.Error on any frontend problem. *)

val main_region : ?ii:int -> ?min_latency:int -> ?max_latency:int -> t -> Region.t
(** The main loop (or, absent one, the whole design) as a scheduling
    region; [ii] requests pipelining, bounds default to the loop
    attributes.  A flattened loop nest annotates the region with
    {!Region.nest}. *)
