(** Typed frontend faults.

    Every frontend rejection — desugaring, nest shaping, semantic checks,
    elaboration — raises {!Error} with a stable machine code and, when the
    problem is anchored at a source loop, that loop's name.  The flow layer
    lowers these to [Hls_diag.Diag] values with the code preserved, so
    tests and tooling can match on the cause instead of the prose. *)

type t = {
  fe_code : string;
      (** stable machine code, e.g. ["loop_under_conditional"],
          ["unroll_overflow"], ["nonpositive_trip"], ["while_dynamic"],
          ["while_never"], ["nest_shape"], ["check"] or the generic
          ["frontend"] *)
  fe_loop : string option;  (** source loop name, when the fault has one *)
  fe_message : string;  (** human-readable message (loop name included) *)
}

exception Error of t

let fail ?loop ~code fmt =
  Printf.ksprintf (fun s -> raise (Error { fe_code = code; fe_loop = loop; fe_message = s })) fmt

let message e = e.fe_message
let code e = e.fe_code
let loop e = e.fe_loop
