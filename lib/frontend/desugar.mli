(** AST lowering ahead of elaboration:

    - top-level counted loop {e nests} flatten into one loop over the
      combined induction counter (see {!Nest}); ineligible nests fall
      back to unrolling the inner dimension;
    - [For] loops unroll (when requested, or always when nested — the
      paper requires inner loops to be unrolled) or lower to counter +
      [Do_while];
    - constant-condition [While] becomes [Do_while]; data-dependent
      [while] is rejected with a pointer at [do/while];
    - wait-bearing conditionals are balanced and split at waits — the
      latency-balancing half of Fig. 4's predicate conversion
      ([s1]/[s2] merging into [s1_2]).

    All rejections raise {!Fault.Error} with a stable machine code
    ([loop_under_conditional], [while_never], [while_dynamic],
    [nonpositive_trip], [unroll_overflow], [nest_shape]) and the
    offending loop's name. *)

open Ast

exception Error of Fault.t
(** Alias of {!Fault.Error}. *)

type nest_mode = [ `Flatten | `Unroll ]
(** How to lower counted loop nests: [`Flatten] (default) collapses an
    eligible 2-level nest into a single combined-counter loop;
    [`Unroll] forces the legacy lowering (inner dimensions fully
    unrolled) — the 1-D baseline. *)

val max_unroll : int

val split_at_waits : stmt list -> stmt list list
val balance_if : expr -> stmt list -> stmt list -> stmt list

val lower_stmts : in_loop:bool -> stmt list -> stmt list

val design : ?nest:nest_mode -> design -> design
(** Lower a whole design; the result contains only [Assign], [Write],
    [Wait], wait-free [If], [Stall_until] and top-level [Do_while]. *)

val design_ex : ?nest:nest_mode -> design -> design * Nest.info option
(** Like {!design}, also returning the nest description when a nest was
    flattened. *)
