(** Elaboration: lowered {!Ast.design} → {!Hls_ir.Cdfg.t} plus region
    membership information.

    This reproduces the paper's elaboration step (Fig. 2/3): the thread body
    becomes a CFG whose [State] nodes are the [wait()] boundaries and whose
    edges carry the DFG operations, with data dependencies as DFG edges.
    Loop-carried variables become [Loop_mux] operations whose port 1 is a
    distance-1 edge from the value computed by the previous iteration —
    exactly the [loopMux] feeding [aver] in Fig. 3(b).

    Wait-free conditionals are predicate-converted on the fly: operations
    from the branches carry {!Hls_ir.Guard} atoms over the (1-bit
    normalized) condition op, and variables assigned in the branches are
    merged with [Mux] operations at the join — the straight-line form of
    Fig. 4(b).  Wait-bearing conditionals were already flattened by
    {!Desugar}.

    Per-iteration I/O semantics: reading the same input port several times
    within one iteration scope yields one [Read] op (one sample per
    iteration), mirroring SystemC's stable [sc_in] values within a clock
    cycle; port reads are unconditional (reads are speculation-safe), while
    port writes keep their guard and commit conditionally. *)

open Hls_ir

exception Error = Fault.Error

let err fmt = Fault.fail ~code:"frontend" fmt

type loop_info = {
  li_attrs : Ast.loop_attrs;
  li_members : int list;  (** DFG ops scheduled inside the loop body *)
  li_continue : int option;  (** continue-while-nonzero op; [None] = infinite loop *)
  li_stall : int option;
  li_waits : int;  (** source latency: number of waits in the body *)
  li_carried : (string * int) list;  (** variable -> its [Loop_mux] op *)
  li_exit_env : (string * int) list;  (** variable values at loop exit *)
}

type t = {
  cdfg : Cdfg.t;
  source : Ast.design;  (** the lowered design (input to the simulators) *)
  pre_members : int list;
  loop : loop_info option;
  post_members : int list;
  nest : Nest.info option;  (** set when the frontend flattened a loop nest *)
}

type ctx = {
  cd : Cdfg.t;
  widths : (string, int) Hashtbl.t;
  mutable env : (string, int) Hashtbl.t;
  mutable guard : Guard.t;
  mutable sink : int list ref;  (** region-membership recorder *)
  mutable touched : (string, unit) Hashtbl.t list;  (** branch write trackers *)
  mutable cur_node : int;
  mutable pending : int list;  (** ops awaiting attachment to the next CFG edge *)
  mutable wait_ix : int;
  timed : bool;
  port_cache : (string, int) Hashtbl.t;
  const_cache : (int * int, int) Hashtbl.t;
  mutable stall : int option;
}

let emit ?(guard_override = None) ?anchor ctx kind ~width ~name inputs =
  let guard = match guard_override with Some g -> g | None -> ctx.guard in
  let op = Dfg.add_op ctx.cd.Cdfg.dfg kind ~width ~guard ~name ?anchor in
  List.iteri (fun i src -> Dfg.connect ctx.cd.Cdfg.dfg ~src ~dst:op.Dfg.id ~port:i) inputs;
  ctx.sink := op.Dfg.id :: !(ctx.sink);
  ctx.pending <- op.Dfg.id :: ctx.pending;
  op.Dfg.id

let op_width ctx id = (Dfg.find ctx.cd.Cdfg.dfg id).Dfg.width

let const ctx n w =
  let w = Width.clamp (max w (Width.bits_for_signed n)) in
  match Hashtbl.find_opt ctx.const_cache (n, w) with
  | Some id -> id
  | None ->
      let id =
        emit ~guard_override:(Some Guard.always) ctx (Opkind.Const n) ~width:w
          ~name:(Printf.sprintf "c%d" n) []
      in
      Hashtbl.replace ctx.const_cache (n, w) id;
      id

(** Insert a width-conversion wire op when needed. *)
let coerce ctx id ~width =
  let w = op_width ctx id in
  if w = width then id
  else if w > width then emit ctx (Opkind.Slice (width - 1, 0)) ~width ~name:"trunc" [ id ]
  else emit ctx (Opkind.Sext width) ~width ~name:"sext" [ id ]

(** Normalize a condition to one bit ([x] becomes [x != 0]). *)
let bool_of ctx id =
  if op_width ctx id = 1 then id
  else
    let z = const ctx 0 (op_width ctx id) in
    emit ctx (Opkind.Bin Opkind.Neq) ~width:1 ~name:"truthy" [ id; z ]

let boundary ?(label = `Seq) ctx kind ~name =
  let n = Cfg.add_node ~name ctx.cd.Cdfg.cfg kind in
  let e = Cfg.add_edge ~label ctx.cd.Cdfg.cfg ~src:ctx.cur_node ~dst:n.Cfg.nid in
  List.iter (fun op -> Cdfg.attach ctx.cd ~op ~edge:e.Cfg.eid) ctx.pending;
  ctx.pending <- [];
  ctx.cur_node <- n.Cfg.nid;
  n

let record_touch ctx v = List.iter (fun tbl -> Hashtbl.replace tbl v ()) ctx.touched

let rec expr ctx (e : Ast.expr) : int =
  match e with
  | Ast.Int n -> const ctx n (Width.bits_for_signed n)
  | Ast.Int_w (n, w) -> const ctx n w
  | Ast.Var v -> (
      match Hashtbl.find_opt ctx.env v with
      | Some id -> id
      | None -> err "variable '%s' used before assignment" v)
  | Ast.Port p -> (
      match Hashtbl.find_opt ctx.port_cache p with
      | Some id -> id
      | None ->
          let w =
            match Cdfg.port_width ctx.cd p with
            | Some w -> w
            | None -> err "undeclared input port '%s'" p
          in
          let anchor = if ctx.timed then Some ctx.wait_ix else None in
          let id =
            emit ~guard_override:(Some Guard.always) ?anchor ctx (Opkind.Read p) ~width:w
              ~name:(p ^ "_read") []
          in
          Hashtbl.replace ctx.port_cache p id;
          id)
  | Ast.Bin (op, a, b) ->
      let ia = expr ctx a and ib = expr ctx b in
      let w = Opkind.result_width (Opkind.Bin op) [ op_width ctx ia; op_width ctx ib ] in
      emit ctx (Opkind.Bin op) ~width:w ~name:"" [ ia; ib ]
  | Ast.Un (op, a) ->
      let ia = expr ctx a in
      let w = Opkind.result_width (Opkind.Un op) [ op_width ctx ia ] in
      emit ctx (Opkind.Un op) ~width:w ~name:"" [ ia ]
  | Ast.Cond (c, a, b) ->
      let ic = bool_of ctx (expr ctx c) in
      let ia = expr ctx a and ib = expr ctx b in
      let w = max (op_width ctx ia) (op_width ctx ib) in
      let ia = coerce ctx ia ~width:w and ib = coerce ctx ib ~width:w in
      emit ctx Opkind.Mux ~width:w ~name:"sel" [ ic; ia; ib ]
  | Ast.Slice (a, hi, lo) ->
      let ia = expr ctx a in
      emit ctx (Opkind.Slice (hi, lo)) ~width:(Width.clamp (hi - lo + 1)) ~name:"" [ ia ]
  | Ast.Call (f, args, w) ->
      let ids = List.map (expr ctx) args in
      emit ctx (Opkind.Call { Opkind.callee = f; call_latency = 1 }) ~width:w ~name:f ids

let var_width ctx v ~default =
  match Hashtbl.find_opt ctx.widths v with
  | Some w -> w
  | None ->
      Hashtbl.replace ctx.widths v default;
      default

let rec stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, e) ->
      let id = expr ctx e in
      let w = var_width ctx v ~default:(op_width ctx id) in
      let id = coerce ctx id ~width:w in
      Hashtbl.replace ctx.env v id;
      record_touch ctx v
  | Ast.Write (p, e) ->
      let id = expr ctx e in
      let w =
        match List.assoc_opt p ctx.cd.Cdfg.out_ports with
        | Some w -> w
        | None -> err "undeclared output port '%s'" p
      in
      let id = coerce ctx id ~width:w in
      let anchor = if ctx.timed then Some ctx.wait_ix else None in
      ignore (emit ?anchor ctx (Opkind.Write p) ~width:w ~name:(p ^ "_write") [ id ])
  | Ast.Wait ->
      ctx.wait_ix <- ctx.wait_ix + 1;
      ignore (boundary ctx Cfg.State ~name:(Printf.sprintf "s%d" ctx.wait_ix))
  | Ast.Stall_until e ->
      let id = bool_of ctx (expr ctx e) in
      ctx.stall <- Some id
  | Ast.If (c, t, f) ->
      let cid = bool_of ctx (expr ctx c) in
      let g0 = ctx.guard in
      let env0 = ctx.env in
      let run_branch polarity stmts =
        match Guard.add g0 ~pred:cid ~polarity with
        | None -> (env0, Hashtbl.create 1) (* contradictory guard: dead branch *)
        | Some g ->
            let env = Hashtbl.copy env0 in
            let touched = Hashtbl.create 8 in
            ctx.env <- env;
            ctx.guard <- g;
            ctx.touched <- touched :: ctx.touched;
            List.iter (stmt ctx) stmts;
            ctx.touched <- List.tl ctx.touched;
            ctx.env <- env0;
            ctx.guard <- g0;
            (env, touched)
      in
      let env_t, touched_t = run_branch true t in
      let env_f, touched_f = run_branch false f in
      let all_touched = Hashtbl.copy touched_t in
      Hashtbl.iter (fun v () -> Hashtbl.replace all_touched v ()) touched_f;
      Hashtbl.iter
        (fun v () ->
          let before = Hashtbl.find_opt env0 v in
          let tv = Option.value (Hashtbl.find_opt env_t v) ~default:(Option.value before ~default:(-1))
          and fv = Option.value (Hashtbl.find_opt env_f v) ~default:(Option.value before ~default:(-1)) in
          let tv = if tv = -1 then fv else tv and fv = if fv = -1 then tv else fv in
          if tv = fv then begin
            Hashtbl.replace ctx.env v tv;
            record_touch ctx v
          end
          else begin
            let w = var_width ctx v ~default:(max (op_width ctx tv) (op_width ctx fv)) in
            let tv = coerce ctx tv ~width:w and fv = coerce ctx fv ~width:w in
            let m = emit ctx Opkind.Mux ~width:w ~name:(v ^ "_sel") [ cid; tv; fv ] in
            Hashtbl.replace ctx.env v m;
            record_touch ctx v
          end)
        all_touched
  | Ast.Do_while _ | Ast.While _ | Ast.For _ ->
      err "internal: loop statement reached the statement elaborator"

let elaborate_loop ?(carried_dim = 0) ctx (body, cond, attrs) =
  let lh = boundary ctx (Cfg.Loop_head { kind = `Do_while; cond = None }) ~name:attrs.Ast.l_name in
  let loop_sink = ref [] in
  (* Loop-carried variables: assigned in the body and live into it. *)
  let carried =
    Ast.assigned_vars body
    |> List.sort_uniq compare
    |> List.filter (fun v -> Hashtbl.mem ctx.env v)
  in
  (* Coerce initial values while still in the enclosing region. *)
  let inits =
    List.map
      (fun v ->
        let init = Hashtbl.find ctx.env v in
        let w = var_width ctx v ~default:(op_width ctx init) in
        (v, coerce ctx init ~width:w, w))
      carried
  in
  ctx.sink <- loop_sink;
  Hashtbl.reset ctx.port_cache;
  Hashtbl.reset ctx.const_cache;
  let wait_base = ctx.wait_ix in
  ctx.wait_ix <- 0;
  let muxes =
    List.map
      (fun (v, init, w) ->
        let lm = emit ctx Opkind.Loop_mux ~width:w ~name:(v ^ "_loop") [ init ] in
        Hashtbl.replace ctx.env v lm;
        (v, lm))
      inits
  in
  List.iter (stmt ctx) body;
  let continue_op =
    match cond with
    | Ast.Int k | Ast.Int_w (k, _) -> if k <> 0 then None else err "do/while(0): not a loop"
    | _ -> Some (bool_of ctx (expr ctx cond))
  in
  (* close the loop-carried cycles *)
  List.iter
    (fun (v, lm) ->
      let final = Hashtbl.find ctx.env v in
      let w = op_width ctx lm in
      let final = coerce ctx final ~width:w in
      Dfg.connect ctx.cd.Cdfg.dfg ~src:final ~dst:lm ~port:1 ~distance:1 ~dim:carried_dim)
    muxes;
  let li_waits = max 1 ctx.wait_ix in
  ctx.wait_ix <- wait_base;
  let tail = boundary ctx (Cfg.Loop_tail { head = lh.Cfg.nid }) ~name:(attrs.Ast.l_name ^ "_tail") in
  ignore (Cfg.add_edge ~label:`Back ctx.cd.Cdfg.cfg ~src:tail.Cfg.nid ~dst:lh.Cfg.nid);
  (* record the exit condition on the head node *)
  (match continue_op with
  | Some c -> (Cfg.node ctx.cd.Cdfg.cfg lh.Cfg.nid).Cfg.nkind <- Cfg.Loop_head { kind = `Do_while; cond = Some c }
  | None -> ());
  let stall = ctx.stall in
  ctx.stall <- None;
  {
    li_attrs = attrs;
    li_members = List.rev !loop_sink;
    li_continue = continue_op;
    li_stall = stall;
    li_waits;
    li_carried = muxes;
    li_exit_env = List.map (fun (v, _) -> (v, Hashtbl.find ctx.env v)) muxes;
  }

(** Elaborate a design.  The design is desugared and checked first; raises
    {!Fault.Error} on any frontend problem.  [timed] pins I/O operations
    to their source wait states (partially-timed mode); the default untimed
    mode lets the scheduler re-time everything, as in the paper's worked
    examples.  [nest] selects the loop-nest lowering (see
    {!Desugar.nest_mode}); [carried_dim] tags every loop-carried closure
    edge with that nest dimension (used by [Hls_core.Nest_sched] and tests
    to model recurrences carried by an enclosing dimension). *)
let design ?(timed = false) ?nest ?carried_dim (d : Ast.design) : t =
  let d, nest_info = Desugar.design_ex ?nest d in
  Check.run_exn d;
  let cd = Cdfg.create ~name:d.Ast.d_name ~in_ports:d.Ast.d_ins ~out_ports:d.Ast.d_outs in
  let entry = Cfg.add_node cd.Cdfg.cfg Cfg.Entry in
  let widths = Hashtbl.create 16 in
  List.iter (fun (v, w) -> Hashtbl.replace widths v w) d.Ast.d_vars;
  let pre_sink = ref [] in
  let ctx =
    {
      cd;
      widths;
      env = Hashtbl.create 16;
      guard = Guard.always;
      sink = pre_sink;
      touched = [];
      cur_node = entry.Cfg.nid;
      pending = [];
      wait_ix = 0;
      timed;
      port_cache = Hashtbl.create 8;
      const_cache = Hashtbl.create 8;
      stall = None;
    }
  in
  (* split the body at the main loop *)
  let rec split acc = function
    | [] -> (List.rev acc, None, [])
    | (Ast.Do_while (b, c, a)) :: rest -> (List.rev acc, Some (b, c, a), rest)
    | s :: rest -> split (s :: acc) rest
  in
  let pre, main_loop, post = split [] d.Ast.d_body in
  List.iter (stmt ctx) pre;
  let loop = Option.map (elaborate_loop ?carried_dim ctx) main_loop in
  let post_sink = ref [] in
  ctx.sink <- post_sink;
  Hashtbl.reset ctx.port_cache;
  Hashtbl.reset ctx.const_cache;
  List.iter (stmt ctx) post;
  ignore (boundary ctx Cfg.Exit ~name:"exit");
  {
    cdfg = cd;
    source = d;
    pre_members = List.rev !pre_sink;
    loop;
    post_members = List.rev !post_sink;
    nest = nest_info;
  }

(** Convert the elaborated main loop (or, absent a loop, the whole design)
    into a scheduling {!Region}.  [ii] requests pipelining; latency bounds
    default to the loop attributes.  When the frontend flattened a loop
    nest, the region carries the {!Region.nest} annotation (flattened
    form), so per-dimension IIs and strides are available downstream. *)
let main_region ?ii ?min_latency ?max_latency (t : t) : Region.t =
  match t.loop with
  | Some li ->
      let a = li.li_attrs in
      let ii = match ii with Some _ -> ii | None -> a.Ast.l_ii in
      let pipeline = Option.map (fun ii -> { Region.ii }) ii in
      let nest = Option.map (fun i -> Nest.region_nest i ~flattened:true) t.nest in
      Region.create
        ~min_steps:(Option.value min_latency ~default:a.Ast.l_min_latency)
        ~max_steps:(Option.value max_latency ~default:a.Ast.l_max_latency)
        ?pipeline ?continue_cond:li.li_continue ?stall_cond:li.li_stall ~is_loop:true
        ~source_waits:li.li_waits ~members:li.li_members ?nest ~name:a.Ast.l_name
        t.cdfg.Cdfg.dfg
  | None ->
      Region.create
        ~min_steps:(Option.value min_latency ~default:1)
        ~max_steps:(Option.value max_latency ~default:64)
        ~source_waits:(max 1 (Ast.count_waits t.source.Ast.d_body))
        ~members:t.pre_members ~name:t.source.Ast.d_name t.cdfg.Cdfg.dfg
