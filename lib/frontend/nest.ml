(** Counted loop-nest recognition, flattening and hierarchical splitting.

    The paper's pipeline machinery handles one loop: before this pass, a
    counted loop nested inside the main loop was fully unrolled, which
    caps the feasible trip count at {!Desugar.max_unroll} and forces the
    outer dimension's II to cover the whole unrolled body.  This module
    recognizes a 2-level counted nest

    {[
      for (i = lo1; i < hi1; i++) {   // outer dimension
        pre;                          // per-outer-iteration prologue
        for (j = lo2; j < hi2; j++) { inner; }
        post;                         // per-outer-iteration epilogue
      }
    ]}

    and offers two lowerings:

    - {!flatten}: collapse the nest into a single loop over the combined
      induction counter, with first/last-of-row flags predicating [pre]
      and [post].  The result is an ordinary single-loop design, so the
      existing scheduler, fold, simulators and RTL generator apply
      unchanged; per-dimension IIs derive from the kernel II
      ({!Region.per_dim_iis}).  This is the executed, equivalence-checked
      path.
    - {!split}: hierarchical composition — an {e inner} design exposing
      the inner loop for kernel scheduling, and an {e outer} summary
      design where the inner loop appears as a fixed-latency multicycle
      super-op ([Call "nest_body"]).  Used by [Hls_core.Nest_sched] for
      bottom-up timing composition of imperfect nests; the outer design
      is a {e timing} summary (port reads inside the inner body are
      folded into the super-op), not a simulation model. *)

open Ast
module Width = Hls_ir.Width
module Opkind = Hls_ir.Opkind
module Region = Hls_ir.Region

type t = {
  outer_var : string;
  outer_lo : int;
  outer_hi : int;
  outer_attrs : loop_attrs;
  inner_var : string;
  inner_lo : int;
  inner_hi : int;
  inner_attrs : loop_attrs;
  pre : stmt list;  (** outer-body statements before the inner loop *)
  inner_body : stmt list;
  post : stmt list;  (** outer-body statements after the inner loop *)
}

type dim = {
  d_name : string;  (** source loop name *)
  d_var : string;  (** induction variable *)
  d_lo : int;
  d_trip : int;
  d_ii : int option;  (** designer-requested II along this dimension *)
}

type info = {
  ni_dims : dim list;  (** outermost first *)
  ni_perfect : bool;
  ni_flat_name : string;  (** loop name of the flattened/outer region *)
  ni_pre_stmts : int;
  ni_post_stmts : int;
}

let outer_trip t = t.outer_hi - t.outer_lo
let inner_trip t = t.inner_hi - t.inner_lo

let info_of t =
  {
    ni_dims =
      [
        {
          d_name = t.outer_attrs.l_name;
          d_var = t.outer_var;
          d_lo = t.outer_lo;
          d_trip = outer_trip t;
          d_ii = t.outer_attrs.l_ii;
        };
        {
          d_name = t.inner_attrs.l_name;
          d_var = t.inner_var;
          d_lo = t.inner_lo;
          d_trip = inner_trip t;
          d_ii = t.inner_attrs.l_ii;
        };
      ];
    ni_perfect = t.pre = [] && t.post = [];
    ni_flat_name = t.outer_attrs.l_name;
    ni_pre_stmts = List.length t.pre;
    ni_post_stmts = List.length t.post;
  }

let region_nest info ~flattened =
  {
    Region.n_dims =
      List.map
        (fun d -> { Region.nd_name = d.d_name; nd_trip = d.d_trip; nd_ii = d.d_ii })
        info.ni_dims;
    n_perfect = info.ni_perfect;
    n_flattened = flattened;
  }

(** Structural recognition only: a [For] whose body contains a [For] at
    top level.  Eligibility (variable discipline, trip counts…) is
    checked separately by {!eligible}. *)
let recognize = function
  | For (ov, olo, ohi, body, oattrs) ->
      let rec go pre = function
        | [] -> None
        | For (iv, ilo, ihi, ibody, iattrs) :: rest ->
            Some
              {
                outer_var = ov;
                outer_lo = olo;
                outer_hi = ohi;
                outer_attrs = oattrs;
                inner_var = iv;
                inner_lo = ilo;
                inner_hi = ihi;
                inner_attrs = iattrs;
                pre = List.rev pre;
                inner_body = ibody;
                post = rest;
              }
        | s :: rest -> go (s :: pre) rest
      in
      go [] body
  | _ -> None

(** First structurally recognizable nest among top-level statements;
    returns (statements before, nest, statements after). *)
let find stmts =
  let rec go before = function
    | [] -> None
    | s :: rest -> (
        match recognize s with
        | Some n -> Some (List.rev before, n, rest)
        | None -> go (s :: before) rest)
  in
  go [] stmts

(** Variables read anywhere in the statements (conditions included). *)
let rec read_vars acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Assign (_, e) | Write (_, e) | Stall_until e -> expr_vars acc e
      | Wait -> acc
      | If (c, t, f) -> read_vars (read_vars (expr_vars acc c) t) f
      | Do_while (b, c, _) | While (c, b, _) -> read_vars (expr_vars acc c) b
      | For (_, _, _, b, _) -> read_vars acc b)
    acc stmts

let mentions v stmts = List.mem v (read_vars [] stmts) || List.mem v (assigned_vars stmts)

(** Flattening eligibility.  [Error reason] means the nest falls back to
    the legacy unroll lowering (and, if that would overflow the unroll
    bound, the caller raises a typed [nest_shape] fault). *)
let eligible t =
  let reject fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.outer_attrs.l_unroll || t.inner_attrs.l_unroll then
    reject "a dimension is marked unroll"
  else if outer_trip t <= 0 || inner_trip t <= 0 then reject "non-positive trip count"
  else if t.outer_var = t.inner_var then
    reject "both dimensions share induction variable '%s'" t.outer_var
  else if contains_loop t.pre || contains_loop t.post then
    reject "statements around the inner loop contain a further loop"
  else if contains_loop t.inner_body then reject "the nest is deeper than two loops"
  else if mentions t.inner_var t.pre || mentions t.inner_var t.post then
    reject "a statement outside the inner loop references its counter '%s'" t.inner_var
  else if
    List.exists
      (fun v -> v = t.outer_var || v = t.inner_var)
      (assigned_vars (t.pre @ t.inner_body @ t.post))
  then reject "the nest body assigns an induction counter"
  else Ok ()

(** {2 Flattening} *)

(** Static width of an expression, mirroring the elaborator's propagation
    rules, so the hoisted initializations below pin each variable to the
    width its first real assignment would have given it. *)
let rec infer_expr design env e =
  match e with
  | Int n -> Width.bits_for_signed n
  | Int_w (n, w) -> Width.clamp (max w (Width.bits_for_signed n))
  | Var v -> ( match Hashtbl.find_opt env v with Some w -> w | None -> 32)
  | Port p -> ( match List.assoc_opt p design.d_ins with Some w -> w | None -> 32)
  | Bin (op, a, b) ->
      Opkind.result_width (Opkind.Bin op) [ infer_expr design env a; infer_expr design env b ]
  | Un (op, a) -> Opkind.result_width (Opkind.Un op) [ infer_expr design env a ]
  | Cond (_, a, b) -> max (infer_expr design env a) (infer_expr design env b)
  | Slice (_, hi, lo) -> Width.clamp (hi - lo + 1)
  | Call (_, _, w) -> w

(** Record each variable's first-assignment width, in program order. *)
let rec infer_stmts design env stmts =
  List.iter
    (fun s ->
      match s with
      | Assign (v, e) ->
          if not (Hashtbl.mem env v) then Hashtbl.replace env v (infer_expr design env e)
      | Write _ | Wait | Stall_until _ -> ()
      | If (_, t, f) ->
          infer_stmts design env t;
          infer_stmts design env f
      | Do_while (b, _, _) | While (_, b, _) | For (_, _, _, b, _) -> infer_stmts design env b)
    stmts

let counter_width lo hi = Width.clamp (max (Width.bits_for_signed lo) (Width.bits_for_signed hi))

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

(** Pick flag names that collide with nothing in the design. *)
let fresh_names design base_names =
  let used = Hashtbl.create 32 in
  List.iter (fun (v, _) -> Hashtbl.replace used v ()) design.d_vars;
  List.iter (fun v -> Hashtbl.replace used v ()) (assigned_vars design.d_body);
  List.iter (fun v -> Hashtbl.replace used v ()) (read_vars [] design.d_body);
  List.map
    (fun base ->
      if not (Hashtbl.mem used base) then base
      else
        let rec go k =
          let cand = Printf.sprintf "%s%d" base k in
          if Hashtbl.mem used cand then go (k + 1) else cand
        in
        go 2)
    base_names

(** Collapse an eligible nest into one loop over the combined induction
    counter.  [already] lists variables assigned at top level before the
    nest (those are live-in and must not be re-initialized).

    The rewrite introduces three 1-bit flags: [_nf] (first inner
    iteration of a row — runs [pre]), [_nl] (last inner iteration — runs
    [post] and steps the outer counter) and [_nd] (last iteration of the
    whole nest — exits the loop).  Variables assigned inside the nest but
    not before it are hoisted to zero-initializations so the elaborator
    treats them as loop-carried (their value must survive the inner
    iterations between a row's [pre] and [post]); each init is given the
    width the variable's first real assignment would produce, so widths
    match the legacy unroll lowering.  The loop's pipeline attributes
    (II, latency bounds) come from the {e inner} loop: the flattened
    kernel is the inner body, and the outer dimension's II is the derived
    [kernel II x inner trip]. *)
let flatten ~design ~already t =
  let wi = counter_width t.outer_lo t.outer_hi and wj = counter_width t.inner_lo t.inner_hi in
  let nf, nl, nd =
    match fresh_names design [ "_nf"; "_nl"; "_nd" ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (v, w) -> Hashtbl.replace env v w) design.d_vars;
  if not (Hashtbl.mem env t.outer_var) then Hashtbl.replace env t.outer_var wi;
  if not (Hashtbl.mem env t.inner_var) then Hashtbl.replace env t.inner_var wj;
  let nest_stmts = t.pre @ t.inner_body @ t.post in
  infer_stmts design env nest_stmts;
  let hoisted =
    assigned_vars nest_stmts |> dedup
    |> List.filter (fun v ->
           (not (List.mem v already)) && v <> t.outer_var && v <> t.inner_var)
  in
  let hoists =
    List.map
      (fun v ->
        let w = match Hashtbl.find_opt env v with Some w -> w | None -> 32 in
        Assign (v, Int_w (0, w)))
      hoisted
  in
  let i = t.outer_var and j = t.inner_var in
  let body =
    [ Assign (nf, Bin (Opkind.Eq, Var j, Int_w (t.inner_lo, wj))) ]
    @ (if t.pre = [] then [] else [ If (Var nf, t.pre, []) ])
    @ t.inner_body
    @ [ Assign (nl, Bin (Opkind.Eq, Var j, Int_w (t.inner_hi - 1, wj))) ]
    @ (if t.post = [] then [] else [ If (Var nl, t.post, []) ])
    @ [
        Assign (nd, Bin (Opkind.Band, Var nl, Bin (Opkind.Eq, Var i, Int_w (t.outer_hi - 1, wi))));
        Assign (j, Cond (Var nl, Int_w (t.inner_lo, wj), Bin (Opkind.Add, Var j, Int_w (1, wj))));
        Assign (i, Cond (Var nl, Bin (Opkind.Add, Var i, Int_w (1, wi)), Var i));
      ]
  in
  let attrs =
    {
      l_name = t.outer_attrs.l_name;
      l_ii = t.inner_attrs.l_ii;
      l_min_latency = t.inner_attrs.l_min_latency;
      l_max_latency = t.inner_attrs.l_max_latency;
      l_unroll = false;
    }
  in
  let stmts =
    hoists
    @ [
        Assign (i, Int_w (t.outer_lo, wi));
        Assign (j, Int_w (t.inner_lo, wj));
        Do_while (body, Bin (Opkind.Eq, Var nd, Int_w (0, 1)), attrs);
        (* match the unroll lowering's counter exit value *)
        Assign (j, Int_w (t.inner_hi, wj));
      ]
  in
  (stmts, info_of t)

(** {2 Depth-3 nests} *)

(** A 3-level counted nest: [for (i) { pre1; for (j) { pre2; for (k)
    { body } post2 }; post1 }].  Numbered outermost-in: dimension 1 is
    the outer loop, 3 the innermost kernel. *)
type t3 = {
  v1 : string;
  lo1 : int;
  hi1 : int;
  a1 : loop_attrs;
  v2 : string;
  lo2 : int;
  hi2 : int;
  a2 : loop_attrs;
  v3 : string;
  lo3 : int;
  hi3 : int;
  a3 : loop_attrs;
  pre1 : stmt list;  (** outer-body statements before the middle loop *)
  post1 : stmt list;  (** outer-body statements after the middle loop *)
  pre2 : stmt list;  (** middle-body statements before the inner loop *)
  post2 : stmt list;  (** middle-body statements after the inner loop *)
  body3 : stmt list;  (** innermost kernel *)
}

let trip1 t = t.hi1 - t.lo1
let trip2 t = t.hi2 - t.lo2
let trip3 t = t.hi3 - t.lo3

let info_of3 t =
  let dim name var lo trip ii = { d_name = name; d_var = var; d_lo = lo; d_trip = trip; d_ii = ii } in
  {
    ni_dims =
      [
        dim t.a1.l_name t.v1 t.lo1 (trip1 t) t.a1.l_ii;
        dim t.a2.l_name t.v2 t.lo2 (trip2 t) t.a2.l_ii;
        dim t.a3.l_name t.v3 t.lo3 (trip3 t) t.a3.l_ii;
      ];
    ni_perfect = t.pre1 = [] && t.post1 = [] && t.pre2 = [] && t.post2 = [];
    ni_flat_name = t.a1.l_name;
    ni_pre_stmts = List.length t.pre1 + List.length t.pre2;
    ni_post_stmts = List.length t.post1 + List.length t.post2;
  }

(** Structural recognition of a 3-level nest: {!recognize} applied twice
    — the outer nest's inner loop must itself contain a top-level [For]. *)
let recognize3 s =
  match recognize s with
  | None -> None
  | Some o -> (
      match recognize (For (o.inner_var, o.inner_lo, o.inner_hi, o.inner_body, o.inner_attrs)) with
      | None -> None
      | Some m ->
          Some
            {
              v1 = o.outer_var;
              lo1 = o.outer_lo;
              hi1 = o.outer_hi;
              a1 = o.outer_attrs;
              v2 = m.outer_var;
              lo2 = m.outer_lo;
              hi2 = m.outer_hi;
              a2 = m.outer_attrs;
              v3 = m.inner_var;
              lo3 = m.inner_lo;
              hi3 = m.inner_hi;
              a3 = m.inner_attrs;
              pre1 = o.pre;
              post1 = o.post;
              pre2 = m.pre;
              post2 = m.post;
              body3 = m.inner_body;
            })

let find3 stmts =
  let rec go before = function
    | [] -> None
    | s :: rest -> (
        match recognize3 s with
        | Some n -> Some (List.rev before, n, rest)
        | None -> go (s :: before) rest)
  in
  go [] stmts

(** Depth-3 flattening eligibility: the same discipline as {!eligible},
    extended across three dimensions — each counter may only be read
    inside its own loop's extent. *)
let eligible3 t =
  let reject fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let around1 = t.pre1 @ t.post1 in
  let around2 = t.pre2 @ t.post2 in
  let counters = [ t.v1; t.v2; t.v3 ] in
  if t.a1.l_unroll || t.a2.l_unroll || t.a3.l_unroll then reject "a dimension is marked unroll"
  else if trip1 t <= 0 || trip2 t <= 0 || trip3 t <= 0 then reject "non-positive trip count"
  else if List.length (dedup counters) <> 3 then
    reject "dimensions share an induction variable"
  else if contains_loop around1 || contains_loop around2 then
    reject "statements around the nested loops contain a further loop"
  else if contains_loop t.body3 then reject "the nest is deeper than three loops"
  else if mentions t.v3 (around1 @ around2) then
    reject "a statement outside the innermost loop references its counter '%s'" t.v3
  else if mentions t.v2 around1 then
    reject "a statement outside the middle loop references its counter '%s'" t.v2
  else if
    List.exists (fun v -> List.mem v counters) (assigned_vars (around1 @ around2 @ t.body3))
  then reject "the nest body assigns an induction counter"
  else Ok ()

(** Collapse an eligible 3-level nest into one loop over the combined
    induction counter.  The depth-2 scheme generalizes with two extra
    flags: [_nf]/[_nl] mark the first/last innermost iteration of a
    middle row (predicating [pre2]/[post2]), [_nff]/[_nll] additionally
    mark the first/last middle iteration of an outer row (predicating
    [pre1]/[post1]), and [_nd] exits after the last iteration of the
    whole nest.  Counter stepping is hierarchical: [k] resets on [_nl],
    [j] steps only on [_nl] and resets on [_nll], [i] steps only on
    [_nll].  Attributes come from the innermost loop, the name from the
    outermost, exactly as in {!flatten}. *)
let flatten3 ~design ~already t =
  let w1 = counter_width t.lo1 t.hi1
  and w2 = counter_width t.lo2 t.hi2
  and w3 = counter_width t.lo3 t.hi3 in
  let nf, nff, nl, nll, nd =
    match fresh_names design [ "_nf"; "_nff"; "_nl"; "_nll"; "_nd" ] with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (v, w) -> Hashtbl.replace env v w) design.d_vars;
  if not (Hashtbl.mem env t.v1) then Hashtbl.replace env t.v1 w1;
  if not (Hashtbl.mem env t.v2) then Hashtbl.replace env t.v2 w2;
  if not (Hashtbl.mem env t.v3) then Hashtbl.replace env t.v3 w3;
  let nest_stmts = t.pre1 @ t.pre2 @ t.body3 @ t.post2 @ t.post1 in
  infer_stmts design env nest_stmts;
  let hoisted =
    assigned_vars nest_stmts |> dedup
    |> List.filter (fun v ->
           (not (List.mem v already)) && v <> t.v1 && v <> t.v2 && v <> t.v3)
  in
  let hoists =
    List.map
      (fun v ->
        let w = match Hashtbl.find_opt env v with Some w -> w | None -> 32 in
        Assign (v, Int_w (0, w)))
      hoisted
  in
  let i = t.v1 and j = t.v2 and k = t.v3 in
  let body =
    [
      Assign (nf, Bin (Opkind.Eq, Var k, Int_w (t.lo3, w3)));
      Assign (nff, Bin (Opkind.Band, Var nf, Bin (Opkind.Eq, Var j, Int_w (t.lo2, w2))));
    ]
    @ (if t.pre1 = [] then [] else [ If (Var nff, t.pre1, []) ])
    @ (if t.pre2 = [] then [] else [ If (Var nf, t.pre2, []) ])
    @ t.body3
    @ [
        Assign (nl, Bin (Opkind.Eq, Var k, Int_w (t.hi3 - 1, w3)));
        Assign (nll, Bin (Opkind.Band, Var nl, Bin (Opkind.Eq, Var j, Int_w (t.hi2 - 1, w2))));
      ]
    @ (if t.post2 = [] then [] else [ If (Var nl, t.post2, []) ])
    @ (if t.post1 = [] then [] else [ If (Var nll, t.post1, []) ])
    @ [
        Assign
          (nd, Bin (Opkind.Band, Var nll, Bin (Opkind.Eq, Var i, Int_w (t.hi1 - 1, w1))));
        Assign (k, Cond (Var nl, Int_w (t.lo3, w3), Bin (Opkind.Add, Var k, Int_w (1, w3))));
        Assign
          ( j,
            Cond
              ( Var nl,
                Cond (Var nll, Int_w (t.lo2, w2), Bin (Opkind.Add, Var j, Int_w (1, w2))),
                Var j ) );
        Assign (i, Cond (Var nll, Bin (Opkind.Add, Var i, Int_w (1, w1)), Var i));
      ]
  in
  let attrs =
    {
      l_name = t.a1.l_name;
      l_ii = t.a3.l_ii;
      l_min_latency = t.a3.l_min_latency;
      l_max_latency = t.a3.l_max_latency;
      l_unroll = false;
    }
  in
  let stmts =
    hoists
    @ [
        Assign (i, Int_w (t.lo1, w1));
        Assign (j, Int_w (t.lo2, w2));
        Assign (k, Int_w (t.lo3, w3));
        Do_while (body, Bin (Opkind.Eq, Var nd, Int_w (0, 1)), attrs);
        (* match the unroll lowering's counter exit values *)
        Assign (j, Int_w (t.hi2, w2));
        Assign (k, Int_w (t.hi3, w3));
      ]
  in
  (stmts, info_of3 t)

(** {2 Hierarchical splitting} *)

let rec subst_expr map e =
  match e with
  | Int _ | Int_w _ | Port _ -> e
  | Var v -> ( match List.assoc_opt v map with Some e' -> e' | None -> e)
  | Bin (op, a, b) -> Bin (op, subst_expr map a, subst_expr map b)
  | Un (op, a) -> Un (op, subst_expr map a)
  | Cond (c, a, b) -> Cond (subst_expr map c, subst_expr map a, subst_expr map b)
  | Slice (a, hi, lo) -> Slice (subst_expr map a, hi, lo)
  | Call (f, args, w) -> Call (f, List.map (subst_expr map) args, w)

let rec subst_stmts map stmts =
  List.map
    (fun s ->
      match s with
      | Assign (v, e) -> Assign (v, subst_expr map e)
      | Write (p, e) -> Write (p, subst_expr map e)
      | Wait -> Wait
      | Stall_until e -> Stall_until (subst_expr map e)
      | If (c, t, f) -> If (subst_expr map c, subst_stmts map t, subst_stmts map f)
      | Do_while (b, c, a) -> Do_while (subst_stmts map b, subst_expr map c, a)
      | While (c, b, a) -> While (subst_expr map c, subst_stmts map b, a)
      | For (v, lo, hi, b, a) -> For (v, lo, hi, subst_stmts map b, a))
    stmts

(** Name of the super-op standing in for the inner loop in the outer
    summary design. *)
let super_op_callee = "nest_body"

(** Split a design around its first eligible nest into (inner design,
    outer summary design, info) for bottom-up hierarchical scheduling.

    The inner design keeps everything up to and including the inner loop
    (the outer counter pinned at its lower bound); it is scheduled first
    to obtain the inner kernel's II and latency.  The outer design
    replaces the inner loop with [_nest_res = nest_body(<live-ins>)], a
    black-box call whose latency [Hls_core.Nest_sched] patches to the
    inner kernel's span once known; reads of inner-loop results in [post]
    are redirected to [_nest_res].  The outer design summarizes {e
    timing}, not behaviour — port reads inside the inner body are folded
    into the super-op. *)
let split (d : Ast.design) =
  match find d.d_body with
  | None -> None
  | Some (before, t, after) -> (
      match eligible t with
      | Error _ -> None
      | Ok () ->
          if contains_loop before then None
          else
            let wi = counter_width t.outer_lo t.outer_hi in
            let inner_for =
              For (t.inner_var, t.inner_lo, t.inner_hi, t.inner_body, t.inner_attrs)
            in
            let inner_design =
              {
                d with
                d_name = d.d_name ^ "_inner";
                d_body =
                  before @ [ Assign (t.outer_var, Int_w (t.outer_lo, wi)) ] @ t.pre
                  @ [ inner_for ];
              }
            in
            let res = List.hd (fresh_names d [ "_nest_res" ]) in
            let inner_assigned =
              assigned_vars t.inner_body |> dedup
              |> List.filter (fun v -> v <> t.inner_var && v <> t.outer_var)
            in
            let live_in =
              read_vars [] [ inner_for ] |> dedup
              |> List.filter (fun v ->
                     (not (List.mem v inner_assigned)) && v <> t.inner_var)
            in
            let args = match live_in with [] -> [ Var t.outer_var ] | vs -> List.map (fun v -> Var v) vs in
            let map = List.map (fun v -> (v, Var res)) inner_assigned in
            let outer_body =
              before
              @ [
                  For
                    ( t.outer_var,
                      t.outer_lo,
                      t.outer_hi,
                      t.pre
                      @ [ Assign (res, Call (super_op_callee, args, 32)) ]
                      @ subst_stmts map t.post,
                      t.outer_attrs );
                ]
              @ subst_stmts map after
            in
            let outer_design = { d with d_name = d.d_name ^ "_outer"; d_body = outer_body } in
            Some (inner_design, outer_design, info_of t))
