(** Typed frontend faults: a stable machine code plus the source loop the
    fault is anchored at (when any).  Raised by {!Desugar}, {!Nest},
    {!Check} and {!Elaborate}; lowered to typed diagnostics by the flow. *)

type t = {
  fe_code : string;
      (** stable machine code, e.g. ["loop_under_conditional"],
          ["unroll_overflow"], ["nonpositive_trip"], ["while_dynamic"],
          ["while_never"], ["nest_shape"], ["check"] or the generic
          ["frontend"] *)
  fe_loop : string option;  (** source loop name, when the fault has one *)
  fe_message : string;  (** human-readable message (loop name included) *)
}

exception Error of t

val fail : ?loop:string -> code:string -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

val message : t -> string
val code : t -> string
val loop : t -> string option
