(** Event trace of a scheduling run, used to replay the paper's worked
    examples as narratives.  Events carry a severity level ([Debug] for
    per-op binding detail, [Info] for the relaxation narrative, [Warn] for
    failures) so long narratives can be filtered. *)

type level = Debug | Info | Warn

type t

val create : ?echo:bool -> ?sink:(level -> string -> unit) -> unit -> t
(** [sink] is invoked synchronously on every event as it is recorded —
    the live streaming hook used by the compile-service daemon to forward
    scheduling events to the submitting client while the job runs. *)

val log : t -> ('a, unit, string, unit) format4 -> 'a
(** Records at level [Info] (the historical behaviour). *)

val log_at : t -> level -> ('a, unit, string, unit) format4 -> 'a

val logf : ?level:level -> t option -> ('a, unit, string, unit) format4 -> 'a
(** No-op on [None] — callers thread an optional trace for free.  Level
    defaults to [Info]. *)

val level_to_string : level -> string

val events : t -> string list
(** All events, oldest first (unfiltered — the historical behaviour). *)

val events_at : min:level -> t -> string list
(** Events at or above a severity level. *)

val counts : t -> (level * int) list
val summary : t -> string
(** Event-count summary, e.g. ["214 events (180 debug, 30 info, 4 warn)"]. *)

val pp : Format.formatter -> t -> unit
