(** The relaxation expert system (Sections IV.B and V).

    When a scheduling pass fails, the restraints it recorded are analyzed
    and a corrective action is chosen: "Each restraint suggests a set of
    actions ... Every action has an estimated cost, which is combined with
    the number of restraints solved by this action and the restraint
    weight.  The action with the best estimated gain wins."

    Actions (the portfolio of the paper):
    - [Add_state] — grow the latency interval (where the designer's bound
      permits);
    - [Add_resource] — add an instance of a resource type, {e only} when
      the expert's timing estimate says the failing op would then fit (this
      is how the paper's Example 1 knows that a second multiplier "does not
      help because two multiplications cannot fit in the given clock
      cycle");
    - [Speculate] — drop a guard from an op's commit path when the guard,
      not the data, dominates the failing arrival;
    - [Move_scc] — the novel pipelining action: move a whole strongly
      connected component to the next pipeline stage when a member fails
      ("this failure is distinguished from an ordinary negative slack
      failure");
    - [Forbid] — exclude an (op, instance) pair that closed a structural
      combinational cycle. *)

open Hls_ir
open Hls_techlib

type action =
  | Add_state
  | Add_resource of Resource.t * int  (** type and how many instances *)
  | Speculate of int
  | Move_scc of int  (** SCC index; moves its stage assignment one later *)
  | Forbid of int * int

type options = {
  enable_scc_move : bool;  (** Table 4 ablation switch *)
  enable_speculation : bool;
  enable_add_resource : bool;
  max_batch : int;
      (** cap on actions returned per pass by {!choose_many}: the winner
          plus at most [max_batch - 1] batched runner-ups *)
}

let default_options =
  { enable_scc_move = true; enable_speculation = true; enable_add_resource = true; max_batch = 8 }

let action_to_string = function
  | Add_state -> "add_state"
  | Add_resource (rt, n) -> Printf.sprintf "add_resource(%dx %s)" n (Resource.to_string rt)
  | Speculate op -> Printf.sprintf "speculate(op %d)" op
  | Move_scc k -> Printf.sprintf "move_scc(#%d)" k
  | Forbid (op, inst) -> Printf.sprintf "forbid(op %d, inst %d)" op inst

(** Downstream cone (distance-0) of a set of ops, including the ops. *)
let downstream dfg ops =
  let seen = Hashtbl.create 32 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter (fun e -> if e.Dfg.distance = 0 then go e.Dfg.dst) (Dfg.out_edges dfg id)
    end
  in
  List.iter go ops;
  seen

type scored = { sc_action : action; sc_gain : float; sc_cost : float }

let score s = s.sc_gain /. (0.5 +. s.sc_cost)

(** Choose the best corrective action, or [None] when the portfolio is
    exhausted (the specification is overconstrained).

    [scc_of op] maps an op to its SCC index (if any); [scc_stage k] is the
    stage the SCC currently occupies; [n_stages] bounds SCC moves. *)
let choose ~allow_add_state ~(opts : options) ~(binding : Binding.t) ~(region : Region.t)
    ~(restraints : Restraint.t list) ~(sccs : int list list) ~(scc_of : int -> int option)
    ~(scc_stage : int -> int) : (action * string) option =
  let dfg = region.Region.dfg in
  let restraints = Restraint.weight_by_proximity dfg restraints in
  (* the decision is driven by the failures and their fan-in cones; plain
     deferral noise (a busy attempt that succeeded later elsewhere) would
     otherwise swamp the gains *)
  let restraints =
    List.filter (fun (r : Restraint.t) -> r.Restraint.r_fatal || r.Restraint.r_weight > 0.35) restraints
  in
  let candidates = ref [] in
  let push a = candidates := a :: !candidates in
  (* --- Add_state ---
     More states help congestion (busy resources, too-small windows,
     inter-iteration pressure) and chaining-induced negative slack — but
     not slack caused by saturated sharing muxes, where every compatible
     instance is already too slow even from registers. *)
  if allow_add_state && region.Region.n_steps < region.Region.max_steps then begin
    let gain =
      List.fold_left
        (fun acc (r : Restraint.t) ->
          let scale = if r.Restraint.r_fatal then 1.0 else 0.2 in
          match r.Restraint.r_fail with
          | Restraint.F_busy _ | Restraint.F_window | Restraint.F_dep ->
              acc +. (scale *. r.Restraint.r_weight)
          | Restraint.F_slack _ ->
              let op = Dfg.find dfg r.Restraint.r_op in
              if Binding.would_fit_existing binding op then acc +. (scale *. r.Restraint.r_weight)
              else acc
          | Restraint.F_cycle _ -> acc +. (0.5 *. scale *. r.Restraint.r_weight)
          | Restraint.F_blocked | Restraint.F_no_resource _ | Restraint.F_forbidden
          | Restraint.F_anchor ->
              acc)
        0.0 restraints
    in
    if gain > 0.0 then push { sc_action = Add_state; sc_gain = gain; sc_cost = 1.0 }
  end;
  (* --- Add_resource ---
     Credited by busy/missing-resource restraints a fresh instance would
     satisfy, and by negative-slack restraints whose op no longer fits any
     existing instance (saturated sharing muxes) but would fit a fresh
     one. *)
  if opts.enable_add_resource then begin
    let by_type = Hashtbl.create 4 in
    let credit rt w =
      let key = Resource.to_string rt in
      let cur = match Hashtbl.find_opt by_type key with Some (g, _) -> g | None -> 0.0 in
      Hashtbl.replace by_type key (cur +. w, rt)
    in
    List.iter
      (fun (r : Restraint.t) ->
        let op = Dfg.find dfg r.Restraint.r_op in
        match r.Restraint.r_fail with
        | Restraint.F_busy rt | Restraint.F_no_resource rt ->
            (* only count restraints a fresh instance would actually solve *)
            if Binding.would_fit binding op ~step:r.Restraint.r_step ~speculated:op.Dfg.speculated
            then credit rt r.Restraint.r_weight
        | Restraint.F_slack _ ->
            if
              (not (Binding.would_fit_existing binding op))
              && Binding.would_fit binding op ~step:r.Restraint.r_step
                   ~speculated:op.Dfg.speculated
            then
              Option.iter (fun rt -> credit rt r.Restraint.r_weight) (Resource.of_op dfg op)
        | _ -> ())
      restraints;
    let area_unit =
      Library.area binding.Binding.lib
        { Resource.rclass = Opkind.R_addsub; in_widths = [ 32; 32 ]; out_width = 32 }
    in
    Hashtbl.iter
      (fun _ (gain, rt) ->
        if gain > 0.0 then begin
          (* batch the addition: roughly one instance per handful of
             starved operations, so large designs converge in passes
             proportional to log of the shortfall, not to the shortfall *)
          let n = max 1 (min 8 (int_of_float (gain /. 4.0))) in
          push
            {
              sc_action = Add_resource (rt, n);
              sc_gain = gain;
              sc_cost = 0.4 +. (float_of_int n *. Library.area binding.Binding.lib rt /. area_unit /. 10.0);
            }
        end)
      by_type
  end;
  (* --- Speculate --- *)
  if opts.enable_speculation then
    List.iter
      (fun (r : Restraint.t) ->
        match r.Restraint.r_fail with
        | Restraint.F_slack _ | Restraint.F_window ->
            let op = Dfg.find dfg r.Restraint.r_op in
            if
              (not op.Dfg.speculated)
              && (not (Guard.is_always op.Dfg.guard))
              && Binding.guard_dominated binding op ~step:r.Restraint.r_step
              && Binding.would_fit binding op ~step:r.Restraint.r_step ~speculated:true
            then
              push
                {
                  sc_action = Speculate op.Dfg.id;
                  sc_gain = r.Restraint.r_weight;
                  sc_cost = 0.1;
                }
        | _ -> ())
      restraints;
  (* --- Move_scc --- *)
  if opts.enable_scc_move && Region.is_pipelined region then begin
    let n_stages = Region.n_stages region in
    (* the downstream cone is only consulted for F_blocked restraints, and
       computing it is O(region) per SCC — build it lazily so the common
       blocked-free pass costs O(restraints) per SCC, not O(region) *)
    let has_blocked =
      List.exists
        (fun (r : Restraint.t) ->
          match r.Restraint.r_fail with Restraint.F_blocked -> true | _ -> false)
        restraints
    in
    List.iteri
      (fun k scc_ops ->
        let stage = scc_stage k in
        if stage + 1 <= n_stages - 1 then begin
          let cone = if has_blocked then lazy (downstream dfg scc_ops) else lazy (Hashtbl.create 1) in
          let gain =
            List.fold_left
              (fun acc (r : Restraint.t) ->
                match r.Restraint.r_fail with
                | Restraint.F_slack _ | Restraint.F_window | Restraint.F_dep ->
                    if scc_of r.Restraint.r_op = Some k then acc +. (2.0 *. r.Restraint.r_weight)
                    else acc
                | Restraint.F_blocked ->
                    if Hashtbl.mem (Lazy.force cone) r.Restraint.r_op then
                      acc +. r.Restraint.r_weight
                    else acc
                | _ -> acc)
              0.0 restraints
          in
          if gain > 0.0 then push { sc_action = Move_scc k; sc_gain = gain; sc_cost = 0.2 }
        end)
      sccs
  end;
  (* --- Forbid --- *)
  List.iter
    (fun (r : Restraint.t) ->
      match r.Restraint.r_fail with
      | Restraint.F_cycle inst ->
          push
            {
              sc_action = Forbid (r.Restraint.r_op, inst);
              sc_gain = r.Restraint.r_weight;
              sc_cost = 0.3;
            }
      | _ -> ())
    restraints;
  match !candidates with
  | [] -> None
  | cs ->
      let best = List.fold_left (fun a b -> if score b > score a then b else a) (List.hd cs) (List.tl cs) in
      let why =
        Printf.sprintf "%s (gain %.2f, cost %.2f, %d restraints)"
          (action_to_string best.sc_action)
          best.sc_gain best.sc_cost (List.length restraints)
      in
      Some (best.sc_action, why)

(** Batched variant for large designs: the winning action plus independent
    runner-ups of the same kind — distinct starving resource types, or
    distinct failing SCCs (a design with many small recurrences would
    otherwise burn one pass per move).  Other action kinds stay
    exclusive. *)
let choose_many ~allow_add_state ~opts ~binding ~region ~restraints ~sccs ~scc_of ~scc_stage :
    (action * string) list =
  match choose ~allow_add_state ~opts ~binding ~region ~restraints ~sccs ~scc_of ~scc_stage with
  | None -> []
  | Some ((Move_scc k0, _) as first) ->
      (* gather every other SCC with fatal window/slack/dep restraints that
         can still move *)
      let n_stages = Region.n_stages region in
      let gains = Hashtbl.create 8 in
      List.iter
        (fun (r : Restraint.t) ->
          match r.Restraint.r_fail with
          | Restraint.F_slack _ | Restraint.F_window | Restraint.F_dep -> (
              match scc_of r.Restraint.r_op with
              | Some k when k <> k0 && scc_stage k + 1 <= n_stages - 1 ->
                  Hashtbl.replace gains k
                    (Option.value (Hashtbl.find_opt gains k) ~default:0.0
                    +. (2.0 *. r.Restraint.r_weight))
              | _ -> ())
          | _ -> ())
        restraints;
      let extra =
        Hashtbl.fold
          (fun k g acc ->
            if g >= 2.0 then
              (Move_scc k, Printf.sprintf "move_scc(#%d) (batched, gain %.2f)" k g) :: acc
            else acc)
          gains []
      in
      first :: List.filteri (fun i _ -> i < opts.max_batch - 1) extra
  | Some ((Add_resource _, _) as first) ->
      (* re-run the scoring to collect the runner-up resource additions *)
      let extra = ref [] in
      let opts_no_state = opts in
      ignore opts_no_state;
      (* cheap approach: ask again with the winner's type excluded is not
         expressible; instead reuse [choose]'s internals by scoring busy
         restraint types directly *)
      let by_type = Hashtbl.create 4 in
      List.iter
        (fun (r : Restraint.t) ->
          match r.Restraint.r_fail with
          | Restraint.F_busy rt | Restraint.F_no_resource rt ->
              if r.Restraint.r_fatal then begin
                let key = Resource.to_string rt in
                let cur = match Hashtbl.find_opt by_type key with Some (g, _) -> g | None -> 0.0 in
                Hashtbl.replace by_type key (cur +. r.Restraint.r_weight, rt)
              end
          | _ -> ())
        restraints;
      let first_key =
        match fst first with Add_resource (rt, _) -> Resource.to_string rt | _ -> ""
      in
      Hashtbl.iter
        (fun key (gain, rt) ->
          if key <> first_key && gain >= 2.0 then
            let n = max 1 (min 8 (int_of_float (gain /. 4.0))) in
            extra :=
              ( Add_resource (rt, n),
                Printf.sprintf "add_resource(%dx %s) (batched, gain %.2f)" n
                  (Resource.to_string rt) gain )
              :: !extra)
        by_type;
      first :: List.filteri (fun i _ -> i < opts.max_batch - 1) !extra
  | Some a -> [ a ]
