(** Pass-invariant scheduling context.  See the interface for what is
    cached and why it is safe: everything here except the priority scores
    is a pure function of the region's DFG, and the scores are tied to the
    physical identity of the interval analysis they were computed from. *)

open Hls_ir
open Hls_techlib

type t = {
  ctx_members : Dfg.op list;
  ctx_n_members : int;
  ctx_preds : (int, int list) Hashtbl.t;
  ctx_deps : (int, int list) Hashtbl.t;
  ctx_fanout : int -> int;
  ctx_class_key : (int, (Opkind.rclass * int list) option) Hashtbl.t;
  ctx_scores : (int, float) Hashtbl.t;
  mutable ctx_scores_aa : Asap_alap.t option;
}

let class_key dfg op =
  match Resource.of_op dfg op with
  | Some rt ->
      Some
        ( rt.Resource.rclass,
          List.map
            (fun w -> if w <= 8 then 8 else if w <= 16 then 16 else if w <= 32 then 32 else 64)
            rt.Resource.in_widths )
  | None -> None

let create (region : Region.t) =
  let dfg = region.Region.dfg in
  let members = Region.member_ops region in
  let n = List.length members in
  let preds = Hashtbl.create n in
  let deps_acc = Hashtbl.create n in
  List.iter
    (fun o ->
      let ps = Asap_alap.sched_preds region o in
      Hashtbl.replace preds o.Dfg.id ps;
      List.iter
        (fun p ->
          let r =
            match Hashtbl.find_opt deps_acc p with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace deps_acc p r;
                r
          in
          r := o.Dfg.id :: !r)
        ps)
    members;
  let deps = Hashtbl.create (Hashtbl.length deps_acc) in
  Hashtbl.iter (fun p r -> Hashtbl.replace deps p !r) deps_acc;
  let class_keys = Hashtbl.create n in
  List.iter (fun o -> Hashtbl.replace class_keys o.Dfg.id (class_key dfg o)) members;
  {
    ctx_members = members;
    ctx_n_members = n;
    ctx_preds = preds;
    ctx_deps = deps;
    ctx_fanout = Priority.fanout_table dfg;
    ctx_class_key = class_keys;
    ctx_scores = Hashtbl.create n;
    ctx_scores_aa = None;
  }

let refresh_scores ?(boosts = []) t ~weights ~aa =
  match t.ctx_scores_aa with
  | Some prev when prev == aa -> ()
  | _ ->
      List.iter
        (fun o ->
          Hashtbl.replace t.ctx_scores o.Dfg.id
            (Priority.score ~weights ~fanout:t.ctx_fanout aa o))
        t.ctx_members;
      (* feedback priority boosts: additive deltas on top of the base
         score.  Constant for the lifetime of a schedule call, so the
         aa-identity memo above stays sound. *)
      List.iter
        (fun (id, delta) ->
          match Hashtbl.find_opt t.ctx_scores id with
          | Some s -> Hashtbl.replace t.ctx_scores id (s +. delta)
          | None -> ())
        boosts;
      t.ctx_scores_aa <- Some aa
