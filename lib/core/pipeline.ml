(** Pipeline folding (Section V, Step II).

    After a pipelined region is scheduled in LI states, equivalent control
    steps (congruent modulo II) are folded onto single kernel states: the
    loop body becomes a kernel of II states, each executing the union of the
    operations of its folded steps, with every operation predicated by the
    activity of its pipeline stage.  The prologue fills the stages one
    initiation interval apart; the epilogue drains them; a stalling
    condition freezes all stages.

    Folding is a pure bookkeeping transform over the schedule — the
    scheduler guaranteed no resource is shared between equivalent steps and
    every SCC sits within one stage, so the fold cannot fail.  [validate]
    re-checks both properties plus the inter-iteration (modulo) dependency
    constraint, and is exercised heavily by the property tests. *)

open Hls_ir

type t = {
  f_ii : int;
  f_li : int;
  f_stages : int;
  f_kernel : (int, int * int) Hashtbl.t;
      (** op -> (kernel state = step mod II, stage = step / II) *)
}

(** Fold a successful schedule.  For a non-pipelined region this is the
    identity fold: one stage, kernel = the LI states themselves. *)
let fold (s : Scheduler.t) : t =
  let region = s.Scheduler.s_region in
  let ii = Region.ii region in
  let li = s.Scheduler.s_li in
  let kernel = Hashtbl.create 64 in
  Hls_netlist.Netlist.iter_placements s.Scheduler.s_binding.Binding.net (fun op pl ->
      let step = pl.Binding.pl_step in
      Hashtbl.replace kernel op (step mod ii, step / ii));
  { f_ii = ii; f_li = li; f_stages = (li + ii - 1) / ii; f_kernel = kernel }

let kernel_state t op = Hashtbl.find_opt t.f_kernel op

(** Ops executing in kernel state [state] for stage [stage]. *)
let ops_at t ~state ~stage =
  Hashtbl.fold
    (fun op (st, sg) acc -> if st = state && sg = stage then op :: acc else acc)
    t.f_kernel []
  |> List.sort compare

(** Effective inter-iteration distance of an edge, in the region's own
    (innermost) iterations: the logical distance times the stride of the
    nest dimension carrying the dependence (see {!Region.stride}).  For
    ordinary edges ([dim = 0]) this is just [e.distance].  Exposed as a
    pure helper so the per-dimension modulo constraint is unit-testable. *)
let eff_distance region (e : Dfg.edge) = e.Dfg.distance * Region.stride region e.Dfg.dim

(** Slack granted to a loop-carried edge by the modulo constraint
    [step(dst) >= finish(src) - eff_distance*II + 1]: an edge carried by
    an enclosing nest dimension [d] only has to close once per [stride d]
    kernel iterations, so it earns proportionally more pipeline slack. *)
let modulo_slack region ~ii (e : Dfg.edge) = eff_distance region e * ii

(** Re-check the folding invariants:
    - no two ops bound to the same instance land in the same kernel state
      (unless their guards are mutually exclusive);
    - every SCC of the region occupies a single stage;
    - every loop-carried edge satisfies the (per-dimension) modulo
      constraint [step(dst) >= finish(src) - d_eff*II + 1], where [d_eff]
      is {!eff_distance}. *)
let validate (s : Scheduler.t) (t : t) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let binding = s.Scheduler.s_binding in
  let region = s.Scheduler.s_region in
  let dfg = region.Region.dfg in
  (* resource conflicts per kernel state *)
  List.iter
    (fun (inst : Binding.inst) ->
      let by_state = Hashtbl.create 4 in
      List.iter
        (fun op ->
          match kernel_state t op with
          | Some (st, _) ->
              let prev = Option.value (Hashtbl.find_opt by_state st) ~default:[] in
              List.iter
                (fun o ->
                  let g1 = (Dfg.find dfg o).Dfg.guard and g2 = (Dfg.find dfg op).Dfg.guard in
                  if not (Guard.mutually_exclusive g1 g2) then
                    err "instance %d: ops %d and %d collide in kernel state %d" inst.Binding.inst_id
                      o op st)
                prev;
              Hashtbl.replace by_state st (op :: prev)
          | None -> err "op %d bound to instance %d but not folded" op inst.Binding.inst_id)
        inst.Binding.bound)
    (Hls_netlist.Netlist.insts binding.Binding.net);
  (* SCC stage confinement *)
  List.iter
    (fun scc ->
      let stages =
        List.filter_map (fun op -> Option.map snd (kernel_state t op)) scc
        |> List.sort_uniq compare
      in
      match stages with
      | [] | [ _ ] -> ()
      | _ -> err "SCC [%s] spans stages" (String.concat ";" (List.map string_of_int scc)))
    (Region.sccs region);
  (* modulo dependency constraint *)
  Dfg.iter_ops dfg (fun op ->
      List.iter
        (fun e ->
          if e.Dfg.distance > 0 && Region.mem region e.Dfg.src && Region.mem region e.Dfg.dst then
            match (Binding.placement binding e.Dfg.src, Binding.placement binding e.Dfg.dst) with
            | Some sp, Some dp ->
                if dp.Binding.pl_step < sp.Binding.pl_finish - modulo_slack region ~ii:t.f_ii e + 1
                then
                  err "loop-carried edge %d->%d (dim %d) violates the modulo constraint" e.Dfg.src
                    e.Dfg.dst e.Dfg.dim
            | _ -> ())
        (Dfg.in_edges dfg op.Dfg.id));
  List.rev !errs

(** Render the kernel as the paper's Fig. 5: one row per kernel state, one
    column per pipeline stage. *)
let to_table (s : Scheduler.t) (t : t) : string list list =
  let dfg = s.Scheduler.s_region.Region.dfg in
  let header =
    "state \\ stage" :: List.init t.f_stages (fun k -> Printf.sprintf "Stage%d" (k + 1))
  in
  let rows =
    List.init t.f_ii (fun st ->
        Printf.sprintf "cycle %d" (st + 1)
        :: List.init t.f_stages (fun sg ->
               ops_at t ~state:st ~stage:sg
               |> List.filter (fun op -> Opkind.is_resource_op (Dfg.find dfg op).Dfg.kind
                                         || (match (Dfg.find dfg op).Dfg.kind with
                                             | Opkind.Read _ | Opkind.Write _ -> true
                                             | _ -> false))
               |> List.map (fun op -> (Dfg.find dfg op).Dfg.name)
               |> String.concat ", "))
  in
  header :: rows
