(** Lazy-deletion binary max-heap over (score, -id) for the pass
    scheduler's ready pool.

    The pass inner loop repeatedly extracts the highest-priority ready
    operation; the heap replaces the previous O(|ready|) fold per pick.
    Ordering is lexicographic on (score, -id) — exactly the fold's
    tie-break, so pick sequences are identical.

    Deletion is lazy: the heap never removes an entry in place.  Callers
    keep their own membership set (the [ready] table) and discard stale
    popped entries; an op may therefore appear more than once, and each
    copy is vetted against the membership set on extraction. *)

type t

val create : ?capacity:int -> unit -> t
val clear : t -> unit
val is_empty : t -> bool
val length : t -> int

val push : t -> score:float -> int -> unit
(** Insert an (score, op id) entry; O(log n). *)

val pop : t -> (float * int) option
(** Extract the maximum entry under lexicographic (score, -id); O(log n).
    [None] when empty. *)
