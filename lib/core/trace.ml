(** Event trace of a scheduling run.

    Collects human-readable events (pass starts, binding failures,
    relaxation decisions) so that the worked examples of the paper
    (Examples 1–3) can be replayed as narratives by the bench harness.

    Events carry a severity level so long relaxation narratives can be
    filtered: [Debug] for per-op binding detail, [Info] for the pass and
    relaxation narrative, [Warn] for failures and give-ups.  The original
    [log]/[logf] entry points are level-[Info] and keep working
    unchanged. *)

type level = Debug | Info | Warn

type t = {
  mutable events : (level * string) list;
  echo : bool;
  sink : (level -> string -> unit) option;
      (** live consumer — the compile daemon streams events to the
          submitting client through this while the job runs *)
}

let create ?(echo = false) ?sink () = { events = []; echo; sink }

let level_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

let log_at t level fmt =
  Printf.ksprintf
    (fun s ->
      t.events <- (level, s) :: t.events;
      if t.echo then print_endline s;
      match t.sink with None -> () | Some f -> f level s)
    fmt

let log t fmt = log_at t Info fmt

let logf ?(level = Info) t_opt fmt =
  match t_opt with
  | Some t -> log_at t level fmt
  | None -> Printf.ksprintf ignore fmt

let events t = List.rev_map snd t.events

let events_at ~min t =
  List.rev t.events
  |> List.filter_map (fun (l, e) -> if level_rank l >= level_rank min then Some e else None)

let counts t =
  let n l = List.length (List.filter (fun (l', _) -> l' = l) t.events) in
  [ (Debug, n Debug); (Info, n Info); (Warn, n Warn) ]

let summary t =
  let cs = counts t in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 cs in
  Printf.sprintf "%d events (%s)" total
    (String.concat ", "
       (List.map (fun (l, n) -> Printf.sprintf "%d %s" n (level_to_string l)) cs))

let pp fmt t = List.iter (fun e -> Format.fprintf fmt "%s@." e) (events t)
