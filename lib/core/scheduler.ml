(** The pass scheduler (Fig. 7) and the outer relaxation loop.

    A pass walks the control steps of the linear region in order.  At each
    step it repeatedly picks the highest-priority ready operation and tries
    to bind it to a compatible resource instance, with every candidate
    binding vetted by the netlist timing model in {!Binding}.  An operation
    that cannot be bound is deferred to a later step, unless the step is the
    last of its life span — then it joins [Failed_ops] and the pass will
    fail after recording restraints.

    The outer loop implements "iterative simultaneous scheduling and
    binding passes": on failure the {!Expert} system relaxes constraints
    (add state / add resource / speculate / move SCC / forbid pair) and the
    pass re-runs, up to [max_passes].

    Pipelining needs only the two extensions of Section V: busy tables keyed
    by equivalence classes of steps (handled inside {!Binding}) and SCC
    stage windows (handled here), so the same pass code serves sequential
    and pipelined regions. *)

open Hls_ir
open Hls_techlib

(* --- region-parallel analysis ---------------------------------------
   Independent SCC groups are analyzed on a shared domain pool.  The
   per-SCC computation is pure (graph reads + library lookups only) and
   results are merged in SCC index order, so the outcome is identical for
   every worker count; a pool of size 1 degenerates to the sequential
   path.  The pool is lazily created, shared across schedules, and
   drained at exit. *)

let analysis_jobs = Atomic.make 1

let set_jobs n = Atomic.set analysis_jobs (max 1 n)

let analysis_pool : Hls_pool.Pool.t option ref = ref None

let analysis_pool_get ~workers =
  match !analysis_pool with
  | Some p when Hls_pool.Pool.alive p ->
      Hls_pool.Pool.ensure p workers;
      p
  | _ ->
      let p = Hls_pool.Pool.create ~workers () in
      analysis_pool := Some p;
      at_exit (fun () -> Hls_pool.Pool.shutdown p);
      p

(* fan a pure per-item analysis over the pool; deterministic because the
   merge is by index.  Tasks that are dropped (pool shut down) or die are
   recomputed inline — same pure function, same result. *)
let parallel_map_array f items =
  let n = Array.length items in
  let jobs = Atomic.get analysis_jobs in
  if jobs > 1 && n >= 8 then begin
    let slots = Array.make n None in
    let p = analysis_pool_get ~workers:(min jobs n) in
    let all_submitted =
      Array.for_all Fun.id
        (Array.init n (fun k ->
             Hls_pool.Pool.submit p (fun () -> slots.(k) <- Some (f items.(k)))))
    in
    if all_submitted then Hls_pool.Pool.wait p;
    Array.mapi (fun k s -> match s with Some v -> v | None -> f items.(k)) slots
  end
  else Array.map f items

type options = {
  timing_aware : bool;
  expert : Expert.options;
  max_passes : int;
  priority_weights : Priority.weights;
  dedicated_ops : int list;
      (** user constraint (Section IV.B item 4): ops that must not share
          their resource instance with anything *)
  warm_start : bool;
      (** reuse pass-invariant analysis across relaxation passes, pick ready
          ops through the lazy-deletion heap, and replay the unaffected
          schedule prefix after a local expert action.  Disabling restores
          the pre-optimization cold-restart loop (the benchmark baseline):
          every pass rebuilds its tables, recomputes ASAP/ALAP and re-vets
          every binding from step 0. *)
  tolerate_scc_slack : bool;
      (** Table 4 ablation: when the SCC-move action is disabled, bind SCC
          members at their window even with negative slack and leave the
          violation for downstream logic synthesis to absorb *)
  seed_latency_floor : bool;
      (** start the latency interval at the resource-implied lower bound
          instead of the designer minimum; disable to follow the paper's
          one-state-at-a-time relaxation narrative *)
  max_actions : int;
      (** budget on total relaxation actions across all passes; the loop
          gives up with a typed budget error once it is spent *)
  timeout_s : float option;
      (** wall-clock budget for the whole relaxation loop; checked at the
          top of every pass *)
  (* --- feedback hints (lib/feedback): batched constraints applied at
     schedule start instead of discovered one expert action at a time.
     Hints referencing ops/SCCs/resources absent from this region are
     silently skipped — a hint is advice mined from an earlier run, not a
     hard constraint. *)
  priority_boosts : (int * float) list;
      (** additive priority-score deltas per op (critical-subgraph cones) *)
  speculated_ops : int list;  (** ops to pre-speculate *)
  forbidden_pairs : (int * int) list;  (** (op, inst) pairs to pre-forbid *)
  scc_stage_hints : (int * int) list;
      (** (scc index, stage) pre-pins for pipelined regions *)
  resource_floors : (Resource.t * int) list;
      (** minimum instance counts per resource type, topped up at start *)
  latency_floor : int option;
      (** start the latency interval at least here (clamped to the
          region's max); skipped for pipelined regions *)
}

let default_options =
  {
    timing_aware = true;
    expert = Expert.default_options;
    max_passes = 200;
    priority_weights = Priority.default_weights;
    dedicated_ops = [];
    warm_start = true;
    tolerate_scc_slack = false;
    seed_latency_floor = true;
    max_actions = 2000;
    timeout_s = None;
    priority_boosts = [];
    speculated_ops = [];
    forbidden_pairs = [];
    scc_stage_hints = [];
    resource_floors = [];
    latency_floor = None;
  }

type t = {
  s_region : Region.t;
  s_li : int;  (** final latency interval *)
  s_binding : Binding.t;
  s_passes : int;
  s_actions : string list;  (** relaxation actions applied, oldest first *)
  s_scc_stages : (int list * int) list;  (** each SCC's ops with its stage *)
  s_sched_time_s : float;
  s_warm_passes : int;  (** passes that replayed a schedule prefix *)
  s_cold_passes : int;  (** passes re-vetted from step 0 *)
  s_hints_applied : int;  (** feedback hints actually applied at start *)
}

type error = {
  e_message : string;
  e_code : string;  (** stable machine code, e.g. ["overconstrained"] *)
  e_restraints : Restraint.t list;
  e_passes : int;
  e_actions : string list;
  e_budget : Hls_diag.Diag.budget option;  (** which budget tripped, if any *)
}

type stats = {
  st_passes : int;
  st_actions : int;
  st_queries : int;  (** netlist timing queries — the paper's hottest query *)
  st_trials : int;  (** netlist what-if transactions opened *)
  st_commits : int;
  st_rollbacks : int;
  st_visits : int;  (** cells examined by bounded arrival propagation *)
  st_sched_s : float;
  st_warm_passes : int;  (** passes served by warm-start prefix replay *)
  st_cold_passes : int;  (** passes run from a cold restart *)
  st_hints : int;  (** feedback hints applied at schedule start *)
}

let stats t =
  let ns = Hls_netlist.Netlist.stats t.s_binding.Binding.net in
  {
    st_passes = t.s_passes;
    st_actions = List.length t.s_actions;
    st_queries = ns.Hls_netlist.Netlist.s_queries;
    st_trials = ns.Hls_netlist.Netlist.s_trials;
    st_commits = ns.Hls_netlist.Netlist.s_commits;
    st_rollbacks = ns.Hls_netlist.Netlist.s_rollbacks;
    st_visits = ns.Hls_netlist.Netlist.s_visits;
    st_sched_s = t.s_sched_time_s;
    st_warm_passes = t.s_warm_passes;
    st_cold_passes = t.s_cold_passes;
    st_hints = t.s_hints_applied;
  }

(* internal: unwinds the relaxation loop into a typed error *)
exception Give_up of { g_code : string; g_budget : Hls_diag.Diag.budget option; g_message : string }

let placement t op = Binding.placement t.s_binding op

let step_of t op =
  match placement t op with Some pl -> pl.Binding.pl_step | None -> invalid_arg "step_of: unplaced"

(** Ops scheduled on a given step, sorted by id — served by the netlist's
    per-step reverse index instead of a fold over all placements. *)
let ops_on_step t step = Hls_netlist.Netlist.ops_on_step t.s_binding.Binding.net step

(* ------------------------------------------------------------------ *)

type pass_outcome = Pass_ok | Pass_failed of Restraint.t list

(** One pass-log entry: enough to re-apply the event structurally on a
    warm start.  Binds record the placement the vetted trial committed
    (including the post-merge instance type); restraints record the fail
    so a fresh {!Restraint.t} can be minted (weights are mutated by the
    expert's proximity pass, so the original values must not be reused). *)
type pass_event =
  | Ev_bind of {
      ev_op : int;
      ev_step : int;
      ev_finish : int;
      ev_inst : int option;
      ev_rtype : Resource.t option;
    }
  | Ev_restraint of { ev_op : int; ev_step : int; ev_fail : Restraint.fail; ev_fatal : bool }

let event_step = function Ev_bind e -> e.ev_step | Ev_restraint e -> e.ev_step

let run_pass ~opts ~trace ~(ctx : Pass_ctx.t) ~(binding : Binding.t) ~(aa : Asap_alap.t) ~scc_of
    ?(scc_members = ([] : int list list)) ?warm ?(keep_prealloc = false) ~scc_stage_base
    ~scc_stage_local (region : Region.t) : pass_outcome * pass_event list =
  let n_sccs = List.length scc_members in
  let dfg = region.Region.dfg in
  let li = region.Region.n_steps in
  let ii = Region.ii region in
  Binding.reset_pass ~keep_prealloc binding;
  Array.iteri (fun k _ -> scc_stage_local.(k) <- scc_stage_base k) scc_stage_local;
  let restraints = ref [] in
  let log = ref [] in
  let add_restraint ~op ~step ~fail ~fatal =
    restraints := Restraint.make ~op ~step ~fail ~fatal :: !restraints
  in
  (* step-loop restraints enter the pass log (a warm start replays them);
     the up-front window failures and the end-of-pass F_blocked markers are
     recomputed fresh instead, so they are kept out of the log *)
  let add_logged_restraint ~op ~step ~fail ~fatal =
    add_restraint ~op ~step ~fail ~fatal;
    log := Ev_restraint { ev_op = op; ev_step = step; ev_fail = fail; ev_fatal = fatal } :: !log
  in
  let failed = Hashtbl.create 8 in
  let members = ctx.Pass_ctx.ctx_members in
  let unplaced = Hashtbl.create ctx.Pass_ctx.ctx_n_members in
  List.iter (fun o -> Hashtbl.replace unplaced o.Dfg.id o) members;
  (* --- incremental readiness ---
     [pending.(op)] counts unplaced scheduling predecessors; an op enters
     the ready pool when it reaches zero.  [min_step] tracks the earliest
     step allowed by the placed predecessors (finish step; +1 after a
     multi-cycle producer). *)
  let preds_of = ctx.Pass_ctx.ctx_preds in
  let deps_of = ctx.Pass_ctx.ctx_deps in
  let scores = ctx.Pass_ctx.ctx_scores in
  let pending = Hashtbl.create ctx.Pass_ctx.ctx_n_members in
  let min_step = Hashtbl.create ctx.Pass_ctx.ctx_n_members in
  let ready = Hashtbl.create 64 in
  (* the heap mirrors [ready] under lazy deletion: [ready] stays the truth
     set, stale heap entries are discarded on pop *)
  let use_heap = opts.warm_start in
  let heap = Ready_heap.create ~capacity:(max 16 ctx.Pass_ctx.ctx_n_members) () in
  let enter_ready id op =
    Hashtbl.replace ready id op;
    if use_heap then Ready_heap.push heap ~score:(Hashtbl.find scores id) id
  in
  List.iter
    (fun o ->
      let n = List.length (Hashtbl.find preds_of o.Dfg.id) in
      Hashtbl.replace pending o.Dfg.id n;
      Hashtbl.replace min_step o.Dfg.id 0;
      if n = 0 then enter_ready o.Dfg.id o)
    members;
  let on_placed op_id =
    Hashtbl.remove ready op_id;
    Hashtbl.remove unplaced op_id;
    let pl = Option.get (Binding.placement binding op_id) in
    let p_op = Dfg.find dfg op_id in
    let avail =
      if Library.op_latency binding.Binding.lib p_op.Dfg.kind > 1 then pl.Binding.pl_finish + 1
      else pl.Binding.pl_finish
    in
    match Hashtbl.find_opt deps_of op_id with
    | None -> ()
    | Some deps ->
        List.iter
          (fun d ->
            if Hashtbl.mem unplaced d then begin
              Hashtbl.replace min_step d (max avail (Hashtbl.find min_step d));
              let n = Hashtbl.find pending d - 1 in
              Hashtbl.replace pending d n;
              if n = 0 then enter_ready d (Dfg.find dfg d)
            end)
          deps
  in
  let drop_failed op_id =
    Hashtbl.replace failed op_id ();
    Hashtbl.remove unplaced op_id;
    Hashtbl.remove ready op_id
  in
  (* ops whose earliest feasible step falls beyond the latency interval can
     never bind in this pass: fail them up front with a window restraint *)
  List.iter
    (fun o ->
      let r = Asap_alap.range aa o.Dfg.id in
      if r.Asap_alap.asap > li - 1 then begin
        add_restraint ~op:o.Dfg.id ~step:(li - 1) ~fail:Restraint.F_window ~fatal:true;
        drop_failed o.Dfg.id
      end)
    members;
  let window_of op_id =
    match scc_of op_id with
    | None -> None
    | Some k -> (
        match scc_stage_local.(k) with
        | None -> None
        | Some stage -> Some (stage * ii, min ((stage * ii) + ii - 1) (li - 1)))
  in
  (* for regions with many independent recurrences, pin each SCC's stage
     from its members' timing-aware ASAP estimates instead of from the
     first (often dependency-free loop-mux) placement — one pass instead
     of one corrective move per SCC.  Single-SCC designs keep the paper's
     narrative: place first, move on failure. *)
  let scc_asap_stage =
    if n_sccs > 4 then
      Some
        (fun members ->
          let m =
            List.fold_left (fun acc o -> max acc (Asap_alap.range aa o).Asap_alap.asap) 0 members
          in
          Region.stage_of_step region (min m (li - 1)))
    else None
  in
  (match scc_asap_stage with
  | Some stage_of_members ->
      List.iteri
        (fun k members ->
          if scc_stage_local.(k) = None then scc_stage_local.(k) <- Some (stage_of_members members))
        scc_members
  | None -> ());
  let ready_at op step =
    let r = Asap_alap.range aa op.Dfg.id in
    (* in the Table 4 ablation a pinned SCC window overrides the timing
       estimate: the member is offered inside its window even when ASAP
       says it cannot meet timing there — the force-bind absorbs the
       violation *)
    (r.Asap_alap.asap <= step
    || (opts.tolerate_scc_slack && window_of op.Dfg.id <> None))
    && Hashtbl.find min_step op.Dfg.id <= step
    && (match window_of op.Dfg.id with
       | Some (lo, hi) -> lo <= step && step <= hi
       | None -> true)
    && (match op.Dfg.anchor with Some a -> a = step | None -> true)
  in
  let last_chance op step =
    let r = Asap_alap.range aa op.Dfg.id in
    let alap =
      match window_of op.Dfg.id with
      | Some (_, hi) -> min r.Asap_alap.alap hi
      | None -> r.Asap_alap.alap
    in
    step >= alap || step = li - 1
  in
  (* big-design fast path: when every instance of a resource class is busy
     (or mux-saturated) at a step, sibling unguarded ops of the same class
     defer immediately instead of re-probing each instance *)
  let use_class_memo = ctx.Pass_ctx.ctx_n_members > 500 in
  let class_key (op : Dfg.op) =
    match Hashtbl.find_opt ctx.Pass_ctx.ctx_class_key op.Dfg.id with Some k -> k | None -> None
  in
  let log_bind op_id =
    let pl = Option.get (Binding.placement binding op_id) in
    let rt =
      match pl.Binding.pl_inst with
      | Some i -> Some (Binding.find_inst binding i).Binding.rtype
      | None -> None
    in
    log :=
      Ev_bind
        {
          ev_op = op_id;
          ev_step = pl.Binding.pl_step;
          ev_finish = pl.Binding.pl_finish;
          ev_inst = pl.Binding.pl_inst;
          ev_rtype = rt;
        }
      :: !log
  in
  (* pass-local SCC stage assignment on first placement; true when a stage
     was assigned (the heap's ineligible stash is then re-examined — under
     [tolerate_scc_slack] a fresh window can make a member eligible) *)
  let note_scc_placement op_id step =
    match scc_of op_id with
    | Some k when scc_stage_local.(k) = None ->
        scc_stage_local.(k) <- Some (Region.stage_of_step region step);
        true
    | _ -> false
  in
  (* attempt [op] at step [e], updating the pass state exactly as the
     historic inner loop did; true when the bind landed and assigned an
     SCC stage *)
  let try_place (op : Dfg.op) e deferred blocked_class =
    let attempt () =
      if Opkind.is_resource_op op.Dfg.kind then begin
        match Binding.compatible_insts binding op with
        | [] -> (
            match Resource.of_op dfg op with
            | Some rt -> [ Restraint.F_no_resource rt ]
            | None -> [])
        | insts ->
            let fails = ref [] in
            let rec go = function
              | [] -> !fails
              | (i : Binding.inst) :: rest -> (
                  match
                    Binding.try_bind binding op ~step:e ~inst_opt:(Some i.Binding.inst_id)
                  with
                  | Ok () -> []
                  | Error f ->
                      fails := f :: !fails;
                      go rest)
            in
            let remaining = go insts in
            if remaining = [] && Binding.is_placed binding op.Dfg.id then [] else remaining
      end
      else
        match Binding.try_bind binding op ~step:e ~inst_opt:None with
        | Ok () -> []
        | Error f -> [ f ]
    in
    match attempt () with
    | [] ->
        on_placed op.Dfg.id;
        log_bind op.Dfg.id;
        (if Opkind.is_resource_op op.Dfg.kind then
           let pl = Option.get (Binding.placement binding op.Dfg.id) in
           Trace.logf ~level:Trace.Debug trace
             "    bound %s to %s at step %d: arrival %.0f ps, slack %.0f ps"
             op.Dfg.name
             (match pl.Binding.pl_inst with
             | Some i -> Resource.to_string (Binding.find_inst binding i).Binding.rtype
                        ^ "#" ^ string_of_int i
             | None -> "wire")
             e
             (Option.value
                (Hls_netlist.Netlist.arrival binding.Binding.net
                   ~view:Hls_netlist.Netlist.Accurate op.Dfg.id)
                ~default:0.0)
             (Binding.endpoint_slack binding ~naive:false op.Dfg.id));
        note_scc_placement op.Dfg.id e
    | fails
      when opts.tolerate_scc_slack && scc_of op.Dfg.id <> None && last_chance op e
           && List.exists (function Restraint.F_slack _ -> true | _ -> false) fails ->
        (* ablation mode: accept the violating binding; the negative
           slack surfaces in the timing report and Table 4's area
           penalty *)
        let inst_opt =
          match Binding.compatible_insts binding op with
          | i :: _ -> Some i.Binding.inst_id
          | [] -> None
        in
        Binding.force_bind binding op ~step:e ~inst_opt;
        on_placed op.Dfg.id;
        log_bind op.Dfg.id;
        note_scc_placement op.Dfg.id e
    | fails ->
        (if
           use_class_memo
           && Guard.is_always op.Dfg.guard
           && List.for_all (function Restraint.F_busy _ -> true | _ -> false) fails
         then
           match class_key op with
           | Some k -> Hashtbl.replace blocked_class k ()
           | None -> ());
        let fatal = last_chance op e in
        (* record the most informative failure of the attempts *)
        let best_fail =
          let score = function
            | Restraint.F_slack _ -> 5
            | Restraint.F_cycle _ -> 4
            | Restraint.F_window | Restraint.F_dep -> 3
            | Restraint.F_busy _ -> 2
            | Restraint.F_no_resource _ -> 2
            | Restraint.F_forbidden -> 1
            | Restraint.F_anchor -> 1
            | Restraint.F_blocked -> 0
          in
          List.fold_left (fun a b -> if score b > score a then b else a) (List.hd fails)
            (List.tl fails)
        in
        add_logged_restraint ~op:op.Dfg.id ~step:e ~fail:best_fail ~fatal;
        if fatal then begin
          Trace.logf ~level:Trace.Warn trace "    op %d (%s) FAILED at step %d: %s" op.Dfg.id
            op.Dfg.name e
            (Restraint.fail_to_string best_fail);
          drop_failed op.Dfg.id
        end
        else Hashtbl.replace deferred op.Dfg.id ();
        false
  in
  (* --- warm start: replay the unaffected prefix of the previous pass ---
     Every event strictly before the first step the expert's actions can
     touch is re-applied structurally: binds skip vetting entirely (they
     were vetted when first committed, and nothing before the dirty step
     changed), restraints are minted fresh (their weights are mutated by
     the expert's proximity pass).  The replayed binds run the same arrival
     propagation as the committing binds did, so the timing state entering
     the live steps is bit-identical to a cold pass's — but instead of
     propagating arrivals per bind (which re-times each instance's whole
     bound list at every replayed event, a quadratic term on long
     prefixes), the binds mutate structure only and one full fixpoint
     recompute runs after the batch.  The arrival fixpoint is unique
     given the structure, so the single sweep lands on the same state. *)
  let start_step =
    match warm with
    | None -> 0
    | Some (events, s) ->
        let replayed_bind = ref false in
        List.iter
          (fun ev ->
            if event_step ev < s then
              match ev with
              | Ev_bind { ev_op; ev_step; ev_finish; ev_inst; ev_rtype } ->
                  if Hashtbl.mem unplaced ev_op then begin
                    Binding.replay_bind binding ~propagate:false (Dfg.find dfg ev_op)
                      ~step:ev_step ~finish:ev_finish ~inst_opt:ev_inst ~rtype:ev_rtype;
                    replayed_bind := true;
                    log := ev :: !log;
                    on_placed ev_op;
                    ignore (note_scc_placement ev_op ev_step)
                  end
              | Ev_restraint { ev_op; ev_step; ev_fail; ev_fatal } ->
                  add_logged_restraint ~op:ev_op ~step:ev_step ~fail:ev_fail ~fatal:ev_fatal;
                  if ev_fatal then drop_failed ev_op)
          events;
        if !replayed_bind then Binding.recompute_all binding;
        s
  in
  for e = start_step to li - 1 do
    let deferred = Hashtbl.create 8 in
    let blocked_class = Hashtbl.create 8 in
    if use_heap then begin
      (* heap pick: pop in descending (score, -id); stale entries (no
         longer ready) are discarded, entries ineligible at this step are
         stashed and pushed back when the step ends.  The first eligible
         pop is exactly the fold's maximum. *)
      let stash = ref [] in
      let flush_stash () =
        List.iter (fun (s, id) -> Ready_heap.push heap ~score:s id) !stash;
        stash := []
      in
      let continue_step = ref true in
      while !continue_step do
        match Ready_heap.pop heap with
        | None -> continue_step := false
        | Some (s, id) ->
            if Hashtbl.mem ready id then
              if Hashtbl.mem deferred id then stash := (s, id) :: !stash
              else
                let op = Hashtbl.find ready id in
                if not (ready_at op e) then stash := (s, id) :: !stash
                else if
                  use_class_memo
                  && Guard.is_always op.Dfg.guard
                  && (match class_key op with
                     | Some k -> Hashtbl.mem blocked_class k
                     | None -> false)
                  && not (last_chance op e)
                then begin
                  Hashtbl.replace deferred id ();
                  stash := (s, id) :: !stash
                end
                else begin
                  let scc_assigned = try_place op e deferred blocked_class in
                  if Hashtbl.mem deferred id then stash := (s, id) :: !stash;
                  if scc_assigned then flush_stash ()
                end
      done;
      flush_stash ()
    end
    else begin
      (* legacy pick: one O(|ready|) fold per extraction — the benchmark
         baseline ([warm_start = false]) *)
      let continue_step = ref true in
      while !continue_step do
        let best =
          Hashtbl.fold
            (fun id op acc ->
              if (not (Hashtbl.mem deferred id)) && ready_at op e then
                let s = Hashtbl.find scores id in
                match acc with
                | Some (bs, bop) when (bs, -bop.Dfg.id) >= (s, -id) -> acc
                | _ -> Some (s, op)
              else acc)
            ready None
        in
        match best with
        | None -> continue_step := false
        | Some (_, op)
          when use_class_memo
               && Guard.is_always op.Dfg.guard
               && (match class_key op with
                  | Some k -> Hashtbl.mem blocked_class k
                  | None -> false)
               && not (last_chance op e) ->
            Hashtbl.replace deferred op.Dfg.id ()
        | Some (_, op) -> ignore (try_place op e deferred blocked_class)
      done
    end
  done;
  (* ops never placed and never directly failed were blocked upstream *)
  Hashtbl.iter
    (fun id _ ->
      let r = Restraint.make ~op:id ~step:(li - 1) ~fail:Restraint.F_blocked ~fatal:false in
      r.Restraint.r_weight <- 0.5;
      restraints := r :: !restraints)
    unplaced;
  let outcome =
    if Hashtbl.length failed = 0 && Hashtbl.length unplaced = 0 then Pass_ok
    else
      (* deferral restraints of ops that eventually placed are noise: the
         relaxation decision is driven by the ops the pass actually lost *)
      Pass_failed
        (List.rev !restraints
        |> List.filter (fun (r : Restraint.t) -> not (Binding.is_placed binding r.Restraint.r_op)))
  in
  (outcome, List.rev !log)

(* ------------------------------------------------------------------ *)

(** Schedule (and bind) a region.  The initial resource set is estimated at
    the latency upper bound (the paper's "3 multiplies are to be scheduled
    in at most 3 states" reasoning), then passes run from the latency lower
    bound upward under expert-guided relaxation. *)
let schedule ?(opts = default_options) ?trace ~(lib : Library.t) ~clock_ps (region : Region.t) :
    (t, error) result =
  let t0 = Unix.gettimeofday () in
  let dfg = region.Region.dfg in
  let binding = Binding.create ~timing_aware:opts.timing_aware ~lib ~clock_ps region in
  List.iter (fun op -> Hashtbl.replace binding.Binding.dedicated op ()) opts.dedicated_ops;
  (* --- initial resource set, estimated at the latency upper bound --- *)
  let initial_li = region.Region.n_steps in
  Region.reset_steps region region.Region.max_steps;
  let aa_alloc = Asap_alap.compute ~lib ~clock_ps region in
  let initial = Alloc.run ~lib ~clock_ps region aa_alloc in
  Region.reset_steps region initial_li;
  List.iter
    (fun (rt, n, _) ->
      for _ = 1 to n do
        ignore (Binding.add_inst binding rt)
      done)
    initial;
  Trace.logf trace "initial resources: %s"
    (String.concat ", "
       (List.map (fun (rt, n, _) -> Printf.sprintf "%dx %s" n (Resource.to_string rt)) initial));
  (* seed the latency interval at the resource-implied lower bound, so the
     relaxation loop does not add those unavoidable states one at a time *)
  if opts.seed_latency_floor && not (Region.is_pipelined region) then begin
    let floor = Alloc.latency_floor initial in
    if floor > region.Region.n_steps && floor <= region.Region.max_steps then
      Region.reset_steps region floor
  end;
  (* --- feedback hints: batched constraints from an earlier schedule of
     this (or a neighboring) design, applied up front so the relaxation
     loop starts where the previous run converged.  Every hint is vetted
     against this region — stale op/inst/SCC references are skipped. *)
  let hints_applied = ref 0 in
  let hint () = incr hints_applied in
  List.iter
    (fun op ->
      if Dfg.mem dfg op then begin
        (Dfg.find dfg op).Dfg.speculated <- true;
        hint ()
      end)
    opts.speculated_ops;
  List.iter
    (fun (op, inst) ->
      if Dfg.mem dfg op && inst >= 0 && inst < Hls_netlist.Netlist.n_insts binding.Binding.net
      then begin
        Hashtbl.replace binding.Binding.forbidden (op, inst) ();
        hint ()
      end)
    opts.forbidden_pairs;
  List.iter
    (fun ((rt : Resource.t), n) ->
      let have =
        List.fold_left
          (fun acc (i : Binding.inst) -> if i.Binding.rtype = rt then acc + 1 else acc)
          0
          (Hls_netlist.Netlist.insts binding.Binding.net)
      in
      if n > have then begin
        for _ = 1 to n - have do
          ignore (Binding.add_inst ~added_by_expert:true binding rt)
        done;
        hint ()
      end)
    opts.resource_floors;
  (match opts.latency_floor with
  | Some floor when not (Region.is_pipelined region) ->
      let floor = min floor region.Region.max_steps in
      if floor > region.Region.n_steps then begin
        Region.reset_steps region floor;
        hint ()
      end
  | _ -> ());
  let boosts =
    List.filter (fun (op, _) -> Dfg.mem dfg op) opts.priority_boosts
  in
  List.iter (fun _ -> hint ()) boosts;
  (* --- SCC bookkeeping for pipelined regions --- *)
  let sccs = if Region.is_pipelined region then Region.sccs region else [] in
  let scc_of_tbl = Hashtbl.create 16 in
  List.iteri (fun k ops -> List.iter (fun o -> Hashtbl.replace scc_of_tbl o k) ops) sccs;
  let scc_of op = Hashtbl.find_opt scc_of_tbl op in
  let scc_persist = Array.make (List.length sccs) None in
  let scc_stage_local = Array.make (List.length sccs) None in
  let scc_moves = Array.make (List.length sccs) 0 in
  List.iter
    (fun (k, stage) ->
      if k >= 0 && k < Array.length scc_persist then begin
        scc_persist.(k) <- Some (max 0 stage);
        hint ()
      end)
    opts.scc_stage_hints;
  (* early recurrence feasibility (RecMII analogue): an SCC whose longest
     internal combinational chain cannot be registered apart within its
     II-state stage window can never be scheduled at this II *)
  let rec_check scc =
    let member = Hashtbl.create 8 in
    List.iter (fun o -> Hashtbl.replace member o ()) scc;
    let succs id =
      List.filter_map
        (fun e ->
          let is_select = e.Dfg.port = 0 && (Dfg.find dfg e.Dfg.dst).Dfg.kind = Opkind.Mux in
          if e.Dfg.distance = 0 && Hashtbl.mem member e.Dfg.dst && not is_select then
            Some e.Dfg.dst
          else None)
        (Dfg.out_edges dfg id)
    in
    let weight id = Asap_alap.op_delay lib dfg (Dfg.find dfg id) in
    match Graph_algo.topo_sort ~nodes:scc ~succs with
    | None -> false (* an internal distance-0 cycle is caught elsewhere *)
    | Some _ ->
        let dist = Graph_algo.longest_path ~nodes:scc ~succs ~weight in
        let chain = Hashtbl.fold (fun _ v acc -> max acc v) dist 0.0 in
        let usable =
          clock_ps -. lib.Library.ff_clk_q -. lib.Library.ff_setup
          -. (if Region.ii region = 1 then 0.0 else Library.mux_delay lib ~inputs:2)
        in
        let min_states = int_of_float (ceil (chain /. max 1.0 usable)) in
        min_states > Region.ii region
  in
  (* each SCC's recurrence check is independent of every other's, so the
     checks fan out across the analysis pool; the filter below consumes
     the flags in SCC index order, keeping the result (and every
     downstream decision) identical for any worker count *)
  let rec_flags = parallel_map_array rec_check (Array.of_list sccs) in
  let rec_infeasible = List.filteri (fun k _ -> rec_flags.(k)) sccs in
  let actions = ref [] in
  let n_actions = ref 0 in
  let result = ref None in
  let passes = ref 0 in
  (* --- warm-start state (tentpole) ---
     [ctx0] is the pass-invariant analysis, hoisted out of the pass; the
     aa cache keeps ASAP/ALAP across passes whose actions cannot move it
     (speculate / forbid / add-resource); [prev_log]+[next_warm] carry the
     previous pass's event log and the first step the latest actions can
     affect, enabling prefix replay.  With [warm_start = false] none of
     this is consulted: every pass rebuilds its tables and recomputes the
     interval analysis — the pre-optimization baseline. *)
  let ctx0 = if opts.warm_start then Some (Pass_ctx.create region) else None in
  let aa_cache = ref None in
  let prev_log = ref None in
  let next_warm = ref None in
  let warm_passes = ref 0 in
  let cold_passes = ref 0 in
  let last_insts = ref (-1) in
  (* escalation guard: when repeated add_state stops shrinking the set of
     fatal restraints, force the expert toward a different action *)
  let consecutive_add_state = ref 0 in
  let fatal_at_streak_start = ref max_int in
  (try
     if rec_infeasible <> [] then
       raise
         (Give_up
            {
              g_code = "recurrence_infeasible";
              g_budget = None;
              g_message =
                Printf.sprintf
                  "recurrence infeasible: %d SCC(s) need more than II=%d states for their internal \
                   chains (raise II or the clock period)"
                  (List.length rec_infeasible) (Region.ii region);
            });
     while !result = None do
       incr passes;
       if !passes > opts.max_passes then
         raise
           (Give_up
              {
                g_code = "budget_passes";
                g_budget = Some (Hls_diag.Diag.B_passes opts.max_passes);
                g_message =
                  Printf.sprintf "gave up after %d passes (overconstrained specification)"
                    opts.max_passes;
              });
       (match opts.timeout_s with
       | Some limit when Unix.gettimeofday () -. t0 >= limit ->
           raise
             (Give_up
                {
                  g_code = "budget_wallclock";
                  g_budget = Some (Hls_diag.Diag.B_wallclock limit);
                  g_message =
                    Printf.sprintf "wall-clock budget of %.1f s exceeded after %d passes" limit
                      (!passes - 1);
                })
       | _ -> ());
       let scc_window op =
         match scc_of op with
         | None -> None
         | Some k -> (
             match scc_persist.(k) with
             | None -> None
             | Some stage ->
                 let ii = Region.ii region in
                 Some (stage * ii, (stage * ii) + ii - 1))
       in
       let aa =
         if opts.warm_start then (
           match !aa_cache with
           | Some aa -> aa
           | None ->
               let aa = Asap_alap.compute ~lib ~clock_ps ~scc_window region in
               aa_cache := Some aa;
               aa)
         else Asap_alap.compute ~lib ~clock_ps ~scc_window region
       in
       let ctx = match ctx0 with Some c -> c | None -> Pass_ctx.create region in
       Pass_ctx.refresh_scores ctx ~boosts ~weights:opts.priority_weights ~aa;
       let warm =
         match (!next_warm, !prev_log) with
         | Some s, Some events -> Some (events, s)
         | _ -> None
       in
       next_warm := None;
       (match warm with Some _ -> incr warm_passes | None -> incr cold_passes);
       (* the prealloc-shared flags depend only on the (static) region
          membership and the instance set, so they survive every pass that
          added no instance *)
       let insts_now = Hls_netlist.Netlist.n_insts binding.Binding.net in
       let keep_prealloc = opts.warm_start && !last_insts = insts_now in
       last_insts := insts_now;
       Trace.logf trace "pass %d: LI=%d, %d resources" !passes region.Region.n_steps
         (Hls_netlist.Netlist.n_insts binding.Binding.net);
       let outcome, pass_log =
         run_pass ~opts ~trace ~ctx ~binding ~aa ~scc_of ~scc_members:sccs ?warm ~keep_prealloc
           ~scc_stage_base:(fun k -> scc_persist.(k))
           ~scc_stage_local region
       in
       prev_log := Some pass_log;
       match outcome with
       | Pass_ok ->
           Trace.logf trace "pass %d: SUCCESS (LI=%d)" !passes region.Region.n_steps;
           result :=
             Some
               (Ok
                  {
                    s_region = region;
                    s_li = region.Region.n_steps;
                    s_binding = binding;
                    s_passes = !passes;
                    s_actions = List.rev !actions;
                    s_scc_stages =
                      List.mapi
                        (fun k ops ->
                          (ops, Option.value scc_stage_local.(k) ~default:0))
                        sccs;
                    s_sched_time_s = Unix.gettimeofday () -. t0;
                    s_warm_passes = !warm_passes;
                    s_cold_passes = !cold_passes;
                    s_hints_applied = !hints_applied;
                  })
       | Pass_failed restraints -> (
           Trace.logf trace "pass %d: failed with %d restraints" !passes (List.length restraints);
           List.iter
             (fun r -> Trace.logf ~level:Trace.Debug trace "    restraint: %s" (Restraint.to_string r))
             restraints;
           let scc_stage k =
             match scc_stage_local.(k) with
             | Some s -> s
             | None -> Option.value scc_persist.(k) ~default:0
           in
           let n_fatal =
             List.length (List.filter (fun (r : Restraint.t) -> r.Restraint.r_fatal) restraints)
           in
           ignore n_fatal;
           (* stop proposing moves for an SCC that has been bounced around
              without converging *)
           let expert_opts =
             if Array.exists (fun m -> m > 6) scc_moves then
               { opts.expert with Expert.enable_scc_move = false }
             else opts.expert
           in
           match
             Expert.choose_many ~allow_add_state:true ~opts:expert_opts ~binding ~region
               ~restraints ~sccs ~scc_of ~scc_stage
           with
           | [] ->
               result :=
                 Some
                   (Error
                      {
                        e_message = "no applicable relaxation action: specification overconstrained";
                        e_code = "overconstrained";
                        e_restraints = restraints;
                        e_passes = !passes;
                        e_actions = List.rev !actions;
                        e_budget = None;
                      })
           | chosen ->
             (* classify the round's actions for warm-start eligibility:
                global actions (add-state / add-resource) change what every
                op can do and force a cold pass; local actions (speculate /
                forbid / move-SCC) dirty only identifiable ops or windows *)
             let dirty_ops = ref [] in
             let moved_sccs = ref [] in
             let global = ref false in
             let aa_dirty = ref false in
             List.iter
               (fun (action, _) ->
                 match action with
                 | Expert.Add_state ->
                     global := true;
                     aa_dirty := true
                 | Expert.Add_resource _ -> global := true
                 | Expert.Speculate op -> dirty_ops := op :: !dirty_ops
                 | Expert.Move_scc k ->
                     aa_dirty := true;
                     moved_sccs := k :: !moved_sccs
                 | Expert.Forbid (op, _) -> dirty_ops := op :: !dirty_ops)
               chosen;
             List.iter (fun (action, why) ->
               incr n_actions;
               if !n_actions > opts.max_actions then
                 raise
                   (Give_up
                      {
                        g_code = "budget_actions";
                        g_budget = Some (Hls_diag.Diag.B_actions opts.max_actions);
                        g_message =
                          Printf.sprintf
                            "relaxation action budget of %d exhausted after %d passes"
                            opts.max_actions !passes;
                      });
               Trace.logf trace "  relaxation: %s" why;
               actions := why :: !actions;
               (match action with
               | Expert.Add_state -> incr consecutive_add_state
               | _ -> consecutive_add_state := 0);
               ignore !fatal_at_streak_start;
               match action with
               | Expert.Add_state ->
                   (* geometric stepping: a long streak of add_state
                      choices means the latency is far from sufficient, so
                      widen in growing increments instead of one state per
                      pass (the schedule quality is unchanged — the pass
                      still packs from step 0 upward) *)
                   let k = max 1 (1 lsl max 0 (!consecutive_add_state - 2)) in
                   let added = ref 0 in
                   while !added < k && Region.add_step region do
                     incr added
                   done;
                   if !added = 0 then
                     result :=
                       Some
                         (Error
                            {
                              e_message = "latency bound reached; cannot add more states";
                              e_code = "latency_bound";
                              e_restraints = restraints;
                              e_passes = !passes;
                              e_actions = List.rev !actions;
                              e_budget = None;
                            })
               | Expert.Add_resource (rt, n) ->
                   for _ = 1 to n do
                     ignore (Binding.add_inst ~added_by_expert:true binding rt)
                   done
               | Expert.Speculate op -> (Dfg.find dfg op).Dfg.speculated <- true
               | Expert.Move_scc k ->
                   scc_moves.(k) <- scc_moves.(k) + 1;
                   scc_persist.(k) <- Some (scc_stage k + 1)
               | Expert.Forbid (op, inst) -> Hashtbl.replace binding.Binding.forbidden (op, inst) ())
               chosen;
             if !aa_dirty then aa_cache := None;
             (* --- first dirty step: the earliest control step the actions
                just applied can influence.  Everything strictly before it
                is replayable.  A dirtied op can never act before its ASAP
                (old or new), so S = min over the dirty set of
                min(asap_old, asap_new).  When the interval analysis moved
                (SCC move), any member whose range changed — and any SCC
                whose pre-pin stage estimate changed — joins the dirty
                set. *)
             if
               opts.warm_start && !result = None && (not !global)
               && not opts.tolerate_scc_slack
             then begin
               let aa_old = aa in
               let aa_new =
                 if !aa_dirty then begin
                   let aa' = Asap_alap.compute ~lib ~clock_ps ~scc_window region in
                   aa_cache := Some aa';
                   aa'
                 end
                 else aa_old
               in
               let s = ref max_int in
               let consider id =
                 let r_old = Asap_alap.range aa_old id in
                 let r_new = Asap_alap.range aa_new id in
                 s := min !s (min r_old.Asap_alap.asap r_new.Asap_alap.asap)
               in
               List.iter consider !dirty_ops;
               List.iter (fun k -> List.iter consider (List.nth sccs k)) !moved_sccs;
               if aa_new != aa_old then begin
                 List.iter
                   (fun (o : Dfg.op) ->
                     let id = o.Dfg.id in
                     if Asap_alap.range aa_old id <> Asap_alap.range aa_new id then consider id)
                   ctx.Pass_ctx.ctx_members;
                 (* the pass pre-pins persist-less SCC stages from ASAP when
                    there are many SCCs; a stage estimate that moves dirties
                    the whole SCC even if individual ranges look stable *)
                 if List.length sccs > 4 then begin
                   let li = region.Region.n_steps in
                   let stage_of aa members =
                     let m =
                       List.fold_left
                         (fun acc o -> max acc (Asap_alap.range aa o).Asap_alap.asap)
                         0 members
                     in
                     Region.stage_of_step region (min m (li - 1))
                   in
                   List.iteri
                     (fun k members ->
                       if
                         scc_persist.(k) = None
                         && stage_of aa_old members <> stage_of aa_new members
                       then List.iter consider members)
                     sccs
                 end
               end;
               if !s > 0 && !s < max_int then next_warm := Some !s
             end)
     done
   with
  | Give_up g ->
      Trace.logf ~level:Trace.Warn trace "give up: %s" g.g_message;
      result :=
        Some
          (Error
             {
               e_message = g.g_message;
               e_code = g.g_code;
               e_restraints = [];
               e_passes = !passes;
               e_actions = List.rev !actions;
               e_budget = g.g_budget;
             })
  | Failure msg | Invalid_argument msg ->
      (* last-resort conversion: anything a deeper layer still raises
         becomes a typed internal error instead of unwinding the flow *)
      result :=
        Some
          (Error
             {
               e_message = msg;
               e_code = "internal";
               e_restraints = [];
               e_passes = !passes;
               e_actions = List.rev !actions;
               e_budget = None;
             }));
  match !result with Some r -> r | None -> assert false

(** Render the schedule as the paper's Table 2: one row per resource, one
    column per state. *)
let to_table (t : t) : string list list =
  let binding = t.s_binding in
  let dfg = binding.Binding.dfg in
  let insts = Hls_netlist.Netlist.insts binding.Binding.net in
  let header =
    "res \\ state" :: List.init t.s_li (fun i -> Printf.sprintf "s%d" (i + 1))
  in
  let rows =
    List.filter_map
      (fun (inst : Binding.inst) ->
        if inst.Binding.bound = [] then None
        else
          let cells =
            List.init t.s_li (fun step ->
                inst.Binding.bound
                |> List.filter (fun o ->
                       match Binding.placement binding o with
                       | Some pl -> pl.Binding.pl_step = step
                       | None -> false)
                |> List.map (fun o -> (Dfg.find dfg o).Dfg.name)
                |> String.concat ",")
          in
          Some ((Resource.to_string inst.Binding.rtype ^ Printf.sprintf "#%d" inst.Binding.inst_id) :: cells))
      insts
  in
  header :: rows
