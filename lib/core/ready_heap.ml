(** Array-based binary max-heap on (score, -id).  See the interface for
    the lazy-deletion contract; this module is pure priority-queue
    mechanics with no scheduler knowledge. *)

type t = {
  mutable scores : float array;
  mutable ids : int array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { scores = Array.make capacity 0.0; ids = Array.make capacity 0; size = 0 }

let clear t = t.size <- 0

let is_empty t = t.size = 0

let length t = t.size

(* lexicographic (score, -id): among equal scores the smaller id wins *)
let above ~score ~id ~score' ~id' = score > score' || (score = score' && id < id')

let grow t =
  let cap = Array.length t.scores in
  let scores = Array.make (2 * cap) 0.0 in
  let ids = Array.make (2 * cap) 0 in
  Array.blit t.scores 0 scores 0 t.size;
  Array.blit t.ids 0 ids 0 t.size;
  t.scores <- scores;
  t.ids <- ids

let push t ~score id =
  if t.size = Array.length t.scores then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.scores.(!i) <- score;
  t.ids.(!i) <- id;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if above ~score ~id ~score':t.scores.(parent) ~id':t.ids.(parent) then begin
      t.scores.(!i) <- t.scores.(parent);
      t.ids.(!i) <- t.ids.(parent);
      t.scores.(parent) <- score;
      t.ids.(parent) <- id;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top_score = t.scores.(0) and top_id = t.ids.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let score = t.scores.(t.size) and id = t.ids.(t.size) in
      t.scores.(0) <- score;
      t.ids.(0) <- id;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if
          l < t.size
          && above ~score:t.scores.(l) ~id:t.ids.(l) ~score':t.scores.(!best) ~id':t.ids.(!best)
        then best := l;
        if
          r < t.size
          && above ~score:t.scores.(r) ~id:t.ids.(r) ~score':t.scores.(!best) ~id':t.ids.(!best)
        then best := r;
        if !best = !i then continue := false
        else begin
          t.scores.(!i) <- t.scores.(!best);
          t.ids.(!i) <- t.ids.(!best);
          t.scores.(!best) <- score;
          t.ids.(!best) <- id;
          i := !best
        end
      done
    end;
    Some (top_score, top_id)
  end
